package himap_test

import (
	"bytes"
	"reflect"
	"testing"

	"himap"
)

// TestRepeatCompileDeterminism pins same-process run-to-run
// reproducibility: compiling the same kernel twice with identical
// options (fresh memos, so no artifact reuse links the runs) must emit
// byte-identical configurations and bitstreams. This is the complement
// of TestWorkersDeterminism — that test varies Workers against a
// reference, this one repeats the very same compile and would catch any
// hidden global state (package-level randomness, wall-clock reads, map
// iteration order) leaking between runs inside one process. The
// parallel path is the interesting one, so the repeat runs use
// Workers=4.
func TestRepeatCompileDeterminism(t *testing.T) {
	for _, k := range himap.EvaluationKernels() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			cg := himap.DefaultCGRA(8, 8)
			compile := func() (*himap.Result, []byte, *himap.Bitstream) {
				r, err := compile(k, cg, himap.Options{Workers: 4, Memo: himap.NewMemo()})
				if err != nil {
					t.Fatal(err)
				}
				b, err := himap.EncodeBitstream(r.Config)
				if err != nil {
					t.Fatal(err)
				}
				return r, configJSON(t, r), b
			}
			r1, j1, b1 := compile()
			r2, j2, b2 := compile()
			if !bytes.Equal(j1, j2) {
				t.Fatal("two identical compiles emitted different configurations")
			}
			if !reflect.DeepEqual(b1, b2) {
				t.Fatal("two identical compiles emitted different bitstreams")
			}
			if r1.IIB != r2.IIB || r1.UniqueIters != r2.UniqueIters || !reflect.DeepEqual(r1.Block, r2.Block) {
				t.Errorf("result metadata differs: IIB %d/%d unique %d/%d block %v/%v",
					r1.IIB, r2.IIB, r1.UniqueIters, r2.UniqueIters, r1.Block, r2.Block)
			}
			if r1.Stats.Attempts != r2.Stats.Attempts {
				t.Errorf("attempt count differs between identical runs: %d vs %d",
					r1.Stats.Attempts, r2.Stats.Attempts)
			}
		})
	}
}
