package himap_test

import (
	"bytes"
	"reflect"
	"testing"

	"himap"
)

// TestWorkersDeterminism pins the concurrency contract of the pipeline:
// the mapping HiMap emits is a pure function of (kernel, CGRA, Options
// minus Workers). Speculative scheme attempts always commit to the first
// success in sequential ranking order, and the systolic search merges its
// shards in enumeration order, so any Workers value must reproduce the
// Workers=1 configuration, bitstream, and (non-timing) statistics byte
// for byte — for every paper kernel, on both the cold path (fresh
// artifact memo) and the memoized path (recompiling against a memo warmed
// by the first run).
func TestWorkersDeterminism(t *testing.T) {
	for _, k := range himap.EvaluationKernels() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			cg := himap.DefaultCGRA(8, 8)

			// Reference: sequential, cold memo.
			r1, err := compile(k, cg, himap.Options{Workers: 1, Memo: himap.NewMemo()})
			if err != nil {
				t.Fatal(err)
			}
			j1 := configJSON(t, r1)
			b1, err := himap.EncodeBitstream(r1.Config)
			if err != nil {
				t.Fatal(err)
			}

			check := func(label string, opts himap.Options) {
				r, err := compile(k, cg, opts)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				if !bytes.Equal(j1, configJSON(t, r)) {
					t.Fatalf("%s produced a different configuration than Workers=1", label)
				}
				b, err := himap.EncodeBitstream(r.Config)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				if !reflect.DeepEqual(b1, b) {
					t.Fatalf("%s produced a different bitstream than Workers=1", label)
				}
				// Every non-timing statistic and result field must agree too —
				// in particular Attempts, which proves the wave execution
				// committed to the same (sub-mapping, scheme) pair.
				if r1.Stats.Attempts != r.Stats.Attempts {
					t.Errorf("%s: Attempts %d vs %d", label, r1.Stats.Attempts, r.Stats.Attempts)
				}
				if r1.Stats.CanonicalNets != r.Stats.CanonicalNets {
					t.Errorf("%s: CanonicalNets %d vs %d", label, r1.Stats.CanonicalNets, r.Stats.CanonicalNets)
				}
				if r1.Stats.RouteRounds != r.Stats.RouteRounds {
					t.Errorf("%s: RouteRounds %d vs %d", label, r1.Stats.RouteRounds, r.Stats.RouteRounds)
				}
				if r1.IIB != r.IIB || r1.UniqueIters != r.UniqueIters || r1.Utilization != r.Utilization {
					t.Errorf("%s: result stats differ: IIB %d/%d unique %d/%d U %v/%v", label,
						r1.IIB, r.IIB, r1.UniqueIters, r.UniqueIters, r1.Utilization, r.Utilization)
				}
				if !reflect.DeepEqual(r1.Block, r.Block) {
					t.Errorf("%s: block %v vs %v", label, r1.Block, r.Block)
				}
			}

			// Cold path, parallel waves.
			check("Workers=4 cold", himap.Options{Workers: 4, Memo: himap.NewMemo()})

			// Memoized path: both worker counts recompile against one
			// shared memo warmed by a first compile, so the IDFG,
			// sub-mapping list, and ISDG all come from the cache.
			warm := himap.NewMemo()
			if _, err := compile(k, cg, himap.Options{Workers: 1, Memo: warm}); err != nil {
				t.Fatal(err)
			}
			check("Workers=1 memoized", himap.Options{Workers: 1, Memo: warm})
			check("Workers=4 memoized", himap.Options{Workers: 4, Memo: warm})
		})
	}
}

func configJSON(t *testing.T, r *himap.Result) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := himap.SaveConfig(r.Config, &b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// TestBaselineChainsReproducible pins the baseline's multi-chain mode:
// every simulated-annealing chain is seeded explicitly from (Seed, DFG
// size, chain index, II), so two runs with the same options — including
// Workers > 1, where chains race on the pool — must pick the same winning
// chain and emit identical configurations.
func TestBaselineChainsReproducible(t *testing.T) {
	k, err := himap.KernelByName("MVT")
	if err != nil {
		t.Fatal(err)
	}
	cg := himap.DefaultCGRA(4, 4)
	opts := himap.BaselineOptions{Seed: 7, Workers: 2}
	ra, err := compileBaseline(k, cg, k.UniformBlock(4), opts)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := compileBaseline(k, cg, k.UniformBlock(4), opts)
	if err != nil {
		t.Fatal(err)
	}
	var ja, jb bytes.Buffer
	if err := himap.SaveConfig(ra.Config, &ja); err != nil {
		t.Fatal(err)
	}
	if err := himap.SaveConfig(rb.Config, &jb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja.Bytes(), jb.Bytes()) {
		t.Fatal("baseline multi-chain run is not reproducible for a fixed seed")
	}
}

// TestWorkersDeterminismFabrics extends the determinism contract to the
// non-default fabrics: torus links and the boundary-column memory layout
// must also be pure functions of (kernel, fabric, Options minus Workers),
// on both the cold and the memoized path.
func TestWorkersDeterminismFabrics(t *testing.T) {
	cases := []struct {
		kernel string
		fab    himap.Fabric
	}{
		{"GEMM", himap.Fabric{CGRA: himap.DefaultCGRA(8, 8), Topology: himap.TopoTorus}},
		{"ATAX", himap.Fabric{CGRA: himap.DefaultCGRA(8, 8), Topology: himap.TopoTorus}},
		{"FW", himap.Fabric{CGRA: himap.DefaultCGRA(8, 8), Topology: himap.TopoTorus, Mem: himap.MemBoundary}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.kernel+"/"+tc.fab.String(), func(t *testing.T) {
			k, err := himap.KernelByName(tc.kernel)
			if err != nil {
				t.Fatal(err)
			}
			r1, err := compileFabric(k, tc.fab, himap.Options{Workers: 1, Memo: himap.NewMemo()})
			if err != nil {
				t.Fatal(err)
			}
			j1 := configJSON(t, r1)

			check := func(label string, opts himap.Options) {
				r, err := compileFabric(k, tc.fab, opts)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				if !bytes.Equal(j1, configJSON(t, r)) {
					t.Fatalf("%s produced a different configuration than Workers=1", label)
				}
			}
			check("Workers=4 cold", himap.Options{Workers: 4, Memo: himap.NewMemo()})

			warm := himap.NewMemo()
			if _, err := compileFabric(k, tc.fab, himap.Options{Workers: 1, Memo: warm}); err != nil {
				t.Fatal(err)
			}
			check("Workers=1 memoized", himap.Options{Workers: 1, Memo: warm})
			check("Workers=4 memoized", himap.Options{Workers: 4, Memo: warm})
		})
	}
}
