package himap_test

import (
	"bytes"
	"reflect"
	"testing"

	"himap"
)

// TestWorkersDeterminism pins the concurrency contract of the pipeline:
// the mapping HiMap emits is a pure function of (kernel, CGRA, Options
// minus Workers). Speculative scheme attempts always commit to the first
// success in sequential ranking order, and the systolic search merges its
// shards in enumeration order, so Workers=8 must reproduce the Workers=1
// configuration, bitstream, and (non-timing) statistics byte for byte.
func TestWorkersDeterminism(t *testing.T) {
	for _, name := range []string{"GEMM", "FW"} {
		t.Run(name, func(t *testing.T) {
			k, err := himap.KernelByName(name)
			if err != nil {
				t.Fatal(err)
			}
			cg := himap.DefaultCGRA(8, 8)
			r1, err := himap.Compile(k, cg, himap.Options{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			r8, err := himap.Compile(k, cg, himap.Options{Workers: 8})
			if err != nil {
				t.Fatal(err)
			}

			var j1, j8 bytes.Buffer
			if err := himap.SaveConfig(r1.Config, &j1); err != nil {
				t.Fatal(err)
			}
			if err := himap.SaveConfig(r8.Config, &j8); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(j1.Bytes(), j8.Bytes()) {
				t.Fatal("Workers=8 produced a different configuration than Workers=1")
			}

			b1, err := himap.EncodeBitstream(r1.Config)
			if err != nil {
				t.Fatal(err)
			}
			b8, err := himap.EncodeBitstream(r8.Config)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(b1, b8) {
				t.Fatal("Workers=8 produced a different bitstream than Workers=1")
			}

			// Every non-timing statistic and result field must agree too —
			// in particular Attempts, which proves the wave execution
			// committed to the same (sub-mapping, scheme) pair.
			if r1.Stats.Attempts != r8.Stats.Attempts {
				t.Errorf("Attempts: %d (W=1) vs %d (W=8)", r1.Stats.Attempts, r8.Stats.Attempts)
			}
			if r1.Stats.CanonicalNets != r8.Stats.CanonicalNets {
				t.Errorf("CanonicalNets: %d vs %d", r1.Stats.CanonicalNets, r8.Stats.CanonicalNets)
			}
			if r1.Stats.RouteRounds != r8.Stats.RouteRounds {
				t.Errorf("RouteRounds: %d vs %d", r1.Stats.RouteRounds, r8.Stats.RouteRounds)
			}
			if r1.IIB != r8.IIB || r1.UniqueIters != r8.UniqueIters || r1.Utilization != r8.Utilization {
				t.Errorf("result stats differ: IIB %d/%d unique %d/%d U %v/%v",
					r1.IIB, r8.IIB, r1.UniqueIters, r8.UniqueIters, r1.Utilization, r8.Utilization)
			}
			if !reflect.DeepEqual(r1.Block, r8.Block) {
				t.Errorf("block: %v vs %v", r1.Block, r8.Block)
			}
		})
	}
}

// TestBaselineChainsReproducible pins the baseline's multi-chain mode:
// every simulated-annealing chain is seeded explicitly from (Seed, DFG
// size, chain index, II), so two runs with the same options — including
// Workers > 1, where chains race on the pool — must pick the same winning
// chain and emit identical configurations.
func TestBaselineChainsReproducible(t *testing.T) {
	k, err := himap.KernelByName("MVT")
	if err != nil {
		t.Fatal(err)
	}
	cg := himap.DefaultCGRA(4, 4)
	opts := himap.BaselineOptions{Seed: 7, Workers: 2}
	ra, err := himap.CompileBaseline(k, cg, k.UniformBlock(4), opts)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := himap.CompileBaseline(k, cg, k.UniformBlock(4), opts)
	if err != nil {
		t.Fatal(err)
	}
	var ja, jb bytes.Buffer
	if err := himap.SaveConfig(ra.Config, &ja); err != nil {
		t.Fatal(err)
	}
	if err := himap.SaveConfig(rb.Config, &jb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja.Bytes(), jb.Bytes()) {
		t.Fatal("baseline multi-chain run is not reproducible for a fixed seed")
	}
}
