// Quickstart: map GEMM onto a 4x4 CGRA with HiMap, inspect the result,
// and validate it cycle-accurately.
package main

import (
	"context"
	"fmt"
	"log"

	"himap"
)

func main() {
	k := himap.KernelGEMM()
	cgra := himap.DefaultCGRA(4, 4)

	res, err := himap.CompileRequest(context.Background(),
		himap.Request{Kernel: k, Fabric: himap.Fabric{CGRA: cgra}})
	if err != nil {
		log.Fatalf("compile: %v", err)
	}

	fmt.Println("== HiMap quickstart ==")
	fmt.Println(res.Summary())
	fmt.Printf("systolic transformation: %s\n", res.Mapping)
	fmt.Printf("compiled in %v (%d canonical nets for %d unique iteration classes)\n",
		res.Stats.Total, res.Stats.CanonicalNets, res.UniqueIters)

	model := himap.DefaultPowerModel()
	fmt.Printf("throughput %.0f MOPS at %.1f mW -> %.1f MOPS/mW\n",
		model.PerformanceMOPS(res.Config),
		model.PowerMW(res.Config),
		model.EfficiencyMOPSPerMW(res.Config))

	// Cycle-accurate functional validation: three back-to-back block
	// instances stream through the array, one initiation every II_B
	// cycles; every block's outputs must match the golden executor.
	if err := himap.Validate(res, 3, 2024); err != nil {
		log.Fatalf("validation: %v", err)
	}
	fmt.Println("cycle-accurate validation: PASS")

	fmt.Println("\nPer-PE utilization:")
	fmt.Print(himap.RenderUtilization(res.Config))
	fmt.Println("\nPE(1,1) program:")
	fmt.Print(himap.RenderPEProgram(res.Config, 1, 1))
}
