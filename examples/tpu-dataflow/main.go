// §III of the paper claims that "the dataflow of the systolic array in
// Google TPU is the same as the dataflow of CGRA configured with the GEMM
// kernel using HiMap". This example maps GEMM and verifies the claim
// structurally: matrix A operands enter each interior PE from the west
// and leave east, B operands enter from the north and leave south, and
// partial sums stay resident in the PE's register file — the classic
// weight/activation-streaming systolic pattern.
package main

import (
	"context"
	"fmt"
	"log"

	"himap"
	"himap/internal/arch"
)

func main() {
	k := himap.KernelGEMM()
	res, err := himap.CompileRequest(context.Background(),
		himap.Request{Kernel: k, Fabric: himap.Fabric{CGRA: himap.DefaultCGRA(4, 4)}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== GEMM dataflow vs the TPU systolic array ==")
	fmt.Println(res.Summary())

	// Inspect an interior PE's schedule.
	cfg := res.Config
	r, c := 1, 1
	var eastward, southward, regResident bool
	for t := 0; t < cfg.II; t++ {
		in := cfg.Slots[r][c][t]
		if in.OutSel[arch.East].Kind != arch.OpdNone && in.OutSel[arch.East].Kind != arch.OpdHold {
			eastward = true
		}
		if in.OutSel[arch.South].Kind != arch.OpdNone && in.OutSel[arch.South].Kind != arch.OpdHold {
			southward = true
		}
		for _, w := range in.RegWr {
			if w.Src.Kind == arch.OpdALU {
				regResident = true
			}
		}
	}
	check := func(name string, ok bool) {
		status := "NO"
		if ok {
			status = "yes"
		}
		fmt.Printf("  %-58s %s\n", name, status)
	}
	fmt.Println("\nInterior PE (1,1) dataflow checks:")
	check("streams a value eastward (A operands flow along j)", eastward)
	check("streams a value southward (B operands flow along i)", southward)
	check("keeps ALU results in the register file (partial sums)", regResident)
	if !(eastward && southward && regResident) {
		log.Fatal("dataflow does not match the TPU systolic pattern")
	}
	fmt.Println("\nThe mapping realizes the TPU's weight-stationary systolic dataflow")
	fmt.Println("on a general-purpose CGRA — §III's best-of-both-worlds argument.")

	fmt.Println("\nPE(1,1) program:")
	fmt.Print(himap.RenderPEProgram(cfg, 1, 1))
}
