// Defining a new kernel through the public DSL and mapping it with HiMap.
//
// The kernel is a 2-D weighted running reduction ("smooth"):
//
//	for i, j:
//	    u(i,j) = u(i,j-1)*W[i][j] + IMG[i][j]     // row-wise IIR filter
//	    s(i,j) = s(i-1,j) + u(i,j)                // column accumulation
//	    if i == last: OUT[j] = s(i,j)
//
// Three compute ops per iteration, dependencies along both dimensions —
// exactly the class of multi-dimensional kernels HiMap targets. The same
// pattern covers the library's built-in CONV2D extension kernel, which is
// also compiled below.
package main

import (
	"context"
	"fmt"
	"log"

	"himap"
)

func smooth() *himap.Kernel {
	ij := himap.AM(2, []int{1, 0, 0}, []int{0, 1, 0})
	k := &himap.Kernel{
		Name:     "SMOOTH",
		Desc:     "row IIR filter with column reduction",
		Suite:    "custom",
		Dim:      2,
		MinBlock: 2,
		Tensors: []himap.TensorSpec{
			{Name: "IMG", Dims: func(b []int) []int { return []int{b[0], b[1]} }},
			{Name: "W", Dims: func(b []int) []int { return []int{b[0], b[1]} }},
			{Name: "OUT", Out: true, Dims: func(b []int) []int { return []int{b[1]} }},
		},
		Body: []himap.BodyOp{
			{Name: "m", Kind: himap.OpMul,
				A: himap.Fixed(himap.Mem("W", ij)),
				B: himap.In(
					himap.Case{When: himap.First(1), Src: himap.ConstSrc(0)},
					himap.Case{When: himap.Always(), Src: himap.Dep(1, 0, 1)})},
			{Name: "u", Kind: himap.OpAdd,
				A: himap.Fixed(himap.Same(0)),
				B: himap.Fixed(himap.Mem("IMG", ij))},
			{Name: "s", Kind: himap.OpAdd,
				A: himap.Fixed(himap.Same(1)),
				B: himap.In(
					himap.Case{When: himap.First(0), Src: himap.ConstSrc(0)},
					himap.Case{When: himap.Always(), Src: himap.Dep(2, 1, 0)}),
				Stores: []himap.StoreRule{{When: himap.Last(0), Tensor: "OUT", Map: himap.AM(2, []int{0, 1, 0})}}},
		},
	}
	return k
}

func main() {
	fmt.Println("== custom kernel through the public DSL ==")
	k := smooth()
	if err := k.Validate(); err != nil {
		log.Fatalf("spec: %v", err)
	}
	res, err := himap.CompileRequest(context.Background(),
		himap.Request{Kernel: k, Fabric: himap.Fabric{CGRA: himap.DefaultCGRA(4, 4)}})
	if err != nil {
		log.Fatalf("compile: %v", err)
	}
	fmt.Println(res.Summary())
	if err := himap.Validate(res, 3, 99); err != nil {
		log.Fatalf("validate: %v", err)
	}
	fmt.Println("cycle-accurate validation: PASS")

	fmt.Println("\n== built-in CONV2D extension kernel ==")
	conv := himap.KernelConv2D()
	cres, err := himap.CompileRequest(context.Background(),
		himap.Request{Kernel: conv, Fabric: himap.Fabric{CGRA: himap.DefaultCGRA(4, 4)}})
	if err != nil {
		log.Fatalf("conv2d compile: %v", err)
	}
	fmt.Println(cres.Summary())
	if err := himap.Validate(cres, 2, 5); err != nil {
		log.Fatalf("conv2d validate: %v", err)
	}
	fmt.Println("cycle-accurate validation: PASS")
}
