// The §II motivating example: BiCG mapped onto an 8x1 (linear) CGRA.
//
// The paper contrasts a conventional mapper's irregular schedule with
// HiMap's regular systolic schedule on this configuration (Figure 2) and
// counts 9 unique iterations. This example reproduces both mappings and
// prints the block initiation intervals, utilizations, and schedules.
package main

import (
	"context"
	"fmt"
	"log"

	"himap"
)

func main() {
	k := himap.KernelBICG()
	cgra := himap.DefaultCGRA(8, 1)

	fmt.Println("== BiCG on an 8x1 linear CGRA (the paper's §II example) ==")

	res, err := himap.CompileRequest(context.Background(),
		himap.Request{Kernel: k, Fabric: himap.Fabric{CGRA: cgra}})
	if err != nil {
		log.Fatalf("himap: %v", err)
	}
	fmt.Println("\nHiMap:", res.Summary())
	fmt.Printf("  block initiation interval II_B = %d cycles\n", res.IIB)
	fmt.Printf("  unique iterations identified: %d (paper: 9)\n", res.UniqueIters)
	if err := himap.Validate(res, 3, 7); err != nil {
		log.Fatalf("himap validation: %v", err)
	}
	fmt.Println("  cycle-accurate validation: PASS")

	// The conventional mapper sees the same unrolled block DFG but must
	// solve the flat placement-and-routing problem.
	cres, err := himap.CompileRequest(context.Background(), himap.Request{
		Kernel: k, Fabric: himap.Fabric{CGRA: cgra}, Mapper: himap.MapperConventional,
		Block: []int{4, 4}, Baseline: himap.BaselineOptions{Seed: 3},
	})
	if err != nil {
		log.Fatalf("baseline: %v", err)
	}
	bres := cres.Conventional
	fmt.Println("\nConventional:", bres.Summary())
	fmt.Printf("  block initiation interval II_B = %d cycles\n", bres.II)
	if err := himap.ValidateConfig(bres.Config, k, bres.Block, 3, 7); err != nil {
		log.Fatalf("baseline validation: %v", err)
	}
	fmt.Println("  cycle-accurate validation: PASS")

	fmt.Printf("\nHiMap achieves %.2fx the conventional mapper's throughput on this array\n",
		(res.Utilization)/(bres.Utilization))

	fmt.Println("\nUnique-iteration map (the numbered iterations of Figure 2d —")
	fmt.Println("equal numbers are exact replicas; only those were mapped in detail):")
	fmt.Print(res.IterationMap())

	fmt.Println("\nHiMap schedule (space-time grid, PEs left to right):")
	fmt.Print(himap.RenderSchedule(res.Config))
}
