// Scaling study through the public API: maps three kernels across CGRA
// sizes and prints utilization, throughput, power, and efficiency — a
// miniature of Figure 7's HiMap series, demonstrating that mappings stay
// on the performance envelope as the array grows while compilation time
// stays flat.
package main

import (
	"context"
	"fmt"
	"log"

	"himap"
)

func main() {
	model := himap.DefaultPowerModel()
	kernels := []*himap.Kernel{himap.KernelMVT(), himap.KernelGEMM(), himap.KernelFW()}
	sizes := []int{4, 8, 16}

	fmt.Println("== HiMap scaling across CGRA sizes ==")
	fmt.Printf("%-6s %-7s %-12s %6s %12s %10s %12s %12s\n",
		"kernel", "CGRA", "block", "U", "MOPS", "power mW", "MOPS/mW", "compile")
	for _, k := range kernels {
		for _, size := range sizes {
			res, err := himap.CompileRequest(context.Background(),
				himap.Request{Kernel: k, Fabric: himap.Fabric{CGRA: himap.DefaultCGRA(size, size)}})
			if err != nil {
				log.Fatalf("%s %dx%d: %v", k.Name, size, size, err)
			}
			fmt.Printf("%-6s %-7s %-12s %5.0f%% %12.0f %10.1f %12.1f %12v\n",
				k.Name, fmt.Sprintf("%dx%d", size, size), fmt.Sprint(res.Block),
				res.Utilization*100,
				model.PerformanceMOPS(res.Config),
				model.PowerMW(res.Config),
				model.EfficiencyMOPSPerMW(res.Config),
				res.Stats.Total.Round(1000000))
		}
	}
	fmt.Println("\nNote how utilization (and thus MOPS/PE) holds as the array grows:")
	fmt.Println("the number of unique iterations — and so the mapping work — does not")
	fmt.Println("grow with the block size, the core scalability argument of the paper.")
}
