module himap

go 1.22
