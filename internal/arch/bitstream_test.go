package arch

import (
	"testing"

	"himap/internal/ir"
)

func sampleInstr() *Instr {
	in := &Instr{Op: ir.OpMul, SrcA: FromIn(West), SrcB: FromConst(-7)}
	in.OutSel[East] = FromALU()
	in.OutSel[South] = FromIn(North)
	in.OutSel[West] = Hold()
	in.RegWr = []RegWrite{{Reg: 2, Src: FromALU()}, {Reg: 0, Src: FromIn(East)}}
	in.MemRead = MemOp{Active: true, Tag: "A@1,2"}
	in.MemWrite = MemOp{Active: true, Src: FromReg(3), Tag: "O@1,2"}
	return in
}

func instrEqualModuloTags(a, b *Instr) bool {
	ac, bc := *a, *b
	ac.Comment, bc.Comment = "", ""
	ac.MemRead.Tag, bc.MemRead.Tag = "", ""
	ac.MemWrite.Tag, bc.MemWrite.Tag = "", ""
	if len(ac.RegWr) != len(bc.RegWr) {
		return false
	}
	for i := range ac.RegWr {
		if ac.RegWr[i] != bc.RegWr[i] {
			return false
		}
	}
	ac.RegWr, bc.RegWr = nil, nil
	return ac.String() == bc.String()
}

func TestEncodeDecodeInstrRoundTrip(t *testing.T) {
	in := sampleInstr()
	w, err := EncodeInstr(in, int(NumDirs))
	if err != nil {
		t.Fatal(err)
	}
	if len(w) != WordBytes {
		t.Fatalf("word length %d", len(w))
	}
	out, err := DecodeInstr(w, int(NumDirs))
	if err != nil {
		t.Fatal(err)
	}
	if !instrEqualModuloTags(in, out) {
		t.Errorf("round trip mismatch:\n in: %v\nout: %v", in, out)
	}
}

func TestEncodeInstrNop(t *testing.T) {
	var in Instr
	w, err := EncodeInstr(&in, int(NumDirs))
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeInstr(w, int(NumDirs))
	if err != nil {
		t.Fatal(err)
	}
	if !out.IsNop() {
		t.Errorf("decoded nop is %v", out)
	}
}

func TestEncodeInstrRejectsWideImmediate(t *testing.T) {
	in := &Instr{Op: ir.OpAdd, SrcA: FromReg(0), SrcB: FromConst(1 << 20)}
	if _, err := EncodeInstr(in, int(NumDirs)); err == nil {
		t.Error("expected immediate-width error")
	}
}

func TestEncodeInstrRejectsTwoImmediates(t *testing.T) {
	in := &Instr{Op: ir.OpAdd, SrcA: FromReg(0), SrcB: FromConst(1)}
	in.RegWr = []RegWrite{{Reg: 1, Src: FromConst(2)}}
	if _, err := EncodeInstr(in, int(NumDirs)); err == nil {
		t.Error("two distinct immediates cannot share the field")
	}
	// The same immediate value is fine.
	in.RegWr[0].Src = FromConst(1)
	if _, err := EncodeInstr(in, int(NumDirs)); err != nil {
		t.Errorf("shared immediate should encode: %v", err)
	}
}

func TestEncodeConfigDedupAndSize(t *testing.T) {
	cfg := NewConfig(DefaultFabric(2, 2), 4)
	// Two distinct instructions alternating: 2 unique words per PE.
	a := Instr{Op: ir.OpAdd, SrcA: FromReg(0), SrcB: FromConst(1)}
	m := Instr{Op: ir.OpMul, SrcA: FromReg(1), SrcB: FromConst(1)}
	for r := 0; r < 2; r++ {
		for c := 0; c < 2; c++ {
			for tt := 0; tt < 4; tt++ {
				if tt%2 == 0 {
					*cfg.At(r, c, tt) = a
				} else {
					*cfg.At(r, c, tt) = m
				}
			}
		}
	}
	bs, err := Encode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := bs.MaxWordsPerPE(); got != 2 {
		t.Errorf("unique words per PE = %d, want 2", got)
	}
	// 4 PEs × (2 words × 12 B + ceil(4 slots × 1 bit / 8) = 1 B).
	if got := bs.TotalBytes(); got != 4*(2*WordBytes+1) {
		t.Errorf("TotalBytes = %d", got)
	}
	dec, err := bs.Decode(cfg.Fabric)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 2; r++ {
		for c := 0; c < 2; c++ {
			for tt := 0; tt < 4; tt++ {
				if !instrEqualModuloTags(cfg.At(r, c, tt), dec.At(r, c, tt)) {
					t.Fatalf("PE(%d,%d) slot %d mismatch", r, c, tt)
				}
			}
		}
	}
}

func TestEncodeEnforcesConfigDepth(t *testing.T) {
	a := DefaultFabric(1, 1)
	a.ConfigDepth = 2
	cfg := NewConfig(a, 4)
	for tt := 0; tt < 4; tt++ {
		*cfg.At(0, 0, tt) = Instr{Op: ir.OpAdd, SrcA: FromReg(0), SrcB: FromConst(int64(tt))}
	}
	if _, err := Encode(cfg); err == nil {
		t.Error("expected configuration-depth overflow")
	}
}
