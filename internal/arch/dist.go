package arch

// HopDist returns the minimum number of interconnect links a value must
// cross to travel from PE (r1, c1) to PE (r2, c2) under this fabric's
// topology. It is the router's admissible (and, per topology, exact)
// distance lower bound:
//
//   - mesh: Manhattan distance |Δr| + |Δc| (4-neighbor links, no wrap),
//   - torus: wrapped Manhattan distance — each axis independently takes
//     the shorter way around, min(|Δ|, size-|Δ|), which is exact because
//     WrapCoord makes every translation a graph automorphism,
//   - mesh+diagonal: Chebyshev distance max(|Δr|, |Δc|) (a diagonal link
//     advances both axes in one hop).
//
// Coordinates are folded onto the array first on wrap-around topologies,
// so callers may pass unwrapped coordinates.
//
//himap:noalloc
func (f Fabric) HopDist(r1, c1, r2, c2 int) int {
	r1, c1 = f.WrapCoord(r1, c1)
	r2, c2 = f.WrapCoord(r2, c2)
	dr, dc := r1-r2, c1-c2
	if dr < 0 {
		dr = -dr
	}
	if dc < 0 {
		dc = -dc
	}
	switch f.Topology {
	case TopoTorus:
		if w := f.Rows - dr; w < dr {
			dr = w
		}
		if w := f.Cols - dc; w < dc {
			dc = w
		}
		return dr + dc
	case TopoMeshDiag:
		if dc > dr {
			return dc
		}
		return dr
	default:
		return dr + dc
	}
}
