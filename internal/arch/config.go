package arch

import (
	"fmt"
	"himap/internal/diag"
)

// IOSpec correlates one configured memory access with a logical tensor
// element: PE (R,C)'s port at schedule slot Slot touches Tensor[Index].
// Phase is the floor division of the access's real schedule time by II:
// with blocks initiating every II cycles, execution number e of the slot
// serves block e - Phase (negative phases are pre-fetches into the
// previous period — classic software-pipelining prologue behaviour). The
// cycle-accurate simulator uses these to feed and drain the array.
type IOSpec struct {
	R, C, Slot int
	Phase      int
	Tensor     string
	Index      []int
}

// Config is a complete CGRA mapping: for every PE a repeating stream of II
// instructions. It is the output of the HiMap and baseline mappers and the
// input of the cycle-accurate simulator.
type Config struct {
	Fabric Fabric
	II     int
	// Slots[r][c][t] is PE (r,c)'s instruction at cycle t mod II.
	Slots [][][]Instr
	// Loads and Stores carry the memory-access correlation metadata.
	Loads  []IOSpec
	Stores []IOSpec
}

// NewConfig allocates an all-NOP configuration for the fabric.
func NewConfig(f Fabric, ii int) *Config {
	if ii < 1 {
		panic(fmt.Sprintf("arch: II = %d", ii))
	}
	cfg := &Config{Fabric: f, II: ii}
	cfg.Slots = make([][][]Instr, f.Rows)
	for r := 0; r < f.Rows; r++ {
		cfg.Slots[r] = make([][]Instr, f.Cols)
		for cc := 0; cc < f.Cols; cc++ {
			cfg.Slots[r][cc] = make([]Instr, ii)
		}
	}
	return cfg
}

// At returns a pointer to the instruction of PE (r,c) at slot t mod II.
func (cfg *Config) At(r, c, t int) *Instr {
	return &cfg.Slots[r][c][((t%cfg.II)+cfg.II)%cfg.II]
}

// Validate checks every instruction against the architecture's port
// limits and verifies the configuration-memory bound: the number of
// distinct instructions per PE must fit in ConfigDepth (HiMap stores only
// unique instructions; the PE program counter regenerates the stream, §V).
func (cfg *Config) Validate() error {
	ndirs := cfg.Fabric.NumLinkDirs()
	// Port limits come from the fabric's effective capacities, not the
	// declared CGRA fields: a double-pumped RF legally serves twice the
	// declared ports per cycle, and a narrowed RF must be held to one
	// even if the base array declares more.
	eff := cfg.Fabric.CGRA
	eff.RFReadPorts = cfg.Fabric.RFReadCap()
	eff.RFWritePorts = cfg.Fabric.RFWriteCap()
	for r := 0; r < cfg.Fabric.Rows; r++ {
		for c := 0; c < cfg.Fabric.Cols; c++ {
			for t := 0; t < cfg.II; t++ {
				in := &cfg.Slots[r][c][t]
				if err := in.Validate(eff); err != nil {
					return fmt.Errorf("PE(%d,%d) slot %d: %v: %w", r, c, t, err, diag.ErrConfigInvalid)
				}
				for d := ndirs; d < int(MaxDirs); d++ {
					if in.OutSel[d].Kind != OpdNone {
						return fmt.Errorf("PE(%d,%d) slot %d: OutSel %s but fabric has %d link directions: %w",
							r, c, t, Dir(d), ndirs, diag.ErrConfigInvalid)
					}
				}
				if (in.MemRead.Active || in.MemWrite.Active) && !cfg.Fabric.MemCapable(r, c) {
					return fmt.Errorf("PE(%d,%d) slot %d: memory access on compute-only PE: %w", r, c, t, diag.ErrConfigInvalid)
				}
			}
			if n := cfg.UniqueInstrs(r, c); n > cfg.Fabric.ConfigDepth {
				return fmt.Errorf("PE(%d,%d): %d unique instructions exceed configuration memory depth %d: %w",
					r, c, n, cfg.Fabric.ConfigDepth, diag.ErrConfigInvalid)
			}
		}
	}
	return nil
}

// UniqueInstrs returns the number of distinct instruction words in PE
// (r,c)'s stream — what HiMap actually stores in configuration memory.
// Provenance comments and memory correlation tags are simulation
// metadata, not configuration bits (addresses come from the PE's address
// generation walking the iteration space), so they do not distinguish
// words.
func (cfg *Config) UniqueInstrs(r, c int) int {
	seen := map[string]bool{}
	for t := 0; t < cfg.II; t++ {
		in := cfg.Slots[r][c][t]
		in.Comment = ""
		in.MemRead.Tag = ""
		in.MemWrite.Tag = ""
		seen[instrKey(&in)] = true
	}
	return len(seen)
}

// MaxUniqueInstrs returns the maximum per-PE unique instruction count of
// the whole configuration.
func (cfg *Config) MaxUniqueInstrs() int {
	max := 0
	for r := 0; r < cfg.Fabric.Rows; r++ {
		for c := 0; c < cfg.Fabric.Cols; c++ {
			if n := cfg.UniqueInstrs(r, c); n > max {
				max = n
			}
		}
	}
	return max
}

func instrKey(in *Instr) string {
	s := in.String()
	return s
}

// DataMemoryDemand returns the peak per-PE data-memory footprint of the
// mapping: every configured memory access needs a double-buffered word,
// and accesses whose schedule phase leads or trails the block window
// (software-pipelining prologue/epilogue) need one extra word per phase
// of skew.
func (cfg *Config) DataMemoryDemand() int {
	max := 0
	cfg.eachDataMemNeed(func(_, _ int, need int) {
		if need > max {
			max = need
		}
	})
	return max
}

// CheckDataMemory reports whether the mapping's streams fit entirely in
// the per-PE data memories (the paper adds them "to eliminate memory
// access bottlenecks in some kernels"). Exceeding the capacity is not a
// correctness failure — the surplus simply streams from the shared
// on-chip memory banks of Figure 1 instead of the PE-local memory — so
// this is a diagnostic, not part of Validate.
func (cfg *Config) CheckDataMemory() error {
	var err error
	cfg.eachDataMemNeed(func(r, c, need int) {
		if err == nil && need > cfg.Fabric.DataMemWords {
			err = fmt.Errorf("PE(%d,%d): steady-state streaming needs %d data-memory words, have %d: %w",
				r, c, need, cfg.Fabric.DataMemWords, diag.ErrConfigInvalid)
		}
	})
	return err
}

func (cfg *Config) eachDataMemNeed(fn func(r, c, need int)) {
	need := make([][]int, cfg.Fabric.Rows)
	for r := range need {
		need[r] = make([]int, cfg.Fabric.Cols)
	}
	account := func(specs []IOSpec) {
		for _, s := range specs {
			skew := s.Phase
			if skew < 0 {
				skew = -skew
			}
			need[s.R][s.C] += 2 + skew
		}
	}
	account(cfg.Loads)
	account(cfg.Stores)
	for r := range need {
		for c := range need[r] {
			fn(r, c, need[r][c])
		}
	}
}

// BusyFUs counts the FU-active slots of the configuration — the
// numerator of achieved utilization as seen by the hardware.
func (cfg *Config) BusyFUs() int {
	n := 0
	for r := 0; r < cfg.Fabric.Rows; r++ {
		for c := 0; c < cfg.Fabric.Cols; c++ {
			for t := 0; t < cfg.II; t++ {
				if cfg.Slots[r][c][t].Op.IsCompute() {
					n++
				}
			}
		}
	}
	return n
}

// Utilization returns BusyFUs / (PEs × II), the hardware view of
// U = |V_D| / |V_H^F|.
func (cfg *Config) Utilization() float64 {
	total := cfg.Fabric.NumPEs() * cfg.II
	if total == 0 {
		return 0
	}
	return float64(cfg.BusyFUs()) / float64(total)
}
