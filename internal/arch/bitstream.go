package arch

import (
	"encoding/binary"
	"fmt"
	"himap/internal/diag"

	"himap/internal/ir"
)

// Bitstream encoding of configurations: the binary image a PE's
// configuration memory would hold. Each instruction packs into a
// fixed-width word whose size depends on the fabric's link-direction
// count (WordSize = 8 + ndirs bytes; 12 for 4-direction fabrics):
//
//	byte 0            opcode
//	byte 1            source A selector
//	byte 2            source B selector
//	bytes 3..2+ndirs  output register selectors (N, S, E, W[, NE, NW, SE, SW])
//	next 2 bytes      register write ports 0 and 1 (selector + register index)
//	next byte         memory-port flags (bit0 read, bit1 write) + store selector
//	last 2 bytes      16-bit signed immediate
//
// Operand selectors: bits 7..5 = kind, bits 4..0 = payload (direction or
// register index). The 4-direction layout is byte-identical to the
// pre-Fabric fixed 12-byte format. Memory-access correlation tags
// (IOSpec) are simulation metadata — in hardware the address generation
// walks the block iteration space — and are carried alongside the words,
// not inside them.
const (
	// WordBytes is the configuration word size of 4-direction fabrics
	// (mesh and torus); richer interconnects use WordSize.
	WordBytes = 12

	selNone  = 0
	selIn    = 1
	selALU   = 2
	selReg   = 3
	selConst = 4
	selMem   = 5
	selHold  = 6
)

// WordSize returns the configuration word size for a fabric with ndirs
// link directions per PE.
func WordSize(ndirs int) int { return 8 + ndirs }

// ErrImmediate reports an immediate that does not fit the 16-bit field.
type ErrImmediate struct{ V int64 }

func (e ErrImmediate) Error() string {
	return fmt.Sprintf("arch: immediate %d exceeds the 16-bit configuration field", e.V)
}

func encodeSel(o Operand) (byte, *int64, error) {
	switch o.Kind {
	case OpdNone:
		return selNone << 5, nil, nil
	case OpdIn:
		return selIn<<5 | byte(o.Dir), nil, nil
	case OpdALU:
		return selALU << 5, nil, nil
	case OpdReg:
		return selReg<<5 | byte(o.Reg), nil, nil
	case OpdConst:
		if o.Const < -(1<<15) || o.Const >= 1<<15 {
			return 0, nil, ErrImmediate{o.Const}
		}
		v := o.Const
		return selConst << 5, &v, nil
	case OpdMem:
		return selMem << 5, nil, nil
	case OpdHold:
		return selHold << 5, nil, nil
	}
	return 0, nil, fmt.Errorf("arch: unencodable operand %v: %w", o, diag.ErrConfigInvalid)
}

func decodeSel(b byte, imm int64) Operand {
	switch b >> 5 {
	case selIn:
		return FromIn(Dir(b & 7))
	case selALU:
		return FromALU()
	case selReg:
		return FromReg(int(b & 31))
	case selConst:
		return FromConst(imm)
	case selMem:
		return FromMem()
	case selHold:
		return Hold()
	}
	return Operand{}
}

// EncodeInstr packs one instruction into a WordSize(ndirs)-long slice.
func EncodeInstr(in *Instr, ndirs int) ([]byte, error) {
	if ndirs < int(NumDirs) || ndirs > int(MaxDirs) {
		return nil, fmt.Errorf("arch: %d link directions not encodable: %w", ndirs, diag.ErrConfigInvalid)
	}
	for d := ndirs; d < int(MaxDirs); d++ {
		if in.OutSel[d].Kind != OpdNone {
			return nil, fmt.Errorf("arch: OutSel %s set but word has %d direction slots: %w", Dir(d), ndirs, diag.ErrConfigInvalid)
		}
	}
	w := make([]byte, WordSize(ndirs))
	w[0] = byte(in.Op)
	var imm *int64
	note := func(b byte, v *int64, err error) (byte, error) {
		if err != nil {
			return 0, err
		}
		if v != nil {
			if imm != nil && *imm != *v {
				return 0, fmt.Errorf("arch: instruction needs two immediates (%d, %d); one field available: %w", *imm, *v, diag.ErrConfigInvalid)
			}
			imm = v
		}
		return b, nil
	}
	var err error
	if w[1], err = note(encodeSel(in.SrcA)); err != nil {
		return nil, err
	}
	if w[2], err = note(encodeSel(in.SrcB)); err != nil {
		return nil, err
	}
	for d := 0; d < ndirs; d++ {
		if w[3+d], err = note(encodeSel(in.OutSel[d])); err != nil {
			return nil, err
		}
	}
	rw0, mem, immOff := 3+ndirs, 5+ndirs, 6+ndirs
	if len(in.RegWr) > 2 {
		return nil, fmt.Errorf("arch: %d register writes exceed the 2 encodable ports: %w", len(in.RegWr), diag.ErrConfigInvalid)
	}
	for i, rw := range in.RegWr {
		sel, err2 := note(encodeSel(rw.Src))
		if err2 != nil {
			return nil, err2
		}
		// selector kind in bits 7..5, payload bits 4..3 unused for dirs>4;
		// pack the destination register into bits 2..0 of the next nibble:
		// byte = kindsel | reg<<0 is ambiguous for OpdReg sources (payload
		// collision), so register-write sources use a dedicated layout:
		// bits 7..5 kind, bits 4..2 payload, bits 1..0 destination.
		payload := sel & 31
		w[rw0+i] = (sel & 0xE0) | ((payload & 7) << 2) | byte(rw.Reg&3)
	}
	if in.MemRead.Active {
		w[mem] |= 1
	}
	if in.MemWrite.Active {
		w[mem] |= 2
		sel, err2 := note(encodeSel(in.MemWrite.Src))
		if err2 != nil {
			return nil, err2
		}
		w[mem] |= sel & 0xE0
		w[mem] |= (sel & 7) << 2 // payload (dir/reg low bits)
	}
	if imm != nil {
		binary.LittleEndian.PutUint16(w[immOff:], uint16(int16(*imm)))
	}
	return w, nil
}

// DecodeInstr unpacks a configuration word for a fabric with ndirs link
// directions. Memory tags are not part of the bitstream and come back
// empty.
func DecodeInstr(w []byte, ndirs int) (*Instr, error) {
	if ndirs < int(NumDirs) || ndirs > int(MaxDirs) {
		return nil, fmt.Errorf("arch: %d link directions not decodable: %w", ndirs, diag.ErrConfigInvalid)
	}
	if len(w) != WordSize(ndirs) {
		return nil, fmt.Errorf("arch: word length %d, want %d: %w", len(w), WordSize(ndirs), diag.ErrConfigInvalid)
	}
	rw0, mem, immOff := 3+ndirs, 5+ndirs, 6+ndirs
	imm := int64(int16(binary.LittleEndian.Uint16(w[immOff:])))
	in := &Instr{Op: ir.OpKind(w[0])}
	in.SrcA = decodeSel(w[1], imm)
	in.SrcB = decodeSel(w[2], imm)
	for d := 0; d < ndirs; d++ {
		in.OutSel[d] = decodeSel(w[3+d], imm)
	}
	for i := 0; i < 2; i++ {
		b := w[rw0+i]
		if b>>5 == selNone {
			continue
		}
		sel := (b & 0xE0) | ((b >> 2) & 7)
		in.RegWr = append(in.RegWr, RegWrite{Reg: int(b & 3), Src: decodeSel(sel, imm)})
	}
	if w[mem]&1 != 0 {
		in.MemRead = MemOp{Active: true}
	}
	if w[mem]&2 != 0 {
		sel := (w[mem] & 0xE0) | ((w[mem] >> 2) & 7)
		in.MemWrite = MemOp{Active: true, Src: decodeSel(sel, imm)}
	}
	return in, nil
}

// Bitstream is the full binary configuration image plus size accounting.
type Bitstream struct {
	// Words[r][c] holds PE (r,c)'s deduplicated configuration words.
	Words [][][][]byte
	// Schedule[r][c][t] indexes into Words[r][c] — the program-counter ROM
	// that regenerates the II-cycle stream from unique words (§V).
	Schedule [][][]int
	II       int
	// NDirs is the per-PE link-direction count the words were encoded
	// for; it fixes the word size (WordSize(NDirs)).
	NDirs int
}

// Encode produces the configuration-memory image: per PE the deduplicated
// instruction words plus the schedule ROM, exactly the storage scheme the
// paper describes ("HiMap keeps unique instructions in the configuration
// memory of each CGRA PE ... PE program counters generate the instruction
// stream").
func Encode(cfg *Config) (*Bitstream, error) {
	a := cfg.Fabric.CGRA
	ndirs := cfg.Fabric.NumLinkDirs()
	bs := &Bitstream{II: cfg.II, NDirs: ndirs}
	bs.Words = make([][][][]byte, a.Rows)
	bs.Schedule = make([][][]int, a.Rows)
	for r := 0; r < a.Rows; r++ {
		bs.Words[r] = make([][][]byte, a.Cols)
		bs.Schedule[r] = make([][]int, a.Cols)
		for c := 0; c < a.Cols; c++ {
			index := map[string]int{}
			bs.Schedule[r][c] = make([]int, cfg.II)
			for t := 0; t < cfg.II; t++ {
				w, err := EncodeInstr(&cfg.Slots[r][c][t], ndirs)
				if err != nil {
					return nil, fmt.Errorf("PE(%d,%d) slot %d: %v: %w", r, c, t, err, diag.ErrConfigInvalid)
				}
				key := string(w)
				idx, ok := index[key]
				if !ok {
					idx = len(bs.Words[r][c])
					index[key] = idx
					bs.Words[r][c] = append(bs.Words[r][c], w)
				}
				bs.Schedule[r][c][t] = idx
			}
			if len(bs.Words[r][c]) > a.ConfigDepth {
				return nil, fmt.Errorf("PE(%d,%d): %d words exceed configuration depth %d: %w",
					r, c, len(bs.Words[r][c]), a.ConfigDepth, diag.ErrConfigInvalid)
			}
		}
	}
	return bs, nil
}

// Decode reconstructs a configuration from the image (without the
// simulation-only memory tags and provenance comments).
func (bs *Bitstream) Decode(f Fabric) (*Config, error) {
	ndirs := bs.NDirs
	if ndirs == 0 {
		ndirs = f.NumLinkDirs()
	}
	cfg := NewConfig(f, bs.II)
	for r := 0; r < f.Rows; r++ {
		for c := 0; c < f.Cols; c++ {
			for t := 0; t < bs.II; t++ {
				in, err := DecodeInstr(bs.Words[r][c][bs.Schedule[r][c][t]], ndirs)
				if err != nil {
					return nil, err
				}
				cfg.Slots[r][c][t] = *in
			}
		}
	}
	return cfg, nil
}

// TotalBytes returns the image size: words plus the schedule ROM
// (ceil(log2(words)) bits per slot, byte-rounded per PE).
func (bs *Bitstream) TotalBytes() int {
	total := 0
	for r := range bs.Words {
		for c := range bs.Words[r] {
			wb := WordBytes
			if bs.NDirs != 0 {
				wb = WordSize(bs.NDirs)
			}
			total += len(bs.Words[r][c]) * wb
			bits := 1
			for 1<<bits < len(bs.Words[r][c]) {
				bits++
			}
			total += (bs.II*bits + 7) / 8
		}
	}
	return total
}

// MaxWordsPerPE returns the deepest per-PE configuration memory use.
func (bs *Bitstream) MaxWordsPerPE() int {
	max := 0
	for r := range bs.Words {
		for c := range bs.Words[r] {
			if n := len(bs.Words[r][c]); n > max {
				max = n
			}
		}
	}
	return max
}
