package arch

import (
	"fmt"
	"himap/internal/diag"
	"strings"
)

// Topology selects the link provider of a fabric: which typed directed
// links exist between PEs. Links are enumerated per PE as (direction,
// neighbor) pairs; consumers iterate the fabric's direction set instead
// of assuming the fixed 4-neighbor mesh.
type Topology uint8

const (
	// TopoMesh is the classic 4-neighbor mesh with no wrap-around.
	TopoMesh Topology = iota
	// TopoTorus is the 4-neighbor mesh with wrap-around links on both
	// axes. Wrap-around makes every translation of the array a graph
	// automorphism, which is what lets replication reuse canonical
	// routes verbatim (coordinates wrap instead of falling off edges).
	TopoTorus
	// TopoMeshDiag is the mesh plus the four diagonal links (HyCUBE-
	// style richer interconnect); no wrap-around.
	TopoMeshDiag
)

var topoNames = [...]string{"mesh", "torus", "diag"}

// String returns the CLI name of the topology.
func (t Topology) String() string {
	if int(t) < len(topoNames) {
		return topoNames[t]
	}
	return fmt.Sprintf("Topology(%d)", uint8(t))
}

// ParseTopology maps a CLI name to a Topology.
func ParseTopology(s string) (Topology, error) {
	switch strings.ToLower(s) {
	case "mesh", "":
		return TopoMesh, nil
	case "torus":
		return TopoTorus, nil
	case "diag", "mesh+diag", "meshdiag":
		return TopoMeshDiag, nil
	}
	return TopoMesh, fmt.Errorf("arch: unknown topology %q (want mesh|torus|diag): %w", s, diag.ErrConfigInvalid)
}

// NumDirs returns how many link directions the topology uses per PE.
//
//himap:noalloc
func (t Topology) NumDirs() int {
	if t == TopoMeshDiag {
		return int(MaxDirs)
	}
	return int(NumDirs)
}

// Wraps reports whether links wrap around the array edges.
//
//himap:noalloc
func (t Topology) Wraps() bool { return t == TopoTorus }

// MemPolicy selects which PEs carry a memory port (load/store capable).
type MemPolicy uint8

const (
	// MemAll gives every PE a memory port — the idealized homogeneous
	// array the paper's evaluation architecture assumes (§VI).
	MemAll MemPolicy = iota
	// MemBoundary restricts memory ports to the boundary columns
	// (column 0 and column Cols-1) — the classic HyCUBE-style layout
	// where only edge PEs reach the data memory banks.
	MemBoundary
	// MemNone removes memory ports entirely. It arises for interior
	// tiles cut from a boundary-mem fabric and is only usable by
	// kernels without memory operations.
	MemNone
)

var memNames = [...]string{"all", "boundary", "none"}

// String returns the CLI name of the policy.
func (p MemPolicy) String() string {
	if int(p) < len(memNames) {
		return memNames[p]
	}
	return fmt.Sprintf("MemPolicy(%d)", uint8(p))
}

// ParseMemPolicy maps a CLI name to a MemPolicy.
func ParseMemPolicy(s string) (MemPolicy, error) {
	switch strings.ToLower(s) {
	case "all", "":
		return MemAll, nil
	case "boundary":
		return MemBoundary, nil
	case "none":
		return MemNone, nil
	}
	return MemAll, fmt.Errorf("arch: unknown memory policy %q (want all|boundary|none): %w", s, diag.ErrConfigInvalid)
}

// PECaps is the capability class of one PE.
type PECaps uint8

const (
	// CapCompute marks an ALU-capable PE (every PE computes).
	CapCompute PECaps = 1 << iota
	// CapMemory marks a PE with a data-memory port (loads and stores).
	CapMemory
)

// Has reports whether all capabilities in want are present.
func (c PECaps) Has(want PECaps) bool { return c&want == want }

// Link is one typed directed link of a fabric.
type Link struct {
	R, C     int // source PE
	Dir      Dir // direction label (determines the output register used)
	ToR, ToC int // destination PE
}

// Fabric is the full architecture model: the PE array parameters (CGRA)
// plus the interconnect topology and the per-PE capability layout. The
// zero Topology/Mem values reproduce the pre-Fabric model (mesh links,
// every PE memory-capable), so Fabric{CGRA: cg} is a drop-in upgrade.
//
// Fabric is a comparable value type (no slices or maps) so it can key
// memo tables and print deterministically with %+v.
type Fabric struct {
	CGRA
	Topology Topology
	Mem      MemPolicy
}

// DefaultFabric returns the evaluation architecture of §VI as a fabric:
// mesh links, every PE memory-capable.
func DefaultFabric(rows, cols int) Fabric {
	return Fabric{CGRA: Default(rows, cols)}
}

// NumLinkDirs returns how many direction slots this fabric's PEs use.
//
//himap:noalloc
func (f Fabric) NumLinkDirs() int { return f.Topology.NumDirs() }

// Caps returns the capability class of PE (r, c).
func (f Fabric) Caps(r, c int) PECaps {
	caps := CapCompute
	if f.MemCapable(r, c) {
		caps |= CapMemory
	}
	return caps
}

// MemCapable reports whether PE (r, c) has a memory port.
func (f Fabric) MemCapable(r, c int) bool {
	switch f.Mem {
	case MemAll:
		return true
	case MemBoundary:
		return c == 0 || c == f.Cols-1
	}
	return false
}

// Uniform reports whether every PE has the same capability class.
func (f Fabric) Uniform() bool {
	switch f.Mem {
	case MemAll, MemNone:
		return true
	}
	return f.Cols <= 2 // boundary columns cover the whole array
}

// NumMemPEs returns how many PEs carry a memory port.
func (f Fabric) NumMemPEs() int {
	switch f.Mem {
	case MemAll:
		return f.NumPEs()
	case MemBoundary:
		if f.Cols <= 2 {
			return f.NumPEs()
		}
		return 2 * f.Rows
	}
	return 0
}

// MemPEs returns the memory-capable PE coordinates in row-major order.
func (f Fabric) MemPEs() [][2]int {
	var out [][2]int
	for r := 0; r < f.Rows; r++ {
		for c := 0; c < f.Cols; c++ {
			if f.MemCapable(r, c) {
				out = append(out, [2]int{r, c})
			}
		}
	}
	return out
}

// WrapCoord folds (r, c) back into the array for wrap-around
// topologies; for bounded topologies it returns the coordinate
// unchanged.
//
//himap:noalloc
func (f Fabric) WrapCoord(r, c int) (int, int) {
	if !f.Topology.Wraps() {
		return r, c
	}
	return mod(r, f.Rows), mod(c, f.Cols)
}

// LinkNeighbor returns the PE reached from (r, c) over the link in
// direction d under this fabric's topology, and whether the link exists.
// On a torus the coordinate wraps; self-links (wrap in a dimension of
// size 1) are suppressed.
func (f Fabric) LinkNeighbor(r, c int, d Dir) (nr, nc int, ok bool) {
	if int(d) >= f.NumLinkDirs() {
		return 0, 0, false
	}
	dr, dc := d.Delta()
	nr, nc = r+dr, c+dc
	if f.InBounds(nr, nc) {
		return nr, nc, true
	}
	if !f.Topology.Wraps() {
		return nr, nc, false
	}
	nr, nc = mod(nr, f.Rows), mod(nc, f.Cols)
	if nr == r && nc == c {
		return nr, nc, false // wrap in a size-1 dimension is a self-link
	}
	return nr, nc, true
}

// Links enumerates every typed directed link of the fabric in
// deterministic (row, col, dir) order.
func (f Fabric) Links() []Link {
	var out []Link
	nd := f.NumLinkDirs()
	for r := 0; r < f.Rows; r++ {
		for c := 0; c < f.Cols; c++ {
			for d := 0; d < nd; d++ {
				if nr, nc, ok := f.LinkNeighbor(r, c, Dir(d)); ok {
					out = append(out, Link{R: r, C: c, Dir: Dir(d), ToR: nr, ToC: nc})
				}
			}
		}
	}
	return out
}

// Validate checks the fabric parameters.
func (f Fabric) Validate() error {
	if err := f.CGRA.Validate(); err != nil {
		return err
	}
	if int(f.Topology) >= len(topoNames) {
		return fmt.Errorf("arch: bad topology %d: %w", f.Topology, diag.ErrConfigInvalid)
	}
	if int(f.Mem) >= len(memNames) {
		return fmt.Errorf("arch: bad memory policy %d: %w", f.Mem, diag.ErrConfigInvalid)
	}
	return nil
}

// String renders the fabric. The default mesh/all-mem fabric renders
// exactly like the bare array size ("8x8") so diagnostics and error
// stamps are unchanged from the pre-Fabric model; other fabrics append
// their topology and memory layout.
func (f Fabric) String() string {
	if f.Topology == TopoMesh && f.Mem == MemAll {
		return f.CGRA.String()
	}
	return fmt.Sprintf("%s/%s/mem-%s", f.CGRA.String(), f.Topology, f.Mem)
}

//himap:noalloc
func mod(a, n int) int {
	a %= n
	if a < 0 {
		a += n
	}
	return a
}
