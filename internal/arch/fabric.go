package arch

import (
	"fmt"
	"himap/internal/diag"
	"strings"
)

// Topology selects the link provider of a fabric: which typed directed
// links exist between PEs. Links are enumerated per PE as (direction,
// neighbor) pairs; consumers iterate the fabric's direction set instead
// of assuming the fixed 4-neighbor mesh.
type Topology uint8

const (
	// TopoMesh is the classic 4-neighbor mesh with no wrap-around.
	TopoMesh Topology = iota
	// TopoTorus is the 4-neighbor mesh with wrap-around links on both
	// axes. Wrap-around makes every translation of the array a graph
	// automorphism, which is what lets replication reuse canonical
	// routes verbatim (coordinates wrap instead of falling off edges).
	TopoTorus
	// TopoMeshDiag is the mesh plus the four diagonal links (HyCUBE-
	// style richer interconnect); no wrap-around.
	TopoMeshDiag
)

var topoNames = [...]string{"mesh", "torus", "diag"}

// String returns the CLI name of the topology.
func (t Topology) String() string {
	if int(t) < len(topoNames) {
		return topoNames[t]
	}
	return fmt.Sprintf("Topology(%d)", uint8(t))
}

// ParseTopology maps a CLI name to a Topology.
func ParseTopology(s string) (Topology, error) {
	switch strings.ToLower(s) {
	case "mesh", "":
		return TopoMesh, nil
	case "torus":
		return TopoTorus, nil
	case "diag", "mesh+diag", "meshdiag":
		return TopoMeshDiag, nil
	}
	return TopoMesh, fmt.Errorf("arch: unknown topology %q (want %s): %w", s, TopologyNames(), diag.ErrConfigInvalid)
}

// TopologyNames enumerates the accepted -fabric / "topology" values,
// pipe-separated. CLI help text and parse errors both render this, so
// the accepted set cannot drift from the parser.
func TopologyNames() string { return strings.Join(topoNames[:], "|") }

// NumDirs returns how many link directions the topology uses per PE.
//
//himap:noalloc
func (t Topology) NumDirs() int {
	if t == TopoMeshDiag {
		return int(MaxDirs)
	}
	return int(NumDirs)
}

// Wraps reports whether links wrap around the array edges.
//
//himap:noalloc
func (t Topology) Wraps() bool { return t == TopoTorus }

// MemPolicy selects which PEs carry a memory port (load/store capable).
type MemPolicy uint8

const (
	// MemAll gives every PE a memory port — the idealized homogeneous
	// array the paper's evaluation architecture assumes (§VI).
	MemAll MemPolicy = iota
	// MemBoundary restricts memory ports to the boundary columns
	// (column 0 and column Cols-1) — the classic HyCUBE-style layout
	// where only edge PEs reach the data memory banks.
	MemBoundary
	// MemNone removes memory ports entirely. It arises for interior
	// tiles cut from a boundary-mem fabric and is only usable by
	// kernels without memory operations.
	MemNone
)

var memNames = [...]string{"all", "boundary", "none"}

// String returns the CLI name of the policy.
func (p MemPolicy) String() string {
	if int(p) < len(memNames) {
		return memNames[p]
	}
	return fmt.Sprintf("MemPolicy(%d)", uint8(p))
}

// ParseMemPolicy maps a CLI name to a MemPolicy.
func ParseMemPolicy(s string) (MemPolicy, error) {
	switch strings.ToLower(s) {
	case "all", "":
		return MemAll, nil
	case "boundary":
		return MemBoundary, nil
	case "none":
		return MemNone, nil
	}
	return MemAll, fmt.Errorf("arch: unknown memory policy %q (want %s): %w", s, MemPolicyNames(), diag.ErrConfigInvalid)
}

// MemPolicyNames enumerates the accepted -mem-pes / "mem_pes" values,
// pipe-separated, from the same table the parser and String use.
func MemPolicyNames() string { return strings.Join(memNames[:], "|") }

// BandwidthClass selects the link bandwidth model of a fabric: how many
// simultaneous values each inter-PE link (and each register-file port)
// carries per cycle. It generalizes the implicit "one value per link per
// cycle" assumption into a declared resource the router prices. The zero
// value reproduces the legacy model exactly.
type BandwidthClass uint8

const (
	// BWUnit is the legacy model: every link carries one value per
	// cycle and register files keep their declared port counts.
	BWUnit BandwidthClass = iota
	// BWDouble double-pumps the PE-local register file: the effective
	// read and write port counts are twice the declared ones, relaxing
	// the RF bottleneck. Inter-PE links still carry one value per cycle
	// — the configuration word encodes a single output selection per
	// link per cycle, so link capacity is not an expressible axis.
	BWDouble
	// BWBus replaces the per-direction output registers with a single
	// shared egress register per PE: at most one outgoing link departs
	// per cycle (single-driver bus). Fanout to several neighbors takes
	// successive cycles, one drive each.
	BWBus
	// BWNarrowRF narrows the register file to one read and one write
	// port per cycle regardless of the declared port counts.
	BWNarrowRF
)

var bwNames = [...]string{"unit", "double", "bus", "narrow-rf"}

// String returns the CLI name of the bandwidth class.
func (b BandwidthClass) String() string {
	if int(b) < len(bwNames) {
		return bwNames[b]
	}
	return fmt.Sprintf("BandwidthClass(%d)", uint8(b))
}

// ParseBandwidth maps a CLI name to a BandwidthClass.
func ParseBandwidth(s string) (BandwidthClass, error) {
	switch strings.ToLower(s) {
	case "unit", "":
		return BWUnit, nil
	case "double":
		return BWDouble, nil
	case "bus":
		return BWBus, nil
	case "narrow-rf", "narrowrf":
		return BWNarrowRF, nil
	}
	return BWUnit, fmt.Errorf("arch: unknown bandwidth class %q (want %s): %w", s, BandwidthNames(), diag.ErrConfigInvalid)
}

// BandwidthNames enumerates the accepted -bandwidth / "bandwidth"
// values, pipe-separated.
func BandwidthNames() string { return strings.Join(bwNames[:], "|") }

// CostClass selects the per-PE cost model of a fabric: the silicon
// corner the array is implemented in. It scales the power model (clock,
// static and per-activity dynamic power) without changing routing. The
// zero value is the balanced 40 nm corner the paper evaluates.
type CostClass uint8

const (
	// CostBalanced is the default corner; power.ModelFor returns the
	// paper's 40 nm model unchanged.
	CostBalanced CostClass = iota
	// CostLowPower is a low-leakage corner: slower clock, markedly
	// lower static and dynamic power.
	CostLowPower
	// CostHighPerf is a high-frequency corner: faster clock at a
	// superlinear power premium.
	CostHighPerf
)

var costNames = [...]string{"balanced", "low-power", "high-perf"}

// String returns the CLI name of the cost class.
func (cc CostClass) String() string {
	if int(cc) < len(costNames) {
		return costNames[cc]
	}
	return fmt.Sprintf("CostClass(%d)", uint8(cc))
}

// ParseCostClass maps a CLI name to a CostClass.
func ParseCostClass(s string) (CostClass, error) {
	switch strings.ToLower(s) {
	case "balanced", "":
		return CostBalanced, nil
	case "low-power", "lowpower":
		return CostLowPower, nil
	case "high-perf", "highperf":
		return CostHighPerf, nil
	}
	return CostBalanced, fmt.Errorf("arch: unknown cost class %q (want %s): %w", s, CostClassNames(), diag.ErrConfigInvalid)
}

// CostClassNames enumerates the accepted -cost / "cost_class" values,
// pipe-separated.
func CostClassNames() string { return strings.Join(costNames[:], "|") }

// PECaps is the capability class of one PE.
type PECaps uint8

const (
	// CapCompute marks an ALU-capable PE (every PE computes).
	CapCompute PECaps = 1 << iota
	// CapMemory marks a PE with a data-memory port (loads and stores).
	CapMemory
)

// Has reports whether all capabilities in want are present.
func (c PECaps) Has(want PECaps) bool { return c&want == want }

// Link is one typed directed link of a fabric.
type Link struct {
	R, C     int // source PE
	Dir      Dir // direction label (determines the output register used)
	ToR, ToC int // destination PE
}

// Fabric is the full architecture model: the PE array parameters (CGRA)
// plus the interconnect topology, the per-PE capability layout, the link
// bandwidth class, and the PE cost class. The zero values of all four
// axes reproduce the pre-Fabric model (mesh links, every PE
// memory-capable, unit bandwidth, balanced cost), so Fabric{CGRA: cg}
// is a drop-in upgrade.
//
// Fabric is a comparable value type (no slices or maps) so it can key
// memo tables and print deterministically with %+v.
type Fabric struct {
	CGRA
	Topology  Topology
	Mem       MemPolicy
	Bandwidth BandwidthClass
	Cost      CostClass
}

// DefaultFabric returns the evaluation architecture of §VI as a fabric:
// mesh links, every PE memory-capable.
func DefaultFabric(rows, cols int) Fabric {
	return Fabric{CGRA: Default(rows, cols)}
}

// NumLinkDirs returns how many direction slots this fabric's PEs use.
//
//himap:noalloc
func (f Fabric) NumLinkDirs() int { return f.Topology.NumDirs() }

// LinkCapacity returns how many distinct values one inter-PE link
// carries per cycle. This is 1 for every bandwidth class: each link's
// output register holds a single value per cycle and the configuration
// word encodes a single source selection per link per cycle, so no
// class can widen it. Bandwidth classes instead act on the register
// file (BWDouble, BWNarrowRF) or share the egress lane (BWBus). The
// helper stays as the seam the routing capacity model and the
// feasibility pre-check read, rather than hardcoding 1 at each site.
//
//himap:noalloc
func (f Fabric) LinkCapacity() int { return 1 }

// SharedOutBus reports whether all output directions of a PE share one
// egress lane per cycle (BWBus). When true the MRRG collapses the
// per-direction output registers of a PE into a single routing resource.
//
//himap:noalloc
func (f Fabric) SharedOutBus() bool { return f.Bandwidth == BWBus }

// RFReadCap returns the effective register-file read port count under
// this fabric's bandwidth class.
//
//himap:noalloc
func (f Fabric) RFReadCap() int {
	switch f.Bandwidth {
	case BWDouble:
		return 2 * f.RFReadPorts
	case BWNarrowRF:
		return 1
	}
	return f.RFReadPorts
}

// RFWriteCap returns the effective register-file write port count under
// this fabric's bandwidth class.
//
//himap:noalloc
func (f Fabric) RFWriteCap() int {
	switch f.Bandwidth {
	case BWDouble:
		return 2 * f.RFWritePorts
	case BWNarrowRF:
		return 1
	}
	return f.RFWritePorts
}

// Caps returns the capability class of PE (r, c).
func (f Fabric) Caps(r, c int) PECaps {
	caps := CapCompute
	if f.MemCapable(r, c) {
		caps |= CapMemory
	}
	return caps
}

// MemCapable reports whether PE (r, c) has a memory port.
func (f Fabric) MemCapable(r, c int) bool {
	switch f.Mem {
	case MemAll:
		return true
	case MemBoundary:
		return c == 0 || c == f.Cols-1
	}
	return false
}

// Uniform reports whether every PE has the same capability class.
func (f Fabric) Uniform() bool {
	switch f.Mem {
	case MemAll, MemNone:
		return true
	}
	return f.Cols <= 2 // boundary columns cover the whole array
}

// NumMemPEs returns how many PEs carry a memory port.
func (f Fabric) NumMemPEs() int {
	switch f.Mem {
	case MemAll:
		return f.NumPEs()
	case MemBoundary:
		if f.Cols <= 2 {
			return f.NumPEs()
		}
		return 2 * f.Rows
	}
	return 0
}

// MemPEs returns the memory-capable PE coordinates in row-major order.
func (f Fabric) MemPEs() [][2]int {
	var out [][2]int
	for r := 0; r < f.Rows; r++ {
		for c := 0; c < f.Cols; c++ {
			if f.MemCapable(r, c) {
				out = append(out, [2]int{r, c})
			}
		}
	}
	return out
}

// WrapCoord folds (r, c) back into the array for wrap-around
// topologies; for bounded topologies it returns the coordinate
// unchanged.
//
//himap:noalloc
func (f Fabric) WrapCoord(r, c int) (int, int) {
	if !f.Topology.Wraps() {
		return r, c
	}
	return mod(r, f.Rows), mod(c, f.Cols)
}

// LinkNeighbor returns the PE reached from (r, c) over the link in
// direction d under this fabric's topology, and whether the link exists.
// On a torus the coordinate wraps; self-links (wrap in a dimension of
// size 1) are suppressed.
func (f Fabric) LinkNeighbor(r, c int, d Dir) (nr, nc int, ok bool) {
	if int(d) >= f.NumLinkDirs() {
		return 0, 0, false
	}
	dr, dc := d.Delta()
	nr, nc = r+dr, c+dc
	if f.InBounds(nr, nc) {
		return nr, nc, true
	}
	if !f.Topology.Wraps() {
		return nr, nc, false
	}
	nr, nc = mod(nr, f.Rows), mod(nc, f.Cols)
	if nr == r && nc == c {
		return nr, nc, false // wrap in a size-1 dimension is a self-link
	}
	return nr, nc, true
}

// Links enumerates every typed directed link of the fabric in
// deterministic (row, col, dir) order.
func (f Fabric) Links() []Link {
	var out []Link
	nd := f.NumLinkDirs()
	for r := 0; r < f.Rows; r++ {
		for c := 0; c < f.Cols; c++ {
			for d := 0; d < nd; d++ {
				if nr, nc, ok := f.LinkNeighbor(r, c, Dir(d)); ok {
					out = append(out, Link{R: r, C: c, Dir: Dir(d), ToR: nr, ToC: nc})
				}
			}
		}
	}
	return out
}

// Validate checks the fabric parameters.
func (f Fabric) Validate() error {
	if err := f.CGRA.Validate(); err != nil {
		return err
	}
	if int(f.Topology) >= len(topoNames) {
		return fmt.Errorf("arch: bad topology %d: %w", f.Topology, diag.ErrConfigInvalid)
	}
	if int(f.Mem) >= len(memNames) {
		return fmt.Errorf("arch: bad memory policy %d: %w", f.Mem, diag.ErrConfigInvalid)
	}
	if int(f.Bandwidth) >= len(bwNames) {
		return fmt.Errorf("arch: bad bandwidth class %d: %w", f.Bandwidth, diag.ErrConfigInvalid)
	}
	if int(f.Cost) >= len(costNames) {
		return fmt.Errorf("arch: bad cost class %d: %w", f.Cost, diag.ErrConfigInvalid)
	}
	return nil
}

// String renders the fabric. The default mesh/all-mem/unit-bandwidth/
// balanced-cost fabric renders exactly like the bare array size ("8x8")
// so diagnostics and error stamps are unchanged from the pre-Fabric
// model; other fabrics append the axes that differ from the default.
func (f Fabric) String() string {
	s := f.CGRA.String()
	if f.Topology != TopoMesh || f.Mem != MemAll {
		s = fmt.Sprintf("%s/%s/mem-%s", s, f.Topology, f.Mem)
	}
	if f.Bandwidth != BWUnit {
		s += "/bw-" + f.Bandwidth.String()
	}
	if f.Cost != CostBalanced {
		s += "/cost-" + f.Cost.String()
	}
	return s
}

// ExploreFabrics returns the default design-space candidate set for a
// rows×cols array: one fabric per interesting point on each axis
// (topology, memory layout, bandwidth, cost corner). The set is
// deterministic and intentionally includes bandwidth-constrained points
// that may be infeasible for some kernels — an explore sweep reports
// those as typed failures rather than omitting them.
func ExploreFabrics(rows, cols int) []Fabric {
	base := DefaultFabric(rows, cols)
	out := make([]Fabric, 0, 9)
	add := func(mut func(*Fabric)) {
		f := base
		mut(&f)
		out = append(out, f)
	}
	add(func(*Fabric) {})
	add(func(f *Fabric) { f.Topology = TopoTorus })
	add(func(f *Fabric) { f.Topology = TopoMeshDiag })
	add(func(f *Fabric) { f.Mem = MemBoundary })
	add(func(f *Fabric) { f.Bandwidth = BWDouble })
	add(func(f *Fabric) { f.Bandwidth = BWBus })
	add(func(f *Fabric) { f.Bandwidth = BWNarrowRF })
	add(func(f *Fabric) { f.Cost = CostLowPower })
	add(func(f *Fabric) { f.Topology = TopoTorus; f.Cost = CostHighPerf })
	return out
}

//himap:noalloc
func mod(a, n int) int {
	a %= n
	if a < 0 {
		a += n
	}
	return a
}
