package arch

import (
	"strings"
	"testing"

	"himap/internal/ir"
)

func TestDirDeltaOpposite(t *testing.T) {
	for d := Dir(0); d < NumDirs; d++ {
		dr, dc := d.Delta()
		or, oc := d.Opposite().Delta()
		if dr+or != 0 || dc+oc != 0 {
			t.Errorf("%v: delta (%d,%d) opposite (%d,%d)", d, dr, dc, or, oc)
		}
		if d.Opposite().Opposite() != d {
			t.Errorf("%v: double opposite", d)
		}
	}
}

func TestCGRANeighbor(t *testing.T) {
	c := Default(4, 4)
	if _, _, ok := c.Neighbor(0, 0, North); ok {
		t.Error("north of (0,0) should not exist")
	}
	if r, cc, ok := c.Neighbor(0, 0, South); !ok || r != 1 || cc != 0 {
		t.Errorf("south of (0,0) = (%d,%d,%v)", r, cc, ok)
	}
	if r, cc, ok := c.Neighbor(2, 2, East); !ok || r != 2 || cc != 3 {
		t.Errorf("east of (2,2) = (%d,%d,%v)", r, cc, ok)
	}
}

func TestDefaultParametersMatchPaper(t *testing.T) {
	c := Default(8, 8)
	if c.NumRegs != 4 || c.RFReadPorts != 2 || c.RFWritePorts != 2 {
		t.Errorf("RF config %d regs %dr/%dw", c.NumRegs, c.RFReadPorts, c.RFWritePorts)
	}
	if c.ConfigDepth != 32 || c.DataMemWords != 64 {
		t.Errorf("memories %d cfg %d data", c.ConfigDepth, c.DataMemWords)
	}
	if c.ClockMHz != 510 {
		t.Errorf("clock %v", c.ClockMHz)
	}
	if err := c.Validate(); err != nil {
		t.Error(err)
	}
	if c.NumPEs() != 64 {
		t.Errorf("NumPEs = %d", c.NumPEs())
	}
}

func TestCGRAValidateRejectsBad(t *testing.T) {
	bad := Default(0, 4)
	if err := bad.Validate(); err == nil {
		t.Error("0-row array should fail")
	}
	bad = Default(4, 4)
	bad.ClockMHz = 0
	if err := bad.Validate(); err == nil {
		t.Error("0 MHz should fail")
	}
}

func TestInstrValidatePortLimits(t *testing.T) {
	c := Default(2, 2)
	in := Instr{Op: ir.OpAdd, SrcA: FromReg(0), SrcB: FromReg(1)}
	in.OutSel[East] = FromReg(2) // third distinct register read
	if err := in.Validate(c); err == nil {
		t.Error("3 register reads must exceed 2 read ports")
	}
	in.OutSel[East] = FromReg(0) // re-reading r0 is one port
	if err := in.Validate(c); err != nil {
		t.Errorf("2 distinct reads should pass: %v", err)
	}
	in.RegWr = []RegWrite{{0, FromALU()}, {1, FromALU()}, {2, FromALU()}}
	if err := in.Validate(c); err == nil {
		t.Error("3 register writes must exceed 2 write ports")
	}
	in.RegWr = []RegWrite{{0, FromALU()}, {0, FromALU()}}
	if err := in.Validate(c); err == nil {
		t.Error("double write to one register must fail")
	}
}

func TestInstrValidateALUAndMemCoupling(t *testing.T) {
	c := Default(2, 2)
	in := Instr{}
	in.OutSel[North] = FromALU()
	if err := in.Validate(c); err == nil {
		t.Error("ALU tap without compute op must fail")
	}
	in = Instr{}
	in.OutSel[North] = FromMem()
	if err := in.Validate(c); err == nil {
		t.Error("mem tap without memory read must fail")
	}
	in.MemRead = MemOp{Active: true, Tag: "A@0"}
	if err := in.Validate(c); err != nil {
		t.Errorf("mem tap with read should pass: %v", err)
	}
	in = Instr{Op: ir.OpAdd, SrcA: FromIn(North)}
	if err := in.Validate(c); err == nil {
		t.Error("compute with missing B operand must fail")
	}
}

func TestInstrString(t *testing.T) {
	in := Instr{Op: ir.OpMul, SrcA: FromIn(West), SrcB: FromConst(3)}
	in.OutSel[East] = FromALU()
	in.RegWr = []RegWrite{{2, FromIn(North)}}
	s := in.String()
	for _, want := range []string{"mul", "inW", "#3", "outE=alu", "r2=inN"} {
		if !strings.Contains(s, want) {
			t.Errorf("String %q missing %q", s, want)
		}
	}
}

func TestConfigSlotWrap(t *testing.T) {
	cfg := NewConfig(DefaultFabric(2, 2), 3)
	cfg.At(1, 1, 4).Op = ir.OpAdd
	if cfg.Slots[1][1][1].Op != ir.OpAdd {
		t.Error("At must wrap time modulo II")
	}
	if cfg.At(1, 1, -2).Op != ir.OpAdd {
		t.Error("At must wrap negative time")
	}
}

func TestConfigUtilizationAndUnique(t *testing.T) {
	cfg := NewConfig(DefaultFabric(2, 2), 2)
	*cfg.At(0, 0, 0) = Instr{Op: ir.OpAdd, SrcA: FromReg(0), SrcB: FromReg(1)}
	*cfg.At(0, 0, 1) = Instr{Op: ir.OpAdd, SrcA: FromReg(0), SrcB: FromReg(1)}
	if got := cfg.BusyFUs(); got != 2 {
		t.Errorf("BusyFUs = %d", got)
	}
	if got := cfg.Utilization(); got != 0.25 {
		t.Errorf("Utilization = %v, want 0.25", got)
	}
	// Identical instructions compress to one configuration entry.
	if got := cfg.UniqueInstrs(0, 0); got != 1 {
		t.Errorf("UniqueInstrs = %d, want 1 (dedup)", got)
	}
	if got := cfg.UniqueInstrs(1, 1); got != 1 {
		t.Errorf("UniqueInstrs of all-nop = %d, want 1", got)
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestConfigValidateConfigDepth(t *testing.T) {
	a := DefaultFabric(1, 1)
	a.ConfigDepth = 2
	cfg := NewConfig(a, 4)
	for tt := 0; tt < 4; tt++ {
		*cfg.At(0, 0, tt) = Instr{Op: ir.OpAdd, SrcA: FromReg(0), SrcB: FromConst(int64(tt))}
	}
	if err := cfg.Validate(); err == nil {
		t.Error("4 unique instructions must exceed depth 2")
	}
}

func TestIsNop(t *testing.T) {
	var in Instr
	if !in.IsNop() {
		t.Error("zero instruction should be a nop")
	}
	in.OutSel[West] = FromIn(East)
	if in.IsNop() {
		t.Error("routing instruction is not a nop")
	}
}

func TestCheckDataMemory(t *testing.T) {
	cfg := NewConfig(DefaultFabric(1, 1), 4)
	// 4 loads and 4 stores, no phase skew: 16 words needed, 64 available.
	for s := 0; s < 4; s++ {
		cfg.Loads = append(cfg.Loads, IOSpec{R: 0, C: 0, Slot: s, Tensor: "A", Index: []int{s}})
		cfg.Stores = append(cfg.Stores, IOSpec{R: 0, C: 0, Slot: s, Tensor: "O", Index: []int{s}})
	}
	if err := cfg.CheckDataMemory(); err != nil {
		t.Errorf("16 words should fit: %v", err)
	}
	// Huge prologue skew on one load blows the budget.
	cfg.Loads = append(cfg.Loads, IOSpec{R: 0, C: 0, Slot: 0, Phase: -60, Tensor: "A", Index: []int{9}})
	if err := cfg.CheckDataMemory(); err == nil {
		t.Error("62-word access on top of 16 must exceed 64")
	}
}
