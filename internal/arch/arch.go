// Package arch models the target CGRA of §I/§VI: a c×c array of
// processing elements (PEs) in a 2-D mesh. Each PE contains an ALU, a
// register file with four registers and two read / two write ports, a
// crossbar switch connecting neighbor inputs, the ALU, and the register
// file to the four directional output registers, a 32-entry configuration
// memory, and a 64-word data memory whose read/write ports feed and drain
// the computation (the paper adds the per-PE data memory to eliminate
// memory access bottlenecks).
//
// The package also defines the per-cycle instruction (configuration word)
// format that mappings compile to and the cycle-accurate simulator
// executes.
package arch

import (
	"fmt"

	"himap/internal/diag"
)

// Dir is a link direction. The first four (N/S/E/W) are the classic mesh
// directions; the remaining four are the diagonal links some fabrics add
// (see Topology). Fabrics with fewer links simply never emit the extra
// directions, so code sized for MaxDirs works for every topology.
type Dir uint8

// Link directions. North decreases the row index.
const (
	North Dir = iota
	South
	East
	West
	// NumDirs is the mesh direction count; kept for the many mesh-only
	// call sites (default fabrics never exceed it).
	NumDirs
	NorthEast Dir = iota - 1 // NumDirs shares the value of NorthEast's slot
	NorthWest
	SouthEast
	SouthWest
	// MaxDirs bounds the direction index across all topologies.
	MaxDirs
)

var dirNames = [...]string{"N", "S", "E", "W", "NE", "NW", "SE", "SW"}

// String returns the short direction name.
func (d Dir) String() string {
	if int(d) < len(dirNames) {
		return dirNames[d]
	}
	return fmt.Sprintf("Dir(%d)", uint8(d))
}

// Delta returns the (row, col) step of the direction.
func (d Dir) Delta() (dr, dc int) {
	switch d {
	case North:
		return -1, 0
	case South:
		return 1, 0
	case East:
		return 0, 1
	case West:
		return 0, -1
	case NorthEast:
		return -1, 1
	case NorthWest:
		return -1, -1
	case SouthEast:
		return 1, 1
	case SouthWest:
		return 1, -1
	}
	panic(fmt.Sprintf("arch: bad direction %d", d))
}

// Opposite returns the reverse direction.
func (d Dir) Opposite() Dir {
	switch d {
	case North:
		return South
	case South:
		return North
	case East:
		return West
	case West:
		return East
	case NorthEast:
		return SouthWest
	case NorthWest:
		return SouthEast
	case SouthEast:
		return NorthWest
	case SouthWest:
		return NorthEast
	}
	panic(fmt.Sprintf("arch: bad direction %d", d))
}

// CGRA describes a target array instance.
type CGRA struct {
	Rows, Cols   int
	NumRegs      int     // registers per PE register file
	RFReadPorts  int     // register-file read ports per cycle
	RFWritePorts int     // register-file write ports per cycle
	ConfigDepth  int     // configuration-memory entries per PE
	DataMemWords int     // per-PE data memory capacity
	ClockMHz     float64 // maximum clock frequency
}

// Default returns the evaluation architecture of §VI for a rows×cols
// array: 4 registers (2r/2w), 32 configuration entries, 64 data words,
// 510 MHz.
func Default(rows, cols int) CGRA {
	return CGRA{
		Rows: rows, Cols: cols,
		NumRegs:      4,
		RFReadPorts:  2,
		RFWritePorts: 2,
		ConfigDepth:  32,
		DataMemWords: 64,
		ClockMHz:     510,
	}
}

// NumPEs returns the PE count.
//
//himap:noalloc
func (c CGRA) NumPEs() int { return c.Rows * c.Cols }

// InBounds reports whether (r, cc) is a valid PE coordinate.
func (c CGRA) InBounds(r, cc int) bool {
	return r >= 0 && r < c.Rows && cc >= 0 && cc < c.Cols
}

// Neighbor returns the PE coordinate in direction d from (r, cc) and
// whether it exists.
func (c CGRA) Neighbor(r, cc int, d Dir) (nr, nc int, ok bool) {
	dr, dc := d.Delta()
	nr, nc = r+dr, cc+dc
	return nr, nc, c.InBounds(nr, nc)
}

// Validate checks the architecture parameters.
func (c CGRA) Validate() error {
	switch {
	case c.Rows < 1 || c.Cols < 1:
		return fmt.Errorf("arch: array %dx%d: %w", c.Rows, c.Cols, diag.ErrConfigInvalid)
	case c.NumRegs < 1:
		return fmt.Errorf("arch: %d registers: %w", c.NumRegs, diag.ErrConfigInvalid)
	case c.RFReadPorts < 1 || c.RFWritePorts < 1:
		return fmt.Errorf("arch: RF ports %dr/%dw: %w", c.RFReadPorts, c.RFWritePorts, diag.ErrConfigInvalid)
	case c.ConfigDepth < 1:
		return fmt.Errorf("arch: config depth %d: %w", c.ConfigDepth, diag.ErrConfigInvalid)
	case c.ClockMHz <= 0:
		return fmt.Errorf("arch: clock %v MHz: %w", c.ClockMHz, diag.ErrConfigInvalid)
	}
	return nil
}

// String renders the array size, e.g. "8x8".
func (c CGRA) String() string { return fmt.Sprintf("%dx%d", c.Rows, c.Cols) }
