package arch

import (
	"bytes"
	"errors"
	"testing"

	"himap/internal/diag"
)

// validConfigJSON serializes a small hand-built configuration — the
// round-trippable corpus anchor for FuzzDecodeConfig.
func validConfigJSON(t interface{ Fatalf(string, ...any) }) []byte {
	fab := DefaultFabric(2, 2)
	slots := make([][][]Instr, fab.Rows)
	for r := range slots {
		slots[r] = make([][]Instr, fab.Cols)
		for c := range slots[r] {
			slots[r][c] = make([]Instr, 1) // II = 1, all nops
		}
	}
	cfg := &Config{Fabric: fab, II: 1, Slots: slots}
	var buf bytes.Buffer
	if err := cfg.WriteJSON(&buf); err != nil {
		t.Fatalf("seed config does not serialize: %v", err)
	}
	return buf.Bytes()
}

// FuzzDecodeConfig drives ReadJSON with arbitrary bytes and pins its
// hardening contract:
//
//   - it never panics, whatever the input;
//   - every rejection is typed (errors.Is ErrConfigInvalid), so callers
//     dispatch on the class rather than on message text;
//   - a rejection never leaks a partially constructed *Config;
//   - an accepted configuration is internally consistent (Validate
//     passes) and survives an encode → decode round trip.
func FuzzDecodeConfig(f *testing.F) {
	f.Add(validConfigJSON(f))
	f.Add([]byte(`{"version": 1,`))
	f.Add([]byte(`{"version": 99}`))
	f.Add([]byte(`{"version": 2, "bogus": 0}`))
	f.Add([]byte(`{"version": 2, "cgra": {"Rows": 1000000000, "Cols": 1000000000}, "caps": ["M"]}`))
	f.Add([]byte(`{"version": 2, "cgra": {"Rows": 1, "Cols": 1}, "topology": "hypercube"}`))
	f.Add([]byte(`{"version": 2, "cgra": {"Rows": 1, "Cols": 1, "NumRegs": 4, "RFReadPorts": 2, "RFWritePorts": 2, "ConfigDepth": 32, "ClockMHz": 510}, "ii": 1, "slots": [[[{}]]]}`))
	f.Add([]byte(`{"version": 3, "bandwidth": "bus", "cost_class": "low-power", "cgra": {"Rows": 1, "Cols": 1, "NumRegs": 4, "RFReadPorts": 2, "RFWritePorts": 2, "ConfigDepth": 32, "ClockMHz": 510}, "ii": 1, "slots": [[[{}]]]}`))
	f.Add([]byte(`{"version": 2, "bandwidth": "double"}`))
	f.Add([]byte(`{"version": 3, "bandwidth": "quad"}`))
	f.Add([]byte(`{"version": 3, "cost_class": "military"}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		cfg, err := ReadJSON(bytes.NewReader(data))
		if err != nil {
			if cfg != nil {
				t.Fatalf("rejection leaked a partial config: %v", err)
			}
			if !errors.Is(err, diag.ErrConfigInvalid) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		if cfg == nil {
			t.Fatal("nil config without an error")
		}
		if verr := cfg.Validate(); verr != nil {
			t.Fatalf("accepted config fails Validate: %v", verr)
		}
		var buf bytes.Buffer
		if werr := cfg.WriteJSON(&buf); werr != nil {
			t.Fatalf("accepted config does not re-encode: %v", werr)
		}
		if _, rerr := ReadJSON(&buf); rerr != nil {
			t.Fatalf("re-encoded config does not decode: %v", rerr)
		}
	})
}
