package arch

import "testing"

// bfsHop computes the true link distance between PEs by breadth-first
// search over the fabric's enumerated links — the reference HopDist must
// match exactly.
func bfsHop(f Fabric, r1, c1, r2, c2 int) int {
	type pe struct{ r, c int }
	dist := map[pe]int{{r1, c1}: 0}
	queue := []pe{{r1, c1}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.r == r2 && cur.c == c2 {
			return dist[cur]
		}
		for d := 0; d < f.NumLinkDirs(); d++ {
			if nr, nc, ok := f.LinkNeighbor(cur.r, cur.c, Dir(d)); ok {
				n := pe{nr, nc}
				if _, seen := dist[n]; !seen {
					dist[n] = dist[cur] + 1
					queue = append(queue, n)
				}
			}
		}
	}
	return -1
}

// TestHopDistMatchesBFS verifies the closed-form hop distance against a
// BFS over the real link graph for every topology, including non-square
// and degenerate (size-1 axis) arrays. Exactness is what makes the
// router's A* heuristic both admissible and tight.
func TestHopDistMatchesBFS(t *testing.T) {
	sizes := [][2]int{{1, 1}, {1, 5}, {2, 2}, {3, 4}, {4, 4}, {5, 3}, {6, 6}}
	for _, topo := range []Topology{TopoMesh, TopoTorus, TopoMeshDiag} {
		for _, sz := range sizes {
			f := Fabric{CGRA: Default(sz[0], sz[1]), Topology: topo}
			for r1 := 0; r1 < f.Rows; r1++ {
				for c1 := 0; c1 < f.Cols; c1++ {
					for r2 := 0; r2 < f.Rows; r2++ {
						for c2 := 0; c2 < f.Cols; c2++ {
							want := bfsHop(f, r1, c1, r2, c2)
							got := f.HopDist(r1, c1, r2, c2)
							if got != want {
								t.Fatalf("%s %dx%d: HopDist(%d,%d -> %d,%d) = %d, BFS says %d",
									topo, f.Rows, f.Cols, r1, c1, r2, c2, got, want)
							}
						}
					}
				}
			}
		}
	}
}

// TestHopDistWrapsCoordinates checks that unwrapped (off-array)
// coordinates fold onto the torus before measuring — routing passes real
// translated coordinates straight through.
func TestHopDistNeverOverestimatesOnUnwrapped(t *testing.T) {
	f := Fabric{CGRA: Default(4, 6), Topology: TopoTorus}
	for _, tc := range []struct{ r1, c1, r2, c2, want int }{
		{0, 0, 4, 6, 0},   // full wrap in both axes
		{0, 0, -1, 0, 1},  // negative row folds to the last row
		{1, 2, 1, 8, 0},   // column wraps onto itself
		{0, 0, 3, 0, 1},   // shorter way around the rows
		{0, 0, 0, 5, 1},   // shorter way around the columns
		{-2, -2, 1, 1, 4}, // folds to (2,4), then wrapped Manhattan 1+3
	} {
		if got := f.HopDist(tc.r1, tc.c1, tc.r2, tc.c2); got != tc.want {
			t.Errorf("HopDist(%d,%d -> %d,%d) = %d, want %d", tc.r1, tc.c1, tc.r2, tc.c2, got, tc.want)
		}
	}
}
