package arch

import (
	"fmt"
	"himap/internal/diag"
	"strings"

	"himap/internal/ir"
)

// OperandKind identifies where a crossbar/ALU input value comes from
// within a cycle.
type OperandKind uint8

const (
	// OpdNone selects nothing (port unused).
	OpdNone OperandKind = iota
	// OpdIn selects the input latch from neighbor direction Dir (the value
	// the neighbor's output register held last cycle).
	OpdIn
	// OpdALU selects this cycle's ALU result (same-cycle crossbar tap).
	OpdALU
	// OpdReg selects register Reg through an RF read port.
	OpdReg
	// OpdConst selects the immediate Const.
	OpdConst
	// OpdMem selects the value produced by this cycle's data-memory read.
	OpdMem
	// OpdHold keeps an output register's previous value (valid in OutSel
	// only).
	OpdHold
)

// Operand is a configured input selection.
type Operand struct {
	Kind  OperandKind
	Dir   Dir
	Reg   int
	Const int64
}

// Operand constructors.
func FromIn(d Dir) Operand      { return Operand{Kind: OpdIn, Dir: d} }
func FromALU() Operand          { return Operand{Kind: OpdALU} }
func FromReg(r int) Operand     { return Operand{Kind: OpdReg, Reg: r} }
func FromConst(v int64) Operand { return Operand{Kind: OpdConst, Const: v} }
func FromMem() Operand          { return Operand{Kind: OpdMem} }
func Hold() Operand             { return Operand{Kind: OpdHold} }

// String renders the operand compactly.
func (o Operand) String() string {
	switch o.Kind {
	case OpdNone:
		return "-"
	case OpdIn:
		return "in" + o.Dir.String()
	case OpdALU:
		return "alu"
	case OpdReg:
		return fmt.Sprintf("r%d", o.Reg)
	case OpdConst:
		return fmt.Sprintf("#%d", o.Const)
	case OpdMem:
		return "mem"
	case OpdHold:
		return "hold"
	}
	return "?"
}

// RegWrite configures one RF write port for the cycle.
type RegWrite struct {
	Reg int
	Src Operand
}

// MemOp configures the PE data-memory port for the cycle. At most one
// read and one write per cycle. Tag correlates the access with a logical
// tensor element for the simulator's stream feeds (it plays the role of
// the address-generation the paper's PEs perform while iterating blocks).
type MemOp struct {
	Active bool
	Src    Operand // writes: value source; reads: unused
	Tag    string  // "tensor@i,j" element correlation tag
}

// Instr is one configuration-memory word: the PE's behaviour for one
// cycle of the II-cycle repeating schedule.
type Instr struct {
	Op       ir.OpKind // OpNop or a compute kind
	SrcA     Operand
	SrcB     Operand
	OutSel   [MaxDirs]Operand // crossbar drive of the directional output registers
	RegWr    []RegWrite
	MemRead  MemOp
	MemWrite MemOp
	Comment  string // mapping provenance (node names), for rendering
}

// IsNop reports whether the instruction does nothing at all.
func (in *Instr) IsNop() bool {
	if in.Op != ir.OpNop || len(in.RegWr) != 0 || in.MemRead.Active || in.MemWrite.Active {
		return false
	}
	for _, o := range in.OutSel {
		if o.Kind != OpdNone {
			return false
		}
	}
	return true
}

// readsOf counts distinct RF registers read by the instruction and
// reports the per-port uses.
func (in *Instr) regReads() map[int]bool {
	reads := map[int]bool{}
	note := func(o Operand) {
		if o.Kind == OpdReg {
			reads[o.Reg] = true
		}
	}
	note(in.SrcA)
	note(in.SrcB)
	for _, o := range in.OutSel {
		note(o)
	}
	for _, w := range in.RegWr {
		note(w.Src)
	}
	if in.MemWrite.Active {
		note(in.MemWrite.Src)
	}
	return reads
}

// Validate checks the instruction against the architecture's port limits:
// RF read/write ports, register indices, and single mem read/write.
func (in *Instr) Validate(c CGRA) error {
	reads := in.regReads()
	if len(reads) > c.RFReadPorts {
		return fmt.Errorf("arch: instruction reads %d registers, %d read ports: %w", len(reads), c.RFReadPorts, diag.ErrConfigInvalid)
	}
	for r := range reads {
		if r < 0 || r >= c.NumRegs {
			return fmt.Errorf("arch: register read index %d out of %d: %w", r, c.NumRegs, diag.ErrConfigInvalid)
		}
	}
	if len(in.RegWr) > c.RFWritePorts {
		return fmt.Errorf("arch: instruction writes %d registers, %d write ports: %w", len(in.RegWr), c.RFWritePorts, diag.ErrConfigInvalid)
	}
	seenW := map[int]bool{}
	for _, w := range in.RegWr {
		if w.Reg < 0 || w.Reg >= c.NumRegs {
			return fmt.Errorf("arch: register write index %d out of %d: %w", w.Reg, c.NumRegs, diag.ErrConfigInvalid)
		}
		if seenW[w.Reg] {
			return fmt.Errorf("arch: register %d written twice in one cycle: %w", w.Reg, diag.ErrConfigInvalid)
		}
		seenW[w.Reg] = true
		if w.Src.Kind == OpdNone || w.Src.Kind == OpdHold {
			return fmt.Errorf("arch: register write from %v: %w", w.Src, diag.ErrConfigInvalid)
		}
	}
	if in.Op.IsCompute() {
		if in.SrcA.Kind == OpdNone || in.SrcA.Kind == OpdHold {
			return fmt.Errorf("arch: compute %v with source A %v: %w", in.Op, in.SrcA, diag.ErrConfigInvalid)
		}
		if in.Op.Arity() > 1 && (in.SrcB.Kind == OpdNone || in.SrcB.Kind == OpdHold) {
			return fmt.Errorf("arch: compute %v with source B %v: %w", in.Op, in.SrcB, diag.ErrConfigInvalid)
		}
	}
	usesALU := func(o Operand) bool { return o.Kind == OpdALU }
	if !in.Op.IsCompute() {
		if usesALU(in.SrcA) || usesALU(in.SrcB) {
			return fmt.Errorf("arch: non-compute instruction with ALU source operand: %w", diag.ErrConfigInvalid)
		}
		for _, o := range in.OutSel {
			if usesALU(o) {
				return fmt.Errorf("arch: OutSel taps ALU but no compute op this cycle: %w", diag.ErrConfigInvalid)
			}
		}
		for _, w := range in.RegWr {
			if usesALU(w.Src) {
				return fmt.Errorf("arch: RegWr taps ALU but no compute op this cycle: %w", diag.ErrConfigInvalid)
			}
		}
		if in.MemWrite.Active && usesALU(in.MemWrite.Src) {
			return fmt.Errorf("arch: MemWrite taps ALU but no compute op this cycle: %w", diag.ErrConfigInvalid)
		}
	}
	usesMem := func(o Operand) bool { return o.Kind == OpdMem }
	memUsed := usesMem(in.SrcA) || usesMem(in.SrcB)
	for _, o := range in.OutSel {
		memUsed = memUsed || usesMem(o)
	}
	for _, w := range in.RegWr {
		memUsed = memUsed || usesMem(w.Src)
	}
	if in.MemWrite.Active && usesMem(in.MemWrite.Src) {
		memUsed = true
	}
	if memUsed && !in.MemRead.Active {
		return fmt.Errorf("arch: mem operand used but no memory read configured: %w", diag.ErrConfigInvalid)
	}
	return nil
}

// String renders the instruction on one line.
func (in *Instr) String() string {
	var b strings.Builder
	if in.Op != ir.OpNop {
		fmt.Fprintf(&b, "%s %s,%s", in.Op, in.SrcA, in.SrcB)
	} else {
		b.WriteString("nop")
	}
	for d := Dir(0); d < MaxDirs; d++ {
		if in.OutSel[d].Kind != OpdNone {
			fmt.Fprintf(&b, " out%s=%s", d, in.OutSel[d])
		}
	}
	for _, w := range in.RegWr {
		fmt.Fprintf(&b, " r%d=%s", w.Reg, w.Src)
	}
	if in.MemRead.Active {
		fmt.Fprintf(&b, " ld[%s]", in.MemRead.Tag)
	}
	if in.MemWrite.Active {
		fmt.Fprintf(&b, " st[%s]=%s", in.MemWrite.Tag, in.MemWrite.Src)
	}
	return b.String()
}
