package arch

import (
	"bytes"
	"strings"
	"testing"

	"himap/internal/ir"
)

func jsonSample() *Config {
	cfg := NewConfig(Default(2, 2), 2)
	in := cfg.At(0, 0, 0)
	in.Op = ir.OpMul
	in.SrcA = FromIn(West)
	in.SrcB = FromConst(3)
	in.OutSel[East] = FromALU()
	in.RegWr = []RegWrite{{Reg: 1, Src: FromALU()}}
	in.MemRead = MemOp{Active: true, Tag: "A@0,0"}
	cfg.Loads = []IOSpec{{R: 0, C: 0, Slot: 0, Phase: -1, Tensor: "A", Index: []int{0, 0}}}
	cfg.Stores = []IOSpec{{R: 1, C: 1, Slot: 1, Tensor: "O", Index: []int{1}}}
	return cfg
}

func TestConfigJSONRoundTrip(t *testing.T) {
	cfg := jsonSample()
	var buf bytes.Buffer
	if err := cfg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.II != cfg.II || got.CGRA != cfg.CGRA {
		t.Fatalf("header mismatch: %+v", got)
	}
	if got.At(0, 0, 0).String() != cfg.At(0, 0, 0).String() {
		t.Errorf("slot mismatch: %q vs %q", got.At(0, 0, 0).String(), cfg.At(0, 0, 0).String())
	}
	if len(got.Loads) != 1 || got.Loads[0].Phase != -1 || len(got.Stores) != 1 {
		t.Errorf("metadata mismatch: %+v / %+v", got.Loads, got.Stores)
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("not json")); err == nil {
		t.Error("garbage should fail")
	}
	if _, err := ReadJSON(strings.NewReader(`{"version":99}`)); err == nil {
		t.Error("wrong version should fail")
	}
	if _, err := ReadJSON(strings.NewReader(`{"version":1,"cgra":{"Rows":2,"Cols":2,"NumRegs":4,"RFReadPorts":2,"RFWritePorts":2,"ConfigDepth":32,"DataMemWords":64,"ClockMHz":510},"ii":2,"slots":[]}`)); err == nil {
		t.Error("shape mismatch should fail")
	}
}
