package arch

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"himap/internal/diag"
	"himap/internal/ir"
)

func jsonSample() *Config {
	cfg := NewConfig(DefaultFabric(2, 2), 2)
	in := cfg.At(0, 0, 0)
	in.Op = ir.OpMul
	in.SrcA = FromIn(West)
	in.SrcB = FromConst(3)
	in.OutSel[East] = FromALU()
	in.RegWr = []RegWrite{{Reg: 1, Src: FromALU()}}
	in.MemRead = MemOp{Active: true, Tag: "A@0,0"}
	cfg.Loads = []IOSpec{{R: 0, C: 0, Slot: 0, Phase: -1, Tensor: "A", Index: []int{0, 0}}}
	cfg.Stores = []IOSpec{{R: 1, C: 1, Slot: 1, Tensor: "O", Index: []int{1}}}
	return cfg
}

func TestConfigJSONRoundTrip(t *testing.T) {
	cfg := jsonSample()
	var buf bytes.Buffer
	if err := cfg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.II != cfg.II || got.Fabric != cfg.Fabric {
		t.Fatalf("header mismatch: %+v", got)
	}
	if got.At(0, 0, 0).String() != cfg.At(0, 0, 0).String() {
		t.Errorf("slot mismatch: %q vs %q", got.At(0, 0, 0).String(), cfg.At(0, 0, 0).String())
	}
	if len(got.Loads) != 1 || got.Loads[0].Phase != -1 || len(got.Stores) != 1 {
		t.Errorf("metadata mismatch: %+v / %+v", got.Loads, got.Stores)
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("not json")); err == nil {
		t.Error("garbage should fail")
	}
	if _, err := ReadJSON(strings.NewReader(`{"version":99}`)); err == nil {
		t.Error("wrong version should fail")
	}
	if _, err := ReadJSON(strings.NewReader(`{"version":1,"cgra":{"Rows":2,"Cols":2,"NumRegs":4,"RFReadPorts":2,"RFWritePorts":2,"ConfigDepth":32,"DataMemWords":64,"ClockMHz":510},"ii":2,"slots":[]}`)); err == nil {
		t.Error("shape mismatch should fail")
	}
}

// TestConfigJSONFabricRoundTrip pins the version-2 schema: topology,
// memory policy, and the derived per-PE capability grid survive a
// write/read cycle byte for byte, for every topology × policy pair.
func TestConfigJSONFabricRoundTrip(t *testing.T) {
	for _, topo := range []Topology{TopoMesh, TopoTorus, TopoMeshDiag} {
		for _, mem := range []MemPolicy{MemAll, MemBoundary} {
			fab := Fabric{CGRA: Default(2, 3), Topology: topo, Mem: mem}
			cfg := NewConfig(fab, 1)
			in := cfg.At(0, 0, 0)
			in.Op = ir.OpAdd
			in.SrcA = FromConst(1)
			in.SrcB = FromConst(2)
			var buf bytes.Buffer
			if err := cfg.WriteJSON(&buf); err != nil {
				t.Fatalf("%s: %v", fab, err)
			}
			first := buf.String()
			got, err := ReadJSON(strings.NewReader(first))
			if err != nil {
				t.Fatalf("%s: %v", fab, err)
			}
			if got.Fabric != fab {
				t.Fatalf("fabric mismatch: wrote %+v, read %+v", fab, got.Fabric)
			}
			var buf2 bytes.Buffer
			if err := got.WriteJSON(&buf2); err != nil {
				t.Fatalf("%s: %v", fab, err)
			}
			if buf2.String() != first {
				t.Errorf("%s: re-encoding is not byte-identical", fab)
			}
		}
	}
}

// TestReadJSONStrict pins the strict-decode contract: unknown fields and
// capability grids inconsistent with the declared memory policy are
// errors, not silent drops.
func TestReadJSONStrict(t *testing.T) {
	var buf bytes.Buffer
	if err := jsonSample().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	// Inject an unknown top-level field.
	s := strings.Replace(buf.String(), `"version"`, `"bogus_field": 1, "version"`, 1)
	if _, err := ReadJSON(strings.NewReader(s)); err == nil || !strings.Contains(err.Error(), "bogus_field") {
		t.Errorf("unknown field not rejected: %v", err)
	}
	// Corrupt the caps grid so it contradicts mem_pes.
	fab := Fabric{CGRA: Default(2, 3), Mem: MemBoundary}
	var buf2 bytes.Buffer
	if err := NewConfig(fab, 1).WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	s2 := strings.Replace(buf2.String(), `"MCM"`, `"MMM"`, 1)
	if s2 == buf2.String() {
		t.Fatal("caps row MCM not found in encoding")
	}
	if _, err := ReadJSON(strings.NewReader(s2)); err == nil || !strings.Contains(err.Error(), "caps") {
		t.Errorf("inconsistent caps grid not rejected: %v", err)
	}
}

// TestReadJSONVersion1 pins backward compatibility: a version-1 file
// (no fabric fields) decodes as the classic mesh/all-mem fabric.
func TestReadJSONVersion1(t *testing.T) {
	v1 := `{"version":1,"cgra":{"Rows":1,"Cols":1,"NumRegs":4,"RFReadPorts":2,"RFWritePorts":2,"ConfigDepth":32,"DataMemWords":64,"ClockMHz":510},"ii":1,"slots":[[[{"Op":0}]]]}`
	cfg, err := ReadJSON(strings.NewReader(v1))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Fabric.Topology != TopoMesh || cfg.Fabric.Mem != MemAll {
		t.Errorf("version-1 file decoded as %+v, want mesh/all-mem", cfg.Fabric)
	}
}

// minimalJSON renders a 1x1 all-nop configuration with the given header
// fields spliced in, for the version-compatibility table.
func minimalJSON(version int, extra string) string {
	return `{"version":` + extra + `,"cgra":{"Rows":1,"Cols":1,"NumRegs":4,"RFReadPorts":2,"RFWritePorts":2,"ConfigDepth":32,"DataMemWords":64,"ClockMHz":510},"ii":1,"slots":[[[{"Op":0}]]]}`
}

// TestConfigJSONV3RoundTrip pins the version-3 schema: the bandwidth
// and cost-class axes survive a write/read cycle for every enum value,
// and the re-encoding is byte-identical.
func TestConfigJSONV3RoundTrip(t *testing.T) {
	for _, bw := range []BandwidthClass{BWUnit, BWDouble, BWBus, BWNarrowRF} {
		for _, cost := range []CostClass{CostBalanced, CostLowPower, CostHighPerf} {
			fab := Fabric{CGRA: Default(2, 3), Bandwidth: bw, Cost: cost}
			cfg := NewConfig(fab, 1)
			in := cfg.At(0, 0, 0)
			in.Op = ir.OpAdd
			in.SrcA = FromConst(1)
			in.SrcB = FromConst(2)
			var buf bytes.Buffer
			if err := cfg.WriteJSON(&buf); err != nil {
				t.Fatalf("%s: %v", fab, err)
			}
			first := buf.String()
			got, err := ReadJSON(strings.NewReader(first))
			if err != nil {
				t.Fatalf("%s: %v", fab, err)
			}
			if got.Fabric != fab {
				t.Fatalf("fabric mismatch: wrote %+v, read %+v", fab, got.Fabric)
			}
			var buf2 bytes.Buffer
			if err := got.WriteJSON(&buf2); err != nil {
				t.Fatalf("%s: %v", fab, err)
			}
			if buf2.String() != first {
				t.Errorf("%s: re-encoding is not byte-identical", fab)
			}
		}
	}
}

// TestReadJSONV3Rejections is the strict-decode table for the v3 axes:
// unknown enum names and resource fields in pre-v3 files are typed
// rejections, and legacy files without the fields keep decoding with
// the unit/balanced defaults.
func TestReadJSONV3Rejections(t *testing.T) {
	cases := []struct {
		name   string
		header string // splices after "version":
		ok     bool
	}{
		{"v3 bare", `3`, true},
		{"v3 explicit defaults", `3,"bandwidth":"unit","cost_class":"balanced"`, true},
		{"v3 bus low-power", `3,"bandwidth":"bus","cost_class":"low-power"`, true},
		{"v2 bare", `2`, true},
		{"unknown bandwidth", `3,"bandwidth":"quad"`, false},
		{"unknown cost class", `3,"cost_class":"military"`, false},
		{"bandwidth needs v3", `2,"bandwidth":"bus"`, false},
		{"cost class needs v3", `1,"cost_class":"low-power"`, false},
		{"both need v3", `2,"bandwidth":"double","cost_class":"high-perf"`, false},
	}
	for _, tc := range cases {
		cfg, err := ReadJSON(strings.NewReader(minimalJSON(0, tc.header)))
		if tc.ok {
			if err != nil {
				t.Errorf("%s: unexpected rejection: %v", tc.name, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: accepted, want typed rejection (decoded %+v)", tc.name, cfg.Fabric)
			continue
		}
		if !errors.Is(err, diag.ErrConfigInvalid) {
			t.Errorf("%s: rejection not typed ErrConfigInvalid: %v", tc.name, err)
		}
	}
	// Pre-v3 files without the fields decode as the legacy resource
	// model exactly.
	cfg, err := ReadJSON(strings.NewReader(minimalJSON(0, `2`)))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Fabric.Bandwidth != BWUnit || cfg.Fabric.Cost != CostBalanced {
		t.Errorf("v2 file decoded as %s/%s, want unit/balanced", cfg.Fabric.Bandwidth, cfg.Fabric.Cost)
	}
}
