package arch

import (
	"encoding/json"
	"fmt"
	"io"
)

// configJSON is the serialized form of a mapping: the architecture, the
// schedule, and the memory correlation metadata, with a format version
// for forward compatibility.
type configJSON struct {
	Version int         `json:"version"`
	CGRA    CGRA        `json:"cgra"`
	II      int         `json:"ii"`
	Slots   [][][]Instr `json:"slots"`
	Loads   []IOSpec    `json:"loads,omitempty"`
	Stores  []IOSpec    `json:"stores,omitempty"`
}

// configFormatVersion is bumped on breaking schema changes.
const configFormatVersion = 1

// WriteJSON serializes the configuration.
func (cfg *Config) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(configJSON{
		Version: configFormatVersion,
		CGRA:    cfg.CGRA,
		II:      cfg.II,
		Slots:   cfg.Slots,
		Loads:   cfg.Loads,
		Stores:  cfg.Stores,
	})
}

// ReadJSON deserializes a configuration and validates it.
func ReadJSON(r io.Reader) (*Config, error) {
	var cj configJSON
	if err := json.NewDecoder(r).Decode(&cj); err != nil {
		return nil, fmt.Errorf("arch: decoding configuration: %v", err)
	}
	if cj.Version != configFormatVersion {
		return nil, fmt.Errorf("arch: configuration format version %d, want %d", cj.Version, configFormatVersion)
	}
	if err := cj.CGRA.Validate(); err != nil {
		return nil, err
	}
	if cj.II < 1 {
		return nil, fmt.Errorf("arch: II = %d", cj.II)
	}
	if len(cj.Slots) != cj.CGRA.Rows {
		return nil, fmt.Errorf("arch: %d slot rows for a %d-row array", len(cj.Slots), cj.CGRA.Rows)
	}
	for r, row := range cj.Slots {
		if len(row) != cj.CGRA.Cols {
			return nil, fmt.Errorf("arch: row %d has %d columns, want %d", r, len(row), cj.CGRA.Cols)
		}
		for c, stream := range row {
			if len(stream) != cj.II {
				return nil, fmt.Errorf("arch: PE(%d,%d) stream length %d, want II %d", r, c, len(stream), cj.II)
			}
		}
	}
	cfg := &Config{
		CGRA:   cj.CGRA,
		II:     cj.II,
		Slots:  cj.Slots,
		Loads:  cj.Loads,
		Stores: cj.Stores,
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return cfg, nil
}
