package arch

import (
	"encoding/json"
	"fmt"
	"himap/internal/diag"
	"io"
	"strings"
)

// configJSON is the serialized form of a mapping: the architecture, the
// schedule, and the memory correlation metadata, with a format version
// for forward compatibility. Version 2 adds the fabric fields (topology,
// mem_pes, caps); version 3 adds the resource/cost axes (bandwidth,
// cost_class). Version 1 and 2 files (implicitly mesh/all-mem and
// unit-bandwidth/balanced-cost respectively) still decode.
type configJSON struct {
	Version  int    `json:"version"`
	CGRA     CGRA   `json:"cgra"`
	Topology string `json:"topology,omitempty"`
	MemPEs   string `json:"mem_pes,omitempty"`
	// Caps renders the per-PE capability grid, one string per row,
	// 'M' for memory-capable PEs and 'C' for compute-only ones. It is
	// derived from mem_pes and validated against it on decode.
	Caps []string `json:"caps,omitempty"`
	// Bandwidth and CostClass are the v3 resource/cost axes; they are
	// rejected in files declaring version < 3.
	Bandwidth string      `json:"bandwidth,omitempty"`
	CostClass string      `json:"cost_class,omitempty"`
	II        int         `json:"ii"`
	Slots     [][][]Instr `json:"slots"`
	Loads     []IOSpec    `json:"loads,omitempty"`
	Stores    []IOSpec    `json:"stores,omitempty"`
}

// configFormatVersion is bumped on breaking schema changes.
const configFormatVersion = 3

// maxConfigDim bounds decoded array dimensions and register counts so a
// hostile or corrupt file cannot make the decoder allocate gigabytes
// (capsGrid and validation materialize per-PE state) before validation
// rejects it. Real fabrics are orders of magnitude below this.
const maxConfigDim = 4096

func capsGrid(f Fabric) []string {
	out := make([]string, f.Rows)
	var b strings.Builder
	for r := 0; r < f.Rows; r++ {
		b.Reset()
		for c := 0; c < f.Cols; c++ {
			if f.MemCapable(r, c) {
				b.WriteByte('M')
			} else {
				b.WriteByte('C')
			}
		}
		out[r] = b.String()
	}
	return out
}

// WriteJSON serializes the configuration.
func (cfg *Config) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(configJSON{
		Version:   configFormatVersion,
		CGRA:      cfg.Fabric.CGRA,
		Topology:  cfg.Fabric.Topology.String(),
		MemPEs:    cfg.Fabric.Mem.String(),
		Caps:      capsGrid(cfg.Fabric),
		Bandwidth: cfg.Fabric.Bandwidth.String(),
		CostClass: cfg.Fabric.Cost.String(),
		II:        cfg.II,
		Slots:     cfg.Slots,
		Loads:     cfg.Loads,
		Stores:    cfg.Stores,
	})
}

// ReadJSON deserializes a configuration and validates it. Decoding is
// strict: unknown fields are an error, not silently dropped.
func ReadJSON(r io.Reader) (*Config, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var cj configJSON
	if err := dec.Decode(&cj); err != nil {
		return nil, fmt.Errorf("arch: decoding configuration: %v: %w", err, diag.ErrConfigInvalid)
	}
	if cj.Version < 1 || cj.Version > configFormatVersion {
		return nil, fmt.Errorf("arch: configuration format version %d, want 1..%d: %w", cj.Version, configFormatVersion, diag.ErrConfigInvalid)
	}
	if cj.CGRA.Rows > maxConfigDim || cj.CGRA.Cols > maxConfigDim {
		return nil, fmt.Errorf("arch: array %dx%d exceeds the %d-per-side decode bound: %w", cj.CGRA.Rows, cj.CGRA.Cols, maxConfigDim, diag.ErrConfigInvalid)
	}
	if cj.CGRA.NumRegs > maxConfigDim || cj.CGRA.ConfigDepth > maxConfigDim {
		return nil, fmt.Errorf("arch: %d registers / depth %d exceed the %d decode bound: %w", cj.CGRA.NumRegs, cj.CGRA.ConfigDepth, maxConfigDim, diag.ErrConfigInvalid)
	}
	if cj.II > maxConfigDim {
		return nil, fmt.Errorf("arch: II = %d exceeds the %d decode bound: %w", cj.II, maxConfigDim, diag.ErrConfigInvalid)
	}
	topo, err := ParseTopology(cj.Topology)
	if err != nil {
		return nil, err
	}
	mem, err := ParseMemPolicy(cj.MemPEs)
	if err != nil {
		return nil, err
	}
	if cj.Version < 3 && (cj.Bandwidth != "" || cj.CostClass != "") {
		return nil, fmt.Errorf("arch: bandwidth/cost_class fields require configuration version 3, file declares %d: %w", cj.Version, diag.ErrConfigInvalid)
	}
	bw, err := ParseBandwidth(cj.Bandwidth)
	if err != nil {
		return nil, err
	}
	cost, err := ParseCostClass(cj.CostClass)
	if err != nil {
		return nil, err
	}
	fab := Fabric{CGRA: cj.CGRA, Topology: topo, Mem: mem, Bandwidth: bw, Cost: cost}
	if err := fab.Validate(); err != nil {
		return nil, err
	}
	if cj.Caps != nil {
		want := capsGrid(fab)
		if len(cj.Caps) != len(want) {
			return nil, fmt.Errorf("arch: caps grid has %d rows for a %d-row array: %w", len(cj.Caps), fab.Rows, diag.ErrConfigInvalid)
		}
		for r := range want {
			if cj.Caps[r] != want[r] {
				return nil, fmt.Errorf("arch: caps row %d is %q, inconsistent with mem_pes=%s (%q): %w",
					r, cj.Caps[r], mem, want[r], diag.ErrConfigInvalid)
			}
		}
	}
	if cj.II < 1 {
		return nil, fmt.Errorf("arch: II = %d: %w", cj.II, diag.ErrConfigInvalid)
	}
	if len(cj.Slots) != fab.Rows {
		return nil, fmt.Errorf("arch: %d slot rows for a %d-row array: %w", len(cj.Slots), fab.Rows, diag.ErrConfigInvalid)
	}
	for r, row := range cj.Slots {
		if len(row) != fab.Cols {
			return nil, fmt.Errorf("arch: row %d has %d columns, want %d: %w", r, len(row), fab.Cols, diag.ErrConfigInvalid)
		}
		for c, stream := range row {
			if len(stream) != cj.II {
				return nil, fmt.Errorf("arch: PE(%d,%d) stream length %d, want II %d: %w", r, c, len(stream), cj.II, diag.ErrConfigInvalid)
			}
		}
	}
	cfg := &Config{
		Fabric: fab,
		II:     cj.II,
		Slots:  cj.Slots,
		Loads:  cj.Loads,
		Stores: cj.Stores,
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return cfg, nil
}
