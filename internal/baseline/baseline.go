// Package baseline implements a conventional flat DFG → MRRG CGRA mapper,
// standing in for the paper's "Best of HyCUBE & CGRA-ME" (BHC) baseline:
// simulated-annealing placement over (cycle, PE) slots of the fully
// unrolled block DFG, followed by PathFinder-style negotiated routing,
// with initiation-interval escalation on failure.
//
// Like the published baselines it inherits their scalability wall: the
// joint placement space grows with |V_D| × |MRRG|, so mapping quality and
// compile time degrade rapidly beyond a few hundred DFG nodes (§VI:
// "BHC fails to find a solution when the number of DFG nodes is higher
// than 400 due to scalability issues"). MaxNodes models that wall
// explicitly; TimeBudget models the paper's 3-day timeout.
package baseline

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"himap/internal/arch"
	"himap/internal/diag"
	"himap/internal/ir"
	"himap/internal/kernel"
	"himap/internal/par"
	"himap/internal/route"
)

// Options tunes the baseline mapper.
type Options struct {
	MaxNodes   int           // hard DFG size wall (default 400)
	MaxII      int           // II escalation bound (default 32, the config depth)
	Seed       int64         // SA seed
	SAMoves    int           // SA moves per II attempt; 0 = auto (scales with DFG²)
	TimeBudget time.Duration // overall wall-clock budget; 0 = unlimited
	RouteRound int           // negotiated congestion rounds (default 6)
	// Workers is the number of independently seeded simulated-annealing
	// chains raced per II attempt; the feasible placement with the lowest
	// cost wins, ties broken deterministically toward the lowest chain
	// index (i.e. the lowest seed). 0 or 1 keeps the classic single-chain
	// mapper, whose output is bit-stable across releases; higher values
	// trade CPU for placement quality and wall-clock at a fixed seed.
	Workers int
	// Tracer receives one span per mapper stage (dfg-build, then place and
	// route per II attempt, with Attempt = II), on the same contract as the
	// HiMap pipeline so harnesses can compare the two mappers' stage costs
	// and failure modes uniformly. nil means no tracing.
	Tracer diag.Tracer
}

func (o Options) withDefaults() Options {
	if o.MaxNodes == 0 {
		o.MaxNodes = 400
	}
	if o.MaxII == 0 {
		o.MaxII = 32
	}
	if o.RouteRound == 0 {
		o.RouteRound = 6
	}
	if o.Workers < 1 {
		o.Workers = 1
	}
	if o.Tracer == nil {
		o.Tracer = diag.Nop()
	}
	return o
}

// Result is a completed baseline mapping.
type Result struct {
	Kernel      *kernel.Kernel
	Fabric      arch.Fabric
	CGRA        arch.CGRA // Fabric.CGRA, kept for callers predating Fabric
	Block       []int
	II          int
	Config      *arch.Config
	Utilization float64
	Time        time.Duration
	SAMoves     int
}

// Summary renders a one-line description.
func (r *Result) Summary() string {
	return fmt.Sprintf("%s on %s (baseline): block %v, II %d, U = %.1f%%",
		r.Kernel.Name, r.Fabric, r.Block, r.II, r.Utilization*100)
}

// ErrTooLarge is returned when the DFG exceeds the scalability wall.
type ErrTooLarge struct{ Nodes, Max int }

func (e ErrTooLarge) Error() string {
	return fmt.Sprintf("baseline: DFG with %d nodes exceeds the mapper's %d-node scalability wall", e.Nodes, e.Max)
}

// ErrTimeout is returned when the time budget expires.
type ErrTimeout struct{ Budget time.Duration }

func (e ErrTimeout) Error() string {
	return fmt.Sprintf("baseline: time budget %v exhausted without a valid mapping", e.Budget)
}

// place aliases the shared routing layer's slot type so SA chains hand
// their winning placement straight to route.RouteDFG.
type place = route.Placement

// Compile maps the kernel's block DFG onto the CGRA (mesh links, every
// PE memory-capable). Use CompileFabric to target other fabrics.
func Compile(k *kernel.Kernel, cg arch.CGRA, block []int, opts Options) (*Result, error) {
	return CompileRequest(context.Background(), k, arch.Fabric{CGRA: cg}, block, opts)
}

// CompileFabric maps the kernel's block DFG onto the fabric: SA placement
// (loads and stores restricted to memory-capable PEs) plus negotiated
// routing over the fabric's link set.
func CompileFabric(k *kernel.Kernel, cg arch.Fabric, block []int, opts Options) (*Result, error) {
	return CompileRequest(context.Background(), k, cg, block, opts)
}

// CompileRequest is the context-aware baseline entry point: Compile and
// CompileFabric are the context.Background() special cases. The context
// is checked before each II attempt, between the placement and routing
// phases, and every 4096 SA moves inside each annealing chain, so a
// cancellation or deadline aborts the mapper promptly with a
// diag.ErrCanceled StageError (the original context error stays in the
// cause chain).
func CompileRequest(ctx context.Context, k *kernel.Kernel, cg arch.Fabric, block []int, opts Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	opts = opts.withDefaults()
	if err := cg.Validate(); err != nil {
		return nil, err
	}
	start := time.Now() //lint:ignore determinism wall-clock span timing only; does not influence mapping
	deadline := time.Time{}
	if opts.TimeBudget > 0 {
		deadline = start.Add(opts.TimeBudget)
	}
	// Reject oversized blocks before materializing the DFG: the body-op
	// count per iteration is a lower bound on nodes, and huge blocks
	// (e.g. TTM at b=64: 16.7M iterations) would otherwise allocate tens
	// of gigabytes only to be refused.
	if lower := ir.BoxSize(block) * len(k.Body); lower > opts.MaxNodes {
		return nil, ErrTooLarge{Nodes: lower, Max: opts.MaxNodes}
	}
	buildStart := time.Now() //lint:ignore determinism wall-clock span timing only; does not influence mapping
	d, err := k.BuildDFG(block)
	if err != nil {
		return nil, err
	}
	opts.Tracer.Emit(diag.Span{Stage: "dfg-build", Wall: time.Since(buildStart),
		Counters: map[string]int64{"nodes": int64(len(d.Nodes))}})
	if len(d.Nodes) > opts.MaxNodes {
		return nil, ErrTooLarge{Nodes: len(d.Nodes), Max: opts.MaxNodes}
	}
	ncomp := d.NumCompute()
	nfu := ncomp // routes occupy FUs as moves in a conventional mapping
	nload, nstore := 0, 0
	for _, n := range d.Nodes {
		switch n.Kind {
		case ir.OpLoad:
			nload++
		case ir.OpStore:
			nstore++
		case ir.OpRoute:
			nfu++
		}
	}
	pes := cg.NumPEs()
	mii := (nfu + pes - 1) / pes
	if m2 := (nload + pes - 1) / pes; m2 > mii {
		mii = m2
	}
	if m3 := (nstore + pes - 1) / pes; m3 > mii {
		mii = m3
	}
	if mii < 1 {
		mii = 1
	}

	// Chain 0 keeps the historical shared rng across II attempts, so a
	// single-chain run is bit-identical to the pre-parallel mapper; extra
	// chains get fresh deterministic seeds per (II, chain).
	rng := rand.New(rand.NewSource(opts.Seed + int64(len(d.Nodes))))
	totalMoves := 0
	var lastErr error
	for ii := mii; ii <= opts.MaxII; ii++ {
		if err := ctx.Err(); err != nil {
			return nil, diag.Fail(diag.ErrCanceled, err).Stamp("place", k.Name, cg.String(), ii)
		}
		if !deadline.IsZero() && time.Now().After(deadline) { //lint:ignore determinism opt-in TimeBudget deadline; documented nondeterminism when set
			return nil, ErrTimeout{Budget: opts.TimeBudget}
		}
		moves := opts.SAMoves
		if moves == 0 {
			// SA effort grows quadratically with problem size — the
			// super-linear compile-time behaviour of Fig. 8.
			moves = 1500*len(d.Nodes) + 2*len(d.Nodes)*len(d.Nodes)
		}
		type chainOut struct {
			pl   []place
			ok   bool
			cost float64
		}
		outs := make([]chainOut, opts.Workers)
		placeStart := time.Now() //lint:ignore determinism wall-clock span timing only; does not influence mapping
		par.ForEach(opts.Workers, opts.Workers, func(ci int) {
			r := rng
			if ci > 0 {
				r = rand.New(rand.NewSource(opts.Seed + int64(len(d.Nodes)) +
					int64(ci)*1_000_003 + int64(ii)*8191))
			}
			pl, ok, cost := anneal(ctx, d, cg, ii, moves, r, deadline)
			outs[ci] = chainOut{pl: pl, ok: ok, cost: cost}
		})
		totalMoves += moves * opts.Workers
		// A chain aborted by cancellation reports ok=false; distinguish
		// that from a genuine infeasible placement before classifying.
		if err := ctx.Err(); err != nil {
			return nil, diag.Fail(diag.ErrCanceled, err).Stamp("place", k.Name, cg.String(), ii)
		}
		best := -1
		for ci := range outs {
			if outs[ci].ok && (best < 0 || outs[ci].cost < outs[best].cost) {
				best = ci
			}
		}
		placeSpan := diag.Span{Stage: "place", Attempt: ii, Wall: time.Since(placeStart),
			Counters: map[string]int64{"moves": int64(moves * opts.Workers)}}
		if best < 0 {
			se := diag.Failf(diag.ErrPlacementInfeasible, "no zero-violation placement at II %d", ii).
				Stamp("place", k.Name, cg.String(), ii)
			lastErr = se
			placeSpan.Err = se.Error()
			opts.Tracer.Emit(placeSpan)
			continue
		}
		opts.Tracer.Emit(placeSpan)
		pl := outs[best].pl
		routeStart := time.Now() //lint:ignore determinism wall-clock span timing only; does not influence mapping
		cfg, err := route.RouteDFG(ctx, d, cg, ii, pl, opts.RouteRound)
		routeSpan := diag.Span{Stage: "route", Attempt: ii, Wall: time.Since(routeStart)}
		if err != nil {
			se := diag.Classify(err, diag.ErrRouteCongested).Stamp("route", k.Name, cg.String(), ii)
			lastErr = se
			routeSpan.Err = se.Error()
			opts.Tracer.Emit(routeSpan)
			continue
		}
		opts.Tracer.Emit(routeSpan)
		return &Result{
			Kernel: k, Fabric: cg, CGRA: cg.CGRA, Block: block, II: ii,
			Config:      cfg,
			Utilization: float64(ncomp) / float64(pes*ii),
			Time:        time.Since(start),
			SAMoves:     totalMoves,
		}, nil
	}
	if !deadline.IsZero() && time.Now().After(deadline) { //lint:ignore determinism opt-in TimeBudget deadline; documented nondeterminism when set
		return nil, ErrTimeout{Budget: opts.TimeBudget}
	}
	if lastErr == nil {
		lastErr = diag.Failf(diag.ErrPlacementInfeasible, "minimum II %d exceeds MaxII %d", mii, opts.MaxII).
			Stamp("place", k.Name, cg.String(), mii)
	}
	return nil, fmt.Errorf("baseline: no valid mapping up to II %d for %s on %s: %w", opts.MaxII, k.Name, cg, lastErr)
}

// slotKey identifies a capacity-1 placement slot: FU / mem-read /
// mem-write of one PE at one wrapped cycle.
type slotKey struct {
	kind    uint8 // 0 FU, 1 mem read, 2 mem write
	r, c, t int
}

func slotOf(n *ir.Node, p place, ii int) slotKey {
	k := uint8(0)
	switch n.Kind {
	case ir.OpLoad:
		k = 1
	case ir.OpStore:
		k = 2
	}
	return slotKey{kind: k, r: p.R, c: p.C, t: ((p.T % ii) + ii) % ii}
}

// anneal performs simulated annealing over joint (time, PE) placements.
// It returns a placement with zero hard violations (plus its total cost,
// for best-of-N chain selection), or ok=false. The context is polled
// every 4096 moves (alongside the opt-in wall-clock deadline); a canceled
// chain returns ok=false and the caller re-checks ctx to classify.
func anneal(ctx context.Context, d *ir.DFG, cg arch.Fabric, ii, moves int, rng *rand.Rand, deadline time.Time) ([]place, bool, float64) {
	order, err := d.TopoOrder()
	if err != nil {
		return nil, false, 0
	}
	// On fabrics with restricted memory ports, loads and stores snap to
	// the nearest memory-capable PE after each random proposal. The snap
	// consumes no randomness and is a no-op on all-mem fabrics, so the
	// classic mapper's rng sequence (and hence its output) is unchanged.
	var memPEs [][2]int
	if cg.Mem != arch.MemAll {
		memPEs = cg.MemPEs()
	}
	snap := func(kind ir.OpKind, r, c int) (int, int) {
		if memPEs == nil || (kind != ir.OpLoad && kind != ir.OpStore) || cg.MemCapable(r, c) {
			return r, c
		}
		sr, sc, bd := r, c, int(^uint(0)>>1)
		for _, pe := range memPEs {
			if dd := absInt(pe[0]-r) + absInt(pe[1]-c); dd < bd {
				bd, sr, sc = dd, pe[0], pe[1]
			}
		}
		return sr, sc
	}
	// ASAP levels give the initial schedule and the move window.
	asap := make([]int, len(d.Nodes))
	for _, id := range order {
		for _, ei := range d.InEdges(id) {
			e := d.Edges[ei]
			if asap[e.From]+1 > asap[id] {
				asap[id] = asap[e.From] + 1
			}
		}
	}
	span := 0
	for _, l := range asap {
		if l > span {
			span = l
		}
	}
	window := span + 2*ii + 2

	pl := make([]place, len(d.Nodes))
	occ := map[slotKey]int{}
	for _, id := range order {
		n := d.Nodes[id]
		// Greedy: earliest feasible slot on the least-loaded PE near parents.
		bestR, bestC := rng.Intn(cg.Rows), rng.Intn(cg.Cols)
		if ins := d.InEdges(id); len(ins) > 0 {
			p := pl[d.Edges[ins[0]].From]
			bestR, bestC = p.R, p.C
		}
		bestR, bestC = snap(n.Kind, bestR, bestC)
		t := asap[id]
		p := place{T: t, R: bestR, C: bestC}
		for tries := 0; tries < 4*ii; tries++ {
			if ctx.Err() != nil {
				break // canceled: the caller aborts as soon as seeding returns
			}
			if occ[slotOf(n, p, ii)] == 0 {
				break
			}
			p.T++
		}
		pl[id] = p
		occ[slotOf(n, p, ii)]++
	}

	cost := func(id int) float64 {
		n := d.Nodes[id]
		c := 0.0
		p := pl[id]
		if k := slotOf(n, p, ii); occ[k] > 1 {
			c += 1000 * float64(occ[k]-1)
		}
		for _, ei := range d.InEdges(id) {
			e := d.Edges[ei]
			pp := pl[e.From]
			dist := absInt(pp.R-p.R) + absInt(pp.C-p.C)
			need := dist
			if need == 0 {
				need = 1
			}
			dt := p.T - pp.T
			if dt < need {
				c += 1000 * float64(need-dt)
			} else {
				c += float64(dist) + 0.2*float64(dt-need)
			}
		}
		for _, ei := range d.OutEdges(id) {
			e := d.Edges[ei]
			cp := pl[e.To]
			dist := absInt(cp.R-p.R) + absInt(cp.C-p.C)
			need := dist
			if need == 0 {
				need = 1
			}
			dt := cp.T - p.T
			if dt < need {
				c += 1000 * float64(need-dt)
			} else {
				c += float64(dist) + 0.2*float64(dt-need)
			}
		}
		return c
	}

	// feasible reports whether the placement has zero hard violations —
	// the SA's early-exit condition (burning the full move budget after
	// feasibility would only polish wirelength).
	feasible := func() bool {
		for _, id := range order {
			n := d.Nodes[id]
			if occ[slotOf(n, pl[id], ii)] > 1 {
				return false
			}
			p := pl[id]
			if (n.Kind == ir.OpLoad || n.Kind == ir.OpStore) && !cg.MemCapable(p.R, p.C) {
				return false
			}
			for _, ei := range d.InEdges(id) {
				e := d.Edges[ei]
				pp := pl[e.From]
				dist := absInt(pp.R-p.R) + absInt(pp.C-p.C)
				need := dist
				if need == 0 {
					need = 1
				}
				if p.T-pp.T < need {
					return false
				}
			}
		}
		return true
	}

	temp := 60.0
	decay := math.Pow(0.02/temp, 1/float64(moves+1))
	for mv := 0; mv < moves; mv++ {
		if mv%4096 == 0 {
			if ctx.Err() != nil {
				return nil, false, 0
			}
			if !deadline.IsZero() && time.Now().After(deadline) { //lint:ignore determinism opt-in TimeBudget deadline; documented nondeterminism when set
				return nil, false, 0
			}
		}
		id := rng.Intn(len(d.Nodes))
		n := d.Nodes[id]
		old := pl[id]
		oldCost := cost(id)
		nt := asap[id] + rng.Intn(window-asap[id])
		np := place{T: nt, R: rng.Intn(cg.Rows), C: rng.Intn(cg.Cols)}
		np.R, np.C = snap(n.Kind, np.R, np.C)
		occ[slotOf(n, old, ii)]--
		pl[id] = np
		occ[slotOf(n, np, ii)]++
		newCost := cost(id)
		dc := newCost - oldCost
		if dc > 0 && rng.Float64() >= math.Exp(-dc/temp) {
			occ[slotOf(n, np, ii)]--
			pl[id] = old
			occ[slotOf(n, old, ii)]++
		}
		temp *= decay
	}
	if !feasible() {
		return pl, false, 0
	}
	total := 0.0
	for id := range d.Nodes {
		total += cost(id)
	}
	return pl, true, total
}

// LargestFeasibleBlock returns the biggest uniform block size whose DFG
// stays under the node wall — how a user would drive the baseline on a
// large CGRA (§VI: "BHC maps the small DFG keeping the block size small").
func LargestFeasibleBlock(k *kernel.Kernel, maxNodes, cap int) int {
	best := 0
	for b := k.MinBlock; b <= cap; b++ {
		d, err := k.BuildDFG(k.UniformBlock(b))
		if err != nil {
			continue
		}
		if len(d.Nodes) > maxNodes {
			break
		}
		best = b
	}
	if best == 0 {
		best = k.MinBlock
	}
	return best
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
