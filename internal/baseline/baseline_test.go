package baseline

import (
	"errors"
	"testing"
	"time"

	"himap/internal/arch"
	"himap/internal/kernel"
	"himap/internal/sim"
)

func TestBaselineMapsAndValidates(t *testing.T) {
	cases := []struct {
		k     *kernel.Kernel
		cgra  arch.CGRA
		block []int
	}{
		{kernel.GEMM(), arch.Default(2, 2), []int{2, 2, 2}},
		{kernel.BICG(), arch.Default(4, 4), []int{4, 4}},
		{kernel.ADI(), arch.Default(4, 4), []int{4, 4}},
	}
	for _, c := range cases {
		res, err := Compile(c.k, c.cgra, c.block, Options{Seed: 1})
		if err != nil {
			t.Errorf("%s: %v", c.k.Name, err)
			continue
		}
		if err := res.Config.Validate(); err != nil {
			t.Errorf("%s: config: %v", c.k.Name, err)
		}
		if err := sim.Validate(res.Config, c.k, c.block, 2, 77); err != nil {
			t.Errorf("%s: sim: %v", c.k.Name, err)
		}
		if res.Utilization <= 0 || res.Utilization > 1 {
			t.Errorf("%s: U = %v", c.k.Name, res.Utilization)
		}
	}
}

func TestBaselineNodeWall(t *testing.T) {
	// GEMM at b=8 has 8^3 iterations × 4 ops ≈ 2k nodes: over the wall.
	k := kernel.GEMM()
	_, err := Compile(k, arch.Default(8, 8), []int{8, 8, 8}, Options{Seed: 1})
	var tooLarge ErrTooLarge
	if !errors.As(err, &tooLarge) {
		t.Fatalf("expected ErrTooLarge, got %v", err)
	}
	if tooLarge.Nodes <= tooLarge.Max {
		t.Errorf("wall error inconsistent: %+v", tooLarge)
	}
}

func TestBaselineTimeout(t *testing.T) {
	k := kernel.MVT()
	_, err := Compile(k, arch.Default(4, 4), []int{6, 6}, Options{Seed: 1, TimeBudget: 1 * time.Millisecond})
	var timeout ErrTimeout
	if !errors.As(err, &timeout) {
		t.Fatalf("expected ErrTimeout, got %v", err)
	}
}

func TestLargestFeasibleBlock(t *testing.T) {
	k := kernel.GEMM()
	b := LargestFeasibleBlock(k, 400, 64)
	if b < 2 {
		t.Fatalf("LargestFeasibleBlock = %d", b)
	}
	d, err := k.BuildDFG(k.UniformBlock(b))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Nodes) > 400 {
		t.Errorf("block %d yields %d nodes > 400", b, len(d.Nodes))
	}
	d2, err := k.BuildDFG(k.UniformBlock(b + 1))
	if err == nil && len(d2.Nodes) <= 400 {
		t.Errorf("block %d+1 still fits (%d nodes); not the largest", b, len(d2.Nodes))
	}
}

func TestBaselineUtilizationBelowHiMapEnvelope(t *testing.T) {
	// The central claim of Fig. 7: conventional mapping leaves utilization
	// on the table even where it succeeds.
	k := kernel.BICG()
	res, err := Compile(k, arch.Default(4, 4), []int{4, 4}, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Utilization >= 1.0 {
		t.Errorf("baseline at %v utilization; expected below the HiMap envelope", res.Utilization)
	}
}

func TestBaselineDeterministicWithSeed(t *testing.T) {
	k := kernel.ADI()
	a, err := Compile(k, arch.Default(2, 2), []int{2, 2}, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compile(k, arch.Default(2, 2), []int{2, 2}, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if a.II != b.II || a.Utilization != b.Utilization {
		t.Errorf("same seed, different results: II %d vs %d", a.II, b.II)
	}
}

func TestBaselineIIAtLeastResourceMinimum(t *testing.T) {
	k := kernel.GEMM()
	block := []int{2, 2, 2}
	res, err := Compile(k, arch.Default(2, 2), block, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	d, _ := k.BuildDFG(block)
	nfu := 0
	for _, n := range d.Nodes {
		if n.Kind.IsCompute() || n.Kind.String() == "route" {
			nfu++
		}
	}
	minII := (nfu + 3) / 4
	if res.II < minII {
		t.Errorf("II %d below resource minimum %d", res.II, minII)
	}
}
