package route

import (
	"errors"
	"fmt"

	"himap/internal/arch"
	"himap/internal/mrrg"
)

// ErrBadCostModel: a cost model handed to SetCostModel violates the
// pricing invariants the search cores depend on (deci-grid costs, the
// admissibility floors, positive capacities).
var ErrBadCostModel = errors.New("invalid cost model")

// CostModel is the congestion-pricing seam of the router: it declares
// the intrinsic cost and the occupancy capacity of every resource node
// class. SetCostModel validates a model once and materializes it into
// flat per-class tables, so the per-edge pricing on the search hot path
// stays two array loads — no interface dispatch per relaxed edge.
//
// Invariants every model must satisfy (enforced by SetCostModel):
//
//   - BaseCost(c) is a positive exact multiple of 0.1 — the Dial bucket
//     queue quantizes accumulated costs onto the deci grid.
//   - BaseCost(c) ≥ the legacy base cost of the class — the A* heuristic
//     (0.7·hops + 0.3·Δcycles) is a lower bound only while every time
//     step costs ≥ 0.3 and every link crossing ≥ 1.0.
//   - Capacity(c) ≥ 1.
type CostModel interface {
	// BaseCost is the intrinsic cost of occupying one node of class c.
	BaseCost(c mrrg.Class) float64
	// Capacity is the congestion-free occupancy of one node of class c.
	Capacity(c mrrg.Class) int
	// Name identifies the model in diagnostics.
	Name() string
}

// UnitModel reproduces the pre-seam hardcoded pricing bit-exactly: unit
// capacity everywhere except the register-file ports, whose capacities
// are pinned at construction (from the CGRA's declared port counts).
// It deliberately ignores the fabric's bandwidth class — it is the
// legacy reference model the differential tests compare against.
type UnitModel struct {
	RFRead, RFWrite int
}

// BaseCost returns the legacy per-class cost table.
//
//himap:noalloc
func (m UnitModel) BaseCost(c mrrg.Class) float64 { return baseCost(c) }

// Capacity returns the legacy capacities: the pinned RF port counts,
// one everywhere else.
//
//himap:noalloc
func (m UnitModel) Capacity(c mrrg.Class) int {
	switch c {
	case mrrg.ClassRFRead:
		return m.RFRead
	case mrrg.ClassRFWrite:
		return m.RFWrite
	default:
		return 1
	}
}

// Name identifies the model.
func (m UnitModel) Name() string { return "unit" }

// BandwidthModel prices the fabric's declared resource capacities: link
// capacity on output registers (2 on double-pumped fabrics, 1 on the
// collapsed shared-bus slot) and the bandwidth-narrowed RF port counts.
// Base costs are the same deci-grid atoms as the unit model — the axis
// varies capacities, not intrinsic costs, so the admissibility floors
// hold by construction.
type BandwidthModel struct {
	Fab arch.Fabric
}

// BaseCost returns the legacy per-class cost table.
//
//himap:noalloc
func (m BandwidthModel) BaseCost(c mrrg.Class) float64 { return baseCost(c) }

// Capacity returns the fabric's effective per-class capacities.
//
//himap:noalloc
func (m BandwidthModel) Capacity(c mrrg.Class) int {
	switch c {
	case mrrg.ClassRFRead:
		return m.Fab.RFReadCap()
	case mrrg.ClassRFWrite:
		return m.Fab.RFWriteCap()
	case mrrg.ClassOut:
		return m.Fab.LinkCapacity()
	default:
		return 1
	}
}

// Name identifies the model.
func (m BandwidthModel) Name() string { return "bandwidth" }

// For selects the cost model matching the graph's fabric: the legacy
// unit model on unit-bandwidth fabrics (keeping default-fabric mappings
// bit-identical to the pre-seam router) and the bandwidth model
// elsewhere. NewSession installs this selection, so every mapper built
// on a Session prices the same model automatically.
func For(g *mrrg.Graph) CostModel {
	if g.Fab.Bandwidth == arch.BWUnit {
		return UnitModel{RFRead: g.Fab.RFReadPorts, RFWrite: g.Fab.RFWritePorts}
	}
	return BandwidthModel{Fab: g.Fab}
}

// SetCostModel validates m against the pricing invariants and installs
// it, materializing its per-class costs and capacities into the
// session's flat tables. Installing a model mid-session is allowed only
// before any occupancy is charged; the capacities a mapping was priced
// under must stay fixed for the whole attempt.
func (s *Session) SetCostModel(m CostModel) error {
	var base [mrrg.NumClasses]float64
	var caps [mrrg.NumClasses]int32
	for ci := 0; ci < mrrg.NumClasses; ci++ {
		c := mrrg.Class(ci)
		b := m.BaseCost(c)
		d := int(b*10 + 0.5)
		if b <= 0 || d < 1 || b*10-float64(d) > 1e-9 || float64(d)-b*10 > 1e-9 {
			return fmt.Errorf("route: model %s: class %s base cost %v is not a positive multiple of 0.1: %w",
				m.Name(), c, b, ErrBadCostModel)
		}
		if b < baseCost(c) {
			return fmt.Errorf("route: model %s: class %s base cost %v below the admissibility floor %v: %w",
				m.Name(), c, b, baseCost(c), ErrBadCostModel)
		}
		capa := m.Capacity(c)
		if capa < 1 {
			return fmt.Errorf("route: model %s: class %s capacity %d < 1: %w",
				m.Name(), c, capa, ErrBadCostModel)
		}
		base[ci] = b
		caps[ci] = int32(capa)
	}
	s.model = m
	s.baseTab = base
	s.capTab = caps
	return nil
}

// CostModel returns the installed pricing model.
func (s *Session) CostModel() CostModel { return s.model }

// CapacityOf returns the installed model's occupancy capacity for a
// node class — what the congestion loop and the incremental-keep checks
// must compare occupancy against (not the graph's raw capacity, which
// an injected model may deliberately override).
//
//himap:noalloc
func (s *Session) CapacityOf(c mrrg.Class) int { return int(s.capTab[c]) }
