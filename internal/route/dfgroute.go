package route

import (
	"context"
	"fmt"

	"himap/internal/arch"
	"himap/internal/diag"
	"himap/internal/ir"
	"himap/internal/mrrg"
)

// Placement assigns one DFG node a slot in the time-extended fabric: real
// (unwrapped) cycle T and PE coordinates (R, C). Placement backends — the
// conventional SA mapper and the exact branch-and-bound mapper — decide
// these slots; RouteDFG decides the wires.
type Placement struct {
	T, R, C int
}

// RouteDFG performs detailed routing of every edge of a placed block DFG
// over the fabric's MRRG at the given II and emits the validated
// configuration. pl[i] is the slot of d.Nodes[i]: loads claim the PE's
// memory read port, stores its write port, everything else the FU. rounds
// bounds the PathFinder negotiated-congestion iterations; on unresolved
// congestion the error wraps diag.ErrRouteCongested. Cancellation is
// polled once per negotiation round: a canceled ctx fails the route
// with an error wrapping diag.ErrCanceled within one round's latency.
//
// The routed net order (topological producer order, sinks in out-edge
// order) and the emitted tags ("n<id>") are part of the deterministic
// output contract: callers' mapping fingerprints depend on them.
func RouteDFG(ctx context.Context, d *ir.DFG, cg arch.Fabric, ii int, pl []Placement, rounds int) (*arch.Config, error) {
	g := mrrg.New(cg, ii)
	placeNode := func(id int) mrrg.Node {
		n := d.Nodes[id]
		p := pl[id]
		switch n.Kind {
		case ir.OpLoad:
			return g.MemReadNode(p.T, p.R, p.C)
		case ir.OpStore:
			return g.MemWriteNode(p.T, p.R, p.C)
		default:
			return g.FUNode(p.T, p.R, p.C)
		}
	}
	ses := NewSession(g)
	order, _ := d.TopoOrder()

	var nets []*Net
	netOf := make([]*Net, len(d.Nodes))
	routeAll := func() error {
		for _, id := range order {
			n := d.Nodes[id]
			if n.Kind == ir.OpStore || len(d.OutEdges(id)) == 0 {
				continue
			}
			net := ses.NewNet(placeNode(id))
			netOf[id] = net
			nets = append(nets, net)
			for _, ei := range d.OutEdges(id) {
				e := d.Edges[ei]
				to := d.Nodes[e.To]
				var targets []mrrg.Node
				if to.Kind == ir.OpStore {
					targets = []mrrg.Node{placeNode(e.To)}
				} else {
					cp := pl[e.To]
					targets = g.OperandTargets(cp.T, cp.R, cp.C)
				}
				if _, _, err := ses.RouteSink(net, targets); err != nil {
					return err
				}
			}
		}
		return nil
	}
	for _, id := range order {
		if d.Nodes[id].Kind == ir.OpStore {
			continue // the producer's routed path claims the write port
		}
		ses.Reserve(placeNode(id))
	}
	ok := false
	for round := 0; round < rounds; round++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("route: %w: %v", diag.ErrCanceled, err)
		}
		for _, net := range nets {
			ses.Release(net)
		}
		nets = nets[:0]
		if err := routeAll(); err != nil {
			return nil, err
		}
		if ses.BumpHistory(nets) == 0 {
			ok = true
			break
		}
	}
	if !ok {
		return nil, fmt.Errorf("route: %w at II %d", diag.ErrRouteCongested, ii)
	}

	cfg := arch.NewConfig(cg, ii)
	em := NewEmitter(cfg)
	for _, id := range order {
		n := d.Nodes[id]
		tag := fmt.Sprintf("n%d", id)
		pn := placeNode(id)
		switch {
		case n.Kind.IsCompute():
			if err := em.PlaceOp(pn, n.Kind, tag); err != nil {
				return nil, err
			}
			if n.HasConst {
				if err := em.SetConstOperand(pn, n.Const, tag+":const"); err != nil {
					return nil, err
				}
			}
		case n.Kind == ir.OpRoute:
			// A flat placement backend has no routing pseudo-ops: data
			// propagation occupies an FU as a move (add #0).
			if err := em.PlaceOp(pn, ir.OpAdd, tag); err != nil {
				return nil, err
			}
			if err := em.SetConstOperand(pn, 0, tag+":mov"); err != nil {
				return nil, err
			}
		case n.Kind == ir.OpLoad:
			if err := em.PlaceLoad(pn, tag, n.Tensor); err != nil {
				return nil, err
			}
			cfg.Loads = append(cfg.Loads, arch.IOSpec{
				R: pn.R, C: pn.C,
				Slot:   ((pn.T % ii) + ii) % ii,
				Phase:  floorDivRoute(pn.T, ii),
				Tensor: n.Tensor, Index: append([]int(nil), n.Index...),
			})
		}
	}
	for _, id := range order {
		net := netOf[id]
		if net == nil {
			continue
		}
		tag := fmt.Sprintf("n%d", id)
		outs := d.OutEdges(id)
		for i, path := range net.Paths {
			e := d.Edges[outs[i]]
			to := d.Nodes[e.To]
			storeElem := ""
			if to.Kind == ir.OpStore {
				storeElem = fmt.Sprintf("%s@%s", to.Tensor, to.Index.Key())
				last := path[len(path)-1]
				cfg.Stores = append(cfg.Stores, arch.IOSpec{
					R: last.R, C: last.C,
					Slot:   ((last.T % ii) + ii) % ii,
					Phase:  floorDivRoute(last.T, ii),
					Tensor: to.Tensor, Index: append([]int(nil), to.Index...),
				})
			}
			if err := em.EmitPath(path, tag, storeElem); err != nil {
				return nil, err
			}
			if to.Kind.IsCompute() || to.Kind == ir.OpRoute {
				if err := em.SetOperand(placeNode(e.To), e.ToPort, path, tag); err != nil {
					return nil, err
				}
			}
		}
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return cfg, nil
}

func floorDivRoute(t, m int) int {
	w := ((t % m) + m) % m
	return (t - w) / m
}
