package route

import (
	"testing"

	"himap/internal/arch"
	"himap/internal/ir"
	"himap/internal/mrrg"
)

func fu(t, r, c int) mrrg.Node { return mrrg.Node{T: t, R: r, C: c, Class: mrrg.ClassFU} }

func TestRouteNeighborSingleHop(t *testing.T) {
	g := mrrg.New(arch.DefaultFabric(2, 2), 4)
	s := NewSession(g)
	src := fu(0, 0, 0)
	s.Reserve(src)
	net := s.NewNet(src)
	// Deliver to the FU of (0,1) at t=1: expect FU(0,0,0) -> OUT.E -> done.
	path, cost, err := s.RouteSink(net, g.OperandTargets(1, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 2 {
		t.Fatalf("path = %v, want length 2", path)
	}
	last := path[len(path)-1]
	if last.Class != mrrg.ClassOut || arch.Dir(last.Idx) != arch.East || last.T != 0 {
		t.Errorf("final node %v, want OUT.E@(0,0)t0", last)
	}
	if cost <= 0 {
		t.Errorf("cost = %v", cost)
	}
}

func TestRouteSamePELaterCycleUsesRF(t *testing.T) {
	g := mrrg.New(arch.DefaultFabric(1, 1), 4)
	s := NewSession(g)
	src := fu(0, 0, 0)
	s.Reserve(src)
	net := s.NewNet(src)
	// 1x1 array: the only way to reach t=2 on the same PE is the RF.
	path, _, err := s.RouteSink(net, g.OperandTargets(2, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	sawReg := false
	for _, n := range path {
		if n.Class == mrrg.ClassReg {
			sawReg = true
		}
	}
	if !sawReg {
		t.Errorf("path %v should pass through a register", path)
	}
	if path[len(path)-1].Class != mrrg.ClassRFRead {
		t.Errorf("delivery node %v, want RF read", path[len(path)-1])
	}
}

func TestRouteWrapsModulo(t *testing.T) {
	g := mrrg.New(arch.DefaultFabric(2, 1), 3)
	s := NewSession(g)
	src := fu(2, 0, 0)
	s.Reserve(src)
	net := s.NewNet(src)
	// Producer at the last cycle of the period, consumer at real cycle 3
	// (slot 0 of the next repetition): a single real-time hop whose
	// resources fold modulo II.
	path, _, err := s.RouteSink(net, g.OperandTargets(3, 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 2 {
		t.Errorf("wrapped path = %v, want single hop", path)
	}
}

func TestNetFanoutSharesPrefix(t *testing.T) {
	g := mrrg.New(arch.DefaultFabric(1, 3), 8)
	s := NewSession(g)
	src := fu(0, 0, 0)
	s.Reserve(src)
	net := s.NewNet(src)
	// First sink: two hops east.
	if _, _, err := s.RouteSink(net, g.OperandTargets(2, 0, 2)); err != nil {
		t.Fatal(err)
	}
	occBefore := len(net.Nodes())
	// Second sink: the intermediate PE (0,1) at t=1 — its delivery node
	// OUT.E@(0,0)t0 is already part of the net, so no new resources.
	if _, _, err := s.RouteSink(net, g.OperandTargets(1, 0, 1)); err != nil {
		t.Fatal(err)
	}
	if got := len(net.Nodes()); got != occBefore {
		t.Errorf("fanout tap added %d nodes, want 0", got-occBefore)
	}
}

func TestCongestionAvoidance(t *testing.T) {
	// Two values from (0,0)t0 and (0,0)t0... can't place two ops on one FU;
	// instead: producers at (0,0) and (2,0), both with a consumer at
	// (1,1)t2 port A/B. Both shortest routes want OUT nodes of distinct
	// PEs, so no conflict; instead test direct oversubscription: two nets
	// forced through the same out register.
	g := mrrg.New(arch.DefaultFabric(1, 2), 2)
	s := NewSession(g)
	srcA := fu(0, 0, 0)
	s.Reserve(srcA)
	netA := s.NewNet(srcA)
	if _, _, err := s.RouteSink(netA, g.OperandTargets(1, 0, 1)); err != nil {
		t.Fatal(err)
	}
	srcB := fu(0, 0, 0) // same FU cycle — artificial second producer
	netB := s.NewNet(srcB)
	if _, _, err := s.RouteSink(netB, g.OperandTargets(1, 0, 1)); err != nil {
		t.Fatal(err)
	}
	// On a 1x2 array both nets need OUT.E@(0,0)t0: oversubscribed.
	over := s.OversubscribedIn([]*Net{netA, netB})
	if len(over) == 0 {
		t.Fatal("expected oversubscription of the single east output register")
	}
	if n := s.BumpHistory([]*Net{netA, netB}); n == 0 {
		t.Error("BumpHistory should report bumped nodes")
	}
	if s.Hist(over[0]) == 0 {
		t.Error("history cost must increase")
	}
	// Rip up net B and re-route: with history cost it should now detour
	// through the register file (deliver at a later... same consumer —
	// the only alternative is RF->... there is none to (0,1) except OUT.E,
	// so it stays oversubscribed but costlier; just verify Release works.
	s.Release(netB)
	over = s.OversubscribedIn([]*Net{netA})
	if len(over) != 0 {
		t.Errorf("after release nothing should be oversubscribed, got %v", over)
	}
}

func TestReleaseRestoresOccupancy(t *testing.T) {
	g := mrrg.New(arch.DefaultFabric(2, 2), 4)
	s := NewSession(g)
	src := fu(0, 0, 0)
	s.Reserve(src)
	net := s.NewNet(src)
	path, _, err := s.RouteSink(net, g.OperandTargets(1, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if s.Occ(path[1]) != 1 {
		t.Errorf("occupancy of %v = %d", path[1], s.Occ(path[1]))
	}
	s.Release(net)
	if s.Occ(path[1]) != 0 {
		t.Errorf("occupancy after release = %d", s.Occ(path[1]))
	}
	if s.Occ(src) != 1 {
		t.Error("source reservation must survive a net release")
	}
}

func TestDeterministicRouting(t *testing.T) {
	for trial := 0; trial < 3; trial++ {
		g := mrrg.New(arch.DefaultFabric(3, 3), 6)
		s := NewSession(g)
		src := fu(0, 0, 0)
		s.Reserve(src)
		net := s.NewNet(src)
		path, _, err := s.RouteSink(net, g.OperandTargets(4, 2, 2))
		if err != nil {
			t.Fatal(err)
		}
		g2 := mrrg.New(arch.DefaultFabric(3, 3), 6)
		s2 := NewSession(g2)
		s2.Reserve(src)
		net2 := s2.NewNet(src)
		path2, _, err := s2.RouteSink(net2, g2.OperandTargets(4, 2, 2))
		if err != nil {
			t.Fatal(err)
		}
		if len(path) != len(path2) {
			t.Fatalf("non-deterministic path lengths %d vs %d", len(path), len(path2))
		}
		for i := range path {
			if path[i] != path2[i] {
				t.Fatalf("non-deterministic path node %d: %v vs %v", i, path[i], path2[i])
			}
		}
	}
}

func TestEmitterSingleHop(t *testing.T) {
	g := mrrg.New(arch.DefaultFabric(1, 2), 2)
	s := NewSession(g)
	src := fu(0, 0, 0)
	s.Reserve(src)
	net := s.NewNet(src)
	consumer := fu(1, 0, 1)
	path, _, err := s.RouteSink(net, g.OperandTargets(1, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	cfg := arch.NewConfig(arch.DefaultFabric(1, 2), 2)
	e := NewEmitter(cfg)
	if err := e.PlaceOp(src, ir.OpMul, "prod"); err != nil {
		t.Fatal(err)
	}
	if err := e.PlaceOp(consumer, ir.OpAdd, "cons"); err != nil {
		t.Fatal(err)
	}
	if err := e.EmitPath(path, "v1", ""); err != nil {
		t.Fatal(err)
	}
	if err := e.SetOperand(consumer, 0, path, "v1"); err != nil {
		t.Fatal(err)
	}
	if err := e.SetConstOperand(consumer, 7, "c"); err != nil {
		t.Fatal(err)
	}
	prod := cfg.At(0, 0, 0)
	if prod.Op != ir.OpMul || prod.OutSel[arch.East].Kind != arch.OpdALU {
		t.Errorf("producer instr %v", prod)
	}
	cons := cfg.At(0, 1, 1)
	if cons.Op != ir.OpAdd || cons.SrcA != arch.FromIn(arch.West) || cons.SrcB != arch.FromConst(7) {
		t.Errorf("consumer instr %v", cons)
	}
}

func TestEmitterDetectsConflicts(t *testing.T) {
	cfg := arch.NewConfig(arch.DefaultFabric(1, 2), 2)
	e := NewEmitter(cfg)
	n := fu(0, 0, 0)
	if err := e.PlaceOp(n, ir.OpMul, "a"); err != nil {
		t.Fatal(err)
	}
	if err := e.PlaceOp(n, ir.OpAdd, "b"); err == nil {
		t.Error("two ops on one FU slot must conflict")
	}
	if err := e.PlaceOp(n, ir.OpMul, "a"); err != nil {
		t.Errorf("idempotent re-stamp must succeed: %v", err)
	}
}

func TestEmitterRegisterPath(t *testing.T) {
	g := mrrg.New(arch.DefaultFabric(1, 1), 4)
	s := NewSession(g)
	src := fu(0, 0, 0)
	s.Reserve(src)
	net := s.NewNet(src)
	consumer := fu(2, 0, 0)
	path, _, err := s.RouteSink(net, g.OperandTargets(2, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	cfg := arch.NewConfig(arch.DefaultFabric(1, 1), 4)
	e := NewEmitter(cfg)
	if err := e.PlaceOp(src, ir.OpMul, "p"); err != nil {
		t.Fatal(err)
	}
	if err := e.PlaceOp(consumer, ir.OpAdd, "c"); err != nil {
		t.Fatal(err)
	}
	if err := e.EmitPath(path, "v", ""); err != nil {
		t.Fatal(err)
	}
	if err := e.SetOperand(consumer, 0, path, "v"); err != nil {
		t.Fatal(err)
	}
	// The producer's slot must write a register from the ALU.
	prod := cfg.At(0, 0, 0)
	if len(prod.RegWr) != 1 || prod.RegWr[0].Src.Kind != arch.OpdALU {
		t.Fatalf("producer %v should write a register from the ALU", prod)
	}
	reg := prod.RegWr[0].Reg
	cons := cfg.At(0, 0, 2)
	if cons.SrcA != arch.FromReg(reg) {
		t.Errorf("consumer %v should read r%d", cons, reg)
	}
	// Fill the free operand ports (a real mapping routes them too), then
	// the whole configuration must pass architectural validation.
	prod.SrcA, prod.SrcB = arch.FromConst(1), arch.FromConst(2)
	cons.SrcB = arch.FromConst(3)
	if err := cfg.Validate(); err != nil {
		t.Errorf("emitted config invalid: %v", err)
	}
}

// TestPathLatencyEqualsScheduleDistance: with real-time search, a routed
// path's latency is exactly the producer→consumer schedule distance —
// never off by a multiple of II (which would silently deliver a value
// from the wrong block initiation).
func TestPathLatencyEqualsScheduleDistance(t *testing.T) {
	g := mrrg.New(arch.DefaultFabric(3, 3), 4)
	s := NewSession(g)
	for _, tc := range []struct{ srcT, dstT, dr, dc int }{
		{0, 1, 0, 1}, // one hop, one cycle
		{0, 5, 2, 2}, // four hops, five cycles (one cycle of slack)
		{2, 9, 1, 0}, // one hop, seven cycles (needs storage)
		{3, 4, 1, 0}, // wrap-adjacent
	} {
		src := fu(tc.srcT, 0, 0)
		s.Reserve(src)
		net := s.NewNet(src)
		path, _, err := s.RouteSink(net, g.OperandTargets(tc.dstT, tc.dr, tc.dc))
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		last := path[len(path)-1]
		// Delivery nodes: neighbor OUT at dstT-1, or local RFRead/MemRead at dstT.
		switch last.Class {
		case mrrg.ClassOut:
			if last.T != tc.dstT-1 {
				t.Errorf("%+v: delivery at real t=%d, want %d", tc, last.T, tc.dstT-1)
			}
		case mrrg.ClassRFRead, mrrg.ClassMemRead:
			if last.T != tc.dstT {
				t.Errorf("%+v: delivery at real t=%d, want %d", tc, last.T, tc.dstT)
			}
		}
		// Monotone non-decreasing real times along the path.
		for i := 1; i < len(path); i++ {
			if path[i].T < path[i-1].T {
				t.Errorf("%+v: time went backwards: %v -> %v", tc, path[i-1], path[i])
			}
		}
		s.Release(net)
		s.Unreserve(src)
	}
}

// TestRouteImpossibleTiming: a consumer earlier than any reachable time
// must fail rather than wrap around.
func TestRouteImpossibleTiming(t *testing.T) {
	g := mrrg.New(arch.DefaultFabric(2, 2), 8)
	s := NewSession(g)
	src := fu(5, 0, 0)
	s.Reserve(src)
	net := s.NewNet(src)
	// Target at real time 3 < source time 5: unreachable (monotone time).
	if _, _, err := s.RouteSink(net, g.OperandTargets(3, 0, 1)); err == nil {
		t.Error("routing backwards in real time must fail")
	}
}

// TestResetKeepHistoryPreservesEscalation.
func TestResetKeepHistoryPreservesEscalation(t *testing.T) {
	g := mrrg.New(arch.DefaultFabric(1, 2), 2)
	s := NewSession(g)
	src := fu(0, 0, 0)
	s.Reserve(src)
	netA := s.NewNet(src)
	if _, _, err := s.RouteSink(netA, g.OperandTargets(1, 0, 1)); err != nil {
		t.Fatal(err)
	}
	netB := s.NewNet(src)
	if _, _, err := s.RouteSink(netB, g.OperandTargets(1, 0, 1)); err != nil {
		t.Fatal(err)
	}
	n := s.BumpHistory([]*Net{netA, netB})
	if n == 0 {
		t.Fatal("expected oversubscription")
	}
	over := s.OversubscribedIn([]*Net{netA, netB})[0]
	h := s.Hist(over)
	s.ResetKeepHistory()
	if s.Occ(over) != 0 {
		t.Error("occupancy must clear")
	}
	if s.Hist(over) != h {
		t.Error("history must survive the reset")
	}
}

// TestNetOutRegisterHoldPath: long same-direction delays can ride the
// output register's hold.
func TestNetOutRegisterHoldPath(t *testing.T) {
	g := mrrg.New(arch.DefaultFabric(1, 2), 6)
	s := NewSession(g)
	src := fu(0, 0, 0)
	s.Reserve(src)
	net := s.NewNet(src)
	path, _, err := s.RouteSink(net, g.OperandTargets(3, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	// Some storage is required for the 3-cycle latency over 1 hop.
	storage := 0
	for _, n := range path {
		if n.Class == mrrg.ClassReg || n.Class == mrrg.ClassOut {
			storage++
		}
	}
	if storage < 2 {
		t.Errorf("path %v should use storage for the slack", path)
	}
}
