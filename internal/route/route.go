// Package route implements negotiated-congestion routing on the implicit
// MRRG: Dijkstra least-cost path search that allows resource
// oversubscription, plus the PathFinder/SPR-style cost escalation loop
// HiMap's MAP() and ROUTE() functions are built on (§V: "All ports are
// initially assigned the same cost. At the end of each iteration, the
// costs of oversubscribed ports are increased ... inspired by SPR").
//
// Searches run in *real* (unwrapped) time so that a route's length equals
// the true producer→consumer latency; occupancy is charged modulo II via
// mrrg.Graph.DenseKey. Search is pruned at the latest target cycle — the
// resource edges are time-monotone, so no useful path extends past it.
//
// Memory discipline: the Dijkstra inner loop is allocation-free in steady
// state. All per-search state (dist, parent, closed, target and ownership
// marks) lives in flat generation-stamped scratch arrays owned by the
// Session and indexed by dense packed node keys; a search invalidates the
// previous search's entries by bumping a generation counter instead of
// clearing or reallocating. The frontier is a hand-rolled min-heap of
// value items (no container/heap interface boxing). Occupancy and history
// costs are flat arrays over the modulo key space, so the enterCost call
// on every relaxed edge is two array loads. See DESIGN.md ("Concurrency
// model & hot-path memory discipline").
package route

import (
	"errors"
	"fmt"

	"himap/internal/mrrg"
)

// Sentinel route failures, errors.Is-able through the wrapped errors
// RouteSink returns (and through the StageErrors of the mappers built on
// this package).
var (
	// ErrNoPath: the Dijkstra search exhausted the reachable sub-graph
	// without touching a target (or had no targets at all).
	ErrNoPath = errors.New("no path")
	// ErrSearchLimit: the search visited more nodes than Session.MaxVisits
	// allows — congestion so severe the search was cut off.
	ErrSearchLimit = errors.New("search limit exceeded")
)

// Path is a resource node sequence from a producer to one sink; node 0 is
// the producer's own placement node (FU or memory read port). Times are
// real (unwrapped).
type Path []mrrg.Node

// Net is one routed signal: a producer node and a tree of paths to its
// sinks. Paths share resource nodes freely (a net may reuse its own
// nodes at no cost — fanout taps an existing wire).
type Net struct {
	ID    int
	Src   mrrg.Node
	Paths []Path
	nodes map[uint64]bool // RealKeys of every node of the tree, incl. Src
	list  []mrrg.Node     // nodes charged to occupancy (excludes Src)
}

// Nodes reports the set of real-keyed resource nodes the net occupies.
func (n *Net) Nodes() map[uint64]bool { return n.nodes }

// Session tracks resource occupancy and history costs across the nets of
// one mapping attempt. A Session (and its scratch storage) may be reused
// across many routing rounds; it is not safe for concurrent use — give
// each worker goroutine its own Session.
type Session struct {
	G *mrrg.Graph

	// PresFac scales the penalty for entering an oversubscribed node;
	// HistBump is added to a node's history cost each escalation round.
	PresFac  float64
	HistBump float64
	// MaxVisits bounds each Dijkstra search.
	MaxVisits int

	// Filter, when non-nil, restricts the search to nodes it accepts.
	// HiMap's canonical routing uses it to keep paths inside the spatial
	// envelope that exists for every replica of the route (a class member
	// near the array edge must be able to reuse the translated path).
	Filter func(mrrg.Node) bool

	// occ and hist are dense arrays over the modulo occupancy key space
	// (mrrg.Graph.DenseKey) — the negotiated-congestion state.
	occ    []int32
	hist   []float64
	netSeq int

	sc searchScratch
}

// NewSession creates a routing session over g with the default cost
// parameters. Occupancy and history storage is allocated once here and
// reused for the session's lifetime; ResetKeepHistory and Reset clear it
// in place rather than reallocating.
func NewSession(g *mrrg.Graph) *Session {
	n := g.NumDenseKeys()
	return &Session{
		G:         g,
		PresFac:   2.0,
		HistBump:  3.0,
		MaxVisits: 400000,
		occ:       make([]int32, n),
		hist:      make([]float64, n),
	}
}

// ResetKeepHistory clears all occupancy and nets but keeps the
// accumulated history costs — the state carried between negotiated
// congestion rounds when a mapping attempt is rebuilt from scratch.
// The occupancy storage is zeroed in place, not reallocated.
//
//himap:noalloc
func (s *Session) ResetKeepHistory() {
	clear(s.occ)
	s.netSeq = 0
}

// Reset returns the session to its NewSession state (occupancy, history,
// and net numbering all cleared) while keeping every allocation for
// reuse — the cheap way to recycle a Session across mapping attempts.
//
//himap:noalloc
func (s *Session) Reset() {
	clear(s.occ)
	clear(s.hist)
	s.netSeq = 0
}

// baseCost is the intrinsic cost of occupying one resource node.
//
//himap:noalloc
func baseCost(c mrrg.Class) float64 {
	switch c {
	case mrrg.ClassOut:
		return 1.0
	case mrrg.ClassReg:
		return 0.6
	case mrrg.ClassRFRead, mrrg.ClassRFWrite:
		return 0.3
	case mrrg.ClassMemRead, mrrg.ClassMemWrite:
		return 1.0
	default:
		return 1.0
	}
}

// enterCost prices entering node n for a net that does not yet own it.
//
//himap:noalloc
func (s *Session) enterCost(n mrrg.Node) float64 {
	key := s.G.DenseKey(n)
	cap := s.G.Capacity(n.Class)
	over := int(s.occ[key]) + 1 - cap
	pen := 1.0
	if over > 0 {
		pen = 1.0 + float64(over)*s.PresFac
	}
	return baseCost(n.Class)*pen + s.hist[key]
}

// Reserve marks a placement node (FU slot, memory port) occupied outside
// any net, e.g. an operation placement. It returns the new occupancy.
//
//himap:noalloc
func (s *Session) Reserve(n mrrg.Node) int {
	k := s.G.DenseKey(n)
	s.occ[k]++
	return int(s.occ[k])
}

// Unreserve releases a Reserve.
//
//himap:noalloc
func (s *Session) Unreserve(n mrrg.Node) {
	s.occ[s.G.DenseKey(n)]--
}

// Occ returns the current occupancy of a node (modulo II).
//
//himap:noalloc
func (s *Session) Occ(n mrrg.Node) int { return int(s.occ[s.G.DenseKey(n)]) }

// Hist returns the accumulated history cost of a node (for tests).
//
//himap:noalloc
func (s *Session) Hist(n mrrg.Node) float64 { return s.hist[s.G.DenseKey(n)] }

// heapItem is one frontier entry: the accumulated cost, the node's
// RealKey (the deterministic tie-break — kept identical to the historical
// container/heap ordering so mappings are bit-stable across releases),
// and the node's dense scratch index.
type heapItem struct {
	cost float64
	key  uint64
	idx  int32
}

//himap:noalloc
func itemLess(a, b heapItem) bool {
	if a.cost != b.cost {
		return a.cost < b.cost
	}
	return a.key < b.key
}

// minHeap is a hand-rolled binary min-heap of value items — no
// interface{} boxing, no per-push allocation once warmed up.
type minHeap []heapItem

//himap:noalloc
func (h *minHeap) push(it heapItem) {
	q := append(*h, it)
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !itemLess(q[i], q[p]) {
			break
		}
		q[i], q[p] = q[p], q[i]
		i = p
	}
	*h = q
}

//himap:noalloc
func (h *minHeap) pop() heapItem {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q = q[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && itemLess(q[r], q[l]) {
			m = r
		}
		if !itemLess(q[m], q[i]) {
			break
		}
		q[i], q[m] = q[m], q[i]
		i = m
	}
	*h = q
	return top
}

// searchScratch is the per-Session Dijkstra working set: flat arrays over
// the dense real-node index space of one search, invalidated between
// searches by a generation stamp (an entry is live only when its stamp
// equals the current generation). The arrays grow monotonically and are
// never cleared, so steady-state searches allocate nothing.
type searchScratch struct {
	gen    uint32
	seen   []uint32  // dist[i] valid when seen[i] == gen
	dist   []float64 // tentative cost
	parent []int32   // dense index of the predecessor; -1 for seeds
	closed []uint32  // node finalized when closed[i] == gen
	tgt    []uint32  // node is a search target when tgt[i] == gen
	owned  []uint32  // node already belongs to the net when owned[i] == gen
	heap   minHeap
}

// begin opens a new search generation over n dense indices.
func (sc *searchScratch) begin(n int) {
	if len(sc.seen) < n {
		sc.seen = make([]uint32, n)
		sc.dist = make([]float64, n)
		sc.parent = make([]int32, n)
		sc.closed = make([]uint32, n)
		sc.tgt = make([]uint32, n)
		sc.owned = make([]uint32, n)
		sc.gen = 0 // fresh arrays are all-zero: restart stamping
	}
	sc.gen++
	if sc.gen == 0 { // generation counter wrapped: purge stale stamps
		clear(sc.seen)
		clear(sc.closed)
		clear(sc.tgt)
		clear(sc.owned)
		sc.gen = 1
	}
	sc.heap = sc.heap[:0]
}

// NewNet starts a net at the producer's placement node. The source node's
// occupancy is the producer's own (via Reserve); the net reuses it freely.
func (s *Session) NewNet(src mrrg.Node) *Net {
	s.netSeq++
	return &Net{
		ID:    s.netSeq,
		Src:   src,
		nodes: map[uint64]bool{mrrg.RealKey(src): true},
	}
}

// nodeAt reconstructs the node of a dense scratch index (the inverse of
// the packing in RouteSink).
//
//himap:noalloc
func (s *Session) nodeAt(i int32, tBase, pes, cols, slots int) mrrg.Node {
	slot := int(i) % slots
	rest := int(i) / slots
	pe := rest % pes
	cl, idx := s.G.SlotResource(slot)
	return mrrg.Node{T: rest/pes + tBase, R: pe / cols, C: pe % cols, Class: cl, Idx: idx}
}

// RouteSink extends the net with a least-cost path from any node the net
// already owns to any node of targets. Newly entered nodes are charged to
// the session occupancy (modulo II). The found path starts at an owned
// node and ends at the reached target.
//
// The search is a Dijkstra over the implicit time-extended graph, pruned
// at the latest target cycle, running entirely in the session's
// generation-stamped scratch arrays: per call it allocates only the
// returned Path (plus one-time scratch growth when a search spans more
// cycles than any before it).
func (s *Session) RouteSink(net *Net, targets []mrrg.Node) (Path, float64, error) {
	if len(targets) == 0 {
		return nil, 0, fmt.Errorf("route: %w: no targets", ErrNoPath)
	}
	// The dense per-search index space covers real cycles [tBase, maxT]:
	// tBase is the earliest seed or target (successor times are monotone,
	// so nothing before it is reachable), maxT the latest target (nothing
	// after it is useful).
	maxT, tBase := targets[0].T, targets[0].T
	for _, t := range targets {
		if t.T > maxT {
			maxT = t.T
		}
		if t.T < tBase {
			tBase = t.T
		}
	}
	if net.Src.T < tBase {
		tBase = net.Src.T
	}
	for _, p := range net.Paths {
		for _, n := range p {
			if n.T < tBase {
				tBase = n.T
			}
		}
	}

	pes := s.G.Fab.NumPEs()
	cols := s.G.Fab.Cols
	slots := s.G.SlotsPerPE()
	sc := &s.sc
	sc.begin((maxT - tBase + 1) * pes * slots)
	gen := sc.gen
	idxOf := func(n mrrg.Node) int32 {
		return int32(((n.T-tBase)*pes+n.R*cols+n.C)*slots + s.G.SlotIndex(n.Class, n.Idx))
	}

	for _, t := range targets {
		sc.tgt[idxOf(t)] = gen
	}
	seed := func(n mrrg.Node) {
		if n.T > maxT {
			return
		}
		i := idxOf(n)
		sc.owned[i] = gen
		sc.seen[i] = gen
		sc.dist[i] = 0
		sc.parent[i] = -1
		sc.heap.push(heapItem{cost: 0, key: mrrg.RealKey(n), idx: i})
	}
	seed(net.Src)
	for _, p := range net.Paths {
		for _, n := range p {
			seed(n)
		}
	}

	visits := 0
	for len(sc.heap) > 0 {
		it := sc.heap.pop()
		if sc.closed[it.idx] == gen {
			continue
		}
		sc.closed[it.idx] = gen
		visits++
		if visits > s.MaxVisits {
			return nil, 0, fmt.Errorf("route: %w (limit %d)", ErrSearchLimit, s.MaxVisits)
		}
		if sc.tgt[it.idx] == gen {
			n := 0
			for i := it.idx; ; {
				n++
				p := sc.parent[i]
				if p < 0 {
					break
				}
				i = p
			}
			path := make(Path, n)
			for i, j := it.idx, n-1; ; j-- {
				path[j] = s.nodeAt(i, tBase, pes, cols, slots)
				p := sc.parent[i]
				if p < 0 {
					break
				}
				i = p
			}
			s.commit(net, path)
			return path, it.cost, nil
		}
		cur := s.nodeAt(it.idx, tBase, pes, cols, slots)
		base := it.cost
		parent := it.idx
		s.G.Succ(cur, func(m mrrg.Node) {
			if m.T > maxT {
				return
			}
			if s.Filter != nil && !s.Filter(m) {
				return
			}
			mi := idxOf(m)
			if sc.closed[mi] == gen {
				return
			}
			nd := base
			if sc.owned[mi] != gen {
				nd += s.enterCost(m)
			}
			if sc.seen[mi] != gen || nd < sc.dist[mi] {
				sc.seen[mi] = gen
				sc.dist[mi] = nd
				sc.parent[mi] = parent
				sc.heap.push(heapItem{cost: nd, key: mrrg.RealKey(m), idx: mi})
			}
		})
	}
	return nil, 0, fmt.Errorf("route: %w from net %d (src %v) to %v", ErrNoPath, net.ID, net.Src, targets[0])
}

// commit charges newly used path nodes to occupancy and records them in
// the net.
func (s *Session) commit(net *Net, path Path) {
	for _, n := range path {
		rk := mrrg.RealKey(n)
		if net.nodes[rk] {
			continue
		}
		net.nodes[rk] = true
		net.list = append(net.list, n)
		s.occ[s.G.DenseKey(n)]++
	}
	net.Paths = append(net.Paths, path)
}

// Release rips up an entire net, returning its resources.
func (s *Session) Release(net *Net) {
	for _, n := range net.list {
		s.occ[s.G.DenseKey(n)]--
	}
	net.nodes = map[uint64]bool{mrrg.RealKey(net.Src): true}
	net.list = nil
	net.Paths = nil
}

// ChargeShifted charges a translated copy of the net's resources to the
// session occupancy — used when a canonical route is replicated across
// iteration clusters so that congestion reflects all replicas.
func (s *Session) ChargeShifted(net *Net, dt, dr, dc int) {
	for _, n := range net.list {
		s.occ[s.G.DenseKey(n.Shifted(dt, dr, dc))]++
	}
}

// OversubscribedIn returns the nodes of the given nets whose occupancy
// exceeds capacity.
func (s *Session) OversubscribedIn(nets []*Net) []mrrg.Node {
	var out []mrrg.Node
	seen := map[int]bool{}
	for _, net := range nets {
		for _, p := range net.Paths {
			for _, n := range p {
				k := s.G.DenseKey(n)
				if seen[k] {
					continue
				}
				seen[k] = true
				if int(s.occ[k]) > s.G.Capacity(n.Class) {
					out = append(out, n)
				}
			}
		}
	}
	return out
}

// BumpHistory raises the history cost of every oversubscribed node among
// the given nets and returns how many nodes were bumped. A return of zero
// means the routing is congestion-free (§V's success condition).
func (s *Session) BumpHistory(nets []*Net) int {
	over := s.OversubscribedIn(nets)
	for _, n := range over {
		s.hist[s.G.DenseKey(n)] += s.HistBump
	}
	return len(over)
}
