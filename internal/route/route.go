// Package route implements negotiated-congestion routing on the implicit
// MRRG: least-cost path search that allows resource oversubscription,
// plus the PathFinder/SPR-style cost escalation loop HiMap's MAP() and
// ROUTE() functions are built on (§V: "All ports are initially assigned
// the same cost. At the end of each iteration, the costs of
// oversubscribed ports are increased ... inspired by SPR").
//
// Searches run in *real* (unwrapped) time so that a route's length equals
// the true producer→consumer latency; occupancy is charged modulo II via
// mrrg.Graph.DenseKey. Search is pruned at the latest target cycle — the
// resource edges are time-monotone, so no useful path extends past it.
//
// The default search core is A* over a Dial-style bucket queue; the
// pre-A* binary-heap Dijkstra is kept behind Session.Legacy and the two
// are bit-identical (see DESIGN.md "Router" for the argument):
//
//   - The heuristic is admissible and consistent: per target, 0.7 × the
//     topology hop distance (arch.Fabric.HopDist — Manhattan, wrapped
//     Manhattan on a torus, Chebyshev with diagonals) plus 0.3 × the
//     remaining cycles, minimized over the targets (heuristicAt has the
//     entry-cost accounting). Nodes from which no target is reachable in
//     time are pruned outright.
//   - Every cost atom is an exact multiple of 0.1, so a frontier entry's
//     f = g+h quantizes exactly into a deci-cost bucket; buckets pop in
//     Dial order and each bucket is a small binary heap ordered by the
//     exact (float cost, RealKey) pair — the global pop order is exactly
//     the historical (cost, key) order of the old global heap.
//   - Tie-breaking is order-independent: on an exactly equal tentative
//     cost the predecessor with the smaller RealKey wins the parent slot,
//     and when the first target pops, its whole bucket is drained before
//     committing so every same-cost parent claim (and every same-cost
//     target) has been seen; the final target is the (cost, RealKey)
//     minimum of the drained hits — precisely the node Dijkstra pops
//     first.
//
// Memory discipline: the search inner loop is allocation-free in steady
// state. All per-search state (dist, parent, closed, heuristic, target
// and ownership marks) lives in flat generation-stamped scratch arrays
// indexed by dense packed node keys; a search invalidates the previous
// search's entries by bumping a generation counter instead of clearing
// or reallocating. The bucket queue's per-bucket heaps are value items
// (no container/heap interface boxing) and are themselves generation-
// stamped. Occupancy and history costs are flat arrays over the modulo
// key space, so the enterCost call on every relaxed edge is two array
// loads. See DESIGN.md ("Concurrency model & hot-path memory
// discipline").
package route

import (
	"errors"
	"fmt"

	"himap/internal/mrrg"
)

// Sentinel route failures, errors.Is-able through the wrapped errors
// RouteSink returns (and through the StageErrors of the mappers built on
// this package).
var (
	// ErrNoPath: the search exhausted the reachable sub-graph without
	// touching a target (or had no targets at all).
	ErrNoPath = errors.New("no path")
	// ErrSearchLimit: the search visited more nodes than Session.MaxVisits
	// allows — congestion so severe the search was cut off.
	ErrSearchLimit = errors.New("search limit exceeded")
)

// Path is a resource node sequence from a producer to one sink; node 0 is
// the producer's own placement node (FU or memory read port). Times are
// real (unwrapped).
type Path []mrrg.Node

// Net is one routed signal: a producer node and a tree of paths to its
// sinks. Paths share resource nodes freely (a net may reuse its own
// nodes at no cost — fanout taps an existing wire).
type Net struct {
	ID     int
	Src    mrrg.Node
	Paths  []Path
	srcKey uint64      // RealKey(Src)
	keys   []uint64    // RealKeys of list, for O(n) membership on commit
	list   []mrrg.Node // nodes charged to occupancy (excludes Src)
}

// Nodes reports the set of real-keyed resource nodes the net occupies.
func (n *Net) Nodes() map[uint64]bool {
	m := make(map[uint64]bool, len(n.keys)+1)
	m[n.srcKey] = true
	for _, k := range n.keys {
		m[k] = true
	}
	return m
}

// NodeList reports the nodes charged to occupancy (excluding Src), in
// commit order. Callers must not mutate it.
//
//himap:noalloc
func (n *Net) NodeList() []mrrg.Node { return n.list }

// Session tracks resource occupancy and history costs across the nets of
// one mapping attempt. A Session (and its scratch storage) may be reused
// across many routing rounds; it is not safe for concurrent use — except
// that RouteSinkIn calls on nets with provably disjoint occupancy
// footprints may run concurrently, each with its own Scratch (see
// RouteSinkIn).
type Session struct {
	G *mrrg.Graph

	// PresFac scales the penalty for entering an oversubscribed node;
	// HistBump is added to a node's history cost each escalation round.
	PresFac  float64
	HistBump float64
	// MaxVisits bounds each search. NewSession derives the default from
	// the fabric's dense key space (16× NumDenseKeys, floor 4096) so
	// large-fabric searches are not cut off spuriously while small-fabric
	// searches fail fast; overriding the field still works.
	MaxVisits int

	// Legacy selects the pre-A* global binary-heap Dijkstra core. It is
	// kept for the router-equivalence differential tests: both cores
	// produce bit-identical paths, costs, and mappings.
	Legacy bool

	// Filter, when non-nil, restricts the search to nodes it accepts.
	// HiMap's canonical routing uses it to keep paths inside the spatial
	// envelope that exists for every replica of the route (a class member
	// near the array edge must be able to reuse the translated path).
	Filter func(mrrg.Node) bool

	// occ and hist are dense arrays over the modulo occupancy key space
	// (mrrg.Graph.DenseKey) — the negotiated-congestion state.
	occ    []int32
	hist   []float64
	netSeq int

	// mark/markGen is generation-stamped dedup scratch for
	// OversubscribedIn (avoids a per-call hash map).
	mark    []uint32
	markGen uint32

	// netFree recycles Net storage from discarded routing rounds (see
	// FreeNet); a congested attempt re-routes the same net set every
	// round, so the freelist makes rounds after the first allocation-free
	// on the net side.
	netFree []*Net

	// model is the installed congestion-pricing model; baseTab/capTab
	// are its per-class materialization (see SetCostModel), so the
	// pricing on every relaxed edge stays two array loads with no
	// interface dispatch. NewSession installs For(G).
	model   CostModel
	baseTab [mrrg.NumClasses]float64
	capTab  [mrrg.NumClasses]int32

	// linearKeys records that DenseKey is a pure linear function of the
	// dense search index (true except on shared-bus fabrics, where the
	// Out directions collapse onto one occupancy slot). The A* core's
	// index+tdelta occupancy-key fast path is valid only when set.
	linearKeys bool

	sc Scratch
}

// defaultMaxVisits scales the per-search visit budget with the dense key
// space: every search closes a node at most once (up to rare ulp-scale
// reopenings), and a search spans a small multiple of II real cycles, so
// 16× the modulo key space is generous on every fabric while still
// cutting off runaway congestion quickly on small arrays.
func defaultMaxVisits(denseKeys int) int {
	v := 16 * denseKeys
	if v < 4096 {
		v = 4096
	}
	return v
}

// NewSession creates a routing session over g with the default cost
// parameters. Occupancy and history storage is allocated once here and
// reused for the session's lifetime; ResetKeepHistory and Reset clear it
// in place rather than reallocating.
func NewSession(g *mrrg.Graph) *Session {
	n := g.NumDenseKeys()
	s := &Session{
		G:          g,
		PresFac:    2.0,
		HistBump:   3.0,
		MaxVisits:  defaultMaxVisits(n),
		occ:        make([]int32, n),
		hist:       make([]float64, n),
		mark:       make([]uint32, n),
		linearKeys: !g.SharedOut(),
	}
	if err := s.SetCostModel(For(g)); err != nil {
		// The built-in models satisfy the invariants by construction.
		panic(err)
	}
	return s
}

// ResetKeepHistory clears all occupancy and nets but keeps the
// accumulated history costs — the state carried between negotiated
// congestion rounds when a mapping attempt is rebuilt from scratch.
// The occupancy storage is zeroed in place, not reallocated.
//
//himap:noalloc
func (s *Session) ResetKeepHistory() {
	clear(s.occ)
	s.netSeq = 0
}

// Reset returns the session to its NewSession state (occupancy, history,
// and net numbering all cleared) while keeping every allocation for
// reuse — the cheap way to recycle a Session across mapping attempts.
//
//himap:noalloc
func (s *Session) Reset() {
	clear(s.occ)
	clear(s.hist)
	s.netSeq = 0
}

// baseCost is the legacy intrinsic cost of occupying one resource node
// — the UnitModel's table and the admissibility floor every CostModel
// is validated against. Every value is an exact multiple of 0.1 —
// together with integral PresFac and HistBump multiples this keeps all
// accumulated costs on the deci-unit grid the bucket queue quantizes
// into.
//
//himap:noalloc
func baseCost(c mrrg.Class) float64 {
	switch c {
	case mrrg.ClassOut:
		return 1.0
	case mrrg.ClassReg:
		return 0.6
	case mrrg.ClassRFRead, mrrg.ClassRFWrite:
		return 0.3
	case mrrg.ClassMemRead, mrrg.ClassMemWrite:
		return 1.0
	default:
		return 1.0
	}
}

// enterCost prices entering node n for a net that does not yet own it.
//
//himap:noalloc
func (s *Session) enterCost(n mrrg.Node) float64 {
	return s.enterCostAt(n, s.G.DenseKey(n))
}

// enterCostAt is enterCost with the node's dense occupancy key already
// resolved — the A* core derives it from the search index and a
// precomputed per-cycle delta instead of re-deriving the full DenseKey.
//
//himap:noalloc
func (s *Session) enterCostAt(n mrrg.Node, key int) float64 {
	over := int(s.occ[key]) + 1 - int(s.capTab[n.Class])
	pen := 1.0
	if over > 0 {
		pen = 1.0 + float64(over)*s.PresFac
	}
	return s.baseTab[n.Class]*pen + s.hist[key]
}

// Reserve marks a placement node (FU slot, memory port) occupied outside
// any net, e.g. an operation placement. It returns the new occupancy.
//
//himap:noalloc
func (s *Session) Reserve(n mrrg.Node) int {
	k := s.G.DenseKey(n)
	s.occ[k]++
	return int(s.occ[k])
}

// Unreserve releases a Reserve.
//
//himap:noalloc
func (s *Session) Unreserve(n mrrg.Node) {
	s.occ[s.G.DenseKey(n)]--
}

// Occ returns the current occupancy of a node (modulo II).
//
//himap:noalloc
func (s *Session) Occ(n mrrg.Node) int { return int(s.occ[s.G.DenseKey(n)]) }

// Hist returns the accumulated history cost of a node (for tests).
//
//himap:noalloc
func (s *Session) Hist(n mrrg.Node) float64 { return s.hist[s.G.DenseKey(n)] }

// heapItem is one frontier entry: the accumulated cost (g for the legacy
// core, f = g+h for A*), the node's RealKey (the deterministic tie-break
// — kept identical to the historical container/heap ordering so mappings
// are bit-stable across releases), and the node's dense scratch index.
type heapItem struct {
	cost float64
	key  uint64
	idx  int32
}

//himap:noalloc
func itemLess(a, b heapItem) bool {
	if a.cost != b.cost {
		return a.cost < b.cost
	}
	return a.key < b.key
}

// minHeap is a hand-rolled binary min-heap of value items — no
// interface{} boxing, no per-push allocation once warmed up. The legacy
// core uses one global heap; the A* bucket queue uses one small heap per
// deci-cost bucket.
type minHeap []heapItem

//himap:noalloc
func (h *minHeap) push(it heapItem) {
	q := append(*h, it)
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !itemLess(q[i], q[p]) {
			break
		}
		q[i], q[p] = q[p], q[i]
		i = p
	}
	*h = q
}

//himap:noalloc
func (h *minHeap) pop() heapItem {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q = q[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && itemLess(q[r], q[l]) {
			m = r
		}
		if !itemLess(q[m], q[i]) {
			break
		}
		q[i], q[m] = q[m], q[i]
		i = m
	}
	*h = q
	return top
}

// deci quantizes a cost onto the bucket grid. Every cost atom (base
// costs, presence penalties, history bumps, heuristic terms) is an exact
// multiple of 0.1, so accumulated float sums sit within ulps of a grid
// point and round-to-nearest recovers the exact deci value; two sums
// that are mathematically equal but float-unequal always land in the
// same bucket, where the per-bucket heap orders them by the exact float.
//
//himap:noalloc
func deci(f float64) int { return int(f*10 + 0.5) }

// bucketQueue is a Dial-style monotone priority queue: frontier entries
// hash into deci-cost buckets popped in ascending order, and each bucket
// is a small binary min-heap over the exact (cost, RealKey) pair. Pops
// therefore follow the exact global (cost, key) order of one big heap,
// but push/pop touch only a bucket-sized heap — on wide frontiers the
// log factor collapses to the handful of entries sharing one deci cost.
// Buckets grow monotonically and are generation-stamped like the rest of
// the scratch, so steady-state searches allocate nothing.
type bucketQueue struct {
	buckets []minHeap
	bgen    []uint32
	gen     uint32
	cur     int
	n       int
}

// reset opens a new search. The queue keeps its own generation counter
// (it must not share the Scratch's, which restarts when the scratch
// arrays grow — leftover undrained bucket entries from a prior search
// would then masquerade as live).
//
//himap:noalloc
func (q *bucketQueue) reset() {
	q.gen++
	if q.gen == 0 {
		clear(q.bgen)
		q.gen = 1
	}
	q.cur = 0
	q.n = 0
}

//himap:noalloc
func (q *bucketQueue) push(it heapItem) {
	d := deci(it.cost)
	if d < q.cur {
		// A consistent heuristic keeps priorities monotone up to float
		// jitter at a bucket boundary; fold such pushes into the current
		// bucket so the Dial cursor never moves backwards.
		d = q.cur
	}
	for len(q.buckets) <= d {
		q.buckets = append(q.buckets, nil)
		q.bgen = append(q.bgen, 0)
	}
	if q.bgen[d] != q.gen {
		q.bgen[d] = q.gen
		q.buckets[d] = q.buckets[d][:0]
	}
	b := &q.buckets[d]
	b.push(it)
	q.n++
}

// peek advances the cursor to the first live non-empty bucket and
// returns its deci cost, or -1 when the queue is empty.
//
//himap:noalloc
func (q *bucketQueue) peek() int {
	if q.n == 0 {
		return -1
	}
	for q.bgen[q.cur] != q.gen || len(q.buckets[q.cur]) == 0 {
		q.cur++
	}
	return q.cur
}

//himap:noalloc
func (q *bucketQueue) pop() heapItem {
	q.peek()
	b := &q.buckets[q.cur]
	it := b.pop()
	q.n--
	return it
}

// Scratch is one search working set: flat arrays over the dense real-
// node index space of one search, invalidated between searches by a
// generation stamp (an entry is live only when its stamp equals the
// current generation). The arrays grow monotonically and are never
// cleared, so steady-state searches allocate nothing. The zero value is
// ready to use. RouteSink uses the Session's own Scratch; concurrent
// RouteSinkIn callers supply one Scratch per goroutine.
type Scratch struct {
	gen    uint32
	seen   []uint32  // dist/hval/parent valid when seen[i] == gen
	dist   []float64 // tentative cost g
	hval   []float64 // cached heuristic h (A* core)
	key    []uint64  // cached RealKey of node i (A* core)
	parent []int32   // dense index of the predecessor; -1 for seeds
	closed []uint32  // node finalized when closed[i] == gen
	tgt    []uint32  // node is a search target when tgt[i] == gen
	owned  []uint32  // node already belongs to the net when owned[i] == gen
	tdelta []int     // per relative cycle: DenseKey - search index delta
	hits   []int32   // targets popped while draining the goal bucket
	heap   minHeap   // legacy core frontier
	bq     bucketQueue

	// The heuristic depends only on a node's (cycle, PE) and whether its
	// class is Out — not on the slot — so it is computed once per
	// (cycle, PE) into h0 (general) / h1 (Out credit) when first touched
	// (hseen stamp), not once per node: a SlotsPerPE-fold saving on the
	// per-search target loops.
	hseen []uint32
	h0    []float64
	h1    []float64
}

// begin opens a new search generation over n dense indices (npe of them
// per slot — the (cycle, PE) space the heuristic cache is keyed by).
func (sc *Scratch) begin(n, npe int) {
	if len(sc.seen) < n {
		// Grow geometrically: search windows vary net to net, and
		// doubling caps the reallocation count at log of the largest
		// window instead of once per new high-water mark.
		if c := 2 * len(sc.seen); n < c {
			n = c
		}
		sc.seen = make([]uint32, n)
		sc.dist = make([]float64, n)
		sc.hval = make([]float64, n)
		sc.key = make([]uint64, n)
		sc.parent = make([]int32, n)
		sc.closed = make([]uint32, n)
		sc.tgt = make([]uint32, n)
		sc.owned = make([]uint32, n)
		sc.gen = 0 // fresh arrays are all-zero: restart stamping
	}
	if len(sc.hseen) < npe {
		if c := 2 * len(sc.hseen); npe < c {
			npe = c
		}
		sc.hseen = make([]uint32, npe)
		sc.h0 = make([]float64, npe)
		sc.h1 = make([]float64, npe)
		sc.gen = 0
	}
	sc.gen++
	if sc.gen == 0 { // generation counter wrapped: purge stale stamps
		clear(sc.seen)
		clear(sc.closed)
		clear(sc.tgt)
		clear(sc.owned)
		clear(sc.hseen)
		sc.gen = 1
	}
	sc.heap = sc.heap[:0]
	sc.hits = sc.hits[:0]
	sc.bq.reset()
}

// NewNet starts a net at the producer's placement node. The source node's
// occupancy is the producer's own (via Reserve); the net reuses it freely.
// Storage comes from the FreeNet freelist when available.
func (s *Session) NewNet(src mrrg.Node) *Net {
	s.netSeq++
	if k := len(s.netFree); k > 0 {
		net := s.netFree[k-1]
		s.netFree = s.netFree[:k-1]
		net.ID, net.Src, net.srcKey = s.netSeq, src, mrrg.RealKey(src)
		return net
	}
	return &Net{
		ID:     s.netSeq,
		Src:    src,
		srcKey: mrrg.RealKey(src),
	}
}

// FreeNet returns a net whose plan has been discarded (a failed
// congestion round) to the session freelist for NewNet to reuse. The
// caller must hold no references to the net afterwards, and the net's
// occupancy charges must already be gone (FreeNet does not release
// them — after ResetKeepHistory there is nothing left to release).
// Path storage is NOT recycled: committed Path slices may outlive the
// net in the caller's plan metadata; only the headers array is reused.
func (s *Session) FreeNet(net *Net) {
	net.keys = net.keys[:0]
	net.list = net.list[:0]
	net.Paths = net.Paths[:0]
	s.netFree = append(s.netFree, net)
}

// nodeAt reconstructs the node of a dense scratch index (the inverse of
// the packing in RouteSink).
//
//himap:noalloc
func (s *Session) nodeAt(i int32, tBase, pes, cols, slots int) mrrg.Node {
	slot := int(i) % slots
	rest := int(i) / slots
	pe := rest % pes
	cl, idx := s.G.SlotResource(slot)
	return mrrg.Node{T: rest/pes + tBase, R: pe / cols, C: pe % cols, Class: cl, Idx: idx}
}

// heuristicAt is the admissible, consistent lower bound on the remaining
// cost from n to the cheapest target, minimized over targets:
//
//	0.7·hops + 0.3·Δcycles
//
// where hops is the topology link distance to the target's PE and
// Δcycles = target cycle − n's cycle. Each of the Δcycles time-advancing
// edges enters a node costing ≥ 0.3, and each of the hops link crossings
// additionally requires entering an output register at 1.0 (0.7 beyond
// the 0.3 its time step already accounts for); when n itself is an
// output register it can source the first crossing, so one 0.7 premium
// is waived (the Out lane). A target is unreachable — skipped — when
// Δcycles < hops (every crossing takes a full cycle) or Δcycles < 0
// (time is monotone); a node with no reachable target returns -1 and is
// pruned outright. Search paths never pass through net-owned (cost-0)
// nodes — those are all seeds, and edges into them never relax — so
// every remaining entry really does pay its class base cost. Consistency
// (h(n) ≤ enterCost(m) + h(m) along every Succ edge) is exactly tight on
// crossings into output registers (Δh = 1.0) and into RF write ports
// (Δh = 0.3); see DESIGN.md for the per-edge-class case analysis.
//
// It depends only on the node's (cycle, PE, is-Out), so the per-target
// loop runs once per (cycle, PE) of a search, cached in the scratch
// (both the general and the Out-credit lanes fill from one target scan).
//
//himap:noalloc
func (s *Session) heuristicAt(sc *Scratch, n mrrg.Node, targets []mrrg.Node, tBase, pes, cols int) float64 {
	pi := (n.T-tBase)*pes + n.R*cols + n.C
	if sc.hseen[pi] != sc.gen {
		sc.hseen[pi] = sc.gen
		h0, h1 := -1.0, -1.0
		for _, t := range targets {
			dt := t.T - n.T
			if dt < 0 {
				continue // time is monotone: target already in the past
			}
			d := s.G.Fab.HopDist(n.R, n.C, t.R, t.C)
			if dt < d {
				continue // each link crossing takes a cycle: unreachable
			}
			ht := 0.3 * float64(dt)
			v0 := 0.7*float64(d) + ht
			if d > 0 {
				d--
			}
			v1 := 0.7*float64(d) + ht
			if h0 < 0 || v0 < h0 {
				h0 = v0
			}
			if h1 < 0 || v1 < h1 {
				h1 = v1
			}
		}
		sc.h0[pi] = h0
		sc.h1[pi] = h1
	}
	if n.Class == mrrg.ClassOut {
		return sc.h1[pi]
	}
	return sc.h0[pi]
}

// RouteSink extends the net with a least-cost path from any node the net
// already owns to any node of targets. Newly entered nodes are charged to
// the session occupancy (modulo II). The found path starts at an owned
// node and ends at the reached target.
//
// The search runs entirely in the session's generation-stamped scratch
// arrays: per call it allocates only the returned Path (plus one-time
// scratch growth when a search spans more cycles than any before it).
func (s *Session) RouteSink(net *Net, targets []mrrg.Node) (Path, float64, error) {
	return s.RouteSinkIn(&s.sc, net, targets)
}

// RouteSinkIn is RouteSink with an explicit search Scratch. Nets whose
// occupancy footprints are provably disjoint (their search windows cover
// disjoint cycle sets modulo II within the same spatial envelope) may be
// routed concurrently on one Session, each call with its own Scratch:
// such searches read and write disjoint occupancy entries, so results
// are bit-identical to routing the nets sequentially in any order.
func (s *Session) RouteSinkIn(sc *Scratch, net *Net, targets []mrrg.Node) (Path, float64, error) {
	if len(targets) == 0 {
		return nil, 0, fmt.Errorf("route: %w: no targets", ErrNoPath)
	}
	// The dense per-search index space covers real cycles [tBase, maxT]:
	// tBase is the earliest seed or target (successor times are monotone,
	// so nothing before it is reachable), maxT the latest target (nothing
	// after it is useful).
	maxT, tBase := targets[0].T, targets[0].T
	for _, t := range targets {
		if t.T > maxT {
			maxT = t.T
		}
		if t.T < tBase {
			tBase = t.T
		}
	}
	if net.Src.T < tBase {
		tBase = net.Src.T
	}
	for _, p := range net.Paths {
		for _, n := range p {
			if n.T < tBase {
				tBase = n.T
			}
		}
	}

	pes := s.G.Fab.NumPEs()
	cols := s.G.Fab.Cols
	slots := s.G.SlotsPerPE()
	sc.begin((maxT-tBase+1)*pes*slots, (maxT-tBase+1)*pes)
	gen := sc.gen
	idxOf := func(n mrrg.Node) int32 {
		return int32(((n.T-tBase)*pes+n.R*cols+n.C)*slots + s.G.SlotIndex(n.Class, n.Idx))
	}

	for _, t := range targets {
		sc.tgt[idxOf(t)] = gen
	}
	astar := !s.Legacy
	if astar {
		// Dense-key precomputation: DenseKey(node) = search index +
		// tdelta[node.T - tBase], because within one cycle the search
		// index and the dense occupancy key share the (pe, slot) layout.
		sc.tdelta = sc.tdelta[:0]
		stride := pes * slots
		for tr := 0; tr <= maxT-tBase; tr++ {
			sc.tdelta = append(sc.tdelta, s.G.TimeBase(tBase+tr)-tr*stride)
		}
	}
	seed := func(n mrrg.Node) {
		if n.T > maxT {
			return
		}
		i := idxOf(n)
		sc.owned[i] = gen
		sc.seen[i] = gen
		sc.dist[i] = 0
		sc.parent[i] = -1
		if astar {
			h := s.heuristicAt(sc, n, targets, tBase, pes, cols)
			if h < 0 {
				return // no target reachable from this seed in time
			}
			sc.hval[i] = h
			sc.key[i] = mrrg.RealKey(n)
			sc.bq.push(heapItem{cost: h, key: sc.key[i], idx: i})
			return
		}
		sc.heap.push(heapItem{cost: 0, key: mrrg.RealKey(n), idx: i})
	}
	seed(net.Src)
	for _, p := range net.Paths {
		for _, n := range p {
			seed(n)
		}
	}

	var goal int32
	var cost float64
	var err error
	if astar {
		goal, cost, err = s.searchAStar(sc, net, targets, idxOf, tBase, maxT, pes, cols, slots)
	} else {
		goal, cost, err = s.searchDijkstra(sc, net, targets, idxOf, tBase, maxT, pes, cols, slots)
	}
	if err != nil {
		return nil, 0, err
	}
	n := 0
	for i := goal; ; {
		n++
		p := sc.parent[i]
		if p < 0 {
			break
		}
		i = p
	}
	path := make(Path, n)
	for i, j := goal, n-1; ; j-- {
		path[j] = s.nodeAt(i, tBase, pes, cols, slots)
		p := sc.parent[i]
		if p < 0 {
			break
		}
		i = p
	}
	s.commit(net, path)
	return path, cost, nil
}

// searchDijkstra is the legacy core: a plain Dijkstra over one global
// binary heap, returning at the first target popped. Kept bit-identical
// to the historical router for the differential equivalence tests.
func (s *Session) searchDijkstra(sc *Scratch, net *Net, targets []mrrg.Node,
	idxOf func(mrrg.Node) int32, tBase, maxT, pes, cols, slots int) (int32, float64, error) {
	gen := sc.gen
	visits := 0
	for len(sc.heap) > 0 {
		it := sc.heap.pop()
		if sc.closed[it.idx] == gen {
			continue
		}
		sc.closed[it.idx] = gen
		visits++
		if visits > s.MaxVisits {
			return 0, 0, fmt.Errorf("route: %w (limit %d)", ErrSearchLimit, s.MaxVisits)
		}
		if sc.tgt[it.idx] == gen {
			return it.idx, it.cost, nil
		}
		cur := s.nodeAt(it.idx, tBase, pes, cols, slots)
		base := it.cost
		parent := it.idx
		s.G.Succ(cur, func(m mrrg.Node) {
			if m.T > maxT {
				return
			}
			if s.Filter != nil && !s.Filter(m) {
				return
			}
			mi := idxOf(m)
			if sc.closed[mi] == gen {
				return
			}
			nd := base
			if sc.owned[mi] != gen {
				nd += s.enterCost(m)
			}
			if sc.seen[mi] != gen || nd < sc.dist[mi] {
				sc.seen[mi] = gen
				sc.dist[mi] = nd
				sc.parent[mi] = parent
				sc.heap.push(heapItem{cost: nd, key: mrrg.RealKey(m), idx: mi})
			}
		})
	}
	return 0, 0, fmt.Errorf("route: %w from net %d (src %v) to %v", ErrNoPath, net.ID, net.Src, targets[0])
}

// searchAStar is the default core: A* over the Dial bucket queue. Pops
// follow the exact (f, RealKey) order; parent slots are claimed by the
// order-independent rule "equal tentative cost → smaller predecessor
// RealKey wins"; when the first target pops, the rest of its deci bucket
// is drained (same-cost parent claims and same-cost targets all live
// there) and the (cost, RealKey)-minimal hit is committed — the same
// target, path, and cost the legacy core returns.
func (s *Session) searchAStar(sc *Scratch, net *Net, targets []mrrg.Node,
	idxOf func(mrrg.Node) int32, tBase, maxT, pes, cols, slots int) (int32, float64, error) {
	gen := sc.gen
	visits := 0
	goalBucket := -1
	var gCur float64
	var iCur int32
	var curKey uint64
	relax := func(m mrrg.Node) {
		if m.T > maxT {
			return
		}
		if s.Filter != nil && !s.Filter(m) {
			return
		}
		mi := idxOf(m)
		nd := gCur
		if sc.owned[mi] != gen {
			key := int(mi) + sc.tdelta[m.T-tBase]
			if !s.linearKeys {
				key = s.G.DenseKey(m) // shared-bus collapse: no linear shortcut
			}
			nd += s.enterCostAt(m, key)
		}
		if sc.seen[mi] != gen {
			h := s.heuristicAt(sc, m, targets, tBase, pes, cols)
			if h < 0 {
				return // no target reachable in time: prune
			}
			sc.seen[mi] = gen
			sc.hval[mi] = h
			sc.key[mi] = mrrg.RealKey(m)
			sc.dist[mi] = nd
			sc.parent[mi] = iCur
			sc.bq.push(heapItem{cost: nd + h, key: sc.key[mi], idx: mi})
			return
		}
		if nd < sc.dist[mi] {
			sc.dist[mi] = nd
			sc.parent[mi] = iCur
			if sc.closed[mi] == gen {
				sc.closed[mi] = 0 // reopen (ulp-scale improvement)
			}
			sc.bq.push(heapItem{cost: nd + sc.hval[mi], key: sc.key[mi], idx: mi})
			return
		}
		if nd == sc.dist[mi] {
			// Deterministic, pop-order-independent parent tie-break: the
			// predecessor with the smaller RealKey keeps the slot (exactly
			// the first relaxer in Dijkstra's (g, key) pop order). Seeds
			// (parent -1) are path heads and are never re-parented.
			if p := sc.parent[mi]; p >= 0 && curKey < sc.key[p] {
				sc.parent[mi] = iCur
			}
		}
	}
	for {
		if goalBucket >= 0 {
			if sc.bq.n == 0 || sc.bq.peek() > goalBucket {
				break
			}
		} else if sc.bq.n == 0 {
			return 0, 0, fmt.Errorf("route: %w from net %d (src %v) to %v", ErrNoPath, net.ID, net.Src, targets[0])
		}
		it := sc.bq.pop()
		i := it.idx
		if sc.closed[i] == gen {
			continue
		}
		if it.cost > sc.dist[i]+sc.hval[i] {
			continue // superseded by a cheaper later push
		}
		sc.closed[i] = gen
		if goalBucket < 0 {
			visits++
			if visits > s.MaxVisits {
				return 0, 0, fmt.Errorf("route: %w (limit %d)", ErrSearchLimit, s.MaxVisits)
			}
		}
		if sc.tgt[i] == gen {
			// Targets are hits, not relay points: collect and keep
			// draining the bucket so every same-cost target (and every
			// same-cost parent claim on the winning path) is seen.
			if goalBucket < 0 {
				goalBucket = sc.bq.cur
			}
			sc.hits = append(sc.hits, i)
			continue
		}
		cur := s.nodeAt(i, tBase, pes, cols, slots)
		gCur = sc.dist[i]
		iCur = i
		curKey = sc.key[i]
		s.G.Succ(cur, relax)
	}
	goal := sc.hits[0]
	for _, hi := range sc.hits[1:] {
		if sc.dist[hi] < sc.dist[goal] ||
			(sc.dist[hi] == sc.dist[goal] && sc.key[hi] < sc.key[goal]) {
			goal = hi
		}
	}
	return goal, sc.dist[goal], nil
}

// commit charges newly used path nodes to occupancy and records them in
// the net.
func (s *Session) commit(net *Net, path Path) {
	for _, n := range path {
		rk := mrrg.RealKey(n)
		if rk == net.srcKey || containsKey(net.keys, rk) {
			continue
		}
		net.keys = append(net.keys, rk)
		net.list = append(net.list, n)
		s.occ[s.G.DenseKey(n)]++
	}
	net.Paths = append(net.Paths, path)
}

// containsKey is a linear membership scan — net node lists are short
// (bounded by the net's total path length), so this beats a hash map.
//
//himap:noalloc
func containsKey(keys []uint64, k uint64) bool {
	for _, have := range keys {
		if have == k {
			return true
		}
	}
	return false
}

// Release rips up an entire net, returning its resources.
func (s *Session) Release(net *Net) {
	for _, n := range net.list {
		s.occ[s.G.DenseKey(n)]--
	}
	net.keys = net.keys[:0]
	net.list = net.list[:0]
	net.Paths = nil
}

// Recharge re-applies a previously routed net's occupancy charges after
// ResetKeepHistory — how incremental re-route keeps a congestion-free
// net across negotiated-congestion rounds instead of re-searching it.
//
//himap:noalloc
func (s *Session) Recharge(net *Net) {
	for _, n := range net.list {
		s.occ[s.G.DenseKey(n)]++
	}
}

// ChargeShifted charges a translated copy of the net's resources to the
// session occupancy — used when a canonical route is replicated across
// iteration clusters so that congestion reflects all replicas.
func (s *Session) ChargeShifted(net *Net, dt, dr, dc int) {
	for _, n := range net.list {
		s.occ[s.G.DenseKey(n.Shifted(dt, dr, dc))]++
	}
}

// OversubscribedIn returns the nodes of the given nets whose occupancy
// exceeds capacity.
func (s *Session) OversubscribedIn(nets []*Net) []mrrg.Node {
	s.markGen++
	if s.markGen == 0 {
		clear(s.mark)
		s.markGen = 1
	}
	var out []mrrg.Node
	for _, net := range nets {
		for _, p := range net.Paths {
			for _, n := range p {
				k := s.G.DenseKey(n)
				if s.mark[k] == s.markGen {
					continue
				}
				s.mark[k] = s.markGen
				if int(s.occ[k]) > int(s.capTab[n.Class]) {
					out = append(out, n)
				}
			}
		}
	}
	return out
}

// BumpHistory raises the history cost of every oversubscribed node among
// the given nets and returns how many nodes were bumped. A return of zero
// means the routing is congestion-free (§V's success condition).
func (s *Session) BumpHistory(nets []*Net) int {
	over := s.OversubscribedIn(nets)
	for _, n := range over {
		s.hist[s.G.DenseKey(n)] += s.HistBump
	}
	return len(over)
}
