// Package route implements negotiated-congestion routing on the implicit
// MRRG: Dijkstra least-cost path search that allows resource
// oversubscription, plus the PathFinder/SPR-style cost escalation loop
// HiMap's MAP() and ROUTE() functions are built on (§V: "All ports are
// initially assigned the same cost. At the end of each iteration, the
// costs of oversubscribed ports are increased ... inspired by SPR").
//
// Searches run in *real* (unwrapped) time so that a route's length equals
// the true producer→consumer latency; occupancy is charged modulo II via
// mrrg.Graph.Key. Search is pruned at the latest target cycle — the
// resource edges are time-monotone, so no useful path extends past it.
package route

import (
	"container/heap"
	"fmt"

	"himap/internal/mrrg"
)

// Path is a resource node sequence from a producer to one sink; node 0 is
// the producer's own placement node (FU or memory read port). Times are
// real (unwrapped).
type Path []mrrg.Node

// Net is one routed signal: a producer node and a tree of paths to its
// sinks. Paths share resource nodes freely (a net may reuse its own
// nodes at no cost — fanout taps an existing wire).
type Net struct {
	ID    int
	Src   mrrg.Node
	Paths []Path
	nodes map[uint64]bool // RealKeys of every node of the tree, incl. Src
	list  []mrrg.Node     // nodes charged to occupancy (excludes Src)
}

// Nodes reports the set of real-keyed resource nodes the net occupies.
func (n *Net) Nodes() map[uint64]bool { return n.nodes }

// Session tracks resource occupancy and history costs across the nets of
// one mapping attempt.
type Session struct {
	G *mrrg.Graph

	// PresFac scales the penalty for entering an oversubscribed node;
	// HistBump is added to a node's history cost each escalation round.
	PresFac  float64
	HistBump float64
	// MaxVisits bounds each Dijkstra search.
	MaxVisits int

	// Filter, when non-nil, restricts the search to nodes it accepts.
	// HiMap's canonical routing uses it to keep paths inside the spatial
	// envelope that exists for every replica of the route (a class member
	// near the array edge must be able to reuse the translated path).
	Filter func(mrrg.Node) bool

	occ    map[uint64]int
	hist   map[uint64]float64
	netSeq int
}

// NewSession creates a routing session over g with the default cost
// parameters.
func NewSession(g *mrrg.Graph) *Session {
	return &Session{
		G:         g,
		PresFac:   2.0,
		HistBump:  3.0,
		MaxVisits: 400000,
		occ:       make(map[uint64]int),
		hist:      make(map[uint64]float64),
	}
}

// ResetKeepHistory clears all occupancy and nets but keeps the
// accumulated history costs — the state carried between negotiated
// congestion rounds when a mapping attempt is rebuilt from scratch.
func (s *Session) ResetKeepHistory() {
	s.occ = make(map[uint64]int)
	s.netSeq = 0
}

// baseCost is the intrinsic cost of occupying one resource node.
func baseCost(c mrrg.Class) float64 {
	switch c {
	case mrrg.ClassOut:
		return 1.0
	case mrrg.ClassReg:
		return 0.6
	case mrrg.ClassRFRead, mrrg.ClassRFWrite:
		return 0.3
	case mrrg.ClassMemRead, mrrg.ClassMemWrite:
		return 1.0
	default:
		return 1.0
	}
}

// enterCost prices entering node n for a net that does not yet own it.
func (s *Session) enterCost(n mrrg.Node) float64 {
	key := s.G.Key(n)
	cap := s.G.Capacity(n.Class)
	over := s.occ[key] + 1 - cap
	pen := 1.0
	if over > 0 {
		pen = 1.0 + float64(over)*s.PresFac
	}
	return baseCost(n.Class)*pen + s.hist[key]
}

// Reserve marks a placement node (FU slot, memory port) occupied outside
// any net, e.g. an operation placement. It returns the new occupancy.
func (s *Session) Reserve(n mrrg.Node) int {
	k := s.G.Key(n)
	s.occ[k]++
	return s.occ[k]
}

// Unreserve releases a Reserve.
func (s *Session) Unreserve(n mrrg.Node) {
	k := s.G.Key(n)
	s.occ[k]--
	if s.occ[k] <= 0 {
		delete(s.occ, k)
	}
}

// Occ returns the current occupancy of a node (modulo II).
func (s *Session) Occ(n mrrg.Node) int { return s.occ[s.G.Key(n)] }

// Hist returns the accumulated history cost of a node (for tests).
func (s *Session) Hist(n mrrg.Node) float64 { return s.hist[s.G.Key(n)] }

type pqItem struct {
	key  uint64 // RealKey
	node mrrg.Node
	cost float64
}

type pq []pqItem

func (p pq) Len() int { return len(p) }
func (p pq) Less(i, j int) bool {
	if p[i].cost != p[j].cost {
		return p[i].cost < p[j].cost
	}
	return p[i].key < p[j].key // deterministic tie-break
}
func (p pq) Swap(i, j int)       { p[i], p[j] = p[j], p[i] }
func (p *pq) Push(x interface{}) { *p = append(*p, x.(pqItem)) }
func (p *pq) Pop() interface{} {
	old := *p
	n := len(old)
	it := old[n-1]
	*p = old[:n-1]
	return it
}

// NewNet starts a net at the producer's placement node. The source node's
// occupancy is the producer's own (via Reserve); the net reuses it freely.
func (s *Session) NewNet(src mrrg.Node) *Net {
	s.netSeq++
	return &Net{
		ID:    s.netSeq,
		Src:   src,
		nodes: map[uint64]bool{mrrg.RealKey(src): true},
	}
}

// RouteSink extends the net with a least-cost path from any node the net
// already owns to any node of targets. Newly entered nodes are charged to
// the session occupancy (modulo II). The found path starts at an owned
// node and ends at the reached target.
func (s *Session) RouteSink(net *Net, targets []mrrg.Node) (Path, float64, error) {
	if len(targets) == 0 {
		return nil, 0, fmt.Errorf("route: no targets")
	}
	targetKeys := make(map[uint64]bool, len(targets))
	maxT := 0
	for _, t := range targets {
		targetKeys[mrrg.RealKey(t)] = true
		if t.T > maxT {
			maxT = t.T
		}
	}
	dist := make(map[uint64]float64)
	parent := make(map[uint64]uint64)
	nodeOf := make(map[uint64]mrrg.Node)
	var frontier pq
	seed := func(n mrrg.Node) {
		if n.T > maxT {
			return
		}
		k := mrrg.RealKey(n)
		nodeOf[k] = n
		dist[k] = 0
		heap.Push(&frontier, pqItem{key: k, node: n, cost: 0})
	}
	seed(net.Src)
	for _, p := range net.Paths {
		for _, n := range p {
			seed(n)
		}
	}
	visited := make(map[uint64]bool)
	visits := 0
	for frontier.Len() > 0 {
		it := heap.Pop(&frontier).(pqItem)
		if visited[it.key] {
			continue
		}
		visited[it.key] = true
		visits++
		if visits > s.MaxVisits {
			return nil, 0, fmt.Errorf("route: search limit %d exceeded", s.MaxVisits)
		}
		if targetKeys[it.key] {
			var rev []mrrg.Node
			k := it.key
			for {
				rev = append(rev, nodeOf[k])
				pk, ok := parent[k]
				if !ok {
					break
				}
				k = pk
			}
			path := make(Path, 0, len(rev))
			for i := len(rev) - 1; i >= 0; i-- {
				path = append(path, rev[i])
			}
			s.commit(net, path)
			return path, it.cost, nil
		}
		s.G.Succ(it.node, func(m mrrg.Node) {
			if m.T > maxT {
				return
			}
			if s.Filter != nil && !s.Filter(m) {
				return
			}
			mk := mrrg.RealKey(m)
			if visited[mk] {
				return
			}
			step := 0.0
			if !net.nodes[mk] {
				step = s.enterCost(m)
			}
			nd := it.cost + step
			if old, ok := dist[mk]; !ok || nd < old {
				dist[mk] = nd
				parent[mk] = it.key
				nodeOf[mk] = m
				heap.Push(&frontier, pqItem{key: mk, node: m, cost: nd})
			}
		})
	}
	return nil, 0, fmt.Errorf("route: no path from net %d (src %v) to %v", net.ID, net.Src, targets[0])
}

// commit charges newly used path nodes to occupancy and records them in
// the net.
func (s *Session) commit(net *Net, path Path) {
	for _, n := range path {
		rk := mrrg.RealKey(n)
		if net.nodes[rk] {
			continue
		}
		net.nodes[rk] = true
		net.list = append(net.list, n)
		s.occ[s.G.Key(n)]++
	}
	net.Paths = append(net.Paths, path)
}

// Release rips up an entire net, returning its resources.
func (s *Session) Release(net *Net) {
	for _, n := range net.list {
		k := s.G.Key(n)
		s.occ[k]--
		if s.occ[k] <= 0 {
			delete(s.occ, k)
		}
	}
	net.nodes = map[uint64]bool{mrrg.RealKey(net.Src): true}
	net.list = nil
	net.Paths = nil
}

// ChargeShifted charges a translated copy of the net's resources to the
// session occupancy — used when a canonical route is replicated across
// iteration clusters so that congestion reflects all replicas.
func (s *Session) ChargeShifted(net *Net, dt, dr, dc int) {
	for _, n := range net.list {
		s.occ[s.G.Key(n.Shifted(dt, dr, dc))]++
	}
}

// OversubscribedIn returns the nodes of the given nets whose occupancy
// exceeds capacity.
func (s *Session) OversubscribedIn(nets []*Net) []mrrg.Node {
	var out []mrrg.Node
	seen := map[uint64]bool{}
	for _, net := range nets {
		for _, p := range net.Paths {
			for _, n := range p {
				k := s.G.Key(n)
				if seen[k] {
					continue
				}
				seen[k] = true
				if s.occ[k] > s.G.Capacity(n.Class) {
					out = append(out, n)
				}
			}
		}
	}
	return out
}

// BumpHistory raises the history cost of every oversubscribed node among
// the given nets and returns how many nodes were bumped. A return of zero
// means the routing is congestion-free (§V's success condition).
func (s *Session) BumpHistory(nets []*Net) int {
	over := s.OversubscribedIn(nets)
	for _, n := range over {
		s.hist[s.G.Key(n)] += s.HistBump
	}
	return len(over)
}
