package route

import (
	"reflect"
	"testing"

	"himap/internal/arch"
	"himap/internal/mrrg"
)

// lcg is a tiny deterministic generator so the property trials are
// reproducible without the stdlib rand dependency surface.
type lcg uint64

func (r *lcg) next(n int) int {
	*r = *r*6364136223846793005 + 1442695040888963407
	return int(uint64(*r>>33) % uint64(n))
}

// TestSearchEquivalenceRandomizedCongestion is the router-core property
// test: on mesh and torus fabrics, under randomized occupancy and
// history costs, the A*+bucket-queue search must return exactly the
// path, cost, and error the legacy global-heap Dijkstra returns — the
// bit-identity contract exercised far beyond the kernel corpus.
func TestSearchEquivalenceRandomizedCongestion(t *testing.T) {
	rng := lcg(0x9e3779b97f4a7c15)
	for _, topo := range []arch.Topology{arch.TopoMesh, arch.TopoTorus} {
		for _, sz := range [][2]int{{3, 3}, {4, 6}, {8, 8}} {
			f := arch.Fabric{CGRA: arch.Default(sz[0], sz[1]), Topology: topo}
			const ii = 8
			g := mrrg.New(f, ii)
			old := NewSession(g)
			old.Legacy = true
			new_ := NewSession(g)
			for trial := 0; trial < 50; trial++ {
				old.Reset()
				new_.Reset()
				// Random congestion: reserved output ports raise present-
				// sharing penalties; history bumps mimic prior rounds.
				for i := 0; i < 5*f.NumPEs(); i++ {
					n := mrrg.Node{
						T: rng.next(ii), R: rng.next(f.Rows), C: rng.next(f.Cols),
						Class: mrrg.ClassOut, Idx: uint8(rng.next(f.NumLinkDirs())),
					}
					old.Reserve(n)
					new_.Reserve(n)
				}
				for i := 0; i < 2*f.NumPEs(); i++ {
					n := mrrg.Node{
						T: rng.next(ii), R: rng.next(f.Rows), C: rng.next(f.Cols),
						Class: mrrg.ClassReg, Idx: uint8(rng.next(f.NumRegs)),
					}
					k := g.DenseKey(n)
					old.hist[k] += old.HistBump
					new_.hist[k] += new_.HistBump
				}
				src := fu(rng.next(ii), rng.next(f.Rows), rng.next(f.Cols))
				old.Reserve(src)
				new_.Reserve(src)
				oldNet := old.NewNet(src)
				newNet := new_.NewNet(src)
				// Two sinks per net, so the second search also exercises
				// zero-cost reuse of the first sink's owned nodes.
				for sink := 0; sink < 2; sink++ {
					dt := 1 + rng.next(6)
					targets := g.OperandTargets(src.T+dt, rng.next(f.Rows), rng.next(f.Cols))
					op, oc, oerr := old.RouteSink(oldNet, targets)
					np, nc, nerr := new_.RouteSink(newNet, targets)
					if (oerr == nil) != (nerr == nil) {
						t.Fatalf("%s %v trial %d sink %d: Dijkstra err %v, A* err %v",
							topo, sz, trial, sink, oerr, nerr)
					}
					if oerr != nil {
						continue
					}
					if oc != nc {
						t.Fatalf("%s %v trial %d sink %d: cost %v (Dijkstra) != %v (A*)",
							topo, sz, trial, sink, oc, nc)
					}
					if !reflect.DeepEqual(op, np) {
						t.Fatalf("%s %v trial %d sink %d:\nDijkstra %v\nA*       %v",
							topo, sz, trial, sink, op, np)
					}
				}
			}
		}
	}
}

// TestTorusHeuristicNeverOverestimates checks admissibility directly on
// wrap-around fabrics: for random uncongested instances, the A* lower
// bound at the source — and at every node of the optimal path, against
// that node's true cost-to-go (shortest-path suffixes are shortest
// paths) — must not exceed the exact Dijkstra cost.
func TestTorusHeuristicNeverOverestimates(t *testing.T) {
	rng := lcg(1)
	for _, sz := range [][2]int{{3, 3}, {4, 6}, {8, 8}} {
		f := arch.Fabric{CGRA: arch.Default(sz[0], sz[1]), Topology: arch.TopoTorus}
		const ii = 8
		g := mrrg.New(f, ii)
		s := NewSession(g)
		s.Legacy = true      // exact reference costs, no heuristic in the search
		ref := NewSession(g) // stays empty: enterCost = uncongested base cost
		for trial := 0; trial < 100; trial++ {
			s.Reset()
			src := fu(rng.next(ii), rng.next(f.Rows), rng.next(f.Cols))
			s.Reserve(src)
			net := s.NewNet(src)
			dt := 1 + rng.next(6)
			targets := g.OperandTargets(src.T+dt, rng.next(f.Rows), rng.next(f.Cols))
			path, cost, err := s.RouteSink(net, targets)
			if err != nil {
				continue
			}
			tBase, maxT := src.T, src.T
			for _, tg := range targets {
				if tg.T < tBase {
					tBase = tg.T
				}
				if tg.T > maxT {
					maxT = tg.T
				}
			}
			span := maxT - tBase + 1
			var sc Scratch
			sc.begin(span*f.NumPEs()*g.SlotsPerPE(), span*f.NumPEs())
			// Suffix costs along the optimal path are exact costs-to-go.
			for i := 0; i < len(path); i++ {
				togo := 0.0
				for j := i + 1; j < len(path); j++ {
					togo += ref.enterCost(path[j])
				}
				h := s.heuristicAt(&sc, path[i], targets, tBase, f.NumPEs(), f.Cols)
				if h < 0 {
					t.Fatalf("%v trial %d: heuristic pruned path node %v with cost-to-go %v",
						sz, trial, path[i], togo)
				}
				if h > togo+1e-9 {
					t.Fatalf("%v trial %d: heuristic at %v overestimates: h = %v > cost-to-go %v (total %v)",
						sz, trial, path[i], h, togo, cost)
				}
			}
		}
	}
}
