package route

import (
	"errors"
	"reflect"
	"testing"

	"himap/internal/arch"
	"himap/internal/mrrg"
)

// legacyBase restates the pre-seam hardcoded cost table independently,
// so a drifting baseCost (or a UnitModel that stops delegating to it)
// fails loudly instead of both moving together.
var legacyBase = map[mrrg.Class]float64{
	mrrg.ClassFU:       1.0,
	mrrg.ClassOut:      1.0,
	mrrg.ClassReg:      0.6,
	mrrg.ClassRFRead:   0.3,
	mrrg.ClassRFWrite:  0.3,
	mrrg.ClassMemRead:  1.0,
	mrrg.ClassMemWrite: 1.0,
}

func TestUnitModelMatchesLegacyCosts(t *testing.T) {
	m := UnitModel{RFRead: 2, RFWrite: 1}
	for ci := 0; ci < mrrg.NumClasses; ci++ {
		c := mrrg.Class(ci)
		if got, want := m.BaseCost(c), legacyBase[c]; got != want {
			t.Errorf("BaseCost(%s) = %v, legacy table says %v", c, got, want)
		}
	}
	if m.Capacity(mrrg.ClassRFRead) != 2 || m.Capacity(mrrg.ClassRFWrite) != 1 {
		t.Errorf("RF capacities not pinned: read %d write %d",
			m.Capacity(mrrg.ClassRFRead), m.Capacity(mrrg.ClassRFWrite))
	}
	for _, c := range []mrrg.Class{mrrg.ClassFU, mrrg.ClassOut, mrrg.ClassReg, mrrg.ClassMemRead, mrrg.ClassMemWrite} {
		if m.Capacity(c) != 1 {
			t.Errorf("Capacity(%s) = %d, want 1", c, m.Capacity(c))
		}
	}
}

// tweakModel wraps UnitModel with one overridden class for the
// rejection table.
type tweakModel struct {
	UnitModel
	class mrrg.Class
	base  float64
	capa  int
}

func (m tweakModel) BaseCost(c mrrg.Class) float64 {
	if c == m.class && m.base != 0 {
		return m.base
	}
	return m.UnitModel.BaseCost(c)
}

func (m tweakModel) Capacity(c mrrg.Class) int {
	if c == m.class && m.capa != 0 {
		return m.capa
	}
	return m.UnitModel.Capacity(c)
}

func (m tweakModel) Name() string { return "tweak" }

func TestSetCostModelRejects(t *testing.T) {
	f := arch.DefaultFabric(4, 4)
	s := NewSession(mrrg.New(f, 4))
	unit := UnitModel{RFRead: f.RFReadPorts, RFWrite: f.RFWritePorts}
	cases := []struct {
		name string
		m    CostModel
		ok   bool
	}{
		{"unit", unit, true},
		{"raised on-grid reg cost", tweakModel{UnitModel: unit, class: mrrg.ClassReg, base: 0.8}, true},
		{"off-grid cost", tweakModel{UnitModel: unit, class: mrrg.ClassReg, base: 0.35}, false},
		{"below admissibility floor", tweakModel{UnitModel: unit, class: mrrg.ClassOut, base: 0.2}, false},
		{"negative cost", tweakModel{UnitModel: unit, class: mrrg.ClassFU, base: -1.0}, false},
		{"zero capacity", tweakModel{UnitModel: unit, class: mrrg.ClassOut, capa: -1}, false},
		{"raised capacity", tweakModel{UnitModel: unit, class: mrrg.ClassOut, capa: 2}, true},
	}
	for _, tc := range cases {
		err := s.SetCostModel(tc.m)
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected rejection: %v", tc.name, err)
		}
		if !tc.ok {
			if err == nil {
				t.Errorf("%s: accepted", tc.name)
			} else if !errors.Is(err, ErrBadCostModel) {
				t.Errorf("%s: rejection not typed ErrBadCostModel: %v", tc.name, err)
			}
		}
	}
	// A rejected model must leave the installed tables untouched.
	if err := s.SetCostModel(unit); err != nil {
		t.Fatal(err)
	}
	before := s.baseTab
	if err := s.SetCostModel(tweakModel{UnitModel: unit, class: mrrg.ClassReg, base: 0.35}); err == nil {
		t.Fatal("off-grid model accepted")
	}
	if s.baseTab != before {
		t.Error("rejected model mutated the installed cost table")
	}
}

// TestUnitModelPricesLegacyFormula is the cost-seam property test: for
// randomized occupancy and history state, the materialized-table pricing
// must equal the pre-refactor formula restated here from first
// principles (legacy base table, present-sharing factor, history).
func TestUnitModelPricesLegacyFormula(t *testing.T) {
	f := arch.DefaultFabric(4, 4)
	const ii = 6
	g := mrrg.New(f, ii)
	s := NewSession(g)
	rng := lcg(7)
	classes := []mrrg.Class{
		mrrg.ClassFU, mrrg.ClassOut, mrrg.ClassReg,
		mrrg.ClassRFRead, mrrg.ClassRFWrite, mrrg.ClassMemRead, mrrg.ClassMemWrite,
	}
	for trial := 0; trial < 2000; trial++ {
		c := classes[rng.next(len(classes))]
		var idx int
		switch c {
		case mrrg.ClassOut:
			idx = rng.next(f.NumLinkDirs())
		case mrrg.ClassReg:
			idx = rng.next(f.NumRegs)
		}
		n := mrrg.Node{T: rng.next(ii), R: rng.next(f.Rows), C: rng.next(f.Cols), Class: c, Idx: uint8(idx)}
		key := g.DenseKey(n)
		s.occ[key] = int32(rng.next(4))
		s.hist[key] = float64(rng.next(10)) * s.HistBump

		want := legacyBase[c]
		over := int(s.occ[key]) + 1 - g.Capacity(n.Class)
		if over > 0 {
			want *= 1 + float64(over)*s.PresFac
		}
		want += s.hist[key]
		if got := s.enterCostAt(n, key); got != want {
			t.Fatalf("trial %d %v occ=%d hist=%v: enterCostAt = %v, legacy formula = %v",
				trial, n, s.occ[key], s.hist[key], got, want)
		}
	}
}

// TestSearchEquivalenceBandwidthModels extends the A*-vs-Dijkstra
// bit-identity property to the bandwidth-constrained fabrics: on the
// double-pumped and narrowed register files (RF capacities 2x and 1)
// and on the shared-bus fabric (where the dense-key collapse disables
// the A* linear-key fast path), both search cores must return
// identical paths, costs, and errors under randomized congestion.
func TestSearchEquivalenceBandwidthModels(t *testing.T) {
	rng := lcg(0xfeedface)
	for _, bw := range []arch.BandwidthClass{arch.BWDouble, arch.BWBus, arch.BWNarrowRF} {
		f := arch.Fabric{CGRA: arch.Default(4, 4), Bandwidth: bw}
		const ii = 8
		g := mrrg.New(f, ii)
		old := NewSession(g)
		old.Legacy = true
		new_ := NewSession(g)
		if got, want := new_.CostModel().Name(), "bandwidth"; got != want {
			t.Fatalf("%s: installed model %q, want %q", bw, got, want)
		}
		for trial := 0; trial < 60; trial++ {
			old.Reset()
			new_.Reset()
			for i := 0; i < 5*f.NumPEs(); i++ {
				n := mrrg.Node{
					T: rng.next(ii), R: rng.next(f.Rows), C: rng.next(f.Cols),
					Class: mrrg.ClassOut, Idx: uint8(rng.next(f.NumLinkDirs())),
				}
				old.Reserve(n)
				new_.Reserve(n)
			}
			for i := 0; i < 2*f.NumPEs(); i++ {
				n := mrrg.Node{
					T: rng.next(ii), R: rng.next(f.Rows), C: rng.next(f.Cols),
					Class: mrrg.ClassReg, Idx: uint8(rng.next(f.NumRegs)),
				}
				k := g.DenseKey(n)
				old.hist[k] += old.HistBump
				new_.hist[k] += new_.HistBump
			}
			src := fu(rng.next(ii), rng.next(f.Rows), rng.next(f.Cols))
			old.Reserve(src)
			new_.Reserve(src)
			oldNet := old.NewNet(src)
			newNet := new_.NewNet(src)
			for sink := 0; sink < 2; sink++ {
				dt := 1 + rng.next(6)
				targets := g.OperandTargets(src.T+dt, rng.next(f.Rows), rng.next(f.Cols))
				op, oc, oerr := old.RouteSink(oldNet, targets)
				np, nc, nerr := new_.RouteSink(newNet, targets)
				if (oerr == nil) != (nerr == nil) {
					t.Fatalf("%s trial %d sink %d: Dijkstra err %v, A* err %v", bw, trial, sink, oerr, nerr)
				}
				if oerr != nil {
					continue
				}
				if oc != nc {
					t.Fatalf("%s trial %d sink %d: cost %v (Dijkstra) != %v (A*)", bw, trial, sink, oc, nc)
				}
				if !reflect.DeepEqual(op, np) {
					t.Fatalf("%s trial %d sink %d:\nDijkstra %v\nA*       %v", bw, trial, sink, op, np)
				}
			}
		}
	}
}

// TestDoublePumpedRFPricing checks the bandwidth model's point: with a
// double-pumped register file (declared 2 write ports, effective 4) the
// fourth write-port occupant of a cycle is congestion-free, the fifth
// pays the present-sharing penalty. Link capacity stays 1 in every
// class — the configuration word encodes one value per link per cycle —
// so the second occupant of an output register is always congested.
func TestDoublePumpedRFPricing(t *testing.T) {
	f := arch.Fabric{CGRA: arch.Default(4, 4), Bandwidth: arch.BWDouble}
	g := mrrg.New(f, 4)
	s := NewSession(g)
	if got := g.Capacity(mrrg.ClassRFWrite); got != 2*f.RFWritePorts {
		t.Fatalf("double-pumped RF write capacity %d, want %d", got, 2*f.RFWritePorts)
	}
	n := mrrg.Node{T: 0, R: 1, C: 1, Class: mrrg.ClassRFWrite}
	key := g.DenseKey(n)
	if got := s.enterCostAt(n, key); got != 0.3 {
		t.Fatalf("empty RF write port enter cost %v, want 0.3", got)
	}
	s.occ[key] = 3
	if got := s.enterCostAt(n, key); got != 0.3 {
		t.Errorf("fourth occupant priced %v on a double-pumped 2-port RF, want congestion-free 0.3", got)
	}
	s.occ[key] = 4
	want := 0.3 * (1 + 1*s.PresFac)
	if got := s.enterCostAt(n, key); got != want {
		t.Errorf("fifth occupant priced %v, want %v", got, want)
	}

	out := mrrg.Node{T: 0, R: 1, C: 1, Class: mrrg.ClassOut, Idx: 0}
	okey := g.DenseKey(out)
	s.occ[okey] = 1
	if got, want := s.enterCostAt(out, okey), 1.0*(1+1*s.PresFac); got != want {
		t.Errorf("second link occupant priced %v, want congested %v (links are single-lane in every class)", got, want)
	}
}
