package route

import (
	"fmt"
	"himap/internal/diag"

	"himap/internal/arch"
	"himap/internal/ir"
	"himap/internal/mrrg"
)

// Emitter lowers placements and routed paths into a CGRA configuration,
// detecting resource conflicts as it stamps fields. Every stamped field
// carries a value tag (the absolute identity of the carried value);
// stamping the same field twice with the same tag and contents is
// idempotent — which is exactly what HiMap's REPLICATE step relies on —
// while differing tags or contents are conflicts.
type Emitter struct {
	Cfg   *arch.Config
	owner map[uint64]int32
	// Interned value tags: conflict checks compare small integers; the
	// strings are kept only for error messages.
	tagIDs map[string]int32
	tags   []string
	// pred remembers, per net tag, which node fed each emitted path node.
	// Fanout paths of a net may start anywhere in the already-routed tree;
	// the predecessor context (e.g. which register feeds an RF read) comes
	// from here.
	pred map[predID]mrrg.Node
}

type predID struct {
	tag int32
	key uint64
}

// NewEmitter wraps a configuration for conflict-checked emission.
func NewEmitter(cfg *arch.Config) *Emitter {
	return &Emitter{
		Cfg:    cfg,
		owner:  map[uint64]int32{},
		tagIDs: map[string]int32{},
		pred:   map[predID]mrrg.Node{},
	}
}

func (e *Emitter) tagID(tag string) int32 {
	id, ok := e.tagIDs[tag]
	if !ok {
		id = int32(len(e.tags))
		e.tagIDs[tag] = id
		e.tags = append(e.tags, tag)
	}
	return id
}

// Claim-key resource kinds (packed with position and wrapped time).
const (
	resFU = iota
	resMRD
	resMWR
	resSrc0
	resSrc1
	resOut0                // +direction (up to arch.MaxDirs)
	resReg0  = resOut0 + 8 // +register index (up to 16)
	resRegW  = resReg0 + 16
	resKinds = resRegW + 16
)

func (e *Emitter) resKey(kind, r, c, t int) uint64 {
	a := e.Cfg.Fabric
	return ((uint64(kind)*uint64(a.Rows)+uint64(r))*uint64(a.Cols)+uint64(c))*uint64(e.Cfg.II) + uint64(e.wrapT(t))
}

func (e *Emitter) claimRes(kind, r, c, t int, tag string) error {
	key := e.resKey(kind, r, c, t)
	id := e.tagID(tag)
	if old, ok := e.owner[key]; ok && old != id {
		return fmt.Errorf("route: resource kind %d @(%d,%d)t%d claimed by %q and %q: %w",
			kind, r, c, e.wrapT(t), e.tags[old], tag, diag.ErrReplicaConflict)
	}
	e.owner[key] = id
	return nil
}

// wrapT folds a real cycle into the configuration period, so replicas of
// a value at t and t+II correctly collide on the same physical slot.
func (e *Emitter) wrapT(t int) int { return ((t % e.Cfg.II) + e.Cfg.II) % e.Cfg.II }

func (e *Emitter) slot(n mrrg.Node) *arch.Instr { return e.Cfg.At(n.R, n.C, n.T) }

// PlaceOp stamps a compute operation on an FU slot.
func (e *Emitter) PlaceOp(n mrrg.Node, kind ir.OpKind, tag string) error {
	if n.Class != mrrg.ClassFU {
		return fmt.Errorf("route: PlaceOp on %v: %w", n, diag.ErrConfigInvalid)
	}
	if err := e.claimRes(resFU, n.R, n.C, n.T, tag); err != nil {
		return err
	}
	in := e.slot(n)
	in.Op = kind
	if in.Comment == "" {
		in.Comment = tag
	}
	return nil
}

// PlaceLoad stamps a data-memory read on a memory port slot.
func (e *Emitter) PlaceLoad(n mrrg.Node, tag, elem string) error {
	if n.Class != mrrg.ClassMemRead {
		return fmt.Errorf("route: PlaceLoad on %v: %w", n, diag.ErrConfigInvalid)
	}
	if err := e.claimRes(resMRD, n.R, n.C, n.T, tag); err != nil {
		return err
	}
	in := e.slot(n)
	in.MemRead = arch.MemOp{Active: true, Tag: elem}
	return nil
}

// operandFrom derives the crossbar source selector exposing the value
// carried at node cur, where prev is the node before cur on the path
// (needed for register reads) and consumer identifies the PE/cycle that
// consumes (to translate Out registers into input-latch directions).
func operandFrom(cur, prev mrrg.Node, atR, atC, atT int) (arch.Operand, error) {
	switch cur.Class {
	case mrrg.ClassFU:
		if cur.R != atR || cur.C != atC || cur.T != atT {
			return arch.Operand{}, fmt.Errorf("route: ALU tap across PEs (%v consumed at (%d,%d)t%d): %w", cur, atR, atC, atT, diag.ErrConfigInvalid)
		}
		return arch.FromALU(), nil
	case mrrg.ClassMemRead:
		if cur.R != atR || cur.C != atC || cur.T != atT {
			return arch.Operand{}, fmt.Errorf("route: mem tap across PEs (%v at (%d,%d)t%d): %w", cur, atR, atC, atT, diag.ErrConfigInvalid)
		}
		return arch.FromMem(), nil
	case mrrg.ClassRFRead:
		if prev.Class != mrrg.ClassReg {
			return arch.Operand{}, fmt.Errorf("route: RF read not preceded by register node (%v): %w", prev, diag.ErrConfigInvalid)
		}
		return arch.FromReg(int(prev.Idx)), nil
	case mrrg.ClassOut:
		d := arch.Dir(cur.Idx)
		if cur.R == atR && cur.C == atC {
			// Same PE, earlier cycle: output register holding (only valid
			// when driving the same output register).
			return arch.Hold(), nil
		}
		// The value sits in the neighbor's output register pointed at us;
		// it arrives on our input latch from the neighbor's direction.
		return arch.FromIn(d.Opposite()), nil
	}
	return arch.Operand{}, fmt.Errorf("route: no operand form for %v: %w", cur, diag.ErrConfigInvalid)
}

// EmitPath stamps all routing fields of one path. tag identifies the
// carried value; storeElem is used when the path terminates at a memory
// write port.
func (e *Emitter) EmitPath(p Path, tag, storeElem string) error {
	tid := e.tagID(tag)
	nodeAt := func(i int) mrrg.Node {
		if i >= 0 {
			return p[i]
		}
		// Before the path start: the net node that fed p[0] on an earlier
		// path of the same net.
		if pr, ok := e.pred[predID{tid, mrrg.RealKey(p[0])}]; ok {
			return pr
		}
		return mrrg.Node{Class: mrrg.ClassFU, R: -1, C: -1}
	}
	prevOf := func(i int) mrrg.Node { return nodeAt(i - 1) }
	for i := 1; i < len(p); i++ {
		e.pred[predID{tid, mrrg.RealKey(p[i])}] = p[i-1]
	}
	for i := 1; i < len(p); i++ {
		cur := p[i]
		prev := p[i-1]
		switch cur.Class {
		case mrrg.ClassOut:
			src, err := operandFrom(prev, prevOf(i-1), cur.R, cur.C, cur.T)
			if err != nil {
				return err
			}
			if src.Kind == arch.OpdHold && arch.Dir(cur.Idx) != arch.Dir(prev.Idx) {
				return fmt.Errorf("route: hold across output registers (%v <- %v): %w", cur, prev, diag.ErrConfigInvalid)
			}
			if err := e.claimRes(resOut0+int(cur.Idx), cur.R, cur.C, cur.T, tag); err != nil {
				return err
			}
			in := e.slot(cur)
			in.OutSel[cur.Idx] = src
		case mrrg.ClassReg:
			// Value occupancy of the register during cycle cur.T.
			if err := e.claimRes(resReg0+int(cur.Idx), cur.R, cur.C, cur.T, tag); err != nil {
				return err
			}
			if prev.Class == mrrg.ClassRFWrite {
				// A write at prev.T places the value; source is the node
				// before the write port.
				src, err := operandFrom(nodeAt(i-2), prevOf(i-2), prev.R, prev.C, prev.T)
				if err != nil {
					return err
				}
				if err := e.claimRes(resRegW+int(cur.Idx), prev.R, prev.C, prev.T, tag); err != nil {
					return err
				}
				in := e.slot(prev)
				dup := false
				for _, w := range in.RegWr {
					if w.Reg == int(cur.Idx) && w.Src == src {
						dup = true
					}
				}
				if !dup {
					in.RegWr = append(in.RegWr, arch.RegWrite{Reg: int(cur.Idx), Src: src})
				}
			}
		case mrrg.ClassRFWrite, mrrg.ClassRFRead:
			// Port passages; fields are emitted at the adjacent nodes.
		case mrrg.ClassMemWrite:
			src, err := operandFrom(prev, prevOf(i-1), cur.R, cur.C, cur.T)
			if err != nil {
				return err
			}
			if err := e.claimRes(resMWR, cur.R, cur.C, cur.T, tag); err != nil {
				return err
			}
			in := e.slot(cur)
			in.MemWrite = arch.MemOp{Active: true, Src: src, Tag: storeElem}
		default:
			return fmt.Errorf("route: unexpected path node %v: %w", cur, diag.ErrConfigInvalid)
		}
	}
	return nil
}

// SetOperand stamps a consumer's ALU source port with the value delivered
// by the final nodes of a path (last = p[len-1], the delivery node).
func (e *Emitter) SetOperand(fu mrrg.Node, port int, p Path, tag string) error {
	if fu.Class != mrrg.ClassFU {
		return fmt.Errorf("route: SetOperand on %v: %w", fu, diag.ErrConfigInvalid)
	}
	last := p[len(p)-1]
	var before mrrg.Node
	if len(p) >= 2 {
		before = p[len(p)-2]
	} else if pr, ok := e.pred[predID{e.tagID(tag), mrrg.RealKey(last)}]; ok {
		before = pr
	}
	src, err := operandFrom(last, before, fu.R, fu.C, fu.T)
	if err != nil {
		return err
	}
	if src.Kind == arch.OpdHold {
		return fmt.Errorf("route: operand cannot be a hold (%v): %w", last, diag.ErrConfigInvalid)
	}
	kind := resSrc0
	if port == 1 {
		kind = resSrc1
	}
	if err := e.claimRes(kind, fu.R, fu.C, fu.T, tag); err != nil {
		return err
	}
	in := e.slot(fu)
	if port == 0 {
		in.SrcA = src
	} else {
		in.SrcB = src
	}
	return nil
}

// SetConstOperand stamps an immediate on a consumer's port 1.
func (e *Emitter) SetConstOperand(fu mrrg.Node, v int64, tag string) error {
	if err := e.claimRes(resSrc1, fu.R, fu.C, fu.T, tag); err != nil {
		return err
	}
	e.slot(fu).SrcB = arch.FromConst(v)
	return nil
}
