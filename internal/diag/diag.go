// Package diag is the shared diagnostics layer of the compilation
// pipelines: a typed failure taxonomy (sentinel error classes plus the
// StageError wrapper that pins a failure to a pipeline stage and attempt)
// and the Tracer contract (per-stage spans with wall time, attempt/wave
// identifiers, and counters).
//
// Both mappers — the hierarchical HiMap pipeline (internal/himap) and the
// conventional baseline (internal/baseline) — report failures through the
// same classes and emit spans through the same interface, so a harness
// comparing the two (internal/exp, a future compilation service) can
// aggregate failure modes and stage costs uniformly. The package is a
// leaf: it imports only the standard library, so every layer (kernel
// front end, routers, mappers, CLIs) can depend on it without cycles.
package diag

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Sentinel failure classes. Every pipeline failure wraps exactly one of
// these (via StageError), so callers dispatch with errors.Is regardless
// of which stage or mapper produced it.
var (
	// ErrNoSubMapping: step 1 found no valid IDFG → sub-CGRA mapping
	// (the kernel's iteration graph does not fit any candidate shape).
	ErrNoSubMapping = errors.New("no valid IDFG to sub-CGRA mapping")
	// ErrSchemeInfeasible: a systolic space-time scheme violates a
	// dependence (non-causal or invalid offset) or the injectivity of
	// the allocation, or needs a larger VSA than the array provides.
	ErrSchemeInfeasible = errors.New("systolic scheme infeasible")
	// ErrRouteCongested: negotiated-congestion routing could not reach a
	// conflict-free solution within the round budget (or found no path).
	ErrRouteCongested = errors.New("routing congestion unresolved")
	// ErrBlockPinConflict: a pinned block dimension (Kernel.FixedBlock)
	// contradicts the kernel minimum or the scheme's VSA axis extent.
	ErrBlockPinConflict = errors.New("pinned block dimension conflict")
	// ErrBlockTooSmall: a derived block dimension falls below the
	// kernel's minimum well-formed extent.
	ErrBlockTooSmall = errors.New("block below kernel minimum")
	// ErrPlacementInfeasible: placement found no zero-violation solution
	// (baseline simulated annealing, or a sub-CGRA slot search).
	ErrPlacementInfeasible = errors.New("placement infeasible")
	// ErrReplicaConflict: stamping a canonical route onto a class member
	// collided with another replica (HiMap replication step).
	ErrReplicaConflict = errors.New("replication conflict")
	// ErrConfigInvalid: the emitted configuration failed final
	// validation.
	ErrConfigInvalid = errors.New("configuration invalid")
	// ErrMemPortInfeasible: the iteration graph demands more memory
	// ports (loads/stores) than the fabric's memory-capable PEs provide
	// within the candidate sub-CGRA shapes.
	ErrMemPortInfeasible = errors.New("memory-port demand infeasible on fabric")
	// ErrBandwidthInfeasible: the placed schedule provably demands more
	// simultaneous link departures than the fabric's bandwidth class
	// provides — no routing can satisfy it, so the congestion loop is
	// skipped and the demand excess is reported directly.
	ErrBandwidthInfeasible = errors.New("link-bandwidth demand infeasible on fabric")
	// ErrInvalidRequest: the compile request is structurally unusable
	// before any mapping work can start — a nil kernel, or a field
	// combination no backend accepts. Every backend reports this class
	// (never a panic) so callers can dispatch uniformly.
	ErrInvalidRequest = errors.New("invalid compile request")
	// ErrExactTimeout: the exact mapper's search budget (TimeBudget or
	// context deadline polled inside the branch-and-bound loop) expired
	// before the iterative deepening either found a mapping or refuted
	// every candidate II. The cause records the strongest II lower bound
	// proved before the budget ran out.
	ErrExactTimeout = errors.New("exact search budget exhausted")
	// ErrProvedInfeasible: the exact mapper exhausted the search space at
	// every II up to its bound without finding a feasible placement — a
	// certificate (relative to the scheduling horizon) that no mapping
	// exists, as opposed to a heuristic giving up.
	ErrProvedInfeasible = errors.New("mapping proved infeasible")
	// ErrCanceled: the compile's context.Context was canceled or its
	// deadline expired before a mapping was committed. The pipelines check
	// the context between stages (and the baseline between SA chain
	// iterations), so cancellation aborts promptly without leaving partial
	// state; the cause chain keeps the original context error, so
	// errors.Is(err, context.Canceled) and context.DeadlineExceeded work
	// through it as well.
	ErrCanceled = errors.New("compilation canceled")
)

// StageError pins one failure class to its pipeline context: the stage
// that raised it, the kernel and target array being compiled, and the
// 1-based attempt index within the mapper's search ((sub-mapping, scheme)
// rank for HiMap, II for the baseline; 0 when the failure precedes the
// attempt loop). It unwraps to both its Class sentinel and its underlying
// cause, so errors.Is sees the taxonomy and errors.As reaches any richer
// typed error below.
type StageError struct {
	Class   error  // one of the sentinel classes above
	Stage   string // pipeline stage name, e.g. "route"
	Kernel  string
	CGRA    string
	Attempt int   // 1-based attempt rank; 0 = outside the attempt loop
	Err     error // underlying cause (may be nil)
}

func (e *StageError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "stage %s", e.Stage)
	if e.Kernel != "" {
		fmt.Fprintf(&b, " (%s on %s", e.Kernel, e.CGRA)
		if e.Attempt > 0 {
			fmt.Fprintf(&b, ", attempt %d", e.Attempt)
		}
		b.WriteString(")")
	} else if e.Attempt > 0 {
		fmt.Fprintf(&b, " (attempt %d)", e.Attempt)
	}
	b.WriteString(": ")
	b.WriteString(e.Class.Error())
	if e.Err != nil {
		fmt.Fprintf(&b, ": %v", e.Err)
	}
	return b.String()
}

// Unwrap exposes both the class sentinel and the cause to errors.Is/As.
func (e *StageError) Unwrap() []error {
	if e.Err == nil {
		return []error{e.Class}
	}
	return []error{e.Class, e.Err}
}

// Stamp fills the pipeline context fields that are still zero; stages
// raise StageErrors with only Class/Err set and the pipeline runner
// stamps stage, kernel, CGRA, and attempt on the way out.
func (e *StageError) Stamp(stage, kernel, cgra string, attempt int) *StageError {
	if e.Stage == "" {
		e.Stage = stage
	}
	if e.Kernel == "" {
		e.Kernel = kernel
		e.CGRA = cgra
	}
	if e.Attempt == 0 {
		e.Attempt = attempt
	}
	return e
}

// Fail builds a StageError from a class and a cause. Stage and attempt
// context is stamped later by the pipeline runner.
func Fail(class, cause error) *StageError {
	return &StageError{Class: class, Err: cause}
}

// Failf is Fail with a formatted cause.
func Failf(class error, format string, args ...any) *StageError {
	return &StageError{Class: class, Err: fmt.Errorf(format, args...)}
}

// classes lists every sentinel, in taxonomy order, for Classify.
var classes = []error{
	ErrNoSubMapping, ErrSchemeInfeasible, ErrRouteCongested,
	ErrBlockPinConflict, ErrBlockTooSmall, ErrPlacementInfeasible,
	ErrReplicaConflict, ErrConfigInvalid, ErrMemPortInfeasible,
	ErrBandwidthInfeasible, ErrInvalidRequest, ErrExactTimeout,
	ErrProvedInfeasible, ErrCanceled,
}

// Classes returns every sentinel failure class in taxonomy order — the
// complete enumeration a consumer mapping the taxonomy (the serve wire
// error_code enum, failure-mode aggregation) must cover. The returned
// slice is a copy.
func Classes() []error { return append([]error(nil), classes...) }

// Classify coerces an arbitrary stage failure into a StageError: an error
// that already is one passes through; an error wrapping a sentinel (e.g.
// a kernel-validation failure carrying ErrBlockPinConflict) is classed by
// that sentinel; anything else gets the stage's fallback class. The
// original error stays in the cause chain either way.
func Classify(err error, fallback error) *StageError {
	var se *StageError
	if errors.As(err, &se) {
		return se
	}
	for _, c := range classes {
		if errors.Is(err, c) {
			return Fail(c, err)
		}
	}
	return Fail(fallback, err)
}

// ---------------------------------------------------------------- tracing

// Span is one completed pipeline stage execution. Attempt and Wave
// identify speculative attempts (0 for stages outside the attempt loop);
// Err carries the stage's failure rendering ("" on success); Counters
// holds stage-specific metrics (route rounds, canonical nets, memo hits).
type Span struct {
	Stage    string
	Attempt  int // 1-based attempt rank; 0 = front stage
	Wave     int // 1-based wave index under Workers>1; 0 = front stage
	Wall     time.Duration
	Err      string
	Counters map[string]int64
}

// Tracer receives one Span per executed pipeline stage. Implementations
// must be safe for concurrent Emit calls: speculative attempts run in
// parallel waves and emit from their worker goroutines.
type Tracer interface {
	Emit(Span)
}

// TracerFunc adapts a plain function to the Tracer interface — the
// metrics-sink hook: a serving layer passes a closure recording span wall
// times into its histogram registry. The function must be safe for
// concurrent calls (speculative attempts emit from worker goroutines).
type TracerFunc func(Span)

// Emit calls f(s).
func (f TracerFunc) Emit(s Span) { f(s) }

// MultiTracer fans every span out to each tracer in order — e.g. a CLI
// text tracer plus a metrics sink observing the same compile. Nil
// entries are skipped; with no non-nil entries it degenerates to Nop.
func MultiTracer(tracers ...Tracer) Tracer {
	var kept []Tracer
	for _, t := range tracers {
		if t != nil {
			kept = append(kept, t)
		}
	}
	switch len(kept) {
	case 0:
		return Nop()
	case 1:
		return kept[0]
	}
	return multiTracer(kept)
}

type multiTracer []Tracer

func (m multiTracer) Emit(s Span) {
	for _, t := range m {
		t.Emit(s)
	}
}

// SerialTracer wraps fn so spans are delivered one at a time, in a
// single total order: speculative attempts emit from parallel worker
// goroutines, and a consumer that streams spans out (the himapd SSE
// stage-event stream) needs each span rendered whole before the next
// begins. The order is the lock-acquisition order — deterministic for
// sequential pipelines, best-effort under Workers > 1.
func SerialTracer(fn func(Span)) Tracer {
	var mu sync.Mutex
	return TracerFunc(func(s Span) {
		mu.Lock()
		defer mu.Unlock()
		fn(s)
	})
}

// nopTracer discards every span.
type nopTracer struct{}

func (nopTracer) Emit(Span) {}

// Nop returns the no-op tracer (the default when Options.Tracer is nil).
func Nop() Tracer { return nopTracer{} }

// textTracer renders one line per span, for CLI -trace output.
type textTracer struct {
	mu sync.Mutex
	w  io.Writer
}

// NewTextTracer returns a tracer printing one human-readable line per
// span to w, serialized across goroutines.
func NewTextTracer(w io.Writer) Tracer { return &textTracer{w: w} }

func (t *textTracer) Emit(s Span) {
	t.mu.Lock()
	defer t.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, "trace: %-14s", s.Stage)
	if s.Attempt > 0 {
		fmt.Fprintf(&b, " attempt %-3d wave %-2d", s.Attempt, s.Wave)
	} else {
		b.WriteString("                   ")
	}
	fmt.Fprintf(&b, " %10s", s.Wall.Round(time.Microsecond))
	if len(s.Counters) > 0 {
		keys := make([]string, 0, len(s.Counters))
		for k := range s.Counters {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, " %s=%d", k, s.Counters[k])
		}
	}
	if s.Err != "" {
		fmt.Fprintf(&b, " err=%q", s.Err)
	}
	b.WriteByte('\n')
	io.WriteString(t.w, b.String())
}

// Collector accumulates spans in memory — the JSON tracer backing
// internal/exp's per-stage cost reports and any test asserting on trace
// structure.
type Collector struct {
	mu    sync.Mutex
	spans []Span
}

// NewCollector returns an empty span collector.
func NewCollector() *Collector { return &Collector{} }

// Emit appends the span (goroutine-safe).
func (c *Collector) Emit(s Span) {
	c.mu.Lock()
	c.spans = append(c.spans, s)
	c.mu.Unlock()
}

// Spans returns a copy of everything collected so far.
func (c *Collector) Spans() []Span {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Span(nil), c.spans...)
}

// Reset discards all collected spans.
func (c *Collector) Reset() {
	c.mu.Lock()
	c.spans = nil
	c.mu.Unlock()
}

// StageWall sums wall time per stage name over everything collected —
// the per-stage cost breakdown of a compile (speculative attempts
// included, so the sum can exceed the compile's wall-clock under
// Workers > 1).
func (c *Collector) StageWall() map[string]time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]time.Duration)
	for _, s := range c.spans {
		out[s.Stage] += s.Wall
	}
	return out
}
