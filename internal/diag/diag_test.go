package diag

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestStageErrorIsAndAs(t *testing.T) {
	cause := fmt.Errorf("7 resources oversubscribed")
	err := Fail(ErrRouteCongested, cause).Stamp("route", "GEMM", "8x8", 3)
	if !errors.Is(err, ErrRouteCongested) {
		t.Error("StageError must unwrap to its class sentinel")
	}
	if errors.Is(err, ErrSchemeInfeasible) {
		t.Error("StageError must not match a different class")
	}
	var se *StageError
	if !errors.As(err, &se) {
		t.Fatal("errors.As must recover the StageError")
	}
	if se.Stage != "route" || se.Kernel != "GEMM" || se.CGRA != "8x8" || se.Attempt != 3 {
		t.Errorf("context not stamped: %+v", se)
	}
	for _, want := range []string{"route", "GEMM", "8x8", "attempt 3", "oversubscribed"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err.Error(), want)
		}
	}
	// Wrapping keeps the chain intact.
	wrapped := fmt.Errorf("compile failed: %w", err)
	if !errors.Is(wrapped, ErrRouteCongested) {
		t.Error("wrapped StageError lost its class")
	}
}

func TestStampDoesNotOverwrite(t *testing.T) {
	err := Failf(ErrBlockTooSmall, "dim 2 = 1").Stamp("block-derive", "MVT", "4x4", 2)
	err.Stamp("other", "OTHER", "1x1", 9)
	if err.Stage != "block-derive" || err.Kernel != "MVT" || err.Attempt != 2 {
		t.Errorf("Stamp overwrote existing context: %+v", err)
	}
}

func TestTextTracerRendersSpans(t *testing.T) {
	var b strings.Builder
	tr := NewTextTracer(&safeWriter{b: &b})
	tr.Emit(Span{Stage: "idfg-map", Wall: 1500 * time.Microsecond, Counters: map[string]int64{"submaps": 4}})
	tr.Emit(Span{Stage: "route", Attempt: 2, Wave: 1, Wall: time.Millisecond, Err: "congested"})
	out := b.String()
	for _, want := range []string{"idfg-map", "submaps=4", "route", "attempt 2", `err="congested"`} {
		if !strings.Contains(out, want) {
			t.Errorf("trace output %q missing %q", out, want)
		}
	}
}

type safeWriter struct {
	mu sync.Mutex
	b  *strings.Builder
}

func (w *safeWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.Write(p)
}

func TestCollectorConcurrentAndStageWall(t *testing.T) {
	c := NewCollector()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c.Emit(Span{Stage: "place", Attempt: i + 1, Wall: time.Millisecond})
			c.Emit(Span{Stage: "route", Attempt: i + 1, Wall: 2 * time.Millisecond})
		}(i)
	}
	wg.Wait()
	if got := len(c.Spans()); got != 16 {
		t.Fatalf("collected %d spans, want 16", got)
	}
	wall := c.StageWall()
	if wall["place"] != 8*time.Millisecond || wall["route"] != 16*time.Millisecond {
		t.Errorf("StageWall = %v", wall)
	}
	c.Reset()
	if len(c.Spans()) != 0 {
		t.Error("Reset did not clear spans")
	}
}
