package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	body := []byte(`{"schema_version":2,"kernel":"MVT"}` + "\n")
	if err := s.Put("k1", body); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get("k1")
	if !ok || !bytes.Equal(got, body) {
		t.Fatalf("Get = %q ok=%v, want stored body", got, ok)
	}
	if _, ok := s.Get("absent"); ok {
		t.Error("absent key reported present")
	}
	st := s.Stats()
	if st.Entries != 1 || st.Hits != 1 || st.Misses != 1 || st.Puts != 1 || st.Corrupt != 0 {
		t.Errorf("stats = %+v, want 1 entry / 1 hit / 1 miss / 1 put", st)
	}
}

// TestRestartReplay pins the store's reason to exist: a new Store over
// the same directory replays byte-identical payloads.
func TestRestartReplay(t *testing.T) {
	dir := t.TempDir()
	body := []byte("canonical response bytes")
	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Put("key", body); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir) // "restart"
	if err != nil {
		t.Fatal(err)
	}
	got, ok := s2.Get("key")
	if !ok || !bytes.Equal(got, body) {
		t.Fatalf("replay after reopen = %q ok=%v, want original bytes", got, ok)
	}
}

// TestCorruptEviction: a flipped payload byte is detected, never
// served, and the entry file is deleted.
func TestCorruptEviction(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("key", []byte("payload bytes")); err != nil {
		t.Fatal(err)
	}
	if err := s.CorruptForTest("key"); err != nil {
		t.Fatal(err)
	}
	if err := s.Check("key"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Check = %v, want ErrCorrupt", err)
	}
	if _, ok := s.Get("key"); ok {
		t.Fatal("corrupt entry was served")
	}
	if _, err := os.Stat(s.EntryPath("key")); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("corrupt entry not evicted: stat err = %v", err)
	}
	if st := s.Stats(); st.Corrupt != 1 {
		t.Errorf("corrupt counter = %d, want 1", st.Corrupt)
	}
}

// TestHeaderTampering: every header field is covered by the check —
// magic, version, key, and truncation all read as corrupt.
func TestHeaderTampering(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("key", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	pristine, err := os.ReadFile(s.EntryPath("key"))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }},
		{"bad version", func(b []byte) []byte { b[4] = 99; return b }},
		{"truncated header", func(b []byte) []byte { return b[:10] }},
		{"truncated payload", func(b []byte) []byte { return b[:len(b)-3] }},
		{"key mismatch", func(b []byte) []byte { b[headerFixed] ^= 0xFF; return b }},
	}
	for _, tc := range cases {
		mutated := tc.mutate(append([]byte(nil), pristine...))
		if err := os.WriteFile(s.EntryPath("key"), mutated, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := s.Get("key"); ok {
			t.Errorf("%s: tampered entry served", tc.name)
		}
		// Get evicted it; restore for the next case.
		if err := os.WriteFile(s.EntryPath("key"), pristine, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if got, ok := s.Get("key"); !ok || !bytes.Equal(got, []byte("payload")) {
		t.Error("pristine entry no longer readable after tamper loop")
	}
}

// TestKeyCharsetSafety: keys with path separators, colons, and unicode
// all map to safe filenames under the store root.
func TestKeyCharsetSafety(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	keys := []string{"explore:abc", "../escape", "a/b/c", "sch\x00ema", "ключ"}
	for _, k := range keys {
		if err := s.Put(k, []byte(k+" body")); err != nil {
			t.Fatalf("Put(%q): %v", k, err)
		}
		rel, err := filepath.Rel(s.Dir(), s.EntryPath(k))
		if err != nil || rel == ".." || filepath.IsAbs(rel) || len(rel) < 3 || rel[:2] == ".." {
			t.Errorf("EntryPath(%q) escapes the store root: %q", k, s.EntryPath(k))
		}
	}
	for _, k := range keys {
		got, ok := s.Get(k)
		if !ok || !bytes.Equal(got, []byte(k+" body")) {
			t.Errorf("Get(%q) = %q ok=%v", k, got, ok)
		}
	}
}

func TestDelete(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("key", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("key"); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("key"); ok {
		t.Error("deleted key still present")
	}
	if err := s.Delete("key"); err != nil {
		t.Errorf("double delete: %v", err)
	}
}

// TestConcurrentPutGet races writers and readers over a small key
// space; every successful Get must return a complete, verified body.
func TestConcurrentPutGet(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("key-%d", i%5)
				body := []byte(fmt.Sprintf("body for %s", key))
				if w%2 == 0 {
					if err := s.Put(key, body); err != nil {
						t.Errorf("Put: %v", err)
						return
					}
				} else if got, ok := s.Get(key); ok && !bytes.Equal(got, body) {
					t.Errorf("Get(%s) returned wrong bytes %q", key, got)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if st := s.Stats(); st.Corrupt != 0 {
		t.Errorf("concurrent use produced %d corrupt reads", st.Corrupt)
	}
}
