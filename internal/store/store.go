// Package store is the disk-backed content-addressed result store
// beneath the himapd in-memory LRU: one file per cache key, written
// atomically (temp file + rename), integrity-checked on every read.
//
// Each entry file carries a fixed header — magic, format version, the
// key it was stored under, and the SHA-256 of the payload — followed by
// the payload bytes. Get recomputes the digest and compares the key, so
// a torn write, bit rot, or a key-collision bug is detected rather than
// served; corrupt entries are evicted (deleted) on detection, turning
// the read into a miss the compile path repairs. Because the stored
// payload is the canonical response body and the key is the request's
// content address, a restart replays byte-identical responses.
//
// The store never orders entries and never reads the clock: its visible
// behavior is a pure function of the Put/Get/Delete sequence, keeping
// it inside the repository's determinism contract.
package store

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// magic identifies an entry file; formatVersion gates incompatible
// layout changes (a mismatched version reads as corrupt → evicted).
var magic = [4]byte{'H', 'M', 'S', 'T'}

const formatVersion = 1

// headerFixed is the byte length of the fixed header prefix: magic,
// version (u32), key length (u32), payload length (u64), payload
// SHA-256. The key bytes follow, then the payload.
const headerFixed = 4 + 4 + 4 + 8 + sha256.Size

// ErrCorrupt reports an entry that failed its integrity check (bad
// magic, version, digest, or key mismatch). Get evicts such entries and
// reports a miss; the sentinel surfaces only through Check.
var ErrCorrupt = errors.New("store entry corrupt")

// Store is a content-addressed entry directory. Safe for concurrent
// use; two processes may share a directory (writes are atomic renames),
// though the byte accounting then tracks only this process's view.
type Store struct {
	dir string

	mu sync.Mutex // serializes same-key writers against readers of partial state

	hits    atomic.Int64
	misses  atomic.Int64
	corrupt atomic.Int64
	puts    atomic.Int64
}

// Open ensures dir exists and returns the store rooted there.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// EntryPath returns the file path an entry for key lives at, without
// touching the disk. Keys are arbitrary strings; the filename is the
// hex SHA-256 of the key (fan-out over the first byte), so any key
// charset is safe and path length is bounded.
func (s *Store) EntryPath(key string) string {
	sum := sha256.Sum256([]byte(key))
	name := hex.EncodeToString(sum[:])
	return filepath.Join(s.dir, name[:2], name[2:])
}

// encode renders the entry file bytes for (key, payload).
func encode(key string, payload []byte) []byte {
	out := make([]byte, 0, headerFixed+len(key)+len(payload))
	out = append(out, magic[:]...)
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], formatVersion)
	out = append(out, u32[:]...)
	binary.LittleEndian.PutUint32(u32[:], uint32(len(key)))
	out = append(out, u32[:]...)
	var u64 [8]byte
	binary.LittleEndian.PutUint64(u64[:], uint64(len(payload)))
	out = append(out, u64[:]...)
	sum := sha256.Sum256(payload)
	out = append(out, sum[:]...)
	out = append(out, key...)
	out = append(out, payload...)
	return out
}

// decode parses and verifies entry bytes against the key they were
// looked up under. Any mismatch is ErrCorrupt.
func decode(key string, data []byte) ([]byte, error) {
	if len(data) < headerFixed {
		return nil, fmt.Errorf("%w: truncated header (%d bytes)", ErrCorrupt, len(data))
	}
	if [4]byte(data[:4]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != formatVersion {
		return nil, fmt.Errorf("%w: format version %d (want %d)", ErrCorrupt, v, formatVersion)
	}
	keyLen := int(binary.LittleEndian.Uint32(data[8:12]))
	payLen := binary.LittleEndian.Uint64(data[12:20])
	var want [sha256.Size]byte
	copy(want[:], data[20:20+sha256.Size])
	rest := data[headerFixed:]
	if keyLen < 0 || keyLen > len(rest) {
		return nil, fmt.Errorf("%w: key length %d exceeds entry", ErrCorrupt, keyLen)
	}
	if string(rest[:keyLen]) != key {
		return nil, fmt.Errorf("%w: entry key mismatch", ErrCorrupt)
	}
	payload := rest[keyLen:]
	if uint64(len(payload)) != payLen {
		return nil, fmt.Errorf("%w: payload length %d, header says %d", ErrCorrupt, len(payload), payLen)
	}
	if sha256.Sum256(payload) != want {
		return nil, fmt.Errorf("%w: payload digest mismatch", ErrCorrupt)
	}
	return payload, nil
}

// Get returns the verified payload stored under key. A missing entry is
// a plain miss; an entry failing its integrity check is evicted
// (deleted) and reported as a miss, so corruption can only ever cost a
// recompile, never serve wrong bytes.
func (s *Store) Get(key string) ([]byte, bool) {
	data, err := os.ReadFile(s.EntryPath(key))
	if err != nil {
		s.misses.Add(1)
		return nil, false
	}
	payload, err := decode(key, data)
	if err != nil {
		s.corrupt.Add(1)
		s.misses.Add(1)
		// Evict: a corrupt entry must not be served or re-verified on
		// every read. Removal failure is tolerable (next Get retries).
		os.Remove(s.EntryPath(key))
		return nil, false
	}
	s.hits.Add(1)
	return payload, true
}

// Check verifies the entry under key without evicting: io errors pass
// through, integrity failures are ErrCorrupt. Diagnostic surface for
// tests and tooling.
func (s *Store) Check(key string) error {
	data, err := os.ReadFile(s.EntryPath(key))
	if err != nil {
		return err
	}
	_, err = decode(key, data)
	return err
}

// Put stores payload under key, atomically: the entry is staged in a
// temp file in the same directory and renamed over the final path, so
// readers (this process or another sharing the directory) only ever see
// a complete entry or none.
func (s *Store) Put(key string, payload []byte) error {
	path := s.EntryPath(key)
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ".put-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	data := encode(key, payload)
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	s.mu.Lock()
	err = os.Rename(tmp.Name(), path)
	s.mu.Unlock()
	if err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	s.puts.Add(1)
	return nil
}

// Delete removes the entry under key (missing entries are a no-op).
func (s *Store) Delete(key string) error {
	err := os.Remove(s.EntryPath(key))
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Stats is the store's counter snapshot plus a directory walk for
// occupancy (entries, bytes). The walk skips temp files.
type Stats struct {
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
	Corrupt int64 `json:"corrupt"`
	Puts    int64 `json:"puts"`
}

// Stats walks the directory for occupancy and snapshots the counters.
func (s *Store) Stats() Stats {
	st := Stats{
		Hits:    s.hits.Load(),
		Misses:  s.misses.Load(),
		Corrupt: s.corrupt.Load(),
		Puts:    s.puts.Load(),
	}
	filepath.WalkDir(s.dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil
		}
		if len(d.Name()) > 0 && d.Name()[0] == '.' {
			return nil // staged temp file
		}
		if info, err := d.Info(); err == nil {
			st.Entries++
			st.Bytes += info.Size()
		}
		return nil
	})
	return st
}

// CorruptForTest overwrites one byte of the stored payload region of
// key's entry file, bypassing the header so the digest check must catch
// it. Test hook for the corruption-eviction path.
func (s *Store) CorruptForTest(key string) error {
	path := s.EntryPath(key)
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return err
	}
	if info.Size() <= headerFixed {
		return fmt.Errorf("entry too small to corrupt payload")
	}
	// Flip the last payload byte.
	var b [1]byte
	if _, err := f.ReadAt(b[:], info.Size()-1); err != nil && err != io.EOF {
		return err
	}
	b[0] ^= 0xFF
	_, err = f.WriteAt(b[:], info.Size()-1)
	return err
}
