package himap

import (
	"errors"
	"fmt"
	"testing"

	"himap/internal/arch"
	"himap/internal/diag"
	"himap/internal/kernel"
	"himap/internal/mrrg"
	"himap/internal/route"
)

func TestMinDirCover(t *testing.T) {
	cases := []struct {
		name  string
		masks []uint16
		nd    int
		want  int
	}{
		{"no demands", nil, 4, 0},
		{"single sink", []uint16{0b0001}, 4, 1},
		{"shared direction", []uint16{0b0011, 0b0101}, 4, 1},
		{"disjoint singletons", []uint16{0b0001, 0b0010}, 4, 2},
		{"disjoint pairs", []uint16{0b0011, 0b1100}, 4, 2},
		{"pair cover beats greedy", []uint16{0b0110, 0b0101, 0b0011}, 4, 2},
		{"three forced", []uint16{0b0001, 0b0010, 0b0100}, 4, 3},
		{"broadcast mask", []uint16{0b1111, 0b1111}, 4, 1},
	}
	for _, tc := range cases {
		if got := minDirCover(tc.masks, tc.nd); got != tc.want {
			t.Errorf("%s: minDirCover(%04b...) = %d, want %d", tc.name, tc.masks[0:], got, tc.want)
		}
	}
}

// fuAt / cAt build the placed endpoints a crafted pre-check schedule
// needs: a producer FU slot and a consumer FU slot.
func fuAt(tt, r, c int) mrrg.Node { return mrrg.Node{T: tt, R: r, C: c, Class: mrrg.ClassFU} }

// TestCheckEdgeBandwidthBus exercises the shared-bus branch of the
// pre-check directly on crafted schedules: two nets that each force a
// link departure out of the same PE at the same wrapped cycle is a
// proof of infeasibility on a single-driver bus, and must surface as
// the typed diag.ErrBandwidthInfeasible before any routing runs.
func TestCheckEdgeBandwidthBus(t *testing.T) {
	f := arch.Fabric{CGRA: arch.Default(4, 4), Bandwidth: arch.BWBus}
	const ii = 4
	// Net 1 departs PE(1,1) eastward at cycle 0; net 2 departs the same
	// PE northward at cycle 4 == 0 (mod II). The wrap makes the clash.
	clash := []bwEdge{
		{net: 1, src: fuAt(0, 1, 1), dst: fuAt(1, 1, 2)},
		{net: 2, src: fuAt(4, 1, 1), dst: fuAt(5, 0, 1)},
	}
	err := checkEdgeBandwidth(f, ii, clash)
	if !errors.Is(err, diag.ErrBandwidthInfeasible) {
		t.Fatalf("two-net same-cycle clash: err = %v, want typed ErrBandwidthInfeasible", err)
	}

	// One net fanning out to two different-direction sinks in the same
	// cycle needs two distinct drives and is equally infeasible.
	fanout := []bwEdge{
		{net: 1, src: fuAt(0, 1, 1), dst: fuAt(1, 1, 2)},
		{net: 1, src: fuAt(0, 1, 1), dst: fuAt(1, 0, 1)},
	}
	if err := checkEdgeBandwidth(f, ii, fanout); !errors.Is(err, diag.ErrBandwidthInfeasible) {
		t.Fatalf("one-net two-direction fanout: err = %v, want typed ErrBandwidthInfeasible", err)
	}

	// Controls that must stay feasible: the same two nets separated by a
	// cycle; a slack edge (one spare cycle admits an RF detour, so no
	// departure is forced); and two sinks reachable through one shared
	// direction (a corner PE's single useful exit covers both).
	spread := []bwEdge{
		{net: 1, src: fuAt(0, 1, 1), dst: fuAt(1, 1, 2)},
		{net: 2, src: fuAt(1, 1, 1), dst: fuAt(2, 0, 1)},
	}
	if err := checkEdgeBandwidth(f, ii, spread); err != nil {
		t.Errorf("different cycles: unexpected %v", err)
	}
	slack := []bwEdge{
		{net: 1, src: fuAt(0, 1, 1), dst: fuAt(1, 1, 2)},
		{net: 2, src: fuAt(0, 1, 1), dst: fuAt(2, 0, 1)},
	}
	if err := checkEdgeBandwidth(f, ii, slack); err != nil {
		t.Errorf("slack second edge: unexpected %v", err)
	}
	shared := []bwEdge{
		{net: 1, src: fuAt(0, 0, 0), dst: fuAt(2, 1, 1)},
		{net: 1, src: fuAt(0, 0, 0), dst: fuAt(2, 0, 2)},
	}
	// Both (1,1) and (0,2) are 2 hops from (0,0); E and S both lead a
	// hop closer to (1,1), E leads closer to (0,2): direction E covers
	// both sinks with one drive.
	if err := checkEdgeBandwidth(f, ii, shared); err != nil {
		t.Errorf("sharable fanout: unexpected %v", err)
	}
}

// TestCheckEdgeBandwidthLanes exercises the per-direction branch: on a
// non-bus fabric each link still carries one value per cycle, so two
// distinct nets both forced onto the same singleton direction at the
// same wrapped cycle are infeasible, while re-counting the same net
// twice is not.
func TestCheckEdgeBandwidthLanes(t *testing.T) {
	f := arch.Fabric{CGRA: arch.Default(4, 4), Bandwidth: arch.BWNarrowRF}
	const ii = 4
	// PE(0,0) -> PE(0,1) is reachable a hop closer only via E (the S
	// neighbor is 2 hops away), so the mask is the singleton {E}.
	clash := []bwEdge{
		{net: 1, src: fuAt(0, 0, 0), dst: fuAt(1, 0, 1)},
		{net: 2, src: fuAt(4, 0, 0), dst: fuAt(5, 0, 1)},
	}
	err := checkEdgeBandwidth(f, ii, clash)
	if !errors.Is(err, diag.ErrBandwidthInfeasible) {
		t.Fatalf("two nets on one link: err = %v, want typed ErrBandwidthInfeasible", err)
	}

	same := []bwEdge{
		{net: 1, src: fuAt(0, 0, 0), dst: fuAt(1, 0, 1)},
		{net: 1, src: fuAt(4, 0, 0), dst: fuAt(5, 0, 1)},
	}
	if err := checkEdgeBandwidth(f, ii, same); err != nil {
		t.Errorf("same net counted twice: unexpected %v", err)
	}
	// A two-direction mask is a remaining choice, not a forced lane.
	choice := []bwEdge{
		{net: 1, src: fuAt(0, 1, 1), dst: fuAt(2, 2, 2)},
		{net: 2, src: fuAt(4, 1, 1), dst: fuAt(6, 2, 2)},
	}
	if err := checkEdgeBandwidth(f, ii, choice); err != nil {
		t.Errorf("choice remaining: unexpected %v", err)
	}
}

// rfUseMax re-counts, independently of Config.Validate, the worst-case
// register-file port usage of a mapping: distinct registers read and
// registers written by any one instruction.
func rfUseMax(cfg *arch.Config) (reads, writes int) {
	ndirs := arch.Dir(cfg.Fabric.NumLinkDirs())
	for r := 0; r < cfg.Fabric.Rows; r++ {
		for c := 0; c < cfg.Fabric.Cols; c++ {
			for t := 0; t < cfg.II; t++ {
				in := cfg.At(r, c, t)
				seen := map[int]bool{}
				note := func(o arch.Operand) {
					if o.Kind == arch.OpdReg {
						seen[o.Reg] = true
					}
				}
				note(in.SrcA)
				note(in.SrcB)
				for d := arch.Dir(0); d < ndirs; d++ {
					note(in.OutSel[d])
				}
				for _, w := range in.RegWr {
					note(w.Src)
				}
				if in.MemWrite.Active {
					note(in.MemWrite.Src)
				}
				if len(seen) > reads {
					reads = len(seen)
				}
				if len(in.RegWr) > writes {
					writes = len(in.RegWr)
				}
			}
		}
	}
	return reads, writes
}

// busDriveMax re-counts the worst-case number of distinct values a PE
// drives onto its outgoing links in one cycle: on a shared-bus fabric
// several directions may forward the same egress value, but two
// different values in one cycle would need two drivers.
func busDriveMax(cfg *arch.Config) int {
	ndirs := arch.Dir(cfg.Fabric.NumLinkDirs())
	max := 0
	for r := 0; r < cfg.Fabric.Rows; r++ {
		for c := 0; c < cfg.Fabric.Cols; c++ {
			for t := 0; t < cfg.II; t++ {
				in := cfg.At(r, c, t)
				vals := map[arch.Operand]bool{}
				for d := arch.Dir(0); d < ndirs; d++ {
					o := in.OutSel[d]
					if o.Kind != arch.OpdNone && o.Kind != arch.OpdHold {
						vals[o] = true
					}
				}
				if len(vals) > max {
					max = len(vals)
				}
			}
		}
	}
	return max
}

// TestBandwidthFabricsEndToEnd is the acceptance property of the
// bandwidth axis: every evaluation kernel on every non-unit bandwidth
// class either compiles to a mapping that validates AND respects the
// class's capacity when re-counted from the raw instruction stream, or
// fails with a typed infeasibility/congestion error — never an untyped
// error, never a capacity-violating "success".
func TestBandwidthFabricsEndToEnd(t *testing.T) {
	typed := []error{diag.ErrBandwidthInfeasible, diag.ErrRouteCongested, diag.ErrMemPortInfeasible}
	for _, bw := range []arch.BandwidthClass{arch.BWDouble, arch.BWBus, arch.BWNarrowRF} {
		for _, k := range kernel.Evaluation() {
			k, bw := k, bw
			t.Run(fmt.Sprintf("%s/%s", bw, k.Name), func(t *testing.T) {
				fab := arch.Fabric{CGRA: arch.Default(8, 8), Bandwidth: bw}
				res, err := CompileFabric(k, fab, Options{})
				if err != nil {
					for _, want := range typed {
						if errors.Is(err, want) {
							return
						}
					}
					t.Fatalf("untyped failure: %v", err)
				}
				if verr := res.Config.Validate(); verr != nil {
					t.Fatalf("mapping does not validate: %v", verr)
				}
				reads, writes := rfUseMax(res.Config)
				if reads > fab.RFReadCap() || writes > fab.RFWriteCap() {
					t.Errorf("RF usage %d reads / %d writes exceeds caps %d/%d",
						reads, writes, fab.RFReadCap(), fab.RFWriteCap())
				}
				if bw == arch.BWBus {
					if n := busDriveMax(res.Config); n > 1 {
						t.Errorf("a PE drives %d distinct egress values in one cycle on a shared bus", n)
					}
				}
			})
		}
	}
}

// TestCostModelDifferentialFingerprint pins the unit cost model to the
// pre-seam router behavior end to end: explicitly installing the unit
// model (the restated legacy cost table) must reproduce, kernel by
// kernel, the exact artifact the default fabric-derived pricing emits.
func TestCostModelDifferentialFingerprint(t *testing.T) {
	fab := arch.DefaultFabric(8, 8)
	for _, k := range kernel.Evaluation() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			base, baseErr := CompileFabric(k, fab, Options{})
			unit, unitErr := CompileFabric(k, fab, Options{
				costModel: route.UnitModel{RFRead: fab.RFReadPorts, RFWrite: fab.RFWritePorts},
			})
			if (baseErr == nil) != (unitErr == nil) {
				t.Fatalf("divergent outcome: default err = %v, unit err = %v", baseErr, unitErr)
			}
			if baseErr != nil {
				if baseErr.Error() != unitErr.Error() {
					t.Fatalf("divergent errors:\ndefault: %v\nunit:    %v", baseErr, unitErr)
				}
				return
			}
			if got, want := routerFingerprint(unit.Config), routerFingerprint(base.Config); got != want {
				t.Errorf("unit cost model diverged from default pricing: %s != %s", got, want)
			}
		})
	}
}
