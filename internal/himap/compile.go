package himap

import (
	"context"
	"fmt"
	"time"

	"himap/internal/arch"
	"himap/internal/baseline"
	"himap/internal/diag"
	"himap/internal/exact"
	"himap/internal/ir"
	"himap/internal/kernel"
	"himap/internal/par"
	"himap/internal/route"
	"himap/internal/systolic"
)

// Options tunes the compilation flow.
type Options struct {
	// InnerBlock is the extent of loop dimensions sequenced purely in
	// time (b3..bl of §V, "a user input to the HiMap algorithm").
	// Default 4.
	InnerBlock int
	// DepthSlack is how many extra sub-CGRA time depths MAP explores
	// beyond the resource minimum (fallbacks with more routing slack).
	// Default 2.
	DepthSlack int
	// MaxSubMaps bounds how many sub-CGRA mappings step 2/3 iterate over.
	// Default 8.
	MaxSubMaps int
	// MaxSchemes bounds how many systolic schemes are tried per sub-CGRA
	// mapping. Default 6.
	MaxSchemes int
	// MaxRouteRounds bounds the negotiated-congestion rounds of step 3.
	// Default 8.
	MaxRouteRounds int
	// ForceScheme pins the space-time mapping (H,S is an input in
	// Algorithm 1; by default it is found by the heuristic search).
	ForceScheme *systolic.Scheme
	// RelayPolicy selects how route pseudo-ops are anchored to resources
	// (see internal/himap/routegen.go). The default RelayAuto uses
	// crossbar output registers for cross-PE relays and the memory read
	// port for load-fed relays; RelayRegistersOnly forces every relay
	// through the register file — the ablation showing why the crossbar
	// relays matter for reaching 100% utilization.
	RelayPolicy RelayPolicy
	// Workers bounds the compilation pipeline's parallelism: the systolic
	// (H,S) scheme search is sharded across Workers goroutines, and
	// (sub-mapping, scheme) attempts run speculatively in waves of
	// Workers, always committing to the first attempt (in the sequential
	// ranking order) that succeeds. The emitted mapping is therefore
	// bit-identical for every Workers value; only wall-clock changes.
	// 0 means runtime.GOMAXPROCS(0); 1 executes exactly the historical
	// sequential flow.
	Workers int
	// IncrementalRoute keeps classes whose routed resources ended a
	// negotiated-congestion round within capacity, re-applying their
	// plans verbatim instead of re-routing them (incremental PathFinder
	// rip-up). Only congested classes re-route against the bumped
	// history. Off by default: clean nets re-routed from scratch can
	// legally choose different paths once history changes, so
	// incremental results are not bit-identical to the historical flow
	// on kernels needing more than one round (single-round kernels are
	// unaffected). Every emitted mapping still passes full validation.
	IncrementalRoute bool
	// routeLegacy selects the pre-A* global-heap Dijkstra router core —
	// kept for differential testing of the A*+bucket-queue rewrite.
	routeLegacy bool
	// costModel overrides the router's congestion-pricing model (the
	// fabric-derived route.For selection otherwise) — kept for
	// differential testing of the CostModel seam.
	costModel route.CostModel
	// Tracer receives one span per executed pipeline stage (see
	// internal/diag). nil means no tracing.
	Tracer diag.Tracer
	// Memo is the artifact cache reusing IDFG/sub-mapping/ISDG builds
	// across attempts and compiles. nil means the shared process-wide
	// cache; inject a fresh NewMemo() to isolate (benchmarks, tests).
	Memo *Memo
}

// RelayPolicy selects the relay-pin strategy (ablation knob).
type RelayPolicy uint8

const (
	// RelayAuto: crossbar output-register pins for cross-PE relays,
	// memory-port pins for load-fed relays, registers otherwise.
	RelayAuto RelayPolicy = iota
	// RelayRegistersOnly: every relay pinned to an RF register.
	RelayRegistersOnly
)

func (o Options) withDefaults() Options {
	if o.InnerBlock == 0 {
		o.InnerBlock = 4
	}
	if o.DepthSlack == 0 {
		o.DepthSlack = 2
	}
	if o.MaxSubMaps == 0 {
		o.MaxSubMaps = 8
	}
	if o.MaxSchemes == 0 {
		o.MaxSchemes = 6
	}
	if o.MaxRouteRounds == 0 {
		o.MaxRouteRounds = 8
	}
	if o.Tracer == nil {
		o.Tracer = diag.Nop()
	}
	if o.Memo == nil {
		o.Memo = sharedMemo
	}
	o.Workers = par.Workers(o.Workers)
	return o
}

// Result is a complete HiMap mapping.
type Result struct {
	Kernel *kernel.Kernel
	Fabric arch.Fabric
	// CGRA is the fabric's PE-array parameters, kept for callers that
	// predate the fabric model.
	CGRA arch.CGRA

	Sub     *SubMapping
	Scheme  systolic.Scheme
	Mapping *systolic.Mapping
	Block   []int
	IIB     int

	DFG  *ir.DFG
	ISDG *ir.ISDG
	CP   *ClusterPlace

	UniqueIters int
	// Classes are the unique iteration classes; ByCluster maps each ISDG
	// cluster to its class index (Figure 2's numbered unique iterations).
	Classes   []*UniqueClass
	ByCluster []int
	Config    *arch.Config

	// Utilization U = |V_D| / |V_H^F| (compute nodes over FU slots).
	Utilization float64

	Stats Stats

	// Backend names the registered backend that produced this result
	// ("himap", "conventional", "exact"). The unified request dispatcher
	// stamps it; results built through the legacy per-mapper entry points
	// may leave it empty.
	Backend string

	// Optimality carries the II bound certificate when the producing
	// backend can prove one (the exact backend always sets it; the
	// heuristic backends leave it nil).
	Optimality *exact.Optimality

	// Conventional is set when the compile was dispatched to the
	// conventional (baseline) mapper through the unified request API; the
	// hierarchical-flow fields (Sub, Scheme, Mapping, DFG, ISDG, CP,
	// Classes, ...) are nil/zero in that case, while the shared fields
	// (Kernel, Fabric, CGRA, Block, Config, Utilization) are filled from
	// the baseline result.
	Conventional *baseline.Result

	// Exact is set when the compile was dispatched to the exact
	// branch-and-bound mapper, mirroring Conventional: shared fields are
	// filled from the exact result, hierarchical-only fields stay
	// nil/zero.
	Exact *exact.Result
}

// Stats records compilation effort.
type Stats struct {
	MapTime       time.Duration // step 1 (IDFG → sub-CGRA) + scheme search
	PlaceTime     time.Duration // step 2 (ISDG → VSA)
	RouteTime     time.Duration // step 3 canonical routing
	ReplicateTime time.Duration // step 3 replication + validation
	Total         time.Duration
	Attempts      int // (sub-mapping, scheme) pairs tried
	CanonicalNets int
	RouteRounds   int
	// KeptClasses counts class plans carried across negotiated-congestion
	// rounds by incremental re-route (0 unless Options.IncrementalRoute).
	KeptClasses int
}

// Compile maps the kernel onto the CGRA with the HiMap algorithm and
// returns the first valid mapping, iterating sub-CGRA mappings in
// decreasing utilization (Algorithm 1's outer loop) and systolic schemes
// in increasing cost until routing and replication succeed.
//
// The flow is a staged pass pipeline (see pipeline.go): the front stages
// run once, then (sub-mapping, scheme) attempts execute the per-attempt
// stages speculatively in waves of Workers, always committing to the
// first success in sequential ranking order. On failure Compile returns a
// *CompileError aggregating the lowest-ranked attempt's failure and the
// best-ranked failure per stage — deterministic for every Workers value.
func Compile(k *kernel.Kernel, cg arch.CGRA, opts Options) (*Result, error) {
	return CompileRequest(context.Background(), k, arch.Fabric{CGRA: cg}, opts)
}

// CompileFabric is Compile for an explicit fabric model (interconnect
// topology + per-PE capability layout). Compile is the mesh/all-memory
// special case.
func CompileFabric(k *kernel.Kernel, fab arch.Fabric, opts Options) (*Result, error) {
	return CompileRequest(context.Background(), k, fab, opts)
}

// CompileRequest is the context-aware compilation entry point: Compile
// and CompileFabric are the context.Background() special cases. The
// context is checked at every pipeline stage boundary and between
// speculative waves, so cancellation (or a deadline) aborts a compile
// mid-pipeline with a *CompileError wrapping diag.ErrCanceled — the
// original context error stays in the cause chain for errors.Is.
func CompileRequest(ctx context.Context, k *kernel.Kernel, fab arch.Fabric, opts Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	opts = opts.withDefaults()
	if err := fab.Validate(); err != nil {
		return nil, err
	}
	if err := k.Validate(); err != nil {
		return nil, err
	}
	start := time.Now() //lint:ignore determinism wall-clock span timing only; does not influence mapping

	front := newContext(ctx, k, fab, opts)
	if err := frontStages.Run(front); err != nil {
		return nil, newCompileError(k.Name, fab.String(), 0, []error{err})
	}
	atts := front.Attempts

	// Attempts run speculatively in waves of Workers; within a wave the
	// lowest-index success wins. Because every attempt ranked before the
	// winner fails regardless of execution order, the committed mapping
	// and Stats.Attempts are identical to the sequential (Workers=1) flow.
	errs := make([]error, len(atts))
	for base := 0; base < len(atts); base += opts.Workers {
		if err := ctx.Err(); err != nil {
			return nil, canceledCompileError(k.Name, fab.String(), len(atts), err)
		}
		end := base + opts.Workers
		if end > len(atts) {
			end = len(atts)
		}
		wave := atts[base:end]
		waveIdx := base/opts.Workers + 1
		results := make([]*Result, len(wave))
		par.ForEach(opts.Workers, len(wave), func(i int) {
			actx := front.forAttempt(wave[i], base+i+1, waveIdx)
			if err := attemptStages.Run(actx); err != nil {
				errs[base+i] = err
				return
			}
			results[i] = actx.buildResult()
		})
		for i := range wave {
			if results[i] == nil {
				continue
			}
			res := results[i]
			res.Stats.MapTime = front.wall[StageIDFGMap] + front.wall[StageSchemeSearch]
			res.Stats.Attempts = base + i + 1
			res.Stats.Total = time.Since(start)
			return res, nil
		}
	}
	// A cancellation mid-search masquerades as "every attempt failed";
	// surface it as such so callers dispatch on ErrCanceled, not on
	// whichever attempt happened to fail first.
	if err := ctx.Err(); err != nil {
		return nil, canceledCompileError(k.Name, fab.String(), len(atts), err)
	}
	return nil, newCompileError(k.Name, fab.String(), len(atts), errs)
}

// candidateSchemes enumerates systolic schemes compatible with the VSA
// shape, ranked by the systolic search.
func candidateSchemes(k *kernel.Kernel, deps []ir.IterVec, vx, vy int, opts Options) []systolic.Scheme {
	if opts.ForceScheme != nil {
		return []systolic.Scheme{*opts.ForceScheme}
	}
	want := 2
	if vy == 1 || k.Dim == 1 {
		want = 1
	}
	probe := k.UniformBlock(3)
	cands := systolic.SearchN(deps, probe, want, opts.Workers)
	var out []systolic.Scheme
	for _, c := range cands {
		if len(out) >= opts.MaxSchemes {
			break
		}
		out = append(out, c.Scheme)
	}
	return out
}

// blockForScheme derives the block sizes: space dimensions take the VSA
// extents (line 6: b1 = c/s1, b2 = c/s2); remaining dimensions take the
// user's inner block, and pinned dimensions keep their pins (a pin below
// MinBlock is rejected by Kernel.Validate before compilation starts).
func blockForScheme(k *kernel.Kernel, sch systolic.Scheme, vx, vy int, opts Options) ([]int, error) {
	block := make([]int, k.Dim)
	for d := 0; d < k.Dim; d++ {
		block[d] = opts.InnerBlock
		if d < len(k.FixedBlock) && k.FixedBlock[d] > 0 {
			block[d] = k.FixedBlock[d]
		}
	}
	ext := []int{vx, vy}
	for i, d := range sch.SpaceDims {
		if d < len(k.FixedBlock) && k.FixedBlock[d] > 0 && k.FixedBlock[d] != ext[i] {
			return nil, diag.Failf(diag.ErrBlockPinConflict,
				"scheme maps pinned dim %d to a VSA axis of extent %d", d, ext[i])
		}
		block[d] = ext[i]
	}
	min := k.MinBlock
	if min == 0 {
		min = 1
	}
	for d, b := range block {
		if b >= min {
			continue
		}
		if d < len(k.FixedBlock) && k.FixedBlock[d] > 0 {
			return nil, diag.Failf(diag.ErrBlockPinConflict,
				"pinned block dim %d = %d below minimum %d", d, b, min)
		}
		return nil, diag.Failf(diag.ErrBlockTooSmall,
			"block dim %d = %d below minimum %d", d, b, min)
	}
	return block, nil
}

// Summary renders a one-line result description.
func (r *Result) Summary() string {
	if r.Conventional != nil {
		return r.Conventional.Summary()
	}
	if r.Exact != nil {
		return r.Exact.Summary()
	}
	return fmt.Sprintf("%s on %s: block %v, sub-CGRA (%d,%d,%d), II_B %d, %d unique iters, U = %.1f%%",
		r.Kernel.Name, r.Fabric, r.Block, r.Sub.S1, r.Sub.S2, r.Sub.Depth, r.IIB,
		r.UniqueIters, r.Utilization*100)
}
