package himap

import (
	"errors"
	"fmt"
	"strings"

	"himap/internal/diag"
)

// CompileError is the structured failure of a whole compilation: every
// attempt of the speculative search failed, and the error aggregates the
// deterministic lowest-ranked attempt's failure (Primary) plus the
// best-ranked failure observed per pipeline stage. It reports the true
// attempt count, and — unlike a bare "last error wins" — its content is
// identical for every Workers value, because attempts are ranked by their
// sequential order, not by completion order.
//
// CompileError unwraps to Primary and to every per-stage failure, so
// errors.Is matches any failure class the search encountered and
// errors.As can recover the individual *diag.StageError records.
type CompileError struct {
	Kernel   string
	CGRA     string
	Attempts int                // total (sub-mapping, scheme) pairs tried
	Primary  *diag.StageError   // the lowest-ranked attempt's failure
	Stages   []*diag.StageError // best-ranked failure per stage, pipeline order
}

func (e *CompileError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "himap: compilation of %s on %s failed after %d attempt", e.Kernel, e.CGRA, e.Attempts)
	if e.Attempts != 1 {
		b.WriteByte('s')
	}
	if e.Primary != nil {
		fmt.Fprintf(&b, ": %v", e.Primary)
	}
	if len(e.Stages) > 1 {
		b.WriteString(" [also failed:")
		for _, se := range e.Stages {
			if se == e.Primary {
				continue
			}
			fmt.Fprintf(&b, " %s (attempt %d): %v;", se.Stage, se.Attempt, se.Class)
		}
		b.WriteByte(']')
	}
	return b.String()
}

// Unwrap exposes the primary failure and every per-stage best failure to
// errors.Is / errors.As.
func (e *CompileError) Unwrap() []error {
	var out []error
	if e.Primary != nil {
		out = append(out, e.Primary)
	}
	for _, se := range e.Stages {
		if se != e.Primary {
			out = append(out, se)
		}
	}
	return out
}

// canceledCompileError wraps a context cancellation (or deadline expiry)
// observed by the compile driver into a CompileError whose Primary is a
// diag.ErrCanceled StageError carrying the original context error, so
// errors.Is matches diag.ErrCanceled, context.Canceled, and
// context.DeadlineExceeded through the public API.
func canceledCompileError(kernel, cgra string, attempts int, cause error) *CompileError {
	se := diag.Fail(diag.ErrCanceled, cause).Stamp("", kernel, cgra, 0)
	return &CompileError{Kernel: kernel, CGRA: cgra, Attempts: attempts, Primary: se}
}

// newCompileError aggregates per-attempt failures into a CompileError.
// errs is indexed by attempt rank (0-based); scanning in index order makes
// Primary the deterministic lowest-ranked failure regardless of the wave
// execution order that produced the slice.
func newCompileError(kernel, cgra string, attempts int, errs []error) *CompileError {
	e := &CompileError{Kernel: kernel, CGRA: cgra, Attempts: attempts}
	byStage := map[string]*diag.StageError{}
	for _, err := range errs {
		if err == nil {
			continue
		}
		var se *diag.StageError
		if !errors.As(err, &se) {
			se = diag.Fail(diag.ErrSchemeInfeasible, err).Stamp("", kernel, cgra, 0)
		}
		if e.Primary == nil {
			e.Primary = se
		}
		if _, seen := byStage[se.Stage]; !seen {
			byStage[se.Stage] = se
		}
	}
	for _, name := range stageOrder {
		if se, ok := byStage[name]; ok {
			e.Stages = append(e.Stages, se)
		}
	}
	return e
}
