package himap

import (
	"fmt"
	"strings"
	"sync"

	"himap/internal/arch"
	"himap/internal/ir"
	"himap/internal/kernel"
	"himap/internal/systolic"
)

// Memo is the compilation artifact cache. It content-keys and reuses the
// expensive pure derivations of the pipeline:
//
//   - the generic IDFG of a kernel (idfg-map stage),
//   - the sub-CGRA mapping list per (kernel, CGRA, depth slack),
//   - the ranked systolic scheme candidates per (kernel, VSA extents,
//     candidate limit), and
//   - the unrolled DFG/ISDG per (kernel, block vector), shared both
//     across the speculative attempts of one compile (attempts trying
//     different schemes over the same block) and across repeated
//     compiles (the experiments harness, sweeps, future server
//     batching).
//
// All cached artifacts are read-only by pipeline contract: every stage
// that transforms one (e.g. forwarding) builds a new object instead of
// mutating, so sharing across concurrent attempts and compiles is safe.
// Keys hash the kernel specification content (not pointer identity), so
// two structurally identical Kernel values share entries and a modified
// copy does not.
//
// Entries are computed under a per-key once, so concurrent attempts (or
// concurrent Compile calls) requesting the same artifact build it
// exactly once and share the result.
type Memo struct {
	idfg    sync.Map // kernel key -> *memoEntry[*ir.IDFG]
	subs    sync.Map // kernel key + cgra + slack -> *memoEntry[[]*SubMapping]
	schemes sync.Map // kernel key + vsa extents + limit -> *memoEntry[[]systolic.Scheme]
	isdg    sync.Map // kernel key + block -> *memoEntry[isdgArtifact]

	hits, misses int64
	statMu       sync.Mutex
}

type isdgArtifact struct {
	dfg  *ir.DFG
	isdg *ir.ISDG
}

type memoEntry struct {
	once sync.Once
	val  any
	err  error
}

// sharedMemo backs every Compile whose Options do not inject their own.
var sharedMemo = NewMemo()

// NewMemo returns an empty artifact cache. Most callers should leave
// Options.Memo nil and share the process-wide cache; benchmarks and
// tests inject fresh ones to measure or isolate the cold path.
func NewMemo() *Memo { return &Memo{} }

// Stats reports cumulative hit/miss counts (an entry computed under the
// once counts one miss; every other arrival counts a hit).
func (m *Memo) Stats() (hits, misses int64) {
	m.statMu.Lock()
	defer m.statMu.Unlock()
	return m.hits, m.misses
}

func (m *Memo) load(table *sync.Map, key string, compute func() (any, error)) (any, error) {
	e, loaded := table.LoadOrStore(key, &memoEntry{})
	ent := e.(*memoEntry)
	computed := false
	ent.once.Do(func() {
		ent.val, ent.err = compute()
		computed = true
	})
	m.statMu.Lock()
	if computed || !loaded {
		m.misses++
	} else {
		m.hits++
	}
	m.statMu.Unlock()
	return ent.val, ent.err
}

// IDFG returns (building at most once) the kernel's generic IDFG.
func (m *Memo) IDFG(k *kernel.Kernel) (*ir.IDFG, error) {
	v, err := m.load(&m.idfg, kernelKey(k), func() (any, error) {
		return k.GenericIDFG()
	})
	if err != nil {
		return nil, err
	}
	return v.(*ir.IDFG), nil
}

// SubMappings returns the full MapIDFG result for the kernel on the
// fabric with the given depth slack. Callers must not mutate the
// returned slice or its entries; Compile copies the prefix it truncates.
func (m *Memo) SubMappings(k *kernel.Kernel, f *ir.IDFG, fab arch.Fabric, depthSlack int) ([]*SubMapping, error) {
	key := fmt.Sprintf("%s|%+v|slack%d", kernelKey(k), fab, depthSlack)
	v, err := m.load(&m.subs, key, func() (any, error) {
		subs, err := MapIDFG(f, fab, depthSlack)
		if err != nil {
			return nil, err
		}
		return subs, nil
	})
	if err != nil {
		return nil, err
	}
	return v.([]*SubMapping), nil
}

// Schemes returns the ranked systolic scheme candidates for the kernel on
// a VSA of vx × vy sub-CGRA clusters. The search result is a pure function
// of the kernel's dependence structure, the VSA extents, and the candidate
// limit — Workers only shards the search, never changes its merged output
// (pinned by TestWorkersDeterminism) — so it is safe to key without it. A
// forced scheme bypasses the cache entirely: it is already free to
// "search" and may vary per call site.
func (m *Memo) Schemes(k *kernel.Kernel, deps []ir.IterVec, vx, vy int, opts Options) ([]systolic.Scheme, error) {
	if opts.ForceScheme != nil {
		return candidateSchemes(k, deps, vx, vy, opts), nil
	}
	key := fmt.Sprintf("%s|vsa%dx%d|n%d", kernelKey(k), vx, vy, opts.MaxSchemes)
	v, err := m.load(&m.schemes, key, func() (any, error) {
		return candidateSchemes(k, deps, vx, vy, opts), nil
	})
	if err != nil {
		return nil, err
	}
	return v.([]systolic.Scheme), nil
}

// ISDG returns (building at most once) the kernel's unrolled DFG and
// ISDG for a block vector.
func (m *Memo) ISDG(k *kernel.Kernel, block []int) (*ir.DFG, *ir.ISDG, error) {
	key := fmt.Sprintf("%s|b%v", kernelKey(k), block)
	v, err := m.load(&m.isdg, key, func() (any, error) {
		dfg, isdg, err := k.BuildISDG(block)
		if err != nil {
			return nil, err
		}
		return isdgArtifact{dfg: dfg, isdg: isdg}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	a := v.(isdgArtifact)
	return a.dfg, a.isdg, nil
}

// kernelKey renders the content identity of a kernel specification: every
// field that determines DFG construction and hence every downstream
// artifact (name and dimensionality, block constraints, and the complete
// body — op kinds, operand source structure, affine maps, predicates,
// constants, and store rules). Tensor extent functions and the Prepare
// hook affect only input generation, never the mapped structure, so they
// are deliberately excluded.
func kernelKey(k *kernel.Kernel) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s/%s|d%d|m%d|f%v|", k.Name, k.Suite, k.Dim, k.MinBlock, k.FixedBlock)
	writeInput := func(in kernel.Input) {
		for _, c := range in {
			fmt.Fprintf(&b, "w%v:", c.When)
			s := c.Src
			fmt.Fprintf(&b, "k%d,o%d,d%v,t%s,m%v+%v,v%d;", s.Kind, s.Op, s.Dist, s.Tensor, s.Map.Coef, s.Map.Off, s.Value)
		}
	}
	for i, op := range k.Body {
		fmt.Fprintf(&b, "[%d:%s:%d|A:", i, op.Name, op.Kind)
		writeInput(op.A)
		b.WriteString("|B:")
		writeInput(op.B)
		b.WriteString("|S:")
		for _, st := range op.Stores {
			fmt.Fprintf(&b, "w%v>%s,m%v+%v;", st.When, st.Tensor, st.Map.Coef, st.Map.Off)
		}
		b.WriteString("]")
	}
	return b.String()
}
