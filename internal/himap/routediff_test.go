package himap

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"

	"himap/internal/arch"
	"himap/internal/kernel"
)

// routerFingerprint renders a mapping to a canonical hash: the
// instruction stream (comments stripped), the II, and the load/store
// I/O specs — the same canonicalization the top-level fabric regression
// pins, so "byte-identical artifact" means the same thing in both.
func routerFingerprint(cfg *arch.Config) string {
	h := sha256.New()
	fmt.Fprintf(h, "ii=%d\n", cfg.II)
	for r := 0; r < cfg.Fabric.Rows; r++ {
		for c := 0; c < cfg.Fabric.Cols; c++ {
			for t := 0; t < cfg.II; t++ {
				in := *cfg.At(r, c, t)
				in.Comment = ""
				fmt.Fprintf(h, "r%d c%d t%d %s\n", r, c, t, in.String())
			}
		}
	}
	for _, l := range cfg.Loads {
		fmt.Fprintf(h, "load %+v\n", l)
	}
	for _, s := range cfg.Stores {
		fmt.Fprintf(h, "store %+v\n", s)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TestRouterDifferentialLegacyVsAStar is the bit-identity contract of
// the router rewrite: on every evaluation kernel, on mesh and torus
// fabrics at 8x8 and 16x16, the A*+bucket-queue core must emit exactly
// the artifact the historical global-heap Dijkstra emits — same
// instruction stream, same I/O specs, same route-round count — or fail
// with exactly the same error.
func TestRouterDifferentialLegacyVsAStar(t *testing.T) {
	for _, topo := range []arch.Topology{arch.TopoMesh, arch.TopoTorus} {
		for _, size := range []int{8, 16} {
			if size == 16 && testing.Short() {
				continue
			}
			for _, k := range kernel.Evaluation() {
				k := k
				t.Run(fmt.Sprintf("%s/%s/%dx%d", k.Name, topo, size, size), func(t *testing.T) {
					fab := arch.Fabric{CGRA: arch.Default(size, size), Topology: topo}
					newR, newErr := CompileFabric(k, fab, Options{})
					oldR, oldErr := CompileFabric(k, fab, Options{routeLegacy: true})
					if (newErr == nil) != (oldErr == nil) {
						t.Fatalf("divergent outcome: A* err = %v, Dijkstra err = %v", newErr, oldErr)
					}
					if newErr != nil {
						if newErr.Error() != oldErr.Error() {
							t.Fatalf("divergent errors:\nA*:       %v\nDijkstra: %v", newErr, oldErr)
						}
						return
					}
					if got, want := routerFingerprint(newR.Config), routerFingerprint(oldR.Config); got != want {
						t.Errorf("mapping diverged: A* %s, Dijkstra %s", got, want)
					}
					if newR.Stats.RouteRounds != oldR.Stats.RouteRounds {
						t.Errorf("route rounds diverged: A* %d, Dijkstra %d",
							newR.Stats.RouteRounds, oldR.Stats.RouteRounds)
					}
				})
			}
		}
	}
}

// TestIncrementalRouteValidAndIdenticalWhenConverged checks the
// incremental re-route mode: every kernel must still produce a fully
// valid mapping meeting the paper's utilization floor, and kernels that
// converge in a single negotiated-congestion round — where incremental
// mode has no round to carry plans across — must stay bit-identical to
// the default flow.
func TestIncrementalRouteValidAndIdenticalWhenConverged(t *testing.T) {
	kept := 0
	defer func() {
		if kept == 0 {
			t.Errorf("incremental mode never carried a class plan across rounds — the keep path is dead")
		}
	}()
	for _, k := range kernel.Evaluation() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			base, err := Compile(k, arch.Default(8, 8), Options{})
			if err != nil {
				t.Fatal(err)
			}
			inc, err := Compile(k, arch.Default(8, 8), Options{IncrementalRoute: true})
			if err != nil {
				t.Fatalf("incremental: %v", err)
			}
			if err := inc.Config.Validate(); err != nil {
				t.Fatalf("incremental config invalid: %v", err)
			}
			kept += inc.Stats.KeptClasses
			if inc.Utilization < paperUtil[k.Name]-1e-9 {
				t.Errorf("incremental U = %.1f%%, paper achieves %.0f%%",
					inc.Utilization*100, paperUtil[k.Name]*100)
			}
			if base.Stats.RouteRounds == 1 {
				if got, want := routerFingerprint(inc.Config), routerFingerprint(base.Config); got != want {
					t.Errorf("single-round kernel diverged under incremental routing")
				}
			}
		})
	}
}
