// Package himap implements the paper's primary contribution: the
// hierarchical HiMap mapping algorithm (Algorithm 1). The three steps are
//
//  1. IDFG → sub-CGRA mapping (MAP, this file): place one iteration's
//     operations on candidate sub-CGRA shapes (s1 × s2, time depth t),
//     maximizing sub-CGRA utilization;
//  2. ISDG → VSA mapping (compile.go + internal/systolic): place the
//     iteration clusters on the Virtual Systolic Array with the (H,S)
//     space-time transformation, inserting forwarding paths for multi-hop
//     dependencies;
//  3. unique-iteration identification, minimal-DFG routing, and
//     replication (unique.go, routegen.go).
package himap

import (
	"errors"
	"fmt"
	"sort"

	"himap/internal/arch"
	"himap/internal/diag"
	"himap/internal/ir"
	"himap/internal/mrrg"
	"himap/internal/route"
)

// PlaceKind distinguishes the resource class of a relative placement.
type PlaceKind uint8

const (
	PlaceFU PlaceKind = iota
	PlaceMemRead
)

// RelPlace is a placement relative to a sub-CGRA: a slot within
// [0, Depth) × [0, S1) × [0, S2).
type RelPlace struct {
	T, R, C int
	Kind    PlaceKind
}

// SubMapping is one valid IDFG → sub-CGRA mapping φ” returned by MAP().
type SubMapping struct {
	S1, S2, Depth int
	// Rel maps a body-op identifier (including the synthesized load
	// encodings of the kernel package) to its relative placement.
	Rel  map[int]RelPlace
	Util float64 // compute ops / (S1·S2·Depth)
}

func (m *SubMapping) String() string {
	return fmt.Sprintf("sub-CGRA (%d,%d,%d) util %.0f%%", m.S1, m.S2, m.Depth, m.Util*100)
}

func divisors(n int) []int {
	var out []int
	for d := 1; d <= n; d++ {
		if n%d == 0 {
			out = append(out, d)
		}
	}
	return out
}

// MapIDFG implements the MAP() function of Algorithm 1 (lines 30-46): it
// enumerates rectangular sub-CGRA shapes (s1, s2) that evenly cluster the
// target CGRA and time depths t starting at the resource minimum, maps
// the generic IDFG onto each time-extended sub-CGRA with the
// negotiated-congestion heuristic, and returns every successful mapping
// sorted by utilization (line 4).
//
// depthSlack is the number of extra time depths tried beyond the resource
// minimum; the lower-utilization mappings it produces are the fallbacks
// step 3 reaches for when routing the highest-utilization mapping
// congests (§VI's ADI/BiCG/FW discussion).
//
// On heterogeneous fabrics two extra constraints apply: every s1×s2 tile
// of the fabric must carry an identical capability footprint (otherwise
// replicating the canonical iteration across clusters would land memory
// ops on compute-only PEs), and the tile must offer enough memory-port
// slots for the iteration's loads. When every candidate shape fails for
// one of these reasons the returned error wraps
// diag.ErrMemPortInfeasible.
func MapIDFG(f *ir.IDFG, fab arch.Fabric, depthSlack int) ([]*SubMapping, error) {
	ncomp := f.NumCompute()
	if ncomp == 0 {
		return nil, nil
	}
	needsMem := idfgNeedsMem(f)
	nloads := numClusterLoads(f)
	var out []*SubMapping
	memRejects := 0
	for _, s1 := range divisors(fab.Rows) {
		if s1 > ncomp {
			continue
		}
		for _, s2 := range divisors(fab.Cols) {
			// Shapes with more PEs than ops can never reach 100% utilization,
			// so on homogeneous fabrics they are dominated and skipped. On a
			// heterogeneous fabric they can be the only capability-uniform
			// tiles (e.g. boundary memory forces full-width tiles), so memory
			// kernels keep them as lower-utilization candidates.
			if s1*s2 > ncomp && (!needsMem || fab.Uniform()) {
				continue
			}
			if needsMem && !tileCapsUniform(fab, s1, s2) {
				memRejects++
				continue
			}
			sub := subFabric(fab, s1, s2)
			t0 := (ncomp + s1*s2 - 1) / (s1 * s2)
			for t := t0; t <= t0+depthSlack; t++ {
				if t > fab.ConfigDepth {
					break
				}
				if nloads > sub.NumMemPEs()*t {
					memRejects++
					continue
				}
				m, err := tryPlaceIDFG(f, fab, s1, s2, t)
				if err != nil {
					if errors.Is(err, diag.ErrMemPortInfeasible) {
						memRejects++
					}
					continue
				}
				out = append(out, m)
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Util != b.Util {
			return a.Util > b.Util
		}
		if a.S1*a.S2 != b.S1*b.S2 {
			return a.S1*a.S2 < b.S1*b.S2
		}
		if a.Depth != b.Depth {
			return a.Depth < b.Depth
		}
		return a.S1 < b.S1
	})
	if len(out) == 0 && memRejects > 0 {
		return nil, diag.Failf(diag.ErrMemPortInfeasible,
			"IDFG demands %d memory loads per iteration; no sub-CGRA shape of the %s fabric provides matching memory ports",
			nloads, fab)
	}
	return out, nil
}

// idfgNeedsMem reports whether the iteration body touches memory.
func idfgNeedsMem(f *ir.IDFG) bool {
	for _, n := range f.DFG.Nodes {
		if n.Kind == ir.OpLoad || n.Kind == ir.OpStore {
			return true
		}
	}
	return false
}

// numClusterLoads counts the loads the sub-CGRA mapping itself must place
// (loads inside the cluster; boundary loads are routed in step 3).
func numClusterLoads(f *ir.IDFG) int {
	n := 0
	for _, id := range f.Comp {
		if f.DFG.Nodes[id].Kind == ir.OpLoad {
			n++
		}
	}
	return n
}

// tileCapsUniform reports whether every s1×s2 tile of the fabric carries
// the same per-PE capability footprint — the legality condition for
// replicating one canonical iteration mapping across all clusters.
// Capabilities depend only on the column under the supported policies, so
// tiles are compared column-wise.
func tileCapsUniform(fab arch.Fabric, s1, s2 int) bool {
	for c := 0; c < s2; c++ {
		want := fab.MemCapable(0, c)
		for off := s2; off < fab.Cols; off += s2 {
			if fab.MemCapable(0, c+off) != want {
				return false
			}
		}
	}
	return true
}

// subFabric builds the sub-CGRA fabric G” of §IV: the tile anchored at
// the array origin. Torus wrap links only survive when the tile spans the
// full dimension; a boundary-memory layout survives only when the tile
// spans all columns (otherwise interior tiles have no memory ports, and
// the capability-uniformity check restricts such shapes to memory-free
// kernels anyway).
func subFabric(fab arch.Fabric, s1, s2 int) arch.Fabric {
	sub := fab
	sub.Rows, sub.Cols = s1, s2
	if fab.Topology == arch.TopoTorus && (s1 != fab.Rows || s2 != fab.Cols) {
		sub.Topology = arch.TopoMesh
	}
	switch fab.Mem {
	case arch.MemAll:
		// every tile PE keeps its port
	case arch.MemBoundary:
		if s2 != fab.Cols {
			sub.Mem = arch.MemNone
		}
	}
	return sub
}

// tryPlaceIDFG attempts the heuristic placement-and-routing of the IDFG
// on one time-extended sub-CGRA (lines 33-45): compute ops on FU slots by
// least accumulated routing cost from their placed parents, loads on
// memory read ports adjacent to their consumers, with SPR-style cost
// escalation rounds until no resource is oversubscribed.
func tryPlaceIDFG(f *ir.IDFG, fab arch.Fabric, s1, s2, depth int) (*SubMapping, error) {
	sub := subFabric(fab, s1, s2)
	g := mrrg.NewAcyclic(sub, depth)
	ses := route.NewSession(g)
	ses.MaxVisits = 20000

	d := f.DFG
	inside := map[int]bool{}
	for _, id := range f.Comp {
		inside[id] = true
	}
	// Intra-iteration parents per node, restricted to compute/load parents
	// (route-node inputs come from outside the iteration and are handled
	// by step 3's inter-iteration routing).
	parents := map[int][]ir.Edge{}
	for _, e := range f.Inner {
		if d.Nodes[e.From].Kind.IsCompute() || d.Nodes[e.From].Kind == ir.OpLoad {
			parents[e.To] = append(parents[e.To], e)
		}
	}
	// Topological order of the compute nodes within the cluster.
	order := topoInside(f)

	place := map[int]mrrg.Node{} // DFG node -> placement
	var nets []*route.Net
	netOf := map[int]*route.Net{}

	routeEdge := func(e ir.Edge) error {
		pn, ok := place[e.From]
		if !ok {
			return fmt.Errorf("himap: parent %d unplaced: %w", e.From, diag.ErrPlacementInfeasible)
		}
		cn := place[e.To]
		net := netOf[e.From]
		if net == nil {
			net = ses.NewNet(pn)
			netOf[e.From] = net
			nets = append(nets, net)
		}
		path, _, err := ses.RouteSink(net, g.OperandTargets(cn.T, cn.R, cn.C))
		_ = path
		return err
	}

	// Place compute nodes greedily by estimated cost, verify with real
	// routing, backtracking over candidate slots.
	for _, id := range order {
		n := d.Nodes[id]
		if !n.Kind.IsCompute() {
			continue
		}
		type cand struct {
			node mrrg.Node
			est  float64
		}
		// Each memory-operand load needs its own memory-read cycle at or
		// before the consumer; a node with m loads cannot sit earlier than
		// cycle m-1.
		memParents := 0
		for _, e := range parents[id] {
			if d.Nodes[e.From].Kind == ir.OpLoad {
				memParents++
			}
		}
		minT := memParents - 1
		if minT < 0 {
			minT = 0
		}
		var cands []cand
		for tt := minT; tt < depth; tt++ {
			for r := 0; r < s1; r++ {
				for c := 0; c < s2; c++ {
					fu := g.FUNode(tt, r, c)
					if ses.Occ(fu) > 0 {
						continue
					}
					est := float64(tt) * 0.05
					feasible := true
					for _, e := range parents[id] {
						p := d.Nodes[e.From]
						if !p.Kind.IsCompute() {
							continue // loads placed later, adjacent
						}
						pp, ok := place[e.From]
						if !ok {
							continue
						}
						dist := absInt(pp.R-r) + absInt(pp.C-c)
						lat := tt - pp.T
						need := dist
						if need == 0 {
							need = 1 // same PE: must pass through the RF
						}
						if lat < need {
							feasible = false
							break
						}
						est += float64(dist) + float64(lat-need)*0.3
					}
					if !feasible {
						continue
					}
					cands = append(cands, cand{fu, est})
				}
			}
		}
		if len(cands) == 0 {
			return nil, fmt.Errorf("himap: no feasible FU slot for %v on (%d,%d,%d): %w", n, s1, s2, depth, diag.ErrPlacementInfeasible)
		}
		sort.SliceStable(cands, func(i, j int) bool {
			if cands[i].est != cands[j].est {
				return cands[i].est < cands[j].est
			}
			return g.Key(cands[i].node) < g.Key(cands[j].node)
		})
		placed := false
		for _, c := range cands {
			ses.Reserve(c.node)
			place[id] = c.node
			ok := true
			var added []ir.Edge
			for _, e := range parents[id] {
				if !d.Nodes[e.From].Kind.IsCompute() {
					continue
				}
				if _, isPlaced := place[e.From]; !isPlaced {
					continue
				}
				if err := routeEdge(e); err != nil {
					ok = false
					break
				}
				added = append(added, e)
			}
			if ok {
				placed = true
				break
			}
			// Back out: release this node's incoming nets entirely and retry.
			_ = added
			for _, e := range parents[id] {
				if net := netOf[e.From]; net != nil {
					ses.Release(net)
					// Re-route the net's previously committed sinks.
					// Simplest correct approach: rebuild below.
				}
			}
			ses.Unreserve(c.node)
			delete(place, id)
			// Rebuild all routing from scratch (graphs are tiny).
			if err := rerouteAll(ses, g, d, place, parents, netOf, &nets, order); err != nil {
				return nil, err
			}
		}
		if !placed {
			return nil, fmt.Errorf("himap: cannot place %v on (%d,%d,%d): %w", n, s1, s2, depth, diag.ErrPlacementInfeasible)
		}
	}

	// Place loads next to their consumers.
	for _, id := range order {
		n := d.Nodes[id]
		if n.Kind != ir.OpLoad {
			continue
		}
		// Find the first consumer inside the cluster.
		var cons mrrg.Node
		found := false
		for _, ei := range d.OutEdges(id) {
			to := d.Edges[ei].To
			if p, ok := place[to]; ok && inside[to] {
				cons = p
				found = true
				break
			}
		}
		if !found {
			// Load feeding only route nodes / outside consumers: anchor at
			// slot (0, 0, 0)'s memory port, first free cycle.
			cons = g.FUNode(0, 0, 0)
		}
		placedLoad := false
		if sub.MemCapable(cons.R, cons.C) {
			// Consumer's own memory port, backing off in time — the
			// homogeneous-fabric fast path (kept verbatim: it decides
			// the bit-exact placements of the default fabric).
			for back := 0; back < depth; back++ {
				tt := cons.T - back
				if tt < 0 {
					break
				}
				mr := g.MemReadNode(tt, cons.R, cons.C)
				if ses.Occ(mr) > 0 {
					continue
				}
				ses.Reserve(mr)
				place[id] = mr
				placedLoad = true
				break
			}
		} else {
			// Compute-only consumer: pick the nearest memory-capable PE
			// (deterministic distance → row → col order) at a cycle early
			// enough for the value to hop over.
			for _, pe := range memPEsByDist(sub, cons.R, cons.C) {
				dist := absInt(pe[0]-cons.R) + absInt(pe[1]-cons.C)
				for back := dist; back < depth; back++ {
					tt := cons.T - back
					if tt < 0 {
						break
					}
					mr := g.MemReadNode(tt, pe[0], pe[1])
					if ses.Occ(mr) > 0 {
						continue
					}
					ses.Reserve(mr)
					place[id] = mr
					placedLoad = true
					break
				}
				if placedLoad {
					break
				}
			}
		}
		if !placedLoad {
			return nil, diag.Failf(diag.ErrMemPortInfeasible,
				"himap: no memory read slot for %v on (%d,%d,%d) of the %s fabric", n, s1, s2, depth, fab)
		}
	}
	// Route load → consumer edges.
	for _, id := range order {
		if d.Nodes[id].Kind != ir.OpLoad {
			continue
		}
		for _, ei := range d.OutEdges(id) {
			e := d.Edges[ei]
			if !inside[e.To] || !d.Nodes[e.To].Kind.IsCompute() {
				continue
			}
			if err := routeEdge(e); err != nil {
				return nil, fmt.Errorf("himap: load routing failed on (%d,%d,%d): %w", s1, s2, depth, err)
			}
		}
	}

	// Negotiated congestion: re-route with escalating history costs until
	// clean or the round budget is exhausted (lines 35-45).
	for round := 0; round < 10; round++ {
		if ses.BumpHistory(nets) == 0 {
			rel := map[int]RelPlace{}
			for id, pn := range place {
				kind := PlaceFU
				if pn.Class == mrrg.ClassMemRead {
					kind = PlaceMemRead
				}
				rel[d.Nodes[id].BodyOp] = RelPlace{T: pn.T, R: pn.R, C: pn.C, Kind: kind}
			}
			ncomp := f.NumCompute()
			return &SubMapping{
				S1: s1, S2: s2, Depth: depth,
				Rel:  rel,
				Util: float64(ncomp) / float64(s1*s2*depth),
			}, nil
		}
		if err := rerouteAll(ses, g, d, place, parents, netOf, &nets, order); err != nil {
			return nil, err
		}
	}
	return nil, fmt.Errorf("himap: congestion unresolved on (%d,%d,%d): %w", s1, s2, depth, diag.ErrRouteCongested)
}

// rerouteAll rips up every net and re-routes all intra-iteration edges
// between placed nodes, in deterministic order.
func rerouteAll(ses *route.Session, g *mrrg.Graph, d *ir.DFG,
	place map[int]mrrg.Node, parents map[int][]ir.Edge,
	netOf map[int]*route.Net, nets *[]*route.Net, order []int) error {
	for _, net := range *nets {
		ses.Release(net)
	}
	*nets = (*nets)[:0]
	for k := range netOf {
		delete(netOf, k)
	}
	for _, id := range order {
		for _, e := range parents[id] {
			if _, ok := place[e.From]; !ok {
				continue
			}
			if _, ok := place[e.To]; !ok {
				continue
			}
			pn := place[e.From]
			cn := place[e.To]
			net := netOf[e.From]
			if net == nil {
				net = ses.NewNet(pn)
				netOf[e.From] = net
				*nets = append(*nets, net)
			}
			if _, _, err := ses.RouteSink(net, g.OperandTargets(cn.T, cn.R, cn.C)); err != nil {
				return err
			}
		}
	}
	return nil
}

// topoInside returns the cluster's node IDs in topological order of the
// inner edges.
func topoInside(f *ir.IDFG) []int {
	d := f.DFG
	inside := map[int]bool{}
	for _, id := range f.Comp {
		inside[id] = true
	}
	indeg := map[int]int{}
	for _, id := range f.Comp {
		indeg[id] = 0
	}
	for _, e := range f.Inner {
		indeg[e.To]++
	}
	var queue []int
	for _, id := range f.Comp {
		if indeg[id] == 0 {
			queue = append(queue, id)
		}
	}
	sort.Ints(queue)
	var order []int
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		order = append(order, id)
		var next []int
		for _, ei := range d.OutEdges(id) {
			to := d.Edges[ei].To
			if !inside[to] {
				continue
			}
			indeg[to]--
			if indeg[to] == 0 {
				next = append(next, to)
			}
		}
		sort.Ints(next)
		queue = append(queue, next...)
	}
	return order
}

// memPEsByDist lists the fabric's memory-capable PEs sorted by Manhattan
// distance from (r, c), ties broken by row then column.
func memPEsByDist(fab arch.Fabric, r, c int) [][2]int {
	pes := fab.MemPEs()
	sort.SliceStable(pes, func(i, j int) bool {
		di := absInt(pes[i][0]-r) + absInt(pes[i][1]-c)
		dj := absInt(pes[j][0]-r) + absInt(pes[j][1]-c)
		if di != dj {
			return di < dj
		}
		if pes[i][0] != pes[j][0] {
			return pes[i][0] < pes[j][0]
		}
		return pes[i][1] < pes[j][1]
	})
	return pes
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
