// Package himap implements the paper's primary contribution: the
// hierarchical HiMap mapping algorithm (Algorithm 1). The three steps are
//
//  1. IDFG → sub-CGRA mapping (MAP, this file): place one iteration's
//     operations on candidate sub-CGRA shapes (s1 × s2, time depth t),
//     maximizing sub-CGRA utilization;
//  2. ISDG → VSA mapping (compile.go + internal/systolic): place the
//     iteration clusters on the Virtual Systolic Array with the (H,S)
//     space-time transformation, inserting forwarding paths for multi-hop
//     dependencies;
//  3. unique-iteration identification, minimal-DFG routing, and
//     replication (unique.go, routegen.go).
package himap

import (
	"fmt"
	"sort"

	"himap/internal/arch"
	"himap/internal/ir"
	"himap/internal/mrrg"
	"himap/internal/route"
)

// PlaceKind distinguishes the resource class of a relative placement.
type PlaceKind uint8

const (
	PlaceFU PlaceKind = iota
	PlaceMemRead
)

// RelPlace is a placement relative to a sub-CGRA: a slot within
// [0, Depth) × [0, S1) × [0, S2).
type RelPlace struct {
	T, R, C int
	Kind    PlaceKind
}

// SubMapping is one valid IDFG → sub-CGRA mapping φ” returned by MAP().
type SubMapping struct {
	S1, S2, Depth int
	// Rel maps a body-op identifier (including the synthesized load
	// encodings of the kernel package) to its relative placement.
	Rel  map[int]RelPlace
	Util float64 // compute ops / (S1·S2·Depth)
}

func (m *SubMapping) String() string {
	return fmt.Sprintf("sub-CGRA (%d,%d,%d) util %.0f%%", m.S1, m.S2, m.Depth, m.Util*100)
}

func divisors(n int) []int {
	var out []int
	for d := 1; d <= n; d++ {
		if n%d == 0 {
			out = append(out, d)
		}
	}
	return out
}

// MapIDFG implements the MAP() function of Algorithm 1 (lines 30-46): it
// enumerates rectangular sub-CGRA shapes (s1, s2) that evenly cluster the
// target CGRA and time depths t starting at the resource minimum, maps
// the generic IDFG onto each time-extended sub-CGRA with the
// negotiated-congestion heuristic, and returns every successful mapping
// sorted by utilization (line 4).
//
// depthSlack is the number of extra time depths tried beyond the resource
// minimum; the lower-utilization mappings it produces are the fallbacks
// step 3 reaches for when routing the highest-utilization mapping
// congests (§VI's ADI/BiCG/FW discussion).
func MapIDFG(f *ir.IDFG, cg arch.CGRA, depthSlack int) []*SubMapping {
	ncomp := f.NumCompute()
	if ncomp == 0 {
		return nil
	}
	var out []*SubMapping
	for _, s1 := range divisors(cg.Rows) {
		if s1 > ncomp {
			continue
		}
		for _, s2 := range divisors(cg.Cols) {
			if s1*s2 > ncomp {
				continue
			}
			t0 := (ncomp + s1*s2 - 1) / (s1 * s2)
			for t := t0; t <= t0+depthSlack; t++ {
				if t > cg.ConfigDepth {
					break
				}
				m, err := tryPlaceIDFG(f, cg, s1, s2, t)
				if err != nil {
					continue
				}
				out = append(out, m)
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Util != b.Util {
			return a.Util > b.Util
		}
		if a.S1*a.S2 != b.S1*b.S2 {
			return a.S1*a.S2 < b.S1*b.S2
		}
		if a.Depth != b.Depth {
			return a.Depth < b.Depth
		}
		return a.S1 < b.S1
	})
	return out
}

// subArch builds the sub-CGRA architecture G” of §IV.
func subArch(cg arch.CGRA, s1, s2 int) arch.CGRA {
	a := cg
	a.Rows, a.Cols = s1, s2
	return a
}

// tryPlaceIDFG attempts the heuristic placement-and-routing of the IDFG
// on one time-extended sub-CGRA (lines 33-45): compute ops on FU slots by
// least accumulated routing cost from their placed parents, loads on
// memory read ports adjacent to their consumers, with SPR-style cost
// escalation rounds until no resource is oversubscribed.
func tryPlaceIDFG(f *ir.IDFG, cg arch.CGRA, s1, s2, depth int) (*SubMapping, error) {
	sub := subArch(cg, s1, s2)
	g := mrrg.NewAcyclic(sub, depth)
	ses := route.NewSession(g)
	ses.MaxVisits = 20000

	d := f.DFG
	inside := map[int]bool{}
	for _, id := range f.Comp {
		inside[id] = true
	}
	// Intra-iteration parents per node, restricted to compute/load parents
	// (route-node inputs come from outside the iteration and are handled
	// by step 3's inter-iteration routing).
	parents := map[int][]ir.Edge{}
	for _, e := range f.Inner {
		if d.Nodes[e.From].Kind.IsCompute() || d.Nodes[e.From].Kind == ir.OpLoad {
			parents[e.To] = append(parents[e.To], e)
		}
	}
	// Topological order of the compute nodes within the cluster.
	order := topoInside(f)

	place := map[int]mrrg.Node{} // DFG node -> placement
	var nets []*route.Net
	netOf := map[int]*route.Net{}

	routeEdge := func(e ir.Edge) error {
		pn, ok := place[e.From]
		if !ok {
			return fmt.Errorf("himap: parent %d unplaced", e.From)
		}
		cn := place[e.To]
		net := netOf[e.From]
		if net == nil {
			net = ses.NewNet(pn)
			netOf[e.From] = net
			nets = append(nets, net)
		}
		path, _, err := ses.RouteSink(net, g.OperandTargets(cn.T, cn.R, cn.C))
		_ = path
		return err
	}

	// Place compute nodes greedily by estimated cost, verify with real
	// routing, backtracking over candidate slots.
	for _, id := range order {
		n := d.Nodes[id]
		if !n.Kind.IsCompute() {
			continue
		}
		type cand struct {
			node mrrg.Node
			est  float64
		}
		// Each memory-operand load needs its own memory-read cycle at or
		// before the consumer; a node with m loads cannot sit earlier than
		// cycle m-1.
		memParents := 0
		for _, e := range parents[id] {
			if d.Nodes[e.From].Kind == ir.OpLoad {
				memParents++
			}
		}
		minT := memParents - 1
		if minT < 0 {
			minT = 0
		}
		var cands []cand
		for tt := minT; tt < depth; tt++ {
			for r := 0; r < s1; r++ {
				for c := 0; c < s2; c++ {
					fu := g.FUNode(tt, r, c)
					if ses.Occ(fu) > 0 {
						continue
					}
					est := float64(tt) * 0.05
					feasible := true
					for _, e := range parents[id] {
						p := d.Nodes[e.From]
						if !p.Kind.IsCompute() {
							continue // loads placed later, adjacent
						}
						pp, ok := place[e.From]
						if !ok {
							continue
						}
						dist := absInt(pp.R-r) + absInt(pp.C-c)
						lat := tt - pp.T
						need := dist
						if need == 0 {
							need = 1 // same PE: must pass through the RF
						}
						if lat < need {
							feasible = false
							break
						}
						est += float64(dist) + float64(lat-need)*0.3
					}
					if !feasible {
						continue
					}
					cands = append(cands, cand{fu, est})
				}
			}
		}
		if len(cands) == 0 {
			return nil, fmt.Errorf("himap: no feasible FU slot for %v on (%d,%d,%d)", n, s1, s2, depth)
		}
		sort.SliceStable(cands, func(i, j int) bool {
			if cands[i].est != cands[j].est {
				return cands[i].est < cands[j].est
			}
			return g.Key(cands[i].node) < g.Key(cands[j].node)
		})
		placed := false
		for _, c := range cands {
			ses.Reserve(c.node)
			place[id] = c.node
			ok := true
			var added []ir.Edge
			for _, e := range parents[id] {
				if !d.Nodes[e.From].Kind.IsCompute() {
					continue
				}
				if _, isPlaced := place[e.From]; !isPlaced {
					continue
				}
				if err := routeEdge(e); err != nil {
					ok = false
					break
				}
				added = append(added, e)
			}
			if ok {
				placed = true
				break
			}
			// Back out: release this node's incoming nets entirely and retry.
			_ = added
			for _, e := range parents[id] {
				if net := netOf[e.From]; net != nil {
					ses.Release(net)
					// Re-route the net's previously committed sinks.
					// Simplest correct approach: rebuild below.
				}
			}
			ses.Unreserve(c.node)
			delete(place, id)
			// Rebuild all routing from scratch (graphs are tiny).
			if err := rerouteAll(ses, g, d, place, parents, netOf, &nets, order); err != nil {
				return nil, err
			}
		}
		if !placed {
			return nil, fmt.Errorf("himap: cannot place %v on (%d,%d,%d)", n, s1, s2, depth)
		}
	}

	// Place loads next to their consumers.
	for _, id := range order {
		n := d.Nodes[id]
		if n.Kind != ir.OpLoad {
			continue
		}
		// Find the first consumer inside the cluster.
		var cons mrrg.Node
		found := false
		for _, ei := range d.OutEdges(id) {
			to := d.Edges[ei].To
			if p, ok := place[to]; ok && inside[to] {
				cons = p
				found = true
				break
			}
		}
		if !found {
			// Load feeding only route nodes / outside consumers: anchor at
			// slot (0, 0, 0)'s memory port, first free cycle.
			cons = g.FUNode(0, 0, 0)
		}
		placedLoad := false
		for back := 0; back < depth; back++ {
			tt := cons.T - back
			if tt < 0 {
				break
			}
			mr := g.MemReadNode(tt, cons.R, cons.C)
			if ses.Occ(mr) > 0 {
				continue
			}
			ses.Reserve(mr)
			place[id] = mr
			placedLoad = true
			break
		}
		if !placedLoad {
			return nil, fmt.Errorf("himap: no memory read slot for %v on (%d,%d,%d)", n, s1, s2, depth)
		}
	}
	// Route load → consumer edges.
	for _, id := range order {
		if d.Nodes[id].Kind != ir.OpLoad {
			continue
		}
		for _, ei := range d.OutEdges(id) {
			e := d.Edges[ei]
			if !inside[e.To] || !d.Nodes[e.To].Kind.IsCompute() {
				continue
			}
			if err := routeEdge(e); err != nil {
				return nil, fmt.Errorf("himap: load routing failed on (%d,%d,%d): %v", s1, s2, depth, err)
			}
		}
	}

	// Negotiated congestion: re-route with escalating history costs until
	// clean or the round budget is exhausted (lines 35-45).
	for round := 0; round < 10; round++ {
		if ses.BumpHistory(nets) == 0 {
			rel := map[int]RelPlace{}
			for id, pn := range place {
				kind := PlaceFU
				if pn.Class == mrrg.ClassMemRead {
					kind = PlaceMemRead
				}
				rel[d.Nodes[id].BodyOp] = RelPlace{T: pn.T, R: pn.R, C: pn.C, Kind: kind}
			}
			ncomp := f.NumCompute()
			return &SubMapping{
				S1: s1, S2: s2, Depth: depth,
				Rel:  rel,
				Util: float64(ncomp) / float64(s1*s2*depth),
			}, nil
		}
		if err := rerouteAll(ses, g, d, place, parents, netOf, &nets, order); err != nil {
			return nil, err
		}
	}
	return nil, fmt.Errorf("himap: congestion unresolved on (%d,%d,%d)", s1, s2, depth)
}

// rerouteAll rips up every net and re-routes all intra-iteration edges
// between placed nodes, in deterministic order.
func rerouteAll(ses *route.Session, g *mrrg.Graph, d *ir.DFG,
	place map[int]mrrg.Node, parents map[int][]ir.Edge,
	netOf map[int]*route.Net, nets *[]*route.Net, order []int) error {
	for _, net := range *nets {
		ses.Release(net)
	}
	*nets = (*nets)[:0]
	for k := range netOf {
		delete(netOf, k)
	}
	for _, id := range order {
		for _, e := range parents[id] {
			if _, ok := place[e.From]; !ok {
				continue
			}
			if _, ok := place[e.To]; !ok {
				continue
			}
			pn := place[e.From]
			cn := place[e.To]
			net := netOf[e.From]
			if net == nil {
				net = ses.NewNet(pn)
				netOf[e.From] = net
				*nets = append(*nets, net)
			}
			if _, _, err := ses.RouteSink(net, g.OperandTargets(cn.T, cn.R, cn.C)); err != nil {
				return err
			}
		}
	}
	return nil
}

// topoInside returns the cluster's node IDs in topological order of the
// inner edges.
func topoInside(f *ir.IDFG) []int {
	d := f.DFG
	inside := map[int]bool{}
	for _, id := range f.Comp {
		inside[id] = true
	}
	indeg := map[int]int{}
	for _, id := range f.Comp {
		indeg[id] = 0
	}
	for _, e := range f.Inner {
		indeg[e.To]++
	}
	var queue []int
	for _, id := range f.Comp {
		if indeg[id] == 0 {
			queue = append(queue, id)
		}
	}
	sort.Ints(queue)
	var order []int
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		order = append(order, id)
		var next []int
		for _, ei := range d.OutEdges(id) {
			to := d.Edges[ei].To
			if !inside[to] {
				continue
			}
			indeg[to]--
			if indeg[to] == 0 {
				next = append(next, to)
			}
		}
		sort.Ints(next)
		queue = append(queue, next...)
	}
	return order
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
