package himap

import (
	"testing"

	"himap/internal/ir"
	"himap/internal/kernel"
	"himap/internal/systolic"
)

func placeBICG(t *testing.T, b int) (*ir.ISDG, *ClusterPlace) {
	t.Helper()
	k := kernel.BICG()
	_, g, err := k.BuildISDG([]int{b, b})
	if err != nil {
		t.Fatal(err)
	}
	sch := systolic.Scheme{SpaceDims: []int{0, 1}, TimePerm: nil, Skew: []int{1, 1}}
	m := sch.Realize([]int{b, b})
	if err := m.Validate(k.DistanceVectors()); err != nil {
		t.Fatal(err)
	}
	return g, PlaceClusters(g, m)
}

func TestPlaceClustersMatchesMapping(t *testing.T) {
	g, cp := placeBICG(t, 4)
	for _, c := range g.Clusters {
		tt, x, y := cp.Mapping.Place(c.Iter)
		if cp.T[c.ID] != tt || cp.X[c.ID] != x || cp.Y[c.ID] != y {
			t.Errorf("cluster %v placed (%d,%d,%d), want (%d,%d,%d)",
				c.Iter, cp.T[c.ID], cp.X[c.ID], cp.Y[c.ID], tt, x, y)
		}
	}
}

func TestIdentifyUniqueBICGNine(t *testing.T) {
	for _, b := range []int{3, 4, 6} {
		g, cp := placeBICG(t, b)
		classes, byCluster := IdentifyUnique(g, cp)
		if len(classes) != 9 {
			t.Errorf("b=%d: %d unique classes, want 9 (Table II)", b, len(classes))
		}
		// Membership is a partition.
		seen := map[int]bool{}
		for idx, cl := range classes {
			for _, m := range cl.Members {
				if seen[m] {
					t.Fatalf("cluster %d in two classes", m)
				}
				seen[m] = true
				if byCluster[m] != idx {
					t.Fatalf("byCluster[%d] = %d, want %d", m, byCluster[m], idx)
				}
			}
			if cl.Members[0] != cl.Rep {
				t.Errorf("class %d: representative %d is not the first member %d", idx, cl.Rep, cl.Members[0])
			}
		}
		if len(seen) != len(g.Clusters) {
			t.Errorf("b=%d: classes cover %d of %d clusters", b, len(seen), len(g.Clusters))
		}
	}
}

func TestIdentifyUniqueSameClassSameShape(t *testing.T) {
	g, cp := placeBICG(t, 6)
	classes, _ := IdentifyUnique(g, cp)
	d := g.DFG
	for _, cl := range classes {
		rep := g.Clusters[cl.Rep]
		for _, m := range cl.Members {
			mc := g.Clusters[m]
			if len(mc.Nodes) != len(rep.Nodes) {
				t.Fatalf("class members with different node counts: %v vs %v", rep.Iter, mc.Iter)
			}
			for i := range rep.Nodes {
				if d.Nodes[rep.Nodes[i]].BodyOp != d.Nodes[mc.Nodes[i]].BodyOp {
					t.Fatalf("class members with different body ops at %v vs %v", rep.Iter, mc.Iter)
				}
			}
		}
	}
}

func TestUniqueCountSaturatesWithBlock(t *testing.T) {
	g6, cp6 := placeBICG(t, 6)
	c6, _ := IdentifyUnique(g6, cp6)
	g8, cp8 := placeBICG(t, 8)
	c8, _ := IdentifyUnique(g8, cp8)
	if len(c6) != len(c8) {
		t.Errorf("unique count not saturated: %d at b=6, %d at b=8 (§II's scalability argument)", len(c6), len(c8))
	}
}

func TestNodeIndexFindsEveryNode(t *testing.T) {
	g, _ := placeBICG(t, 4)
	ix := buildNodeIndex(g)
	for _, n := range g.DFG.Nodes {
		id, ok := ix.Find(n.BodyOp, n.Iter)
		if !ok || id != n.ID {
			t.Fatalf("Find(%d, %v) = %d,%v; want %d", n.BodyOp, n.Iter, id, ok, n.ID)
		}
	}
	if _, ok := ix.Find(9999, ir.IterVec{0, 0}); ok {
		t.Error("Find should miss for unknown body op")
	}
}
