package himap

import (
	"fmt"
	"himap/internal/diag"

	"himap/internal/ir"
	"himap/internal/systolic"
)

// fwdBodyOpBase is the encoding base for forwarding pseudo route nodes.
// Each distinct (producer body op, unit step) chain role gets a stable
// negative body-op identifier so unique-iteration signatures recognize
// equivalent relays across clusters.
const fwdBodyOpBase = 3000

// ApplyForwarding implements AddForwardingPath (Algorithm 1 lines 14-17):
// every DFG edge whose iteration distance maps to a multi-hop space-time
// offset under the systolic mapping is broken into a chain of single-hop
// steps through pseudo route nodes added to the intermediate iterations.
// It returns the original DFG unchanged when no dependence needs
// forwarding, or a rebuilt DFG otherwise. An error means the kernel has
// no valid replication-friendly systolic mapping (§V's Floyd-Warshall
// impossibility discussion).
func ApplyForwarding(d *ir.DFG, g *ir.ISDG, m *systolic.Mapping) (*ir.DFG, error) {
	needs := false
	for _, dv := range g.DistanceVectors() {
		switch m.Classify(dv) {
		case systolic.DepForward:
			needs = true
		case systolic.DepInvalid:
			return nil, fmt.Errorf("himap: dependence %v invalid under %v: %w", dv, m, diag.ErrSchemeInfeasible)
		}
	}
	if !needs {
		return d, nil
	}

	nd := ir.NewDFG(d.Block)
	idMap := make([]int, len(d.Nodes))
	for _, n := range d.Nodes {
		nn := nd.AddNode(ir.Node{
			Kind: n.Kind, Name: n.Name, BodyOp: n.BodyOp, Iter: n.Iter,
			Tensor: n.Tensor, Index: n.Index, Const: n.Const, HasConst: n.HasConst,
		})
		idMap[n.ID] = nn.ID
	}

	// Stable chain-role identifiers: (producer body op, unit step) → id.
	roleIDs := map[string]int{}
	roleOf := func(prodBodyOp int, e ir.IterVec) int {
		key := fmt.Sprintf("%d|%s", prodBodyOp, e.Key())
		id, ok := roleIDs[key]
		if !ok {
			id = -(fwdBodyOpBase + len(roleIDs))
			roleIDs[key] = id
		}
		return id
	}
	// Relay nodes already created: (producer node, step) → new node ID.
	relays := map[string]int{}

	for _, edge := range d.Edges {
		from, to := d.Nodes[edge.From], d.Nodes[edge.To]
		cf, ct := g.ClusterOf(edge.From), g.ClusterOf(edge.To)
		var dist ir.IterVec
		if cf != ct {
			dist = to.Iter.Sub(from.Iter)
		}
		if cf == ct || m.Classify(dist) != systolic.DepForward {
			nd.AddEdge(idMap[edge.From], idMap[edge.To], edge.ToPort)
			continue
		}
		e, steps, err := m.ForwardStep(dist)
		if err != nil {
			return nil, err
		}
		role := roleOf(from.BodyOp, e)
		prev := idMap[edge.From]
		for s := 1; s < steps; s++ {
			key := fmt.Sprintf("%d|%s|%d", edge.From, e.Key(), s)
			relay, ok := relays[key]
			if !ok {
				iter := from.Iter.Clone()
				for r := 0; r < s; r++ {
					iter = iter.Add(e)
				}
				rn := nd.AddNode(ir.Node{
					Kind:   ir.OpRoute,
					Name:   fmt.Sprintf("fwd.%s", from.Name),
					BodyOp: role,
					Iter:   iter,
				})
				relay = rn.ID
				relays[key] = relay
				nd.AddEdge(prev, relay, 0)
			}
			prev = relay
		}
		nd.AddEdge(prev, idMap[edge.To], edge.ToPort)
	}
	if err := nd.Validate(); err != nil {
		return nil, fmt.Errorf("himap: forwarding transform produced invalid DFG: %v: %w", err, diag.ErrSchemeInfeasible)
	}
	return nd, nil
}
