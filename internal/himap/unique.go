package himap

import (
	"fmt"
	"sort"

	"himap/internal/ir"
	"himap/internal/systolic"
)

// ClusterPlace holds the space-time positions CP of every iteration
// cluster on the VSA (Algorithm 1 line 11).
type ClusterPlace struct {
	Mapping *systolic.Mapping
	T, X, Y []int // indexed by cluster ID
}

// PlaceClusters applies the systolic mapping φ' to every ISDG cluster.
func PlaceClusters(g *ir.ISDG, m *systolic.Mapping) *ClusterPlace {
	cp := &ClusterPlace{
		Mapping: m,
		T:       make([]int, len(g.Clusters)),
		X:       make([]int, len(g.Clusters)),
		Y:       make([]int, len(g.Clusters)),
	}
	for _, c := range g.Clusters {
		t, x, y := m.Place(c.Iter)
		cp.T[c.ID], cp.X[c.ID], cp.Y[c.ID] = t, x, y
	}
	return cp
}

// UniqueClass groups iteration clusters that are identical in computation
// and routing: same body operations, same constants/tensors, and the same
// relative space-time placements of every dependency source and sink (§V,
// "Two IDFGs are the same if the relative placements of all input and
// output nodes of the IDFGs are the same").
type UniqueClass struct {
	Sig     string // hex of the 128-bit content hash (diagnostics only)
	Rep     int    // representative cluster ID (lowest)
	Members []int  // all cluster IDs, ascending
}

// IdentifyUnique computes the unique iteration classes of the placed ISDG
// (Algorithm 1 lines 18-20). The returned classes are ordered by
// representative cluster ID; byCluster maps every cluster to its class
// index.
//
// Cluster identity is decided by a 128-bit content hash over the same
// canonical facts the historical string signature rendered (node
// structure, constants, tensors, and the relative space-time and
// iteration offsets of cross-cluster edges) — two clusters land in one
// class iff their sorted part-hash multisets are equal, which matches
// string-signature grouping up to a ~2^-128 hash collision. The hash is
// computed into reused flat scratch, so the stage does no per-cluster
// string formatting.
func IdentifyUnique(g *ir.ISDG, cp *ClusterPlace) (classes []*UniqueClass, byCluster []int) {
	bySig := map[sigHash]*UniqueClass{}
	byCluster = make([]int, len(g.Clusters))
	var sc sigScratch
	for _, c := range g.Clusters {
		sig := clusterSignature(g, cp, c.ID, &sc)
		cl, ok := bySig[sig]
		if !ok {
			cl = &UniqueClass{Sig: fmt.Sprintf("%016x%016x", sig[0], sig[1]), Rep: c.ID}
			bySig[sig] = cl
			classes = append(classes, cl)
		}
		cl.Members = append(cl.Members, c.ID)
	}
	sort.SliceStable(classes, func(i, j int) bool { return classes[i].Rep < classes[j].Rep })
	for idx, cl := range classes {
		for _, m := range cl.Members {
			byCluster[m] = idx
		}
	}
	return classes, byCluster
}

// sigHash is the 128-bit cluster identity: two independently mixed
// 64-bit FNV-style lanes over the cluster's canonical fact stream.
type sigHash [2]uint64

const (
	fnvOffset  = 14695981039346656037
	fnvPrime   = 1099511628211
	mixOffset  = 0x2b992ddfa23249d6 // second-lane basis, decorrelated
	mixPremult = 0x9e3779b97f4a7c15 // odd multiplier applied to lane-2 input
)

// word folds one 64-bit value into both lanes.
func (h *sigHash) word(x uint64) {
	h[0] = (h[0] ^ x) * fnvPrime
	h[1] = (h[1] ^ (x * mixPremult)) * fnvPrime
}

// sint folds a signed field.
func (h *sigHash) sint(x int) { h.word(uint64(int64(x))) }

// str folds a string's length and bytes.
func (h *sigHash) str(s string) {
	h.word(uint64(len(s)))
	for i := 0; i < len(s); i++ {
		h.word(uint64(s[i]))
	}
}

// vec folds an iteration vector (length-prefixed, like str).
func (h *sigHash) vec(v ir.IterVec) {
	h.word(uint64(len(v)))
	for _, x := range v {
		h.sint(x)
	}
}

// sigScratch is the reusable working set of clusterSignature: the
// per-part hashes of the cluster being signed.
type sigScratch struct {
	parts []sigHash
}

// Part type tags, folded first into every part hash so structurally
// different facts with the same integer fields cannot merge.
const (
	partNode = iota + 1
	partInternalEdge
	partInput
	partOutput
)

// clusterSignature computes the canonical identity hash of a cluster:
// node structure, constants, memory tensors, and the space-time *and*
// iteration-space offsets of all cross-cluster edges. The iteration-space
// offsets are included so that replication can locate each member's
// corresponding producer/consumer nodes; they refine the paper's purely
// space-time criterion only in the degenerate case where two distinct
// iteration distances map to the same space-time offset.
//
// Each fact becomes one part hash; the sorted part hashes are chained
// into the final 128-bit signature, so part order (like the historical
// sorted-string join) does not matter.
func clusterSignature(g *ir.ISDG, cp *ClusterPlace, ci int, sc *sigScratch) sigHash {
	c := g.Clusters[ci]
	d := g.DFG
	sc.parts = sc.parts[:0]
	part := func() *sigHash {
		sc.parts = append(sc.parts, sigHash{fnvOffset, mixOffset})
		return &sc.parts[len(sc.parts)-1]
	}
	for _, id := range c.Nodes {
		n := d.Nodes[id]
		p := part()
		p.word(partNode)
		p.sint(n.BodyOp)
		p.sint(int(n.Kind))
		if n.Kind.IsMemory() {
			p.str(n.Tensor)
		}
		if n.HasConst {
			p.word(1)
			p.word(uint64(n.Const))
		}
		for _, ei := range d.InEdges(id) {
			e := d.Edges[ei]
			from := d.Nodes[e.From]
			fc := g.ClusterOf(e.From)
			if fc == ci {
				p := part()
				p.word(partInternalEdge)
				p.sint(from.BodyOp)
				p.sint(n.BodyOp)
				p.sint(e.ToPort)
				continue
			}
			p := part()
			p.word(partInput)
			p.sint(n.BodyOp)
			p.sint(e.ToPort)
			p.sint(from.BodyOp)
			p.sint(cp.T[fc] - cp.T[ci])
			p.sint(cp.X[fc] - cp.X[ci])
			p.sint(cp.Y[fc] - cp.Y[ci])
			p.vec(from.Iter.Sub(c.Iter))
		}
		for _, ei := range d.OutEdges(id) {
			e := d.Edges[ei]
			to := d.Nodes[e.To]
			tc := g.ClusterOf(e.To)
			if tc == ci {
				continue
			}
			p := part()
			p.word(partOutput)
			p.sint(n.BodyOp)
			p.sint(to.BodyOp)
			p.sint(e.ToPort)
			p.sint(cp.T[tc] - cp.T[ci])
			p.sint(cp.X[tc] - cp.X[ci])
			p.sint(cp.Y[tc] - cp.Y[ci])
			p.vec(to.Iter.Sub(c.Iter))
		}
	}
	sort.Slice(sc.parts, func(i, j int) bool {
		a, b := sc.parts[i], sc.parts[j]
		if a[0] != b[0] {
			return a[0] < b[0]
		}
		return a[1] < b[1]
	})
	sig := sigHash{fnvOffset, mixOffset}
	for _, p := range sc.parts {
		sig.word(p[0])
		sig.word(p[1])
	}
	return sig
}

// nodeIndex locates cluster-member nodes by (body op, iteration),
// supporting the translation of canonical routes onto class members.
// Keys pack the body op and the iteration's lexicographic rank into one
// integer — replication performs millions of lookups on large blocks.
type nodeIndex struct {
	g     *ir.ISDG
	block []int
	at    map[int64]int
}

const bodyOpBias = 1 << 20 // body ops are small (possibly negative) ints

func buildNodeIndex(g *ir.ISDG) *nodeIndex {
	ix := &nodeIndex{
		g:     g,
		block: g.DFG.Block,
		at:    make(map[int64]int, len(g.DFG.Nodes)),
	}
	for _, n := range g.DFG.Nodes {
		ix.at[ix.key(n.BodyOp, n.Iter)] = n.ID
	}
	return ix
}

func (ix *nodeIndex) key(bodyOp int, iter ir.IterVec) int64 {
	return int64(bodyOp+bodyOpBias)<<32 | int64(ir.PointIndex(iter, ix.block))
}

// Find returns the node with the given body op at the given iteration.
func (ix *nodeIndex) Find(bodyOp int, iter ir.IterVec) (int, bool) {
	if !iter.InBox(ix.block) {
		return 0, false
	}
	id, ok := ix.at[ix.key(bodyOp, iter)]
	return id, ok
}
