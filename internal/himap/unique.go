package himap

import (
	"fmt"
	"sort"
	"strings"

	"himap/internal/ir"
	"himap/internal/systolic"
)

// ClusterPlace holds the space-time positions CP of every iteration
// cluster on the VSA (Algorithm 1 line 11).
type ClusterPlace struct {
	Mapping *systolic.Mapping
	T, X, Y []int // indexed by cluster ID
}

// PlaceClusters applies the systolic mapping φ' to every ISDG cluster.
func PlaceClusters(g *ir.ISDG, m *systolic.Mapping) *ClusterPlace {
	cp := &ClusterPlace{
		Mapping: m,
		T:       make([]int, len(g.Clusters)),
		X:       make([]int, len(g.Clusters)),
		Y:       make([]int, len(g.Clusters)),
	}
	for _, c := range g.Clusters {
		t, x, y := m.Place(c.Iter)
		cp.T[c.ID], cp.X[c.ID], cp.Y[c.ID] = t, x, y
	}
	return cp
}

// UniqueClass groups iteration clusters that are identical in computation
// and routing: same body operations, same constants/tensors, and the same
// relative space-time placements of every dependency source and sink (§V,
// "Two IDFGs are the same if the relative placements of all input and
// output nodes of the IDFGs are the same").
type UniqueClass struct {
	Sig     string
	Rep     int   // representative cluster ID (lowest)
	Members []int // all cluster IDs, ascending
}

// IdentifyUnique computes the unique iteration classes of the placed ISDG
// (Algorithm 1 lines 18-20). The returned classes are ordered by
// representative cluster ID; byCluster maps every cluster to its class
// index.
func IdentifyUnique(g *ir.ISDG, cp *ClusterPlace) (classes []*UniqueClass, byCluster []int) {
	bySig := map[string]*UniqueClass{}
	byCluster = make([]int, len(g.Clusters))
	for _, c := range g.Clusters {
		sig := clusterSignature(g, cp, c.ID)
		cl, ok := bySig[sig]
		if !ok {
			cl = &UniqueClass{Sig: sig, Rep: c.ID}
			bySig[sig] = cl
			classes = append(classes, cl)
		}
		cl.Members = append(cl.Members, c.ID)
	}
	sort.SliceStable(classes, func(i, j int) bool { return classes[i].Rep < classes[j].Rep })
	for idx, cl := range classes {
		for _, m := range cl.Members {
			byCluster[m] = idx
		}
	}
	return classes, byCluster
}

// clusterSignature renders the canonical identity string of a cluster:
// node structure, constants, memory tensors, and the space-time *and*
// iteration-space offsets of all cross-cluster edges. The iteration-space
// offsets are included so that replication can locate each member's
// corresponding producer/consumer nodes; they refine the paper's purely
// space-time criterion only in the degenerate case where two distinct
// iteration distances map to the same space-time offset.
func clusterSignature(g *ir.ISDG, cp *ClusterPlace, ci int) string {
	c := g.Clusters[ci]
	d := g.DFG
	var parts []string
	for _, id := range c.Nodes {
		n := d.Nodes[id]
		tag := fmt.Sprintf("N:%d:%d", n.BodyOp, n.Kind)
		if n.Kind.IsMemory() {
			tag += ":" + n.Tensor
		}
		if n.HasConst {
			tag += fmt.Sprintf(":c%d", n.Const)
		}
		parts = append(parts, tag)
		for _, ei := range d.InEdges(id) {
			e := d.Edges[ei]
			from := d.Nodes[e.From]
			fc := g.ClusterOf(e.From)
			if fc == ci {
				parts = append(parts, fmt.Sprintf("E:%d>%d.%d", from.BodyOp, n.BodyOp, e.ToPort))
				continue
			}
			dt := cp.T[fc] - cp.T[ci]
			dx := cp.X[fc] - cp.X[ci]
			dy := cp.Y[fc] - cp.Y[ci]
			di := from.Iter.Sub(c.Iter)
			parts = append(parts, fmt.Sprintf("I:%d.%d<%d@%d,%d,%d@%s", n.BodyOp, e.ToPort, from.BodyOp, dt, dx, dy, di.Key()))
		}
		for _, ei := range d.OutEdges(id) {
			e := d.Edges[ei]
			to := d.Nodes[e.To]
			tc := g.ClusterOf(e.To)
			if tc == ci {
				continue
			}
			dt := cp.T[tc] - cp.T[ci]
			dx := cp.X[tc] - cp.X[ci]
			dy := cp.Y[tc] - cp.Y[ci]
			di := to.Iter.Sub(c.Iter)
			parts = append(parts, fmt.Sprintf("O:%d>%d.%d@%d,%d,%d@%s", n.BodyOp, to.BodyOp, e.ToPort, dt, dx, dy, di.Key()))
		}
	}
	sort.Strings(parts)
	return strings.Join(parts, ";")
}

// nodeIndex locates cluster-member nodes by (body op, iteration),
// supporting the translation of canonical routes onto class members.
// Keys pack the body op and the iteration's lexicographic rank into one
// integer — replication performs millions of lookups on large blocks.
type nodeIndex struct {
	g     *ir.ISDG
	block []int
	at    map[int64]int
}

const bodyOpBias = 1 << 20 // body ops are small (possibly negative) ints

func buildNodeIndex(g *ir.ISDG) *nodeIndex {
	ix := &nodeIndex{
		g:     g,
		block: g.DFG.Block,
		at:    make(map[int64]int, len(g.DFG.Nodes)),
	}
	for _, n := range g.DFG.Nodes {
		ix.at[ix.key(n.BodyOp, n.Iter)] = n.ID
	}
	return ix
}

func (ix *nodeIndex) key(bodyOp int, iter ir.IterVec) int64 {
	return int64(bodyOp+bodyOpBias)<<32 | int64(ir.PointIndex(iter, ix.block))
}

// Find returns the node with the given body op at the given iteration.
func (ix *nodeIndex) Find(bodyOp int, iter ir.IterVec) (int, bool) {
	if !iter.InBox(ix.block) {
		return 0, false
	}
	id, ok := ix.at[ix.key(bodyOp, iter)]
	return id, ok
}
