package himap

import (
	"testing"

	"himap/internal/arch"
	"himap/internal/ir"
	"himap/internal/kernel"
)

func TestMapIDFGAllKernels(t *testing.T) {
	// §VI quotes the sub-CGRA shapes HiMap found; our MAP must at least
	// reach the same utilization frontier: 100% candidates exist for all
	// kernels given our memory-port model.
	for _, k := range kernel.Evaluation() {
		f, err := k.GenericIDFG()
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		maps, err := MapIDFG(f, arch.DefaultFabric(8, 8), 2)
		if err != nil {
			t.Fatal(err)
		}
		if len(maps) == 0 {
			t.Errorf("%s: no sub-CGRA mappings", k.Name)
			continue
		}
		best := maps[0]
		if best.Util < 1.0-1e-9 {
			t.Errorf("%s: best sub-CGRA utilization %.0f%%, want 100%%", k.Name, best.Util*100)
		}
		// The minimal depth equals the compute-op count for 1x1 shapes.
		if best.S1 == 1 && best.S2 == 1 && best.Depth != k.NumComputeOps() {
			t.Errorf("%s: 1x1 depth %d, want %d", k.Name, best.Depth, k.NumComputeOps())
		}
	}
}

func TestMapIDFGSortedByUtilization(t *testing.T) {
	f, err := kernel.BICG().GenericIDFG()
	if err != nil {
		t.Fatal(err)
	}
	maps, err := MapIDFG(f, arch.DefaultFabric(8, 8), 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(maps); i++ {
		if maps[i].Util > maps[i-1].Util+1e-9 {
			t.Errorf("mappings not sorted: %v before %v", maps[i-1], maps[i])
		}
	}
}

func TestMapIDFGShapesDivideArray(t *testing.T) {
	f, err := kernel.GEMM().GenericIDFG()
	if err != nil {
		t.Fatal(err)
	}
	maps, err := MapIDFG(f, arch.DefaultFabric(6, 6), 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range maps {
		if 6%m.S1 != 0 || 6%m.S2 != 0 {
			t.Errorf("sub-CGRA %v does not evenly cluster a 6x6 array", m)
		}
	}
}

func TestMapIDFGRelPlacementsInBounds(t *testing.T) {
	for _, k := range kernel.Evaluation() {
		f, err := k.GenericIDFG()
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mustMapIDFG(t, f, arch.DefaultFabric(4, 4), 2) {
			for bodyOp, rel := range m.Rel {
				if rel.T < 0 || rel.T >= m.Depth || rel.R < 0 || rel.R >= m.S1 || rel.C < 0 || rel.C >= m.S2 {
					t.Errorf("%s: body op %d placed at %+v outside (%d,%d,%d)",
						k.Name, bodyOp, rel, m.S1, m.S2, m.Depth)
				}
			}
		}
	}
}

func TestMapIDFGPlacesAllComputesAndLoads(t *testing.T) {
	k := kernel.BICG()
	f, err := k.GenericIDFG()
	if err != nil {
		t.Fatal(err)
	}
	maps, err := MapIDFG(f, arch.DefaultFabric(8, 8), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(maps) == 0 {
		t.Fatal("no mappings")
	}
	m := maps[0]
	nFU, nMem := 0, 0
	for _, rel := range m.Rel {
		switch rel.Kind {
		case PlaceFU:
			nFU++
		case PlaceMemRead:
			nMem++
		}
	}
	if nFU != 4 {
		t.Errorf("placed %d compute ops, want 4", nFU)
	}
	// Interior BiCG iteration loads A twice (for m1 and m2).
	if nMem != 2 {
		t.Errorf("placed %d loads, want 2", nMem)
	}
}

func TestMapIDFGDepthSlackYieldsFallbacks(t *testing.T) {
	f, err := kernel.GEMM().GenericIDFG()
	if err != nil {
		t.Fatal(err)
	}
	noSlack := mustMapIDFG(t, f, arch.DefaultFabric(4, 4), 0)
	slack := mustMapIDFG(t, f, arch.DefaultFabric(4, 4), 3)
	if len(slack) <= len(noSlack) {
		t.Errorf("depth slack should add fallback mappings: %d vs %d", len(slack), len(noSlack))
	}
}

// mustMapIDFG is a test helper asserting MapIDFG succeeds.
func mustMapIDFG(t *testing.T, f *ir.IDFG, fab arch.Fabric, slack int) []*SubMapping {
	t.Helper()
	subs, err := MapIDFG(f, fab, slack)
	if err != nil {
		t.Fatal(err)
	}
	return subs
}
