package himap

import (
	"testing"

	"himap/internal/arch"
	"himap/internal/ir"
	"himap/internal/kernel"
	"himap/internal/mrrg"
	"himap/internal/systolic"
)

// buildLayout compiles the front half of the pipeline (through unique
// identification) for white-box tests of step 3's geometry.
func buildLayout(t *testing.T, k *kernel.Kernel, cg arch.Fabric, block []int, sch systolic.Scheme, sub *SubMapping) *layout {
	t.Helper()
	_, isdg, err := k.BuildISDG(block)
	if err != nil {
		t.Fatal(err)
	}
	m := sch.Realize(block)
	if err := m.Validate(k.DistanceVectors()); err != nil {
		t.Fatal(err)
	}
	cp := PlaceClusters(isdg, m)
	classes, byClust := IdentifyUnique(isdg, cp)
	return &layout{
		cg: cg, g: isdg, cp: cp, sub: sub,
		iib:     sub.Depth * m.IIS,
		classes: classes, byClust: byClust,
		ix: buildNodeIndex(isdg),
	}
}

func bicgLayout(t *testing.T) *layout {
	k := kernel.BICG()
	f, err := k.GenericIDFG()
	if err != nil {
		t.Fatal(err)
	}
	cg := arch.DefaultFabric(4, 4)
	subs, err := MapIDFG(f, cg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) == 0 {
		t.Fatal("no submapping")
	}
	sch := systolic.Scheme{SpaceDims: []int{0, 1}, TimePerm: nil, Skew: []int{1, 1}}
	return buildLayout(t, k, cg, []int{4, 4}, sch, subs[0])
}

func TestClassEnvelopeCoversAllMembers(t *testing.T) {
	l := bicgLayout(t)
	for _, cl := range l.classes {
		rMin, rMax, cMin, cMax := l.classEnvelope(cl)
		_, br, bc := l.regionBase(cl.Rep)
		for _, m := range cl.Members {
			_, mr, mc := l.regionBase(m)
			dr, dc := mr-br, mc-bc
			// Every envelope corner must stay on-array under this member's
			// translation.
			for _, r := range []int{rMin, rMax} {
				for _, c := range []int{cMin, cMax} {
					if r > rMax || c > cMax {
						continue
					}
					if !l.cg.InBounds(r+dr, c+dc) {
						t.Fatalf("envelope corner (%d,%d) of class %v leaves the array for member %v",
							r, c, l.g.Clusters[cl.Rep].Iter, l.g.Clusters[m].Iter)
					}
				}
			}
		}
	}
}

func TestClassEnvelopeSingletonIsWholeArray(t *testing.T) {
	l := bicgLayout(t)
	// The corner class (0,0) is a singleton: its envelope is the array.
	for _, cl := range l.classes {
		if len(cl.Members) == 1 {
			rMin, rMax, cMin, cMax := l.classEnvelope(cl)
			if rMin != 0 || cMin != 0 || rMax != l.cg.Rows-1 || cMax != l.cg.Cols-1 {
				t.Errorf("singleton envelope = (%d..%d, %d..%d)", rMin, rMax, cMin, cMax)
			}
			return
		}
	}
	t.Fatal("no singleton class found")
}

func TestRegionBaseFormula(t *testing.T) {
	l := bicgLayout(t)
	for _, c := range l.g.Clusters {
		bt, br, bc := l.regionBase(c.ID)
		if bt != l.cp.T[c.ID]*l.sub.Depth || br != l.cp.X[c.ID]*l.sub.S1 || bc != l.cp.Y[c.ID]*l.sub.S2 {
			t.Fatalf("regionBase(%v) = (%d,%d,%d)", c.Iter, bt, br, bc)
		}
	}
}

func TestNodeAbsWithinRegion(t *testing.T) {
	l := bicgLayout(t)
	for _, n := range l.g.DFG.Nodes {
		abs, ok := l.nodeAbs(n.ID)
		if !ok {
			continue
		}
		ci := l.g.ClusterOf(n.ID)
		bt, br, bc := l.regionBase(ci)
		if abs.T < bt || abs.T >= bt+l.sub.Depth {
			t.Fatalf("node %v at t=%d outside window [%d,%d)", n, abs.T, bt, bt+l.sub.Depth)
		}
		if abs.R < br || abs.R >= br+l.sub.S1 || abs.C < bc || abs.C >= bc+l.sub.S2 {
			t.Fatalf("node %v at (%d,%d) outside region", n, abs.R, abs.C)
		}
	}
}

func TestChoosePinKinds(t *testing.T) {
	l := bicgLayout(t)
	l.computePins()
	// BiCG's route ops: r propagates along j (east), p along i (south).
	// Interior classes must get producer-side Out pins; boundary classes
	// whose route is fed by a load get transparent memory pins.
	sawOut, sawMem := false, false
	for idx := range l.classes {
		for _, pin := range l.pinRel[idx] {
			if pin.Out {
				sawOut = true
				if pin.Dir != arch.East && pin.Dir != arch.South {
					t.Errorf("unexpected pin direction %v for BiCG", pin.Dir)
				}
			}
			if pin.Mem {
				sawMem = true
			}
		}
	}
	if !sawOut {
		t.Error("no crossbar pins chosen for interior relays")
	}
	if !sawMem {
		t.Error("no transparent memory pins chosen for boundary relays")
	}
}

func TestPinAbsResolvesForEveryRouteNode(t *testing.T) {
	l := bicgLayout(t)
	l.computePins()
	l.loadRel = make([]map[int]RelPlace, len(l.classes))
	for i := range l.loadRel {
		l.loadRel[i] = map[int]RelPlace{}
	}
	for _, n := range l.g.DFG.Nodes {
		if n.Kind != ir.OpRoute {
			continue
		}
		pin, ok := l.pinAbs(n.ID)
		if !ok {
			// Mem pins of boundary loads resolve only after load slotting;
			// accept unresolved only for those.
			ci := l.g.ClusterOf(n.ID)
			pr := l.pinRel[l.byClust[ci]][n.BodyOp]
			if !pr.Mem {
				t.Fatalf("route %v has no resolvable pin", n)
			}
			continue
		}
		if pin.Class != mrrg.ClassOut && pin.Class != mrrg.ClassReg && pin.Class != mrrg.ClassMemRead {
			t.Fatalf("pin %v has unexpected class", pin)
		}
	}
}

func TestFloorDivAndWrap(t *testing.T) {
	cases := []struct{ t, m, wantW, wantD int }{
		{0, 8, 0, 0}, {7, 8, 7, 0}, {8, 8, 0, 1}, {-1, 8, 7, -1}, {-9, 8, 7, -2}, {17, 8, 1, 2},
	}
	for _, c := range cases {
		if got := wrapMod(c.t, c.m); got != c.wantW {
			t.Errorf("wrapMod(%d,%d) = %d, want %d", c.t, c.m, got, c.wantW)
		}
		if got := floorDiv(c.t, c.m); got != c.wantD {
			t.Errorf("floorDiv(%d,%d) = %d, want %d", c.t, c.m, got, c.wantD)
		}
	}
}
