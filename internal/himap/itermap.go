package himap

import (
	"fmt"
	"strings"
)

// IterationMap renders the Figure-2-style schedule view: for every cycle
// of one block's steady-state window and every PE, the ID of the unique
// iteration class whose cluster region occupies that space-time slot.
// Identical numbers mark iterations whose computation AND routing are
// replicas of each other — the few the compiler actually mapped in detail.
func (r *Result) IterationMap() string {
	depth, s1, s2 := r.Sub.Depth, r.Sub.S1, r.Sub.S2
	// classAt[t][row][col] for one II_B window.
	classAt := make([][][]int, r.IIB)
	for t := range classAt {
		classAt[t] = make([][]int, r.CGRA.Rows)
		for row := range classAt[t] {
			classAt[t][row] = make([]int, r.CGRA.Cols)
			for col := range classAt[t][row] {
				classAt[t][row][col] = -1
			}
		}
	}
	for _, c := range r.ISDG.Clusters {
		base := r.CP.T[c.ID] * depth
		pr := r.CP.X[c.ID] * s1
		pc := r.CP.Y[c.ID] * s2
		cls := r.ByCluster[c.ID]
		for dt := 0; dt < depth; dt++ {
			t := ((base+dt)%r.IIB + r.IIB) % r.IIB
			for dr := 0; dr < s1; dr++ {
				for dc := 0; dc < s2; dc++ {
					classAt[t][pr+dr][pc+dc] = cls
				}
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "unique-iteration schedule (%d classes, II_B = %d):\n", len(r.Classes), r.IIB)
	for t := 0; t < r.IIB; t++ {
		fmt.Fprintf(&b, "t%-3d ", t)
		for row := 0; row < r.CGRA.Rows; row++ {
			if row > 0 {
				b.WriteString("     ")
			}
			for col := 0; col < r.CGRA.Cols; col++ {
				if cls := classAt[t][row][col]; cls >= 0 {
					fmt.Fprintf(&b, "%3d ", cls)
				} else {
					b.WriteString("  . ")
				}
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}
