package himap

import (
	"context"
	"fmt"
	"sort"

	"himap/internal/arch"
	"himap/internal/diag"
	"himap/internal/ir"
	"himap/internal/mrrg"
	"himap/internal/par"
	"himap/internal/route"
)

// layout bundles everything step 3 needs: the placed ISDG, the sub-CGRA
// mapping, and the derived geometry.
type layout struct {
	cg      arch.Fabric
	g       *ir.ISDG
	cp      *ClusterPlace
	sub     *SubMapping
	iib     int
	classes []*UniqueClass
	byClust []int
	ix      *nodeIndex

	// pinRel[classIdx][bodyOp] is the region-relative relay resource
	// pinned for a route node (deterministic, so replication is
	// self-consistent even for chains within one class).
	pinRel []map[int]RelPlaceReg
	// loadRel[classIdx][bodyOp] holds the chosen memory-read slots of
	// boundary loads (loads absent from the generic IDFG).
	loadRel []map[int]RelPlace
	// policy is the relay-pin ablation knob (see Options.RelayPolicy).
	policy RelayPolicy
	// workers bounds route-round parallelism: waves of provably
	// independent nets (disjoint wrapped-cycle footprints) route
	// concurrently. <= 1 executes the historical sequential loop.
	workers int
	// incremental keeps congestion-free classes across negotiated-
	// congestion rounds instead of re-routing every net (incremental
	// PathFinder; see Options.IncrementalRoute).
	incremental bool
	// legacy selects the pre-A* Dijkstra router core (differential
	// testing only; see route.Session.Legacy).
	legacy bool
	// costModel, when non-nil, overrides the fabric-derived congestion
	// pricing (differential testing only; see Options.costModel).
	costModel route.CostModel
	// waveScratch holds one router search Scratch per wave position, so
	// concurrent searches never share working memory.
	waveScratch []*route.Scratch

	// pendBuf/sinkBuf/tgtBuf are arenas reused across every
	// buildClassNets call (one class per call, many calls per congestion
	// round): pending nets, their sinks, and the sink target sets.
	// Sinks and targets are addressed by [lo, hi) index ranges into the
	// shared arenas rather than subslices, so arena growth during
	// construction cannot strand earlier entries on stale backing
	// arrays. All three are append-only while a class routes, so wave
	// workers read them concurrently without synchronization.
	pendBuf []pendingNet
	sinkBuf []pendingSink
	tgtBuf  []mrrg.Node
}

// RelPlaceReg is a region-relative relay resource for route pins: either
// a register of the anchor PE (Out false) or an output register of a
// neighboring PE pointed at the anchor (Out true) — the classic systolic
// in→out crossbar forwarding, which costs no RF ports.
type RelPlaceReg struct {
	T, R, C int
	Reg     uint8
	Out     bool
	Dir     arch.Dir
	// Mem marks a transparent pin: the route node's producer is a load in
	// the same cluster, so the value is available at the load's memory
	// read port (which can feed the ALU and the crossbar directly, with no
	// RF traffic). T/R/C then hold only the anchor used for load slotting.
	Mem bool
}

// regionBase returns the absolute origin of a cluster's space-time
// region: (CP.t × depth, CP.x × s1, CP.y × s2) — the placement formula of
// Algorithm 1 line 13 (the modulo-II_B wrap is applied at stamping).
func (l *layout) regionBase(ci int) (t, r, c int) {
	return l.cp.T[ci] * l.sub.Depth, l.cp.X[ci] * l.sub.S1, l.cp.Y[ci] * l.sub.S2
}

// nodeAbs returns the absolute placement of a node whose body op was
// placed by MAP (computes and generic loads).
func (l *layout) nodeAbs(id int) (mrrg.Node, bool) {
	n := l.g.DFG.Nodes[id]
	rel, ok := l.sub.Rel[n.BodyOp]
	if !ok {
		return mrrg.Node{}, false
	}
	bt, br, bc := l.regionBase(l.g.ClusterOf(id))
	cl := mrrg.ClassFU
	if rel.Kind == PlaceMemRead {
		cl = mrrg.ClassMemRead
	}
	return mrrg.Node{T: bt + rel.T, R: br + rel.R, C: bc + rel.C, Class: cl}, true
}

// loadAbs returns the absolute memory-read slot of a boundary load.
func (l *layout) loadAbs(id int) (mrrg.Node, bool) {
	ci := l.g.ClusterOf(id)
	rel, ok := l.loadRel[l.byClust[ci]][l.g.DFG.Nodes[id].BodyOp]
	if !ok {
		return mrrg.Node{}, false
	}
	bt, br, bc := l.regionBase(ci)
	return mrrg.Node{T: bt + rel.T, R: br + rel.R, C: bc + rel.C, Class: mrrg.ClassMemRead}, true
}

// pinAbs returns the absolute pinned relay resource of a route node.
func (l *layout) pinAbs(id int) (mrrg.Node, bool) {
	ci := l.g.ClusterOf(id)
	pin, ok := l.pinRel[l.byClust[ci]][l.g.DFG.Nodes[id].BodyOp]
	if !ok {
		return mrrg.Node{}, false
	}
	if pin.Mem {
		// Resolve the producing load of this route instance.
		ins := l.g.DFG.InEdges(id)
		if len(ins) == 0 {
			return mrrg.Node{}, false
		}
		prod := l.g.DFG.Edges[ins[0]].From
		if abs, ok := l.nodeAbs(prod); ok {
			return abs, true
		}
		return l.loadAbs(prod)
	}
	bt, br, bc := l.regionBase(ci)
	// Crossbar pins of clusters at the array edge reach across a wrap
	// link on a torus; fold the coordinate so routing targets the real PE.
	pr, pc := l.cg.WrapCoord(br+pin.R, bc+pin.C)
	if pin.Out {
		return mrrg.Node{T: bt + pin.T, R: pr, C: pc, Class: mrrg.ClassOut, Idx: uint8(pin.Dir)}, true
	}
	return mrrg.Node{T: bt + pin.T, R: pr, C: pc, Class: mrrg.ClassReg, Idx: pin.Reg}, true
}

// computePins chooses the relay register of every route node class:
// anchored at its first placed intra-cluster consumer (or the region
// origin), with a register index rotating over the cluster's route ops.
func (l *layout) computePins() {
	l.pinRel = make([]map[int]RelPlaceReg, len(l.classes))
	for idx, cl := range l.classes {
		pins := map[int]RelPlaceReg{}
		rep := l.g.Clusters[cl.Rep]
		// Stable ordering of route body ops within the cluster.
		var routeOps []int
		seen := map[int]bool{}
		for _, id := range rep.Nodes {
			n := l.g.DFG.Nodes[id]
			if n.Kind == ir.OpRoute && !seen[n.BodyOp] {
				seen[n.BodyOp] = true
				routeOps = append(routeOps, n.BodyOp)
			}
		}
		sort.Ints(routeOps)
		regOf := map[int]uint8{}
		for i, bo := range routeOps {
			regOf[bo] = uint8(i % l.cg.NumRegs)
		}
		for _, id := range rep.Nodes {
			n := l.g.DFG.Nodes[id]
			if n.Kind != ir.OpRoute {
				continue
			}
			if _, done := pins[n.BodyOp]; done {
				continue
			}
			// Anchor: earliest placed consumer within this cluster.
			anchor := RelPlace{T: 0, R: 0, C: 0}
			found := false
			for _, ei := range l.g.DFG.OutEdges(id) {
				to := l.g.DFG.Edges[ei].To
				if l.g.ClusterOf(to) != rep.ID {
					continue
				}
				if rel, ok := l.sub.Rel[l.g.DFG.Nodes[to].BodyOp]; ok {
					if !found || rel.T < anchor.T {
						anchor = rel
						found = true
					}
				}
			}
			pins[n.BodyOp] = l.choosePin(rep, id, anchor, regOf[n.BodyOp])
		}
		l.pinRel[idx] = pins
	}
}

// choosePin selects the relay resource of a route node: when its value
// arrives from another PE, the producer-side output register pointed at
// the anchor (crossbar forwarding, no RF traffic — the classic systolic
// dataflow); otherwise a register of the anchor PE.
func (l *layout) choosePin(rep *ir.Cluster, id int, anchor RelPlace, reg uint8) RelPlaceReg {
	regPin := RelPlaceReg{T: anchor.T, R: anchor.R, C: anchor.C, Reg: reg}
	if l.policy == RelayRegistersOnly {
		return regPin
	}
	ins := l.g.DFG.InEdges(id)
	if len(ins) == 0 {
		return regPin
	}
	prod := l.g.DFG.Edges[ins[0]].From
	pc := l.g.ClusterOf(prod)
	if pc == rep.ID {
		if l.g.DFG.Nodes[prod].Kind == ir.OpLoad {
			// Transparent pin: relay straight off the memory read port.
			return RelPlaceReg{T: anchor.T, R: anchor.R, C: anchor.C, Mem: true}
		}
		return regPin
	}
	dxr := l.cp.X[pc] - l.cp.X[rep.ID]
	dyr := l.cp.Y[pc] - l.cp.Y[rep.ID]
	nR, nC := anchor.R, anchor.C
	var dir arch.Dir
	switch {
	case dxr < 0:
		nR, dir = anchor.R-1, arch.South
	case dxr > 0:
		nR, dir = anchor.R+1, arch.North
	case dyr < 0:
		nC, dir = anchor.C-1, arch.East
	case dyr > 0:
		nC, dir = anchor.C+1, arch.West
	default:
		return regPin // same-PE time dependence: hold in the RF
	}
	// The neighbor must exist on the array for the representative (and by
	// signature equality, for every member). On a wrap-around topology
	// every translated neighbor exists, so only bounded fabrics bail out.
	_, br, bc := l.regionBase(rep.ID)
	if !l.cg.Topology.Wraps() && !l.cg.InBounds(br+nR, bc+nC) {
		return regPin
	}
	return RelPlaceReg{T: anchor.T - 1, R: nR, C: nC, Out: true, Dir: dir}
}

// canonSink is one sink of a canonical net, with everything replication
// needs to translate it onto a class member.
type canonSink struct {
	ConsumerBody  int
	ConsumerDIter ir.IterVec // consumer.Iter - source-cluster rep.Iter
	Port          int
	Kind          ir.OpKind
	Path          route.Path
}

// canonNet is one canonically-routed signal of a class representative.
type canonNet struct {
	SrcID    int // DFG node ID in the rep cluster
	SrcBody  int
	SrcDIter ir.IterVec // source.Iter - rep.Iter (zero: source in rep)
	Src      mrrg.Node
	Sinks    []canonSink
	net      *route.Net
}

// RouteStats reports step-3 effort, demonstrating the block-size
// independence of the canonical routing work.
type RouteStats struct {
	UniqueIters   int
	CanonicalNets int
	Rounds        int
	// KeptClasses counts class plans carried over between rounds by
	// incremental re-route (always 0 when IncrementalRoute is off).
	KeptClasses int
}

// routeCanonical performs Algorithm 1 lines 21-27: routes the minimal
// DFG — one canonical net per (unique class, producer op) — under
// negotiated congestion, returning the per-class net plans that the
// replicate stage stamps onto every cluster. Cancellation is polled
// once per negotiation round: a canceled ctx aborts with an error
// wrapping diag.ErrCanceled within one round's latency.
func (l *layout) routeCanonical(ctx context.Context, maxRounds int) ([][]canonNet, RouteStats, error) {
	g := mrrg.New(l.cg, l.iib)
	ses := route.NewSession(g)
	ses.Legacy = l.legacy
	stats := RouteStats{UniqueIters: len(l.classes)}
	if l.costModel != nil {
		if err := ses.SetCostModel(l.costModel); err != nil {
			return nil, stats, err
		}
	}
	// Provable-infeasibility pre-check: on bandwidth-constrained fabrics,
	// forced link departures of the placed schedule are counted against
	// the fabric's lanes before any congestion negotiation is attempted.
	if err := l.checkBandwidth(); err != nil {
		return nil, stats, err
	}
	l.computePins()
	l.loadRel = make([]map[int]RelPlace, len(l.classes))
	for i := range l.loadRel {
		l.loadRel[i] = map[int]RelPlace{}
	}

	var plans [][]canonNet
	var prevPlans [][]canonNet // last failed round's plans (aligned prefix)
	var allNets []*route.Net
	var roundErr error
	for round := 0; round < maxRounds; round++ {
		if err := ctx.Err(); err != nil {
			return nil, stats, fmt.Errorf("himap: %w: %v", diag.ErrCanceled, err)
		}
		stats.Rounds = round + 1
		// Incremental re-route: decide — against the occupancy the failed
		// round left behind, before it is reset — which classes can keep
		// their plans: every resource of every net, under every member's
		// translation (plus the members' boundary-load slots), must be
		// within capacity. Classes touching congestion re-route against
		// the bumped history, exactly as PathFinder negotiates.
		var keep []bool
		if l.incremental && len(prevPlans) > 0 {
			keep = make([]bool, len(l.classes))
			for ci, cl := range l.classes {
				keep[ci] = ci < len(prevPlans) && l.classClean(ses, g, ci, cl, prevPlans[ci])
			}
		}
		ses.ResetKeepHistory()
		for i := range l.loadRel {
			if keep == nil || !keep[i] {
				l.loadRel[i] = map[int]RelPlace{}
			}
		}
		if l.incremental {
			plans = nil // prevPlans aliases the old backing array
		} else {
			// Without incremental keep, nothing references a dropped
			// round's nets once its history is bumped — recycle their
			// storage so later rounds re-route allocation-free.
			for _, nets := range plans {
				for i := range nets {
					ses.FreeNet(nets[i].net)
				}
			}
			plans = plans[:0]
		}
		roundErr = nil

		// Reserve every cluster's fixed placements (FUs and generic loads).
		for _, n := range l.g.DFG.Nodes {
			if abs, ok := l.nodeAbs(n.ID); ok {
				ses.Reserve(abs)
			}
		}

		allNets = allNets[:0]
		for classIdx, cl := range l.classes {
			rep := cl.Rep
			bt, br, bc := l.regionBase(rep)
			var nets []canonNet
			if keep != nil && keep[classIdx] {
				// Re-apply the kept plan's charges verbatim: the canonical
				// nets and the representative's boundary-load slots.
				nets = prevPlans[classIdx]
				for i := range nets {
					ses.Recharge(nets[i].net)
				}
				for _, lr := range l.loadRel[classIdx] {
					ses.Reserve(mrrg.Node{T: bt + lr.T, R: br + lr.R, C: bc + lr.C, Class: mrrg.ClassMemRead})
				}
				stats.KeptClasses++
			} else {
				var err error
				nets, err = l.routeClass(ses, g, classIdx, cl)
				if err != nil {
					roundErr = fmt.Errorf("class %d (rep %v): %w", classIdx, l.g.Clusters[cl.Rep].Iter, err)
					break
				}
			}
			plans = append(plans, nets)
			for i := range nets {
				allNets = append(allNets, nets[i].net)
			}
			// Charge the replicas of this class (routes and boundary-load
			// slots) so later classes see the real congestion.
			for _, m := range cl.Members {
				if m == rep {
					continue
				}
				mt, mr, mc := l.regionBase(m)
				dt, dr, dc := mt-bt, mr-br, mc-bc
				for i := range nets {
					ses.ChargeShifted(nets[i].net, dt, dr, dc)
				}
				for _, lr := range l.loadRel[classIdx] {
					ses.Reserve(mrrg.Node{T: mt + lr.T, R: mr + lr.R, C: mc + lr.C, Class: mrrg.ClassMemRead})
				}
			}
		}
		if roundErr != nil {
			// Escalate costs where the failure occurred and retry.
			prevPlans = plans
			if ses.BumpHistory(allNets) == 0 {
				return nil, stats, roundErr
			}
			continue
		}
		if over := ses.OversubscribedIn(allNets); len(over) > 0 {
			prevPlans = plans
			ses.BumpHistory(allNets)
			show := over
			if len(show) > 4 {
				show = show[:4]
			}
			roundErr = fmt.Errorf("himap: %d resources oversubscribed (e.g. %v): %w", len(over), show, diag.ErrRouteCongested)
			continue
		}
		break
	}
	if roundErr != nil {
		return nil, stats, roundErr
	}
	for _, nets := range plans {
		stats.CanonicalNets += len(nets)
	}
	return plans, stats, nil
}

// classClean reports whether a routed class plan survived the round
// congestion-free: every node of every net — under every member's
// translation — and every member's boundary-load slot is within
// capacity. Must run against end-of-round occupancy, before
// ResetKeepHistory.
func (l *layout) classClean(ses *route.Session, g *mrrg.Graph, classIdx int, cl *UniqueClass, nets []canonNet) bool {
	bt, br, bc := l.regionBase(cl.Rep)
	for _, m := range cl.Members {
		mt, mr, mc := l.regionBase(m)
		dt, dr, dc := mt-bt, mr-br, mc-bc
		for i := range nets {
			for _, n := range nets[i].net.NodeList() {
				sn := n.Shifted(dt, dr, dc)
				if ses.Occ(sn) > ses.CapacityOf(sn.Class) {
					return false
				}
			}
		}
		for _, lr := range l.loadRel[classIdx] {
			sn := mrrg.Node{T: mt + lr.T, R: mr + lr.R, C: mc + lr.C, Class: mrrg.ClassMemRead}
			if ses.Occ(sn) > ses.CapacityOf(mrrg.ClassMemRead) {
				return false
			}
		}
	}
	return true
}

// classEnvelope returns the spatial window (in the representative's
// coordinates) that stays on-array under every member's translation: a
// canonical path confined to it can be replicated verbatim everywhere.
func (l *layout) classEnvelope(cl *UniqueClass) (rMin, rMax, cMin, cMax int) {
	if l.cg.Topology.Wraps() {
		// Wrap-around links make every translation a graph automorphism:
		// a path that leaves one edge re-enters the opposite one, so the
		// canonical route replicates verbatim from anywhere on the array.
		return 0, l.cg.Rows - 1, 0, l.cg.Cols - 1
	}
	bt, br, bc := l.regionBase(cl.Rep)
	_ = bt
	drMin, drMax, dcMin, dcMax := 0, 0, 0, 0
	for _, m := range cl.Members {
		_, mr, mc := l.regionBase(m)
		dr, dc := mr-br, mc-bc
		if dr < drMin {
			drMin = dr
		}
		if dr > drMax {
			drMax = dr
		}
		if dc < dcMin {
			dcMin = dc
		}
		if dc > dcMax {
			dcMax = dc
		}
	}
	return -drMin, l.cg.Rows - 1 - drMax, -dcMin, l.cg.Cols - 1 - dcMax
}

// routeClass routes the canonical nets of one class representative.
func (l *layout) routeClass(ses *route.Session, g *mrrg.Graph, classIdx int, cl *UniqueClass) ([]canonNet, error) {
	d := l.g.DFG
	rep := l.g.Clusters[cl.Rep]
	rMin, rMax, cMin, cMax := l.classEnvelope(cl)
	inEnv := func(n mrrg.Node) bool {
		return n.R >= rMin && n.R <= rMax && n.C >= cMin && n.C <= cMax
	}
	ses.Filter = inEnv
	defer func() { ses.Filter = nil }()

	// Choose memory slots for boundary loads first (they act as sources).
	for _, id := range rep.Nodes {
		n := d.Nodes[id]
		if n.Kind != ir.OpLoad {
			continue
		}
		if _, generic := l.sub.Rel[n.BodyOp]; generic {
			continue
		}
		if err := l.chooseBoundaryLoad(ses, classIdx, id); err != nil {
			return nil, err
		}
	}

	// Build every net and its sink target sets up front (target
	// construction reads placement geometry only, never occupancy), then
	// route. A construction failure still routes the nets built before it
	// — routing errors are sequentially earlier, so they win; either way
	// the session carries exactly the occupancy the historical
	// interleaved loop left behind.
	pend, buildErr := l.buildClassNets(ses, g, cl, inEnv)
	if err := l.routePending(ses, pend); err != nil {
		return nil, err
	}
	if buildErr != nil {
		return nil, buildErr
	}
	nets := make([]canonNet, len(pend))
	for i := range pend {
		nets[i] = pend[i].cn
	}
	return nets, nil
}

// pendingSink is one fully-constructed sink of a pending net: its target
// set (the [tgt0, tgt1) range of the layout's target arena) plus the
// replication metadata, built before any routing so that independent
// nets can route concurrently.
type pendingSink struct {
	tgt0, tgt1 int
	meta       canonSink
	fromName   string
	toName     string
}

// pendingNet is a canonical net with every sink target constructed but
// nothing routed yet; its sinks are the [sink0, sink1) range of the
// layout's sink arena. lo/hi bound every real cycle its search can
// touch: seeds (source and earlier sink paths) and targets all live in
// [lo, hi], and search edges never step outside [min seed T, max target
// T]. Two pending nets with disjoint wrapped-cycle windows therefore
// read and write provably disjoint occupancy.
type pendingNet struct {
	cn           canonNet
	sink0, sink1 int
	lo, hi       int
}

// buildClassNets constructs the pending nets of one class representative
// in canonical order. On a construction error it returns the nets built
// so far — including the partially-built failing net, whose earlier
// sinks the historical loop had already routed — alongside the error.
func (l *layout) buildClassNets(ses *route.Session, g *mrrg.Graph, cl *UniqueClass, inEnv func(mrrg.Node) bool) ([]pendingNet, error) {
	pend, err := l.buildClassNetsInto(l.pendBuf[:0], ses, g, cl, inEnv)
	l.pendBuf = pend // keep the grown backing array for the next class
	return pend, err
}

// filterTgtArena drops the out-of-envelope nodes of the target arena's
// tail [t0:] in place.
func (l *layout) filterTgtArena(t0 int, inEnv func(mrrg.Node) bool) {
	out := l.tgtBuf[:t0]
	for _, n := range l.tgtBuf[t0:] {
		if inEnv(n) {
			out = append(out, n)
		}
	}
	l.tgtBuf = out
}

func (l *layout) buildClassNetsInto(pend []pendingNet, ses *route.Session, g *mrrg.Graph, cl *UniqueClass, inEnv func(mrrg.Node) bool) ([]pendingNet, error) {
	d := l.g.DFG
	rep := l.g.Clusters[cl.Rep]
	l.sinkBuf = l.sinkBuf[:0]
	l.tgtBuf = l.tgtBuf[:0]
	for _, id := range rep.Nodes {
		n := d.Nodes[id]
		if len(d.OutEdges(id)) == 0 {
			continue
		}
		var src mrrg.Node
		switch {
		case n.Kind.IsCompute():
			src, _ = l.nodeAbs(id)
		case n.Kind == ir.OpLoad:
			if abs, ok := l.nodeAbs(id); ok {
				src = abs
			} else if abs, ok := l.loadAbs(id); ok {
				src = abs
			} else {
				return pend, fmt.Errorf("himap: load %v has no placement: %w", n, diag.ErrPlacementInfeasible)
			}
		case n.Kind == ir.OpRoute:
			pin, ok := l.pinAbs(id)
			if !ok {
				return pend, fmt.Errorf("himap: route %v has no pin: %w", n, diag.ErrPlacementInfeasible)
			}
			src = pin
		default:
			continue // stores have no out-edges
		}
		p := pendingNet{
			cn: canonNet{
				SrcID: id, SrcBody: n.BodyOp,
				SrcDIter: n.Iter.Sub(rep.Iter),
				Src:      src,
				net:      ses.NewNet(src),
			},
			sink0: len(l.sinkBuf), sink1: len(l.sinkBuf),
			lo: src.T, hi: src.T,
		}
		for _, ei := range d.OutEdges(id) {
			e := d.Edges[ei]
			to := d.Nodes[e.To]
			t0 := len(l.tgtBuf)
			var err error
			switch {
			case to.Kind.IsCompute():
				abs, ok := l.nodeAbs(e.To)
				if !ok {
					err = fmt.Errorf("himap: consumer %v unplaced: %w", to, diag.ErrPlacementInfeasible)
					break
				}
				l.tgtBuf = g.AppendOperandTargets(l.tgtBuf, abs.T, abs.R, abs.C)
				l.filterTgtArena(t0, inEnv)
			case to.Kind == ir.OpRoute:
				pin, ok := l.pinAbs(e.To)
				if !ok {
					err = fmt.Errorf("himap: route consumer %v has no pin: %w", to, diag.ErrPlacementInfeasible)
					break
				}
				l.tgtBuf = append(l.tgtBuf, pin)
			case to.Kind == ir.OpStore:
				l.tgtBuf = l.appendStoreTargets(l.tgtBuf, g, e.To, src.T)
				l.filterTgtArena(t0, inEnv)
				if len(l.tgtBuf) == t0 && l.cg.Mem != arch.MemAll {
					err = diag.Failf(diag.ErrMemPortInfeasible,
						"himap: no memory-write port reachable for store %s within its region on the %s fabric", to.Name, l.cg)
				}
			default:
				err = fmt.Errorf("himap: bad consumer kind %v: %w", to.Kind, diag.ErrPlacementInfeasible)
			}
			if err == nil && len(l.tgtBuf) == t0 {
				err = fmt.Errorf("himap: no replicable delivery for %s -> %s (class envelope too tight): %w", n.Name, to.Name, diag.ErrReplicaConflict)
			}
			if err != nil {
				p.sink1 = len(l.sinkBuf)
				pend = append(pend, p)
				return pend, err
			}
			for _, tn := range l.tgtBuf[t0:] {
				if tn.T < p.lo {
					p.lo = tn.T
				}
				if tn.T > p.hi {
					p.hi = tn.T
				}
			}
			l.sinkBuf = append(l.sinkBuf, pendingSink{
				tgt0:     t0,
				tgt1:     len(l.tgtBuf),
				fromName: n.Name,
				toName:   to.Name,
				meta: canonSink{
					ConsumerBody:  to.BodyOp,
					ConsumerDIter: to.Iter.Sub(rep.Iter),
					Port:          e.ToPort,
					Kind:          to.Kind,
				},
			})
		}
		p.sink1 = len(l.sinkBuf)
		pend = append(pend, p)
	}
	return pend, nil
}

// routeNet routes every sink of one pending net, in order, committing
// paths into the session's occupancy as it goes. sc selects an explicit
// search scratch (wave routing); nil uses the session's own.
func (l *layout) routeNet(ses *route.Session, sc *route.Scratch, p *pendingNet) error {
	for si := p.sink0; si < p.sink1; si++ {
		s := &l.sinkBuf[si]
		targets := l.tgtBuf[s.tgt0:s.tgt1]
		var path route.Path
		var err error
		if sc != nil {
			path, _, err = ses.RouteSinkIn(sc, p.cn.net, targets)
		} else {
			path, _, err = ses.RouteSink(p.cn.net, targets)
		}
		if err != nil {
			return fmt.Errorf("net %s -> %s: %w", s.fromName, s.toName, err)
		}
		s.meta.Path = path
		p.cn.Sinks = append(p.cn.Sinks, s.meta)
	}
	return nil
}

// routePending routes the class's pending nets: sequentially at
// workers <= 1 (the historical flow), otherwise in waves of provably
// independent nets. Waves require wrapped occupancy (so a cycle window
// is a complete footprint) and II <= 64 (one mask word).
func (l *layout) routePending(ses *route.Session, pend []pendingNet) error {
	if l.workers > 1 && ses.G.Wrap && l.iib <= 64 {
		return l.routeWaves(ses, pend)
	}
	for i := range pend {
		if err := l.routeNet(ses, nil, &pend[i]); err != nil {
			return err
		}
	}
	return nil
}

// cycleMask is the wrapped-cycle footprint of the real-cycle window
// [lo, hi] as a bitmask; callers guarantee ii <= 64.
//
//himap:noalloc
func cycleMask(lo, hi, ii int) uint64 {
	if hi-lo+1 >= ii {
		return ^uint64(0) >> (64 - uint(ii))
	}
	var m uint64
	for t := lo; t <= hi; t++ {
		m |= 1 << uint(((t%ii)+ii)%ii)
	}
	return m
}

// routeWaves routes maximal prefixes of pairwise cycle-disjoint nets
// concurrently. Disjoint wrapped-cycle windows mean disjoint occupancy
// reads and writes, so the committed paths — and every later search —
// are bit-identical to the sequential order. On failure the sequential
// state is reproduced: the first failing net (in canonical order) keeps
// its earlier sinks committed, and every net after it in the wave is
// released as if it had never routed.
func (l *layout) routeWaves(ses *route.Session, pend []pendingNet) error {
	if l.waveScratch == nil {
		l.waveScratch = make([]*route.Scratch, l.workers)
		for i := range l.waveScratch {
			l.waveScratch[i] = &route.Scratch{}
		}
	}
	errs := make([]error, l.workers)
	for base := 0; base < len(pend); {
		wave := 1
		used := cycleMask(pend[base].lo, pend[base].hi, l.iib)
		for base+wave < len(pend) && wave < l.workers {
			m := cycleMask(pend[base+wave].lo, pend[base+wave].hi, l.iib)
			if used&m != 0 {
				break
			}
			used |= m
			wave++
		}
		if wave == 1 {
			if err := l.routeNet(ses, nil, &pend[base]); err != nil {
				return err
			}
			base++
			continue
		}
		par.ForEach(wave, wave, func(k int) {
			errs[k] = l.routeNet(ses, l.waveScratch[k], &pend[base+k])
		})
		for k := 0; k < wave; k++ {
			if errs[k] != nil {
				for j := k + 1; j < wave; j++ {
					ses.Release(pend[base+j].cn.net)
					pend[base+j].cn.Sinks = pend[base+j].cn.Sinks[:0]
				}
				return errs[k]
			}
		}
		base += wave
	}
	return nil
}

// appendStoreTargets appends candidate memory write ports for a store
// node to dst: any cycle of its cluster's region window at or after the
// producer.
func (l *layout) appendStoreTargets(dst []mrrg.Node, g *mrrg.Graph, id int, fromT int) []mrrg.Node {
	ci := l.g.ClusterOf(id)
	bt, br, bc := l.regionBase(ci)
	out := dst
	lo := fromT
	if bt > lo {
		lo = bt
	}
	for t := lo; t < lo+2*l.sub.Depth; t++ {
		for r := br; r < br+l.sub.S1; r++ {
			for c := bc; c < bc+l.sub.S2; c++ {
				if !l.cg.MemCapable(r, c) {
					continue
				}
				out = append(out, g.MemWriteNode(t, r, c))
			}
		}
	}
	return out
}

// chooseBoundaryLoad picks a memory-read slot for a load that has no
// generic relative placement: on its first consumer's PE, at the latest
// free cycle not after the consumer.
func (l *layout) chooseBoundaryLoad(ses *route.Session, classIdx, id int) error {
	d := l.g.DFG
	n := d.Nodes[id]
	ci := l.g.ClusterOf(id)
	bt, br, bc := l.regionBase(ci)
	// Anchor on the first consumer.
	consT, consR, consC := bt, br, bc
	slack := 0
	for _, ei := range d.OutEdges(id) {
		to := d.Edges[ei].To
		tn := d.Nodes[to]
		if abs, ok := l.nodeAbs(to); ok {
			consT, consR, consC = abs.T, abs.R, abs.C
			break
		}
		if tn.Kind == ir.OpRoute {
			pinRel, ok := l.pinRel[classIdx][tn.BodyOp]
			if ok && pinRel.Mem {
				// Transparent pin: the load itself is the relay; schedule it
				// at the route's anchor so the ALU can consume FromMem.
				bt2, br2, bc2 := l.regionBase(ci)
				consT, consR, consC = bt2+pinRel.T, br2+pinRel.R, bc2+pinRel.C
				break
			}
			if pin, ok2 := l.pinAbs(to); ok2 {
				consT, consR, consC = pin.T, pin.R, pin.C
				slack = 1 // reaching a register pin takes at least one cycle
				break
			}
		}
	}
	// Negative real cycles wrap into the previous schedule period — in
	// steady state the load simply issues during the preceding block's
	// window (classic software pipelining).
	if l.cg.MemCapable(consR, consC) {
		for back := slack; back < 3*l.sub.Depth; back++ {
			t := consT - back
			mr := mrrg.Node{T: t, R: consR, C: consC, Class: mrrg.ClassMemRead}
			if ses.Occ(mr) > 0 {
				continue
			}
			ses.Reserve(mr)
			l.loadRel[classIdx][n.BodyOp] = RelPlace{T: t - bt, R: consR - br, C: consC - bc, Kind: PlaceMemRead}
			return nil
		}
		return fmt.Errorf("himap: no memory-read slot for boundary load %v: %w: %w", n, diag.ErrMemPortInfeasible, diag.ErrRouteCongested)
	}
	// The consumer sits on a compute-only PE: issue the load on the
	// nearest memory-capable PE of the cluster's region, early enough for
	// the value to cover the Manhattan distance to the consumer.
	for _, pe := range memPEsByDist(l.cg, consR, consC) {
		r, c := pe[0], pe[1]
		if r < br || r >= br+l.sub.S1 || c < bc || c >= bc+l.sub.S2 {
			continue
		}
		lo := absInt(r-consR) + absInt(c-consC)
		if slack > lo {
			lo = slack
		}
		for back := lo; back < 3*l.sub.Depth; back++ {
			t := consT - back
			mr := mrrg.Node{T: t, R: r, C: c, Class: mrrg.ClassMemRead}
			if ses.Occ(mr) > 0 {
				continue
			}
			ses.Reserve(mr)
			l.loadRel[classIdx][n.BodyOp] = RelPlace{T: t - bt, R: r - br, C: c - bc, Kind: PlaceMemRead}
			return nil
		}
	}
	return diag.Failf(diag.ErrMemPortInfeasible,
		"himap: no memory-read slot for boundary load %v on the %s fabric", n, l.cg)
}

// replicate stamps every class's canonical placements and routes onto all
// of its member clusters (Algorithm 1 line 29), with full conflict
// detection. Final configuration validation is the pipeline's validate
// stage (Config.Validate), not replicate's job.
func (l *layout) replicate(plans [][]canonNet) (*arch.Config, error) {
	cfg := arch.NewConfig(l.cg, l.iib)
	em := route.NewEmitter(cfg)
	d := l.g.DFG

	// Stamp operation placements for every cluster.
	for _, n := range d.Nodes {
		tag := fmt.Sprintf("n%d", n.ID)
		switch {
		case n.Kind.IsCompute():
			abs, _ := l.nodeAbs(n.ID)
			if err := em.PlaceOp(abs, n.Kind, tag); err != nil {
				return nil, err
			}
			if n.HasConst {
				if err := em.SetConstOperand(abs, n.Const, tag+":const"); err != nil {
					return nil, err
				}
			}
		case n.Kind == ir.OpLoad:
			abs, ok := l.nodeAbs(n.ID)
			if !ok {
				abs, ok = l.loadAbs(n.ID)
				if !ok {
					return nil, fmt.Errorf("himap: load %v unplaced at replication: %w", n, diag.ErrPlacementInfeasible)
				}
			}
			elem := fmt.Sprintf("%s@%s", n.Tensor, n.Index.Key())
			if err := em.PlaceLoad(abs, tag, elem); err != nil {
				return nil, err
			}
			cfg.Loads = append(cfg.Loads, arch.IOSpec{
				R: abs.R, C: abs.C,
				Slot:   wrapMod(abs.T, l.iib),
				Phase:  floorDiv(abs.T, l.iib),
				Tensor: n.Tensor,
				Index:  append([]int(nil), n.Index...),
			})
		}
	}

	// Stamp canonical routes, translated to every member.
	for classIdx, cl := range l.classes {
		rep := l.g.Clusters[cl.Rep]
		for _, m := range cl.Members {
			mc := l.g.Clusters[m]
			dt := (l.cp.T[m] - l.cp.T[cl.Rep]) * l.sub.Depth
			dr := (l.cp.X[m] - l.cp.X[cl.Rep]) * l.sub.S1
			dc := (l.cp.Y[m] - l.cp.Y[cl.Rep]) * l.sub.S2
			dIter := mc.Iter.Sub(rep.Iter)
			for _, cn := range plans[classIdx] {
				srcID, ok := l.ix.Find(cn.SrcBody, rep.Iter.Add(dIter).Add(cn.SrcDIter))
				if !ok {
					return nil, fmt.Errorf("himap: replication cannot find source (body %d) for member %v: %w", cn.SrcBody, mc.Iter, diag.ErrReplicaConflict)
				}
				tag := fmt.Sprintf("n%d", srcID)
				for _, sink := range cn.Sinks {
					shifted := make(route.Path, len(sink.Path))
					for i, pn := range sink.Path {
						sn := pn.Shifted(dt, dr, dc)
						// On a torus the translate of an edge-crossing path
						// re-enters the array; fold it onto the real PEs.
						sn.R, sn.C = l.cg.WrapCoord(sn.R, sn.C)
						shifted[i] = sn
					}
					consID, ok := l.ix.Find(sink.ConsumerBody, rep.Iter.Add(dIter).Add(sink.ConsumerDIter))
					if !ok {
						return nil, fmt.Errorf("himap: replication cannot find consumer (body %d) for member %v: %w", sink.ConsumerBody, mc.Iter, diag.ErrReplicaConflict)
					}
					storeElem := ""
					if sink.Kind == ir.OpStore {
						sn := d.Nodes[consID]
						storeElem = fmt.Sprintf("%s@%s", sn.Tensor, sn.Index.Key())
						last := shifted[len(shifted)-1]
						cfg.Stores = append(cfg.Stores, arch.IOSpec{
							R: last.R, C: last.C,
							Slot:   wrapMod(last.T, l.iib),
							Phase:  floorDiv(last.T, l.iib),
							Tensor: sn.Tensor,
							Index:  append([]int(nil), sn.Index...),
						})
					}
					if err := em.EmitPath(shifted, tag, storeElem); err != nil {
						return nil, fmt.Errorf("himap: replication conflict (class %d member %v): %w", classIdx, mc.Iter, err)
					}
					if sink.Kind.IsCompute() {
						abs, _ := l.nodeAbs(consID)
						if err := em.SetOperand(abs, sink.Port, shifted, tag); err != nil {
							return nil, fmt.Errorf("himap: operand conflict (class %d member %v): %w", classIdx, mc.Iter, err)
						}
					}
				}
			}
		}
	}

	return cfg, nil
}

// wrapMod folds t into [0, m).
func wrapMod(t, m int) int { return ((t % m) + m) % m }

// floorDiv is floor(t / m) for positive m.
func floorDiv(t, m int) int {
	return (t - wrapMod(t, m)) / m
}
