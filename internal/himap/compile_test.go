package himap

import (
	"fmt"
	"strings"
	"testing"

	"himap/internal/arch"
	"himap/internal/ir"
	"himap/internal/kernel"
	"himap/internal/systolic"
)

// paperUtil holds §VI's HiMap utilization results; our implementation may
// match or exceed them (the substrate's routing fabric is modeled
// slightly more permissively), but must never fall below.
var paperUtil = map[string]float64{
	"ADI": 0.83, "ATAX": 1.0, "BICG": 0.66, "MVT": 1.0,
	"GEMM": 1.0, "SYRK": 1.0, "FW": 0.66, "TTM": 1.0,
}

func TestCompileAllKernelsMeetPaperUtilization(t *testing.T) {
	for _, size := range []int{4, 8} {
		for _, k := range kernel.Evaluation() {
			res, err := Compile(k, arch.Default(size, size), Options{})
			if err != nil {
				t.Errorf("%s %dx%d: %v", k.Name, size, size, err)
				continue
			}
			if res.Utilization < paperUtil[k.Name]-1e-9 {
				t.Errorf("%s %dx%d: U = %.1f%%, paper achieves %.0f%%",
					k.Name, size, size, res.Utilization*100, paperUtil[k.Name]*100)
			}
			if err := res.Config.Validate(); err != nil {
				t.Errorf("%s %dx%d: config: %v", k.Name, size, size, err)
			}
		}
	}
}

func TestCompileUniqueIterationCounts(t *testing.T) {
	// The hallmark scalability property: unique iteration counts match the
	// iteration-space structure and are independent of the CGRA size once
	// the block is large enough.
	want := map[string]int{
		"ADI": 3, "ATAX": 9, "BICG": 9, "MVT": 9,
		"GEMM": 27, "SYRK": 27, "TTM": 27,
	}
	for _, size := range []int{4, 8} {
		for _, k := range kernel.Evaluation() {
			if k.Name == "FW" {
				continue // diagonal classes; covered separately
			}
			res, err := Compile(k, arch.Default(size, size), Options{})
			if err != nil {
				t.Fatalf("%s: %v", k.Name, err)
			}
			if res.UniqueIters != want[k.Name] {
				t.Errorf("%s %dx%d: unique iterations = %d, want %d",
					k.Name, size, size, res.UniqueIters, want[k.Name])
			}
		}
	}
}

func TestCompileIIBFormula(t *testing.T) {
	// II_B = II_S × t (Algorithm 1 line 6 / §V).
	for _, k := range kernel.Evaluation() {
		res, err := Compile(k, arch.Default(4, 4), Options{})
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		if res.IIB != res.Sub.Depth*res.Mapping.IIS {
			t.Errorf("%s: II_B = %d, want depth %d × II_S %d",
				k.Name, res.IIB, res.Sub.Depth, res.Mapping.IIS)
		}
		if res.Config.II != res.IIB {
			t.Errorf("%s: config II %d != II_B %d", k.Name, res.Config.II, res.IIB)
		}
	}
}

func TestCompileConfigMemoryBound(t *testing.T) {
	// HiMap stores only unique instructions per PE; all mappings must fit
	// the 32-entry configuration memory (§V last paragraph).
	for _, k := range kernel.Evaluation() {
		res, err := Compile(k, arch.Default(8, 8), Options{})
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		if got := res.Config.MaxUniqueInstrs(); got > res.CGRA.ConfigDepth {
			t.Errorf("%s: %d unique instructions exceed depth %d", k.Name, got, res.CGRA.ConfigDepth)
		}
	}
}

func TestCompileBlockMatchesVSA(t *testing.T) {
	// b1 = c/s1, b2 = c/s2 (Algorithm 1 line 6): the space dimensions of
	// the block must equal the VSA extents.
	res, err := Compile(kernel.GEMM(), arch.Default(8, 8), Options{})
	if err != nil {
		t.Fatal(err)
	}
	vx := 8 / res.Sub.S1
	vy := 8 / res.Sub.S2
	sd := res.Scheme.SpaceDims
	if res.Block[sd[0]] != vx {
		t.Errorf("block[%d] = %d, want VSA x %d", sd[0], res.Block[sd[0]], vx)
	}
	if len(sd) > 1 && res.Block[sd[1]] != vy {
		t.Errorf("block[%d] = %d, want VSA y %d", sd[1], res.Block[sd[1]], vy)
	}
}

func TestCompileLinearArray(t *testing.T) {
	// The §II motivating configuration: a 2-D kernel on an 8x1 array uses
	// a 1-D space allocation with the other dimension sequenced in time.
	res, err := Compile(kernel.BICG(), arch.Default(8, 1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.UniqueIters != 9 {
		t.Errorf("unique iterations = %d, want 9 (paper §II)", res.UniqueIters)
	}
	if res.Mapping.IIS < 2 {
		t.Errorf("II_S = %d: the linear allocation must sequence one dimension in time", res.Mapping.IIS)
	}
}

func TestCompileNonSquareArray(t *testing.T) {
	res, err := Compile(kernel.MVT(), arch.Default(8, 4), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Utilization < 0.99 {
		t.Errorf("U = %.1f%% on 8x4", res.Utilization*100)
	}
}

func TestCompileInnerBlockOption(t *testing.T) {
	r4, err := Compile(kernel.GEMM(), arch.Default(4, 4), Options{InnerBlock: 4})
	if err != nil {
		t.Fatal(err)
	}
	r8, err := Compile(kernel.GEMM(), arch.Default(4, 4), Options{InnerBlock: 8})
	if err != nil {
		t.Fatal(err)
	}
	if r8.IIB != 2*r4.IIB {
		t.Errorf("doubling the inner block must double II_B: %d vs %d", r4.IIB, r8.IIB)
	}
	if r4.Utilization != r8.Utilization {
		t.Errorf("inner block must not change utilization: %v vs %v", r4.Utilization, r8.Utilization)
	}
	// Unique iterations saturate: same count for both.
	if r4.UniqueIters != r8.UniqueIters {
		t.Errorf("unique iterations changed with inner block: %d vs %d", r4.UniqueIters, r8.UniqueIters)
	}
}

func TestCompileTooSmallArrayFails(t *testing.T) {
	// A 1x1 array leaves a VSA of 1x1: blocks fall below the minimum.
	if _, err := Compile(kernel.BICG(), arch.Default(1, 1), Options{}); err == nil {
		t.Error("expected failure on a 1x1 array")
	}
}

func TestCompileDeterministic(t *testing.T) {
	a, err := Compile(kernel.SYRK(), arch.Default(4, 4), Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compile(kernel.SYRK(), arch.Default(4, 4), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Summary() != b.Summary() {
		t.Errorf("non-deterministic compile: %q vs %q", a.Summary(), b.Summary())
	}
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			for tt := 0; tt < a.IIB; tt++ {
				ia, ib := a.Config.Slots[r][c][tt], b.Config.Slots[r][c][tt]
				if ia.String() != ib.String() {
					t.Fatalf("PE(%d,%d) slot %d differs: %q vs %q", r, c, tt, ia.String(), ib.String())
				}
			}
		}
	}
}

func TestCompileForceScheme(t *testing.T) {
	sch := systolic.Scheme{SpaceDims: []int{0, 1}, TimePerm: []int{2}, Skew: []int{1, 1}}
	res, err := Compile(kernel.GEMM(), arch.Default(4, 4), Options{ForceScheme: &sch})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scheme.String() != sch.String() {
		t.Errorf("scheme = %v, want forced %v", res.Scheme, sch)
	}
}

func TestCompileFWDiagonalClasses(t *testing.T) {
	// FW's pivot-tap diagonals add classes beyond the 27 boundary classes;
	// the count must still be bounded and the mapping valid.
	res, err := Compile(kernel.FW(), arch.Default(4, 4), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.UniqueIters < 27 || res.UniqueIters > 120 {
		t.Errorf("FW unique iterations = %d, expected a bounded diagonal-class count", res.UniqueIters)
	}
}

func TestCompileStatsPopulated(t *testing.T) {
	res, err := Compile(kernel.MVT(), arch.Default(4, 4), Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if s.Total <= 0 || s.Attempts < 1 || s.CanonicalNets < 1 || s.RouteRounds < 1 {
		t.Errorf("stats not populated: %+v", s)
	}
	if !strings.Contains(res.Summary(), "MVT") {
		t.Errorf("summary %q", res.Summary())
	}
}

func TestCanonicalNetCountIndependentOfBlock(t *testing.T) {
	// The minimal-DFG property (§V): routing work depends on the number of
	// unique iterations, not the block size.
	small, err := Compile(kernel.GEMM(), arch.Default(4, 4), Options{InnerBlock: 4})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Compile(kernel.GEMM(), arch.Default(4, 4), Options{InnerBlock: 16})
	if err != nil {
		t.Fatal(err)
	}
	if small.Stats.CanonicalNets != big.Stats.CanonicalNets {
		t.Errorf("canonical nets changed with block: %d vs %d",
			small.Stats.CanonicalNets, big.Stats.CanonicalNets)
	}
}

// synthetic kernel with a distance-2 dependence to exercise forwarding.
func multiHopKernel() *kernel.Kernel {
	k := &kernel.Kernel{
		Name: "HOP2", Desc: "synthetic distance-2 dependence", Suite: "custom",
		Dim: 2, MinBlock: 4,
		Tensors: []kernel.TensorSpec{
			{Name: "A", Dims: func(b []int) []int { return []int{b[0], b[1]} }},
			{Name: "O", Out: true, Dims: func(b []int) []int { return []int{b[0], b[1]} }},
		},
	}
	ij := kernel.AM(2, []int{1, 0, 0}, []int{0, 1, 0})
	k.Body = []kernel.BodyOp{
		{Name: "acc", Kind: ir.OpAdd,
			A: kernel.Fixed(kernel.Mem("A", ij)),
			B: kernel.In(
				kernel.Case{When: kernel.Before(1, 2), Src: kernel.Const(0)},
				kernel.Case{When: kernel.Always(), Src: kernel.Dep(0, 0, 2)}),
			Stores: []kernel.StoreRule{{When: kernel.Always(), Tensor: "O", Map: ij}}},
	}
	return k
}

func TestForwardingTransform(t *testing.T) {
	k := multiHopKernel()
	if err := k.Validate(); err != nil {
		t.Fatal(err)
	}
	d, g, err := k.BuildISDG([]int{4, 6})
	if err != nil {
		t.Fatal(err)
	}
	// Force a scheme that maps dim 1 to space: the (0,2) dependence
	// becomes a 2-hop offset needing forwarding.
	sch := systolic.Scheme{SpaceDims: []int{0, 1}, TimePerm: nil, Skew: []int{0, 1}}
	m := sch.Realize([]int{4, 6})
	if m.Classify(ir.IterVec{0, 2}) != systolic.DepForward {
		t.Fatalf("expected DepForward for (0,2) under %v", sch)
	}
	nd, err := ApplyForwarding(d, g, m)
	if err != nil {
		t.Fatal(err)
	}
	if nd == d {
		t.Fatal("forwarding should have rebuilt the DFG")
	}
	routes := 0
	for _, n := range nd.Nodes {
		if n.Kind == ir.OpRoute {
			routes++
		}
	}
	if routes == 0 {
		t.Error("no relay nodes inserted")
	}
	g2, err := ir.BuildISDG(nd)
	if err != nil {
		t.Fatal(err)
	}
	// After forwarding every dependence must be local.
	for _, dv := range g2.DistanceVectors() {
		if m.Classify(dv) != systolic.DepLocal {
			t.Errorf("dependence %v still non-local after forwarding", dv)
		}
	}
	// Functional equivalence of the transformed DFG.
	inputs := k.DefaultInputs([]int{4, 6}, 5)
	want, err := kernel.ExecuteDFG(k, d, inputs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := kernel.ExecuteDFG(k, nd, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if err := kernel.CompareOutputs(want, got); err != nil {
		t.Error(err)
	}
}

func TestRelayPolicyAblation(t *testing.T) {
	// Relay-pin ablation: with the default architecture the negotiated
	// router compensates for register-only relays (utilization may tie but
	// never beat the crossbar policy); both variants must produce valid,
	// equal-or-worse mappings.
	auto, err := Compile(kernel.GEMM(), arch.Default(4, 4), Options{})
	if err != nil {
		t.Fatal(err)
	}
	regOnly, err := Compile(kernel.GEMM(), arch.Default(4, 4), Options{RelayPolicy: RelayRegistersOnly})
	if err != nil {
		t.Fatal(err)
	}
	if auto.Utilization < 1.0-1e-9 {
		t.Errorf("auto relay policy U = %v, want 100%%", auto.Utilization)
	}
	if regOnly.Utilization > auto.Utilization+1e-9 {
		t.Errorf("register-only relays must not beat crossbar relays: %v vs %v",
			regOnly.Utilization, auto.Utilization)
	}
	if err := regOnly.Config.Validate(); err != nil {
		t.Errorf("register-only config invalid: %v", err)
	}
}

func TestNegotiatedCongestionAblation(t *testing.T) {
	// SPR-style cost escalation is load-bearing (§V): with a single
	// routing round, FW's congested minimal depth cannot be resolved and
	// the mapper falls back to a deeper, lower-utilization sub-CGRA
	// mapping.
	full, err := Compile(kernel.FW(), arch.Default(4, 4), Options{MaxRouteRounds: 8})
	if err != nil {
		t.Fatal(err)
	}
	one, err := Compile(kernel.FW(), arch.Default(4, 4), Options{MaxRouteRounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	if one.Utilization >= full.Utilization {
		t.Errorf("disabling negotiation should cost utilization: %v vs %v",
			one.Utilization, full.Utilization)
	}
}

func TestIterationMapRendersAllClasses(t *testing.T) {
	res, err := Compile(kernel.BICG(), arch.Default(4, 4), Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := res.IterationMap()
	if !strings.Contains(s, "9 classes") {
		t.Errorf("header missing: %q", strings.SplitN(s, "\n", 2)[0])
	}
	// Every class ID 0..8 must appear in the rendering.
	for cls := 0; cls < 9; cls++ {
		if !strings.Contains(s, fmt.Sprintf("%3d ", cls)) {
			t.Errorf("class %d missing from the map", cls)
		}
	}
}
