package himap

import (
	"context"
	"time"

	"himap/internal/arch"
	"himap/internal/diag"
	"himap/internal/ir"
	"himap/internal/kernel"
	"himap/internal/systolic"
)

// Stage names of the HiMap compilation pipeline, in execution order. The
// first two are front stages (run once per compile); the rest form the
// per-attempt pipeline executed speculatively for each (sub-mapping,
// scheme) candidate.
const (
	StageIDFGMap      = "idfg-map"      // kernel → generic IDFG → sub-CGRA mappings
	StageSchemeSearch = "scheme-search" // systolic (H,S) candidates → ranked attempt list
	StageBlockDerive  = "block-derive"  // block vector + realized space-time mapping
	StageISDGBuild    = "isdg-build"    // full block unroll → DFG + ISDG (memoized)
	StageForward      = "forward"       // forwarding-path insertion (lines 14-17)
	StagePlace        = "place"         // cluster placement on the VSA (line 13)
	StageUnique       = "unique"        // unique-iteration identification (line 19)
	StageRoute        = "route"         // canonical minimal-DFG routing (lines 21-27)
	StageReplicate    = "replicate"     // stamping onto all class members (line 29)
	StageValidate     = "validate"      // final configuration validation
)

// stageOrder lists every stage for deterministic aggregation ordering.
var stageOrder = []string{
	StageIDFGMap, StageSchemeSearch, StageBlockDerive, StageISDGBuild,
	StageForward, StagePlace, StageUnique, StageRoute, StageReplicate,
	StageValidate,
}

// Stage is one named pass over a CompileContext. Run reads its inputs
// from the context and writes its artifacts back; the Pipeline runner
// owns timing, tracing, and failure classification, so stage bodies stay
// pure transformation logic.
type Stage struct {
	Name string
	// Fallback classes failures that carry neither a *diag.StageError nor
	// a known sentinel in their chain.
	Fallback error
	Run      func(*CompileContext) error
}

// Pipeline is an ordered stage list sharing one CompileContext.
type Pipeline []Stage

// Run executes the stages in order. Every stage execution — success or
// failure — emits one tracer span carrying its wall time, the context's
// attempt/wave identity, and any counters the stage recorded. The first
// failure stops the pipeline and returns a *diag.StageError stamped with
// the stage name and compile context.
//
// The compile's context.Context is checked at every stage boundary: a
// cancellation or expired deadline aborts the pipeline before the next
// stage starts, returning a diag.ErrCanceled StageError (stamped with the
// stage that would have run) whose cause chain keeps the original context
// error. Stage bodies themselves stay context-free pure transformations.
func (p Pipeline) Run(ctx *CompileContext) error {
	for _, st := range p {
		if cerr := ctx.Ctx.Err(); cerr != nil {
			se := diag.Fail(diag.ErrCanceled, cerr)
			se.Stamp(st.Name, ctx.Kernel.Name, ctx.Fab.String(), ctx.Attempt)
			ctx.Tracer.Emit(diag.Span{
				Stage: st.Name, Attempt: ctx.Attempt, Wave: ctx.Wave, Err: se.Error(),
			})
			return se
		}
		ctx.counters = nil
		start := time.Now() //lint:ignore determinism wall-clock span timing only; does not influence mapping
		err := st.Run(ctx)
		wall := time.Since(start)
		ctx.wall[st.Name] += wall
		span := diag.Span{
			Stage: st.Name, Attempt: ctx.Attempt, Wave: ctx.Wave,
			Wall: wall, Counters: ctx.counters,
		}
		if err != nil {
			se := diag.Classify(err, st.Fallback)
			se.Stamp(st.Name, ctx.Kernel.Name, ctx.Fab.String(), ctx.Attempt)
			span.Err = se.Error()
			ctx.Tracer.Emit(span)
			return se
		}
		ctx.Tracer.Emit(span)
	}
	return nil
}

// attempt is one (sub-CGRA mapping, systolic scheme) candidate with its
// derived VSA geometry, ranked in the deterministic search order.
type attempt struct {
	sub    *SubMapping
	sch    systolic.Scheme
	vx, vy int
}

// CompileContext carries the state threaded through the pipeline: the
// compilation inputs, the shared services (artifact memo, tracer), the
// front artifacts produced once per compile, and the attempt-scoped
// artifacts each speculative attempt derives privately. Front artifacts
// are read-only once the front pipeline finishes, so attempt contexts
// share them without copying.
type CompileContext struct {
	// Ctx is the compile's cancellation context, checked by the pipeline
	// runner at stage boundaries (never nil; context.Background() for the
	// legacy context-free entry points).
	Ctx context.Context

	Kernel *kernel.Kernel
	Fab    arch.Fabric
	Opts   Options
	Memo   *Memo
	Tracer diag.Tracer

	// Front artifacts (idfg-map, scheme-search).
	IDFG     *ir.IDFG
	Subs     []*SubMapping
	Deps     []ir.IterVec
	Attempts []attempt

	// Attempt identity: 1-based rank and wave index; 0 for front stages.
	Attempt int
	Wave    int

	// Attempt-scoped artifacts.
	Sub       *SubMapping
	Scheme    systolic.Scheme
	VX, VY    int
	Block     []int
	Mapping   *systolic.Mapping
	DFG       *ir.DFG
	ISDG      *ir.ISDG
	CP        *ClusterPlace
	Classes   []*UniqueClass
	ByCluster []int
	IIB       int
	Plans     [][]canonNet
	RStats    RouteStats
	Config    *arch.Config

	lay      *layout
	wall     map[string]time.Duration
	counters map[string]int64
}

func newContext(ctx context.Context, k *kernel.Kernel, fab arch.Fabric, opts Options) *CompileContext {
	return &CompileContext{
		Ctx:    ctx,
		Kernel: k, Fab: fab, Opts: opts,
		Memo: opts.Memo, Tracer: opts.Tracer,
		wall: map[string]time.Duration{},
	}
}

// forAttempt derives a private context for one speculative attempt,
// sharing the read-only front artifacts.
func (c *CompileContext) forAttempt(a attempt, rank, wave int) *CompileContext {
	return &CompileContext{
		Ctx:    c.Ctx,
		Kernel: c.Kernel, Fab: c.Fab, Opts: c.Opts,
		Memo: c.Memo, Tracer: c.Tracer,
		IDFG: c.IDFG, Subs: c.Subs, Deps: c.Deps,
		Attempt: rank, Wave: wave,
		Sub: a.sub, Scheme: a.sch, VX: a.vx, VY: a.vy,
		wall: map[string]time.Duration{},
	}
}

// Count accumulates a counter onto the currently running stage's span.
func (c *CompileContext) Count(key string, v int64) {
	if c.counters == nil {
		c.counters = map[string]int64{}
	}
	c.counters[key] += v
}

// frontStages run once per compile and produce the ranked attempt list.
var frontStages = Pipeline{
	{Name: StageIDFGMap, Fallback: diag.ErrNoSubMapping, Run: runIDFGMap},
	{Name: StageSchemeSearch, Fallback: diag.ErrSchemeInfeasible, Run: runSchemeSearch},
}

// attemptStages execute Algorithm 1's steps 2 and 3 for one candidate.
var attemptStages = Pipeline{
	{Name: StageBlockDerive, Fallback: diag.ErrSchemeInfeasible, Run: runBlockDerive},
	{Name: StageISDGBuild, Fallback: diag.ErrSchemeInfeasible, Run: runISDGBuild},
	{Name: StageForward, Fallback: diag.ErrSchemeInfeasible, Run: runForward},
	{Name: StagePlace, Fallback: diag.ErrPlacementInfeasible, Run: runPlace},
	{Name: StageUnique, Fallback: diag.ErrPlacementInfeasible, Run: runUnique},
	{Name: StageRoute, Fallback: diag.ErrRouteCongested, Run: runRoute},
	{Name: StageReplicate, Fallback: diag.ErrReplicaConflict, Run: runReplicate},
	{Name: StageValidate, Fallback: diag.ErrConfigInvalid, Run: runValidate},
}

// runIDFGMap builds (or recalls) the generic IDFG and the ranked
// sub-CGRA mapping list — Algorithm 1 step 1.
func runIDFGMap(c *CompileContext) error {
	f, err := c.Memo.IDFG(c.Kernel)
	if err != nil {
		return err
	}
	c.IDFG = f
	subs, err := c.Memo.SubMappings(c.Kernel, f, c.Fab, c.Opts.DepthSlack)
	if err != nil {
		return err
	}
	if len(subs) == 0 {
		return diag.Fail(diag.ErrNoSubMapping, nil)
	}
	if len(subs) > c.Opts.MaxSubMaps {
		subs = subs[:c.Opts.MaxSubMaps]
	}
	c.Subs = subs
	c.Count("submaps", int64(len(subs)))
	return nil
}

// runSchemeSearch enumerates systolic scheme candidates per sub-mapping
// and materializes the deterministic attempt ranking.
func runSchemeSearch(c *CompileContext) error {
	c.Deps = c.Kernel.DistanceVectors()
	var tileErr error
	for _, sub := range c.Subs {
		// A sub-CGRA block must tile the fabric evenly; anything else
		// would cluster the VSA out of bounds (non-square arrays with
		// square c×c blocks were silently mis-clustered before this
		// check existed).
		if err := systolic.CheckTile(c.Fab.Rows, c.Fab.Cols, sub.S1, sub.S2); err != nil {
			tileErr = diag.Fail(diag.ErrSchemeInfeasible, err)
			continue
		}
		vx, vy := c.Fab.Rows/sub.S1, c.Fab.Cols/sub.S2
		schemes, err := c.Memo.Schemes(c.Kernel, c.Deps, vx, vy, c.Opts)
		if err != nil {
			return err
		}
		for _, sch := range schemes {
			c.Attempts = append(c.Attempts, attempt{sub: sub, sch: sch, vx: vx, vy: vy})
		}
	}
	c.Count("attempts", int64(len(c.Attempts)))
	if len(c.Attempts) == 0 {
		if tileErr != nil {
			return tileErr
		}
		return diag.Failf(diag.ErrSchemeInfeasible, "no valid systolic scheme")
	}
	return nil
}

// runBlockDerive derives the block vector from the scheme and VSA extents
// (line 6: b1 = c/s1, b2 = c/s2), realizes the space-time mapping, and
// checks feasibility against the dependences and the VSA shape.
func runBlockDerive(c *CompileContext) error {
	if err := checkSchemeShape(c.Kernel.Dim, c.Scheme); err != nil {
		return err
	}
	block, err := blockForScheme(c.Kernel, c.Scheme, c.VX, c.VY, c.Opts)
	if err != nil {
		return err
	}
	c.Block = block
	m := c.Scheme.Realize(block)
	if err := m.Validate(c.Deps); err != nil {
		return diag.Fail(diag.ErrSchemeInfeasible, err)
	}
	gx, gy := m.VSAShape()
	if gx > c.VX || gy > c.VY {
		return diag.Failf(diag.ErrSchemeInfeasible, "scheme needs VSA %dx%d, have %dx%d", gx, gy, c.VX, c.VY)
	}
	c.Mapping = m
	return nil
}

// checkSchemeShape rejects structurally malformed schemes — SpaceDims and
// TimePerm must partition the kernel dimensions exactly — before Realize,
// which assumes a well-formed scheme. Generated candidates always satisfy
// this; the check protects the ForceScheme escape hatch.
func checkSchemeShape(dim int, sch systolic.Scheme) error {
	if len(sch.SpaceDims) < 1 || len(sch.SpaceDims) > 2 {
		return diag.Failf(diag.ErrSchemeInfeasible, "scheme has %d space dims, want 1 or 2", len(sch.SpaceDims))
	}
	if len(sch.Skew) != len(sch.SpaceDims) {
		return diag.Failf(diag.ErrSchemeInfeasible, "scheme has %d skew coefficients for %d space dims", len(sch.Skew), len(sch.SpaceDims))
	}
	if len(sch.SpaceDims)+len(sch.TimePerm) != dim {
		return diag.Failf(diag.ErrSchemeInfeasible, "scheme covers %d of %d kernel dims", len(sch.SpaceDims)+len(sch.TimePerm), dim)
	}
	seen := make([]bool, dim)
	for _, d := range append(append([]int(nil), sch.SpaceDims...), sch.TimePerm...) {
		if d < 0 || d >= dim || seen[d] {
			return diag.Failf(diag.ErrSchemeInfeasible, "scheme dim %d out of range or repeated", d)
		}
		seen[d] = true
	}
	return nil
}

// runISDGBuild unrolls the kernel over the block — memoized, since
// attempts trying different schemes over the same block vector (and
// repeated compiles of the same kernel) share the artifact.
func runISDGBuild(c *CompileContext) error {
	dfg, isdg, err := c.Memo.ISDG(c.Kernel, c.Block)
	if err != nil {
		return err
	}
	c.DFG, c.ISDG = dfg, isdg
	c.Count("dfg-nodes", int64(len(dfg.Nodes)))
	return nil
}

// runForward inserts forwarding paths (AddForwardingPath, lines 14-17)
// and rebuilds the ISDG when the DFG changed. The memoized DFG is never
// mutated: ApplyForwarding returns a fresh graph or the original.
func runForward(c *CompileContext) error {
	fdfg, err := ApplyForwarding(c.DFG, c.ISDG, c.Mapping)
	if err != nil {
		return err
	}
	if fdfg != c.DFG {
		isdg, err := ir.BuildISDG(fdfg)
		if err != nil {
			return err
		}
		c.DFG, c.ISDG = fdfg, isdg
		c.Count("forwarded", 1)
	}
	return nil
}

// runPlace places the ISDG clusters on the virtual systolic array.
func runPlace(c *CompileContext) error {
	c.CP = PlaceClusters(c.ISDG, c.Mapping)
	return nil
}

// runUnique identifies the unique iteration classes (Figure 2) and fixes
// the block initiation interval II_B = depth × II_S.
func runUnique(c *CompileContext) error {
	c.Classes, c.ByCluster = IdentifyUnique(c.ISDG, c.CP)
	c.IIB = c.Sub.Depth * c.Mapping.IIS
	c.Count("unique-iters", int64(len(c.Classes)))
	return nil
}

// runRoute routes the canonical minimal DFG — one net per (unique class,
// producer) — under negotiated congestion.
func runRoute(c *CompileContext) error {
	c.lay = &layout{
		cg: c.Fab, g: c.ISDG, cp: c.CP, sub: c.Sub, iib: c.IIB,
		classes: c.Classes, byClust: c.ByCluster,
		ix:          buildNodeIndex(c.ISDG),
		policy:      c.Opts.RelayPolicy,
		workers:     c.Opts.Workers,
		incremental: c.Opts.IncrementalRoute,
		legacy:      c.Opts.routeLegacy,
		costModel:   c.Opts.costModel,
	}
	plans, rstats, err := c.lay.routeCanonical(c.Ctx, c.Opts.MaxRouteRounds)
	c.RStats = rstats
	c.Count("rounds", int64(rstats.Rounds))
	c.Count("nets", int64(rstats.CanonicalNets))
	c.Count("kept_classes", int64(rstats.KeptClasses))
	if err != nil {
		return err
	}
	c.Plans = plans
	return nil
}

// runReplicate stamps the canonical placements and routes onto every
// class member (line 29).
func runReplicate(c *CompileContext) error {
	cfg, err := c.lay.replicate(c.Plans)
	if err != nil {
		return err
	}
	c.Config = cfg
	return nil
}

// runValidate checks the emitted configuration end to end.
func runValidate(c *CompileContext) error {
	if err := c.Config.Validate(); err != nil {
		return diag.Fail(diag.ErrConfigInvalid, err)
	}
	return nil
}

// buildResult assembles the Result of a successful attempt, deriving the
// per-step Stats from the pipeline's stage wall times.
func (c *CompileContext) buildResult() *Result {
	util := float64(c.DFG.NumCompute()) / float64(c.Fab.NumPEs()*c.IIB)
	return &Result{
		Kernel: c.Kernel, Fabric: c.Fab, CGRA: c.Fab.CGRA,
		Sub: c.Sub, Scheme: c.Scheme, Mapping: c.Mapping,
		Block: c.Block, IIB: c.IIB,
		DFG: c.DFG, ISDG: c.ISDG, CP: c.CP,
		UniqueIters: len(c.Classes),
		Classes:     c.Classes,
		ByCluster:   c.ByCluster,
		Config:      c.Config,
		Utilization: util,
		Stats: Stats{
			PlaceTime: c.wall[StageBlockDerive] + c.wall[StageISDGBuild] +
				c.wall[StageForward] + c.wall[StagePlace] + c.wall[StageUnique],
			RouteTime:     c.wall[StageRoute],
			ReplicateTime: c.wall[StageReplicate] + c.wall[StageValidate],
			CanonicalNets: c.RStats.CanonicalNets,
			RouteRounds:   c.RStats.Rounds,
			KeptClasses:   c.RStats.KeptClasses,
		},
	}
}
