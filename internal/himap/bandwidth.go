package himap

import (
	"math/bits"
	"sort"

	"himap/internal/arch"
	"himap/internal/diag"
	"himap/internal/ir"
	"himap/internal/mrrg"
)

// Bandwidth feasibility pre-check (step 3 front): before any congestion
// negotiation, count the link departures the placed schedule *forces*
// against the fabric's declared bandwidth and fail with a typed
// diag.ErrBandwidthInfeasible when demand provably exceeds capacity.
//
// The argument: consider a placed producer (FU or memory-read slot) at
// (t_s, p_s) feeding a placed compute consumer at (t_c, p_c) with hop
// distance h = HopDist(p_s, p_c) ≥ 1. Every delivery path crosses h
// links, each advancing exactly one cycle, and the only legal operand
// endpoints are a neighbor output register at t_c − 1 (direct operand),
// or the consumer's RF read at t_c — which needs arrival by t_c − 2 and
// so is strictly tighter. Delaying departure costs at least one cycle
// (an RF write/read detour at the source). Hence when t_c − t_s == h
// the value must enter an output register of the source PE at exactly
// cycle t_s, in a direction whose neighbor is h−1 hops from the
// consumer. Each such dependence yields a *forced departure* with a
// direction mask; a net (one producer) satisfies its forced sinks by
// choosing one direction per sink, and distinct chosen directions are
// distinct same-cycle drives. The minimum number of drives a net needs
// is the minimum direction cover of its masks (exact, by subset
// enumeration — a greedy cover could overcount and would be unsound).
//
// Occupancy wraps modulo II_B and replicas appear as separate DFG
// instances, so summing forced drives per (wrapped PE, wrapped cycle)
// lower-bounds what any routing must charge:
//
//   - shared-bus fabrics provide one egress drive per PE per cycle, so
//     a total cover above 1 is infeasible;
//   - otherwise each direction provides LinkCapacity lanes, so more
//     singleton-forced nets on one direction than lanes is infeasible.
//
// Everything skipped (stores, relay pins, slack deliveries) only ever
// under-counts demand, so a reported infeasibility is a proof, not a
// heuristic.

// bwEdge is one placed producer→consumer dependence the demand counter
// inspects; net groups the edges of one producer instance (its drives
// in one direction are shared).
type bwEdge struct {
	net      int32
	src, dst mrrg.Node
}

// bwDemand is one forced departure: at key (wrapped PE × II + wrapped
// cycle), net must drive some direction of mask.
type bwDemand struct {
	key  int64
	net  int32
	mask uint16
}

// checkBandwidth runs the pre-check over the full placed DFG. Unit-
// bandwidth fabrics skip it entirely, so legacy failure classes are
// byte-identical to the pre-seam pipeline.
func (l *layout) checkBandwidth() error {
	if l.cg.Bandwidth == arch.BWUnit {
		return nil
	}
	d := l.g.DFG
	var edges []bwEdge
	for _, n := range d.Nodes {
		if !n.Kind.IsCompute() && n.Kind != ir.OpLoad {
			continue
		}
		src, ok := l.nodeAbs(n.ID)
		if !ok {
			continue
		}
		for _, ei := range d.OutEdges(n.ID) {
			to := d.Nodes[d.Edges[ei].To]
			if !to.Kind.IsCompute() {
				continue
			}
			dst, ok := l.nodeAbs(to.ID)
			if !ok {
				continue
			}
			edges = append(edges, bwEdge{net: int32(n.ID), src: src, dst: dst})
		}
	}
	return checkEdgeBandwidth(l.cg, l.iib, edges)
}

// checkEdgeBandwidth is the fabric-level core of the pre-check,
// factored out of the layout so crafted schedules can exercise it
// directly in tests.
func checkEdgeBandwidth(f arch.Fabric, ii int, edges []bwEdge) error {
	nd := f.NumLinkDirs()
	var dem []bwDemand
	for _, e := range edges {
		sr, sc := f.WrapCoord(e.src.R, e.src.C)
		dr, dc := f.WrapCoord(e.dst.R, e.dst.C)
		h := f.HopDist(sr, sc, dr, dc)
		if h < 1 || e.dst.T-e.src.T != h {
			continue // slack (or a latency failure routing will report)
		}
		var mask uint16
		for d := 0; d < nd; d++ {
			nr, nc, ok := f.LinkNeighbor(sr, sc, arch.Dir(d))
			if ok && f.HopDist(nr, nc, dr, dc) == h-1 {
				mask |= 1 << uint(d)
			}
		}
		if mask == 0 {
			continue
		}
		dem = append(dem, bwDemand{
			key:  int64(sr*f.Cols+sc)*int64(ii) + int64(wrapMod(e.src.T, ii)),
			net:  e.net,
			mask: mask,
		})
	}
	sort.Slice(dem, func(i, j int) bool {
		if dem[i].key != dem[j].key {
			return dem[i].key < dem[j].key
		}
		if dem[i].net != dem[j].net {
			return dem[i].net < dem[j].net
		}
		return dem[i].mask < dem[j].mask
	})
	lanes := f.LinkCapacity()
	bus := f.SharedOutBus()
	var masks []uint16
	for i := 0; i < len(dem); {
		j := i
		for j < len(dem) && dem[j].key == dem[i].key {
			j++
		}
		group := dem[i:j]
		pe := int(dem[i].key / int64(ii))
		tau := int(dem[i].key % int64(ii))
		if bus {
			total := 0
			for a := 0; a < len(group); {
				b := a
				for b < len(group) && group[b].net == group[a].net {
					b++
				}
				masks = masks[:0]
				for _, g := range group[a:b] {
					masks = append(masks, g.mask)
				}
				total += minDirCover(masks, nd)
				a = b
			}
			if total > 1 {
				return diag.Failf(diag.ErrBandwidthInfeasible,
					"himap: PE(%d,%d) must drive %d distinct link departures at cycle %d (mod %d), but the shared bus of the %s fabric provides 1 per cycle",
					pe/f.Cols, pe%f.Cols, total, tau, ii, f)
			}
		} else {
			var cnt [16]int
			var last [16]int32
			for k := range last {
				last[k] = -1
			}
			for _, g := range group {
				if bits.OnesCount16(g.mask) != 1 {
					continue // a direction choice remains: not forced onto one link
				}
				d := bits.TrailingZeros16(uint16(g.mask))
				if last[d] == g.net {
					continue
				}
				last[d] = g.net
				cnt[d]++
				if cnt[d] > lanes {
					return diag.Failf(diag.ErrBandwidthInfeasible,
						"himap: link %s out of PE(%d,%d) must carry %d distinct values at cycle %d (mod %d), but the %s fabric provides %d lanes",
						arch.Dir(d), pe/f.Cols, pe%f.Cols, cnt[d], tau, ii, f, lanes)
				}
			}
		}
		i = j
	}
	return nil
}

// minDirCover returns the exact minimum number of directions needed so
// every mask contains a chosen direction — the fewest same-cycle drives
// that satisfy one net's forced sinks. nd ≤ 8, so exhaustive subset
// enumeration (≤ 256 candidates) is exact and cheap; a greedy cover
// could return an overestimate, which would make the pre-check unsound.
func minDirCover(masks []uint16, nd int) int {
	if len(masks) == 0 {
		return 0
	}
	best := nd
	all := 1 << uint(nd)
	for s := 1; s < all; s++ {
		pc := bits.OnesCount16(uint16(s))
		if pc >= best {
			continue
		}
		covers := true
		for _, m := range masks {
			if int(m)&s == 0 {
				covers = false
				break
			}
		}
		if covers {
			best = pc
		}
	}
	return best
}
