// Package viz renders CGRA mapping schedules as text: the space-time grid
// view of Figure 2 (which PE executes what at which cycle) and per-PE
// configuration listings.
package viz

import (
	"fmt"
	"strings"

	"himap/internal/arch"
	"himap/internal/ir"
)

// cellOf abbreviates one instruction for the grid view.
func cellOf(in *arch.Instr) string {
	switch {
	case in.Op.IsCompute():
		return in.Op.String()
	case in.MemRead.Active && in.MemWrite.Active:
		return "ld/st"
	case in.MemRead.Active:
		return "ld"
	case in.MemWrite.Active:
		return "st"
	}
	for d := arch.Dir(0); d < arch.MaxDirs; d++ {
		if in.OutSel[d].Kind != arch.OpdNone && in.OutSel[d].Kind != arch.OpdHold {
			return "rt"
		}
	}
	if len(in.RegWr) > 0 {
		return "rf"
	}
	if in.IsNop() {
		return "."
	}
	return "~"
}

// ScheduleGrid renders the II-cycle schedule, one PE grid per cycle.
func ScheduleGrid(cfg *arch.Config) string {
	var b strings.Builder
	width := 5
	for t := 0; t < cfg.II; t++ {
		fmt.Fprintf(&b, "cycle %d (of II=%d)\n", t, cfg.II)
		for r := 0; r < cfg.Fabric.Rows; r++ {
			for c := 0; c < cfg.Fabric.Cols; c++ {
				cell := cellOf(&cfg.Slots[r][c][t])
				if len(cell) > width-1 {
					cell = cell[:width-1]
				}
				fmt.Fprintf(&b, "%-*s", width, cell)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// PEProgram lists PE (r, c)'s instruction stream.
func PEProgram(cfg *arch.Config, r, c int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "PE(%d,%d) program (II=%d, %d unique words):\n", r, c, cfg.II, cfg.UniqueInstrs(r, c))
	for t := 0; t < cfg.II; t++ {
		in := &cfg.Slots[r][c][t]
		fmt.Fprintf(&b, "  t%-3d %s", t, in.String())
		if in.Comment != "" {
			fmt.Fprintf(&b, "   ; %s", in.Comment)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// UtilizationMap renders per-PE FU utilization as a percentage grid.
func UtilizationMap(cfg *arch.Config) string {
	var b strings.Builder
	for r := 0; r < cfg.Fabric.Rows; r++ {
		for c := 0; c < cfg.Fabric.Cols; c++ {
			busy := 0
			for t := 0; t < cfg.II; t++ {
				if cfg.Slots[r][c][t].Op.IsCompute() {
					busy++
				}
			}
			fmt.Fprintf(&b, "%4d%%", busy*100/cfg.II)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// OpHistogram counts configured operations by kind.
func OpHistogram(cfg *arch.Config) map[ir.OpKind]int {
	out := map[ir.OpKind]int{}
	for r := 0; r < cfg.Fabric.Rows; r++ {
		for c := 0; c < cfg.Fabric.Cols; c++ {
			for t := 0; t < cfg.II; t++ {
				op := cfg.Slots[r][c][t].Op
				if op != ir.OpNop {
					out[op]++
				}
			}
		}
	}
	return out
}
