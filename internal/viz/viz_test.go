package viz

import (
	"strings"
	"testing"

	"himap/internal/arch"
	"himap/internal/himap"
	"himap/internal/ir"
	"himap/internal/kernel"
)

func gemmConfig(t *testing.T) *arch.Config {
	t.Helper()
	res, err := himap.Compile(kernel.GEMM(), arch.Default(4, 4), himap.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res.Config
}

func TestScheduleGridShape(t *testing.T) {
	cfg := gemmConfig(t)
	s := ScheduleGrid(cfg)
	if got := strings.Count(s, "cycle "); got != cfg.II {
		t.Errorf("grid has %d cycle headers, want %d", got, cfg.II)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != cfg.II*(1+cfg.Fabric.Rows) {
		t.Errorf("grid has %d lines, want %d", len(lines), cfg.II*(1+cfg.Fabric.Rows))
	}
	if !strings.Contains(s, "mul") || !strings.Contains(s, "add") {
		t.Error("GEMM grid should show mul and add cells")
	}
}

func TestPEProgramContainsInstructions(t *testing.T) {
	cfg := gemmConfig(t)
	s := PEProgram(cfg, 1, 1)
	if !strings.Contains(s, "PE(1,1)") {
		t.Errorf("missing header: %q", s)
	}
	if got := strings.Count(s, "\n  t"); got != cfg.II {
		t.Errorf("program lists %d slots, want %d", got, cfg.II)
	}
}

func TestUtilizationMapFullGEMM(t *testing.T) {
	cfg := gemmConfig(t)
	s := UtilizationMap(cfg)
	if strings.Contains(s, "  0%") {
		t.Errorf("100%%-utilized GEMM shows idle PEs:\n%s", s)
	}
	if got := strings.Count(s, "100%"); got != 16 {
		t.Errorf("%d PEs at 100%%, want 16", got)
	}
}

func TestOpHistogram(t *testing.T) {
	cfg := gemmConfig(t)
	h := OpHistogram(cfg)
	// 4x4 at 100% for II=8: 128 compute slots, half mul half add.
	if h[ir.OpMul] != 64 || h[ir.OpAdd] != 64 {
		t.Errorf("histogram = %v, want 64 mul / 64 add", h)
	}
}

func TestCellOfClassification(t *testing.T) {
	var in arch.Instr
	if got := cellOf(&in); got != "." {
		t.Errorf("nop cell = %q", got)
	}
	in.MemRead = arch.MemOp{Active: true}
	if got := cellOf(&in); got != "ld" {
		t.Errorf("load cell = %q", got)
	}
	in = arch.Instr{}
	in.OutSel[arch.East] = arch.FromIn(arch.West)
	if got := cellOf(&in); got != "rt" {
		t.Errorf("route cell = %q", got)
	}
	in = arch.Instr{Op: ir.OpMin, SrcA: arch.FromConst(1), SrcB: arch.FromConst(2)}
	if got := cellOf(&in); got != "min" {
		t.Errorf("compute cell = %q", got)
	}
}
