package exact

import (
	"context"
	"time"

	"himap/internal/arch"
	"himap/internal/ir"
	"himap/internal/mrrg"
	"himap/internal/route"
)

type searchStatus int

const (
	statusRouted   searchStatus = iota // found and detail-routed a mapping
	statusRefuted                      // search space exhausted, no complete placement: II infeasible (within horizon)
	statusUnproven                     // placements exist but none routed (or leaf cap hit): no verdict
	statusBudget                       // time budget expired
	statusCanceled                     // context canceled
)

// bitset is a fixed-width set of decision depths.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i>>6] |= 1 << uint(i&63) }
func (b bitset) has(i int) bool { return b[i>>6]&(1<<uint(i&63)) != 0 }

func (b bitset) clear() {
	for i := range b {
		b[i] = 0
	}
}

func (b bitset) empty() bool {
	for _, w := range b {
		if w != 0 {
			return false
		}
	}
	return true
}

// max returns the highest member, or -1.
func (b bitset) max() int {
	for i := len(b) - 1; i >= 0; i-- {
		if w := b[i]; w != 0 {
			msb := 63
			for w&(1<<uint(msb)) == 0 {
				msb--
			}
			return i<<6 + msb
		}
	}
	return -1
}

// orWithout merges o \ {skip} into b.
func (b bitset) orWithout(o bitset, skip int) {
	for i := range b {
		b[i] |= o[i]
	}
	b[skip>>6] &^= 1 << uint(skip&63)
}

const (
	kindFU uint8 = iota
	kindMRD
	kindMWR
)

// searcher holds the branch-and-bound state for one (DFG, fabric, II)
// attempt. Decision variables are DFG nodes in topological order; values
// are (real cycle, PE) slots enumerated cycle-ascending with PEs ordered
// by hop distance from the first predecessor's placement.
type searcher struct {
	d    *ir.DFG
	fab  arch.Fabric
	ii   int
	opts Options

	order   []int // decision order (topological)
	depthOf []int // node id → depth
	asap    []int // earliest real cycle per node
	hi      []int // latest real cycle per node (horizon − tail)
	horizon int
	pes     int
	cols    int
	memOK   []bool  // per PE index
	isMem   []bool  // per node: load or store
	kindOf  []uint8 // per node slot kind

	capFU, capMRD, capMWR, egCap, capRFR, capRFW int

	at  []int // node id → assigned real cycle, −1 when unassigned
	ape []int // node id → assigned PE index

	cand  []int    // per depth: next candidate index
	peOrd [][]int  // per depth: frozen PE enumeration order
	confl []bitset // per depth: accumulated conflict set

	nogood   map[uint64]struct{}
	newPin   []int // scratch: preds newly pinned by the current candidate
	explored int64
	leaves   int
	sawLeaf  bool
	steps    int
}

const maxNogoods = 1 << 15

func newSearcher(d *ir.DFG, fab arch.Fabric, ii int, opts Options) *searcher {
	n := len(d.Nodes)
	s := &searcher{
		d: d, fab: fab, ii: ii, opts: opts,
		pes: fab.NumPEs(), cols: fab.Cols,
		nogood: make(map[uint64]struct{}),
	}
	s.order, _ = d.TopoOrder()
	s.depthOf = make([]int, n)
	for i, id := range s.order {
		s.depthOf[id] = i
	}
	s.memOK = make([]bool, s.pes)
	for p := 0; p < s.pes; p++ {
		s.memOK[p] = fab.MemCapable(p/s.cols, p%s.cols)
	}
	s.isMem = make([]bool, n)
	s.kindOf = make([]uint8, n)
	for id, nd := range d.Nodes {
		switch nd.Kind {
		case ir.OpLoad:
			s.isMem[id], s.kindOf[id] = true, kindMRD
		case ir.OpStore:
			s.isMem[id], s.kindOf[id] = true, kindMWR
		default:
			s.kindOf[id] = kindFU
		}
	}

	// ASAP / latest-cycle domains from the placement-independent minimum
	// edge latencies: 1 for an operand edge (same-PE forwarding needs a
	// register turnaround), 0 for a store edge (the write port is
	// reachable in the producer's own cycle).
	s.asap = make([]int, n)
	for _, id := range s.order {
		for _, ei := range d.InEdges(id) {
			e := d.Edges[ei]
			if lo := s.asap[e.From] + minNeed(d.Nodes[e.From].Kind, d.Nodes[id].Kind); lo > s.asap[id] {
				s.asap[id] = lo
			}
		}
	}
	span := 0
	for _, l := range s.asap {
		if l > span {
			span = l
		}
	}
	s.horizon = opts.Horizon
	if s.horizon == 0 {
		s.horizon = 2*ii + 2
	}
	maxT := span + s.horizon
	tail := make([]int, n)
	s.hi = make([]int, n)
	for i := len(s.order) - 1; i >= 0; i-- {
		id := s.order[i]
		for _, ei := range d.OutEdges(id) {
			e := d.Edges[ei]
			if tl := minNeed(d.Nodes[id].Kind, d.Nodes[e.To].Kind) + tail[e.To]; tl > tail[id] {
				tail[id] = tl
			}
		}
		s.hi[id] = maxT - tail[id]
	}

	// Capacities come from the same cost-model tables the PathFinder
	// router negotiates against, so relaxation and detailed routing agree
	// on what the fabric provides.
	g := mrrg.New(fab, ii)
	cm := route.For(g)
	s.capFU = cm.Capacity(mrrg.ClassFU)
	s.capMRD = cm.Capacity(mrrg.ClassMemRead)
	s.capMWR = cm.Capacity(mrrg.ClassMemWrite)
	s.egCap = cm.Capacity(mrrg.ClassOut)
	if !g.SharedOut() {
		s.egCap *= g.NumDirs()
	}
	s.capRFR = cm.Capacity(mrrg.ClassRFRead)
	s.capRFW = cm.Capacity(mrrg.ClassRFWrite)

	s.at = make([]int, n)
	s.ape = make([]int, n)
	for id := range s.at {
		s.at[id], s.ape[id] = -1, -1
	}
	s.cand = make([]int, n)
	s.peOrd = make([][]int, n)
	s.confl = make([]bitset, n)
	for i := range s.confl {
		s.confl[i] = newBitset(n)
	}
	return s
}

// minNeed is the placement-independent lower bound on an edge's latency.
// A store consumer can be written in the producer's arrival cycle, and a
// load producer on the consumer's own PE is readable directly from the
// memory read port in its own cycle, so both bound at 0; every other
// operand edge needs at least a register turnaround.
func minNeed(from, to ir.OpKind) int {
	if to == ir.OpStore || from == ir.OpLoad {
		return 0
	}
	return 1
}

func (s *searcher) wrap(t int) int { return ((t % s.ii) + s.ii) % s.ii }

func (s *searcher) hop(peA, peB int) int {
	return s.fab.HopDist(peA/s.cols, peA%s.cols, peB/s.cols, peB%s.cols)
}

// need is the exact minimum latency of edge u→v once both endpoints'
// PEs are known: the hop distance, except that a same-PE store write or
// a same-PE read of a load's memory port happens in-cycle (0), and every
// other same-PE operand edge needs a register turnaround (1).
func (s *searcher) need(fromKind, toKind ir.OpKind, peU, peV int) int {
	h := s.hop(peU, peV)
	if h > 0 || toKind == ir.OpStore || fromKind == ir.OpLoad {
		return h
	}
	return 1
}

func (s *searcher) slotCap(kind uint8) int {
	switch kind {
	case kindMRD:
		return s.capMRD
	case kindMWR:
		return s.capMWR
	default:
		return s.capFU
	}
}

// pinnedBy reports the depth of an assigned consumer that pins producer
// w's departure to its own firing cycle (cross-PE, zero slack), or −1.
func (s *searcher) pinnedBy(w int) int {
	for _, ei := range s.d.OutEdges(w) {
		x := s.d.Edges[ei].To
		if s.at[x] < 0 {
			continue
		}
		if h := s.hop(s.ape[w], s.ape[x]); h > 0 && s.at[x]-s.at[w] == h {
			return s.depthOf[x]
		}
	}
	return -1
}

// check tests candidate slot (t, pe) for the node at depth i against the
// three propagators. On rejection it merges the responsible decision
// depths into confl[i] and returns false.
func (s *searcher) check(i, v, t, pe int) bool {
	d := s.d
	// Timing against every placed predecessor.
	for _, ei := range d.InEdges(v) {
		u := d.Edges[ei].From
		if t-s.at[u] < s.need(d.Nodes[u].Kind, d.Nodes[v].Kind, s.ape[u], pe) {
			s.confl[i].set(s.depthOf[u])
			return false
		}
	}
	// Slot exclusivity: kind-specific port of (pe, t mod II).
	kind, tau := s.kindOf[v], s.wrap(t)
	cnt, cap := 0, s.slotCap(kind)
	for _, id := range s.order[:i] {
		if s.at[id] >= 0 && s.kindOf[id] == kind && s.ape[id] == pe && s.wrap(s.at[id]) == tau {
			cnt++
		}
	}
	if cnt >= cap {
		for _, id := range s.order[:i] {
			if s.at[id] >= 0 && s.kindOf[id] == kind && s.ape[id] == pe && s.wrap(s.at[id]) == tau {
				s.confl[i].set(s.depthOf[id])
			}
		}
		return false
	}
	// Aggregate egress: placing v may pin predecessors' departures.
	s.newPin = s.newPin[:0]
	for _, ei := range d.InEdges(v) {
		u := d.Edges[ei].From
		if h := s.hop(s.ape[u], pe); h > 0 && t-s.at[u] == h && s.pinnedBy(u) < 0 {
			s.newPin = append(s.newPin, u)
		}
	}
	for k, u := range s.newPin {
		peU, tauU := s.ape[u], s.wrap(s.at[u])
		cnt := 0
		for _, u2 := range s.newPin[:k+1] {
			if s.ape[u2] == peU && s.wrap(s.at[u2]) == tauU {
				cnt++
			}
		}
		for _, id := range s.order[:i] {
			if s.at[id] < 0 || s.ape[id] != peU || s.wrap(s.at[id]) != tauU {
				continue
			}
			if alreadyNew(s.newPin, id) {
				continue
			}
			if s.pinnedBy(id) >= 0 {
				cnt++
			}
		}
		if cnt > s.egCap {
			s.confl[i].set(s.depthOf[u])
			for _, u2 := range s.newPin[:k] {
				if s.ape[u2] == peU && s.wrap(s.at[u2]) == tauU {
					s.confl[i].set(s.depthOf[u2])
				}
			}
			for _, id := range s.order[:i] {
				if s.at[id] < 0 || s.ape[id] != peU || s.wrap(s.at[id]) != tauU || alreadyNew(s.newPin, id) {
					continue
				}
				if px := s.pinnedBy(id); px >= 0 {
					s.confl[i].set(s.depthOf[id])
					s.confl[i].set(px)
				}
			}
			return false
		}
	}
	return s.checkRF(i, v, t, pe)
}

// forcedRF reports whether the assigned edge u→x must pass through u's
// PE-local register file: same PE with unit slack leaves no cycle for a
// neighbor detour and no direct port read.
func (s *searcher) forcedRF(u, x int) bool {
	return s.ape[u] == s.ape[x] && s.at[x]-s.at[u] == 1
}

// forcedConsumerOf returns the depth of an assigned consumer that forces
// producer w's value through the RF, or −1.
func (s *searcher) forcedConsumerOf(w int) int {
	for _, ei := range s.d.OutEdges(w) {
		x := s.d.Edges[ei].To
		if s.at[x] >= 0 && s.forcedRF(w, x) {
			return s.depthOf[x]
		}
	}
	return -1
}

// checkRF tests the forced register-file port pressure of placing v at
// (t, pe): every newly forced edge pins one RF write in the producer's
// wrapped cycle and one RF read in the consumer's, against the fabric's
// RFWriteCap / RFReadCap port counts.
func (s *searcher) checkRF(i, v, t, pe int) bool {
	d := s.d
	// Distinct predecessors that become forced-RF writers/reads.
	s.newPin = s.newPin[:0]
	for _, ei := range d.InEdges(v) {
		u := d.Edges[ei].From
		if s.ape[u] == pe && t-s.at[u] == 1 && !alreadyNew(s.newPin, u) {
			s.newPin = append(s.newPin, u)
		}
	}
	if len(s.newPin) == 0 {
		return true
	}
	// Write ports: one per producer with ≥1 forced consumer, per
	// (producer PE, producer wrapped cycle). All new writers share pe.
	for k, u := range s.newPin {
		if s.forcedConsumerOf(u) >= 0 {
			continue // already counted as a writer
		}
		tauU := s.wrap(s.at[u])
		cnt := 1
		for _, u2 := range s.newPin[:k] {
			if s.forcedConsumerOf(u2) < 0 && s.wrap(s.at[u2]) == tauU {
				cnt++
			}
		}
		for _, id := range s.order[:i] {
			if s.at[id] < 0 || s.ape[id] != pe || s.wrap(s.at[id]) != tauU || alreadyNew(s.newPin, id) {
				continue
			}
			if s.forcedConsumerOf(id) >= 0 {
				cnt++
			}
		}
		if cnt > s.capRFW {
			s.confl[i].set(s.depthOf[u])
			for _, id := range s.order[:i] {
				if s.at[id] < 0 || s.ape[id] != pe || s.wrap(s.at[id]) != tauU {
					continue
				}
				if fx := s.forcedConsumerOf(id); fx >= 0 {
					s.confl[i].set(s.depthOf[id])
					s.confl[i].set(fx)
				}
			}
			return false
		}
	}
	// Read ports: one per distinct forced producer, per (consumer PE,
	// consumer wrapped cycle). v's new reads all land at (pe, t mod II).
	tau := s.wrap(t)
	cnt := len(s.newPin)
	for _, id := range s.order[:i] {
		if s.at[id] < 0 || s.ape[id] != pe || s.wrap(s.at[id]) != tau || id == v {
			continue
		}
		cnt += s.forcedReadUnits(id)
	}
	if cnt > s.capRFR {
		for _, u := range s.newPin {
			s.confl[i].set(s.depthOf[u])
		}
		for _, id := range s.order[:i] {
			if s.at[id] < 0 || s.ape[id] != pe || s.wrap(s.at[id]) != tau {
				continue
			}
			if s.forcedReadUnits(id) > 0 {
				s.confl[i].set(s.depthOf[id])
				for _, ei := range s.d.InEdges(id) {
					if u := s.d.Edges[ei].From; s.at[u] >= 0 && s.forcedRF(u, id) {
						s.confl[i].set(s.depthOf[u])
					}
				}
			}
		}
		return false
	}
	return true
}

// forcedReadUnits counts the distinct producers assigned consumer x must
// read from its RF in its firing cycle.
func (s *searcher) forcedReadUnits(x int) int {
	cnt := 0
	ins := s.d.InEdges(x)
	for a, ei := range ins {
		u := s.d.Edges[ei].From
		if s.at[u] < 0 || !s.forcedRF(u, x) {
			continue
		}
		dup := false
		for _, ej := range ins[:a] {
			if s.d.Edges[ej].From == u {
				dup = true
				break
			}
		}
		if !dup {
			cnt++
		}
	}
	return cnt
}

func alreadyNew(pins []int, id int) bool {
	for _, p := range pins {
		if p == id {
			return true
		}
	}
	return false
}

// freezePEOrder fixes the PE enumeration for a freshly entered depth:
// hop distance from the first placed predecessor ascending (ties by PE
// index), so leaves cluster producers and consumers and route easily.
func (s *searcher) freezePEOrder(i, v int) {
	ord := s.peOrd[i]
	if ord == nil {
		ord = make([]int, s.pes)
		s.peOrd[i] = ord
	}
	anchor := -1
	for _, ei := range s.d.InEdges(v) {
		if u := s.d.Edges[ei].From; s.at[u] >= 0 {
			anchor = s.ape[u]
			break
		}
	}
	for p := range ord {
		ord[p] = p
	}
	if anchor < 0 {
		return
	}
	// Insertion sort by (hop-from-anchor, index): pes is small.
	for a := 1; a < len(ord); a++ {
		p := ord[a]
		hp := s.hop(anchor, p)
		b := a - 1
		for b >= 0 && s.hop(anchor, ord[b]) > hp {
			ord[b+1] = ord[b]
			b--
		}
		ord[b+1] = p
	}
}

// prefixHash folds the first i assignments into an FNV-1a key for the
// no-good table.
func (s *searcher) prefixHash(i int) uint64 {
	h := uint64(14695981039346656037)
	step := func(x int) {
		h ^= uint64(uint32(x))
		h *= 1099511628211
	}
	step(i)
	for _, id := range s.order[:i] {
		step(s.at[id])
		step(s.ape[id])
	}
	return h
}

func (s *searcher) routeLeaf(ctx context.Context) (*arch.Config, error) {
	pl := make([]route.Placement, len(s.d.Nodes))
	for id := range pl {
		pl[id] = route.Placement{T: s.at[id], R: s.ape[id] / s.cols, C: s.ape[id] % s.cols}
	}
	return route.RouteDFG(ctx, s.d, s.fab, s.ii, pl, s.opts.RouteRounds)
}

// run drives the conflict-directed backjumping search to one of the five
// terminal statuses. Exhaustion without ever completing a placement is a
// sound refutation of this II within the horizon; exhaustion after
// unrouted complete placements is not (the detailed router is not
// complete), so it reports statusUnproven instead.
func (s *searcher) run(ctx context.Context, deadline time.Time) (searchStatus, *arch.Config) {
	n := len(s.order)
	exhausted := func() searchStatus {
		if s.sawLeaf {
			return statusUnproven
		}
		return statusRefuted
	}
	if n == 0 {
		return statusRefuted, nil
	}
	i := 0
	s.freezePEOrder(0, s.order[0])
	for {
		s.steps++
		if s.steps&255 == 0 {
			if ctx.Err() != nil {
				return statusCanceled, nil
			}
			if !deadline.IsZero() && time.Now().After(deadline) { //lint:ignore determinism opt-in TimeBudget deadline; documented nondeterminism when set
				return statusBudget, nil
			}
		}
		v := s.order[i]
		lo, hiT := s.asap[v], s.hi[v]
		domain := (hiT - lo + 1) * s.pes
		if domain < 0 {
			domain = 0 // horizon too tight for this node: structural wipeout
		}
		// A previously recorded no-good prefix wipes the subtree without
		// re-search; the chronological conflict set keeps CBJ sound.
		if s.cand[i] == 0 && i > 0 {
			if _, bad := s.nogood[s.prefixHash(i)]; bad {
				//lint:ignore ctxflow conflict-set fill bounded by depth i <= node count; the descent loop polls every 256 steps
				for dd := 0; dd < i; dd++ {
					s.confl[i].set(dd)
				}
				s.cand[i] = domain
			}
		}
		assigned := false
		//lint:ignore ctxflow candidate scan bounded by domain = window*PEs; the descent loop polls every 256 steps
		for s.cand[i] < domain {
			idx := s.cand[i]
			s.cand[i]++
			t := lo + idx/s.pes
			pe := s.peOrd[i][idx%s.pes]
			if s.isMem[v] && !s.memOK[pe] {
				continue
			}
			if s.check(i, v, t, pe) {
				s.at[v], s.ape[v] = t, pe
				s.explored++
				assigned = true
				break
			}
		}
		if assigned {
			i++
			if i == n {
				cfg, err := s.routeLeaf(ctx)
				if err == nil {
					return statusRouted, cfg
				}
				s.leaves++
				s.sawLeaf = true
				if s.leaves >= s.opts.MaxRoutedLeaves {
					return statusUnproven, nil
				}
				// The router is deterministic, so this full assignment can
				// never succeed. Each failed leaf restarts progressively
				// deeper (the f-th failure re-decides the last f variables)
				// so successive leaves diverge structurally instead of
				// permuting the final op. Refutation soundness is moot here
				// — a leaf exists, so this II can only end statusUnproven —
				// and the chronological conflict set keeps CBJ consistent.
				j := n - 1 - s.leaves
				if j < 0 {
					j = 0
				}
				for k := j + 1; k < n; k++ {
					id := s.order[k]
					s.at[id], s.ape[id] = -1, -1
					s.cand[k] = 0
					s.confl[k].clear()
				}
				last := s.order[j]
				s.at[last], s.ape[last] = -1, -1
				//lint:ignore ctxflow conflict-set fill bounded by depth j < node count; the descent loop polls every 256 steps
				for dd := 0; dd < j; dd++ {
					s.confl[j].set(dd)
				}
				i = j
				continue
			}
			s.freezePEOrder(i, s.order[i])
			continue
		}
		// Wipeout at depth i.
		if len(s.nogood) < maxNogoods {
			s.nogood[s.prefixHash(i)] = struct{}{}
		}
		if s.confl[i].empty() {
			return exhausted(), nil
		}
		j := s.confl[i].max()
		s.confl[j].orWithout(s.confl[i], j)
		//lint:ignore ctxflow backjump reset bounded by depth i <= node count; the descent loop polls every 256 steps
		for k := j + 1; k <= i; k++ {
			id := s.order[k]
			s.at[id], s.ape[id] = -1, -1
			s.cand[k] = 0
			s.confl[k].clear()
		}
		id := s.order[j]
		s.at[id], s.ape[id] = -1, -1
		i = j
	}
}
