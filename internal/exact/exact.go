// Package exact implements an exact CGRA mapper: iterative deepening on
// the initiation interval from the static ResMII/RecMII lower bound, with
// a conflict-directed branch-and-bound search over op → (PE, cycle)
// placements of the block DFG at each candidate II. Where the HiMap
// pipeline and the SA baseline are heuristics, this backend either finds
// a mapping or *proves* there is none at a given II, so its results carry
// optimality certificates and it serves as a quality oracle for the
// other two backends on small kernels (ROADMAP item 1; cf. SAT-MapIt and
// SAT-based exact modulo scheduling).
//
// # Soundness
//
// The search space at II = k is a relaxation of the full mapping problem:
// decision variables are op placements, and the propagators enforce only
// conditions that every routable mapping necessarily satisfies —
//
//   - slot exclusivity: FU / memory-read / memory-write occupancy of one
//     PE at one wrapped cycle is bounded by the route.CostModel capacity
//     tables (the same tables the PathFinder router negotiates against);
//   - timing: a consumer at hop distance h from its producer fires at
//     least max(1, h) cycles later (h for a store's write port, which is
//     reachable in the arrival cycle), with arch.Fabric.HopDist supplying
//     the per-topology exact distance;
//   - egress bandwidth: a producer with a zero-slack cross-PE consumer
//     must launch its value into an output register in its own firing
//     cycle, so the number of such pinned departures per (PE, wrapped
//     cycle) is bounded by the fabric's aggregate link egress capacity
//     (one output register's worth on shared-bus fabrics);
//   - memory ports: loads and stores sit only on memory-capable PEs.
//
// Exhausting the relaxation at II = k therefore soundly proves that no
// mapping at II = k exists within the scheduling horizon (see Options.
// Horizon; the certificate is horizon-relative, as in SAT-based modulo
// schedulers). A complete placement, conversely, proves nothing until
// the real detailed router (route.RouteDFG — shared with the baseline)
// turns it into a validated configuration, which is the upper-bound side
// of every certificate. If placements exist at II = k but none routes,
// the mapper does NOT claim k infeasible — the router is not complete —
// and optimality degrades to a lower bound only.
//
// Conflict analysis: every rejected candidate records which earlier
// decisions it conflicts with; on wipeout the search backjumps to the
// deepest decision in the accumulated conflict set (conflict-directed
// backjumping) and a bounded no-good table of failed assignment prefixes
// short-circuits re-exploration after restarts within the same II.
//
// Certificates are relative to the flat mapping space the solver (and
// the SA baseline) searches, where route pseudo-ops occupy FU slots as
// moves. HiMap's hierarchical flow realizes routes on routing resources
// instead, so the only bound valid against ANY mapper is LowerBound,
// which excludes routes from the FU term.
package exact

import (
	"context"
	"fmt"
	"time"

	"himap/internal/arch"
	"himap/internal/diag"
	"himap/internal/ir"
	"himap/internal/kernel"
)

// Options tunes the exact mapper.
type Options struct {
	// MaxNodes is the hard DFG size wall (default 96). Branch-and-bound
	// cost grows exponentially with the DFG, so the wall is far lower
	// than the baseline's 400-node heuristic wall.
	MaxNodes int
	// MaxII bounds the iterative deepening (default 16).
	MaxII int
	// TimeBudget bounds the whole search; 0 = unlimited. The budget is
	// polled inside the branch-and-bound loop, so expiry surfaces
	// promptly as a diag.ErrExactTimeout StageError carrying the
	// strongest lower bound proved so far.
	TimeBudget time.Duration
	// Horizon is the number of extra cycles beyond the DFG's ASAP span
	// that placements may use (the scheduling horizon; default 2·II+2,
	// matching the baseline SA's move window). Infeasibility
	// certificates are relative to this horizon.
	Horizon int
	// RouteRounds bounds the PathFinder rounds spent verifying each
	// complete placement (default 8).
	RouteRounds int
	// MaxRoutedLeaves caps how many complete placements are handed to
	// the detailed router per II before the search gives up on that II
	// without a verdict (default 256). The cap never affects refutation
	// certificates: a refuted II has, by definition, no leaves.
	MaxRoutedLeaves int
	// Tracer receives one span per II attempt (stage "search", Attempt =
	// II) plus the dfg-build span, on the same contract as the other
	// backends. nil means no tracing.
	Tracer diag.Tracer
}

func (o Options) withDefaults() Options {
	if o.MaxNodes == 0 {
		o.MaxNodes = 96
	}
	if o.MaxII == 0 {
		o.MaxII = 16
	}
	if o.RouteRounds == 0 {
		o.RouteRounds = 8
	}
	if o.MaxRoutedLeaves == 0 {
		o.MaxRoutedLeaves = 256
	}
	if o.Tracer == nil {
		o.Tracer = diag.Nop()
	}
	return o
}

// Certificate names how an Optimality claim was established.
type Certificate string

const (
	// CertNone: no optimality claim beyond the static lower bound.
	CertNone Certificate = ""
	// CertResMII: the achieved II equals the static ResMII/RecMII lower
	// bound, which is horizon-independent — minimality is unconditional.
	CertResMII Certificate = "resmii"
	// CertExhaustive: every II below the achieved one was refuted by
	// exhausting the branch-and-bound relaxation. The refutations are
	// relative to the scheduling horizon (Optimality.Horizon).
	CertExhaustive Certificate = "exhaustive"
)

// Optimality is the certificate block attached to every exact-mapper
// result (and threaded through Result and the himapd wire schema).
type Optimality struct {
	// ProvedMinimal reports that no mapping with a smaller II exists
	// (within the scheduling horizon for CertExhaustive).
	ProvedMinimal bool
	// IILowerBound is the strongest proved lower bound on the II: the
	// static ResMII/RecMII bound, raised by every exhaustively refuted
	// II. When ProvedMinimal, it equals the achieved II.
	IILowerBound int
	// Certificate says how minimality was established (empty when it
	// was not).
	Certificate Certificate
	// Explored counts branch-and-bound decisions across all II attempts.
	Explored int64
	// Horizon is the scheduling horizon (max extra cycles beyond the
	// ASAP span) the certificates are relative to.
	Horizon int
}

// Result is a completed exact mapping.
type Result struct {
	Kernel       *kernel.Kernel
	Fabric       arch.Fabric
	CGRA         arch.CGRA // Fabric.CGRA, for callers predating Fabric
	Block        []int
	II           int
	Config       *arch.Config
	Utilization  float64
	Optimality   Optimality
	Time         time.Duration
	RoutedLeaves int // complete placements handed to the detailed router
}

// Summary renders a one-line description.
func (r *Result) Summary() string {
	proof := "upper bound"
	if r.Optimality.ProvedMinimal {
		proof = fmt.Sprintf("proved minimal, certificate %s", r.Optimality.Certificate)
	}
	return fmt.Sprintf("%s on %s (exact): block %v, II %d (%s), U = %.1f%%",
		r.Kernel.Name, r.Fabric, r.Block, r.II, proof, r.Utilization*100)
}

// ErrTooLarge is returned when the DFG exceeds the exact mapper's
// branch-and-bound size wall.
type ErrTooLarge struct{ Nodes, Max int }

func (e ErrTooLarge) Error() string {
	return fmt.Sprintf("exact: DFG with %d nodes exceeds the %d-node exact-search wall", e.Nodes, e.Max)
}

// LowerBound returns the static resource lower bound on the II of ANY
// mapping of the kernel's block DFG onto the fabric, without running the
// search: compute ops against the PE count (every compute op needs an FU
// issue slot) and loads/stores against the memory-capable PE count
// (every access needs a memory port cycle). Route pseudo-ops are
// excluded — HiMap realizes them on routing resources without an FU
// slot, so counting them would overclaim against the hierarchical flow.
// It is the bound HiMap and baseline IIs can be regression-tested
// against even at block sizes the exact search cannot reach.
func LowerBound(k *kernel.Kernel, fab arch.Fabric, block []int) (int, error) {
	if k == nil {
		return 0, diag.Failf(diag.ErrInvalidRequest, "nil kernel").Stamp("request", "", fab.String(), 0)
	}
	d, err := k.BuildDFG(block)
	if err != nil {
		return 0, err
	}
	return resourceMII(d, fab, false)
}

// staticMII computes the resource-constrained minimum II of the flat
// mapping space the exact solver (and the SA baseline) searches, where
// route pseudo-ops occupy FU slots as moves. The block DFG is acyclic,
// so the recurrence-constrained bound is 1. Optimality certificates are
// relative to this space — see the package comment.
func staticMII(d *ir.DFG, fab arch.Fabric) (int, error) {
	return resourceMII(d, fab, true)
}

// resourceMII is the shared bound: FU ops (compute, plus routes when the
// encoding places them on FUs) against the PE count, and loads/stores
// against the memory-capable PE count.
func resourceMII(d *ir.DFG, fab arch.Fabric, routesOnFU bool) (int, error) {
	nfu, nload, nstore := d.NumCompute(), 0, 0
	for _, n := range d.Nodes {
		switch n.Kind {
		case ir.OpLoad:
			nload++
		case ir.OpStore:
			nstore++
		case ir.OpRoute:
			if routesOnFU {
				nfu++
			}
		}
	}
	pes := fab.NumPEs()
	mem := fab.NumMemPEs()
	if mem == 0 && nload+nstore > 0 {
		return 0, diag.Failf(diag.ErrMemPortInfeasible,
			"%d loads and %d stores on a fabric with no memory-capable PE", nload, nstore).
			Stamp("search", "", fab.String(), 0)
	}
	mii := (nfu + pes - 1) / pes
	if mem > 0 {
		if m := (nload + mem - 1) / mem; m > mii {
			mii = m
		}
		if m := (nstore + mem - 1) / mem; m > mii {
			mii = m
		}
	}
	if mii < 1 {
		mii = 1
	}
	return mii, nil
}

// Compile maps the kernel's block DFG exactly onto the CGRA (mesh links,
// every PE memory-capable). Use CompileRequest to target other fabrics
// or to bound the search with a context.
func Compile(k *kernel.Kernel, cg arch.CGRA, block []int, opts Options) (*Result, error) {
	return CompileRequest(context.Background(), k, arch.Fabric{CGRA: cg}, block, opts)
}

// CompileRequest is the context-aware exact entry point: iterative
// deepening on II from the static lower bound, branch-and-bound at each
// II, detailed routing (route.RouteDFG) of every complete placement, and
// an Optimality certificate on success. Failure classes:
//
//   - diag.ErrProvedInfeasible: every II up to MaxII was exhaustively
//     refuted (within the horizon) — no mapping exists;
//   - diag.ErrExactTimeout: TimeBudget expired first; the error text
//     carries the strongest lower bound proved;
//   - diag.ErrCanceled: the context was canceled;
//   - diag.ErrPlacementInfeasible: the deepening ran out of IIs without
//     either a mapping or a complete refutation (router incompleteness
//     or the leaf cap) — no infeasibility is claimed.
func CompileRequest(ctx context.Context, k *kernel.Kernel, fab arch.Fabric, block []int, opts Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if k == nil {
		return nil, diag.Failf(diag.ErrInvalidRequest, "nil kernel").Stamp("request", "", fab.String(), 0)
	}
	opts = opts.withDefaults()
	if err := fab.Validate(); err != nil {
		return nil, err
	}
	start := time.Now() //lint:ignore determinism wall-clock span timing only; does not influence mapping
	deadline := time.Time{}
	if opts.TimeBudget > 0 {
		deadline = start.Add(opts.TimeBudget)
	}
	if block == nil {
		block = k.UniformBlock(2)
	}
	// Reject oversized blocks before materializing the DFG (the body-op
	// count per iteration is a lower bound on DFG nodes).
	if lower := ir.BoxSize(block) * len(k.Body); lower > opts.MaxNodes {
		return nil, ErrTooLarge{Nodes: lower, Max: opts.MaxNodes}
	}
	buildStart := time.Now() //lint:ignore determinism wall-clock span timing only; does not influence mapping
	d, err := k.BuildDFG(block)
	if err != nil {
		return nil, err
	}
	opts.Tracer.Emit(diag.Span{Stage: "dfg-build", Wall: time.Since(buildStart),
		Counters: map[string]int64{"nodes": int64(len(d.Nodes))}})
	if len(d.Nodes) > opts.MaxNodes {
		return nil, ErrTooLarge{Nodes: len(d.Nodes), Max: opts.MaxNodes}
	}
	mii, err := staticMII(d, fab)
	if err != nil {
		if se, ok := err.(*diag.StageError); ok {
			se.Kernel = k.Name
		}
		return nil, err
	}

	var explored int64
	leaves := 0
	lb := mii            // strongest proved lower bound
	refutedBelow := true // every II in [mii, current) exhaustively refuted
	horizonUsed := 0     // horizon of the last search (for the certificate)
	for ii := mii; ii <= opts.MaxII; ii++ {
		if err := ctx.Err(); err != nil {
			return nil, diag.Fail(diag.ErrCanceled, err).Stamp("search", k.Name, fab.String(), ii)
		}
		s := newSearcher(d, fab, ii, opts)
		horizonUsed = s.horizon
		searchStart := time.Now() //lint:ignore determinism wall-clock span timing only; does not influence mapping
		st, cfg := s.run(ctx, deadline)
		explored += s.explored
		leaves += s.leaves
		span := diag.Span{Stage: "search", Attempt: ii, Wall: time.Since(searchStart),
			Counters: map[string]int64{"explored": s.explored, "leaves": int64(s.leaves)}}
		switch st {
		case statusRouted:
			opts.Tracer.Emit(span)
			opt := Optimality{IILowerBound: lb, Explored: explored, Horizon: s.horizon}
			switch {
			case ii == mii:
				opt.ProvedMinimal, opt.Certificate, opt.IILowerBound = true, CertResMII, ii
			case refutedBelow:
				opt.ProvedMinimal, opt.Certificate, opt.IILowerBound = true, CertExhaustive, ii
			}
			return &Result{
				Kernel: k, Fabric: fab, CGRA: fab.CGRA, Block: block, II: ii,
				Config:       cfg,
				Utilization:  float64(d.NumCompute()) / float64(fab.NumPEs()*ii),
				Optimality:   opt,
				Time:         time.Since(start),
				RoutedLeaves: leaves,
			}, nil
		case statusRefuted:
			if refutedBelow {
				lb = ii + 1
			}
			span.Err = fmt.Sprintf("II %d refuted (%d decisions)", ii, s.explored)
			opts.Tracer.Emit(span)
		case statusUnproven:
			refutedBelow = false
			span.Err = fmt.Sprintf("II %d inconclusive: placements found but none routed", ii)
			opts.Tracer.Emit(span)
		case statusCanceled:
			return nil, diag.Fail(diag.ErrCanceled, ctx.Err()).Stamp("search", k.Name, fab.String(), ii)
		case statusBudget:
			return nil, diag.Failf(diag.ErrExactTimeout,
				"budget %v expired at II %d after %d decisions; proved II ≥ %d",
				opts.TimeBudget, ii, explored, lb).
				Stamp("search", k.Name, fab.String(), ii)
		}
	}
	if refutedBelow {
		return nil, diag.Failf(diag.ErrProvedInfeasible,
			"every II in [%d, %d] exhaustively refuted within horizon %d", mii, opts.MaxII, horizonUsed).
			Stamp("search", k.Name, fab.String(), opts.MaxII)
	}
	return nil, diag.Failf(diag.ErrPlacementInfeasible,
		"no routable placement up to II %d (proved II ≥ %d; some IIs had unrouted placements)",
		opts.MaxII, lb).
		Stamp("search", k.Name, fab.String(), opts.MaxII)
}
