package exact

import (
	"context"
	"errors"
	"testing"
	"time"

	"himap/internal/arch"
	"himap/internal/baseline"
	"himap/internal/diag"
	"himap/internal/kernel"
	"himap/internal/sim"
)

// acceptance instances: small enough for the search to close, large
// enough to exercise memory ports, RF turnaround, and egress pinning.
const (
	accSize   = 4
	accBlock  = 2
	accBudget = 60 * time.Second
)

// TestProvedMinimalSmallKernels is the headline acceptance criterion:
// the exact backend proves the minimal II — with a certificate — on at
// least 3 of the 8 evaluation kernels at 4x4/block-2 within the budget,
// and every emitted mapping is functionally correct on the
// cycle-accurate simulator. The four kernels below close in
// milliseconds; their IIs and certificates are pinned.
func TestProvedMinimalSmallKernels(t *testing.T) {
	want := map[string]int{"ATAX": 2, "BICG": 2, "MVT": 2, "TTM": 4}
	proved := 0
	for name, wantII := range want {
		name, wantII := name, wantII
		t.Run(name, func(t *testing.T) {
			k, err := kernel.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Compile(k, arch.Default(accSize, accSize), k.UniformBlock(accBlock),
				Options{TimeBudget: accBudget})
			if err != nil {
				t.Fatalf("Compile: %v", err)
			}
			if res.II != wantII {
				t.Errorf("II = %d, want %d", res.II, wantII)
			}
			if !res.Optimality.ProvedMinimal {
				t.Fatalf("II %d not proved minimal (lb %d, cert %q)",
					res.II, res.Optimality.IILowerBound, res.Optimality.Certificate)
			}
			if res.Optimality.Certificate != CertResMII {
				t.Errorf("certificate %q, want %q", res.Optimality.Certificate, CertResMII)
			}
			if res.Optimality.IILowerBound != res.II {
				t.Errorf("proved-minimal lower bound %d != II %d", res.Optimality.IILowerBound, res.II)
			}
			if err := sim.Validate(res.Config, k, res.Block, 3, 7); err != nil {
				t.Errorf("exact mapping fails cycle-accurate validation: %v", err)
			}
			proved++
		})
	}
	if proved < 3 {
		t.Errorf("only %d kernels proved minimal, acceptance requires >= 3", proved)
	}
}

// TestExactIsUpperBoundedBySA: on the same instance (kernel, block,
// fabric), the exact mapper never returns a worse II than the SA
// baseline — it searches the same flat space exhaustively.
func TestExactIsUpperBoundedBySA(t *testing.T) {
	if testing.Short() {
		t.Skip("8 SA + 8 exact compiles")
	}
	for _, k := range kernel.Evaluation() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			block := k.UniformBlock(accBlock)
			eres, err := Compile(k, arch.Default(accSize, accSize), block, Options{TimeBudget: accBudget})
			if err != nil {
				t.Fatalf("exact: %v", err)
			}
			bres, err := baseline.Compile(k, arch.Default(accSize, accSize), block, baseline.Options{Seed: 1})
			if err != nil {
				t.Fatalf("baseline: %v", err)
			}
			if eres.II > bres.II {
				t.Errorf("exact II %d worse than SA II %d on the same instance", eres.II, bres.II)
			}
			if eres.Optimality.ProvedMinimal && bres.II < eres.II {
				t.Errorf("SA II %d beats a proved-minimal exact II %d — certificate unsound", bres.II, eres.II)
			}
		})
	}
}

// TestLowerBoundStatic pins LowerBound's universal semantics: route
// pseudo-ops are excluded from the FU term, loads and stores bound
// separately, floor 1.
func TestLowerBoundStatic(t *testing.T) {
	k, err := kernel.ByName("MVT")
	if err != nil {
		t.Fatal(err)
	}
	lb, err := LowerBound(k, arch.DefaultFabric(accSize, accSize), k.UniformBlock(accBlock))
	if err != nil {
		t.Fatal(err)
	}
	if lb < 1 {
		t.Errorf("LowerBound = %d, want >= 1", lb)
	}
	// A proved-minimal exact II can never undercut the universal bound.
	res, err := Compile(k, arch.Default(accSize, accSize), k.UniformBlock(accBlock),
		Options{TimeBudget: accBudget})
	if err != nil {
		t.Fatal(err)
	}
	if res.II < lb {
		t.Errorf("exact II %d below the universal lower bound %d", res.II, lb)
	}
	if _, err := LowerBound(nil, arch.DefaultFabric(accSize, accSize), nil); !errors.Is(err, diag.ErrInvalidRequest) {
		t.Errorf("LowerBound(nil kernel) = %v, want ErrInvalidRequest", err)
	}
}

// TestTooLargeRefused: the node wall refuses hopeless instances with a
// typed error, before and after DFG materialization.
func TestTooLargeRefused(t *testing.T) {
	k, err := kernel.ByName("GEMM")
	if err != nil {
		t.Fatal(err)
	}
	_, err = Compile(k, arch.Default(accSize, accSize), k.UniformBlock(8), Options{})
	var tooLarge ErrTooLarge
	if !errors.As(err, &tooLarge) {
		t.Fatalf("oversized block: %v, want ErrTooLarge", err)
	}
	if tooLarge.Nodes <= tooLarge.Max {
		t.Errorf("ErrTooLarge reports %d nodes under the %d wall", tooLarge.Nodes, tooLarge.Max)
	}
}

// TestDeterministicResults: two independent searches of the same
// instance return identical placements (the search has no hidden
// randomness or wall-clock dependence when TimeBudget is unset).
func TestDeterministicResults(t *testing.T) {
	k, err := kernel.ByName("BICG")
	if err != nil {
		t.Fatal(err)
	}
	a, err := Compile(k, arch.Default(accSize, accSize), k.UniformBlock(accBlock), Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compile(k, arch.Default(accSize, accSize), k.UniformBlock(accBlock), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.II != b.II || a.Optimality != b.Optimality {
		t.Fatalf("nondeterministic result: %+v vs %+v", a.Optimality, b.Optimality)
	}
	for r := 0; r < accSize; r++ {
		for c := 0; c < accSize; c++ {
			for tt := 0; tt < a.Config.II; tt++ {
				if a.Config.At(r, c, tt).String() != b.Config.At(r, c, tt).String() {
					t.Fatalf("configs differ at r%d c%d t%d", r, c, tt)
				}
			}
		}
	}
}

// TestCanceledContext: cancellation surfaces as ErrCanceled with the
// original context error in the chain.
func TestCanceledContext(t *testing.T) {
	k, err := kernel.ByName("FW")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = CompileRequest(ctx, k, arch.DefaultFabric(accSize, accSize), k.UniformBlock(accBlock), Options{})
	if !errors.Is(err, diag.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Errorf("canceled compile: %v, want ErrCanceled wrapping context.Canceled", err)
	}
}

// TestProvedInfeasibleTinyFabric: a 1x1 fabric cannot hold a multi-op
// kernel block within MaxII; the mapper must either prove infeasibility
// or report honest unprovenness — never claim success.
func TestProvedInfeasibleTinyFabric(t *testing.T) {
	k, err := kernel.ByName("MVT")
	if err != nil {
		t.Fatal(err)
	}
	// Block 2 MVT needs more memory ports per II than one PE provides at
	// MaxII 3, so every candidate II is refuted by the port propagators.
	_, err = CompileRequest(context.Background(), k, arch.DefaultFabric(1, 1), k.UniformBlock(accBlock),
		Options{MaxII: 3})
	if err == nil {
		t.Fatal("MVT block 2 mapped onto a 1x1 fabric at II <= 3")
	}
	if !errors.Is(err, diag.ErrProvedInfeasible) && !errors.Is(err, diag.ErrPlacementInfeasible) {
		t.Errorf("tiny-fabric failure %v, want proved or placement infeasibility", err)
	}
}
