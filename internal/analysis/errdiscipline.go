package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// ErrDiscipline enforces the typed-error contract of PR 2: every failure
// escaping an internal package wraps a diag sentinel (or a package-level
// sentinel that the pipeline classifies) so callers dispatch with
// errors.Is/As through the public API. Inside function bodies of the
// scoped packages it flags:
//
//   - fmt.Errorf calls whose format string carries no %w verb — the
//     constructed error starts a fresh, untyped chain;
//   - errors.New calls — dynamic sentinels that nothing can errors.Is
//     against.
//
// Package-level `var ErrX = errors.New(...)` sentinels (and package-level
// fmt.Errorf chains) are the approved pattern and stay unflagged: they
// are identity-comparable, so errors.Is reaches them. The check is
// intraprocedural and assumes any constructed error may escape an
// exported function — helpers propagate their returns, so the
// construction site is the choke point.
var ErrDiscipline = &Analyzer{
	Name: "errdiscipline",
	Doc:  "flags untyped error construction (fmt.Errorf without %w, dynamic errors.New) in internal packages",
	Run:  runErrDiscipline,
}

func runErrDiscipline(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(p.Info, call)
				if fn == nil {
					return true
				}
				switch funcPkgPath(fn) + "." + fn.Name() {
				case "errors.New":
					p.Reportf(call.Pos(), "dynamic errors.New: wrap a diag sentinel or package sentinel with %%w so errors.Is works through the API")
				case "fmt.Errorf":
					if len(call.Args) == 0 {
						return true
					}
					lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
					if !ok || lit.Kind != token.STRING {
						return true // non-literal format: cannot judge statically
					}
					if !strings.Contains(lit.Value, "%w") {
						p.Reportf(call.Pos(), "fmt.Errorf without %%w: the error escapes untyped; wrap a diag sentinel or package sentinel")
					}
				}
				return true
			})
		}
	}
}
