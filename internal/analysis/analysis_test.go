package analysis

import (
	"path/filepath"
	"testing"
)

// TestFixtures runs each analyzer over its golden fixture package under
// testdata/src and verifies the diagnostics against the // want
// annotations — every want must be reported, every report must be
// wanted. The suppress fixture reuses the determinism analyzer to
// exercise the //lint:ignore grammar.
func TestFixtures(t *testing.T) {
	cases := []struct {
		dir      string
		analyzer *Analyzer
	}{
		{"determinism", Determinism},
		{"errdiscipline", ErrDiscipline},
		{"noalloc", NoAlloc},
		{"lockcheck", LockCheck},
		{"ctxflow", Ctxflow},
		{"lockset", Lockset},
		{"suppress", Determinism},
	}
	for _, tc := range cases {
		t.Run(tc.dir, func(t *testing.T) {
			t.Parallel()
			prog, err := LoadDir(filepath.Join("testdata", "src", tc.dir))
			if err != nil {
				t.Fatal(err)
			}
			problems, err := CheckFixture(prog, tc.analyzer)
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range problems {
				t.Error(p)
			}
		})
	}
}

// TestModuleClean is the in-test mirror of the CI gate: the whole module
// must pass every analyzer under the default scope. A regression here is
// exactly what `go run ./cmd/himaplint ./...` would report.
func TestModuleClean(t *testing.T) {
	prog, err := Load(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range Run(prog, All(), DefaultScope()) {
		t.Errorf("%s", d)
	}
}

// TestSummariesDeterministic pins the summary layer's determinism: two
// independent builds over the same program, and two independent loads of
// the same fixture tree, must agree fact for fact. The Fingerprint is a
// stable text rendering of every summary, so any map-iteration leak in
// the fixpoints shows up as a diff here.
func TestSummariesDeterministic(t *testing.T) {
	dir := filepath.Join("testdata", "src", "ctxflow")
	prog, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	a := BuildSummaries(prog).Fingerprint()
	b := BuildSummaries(prog).Fingerprint()
	if a != b {
		t.Fatalf("two builds over one program disagree:\n%s\nvs\n%s", a, b)
	}
	prog2, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if c := BuildSummaries(prog2).Fingerprint(); c != a {
		t.Fatalf("independent loads disagree:\n%s\nvs\n%s", a, c)
	}
}

// TestAnalyzerCatalogue pins the published analyzer set: names are part
// of the //lint:ignore grammar, so renaming one silently disables every
// existing suppression for it.
func TestAnalyzerCatalogue(t *testing.T) {
	want := []string{"determinism", "errdiscipline", "noalloc", "lockcheck", "ctxflow", "lockset"}
	got := All()
	if len(got) != len(want) {
		t.Fatalf("All() = %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("All()[%d].Name = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q missing Doc or Run", a.Name)
		}
	}
}
