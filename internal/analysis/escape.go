package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the escape-based allocation scanner behind noalloc v2
// and the summary layer's AllocFree fact. It replaces the v1 construct
// blacklist with semantic reasoning:
//
//   - &T{...} and slice literals are allocations only when the value
//     escapes the function (flow-insensitive local escape analysis over
//     an assignment graph; anything not provably local escapes);
//   - function literals allocate only when they capture enclosing
//     variables AND escape — a non-capturing literal is a static
//     closure, and a non-escaping capture can live on the stack;
//   - append is growth only beyond proven capacity: appending into
//     persistent scratch (selector/deref/index bases, params) or into a
//     local derived from scratch (buf := s.scratch[:0]) is the
//     documented amortized warm-up and passes;
//   - interface boxing is checked at every call with a known signature,
//     and map literals, make/new, string concatenation, go/defer stay
//     unconditional allocations.
//
// The same walk drives two consumers: the noalloc analyzer (reporting
// inside //himap:noalloc functions, with calls accepted when the callee
// is annotated or summary-proven AllocFree) and BuildSummaries
// (deciding IntrinsicAlloc for every module function, with declared
// callees deferred to the AllocFree fixpoint).

type reportFn func(pos token.Pos, format string, args ...any)

// bodyScan is the per-function scan state. The escape, scratch, and
// literal-binding tables are computed lazily — most functions decide on
// unconditional constructs alone.
type bodyScan struct {
	pkg *Package
	fd  *ast.FuncDecl

	parents  map[ast.Node]ast.Node
	escVar   map[*types.Var]bool
	scratch  map[*types.Var]bool
	litBound map[*types.Var]*ast.FuncLit
}

func newBodyScan(pkg *Package, fd *ast.FuncDecl) *bodyScan {
	return &bodyScan{pkg: pkg, fd: fd}
}

// hasIntrinsicAlloc reports whether the function body allocates
// independently of what its declared module callees do: calls to
// functions satisfying declared are accepted here (the AllocFree
// fixpoint strikes them out later), everything else runs under the
// full v2 rules.
func hasIntrinsicAlloc(pkg *Package, fd *ast.FuncDecl, declared func(*types.Func) bool) bool {
	if fd.Body == nil {
		return true // no body to prove anything about
	}
	found := false
	newBodyScan(pkg, fd).run(declared, func(token.Pos, string, ...any) { found = true })
	return found
}

// run walks the body and reports every allocating construct. calleeOK
// decides whether a direct call to a declared function is acceptable.
func (b *bodyScan) run(calleeOK func(*types.Func) bool, report reportFn) {
	name := b.fd.Name.Name
	info := b.pkg.Info
	ast.Inspect(b.fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if b.capturingLit(n) && b.allocEscapes(n) {
				report(n.Pos(), "closure captures enclosing variables and escapes in noalloc function %s", name)
			}
			return true // literal bodies execute on the hot path too
		case *ast.CompositeLit:
			b.checkComposite(n, name, report)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok && b.allocEscapes(n) {
					report(n.Pos(), "&composite literal escapes and allocates in noalloc function %s", name)
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringOperand(info, n.X) {
				report(n.Pos(), "string concatenation allocates in noalloc function %s", name)
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringOperand(info, n.Lhs[0]) {
				report(n.Pos(), "string concatenation allocates in noalloc function %s", name)
			}
		case *ast.CallExpr:
			b.checkCall(n, name, calleeOK, report)
		case *ast.GoStmt:
			report(n.Pos(), "go statement in noalloc function %s allocates a goroutine", name)
		case *ast.DeferStmt:
			report(n.Pos(), "defer in noalloc function %s allocates a deferred frame", name)
		}
		return true
	})
}

func (b *bodyScan) checkComposite(lit *ast.CompositeLit, name string, report reportFn) {
	tv, ok := b.pkg.Info.Types[lit]
	if !ok {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice:
		// &composite handles the address-taken form.
		if p, ok := b.parentOf(lit).(*ast.UnaryExpr); ok && p.Op == token.AND {
			return
		}
		if b.allocEscapes(lit) {
			report(lit.Pos(), "slice literal escapes and allocates in noalloc function %s", name)
		}
	case *types.Map:
		report(lit.Pos(), "map literal allocates in noalloc function %s", name)
	}
}

func (b *bodyScan) checkCall(call *ast.CallExpr, name string, calleeOK func(*types.Func) bool, report reportFn) {
	info := b.pkg.Info
	// Type conversion?
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if types.IsInterface(tv.Type) {
			report(call.Pos(), "conversion to interface boxes its operand in noalloc function %s", name)
		} else if isStringType(tv.Type) && len(call.Args) == 1 && !isStringOperand(info, call.Args[0]) {
			report(call.Pos(), "conversion to string copies in noalloc function %s", name)
		}
		return
	}
	// Builtin?
	if bi := calleeBuiltin(info, call); bi != "" {
		switch {
		case allocFreeBuiltins[bi]:
		case bi == "append":
			b.checkAppend(call, name, report)
		default:
			report(call.Pos(), "builtin %s allocates in noalloc function %s", bi, name)
		}
		return
	}
	fn := calleeFunc(info, call)
	if fn != nil {
		if recv := fn.Type().(*types.Signature).Recv(); recv != nil && types.IsInterface(recv.Type()) {
			report(call.Pos(), "interface method call in noalloc function %s cannot be verified allocation-free", name)
			return
		}
		if !calleeOK(fn) {
			report(call.Pos(), "%s calls %s, which is neither //himap:noalloc nor provably allocation-free", name, fn.FullName())
			return
		}
		b.checkBoxing(call, name, report)
		return
	}
	// Indirect call: acceptable only through a local bound once to a
	// function literal (the literal's body is scanned in place).
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if v, ok := info.Uses[id].(*types.Var); ok {
			b.ensureLitBound()
			if b.litBound[v] != nil {
				b.checkBoxing(call, name, report)
				return
			}
		}
	}
	report(call.Pos(), "indirect call in noalloc function %s cannot be verified allocation-free", name)
}

// checkAppend allows append into persistent scratch — selector, deref,
// or index bases, params and receivers, and locals derived from scratch
// by reslicing (buf := s.scratch[:0]) — and flags append that grows a
// slice of unproven capacity local to the function.
func (b *bodyScan) checkAppend(call *ast.CallExpr, name string, report reportFn) {
	if len(call.Args) == 0 {
		return
	}
	if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
		v, _ := b.pkg.Info.Uses[id].(*types.Var)
		if v != nil && declaredWithin(v, b.fd.Body) {
			b.ensureScratch()
			if !b.scratch[v] {
				report(call.Pos(), "append grows function-local slice %s beyond proven capacity in noalloc function %s", id.Name, name)
			}
		}
	}
}

// checkBoxing flags concrete values passed into interface-typed
// parameters (including variadic ...any expansion).
func (b *bodyScan) checkBoxing(call *ast.CallExpr, name string, report reportFn) {
	tv, ok := b.pkg.Info.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos && i == params.Len()-1 {
				pt = params.At(params.Len() - 1).Type() // slice passed through, no boxing
			} else {
				pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		at, ok := b.pkg.Info.Types[arg]
		if !ok || at.IsNil() || types.IsInterface(at.Type) {
			continue
		}
		report(arg.Pos(), "argument boxes %s into interface %s in noalloc function %s", at.Type, pt, name)
	}
}

// capturingLit reports whether the literal references variables
// declared in the enclosing function outside the literal itself — the
// captures that force a closure allocation.
func (b *bodyScan) capturingLit(lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if v, ok := b.pkg.Info.Uses[id].(*types.Var); ok &&
			declaredWithin(v, b.fd) && !declaredWithin(v, lit) {
			found = true
			return false
		}
		return true
	})
	return found
}

func isStringOperand(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Type != nil && isStringType(tv.Type)
}

// ---- lazy tables ----

func (b *bodyScan) ensureParents() {
	if b.parents != nil {
		return
	}
	b.parents = map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(b.fd, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			b.parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
}

func (b *bodyScan) parentOf(n ast.Node) ast.Node {
	b.ensureParents()
	p := b.parents[n]
	for {
		if pe, ok := p.(*ast.ParenExpr); ok {
			p = b.parents[pe]
			continue
		}
		return p
	}
}

// allocEscapes decides whether the value produced at n leaves the
// function. Only a value consumed by a plain assignment into a
// non-escaping local is proven captive; every other context —
// returns, call arguments, composite elements, stores through
// pointers — counts as escaping.
func (b *bodyScan) allocEscapes(n ast.Node) bool {
	b.ensureEscapes()
	switch p := b.parentOf(n).(type) {
	case *ast.AssignStmt:
		if v := b.simpleAssignTarget(p, n); v != nil {
			return b.escVar[v]
		}
	case *ast.ValueSpec:
		if v := b.valueSpecTarget(p, n); v != nil {
			return b.escVar[v]
		}
	}
	return true
}

// simpleAssignTarget returns the local variable that directly receives
// the value of rhs in a 1:1 assignment, or nil.
func (b *bodyScan) simpleAssignTarget(a *ast.AssignStmt, rhs ast.Node) *types.Var {
	if len(a.Lhs) != len(a.Rhs) {
		return nil
	}
	for i, r := range a.Rhs {
		if ast.Unparen(r) != rhs && r != rhs {
			continue
		}
		id, ok := a.Lhs[i].(*ast.Ident)
		if !ok {
			return nil
		}
		var v *types.Var
		if a.Tok == token.DEFINE {
			v, _ = b.pkg.Info.Defs[id].(*types.Var)
		} else {
			v, _ = b.pkg.Info.Uses[id].(*types.Var)
		}
		if v != nil && b.isLocal(v) {
			return v
		}
		return nil
	}
	return nil
}

func (b *bodyScan) valueSpecTarget(vs *ast.ValueSpec, rhs ast.Node) *types.Var {
	if len(vs.Names) != len(vs.Values) {
		return nil
	}
	for i, r := range vs.Values {
		if ast.Unparen(r) != rhs && r != rhs {
			continue
		}
		v, _ := b.pkg.Info.Defs[vs.Names[i]].(*types.Var)
		if v != nil && b.isLocal(v) {
			return v
		}
		return nil
	}
	return nil
}

func (b *bodyScan) isLocal(v *types.Var) bool {
	return declaredWithin(v, b.fd)
}

// ensureEscapes computes the escaping-locals set: direct escaping uses
// (returns, call args, address-of, captures, stores into non-locals)
// plus propagation along local-to-local assignments.
func (b *bodyScan) ensureEscapes() {
	if b.escVar != nil {
		return
	}
	b.ensureParents()
	b.escVar = map[*types.Var]bool{}
	flowsInto := map[*types.Var][]*types.Var{} // src -> dsts
	info := b.pkg.Info
	ast.Inspect(b.fd.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, _ := info.Uses[id].(*types.Var)
		if v == nil || !b.isLocal(v) {
			return true
		}
		if b.capturedUse(id, v) {
			b.escVar[v] = true
			return true
		}
		if dst, esc := b.classifyUse(id, v); esc {
			b.escVar[v] = true
		} else if dst != nil {
			flowsInto[v] = append(flowsInto[v], dst)
		}
		return true
	})
	for changed := true; changed; {
		changed = false
		for src, dsts := range flowsInto {
			if b.escVar[src] {
				continue
			}
			for _, dst := range dsts {
				if b.escVar[dst] {
					b.escVar[src] = true
					changed = true
					break
				}
			}
		}
	}
}

// capturedUse reports whether the use sits inside a function literal
// that does not also declare v — a closure capture.
func (b *bodyScan) capturedUse(id *ast.Ident, v *types.Var) bool {
	for n := b.parents[id]; n != nil && n != b.fd; n = b.parents[n] {
		if lit, ok := n.(*ast.FuncLit); ok && !declaredWithin(v, lit) {
			return true
		}
	}
	return false
}

// classifyUse inspects one use of a local: it returns a destination
// local when the use is a plain local-to-local assignment (an escape
// propagation edge), and whether the use escapes outright.
func (b *bodyScan) classifyUse(id *ast.Ident, v *types.Var) (dst *types.Var, escapes bool) {
	switch p := b.parentOf(id).(type) {
	case *ast.AssignStmt:
		for _, l := range p.Lhs {
			if l == id {
				return nil, false // write target
			}
		}
		if w := b.simpleAssignTarget(p, id); w != nil {
			return w, false
		}
		return nil, true // stored into a non-local location
	case *ast.ValueSpec:
		for _, nm := range p.Names {
			if nm == id {
				return nil, false
			}
		}
		if w := b.valueSpecTarget(p, id); w != nil {
			return w, false
		}
		return nil, true
	case *ast.CallExpr:
		if ast.Unparen(p.Fun) == id {
			return nil, false // being called
		}
		switch calleeBuiltin(b.pkg.Info, p) {
		case "len", "cap", "delete", "clear":
			return nil, false
		case "append":
			if len(p.Args) > 0 && ast.Unparen(p.Args[0]) == id {
				return nil, false // appended-into base, handled by checkAppend
			}
		}
		return nil, true // callee may retain the argument
	case *ast.UnaryExpr:
		return nil, p.Op == token.AND // address taken
	case *ast.StarExpr, *ast.SelectorExpr, *ast.BinaryExpr, *ast.IncDecStmt,
		*ast.IfStmt, *ast.ForStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt,
		*ast.CaseClause, *ast.ExprStmt, *ast.BlockStmt:
		return nil, false // reads and control flow
	case *ast.IndexExpr:
		return nil, false // reading or writing an element, base stays put
	case *ast.RangeStmt:
		return nil, id != p.X && id != p.Key && id != p.Value // ranging over v reads it
	case *ast.SendStmt:
		return nil, id == p.Value // sent values escape; the channel does not
	}
	return nil, true // returns, composite elements, slices, defers, unknown contexts
}

// ensureScratch computes the scratch-derived locals: variables assigned
// from reslicing persistent storage (or from append on such a base),
// iterated to a fixpoint so chains of derivations resolve.
func (b *bodyScan) ensureScratch() {
	if b.scratch != nil {
		return
	}
	b.scratch = map[*types.Var]bool{}
	info := b.pkg.Info
	for changed := true; changed; {
		changed = false
		ast.Inspect(b.fd.Body, func(n ast.Node) bool {
			a, ok := n.(*ast.AssignStmt)
			if !ok || len(a.Lhs) != len(a.Rhs) {
				return true
			}
			for i, r := range a.Rhs {
				id, ok := a.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				var v *types.Var
				if a.Tok == token.DEFINE {
					v, _ = info.Defs[id].(*types.Var)
				} else {
					v, _ = info.Uses[id].(*types.Var)
				}
				if v == nil || b.scratch[v] || !declaredWithin(v, b.fd.Body) {
					continue
				}
				if b.scratchRHS(r) {
					b.scratch[v] = true
					changed = true
				}
			}
			return true
		})
	}
}

func (b *bodyScan) scratchRHS(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.SliceExpr:
		return b.persistentSliceBase(e.X)
	case *ast.CallExpr:
		if calleeBuiltin(b.pkg.Info, e) == "append" && len(e.Args) > 0 {
			return b.persistentSliceBase(e.Args[0])
		}
	}
	return false
}

// persistentSliceBase reports whether a sliced expression reaches
// storage that outlives the call: selector/deref/index bases (the
// sanctioned scratch forms), params and receivers and package-level
// vars, and already-proven scratch locals.
func (b *bodyScan) persistentSliceBase(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
		return true
	case *ast.SliceExpr:
		return b.persistentSliceBase(e.X)
	case *ast.Ident:
		v, ok := b.pkg.Info.Uses[e].(*types.Var)
		if !ok {
			return false
		}
		if !declaredWithin(v, b.fd.Body) {
			return true // param, receiver, or package-level storage
		}
		return b.scratch[v]
	}
	return false
}

// ensureLitBound records locals bound exactly once to a function
// literal — calls through them resolve to the literal, whose body the
// scan already covers.
func (b *bodyScan) ensureLitBound() {
	if b.litBound != nil {
		return
	}
	b.litBound = map[*types.Var]*ast.FuncLit{}
	assigns := map[*types.Var]int{}
	info := b.pkg.Info
	ast.Inspect(b.fd.Body, func(n ast.Node) bool {
		a, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, l := range a.Lhs {
			id, ok := l.(*ast.Ident)
			if !ok {
				continue
			}
			var v *types.Var
			if a.Tok == token.DEFINE {
				v, _ = info.Defs[id].(*types.Var)
			} else {
				v, _ = info.Uses[id].(*types.Var)
			}
			if v == nil || !b.isLocal(v) {
				continue
			}
			assigns[v]++
			if len(a.Lhs) == len(a.Rhs) {
				if lit, ok := ast.Unparen(a.Rhs[i]).(*ast.FuncLit); ok {
					b.litBound[v] = lit
				}
			}
		}
		return true
	})
	for v, n := range assigns {
		if n != 1 {
			delete(b.litBound, v)
		}
	}
}
