package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Determinism guards the repo's reproducibility contract: a mapping is a
// pure function of (kernel, fabric, options minus Workers), bit-identical
// across runs and worker counts. In the compile-path packages it flags
// the three ways that contract silently erodes:
//
//  1. time.Now — wall-clock reads feeding mapping decisions.
//  2. Globally seeded randomness — package-level math/rand functions draw
//     from a process-global, randomly seeded source. Explicitly seeded
//     generators (rand.New(rand.NewSource(seed))) are deterministic and
//     stay allowed.
//  3. Map iteration order escaping — a `for range m` over a map whose
//     body appends to an outer slice (without a subsequent sort of that
//     slice), writes output, or selects a candidate into an outer
//     variable emits Go's randomized map order into the mapping.
//
// Wall-clock reads that only feed tracing spans or opt-in wall-time
// budgets are suppressed at the use site with //lint:ignore determinism,
// keeping the exception list explicit and reviewed.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "flags wall-clock reads, global randomness, and map-iteration-order leaks in the compile path",
	Run:  runDeterminism,
}

// seededRandConstructors are the math/rand entry points that build
// explicitly seeded generators; everything else at package level draws
// from the global source.
var seededRandConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runDeterminism(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p.Info, call)
			if fn == nil {
				return true
			}
			sig, _ := fn.Type().(*types.Signature)
			pkgLevel := sig != nil && sig.Recv() == nil
			switch funcPkgPath(fn) {
			case "time":
				if fn.Name() == "Now" {
					p.Reportf(call.Pos(), "time.Now in the compile path: wall-clock reads break mapping reproducibility")
				}
			case "math/rand", "math/rand/v2":
				if pkgLevel && !seededRandConstructors[fn.Name()] {
					p.Reportf(call.Pos(), "globally seeded rand.%s: use rand.New(rand.NewSource(seed)) so results are reproducible", fn.Name())
				}
			}
			return true
		})
		eachStmtList(f, func(list []ast.Stmt) {
			for i, st := range list {
				if rs, ok := st.(*ast.RangeStmt); ok {
					checkMapRange(p, rs, list[i+1:])
				}
			}
		})
	}
}

// checkMapRange analyzes one range statement; rest is the statement tail
// of the enclosing block (where a post-loop sort may appear).
func checkMapRange(p *Pass, rs *ast.RangeStmt, rest []ast.Stmt) {
	tv, ok := p.Info.Types[rs.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}

	// The loop's key/value objects: anything derived from them carries
	// iteration order.
	iterVars := map[types.Object]bool{}
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := p.Info.Defs[id]; obj != nil {
				iterVars[obj] = true
			} else if obj := p.Info.Uses[id]; obj != nil {
				iterVars[obj] = true
			}
		}
	}

	// appendTargets maps an outer variable receiving `x = append(x, ...)`
	// to the position of the first such append; cleared if a subsequent
	// sort re-establishes a canonical order.
	appendTargets := map[types.Object]token.Pos{}

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if writesOutput(p.Info, n) {
				p.Reportf(n.Pos(), "map iteration order reaches output: iterate sorted keys instead")
			}
		case *ast.AssignStmt:
			checkMapRangeAssign(p, rs, n, iterVars, appendTargets)
		}
		return true
	})

	for obj, pos := range appendTargets {
		if sortedAfter(p.Info, rest, obj) {
			continue
		}
		p.Reportf(pos, "appends to %s in map iteration order without a subsequent sort: order is randomized per run", obj.Name())
	}
}

// checkMapRangeAssign classifies one assignment inside a map-range body.
func checkMapRangeAssign(p *Pass, rs *ast.RangeStmt, as *ast.AssignStmt, iterVars map[types.Object]bool, appendTargets map[types.Object]token.Pos) {
	if as.Tok == token.DEFINE {
		return // fresh locals die with the iteration
	}
	for i, lhs := range as.Lhs {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			continue // indexed/field stores are keyed writes, not ordered emission
		}
		obj := p.Info.Uses[id]
		if obj == nil || declaredWithin(obj, rs) {
			continue // loop-local state
		}
		var rhs ast.Expr
		if i < len(as.Rhs) {
			rhs = as.Rhs[i]
		} else if len(as.Rhs) == 1 {
			rhs = as.Rhs[0]
		}
		if as.Tok == token.ASSIGN {
			if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && calleeBuiltin(p.Info, call) == "append" {
				if base, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok && p.Info.Uses[base] == obj {
					if _, seen := appendTargets[obj]; !seen {
						appendTargets[obj] = as.Pos()
					}
					continue
				}
			}
			if usesObject(p.Info, rhs, iterVars) {
				p.Reportf(as.Pos(), "assigns %s from map iteration state: candidate selection depends on randomized order (sort the keys first)", id.Name)
			}
			continue
		}
		// Compound assignment: commutative integer reductions (+=, *=,
		// |=, &=, ^=) are order-independent; float and string reductions
		// are not.
		t := obj.Type()
		if (isStringType(t) || !isIntegerType(t)) && usesObject(p.Info, rhs, iterVars) {
			p.Reportf(as.Pos(), "non-commutative reduction into %s over map iteration order", id.Name)
		}
	}
}

// writesOutput reports whether the call prints or writes — fmt print
// family or a Write/WriteString/WriteByte method.
func writesOutput(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil {
		return false
	}
	name := fn.Name()
	if funcPkgPath(fn) == "fmt" {
		switch name {
		case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
			return true
		}
		return false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		switch name {
		case "Write", "WriteString", "WriteByte", "WriteRune":
			return true
		}
	}
	return false
}

// sortedAfter reports whether any statement of the tail sorts obj (a
// sort.* or slices.Sort* call mentioning it).
func sortedAfter(info *types.Info, rest []ast.Stmt, obj types.Object) bool {
	target := map[types.Object]bool{obj: true}
	for _, st := range rest {
		found := false
		ast.Inspect(st, func(n ast.Node) bool {
			if found {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil {
				return true
			}
			switch funcPkgPath(fn) {
			case "sort", "slices":
				if usesObject(info, call, target) {
					found = true
					return false
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}
