package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the interprocedural layer under the v2 analyzers: a
// module-wide call graph plus one flow-insensitive summary per declared
// function (an SSA-lite over go/ast + go/types — no x/tools). Three
// kinds of facts flow through it:
//
//   - call edges, with two devirtualization passes: interface method
//     calls expand to every module method implementing the interface
//     (class-hierarchy analysis), and calls through function values
//     expand to every module function whose address is taken somewhere
//     with a matching signature (rapid-type-style). Both over-
//     approximate — an edge may never execute — which is the right
//     direction for reachability-based checks.
//   - PollsCtx: whether a function observes its context.Context
//     parameter (ctx.Err(), ctx.Done(), or forwarding ctx to a callee
//     that polls). Computed as a least fixpoint over ctx-forwarding
//     edges; a devirtualized call polls only if every candidate does.
//   - AllocFree: whether a function provably performs no heap
//     allocation, computed as a greatest fixpoint (assume clean, strike
//     out functions with an intrinsically allocating body or a call to
//     a struck-out/external/indirect callee). It is what makes the
//     //himap:noalloc contract semantic: an unannotated callee is
//     acceptable when the summary proves it clean.
//
// Everything is built in deterministic order (packages sorted by path,
// files by name, declarations by position; all derived slices sorted),
// and Fingerprint() exposes that determinism to the driver tests.

// FuncSummary is the per-function summary node of the module call graph.
type FuncSummary struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package

	// CtxParam is the function's context.Context parameter (nil if none).
	CtxParam *types.Var

	// Callees holds the static callees (direct calls to declared module
	// functions), sorted and deduplicated.
	Callees []*types.Func
	// Devirt holds devirtualized candidates: implementations behind
	// interface method calls and address-taken signature matches behind
	// function-value calls. Sorted and deduplicated.
	Devirt []*types.Func
	// CtxForward holds the static callees that receive a
	// context.Context argument at some call site in this function.
	CtxForward []*types.Func
	// CtxForwardDevirt holds, per devirtualized ctx-forwarding call
	// site, the candidate set — PollsCtx requires all candidates of a
	// site to poll.
	CtxForwardDevirt [][]*types.Func

	// PollsDirect reports a syntactic ctx.Err()/ctx.Done() call on any
	// context.Context-typed operand inside the body.
	PollsDirect bool
	// PollsCtx is the fixpoint: PollsDirect, or ctx is forwarded to a
	// callee that polls.
	PollsCtx bool

	// IntrinsicAlloc reports an allocating construct in the body itself
	// (escape-refined; see escape.go), independent of callees.
	IntrinsicAlloc bool
	// AllocFree is the fixpoint: no intrinsic allocation and every call
	// resolves to an alloc-free declared function or builtin.
	AllocFree bool

	// CtxRoot marks cancellation roots: a //himap:ctxroot directive or
	// an http handler signature (w http.ResponseWriter, r *http.Request).
	CtxRoot bool
}

// Summaries is the module-wide interprocedural state shared by the v2
// analyzers through Pass.Sum.
type Summaries struct {
	prog  *Program
	Funcs map[*types.Func]*FuncSummary
	order []*types.Func // deterministic iteration order

	methodsByName map[string][]*types.Func // CHA index: method name -> module methods
	addrTakenIdx  map[string][]*types.Func // RTA index: signature key -> address-taken funcs

	reachable map[*types.Func]bool // closure from ctx roots

	locksetOnce bool
	locksetTab  map[*types.Var][]writeSite // shared-field writes in concurrent code
}

// Summaries builds (once) and returns the program's interprocedural
// summaries.
func (p *Program) Summaries() *Summaries {
	if p.sum == nil {
		p.sum = BuildSummaries(p)
	}
	return p.sum
}

// BuildSummaries computes fresh summaries for the program. Exported so
// the driver tests can rebuild and compare fingerprints across runs.
func BuildSummaries(prog *Program) *Summaries {
	s := &Summaries{
		prog:  prog,
		Funcs: map[*types.Func]*FuncSummary{},
	}
	// Pass 1: enumerate declared functions, collect directives, the
	// method index for CHA, and the address-taken index for
	// function-value devirtualization.
	methodsByName := map[string][]*types.Func{}
	addrTaken := map[string][]*types.Func{}
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				sum := &FuncSummary{Fn: fn, Decl: fd, Pkg: pkg}
				sum.CtxParam = ctxParamOf(fn)
				sum.CtxRoot = hasDirective(fd.Doc, "//himap:ctxroot") || isHandlerSig(fn)
				s.Funcs[fn] = sum
				s.order = append(s.order, fn)
				if fd.Recv != nil {
					methodsByName[fn.Name()] = append(methodsByName[fn.Name()], fn)
				}
			}
		}
	}
	sortFuncs(s.order)
	for _, fns := range methodsByName {
		sortFuncs(fns)
	}
	// Address-taken scan: any reference to a declared function outside
	// call position makes it a devirtualization candidate for indirect
	// calls of the same signature.
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			callPos := map[*ast.Ident]bool{}
			ast.Inspect(f, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					switch fun := ast.Unparen(call.Fun).(type) {
					case *ast.Ident:
						callPos[fun] = true
					case *ast.SelectorExpr:
						callPos[fun.Sel] = true
					}
				}
				return true
			})
			ast.Inspect(f, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok || callPos[id] {
					return true
				}
				fn, ok := pkg.Info.Uses[id].(*types.Func)
				if !ok {
					return true
				}
				if _, declared := s.Funcs[fn]; !declared {
					return true
				}
				if key := sigKey(fn.Type().(*types.Signature)); key != "" {
					addrTaken[key] = append(addrTaken[key], fn)
				}
				return true
			})
		}
	}
	for _, fns := range addrTaken {
		sortFuncs(fns)
	}
	s.methodsByName = methodsByName
	s.addrTakenIdx = addrTaken

	// Pass 2: per-function body scan — call edges (static, CHA,
	// signature-devirtualized), direct polls, intrinsic allocation.
	for _, fn := range s.order {
		s.scanBody(s.Funcs[fn], methodsByName, addrTaken)
	}

	// Pass 3: fixpoints.
	s.fixpointPollsCtx()
	s.fixpointAllocFree()
	s.computeReachable()
	return s
}

// scanBody fills the call-edge, poll, and intrinsic-allocation fields of
// one summary from its declaration body.
func (s *Summaries) scanBody(sum *FuncSummary, methodsByName map[string][]*types.Func, addrTaken map[string][]*types.Func) {
	if sum.Decl.Body == nil {
		return
	}
	info := sum.Pkg.Info
	callees := map[*types.Func]bool{}
	devirt := map[*types.Func]bool{}
	ctxFwd := map[*types.Func]bool{}
	ast.Inspect(sum.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
			return true // conversion
		}
		if calleeBuiltin(info, call) != "" {
			return true
		}
		forwards := forwardsContext(info, call)
		if fn := calleeFunc(info, call); fn != nil {
			if recv := fn.Type().(*types.Signature).Recv(); recv != nil && types.IsInterface(recv.Type()) {
				// Interface method call: class-hierarchy devirtualization.
				cands := chaCandidates(fn, methodsByName, s.Funcs)
				for _, c := range cands {
					devirt[c] = true
				}
				if forwards && len(cands) > 0 {
					sum.CtxForwardDevirt = append(sum.CtxForwardDevirt, cands)
				}
				return true
			}
			if _, declared := s.Funcs[fn]; declared {
				callees[fn] = true
				if forwards {
					ctxFwd[fn] = true
				}
			}
			return true
		}
		// Indirect call through a function value: signature-based
		// devirtualization against the address-taken index.
		if tv, ok := info.Types[call.Fun]; ok {
			if sig, ok := tv.Type.Underlying().(*types.Signature); ok {
				cands := addrTaken[sigKey(sig)]
				for _, c := range cands {
					devirt[c] = true
				}
				if forwards && len(cands) > 0 {
					sum.CtxForwardDevirt = append(sum.CtxForwardDevirt, cands)
				}
			}
		}
		return true
	})
	sum.Callees = sortedFuncSet(callees)
	sum.Devirt = sortedFuncSet(devirt)
	sum.CtxForward = sortedFuncSet(ctxFwd)
	sum.PollsDirect = pollsAnywhere(info, sum.Decl.Body)
	sum.IntrinsicAlloc = hasIntrinsicAlloc(sum.Pkg, sum.Decl, func(fn *types.Func) bool {
		_, ok := s.Funcs[fn]
		return ok
	})
}

// chaCandidates returns the declared module methods that may stand
// behind a call to interface method m.
func chaCandidates(m *types.Func, methodsByName map[string][]*types.Func, declared map[*types.Func]*FuncSummary) []*types.Func {
	recv := m.Type().(*types.Signature).Recv()
	iface, ok := recv.Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var out []*types.Func
	for _, cand := range methodsByName[m.Name()] {
		if _, ok := declared[cand]; !ok {
			continue
		}
		crecv := cand.Type().(*types.Signature).Recv()
		if crecv == nil {
			continue
		}
		t := crecv.Type()
		if types.Implements(t, iface) || types.Implements(types.NewPointer(t), iface) {
			out = append(out, cand)
		}
	}
	return out
}

// fixpointPollsCtx propagates ctx observation along ctx-forwarding
// edges: a function polls if it polls directly, forwards ctx to a
// polling static callee, or forwards ctx through a devirtualized call
// whose every candidate polls.
func (s *Summaries) fixpointPollsCtx() {
	for _, fn := range s.order {
		s.Funcs[fn].PollsCtx = s.Funcs[fn].PollsDirect
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range s.order {
			sum := s.Funcs[fn]
			if sum.PollsCtx {
				continue
			}
			if s.forwardedPoll(sum) {
				sum.PollsCtx = true
				changed = true
			}
		}
	}
}

func (s *Summaries) forwardedPoll(sum *FuncSummary) bool {
	for _, callee := range sum.CtxForward {
		if cs := s.Funcs[callee]; cs != nil && cs.PollsCtx {
			return true
		}
	}
	for _, cands := range sum.CtxForwardDevirt {
		all := len(cands) > 0
		for _, c := range cands {
			if cs := s.Funcs[c]; cs == nil || !cs.PollsCtx {
				all = false
				break
			}
		}
		if all {
			return true
		}
	}
	return false
}

// fixpointAllocFree computes the greatest fixpoint of "provably
// allocation-free": start from every function whose body has no
// intrinsic allocation, then strike out functions calling a struck-out
// callee until stable. Devirtualized and external calls were already
// folded into IntrinsicAlloc by the body scan.
func (s *Summaries) fixpointAllocFree() {
	for _, fn := range s.order {
		s.Funcs[fn].AllocFree = !s.Funcs[fn].IntrinsicAlloc
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range s.order {
			sum := s.Funcs[fn]
			if !sum.AllocFree {
				continue
			}
			for _, callee := range sum.Callees {
				if cs := s.Funcs[callee]; cs == nil || !cs.AllocFree {
					sum.AllocFree = false
					changed = true
					break
				}
			}
		}
	}
}

// computeReachable closes the ctx-root set over all call edges (static
// and devirtualized).
func (s *Summaries) computeReachable() {
	s.reachable = map[*types.Func]bool{}
	var queue []*types.Func
	for _, fn := range s.order {
		if s.Funcs[fn].CtxRoot {
			s.reachable[fn] = true
			queue = append(queue, fn)
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		sum := s.Funcs[fn]
		for _, next := range append(append([]*types.Func(nil), sum.Callees...), sum.Devirt...) {
			if !s.reachable[next] {
				s.reachable[next] = true
				queue = append(queue, next)
			}
		}
	}
}

// Reachable reports whether fn is reachable from a cancellation root
// (//himap:ctxroot directive or http handler signature).
func (s *Summaries) Reachable(fn *types.Func) bool { return s.reachable[fn] }

// chaOf returns the module implementations that may stand behind a call
// to interface method m.
func (s *Summaries) chaOf(m *types.Func) []*types.Func {
	return chaCandidates(m, s.methodsByName, s.Funcs)
}

// addrTakenOf returns the address-taken module functions matching the
// signature of an indirect call site.
func (s *Summaries) addrTakenOf(sig *types.Signature) []*types.Func {
	return s.addrTakenIdx[sigKey(sig)]
}

// Fingerprint renders the whole summary table into a stable hash — two
// builds of the same source must agree bit-for-bit, which the driver
// determinism test asserts.
func (s *Summaries) Fingerprint() string {
	var b strings.Builder
	for _, fn := range s.order {
		sum := s.Funcs[fn]
		fmt.Fprintf(&b, "%s|ctx=%v|root=%v|polls=%v/%v|alloc=%v/%v|reach=%v\n",
			funcKey(fn), sum.CtxParam != nil, sum.CtxRoot,
			sum.PollsDirect, sum.PollsCtx,
			sum.IntrinsicAlloc, sum.AllocFree, s.reachable[fn])
		for _, c := range sum.Callees {
			fmt.Fprintf(&b, "  call %s\n", funcKey(c))
		}
		for _, c := range sum.Devirt {
			fmt.Fprintf(&b, "  devirt %s\n", funcKey(c))
		}
		for _, c := range sum.CtxForward {
			fmt.Fprintf(&b, "  ctxfwd %s\n", funcKey(c))
		}
	}
	h := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(h[:])
}

// ctxParamOf returns the function's context.Context parameter, nil if
// it has none.
func ctxParamOf(fn *types.Func) *types.Var {
	sig := fn.Type().(*types.Signature)
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if isContextType(params.At(i).Type()) {
			return params.At(i)
		}
	}
	return nil
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// isHandlerSig reports the net/http handler shape
// func(w http.ResponseWriter, r *http.Request) — requests enter the
// module concurrently through these, so they are both cancellation
// roots and may-happen-in-parallel roots.
func isHandlerSig(fn *types.Func) bool {
	sig := fn.Type().(*types.Signature)
	params := sig.Params()
	if params.Len() != 2 || sig.Results().Len() != 0 {
		return false
	}
	return isPkgNamed(params.At(0).Type(), "net/http", "ResponseWriter") &&
		isPtrToPkgNamed(params.At(1).Type(), "net/http", "Request")
}

func isPkgNamed(t types.Type, pkg, name string) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkg
}

func isPtrToPkgNamed(t types.Type, pkg, name string) bool {
	ptr, ok := t.(*types.Pointer)
	return ok && isPkgNamed(ptr.Elem(), pkg, name)
}

// forwardsContext reports whether any argument of the call is a
// context.Context value.
func forwardsContext(info *types.Info, call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		if tv, ok := info.Types[arg]; ok && tv.Type != nil && isContextType(tv.Type) {
			return true
		}
	}
	return false
}

// isCtxPollCall reports a ctx.Err() or ctx.Done() call on a
// context.Context-typed receiver.
func isCtxPollCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Err" && sel.Sel.Name != "Done") {
		return false
	}
	tv, ok := info.Types[sel.X]
	return ok && tv.Type != nil && isContextType(tv.Type)
}

// pollsAnywhere reports a ctx poll anywhere in the node, including
// nested function literals.
func pollsAnywhere(info *types.Info, node ast.Node) bool {
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && isCtxPollCall(info, call) {
			found = true
			return false
		}
		return true
	})
	return found
}

// hasDirective reports whether a doc comment group contains the exact
// directive line (directive form: no leading space after //).
func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if c.Text == directive || strings.HasPrefix(c.Text, directive+" ") {
			return true
		}
	}
	return false
}

// sigKey renders a signature (receiver dropped) into a canonical string
// for the address-taken index. Generic signatures are excluded.
func sigKey(sig *types.Signature) string {
	if sig.TypeParams().Len() > 0 || sig.RecvTypeParams().Len() > 0 {
		return ""
	}
	plain := types.NewSignatureType(nil, nil, nil, sig.Params(), sig.Results(), sig.Variadic())
	return types.TypeString(plain, func(p *types.Package) string { return p.Path() })
}

// funcKey is the stable identity of a function in fingerprints and sort
// orders: package path, full name, and declaration offset.
func funcKey(fn *types.Func) string {
	return fmt.Sprintf("%s.%s@%d", funcPkgPath(fn), fn.FullName(), int(fn.Pos()))
}

func sortFuncs(fns []*types.Func) {
	sort.Slice(fns, func(i, j int) bool { return funcKey(fns[i]) < funcKey(fns[j]) })
}

func sortedFuncSet(set map[*types.Func]bool) []*types.Func {
	if len(set) == 0 {
		return nil
	}
	out := make([]*types.Func, 0, len(set))
	for fn := range set {
		out = append(out, fn)
	}
	sortFuncs(out)
	// Deduplicate (defensive; the map already guarantees it).
	uniq := out[:1]
	for _, fn := range out[1:] {
		if fn != uniq[len(uniq)-1] {
			uniq = append(uniq, fn)
		}
	}
	return uniq
}

// writeSite is one shared-field write inside may-happen-in-parallel
// code, with the syntactic lockset held at the write.
type writeSite struct {
	pos   token.Pos
	pkg   *Package
	fn    string // enclosing function name, for the message
	locks map[*types.Var]bool
}
