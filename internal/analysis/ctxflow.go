package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Ctxflow verifies the repository's cancellation discipline over the
// interprocedural summary layer (summary.go). Roots are functions
// marked //himap:ctxroot (the public CompileRequest boundary) and http
// handler signatures; reachability closes over static calls,
// class-hierarchy devirtualized interface calls (the backend registry
// dispatch), and signature-devirtualized function-value calls (pipeline
// stages, the serve compile hook). Inside every reachable function that
// takes a context.Context, two rules apply:
//
//   - every unbounded loop must poll cancellation on its spine — a
//     ctx.Err()/ctx.Done() call, or a call forwarding ctx to a callee
//     whose summary proves it polls. A loop is unbounded unless its
//     condition compares against a constant or a len/cap expression
//     (range loops are bounded by construction). The spine is the loop
//     body descending through if/switch/select/blocks but not into
//     nested loops or function literals; a poll behind a stride guard
//     (if steps&255 == 0 { ctx.Err() }) therefore counts — the contract
//     is bounded cancellation latency, not a check on every iteration.
//   - the received context must not be dropped: context.Background()
//     and context.TODO() below the API boundary are flagged unless they
//     sit inside an `if ctx == nil` guard (the documented nil-tolerant
//     entry points).
//
// Under-approximations (documented in DESIGN.md): functions without a
// ctx parameter are not charged for loops (they cannot poll what they
// never received — the gap shows up at their ctx-bearing caller only if
// that caller loops), and a spine poll need not dominate every path.
var Ctxflow = &Analyzer{
	Name: "ctxflow",
	Doc:  "verifies unbounded loops on cancellation paths poll ctx and that received contexts are never dropped",
	Run:  runCtxflow,
}

func runCtxflow(p *Pass) {
	sum := p.Sum
	if sum == nil {
		return
	}
	for _, fs := range sum.order {
		s := sum.Funcs[fs]
		if s.Pkg.Types != p.Pkg || s.Decl.Body == nil {
			continue
		}
		if !sum.Reachable(fs) && !s.CtxRoot {
			continue
		}
		if s.CtxParam == nil {
			continue
		}
		cf := &ctxflowFunc{pass: p, sum: sum, fs: s}
		cf.checkLoops()
		cf.checkDrops()
	}
}

type ctxflowFunc struct {
	pass *Pass
	sum  *Summaries
	fs   *FuncSummary

	singleInit map[*types.Var]ast.Expr // locals assigned exactly once: var -> initializer
}

// checkLoops flags every unbounded for-loop without a spine poll.
func (c *ctxflowFunc) checkLoops() {
	ast.Inspect(c.fs.Decl.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // literals run on their own goroutine/path budget
		}
		loop, ok := n.(*ast.ForStmt)
		if !ok {
			return true
		}
		if c.boundedCond(loop.Cond) {
			return true
		}
		if !c.spinePolls(loop.Body.List) {
			c.pass.Reportf(loop.Pos(), "unbounded loop in %s (reachable from a cancellation root) never polls ctx.Err/ctx.Done on its spine", c.fs.Fn.Name())
		}
		return true
	})
}

// boundedCond reports whether a for condition provably bounds the trip
// count: a comparison where one operand is a constant, a len/cap call,
// or a local assigned exactly once from such an expression (the
// SSA-lite view: n := len(order) bounds k < n). A nil condition, bare
// booleans, and variable-vs-variable comparisons (round < rounds,
// mv < moves) are unbounded.
func (c *ctxflowFunc) boundedCond(cond ast.Expr) bool {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	return c.boundingOperand(be.X) || c.boundingOperand(be.Y)
}

func (c *ctxflowFunc) boundingOperand(e ast.Expr) bool {
	e = ast.Unparen(e)
	if tv, ok := c.pass.Info.Types[e]; ok && tv.Value != nil {
		return true // constant bound
	}
	if call, ok := e.(*ast.CallExpr); ok {
		switch calleeBuiltin(c.pass.Info, call) {
		case "len", "cap":
			return true
		}
	}
	if id, ok := e.(*ast.Ident); ok {
		c.ensureSingleInit()
		if obj, ok := c.pass.Info.Uses[id].(*types.Var); ok {
			if init, ok := c.singleInit[obj]; ok {
				return c.boundingInit(init)
			}
		}
	}
	return false
}

// boundingInit judges the single initializer of a local without
// re-entering single-assignment resolution (one level is enough for
// the n := len(order) idiom).
func (c *ctxflowFunc) boundingInit(e ast.Expr) bool {
	e = ast.Unparen(e)
	if tv, ok := c.pass.Info.Types[e]; ok && tv.Value != nil {
		return true
	}
	if call, ok := e.(*ast.CallExpr); ok {
		switch calleeBuiltin(c.pass.Info, call) {
		case "len", "cap":
			return true
		}
	}
	return false
}

// ensureSingleInit builds the map of body locals assigned exactly once
// and never address-taken, with their initializer expression.
func (c *ctxflowFunc) ensureSingleInit() {
	if c.singleInit != nil {
		return
	}
	c.singleInit = map[*types.Var]ast.Expr{}
	info := c.pass.Info
	counts := map[*types.Var]int{}
	disqualified := map[*types.Var]bool{}
	note := func(id *ast.Ident, init ast.Expr) {
		var v *types.Var
		if d, ok := info.Defs[id].(*types.Var); ok {
			v = d
		} else if u, ok := info.Uses[id].(*types.Var); ok {
			v = u
		}
		if v == nil {
			return
		}
		counts[v]++
		if init != nil && counts[v] == 1 {
			c.singleInit[v] = init
		}
	}
	ast.Inspect(c.fs.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, l := range n.Lhs {
				if id, ok := l.(*ast.Ident); ok {
					var init ast.Expr
					if len(n.Lhs) == len(n.Rhs) {
						init = n.Rhs[i]
					}
					note(id, init)
				}
			}
		case *ast.IncDecStmt:
			if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
				note(id, nil)
			}
		case *ast.RangeStmt:
			if id, ok := n.Key.(*ast.Ident); ok && id != nil {
				note(id, nil)
			}
			if id, ok := n.Value.(*ast.Ident); ok && id != nil {
				note(id, nil)
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
					if v, ok := info.Uses[id].(*types.Var); ok {
						disqualified[v] = true
					}
				}
			}
		}
		return true
	})
	for v, n := range counts {
		if n != 1 || disqualified[v] {
			delete(c.singleInit, v)
		}
	}
}

// spinePolls walks the loop spine — statement lists descending through
// if/switch/select/block/labeled statements but not nested loops or
// function literals — looking for a cancellation poll.
func (c *ctxflowFunc) spinePolls(stmts []ast.Stmt) bool {
	for _, st := range stmts {
		if c.stmtPolls(st) {
			return true
		}
	}
	return false
}

func (c *ctxflowFunc) stmtPolls(st ast.Stmt) bool {
	switch st := st.(type) {
	case *ast.LabeledStmt:
		return c.stmtPolls(st.Stmt)
	case *ast.BlockStmt:
		return c.spinePolls(st.List)
	case *ast.IfStmt:
		if st.Init != nil && c.stmtPolls(st.Init) {
			return true
		}
		if st.Cond != nil && c.exprPolls(st.Cond) {
			return true
		}
		if c.spinePolls(st.Body.List) {
			return true
		}
		return st.Else != nil && c.stmtPolls(st.Else)
	case *ast.SwitchStmt:
		if st.Init != nil && c.stmtPolls(st.Init) {
			return true
		}
		if st.Tag != nil && c.exprPolls(st.Tag) {
			return true
		}
		return c.clausesPoll(st.Body)
	case *ast.TypeSwitchStmt:
		return c.clausesPoll(st.Body)
	case *ast.SelectStmt:
		for _, cl := range st.Body.List {
			comm := cl.(*ast.CommClause)
			if comm.Comm != nil && c.nodePolls(comm.Comm) {
				return true
			}
			if c.spinePolls(comm.Body) {
				return true
			}
		}
		return false
	case *ast.ForStmt, *ast.RangeStmt:
		return false // nested loops answer for themselves
	case *ast.ExprStmt, *ast.AssignStmt, *ast.ReturnStmt, *ast.DeclStmt,
		*ast.SendStmt, *ast.IncDecStmt, *ast.GoStmt, *ast.DeferStmt, *ast.BranchStmt:
		return c.nodePolls(st)
	}
	return false
}

func (c *ctxflowFunc) clausesPoll(body *ast.BlockStmt) bool {
	for _, cl := range body.List {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			if c.exprPolls(e) {
				return true
			}
		}
		if c.spinePolls(cc.Body) {
			return true
		}
	}
	return false
}

func (c *ctxflowFunc) exprPolls(e ast.Expr) bool { return c.nodePolls(e) }

// nodePolls scans a spine statement or expression (stopping at nested
// function literals) for a direct ctx poll or a ctx-forwarding call to
// a callee whose summary polls.
func (c *ctxflowFunc) nodePolls(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isCtxPollCall(c.pass.Info, call) {
			found = true
			return false
		}
		if forwardsContext(c.pass.Info, call) && c.calleePolls(call) {
			found = true
			return false
		}
		return true
	})
	return found
}

// calleePolls resolves the call's target set — static, interface
// (class-hierarchy), or function-value (signature) — and reports
// whether every candidate's summary polls its context.
func (c *ctxflowFunc) calleePolls(call *ast.CallExpr) bool {
	info := c.pass.Info
	if fn := calleeFunc(info, call); fn != nil {
		if recv := fn.Type().(*types.Signature).Recv(); recv != nil && types.IsInterface(recv.Type()) {
			return c.allPoll(c.sum.chaOf(fn))
		}
		fs := c.sum.Funcs[fn]
		return fs != nil && fs.PollsCtx
	}
	if tv, ok := info.Types[call.Fun]; ok {
		if sig, ok := tv.Type.Underlying().(*types.Signature); ok {
			return c.allPoll(c.sum.addrTakenOf(sig))
		}
	}
	return false
}

func (c *ctxflowFunc) allPoll(cands []*types.Func) bool {
	if len(cands) == 0 {
		return false
	}
	for _, fn := range cands {
		if fs := c.sum.Funcs[fn]; fs == nil || !fs.PollsCtx {
			return false
		}
	}
	return true
}

// checkDrops flags context.Background()/context.TODO() below the API
// boundary, excepting calls inside an `if ctx == nil` guard.
func (c *ctxflowFunc) checkDrops() {
	scan := newBodyScan(c.fs.Pkg, c.fs.Decl)
	ast.Inspect(c.fs.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(c.pass.Info, call)
		if fn == nil || funcPkgPath(fn) != "context" {
			return true
		}
		if fn.Name() != "Background" && fn.Name() != "TODO" {
			return true
		}
		if c.underNilGuard(scan, call) {
			return true
		}
		c.pass.Reportf(call.Pos(), "%s drops its received context with context.%s (allowed only under an `if ctx == nil` guard)", c.fs.Fn.Name(), fn.Name())
		return true
	})
}

// underNilGuard reports whether the node sits inside an if whose
// condition nil-checks the function's context parameter.
func (c *ctxflowFunc) underNilGuard(scan *bodyScan, n ast.Node) bool {
	scan.ensureParents()
	for p := scan.parents[n]; p != nil && p != c.fs.Decl; p = scan.parents[p] {
		ifs, ok := p.(*ast.IfStmt)
		if !ok {
			continue
		}
		be, ok := ast.Unparen(ifs.Cond).(*ast.BinaryExpr)
		if !ok {
			continue
		}
		if c.isCtxNilCheck(be.X, be.Y) || c.isCtxNilCheck(be.Y, be.X) {
			return true
		}
	}
	return false
}

func (c *ctxflowFunc) isCtxNilCheck(x, y ast.Expr) bool {
	id, ok := ast.Unparen(x).(*ast.Ident)
	if !ok || c.pass.Info.Uses[id] != c.fs.CtxParam {
		return false
	}
	yid, ok := ast.Unparen(y).(*ast.Ident)
	return ok && yid.Name == "nil"
}
