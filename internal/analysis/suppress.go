package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Suppression grammar (v2):
//
//	//lint:ignore <analyzer> <reason>
//
// The comment suppresses diagnostics of the named analyzer on the line
// it sits on and on the line directly below — so it works both as an
// end-of-line annotation and as a standalone comment above the flagged
// statement. The analyzer name must be a real analyzer from the
// catalogue ("all" is rejected: every accepted exception names exactly
// what it excepts), and a reason is mandatory. Directives that are
// malformed — or that suppress nothing when their analyzer runs over
// the package (dead suppressions left behind by fixed code) — are
// themselves reported under the pseudo-analyzer "suppress".
type ignoreDirective struct {
	analyzer string
	reason   bool
	line     int
	pos      token.Pos
	used     bool
}

func (d *ignoreDirective) covers(line int) bool {
	return line == d.line || line == d.line+1
}

// collectIgnores scans the files' comments for //lint:ignore
// directives, one entry per directive, keyed by filename.
func collectIgnores(fset *token.FileSet, files []*ast.File) map[string][]*ignoreDirective {
	out := map[string][]*ignoreDirective{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//lint:ignore ")
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				out[pos.Filename] = append(out[pos.Filename], &ignoreDirective{
					analyzer: fields[0],
					reason:   len(fields) >= 2,
					line:     pos.Line,
					pos:      c.Pos(),
				})
			}
		}
	}
	return out
}

// filterSuppressed drops diagnostics covered by a well-formed ignore
// directive naming their analyzer, marking the directives used.
func filterSuppressed(dirs map[string][]*ignoreDirective, diags []Diagnostic) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		if !suppressed(dirs[d.Pos.Filename], d) {
			out = append(out, d)
		}
	}
	return out
}

func suppressed(dirs []*ignoreDirective, d Diagnostic) bool {
	hit := false
	for _, dir := range dirs {
		if dir.reason && dir.analyzer == d.Analyzer && dir.covers(d.Pos.Line) {
			dir.used = true
			hit = true // keep marking every matching directive used
		}
	}
	return hit
}

// suppressionFindings reports the directive-level problems of one
// package: missing reasons, the rejected "all" wildcard, unknown
// analyzer names, and dead suppressions. Deadness is only judged for
// directives whose analyzer actually ran over this package in this
// invocation — a filtered run (-analyzer) must not call other
// analyzers' suppressions dead.
func suppressionFindings(fset *token.FileSet, dirs map[string][]*ignoreDirective, known map[string]bool, analyzers []*Analyzer, scope Scope, pkgPath string) []Diagnostic {
	ran := map[string]bool{}
	for _, a := range analyzers {
		if scope.includes(a.Name, pkgPath) {
			ran[a.Name] = true
		}
	}
	var out []Diagnostic
	report := func(d *ignoreDirective, format string, args ...any) {
		out = append(out, Diagnostic{
			Analyzer: SuppressName,
			Pos:      fset.Position(d.pos),
			Message:  fmt.Sprintf(format, args...),
		})
	}
	var files []string
	for f := range dirs {
		files = append(files, f)
	}
	// The driver sorts diagnostics afterwards; file order here only
	// needs to be stable, not meaningful.
	sort.Strings(files)
	for _, f := range files {
		for _, d := range dirs[f] {
			switch {
			case d.analyzer == "all":
				report(d, "//lint:ignore all names no specific analyzer; name the analyzer being suppressed")
			case !known[d.analyzer]:
				report(d, "//lint:ignore names unknown analyzer %q", d.analyzer)
			case !d.reason:
				report(d, "//lint:ignore %s needs a reason: //lint:ignore <analyzer> <reason>", d.analyzer)
			case ran[d.analyzer] && !d.used:
				report(d, "//lint:ignore %s suppresses nothing (dead suppression — remove it or re-justify)", d.analyzer)
			}
		}
	}
	return out
}
