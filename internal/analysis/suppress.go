package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Suppression grammar:
//
//	//lint:ignore <analyzer> <reason>
//
// The comment suppresses diagnostics of the named analyzer (or of every
// analyzer, for the name "all") on the line it sits on and on the line
// directly below — so it works both as an end-of-line annotation and as
// a standalone comment above the flagged statement. A reason is
// mandatory: an ignore without one suppresses nothing, so every accepted
// exception documents why it is sound.
type ignoreDirective struct {
	analyzer string
	line     int
}

// collectIgnores scans the files' comments for //lint:ignore directives,
// returning one entry per covered line, keyed by filename.
func collectIgnores(fset *token.FileSet, files []*ast.File) map[string][]ignoreDirective {
	out := map[string][]ignoreDirective{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//lint:ignore ")
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) < 2 { // analyzer name plus a non-empty reason
					continue
				}
				pos := fset.Position(c.Pos())
				out[pos.Filename] = append(out[pos.Filename],
					ignoreDirective{analyzer: fields[0], line: pos.Line},
					ignoreDirective{analyzer: fields[0], line: pos.Line + 1})
			}
		}
	}
	return out
}

// filterSuppressed drops diagnostics covered by an ignore directive for
// their analyzer (or "all").
func filterSuppressed(fset *token.FileSet, files []*ast.File, diags []Diagnostic) []Diagnostic {
	if len(diags) == 0 {
		return nil
	}
	ignores := collectIgnores(fset, files)
	var out []Diagnostic
	for _, d := range diags {
		if !suppressed(ignores[d.Pos.Filename], d) {
			out = append(out, d)
		}
	}
	return out
}

func suppressed(dirs []ignoreDirective, d Diagnostic) bool {
	for _, dir := range dirs {
		if dir.line == d.Pos.Line && (dir.analyzer == "all" || dir.analyzer == d.Analyzer) {
			return true
		}
	}
	return false
}
