// Package analysis is the repo's custom static-analysis layer: a small
// stdlib-only (go/parser + go/ast + go/types, no x/tools) driver, an
// interprocedural summary layer (module-wide call graph with interface
// and function-value devirtualization, per-function ctx/alloc facts),
// and six project-specific analyzers that guard invariants no Go
// compiler checks but the rest of the repository depends on:
//
//   - determinism: the mapping a compile emits must be a pure function of
//     (kernel, fabric, options minus Workers). Wall-clock reads, globally
//     seeded randomness, and map-iteration order reaching slices, output,
//     or candidate selection all break that silently.
//   - errdiscipline: every failure escaping an internal package must be
//     typed — wrapping a diag sentinel or a package-level sentinel with
//     %w — so errors.Is/As dispatch keeps working through the public API.
//   - noalloc: functions annotated //himap:noalloc (the router's Dijkstra
//     scratch / heap hot path) must not contain allocating constructs,
//     judged by escape-based reasoning with summary-transitive callees.
//   - lockcheck: mutexes must not be copied, and goroutines must not
//     capture loop variables by reference.
//   - ctxflow: unbounded loops reachable from the CompileRequest boundary
//     or a serve handler must poll cancellation, and received contexts
//     must not be dropped for context.Background()/TODO().
//   - lockset: fields written by may-happen-in-parallel code must be
//     written under consistent lock sets.
//
// The driver (Load + Run) parses and type-checks every package of the
// module from source, builds the summaries, runs each analyzer over its
// configured package scope, and filters diagnostics through
// //lint:ignore suppressions — reporting ignores that are malformed or
// suppress nothing under the pseudo-analyzer name "suppress".
// cmd/himaplint is the CLI; the fixture harness in fixture.go backs the
// golden tests under testdata/.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Diagnostic is one analyzer finding at one source position.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"pos"`
	Message  string         `json:"message"`
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Pass is one analyzer run over one type-checked package. Run functions
// report findings through Reportf; the driver applies suppression and
// ordering afterwards.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	// NoAlloc is the module-wide annotation fact set: every function
	// object carrying a //himap:noalloc annotation, keyed by its
	// *types.Func. The noalloc analyzer combines it with the summary
	// layer's AllocFree fact.
	NoAlloc map[*types.Func]bool

	// Sum is the module-wide interprocedural summary layer: call graph,
	// reachability from cancellation roots, PollsCtx and AllocFree
	// fixpoints. Built once per program by the driver.
	Sum *Summaries

	// P is the loaded package this pass runs over (the typed view of
	// Files/Pkg/Info).
	P *Package

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzer is one named check. Run inspects the Pass's package and
// reports findings; it must not retain the Pass.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// All returns the six project analyzers in catalogue order.
func All() []*Analyzer {
	return []*Analyzer{Determinism, ErrDiscipline, NoAlloc, LockCheck, Ctxflow, Lockset}
}

// SuppressName is the pseudo-analyzer name under which the driver
// reports malformed or dead //lint:ignore directives. It is not a
// valid suppression target itself.
const SuppressName = "suppress"

// knownAnalyzerNames is the set of names valid in //lint:ignore
// directives: the full catalogue plus whatever extra analyzers a
// caller passes to Run.
func knownAnalyzerNames(analyzers []*Analyzer) map[string]bool {
	names := map[string]bool{}
	for _, a := range All() {
		names[a.Name] = true
	}
	for _, a := range analyzers {
		names[a.Name] = true
	}
	return names
}

// Scope maps an analyzer name to the module package paths it runs on.
// A nil entry (or missing key) means "every package of the module".
// Paths are import paths; an entry applies to the exact package.
type Scope map[string][]string

// DefaultScope is the repository's enforcement configuration:
//
//   - determinism runs on the compile-path packages, where mapping
//     decisions are made (the paper pipeline, the router, the systolic
//     search, the baseline mapper, and the MRRG).
//   - errdiscipline runs on the compile-path packages plus the
//     architecture model, the simulator, and the analysis layer itself
//     (himaplint self-hosts) — the packages whose failures escape
//     through a public API and must stay errors.Is-able.
//   - noalloc, lockcheck, ctxflow, and lockset are annotation, type, or
//     summary driven and run module-wide (internal/analysis included).
func DefaultScope() Scope {
	compilePath := []string{
		"himap/internal/himap",
		"himap/internal/route",
		"himap/internal/systolic",
		"himap/internal/baseline",
		"himap/internal/exact",
		"himap/internal/mrrg",
	}
	return Scope{
		// internal/serve caches and serves compile results verbatim, so a
		// nondeterminism there (map-order response fields, wall-clock values
		// in cached bodies) would break the byte-identity contract between
		// served and direct compiles — it is compile-path for this purpose.
		// internal/store persists those bodies across restarts and
		// cmd/himapload replays a seeded workload against them; both carry
		// the same replay contract, so they join the determinism scope
		// (wall-clock latency measurement sites are annotated).
		Determinism.Name: append(append([]string(nil), compilePath...),
			"himap/internal/serve", "himap/internal/store", "himap/cmd/himapload"),
		ErrDiscipline.Name: append(append([]string(nil), compilePath...), "himap/internal/arch", "himap/internal/sim", "himap/internal/analysis"),
		NoAlloc.Name:       nil,
		LockCheck.Name:     nil,
		Ctxflow.Name:       nil,
		Lockset.Name:       nil,
	}
}

func (s Scope) includes(analyzer, pkgPath string) bool {
	paths, ok := s[analyzer]
	if !ok || paths == nil {
		return true
	}
	for _, p := range paths {
		if p == pkgPath {
			return true
		}
	}
	return false
}

// Run executes the analyzers over every package of the program within
// the scope, applies //lint:ignore suppression (reporting malformed and
// dead directives), and returns the surviving diagnostics sorted by
// position.
func Run(prog *Program, analyzers []*Analyzer, scope Scope) []Diagnostic {
	sum := prog.Summaries()
	known := knownAnalyzerNames(analyzers)
	var out []Diagnostic
	for _, pkg := range prog.Pkgs {
		var pkgDiags []Diagnostic
		for _, a := range analyzers {
			if !scope.includes(a.Name, pkg.Path) {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     prog.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				NoAlloc:  prog.NoAlloc,
				Sum:      sum,
				P:        pkg,
			}
			a.Run(pass)
			pkgDiags = append(pkgDiags, pass.diags...)
		}
		dirs := collectIgnores(prog.Fset, pkg.Files)
		out = append(out, filterSuppressed(dirs, pkgDiags)...)
		out = append(out, suppressionFindings(prog.Fset, dirs, known, analyzers, scope, pkg.Path)...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}
