package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NoAlloc enforces the router's hot-path memory discipline (PR 1): a
// function annotated with
//
//	//himap:noalloc
//
// in its doc comment must be allocation-free in steady state. Inside an
// annotated function the analyzer flags every construct that allocates
// (or defeats static reasoning about allocation):
//
//   - make and new calls;
//   - composite literals that heap-allocate: &T{...}, and slice or map
//     literals (plain struct value literals are stack values and pass);
//   - append that grows a function-local slice — append into persistent
//     scratch reached through a pointer, selector, or index expression
//     (e.g. *h, s.heap) is allowed as amortized warm-up growth;
//   - string concatenation (+ / += on strings);
//   - function literals — closures capture by reference and allocate;
//   - interface boxing: passing or converting a concrete value where an
//     interface is expected, including variadic ...any calls;
//   - conversions to string (they copy);
//   - calls to functions not themselves marked //himap:noalloc — the
//     annotation is a transitive contract, so the whole call graph of a
//     hot path is visibly annotated and checked. Allocation-free builtins
//     (len, cap, min, max, clear, copy, delete, real, imag, complex) are
//     always allowed.
var NoAlloc = &Analyzer{
	Name: "noalloc",
	Doc:  "flags allocating constructs inside functions annotated //himap:noalloc",
	Run:  runNoAlloc,
}

var allocFreeBuiltins = map[string]bool{
	"len": true, "cap": true, "min": true, "max": true,
	"clear": true, "copy": true, "delete": true,
	"real": true, "imag": true, "complex": true,
	"panic": true, // unwinds; never returns to the hot path
}

func runNoAlloc(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := p.Info.Defs[fd.Name].(*types.Func)
			if fn == nil || !p.NoAlloc[fn] {
				continue
			}
			checkNoAllocBody(p, fd)
		}
	}
}

func checkNoAllocBody(p *Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			p.Reportf(n.Pos(), "closure in noalloc function %s: func literals capture by reference and allocate", name)
			return false
		case *ast.CompositeLit:
			checkNoAllocComposite(p, name, n)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					p.Reportf(n.Pos(), "&composite literal allocates in noalloc function %s", name)
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringOperand(p.Info, n.X) {
				p.Reportf(n.Pos(), "string concatenation allocates in noalloc function %s", name)
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringOperand(p.Info, n.Lhs[0]) {
				p.Reportf(n.Pos(), "string concatenation allocates in noalloc function %s", name)
			}
		case *ast.CallExpr:
			checkNoAllocCall(p, name, fd, n)
		case *ast.GoStmt:
			p.Reportf(n.Pos(), "go statement in noalloc function %s allocates a goroutine", name)
		case *ast.DeferStmt:
			p.Reportf(n.Pos(), "defer in noalloc function %s allocates a deferred frame", name)
		}
		return true
	})
}

func checkNoAllocComposite(p *Pass, name string, lit *ast.CompositeLit) {
	tv, ok := p.Info.Types[lit]
	if !ok {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice:
		p.Reportf(lit.Pos(), "slice literal allocates in noalloc function %s", name)
	case *types.Map:
		p.Reportf(lit.Pos(), "map literal allocates in noalloc function %s", name)
	}
}

func checkNoAllocCall(p *Pass, name string, fd *ast.FuncDecl, call *ast.CallExpr) {
	// Type conversion?
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() {
		if types.IsInterface(tv.Type) {
			p.Reportf(call.Pos(), "conversion to interface boxes its operand in noalloc function %s", name)
		} else if isStringType(tv.Type) && len(call.Args) == 1 && !isStringOperand(p.Info, call.Args[0]) {
			p.Reportf(call.Pos(), "conversion to string copies in noalloc function %s", name)
		}
		return
	}
	// Builtin?
	if b := calleeBuiltin(p.Info, call); b != "" {
		switch {
		case allocFreeBuiltins[b]:
		case b == "append":
			checkNoAllocAppend(p, name, fd, call)
		default:
			p.Reportf(call.Pos(), "builtin %s allocates in noalloc function %s", b, name)
		}
		return
	}
	// Static callee: must itself be annotated.
	fn := calleeFunc(p.Info, call)
	if fn == nil {
		p.Reportf(call.Pos(), "indirect call in noalloc function %s cannot be verified allocation-free", name)
		return
	}
	if !p.NoAlloc[fn] {
		p.Reportf(call.Pos(), "%s calls %s, which is not marked //himap:noalloc", name, fn.FullName())
		return
	}
	checkInterfaceBoxing(p, name, call)
}

// checkNoAllocAppend allows append into persistent scratch (reached via
// a pointer deref, selector, or index expression) — growth there is the
// documented amortized warm-up — and flags append that grows a slice
// local to the function.
func checkNoAllocAppend(p *Pass, name string, fd *ast.FuncDecl, call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
		obj := p.Info.Uses[id]
		if obj != nil && declaredWithin(obj, fd.Body) {
			p.Reportf(call.Pos(), "append grows function-local slice %s in noalloc function %s", id.Name, name)
		}
	}
}

// checkInterfaceBoxing flags arguments passed into interface-typed
// parameters as concrete values.
func checkInterfaceBoxing(p *Pass, name string, call *ast.CallExpr) {
	tv, ok := p.Info.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos && i == params.Len()-1 {
				pt = params.At(params.Len() - 1).Type() // slice passed through, no boxing
			} else {
				pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		at, ok := p.Info.Types[arg]
		if !ok || at.IsNil() || types.IsInterface(at.Type) {
			continue
		}
		p.Reportf(arg.Pos(), "argument boxes %s into interface %s in noalloc function %s", at.Type, pt, name)
	}
}

func isStringOperand(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Type != nil && isStringType(tv.Type)
}
