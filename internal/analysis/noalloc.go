package analysis

import (
	"go/ast"
	"go/types"
)

// NoAlloc enforces the router's hot-path memory discipline: a function
// annotated with
//
//	//himap:noalloc
//
// in its doc comment must be allocation-free in steady state. v2
// replaces the v1 construct blacklist with the escape-based scanner in
// escape.go — &composite and slice literals pass when they provably
// stay on the stack, function literals pass unless they capture and
// escape, and append passes into persistent scratch or locals derived
// from it (buf := s.scratch[:0]). Map literals, make/new, string
// concatenation, go/defer, and interface boxing remain unconditional.
//
// Calls resolve through the summary layer: a callee is acceptable when
// it is annotated //himap:noalloc or when the module-wide AllocFree
// fixpoint proves it allocation-free — the annotation is a contract,
// not a spelling requirement, and transitivity falls out of the
// summaries. Indirect and interface calls stay unverifiable (except
// calls through a local bound once to a function literal).
var NoAlloc = &Analyzer{
	Name: "noalloc",
	Doc:  "flags allocating constructs inside functions annotated //himap:noalloc (escape-based, summary-transitive)",
	Run:  runNoAlloc,
}

var allocFreeBuiltins = map[string]bool{
	"len": true, "cap": true, "min": true, "max": true,
	"clear": true, "copy": true, "delete": true,
	"real": true, "imag": true, "complex": true,
	"panic": true, // unwinds; never returns to the hot path
}

func runNoAlloc(p *Pass) {
	calleeOK := func(fn *types.Func) bool {
		if p.NoAlloc[fn] {
			return true
		}
		if p.Sum != nil {
			if fs := p.Sum.Funcs[fn]; fs != nil && fs.AllocFree {
				return true
			}
		}
		return false
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := p.Info.Defs[fd.Name].(*types.Func)
			if fn == nil || !p.NoAlloc[fn] {
				continue
			}
			pkg := &Package{Path: p.Pkg.Path(), Files: p.Files, Types: p.Pkg, Info: p.Info}
			newBodyScan(pkg, fd).run(calleeOK, p.Reportf)
		}
	}
}
