// Package ctxflow is the golden fixture for the cancellation-flow
// analyzer: below a //himap:ctxroot root, every unbounded loop of a
// reachable context-carrying function must poll cancellation on its
// spine, and the received context may only be replaced by
// context.Background/TODO under an explicit nil guard. Bounded loops —
// constant bounds, len/cap bounds, and single-assignment locals
// initialized from those — are exempt, as are functions the call graph
// cannot reach from any root.
package ctxflow

import (
	"context"

	"ctxflow/sub"
)

// Solve is the fixture's cancellation root.
//
//himap:ctxroot
func Solve(ctx context.Context, n int) int {
	if ctx == nil {
		ctx = context.Background() // nil guard: allowed
	}
	total := 0
	for r := 0; r < n; r++ { // want "unbounded loop in Solve"
		total += r
	}
	for i := 0; i < 64; i++ { // constant bound: fine
		total += i
	}
	rounds := 8
	for r := 0; r < rounds; r++ { // single-assignment constant local: fine
		total += r
	}
	total += descend(ctx, n)
	total += pump(ctx, n)
	total += nested(ctx, n)
	total += droppy(ctx, n)
	total += waived(ctx, n)
	total += sub.Chain(ctx, n)
	total += sub.Spin(ctx, n)
	return total
}

// descend mirrors the exact-search descent loop: unbounded, but a
// stride poll on the spine bounds cancellation latency.
func descend(ctx context.Context, n int) int {
	steps := 0
	for {
		steps++
		if steps&255 == 0 {
			if ctx.Err() != nil {
				return steps
			}
		}
		if steps > n {
			return steps
		}
	}
}

// pump polls through a callee: the summary proves poller polls the
// context it receives, so the forwarding call on the spine counts.
func pump(ctx context.Context, n int) int {
	i := 0
	for {
		if poller(ctx) || i > n {
			return i
		}
		i++
	}
}

func poller(ctx context.Context) bool { return ctx.Err() != nil }

// nested polls on the outer spine only — the inner loop must still
// poll for itself (the outer check never runs while it spins).
func nested(ctx context.Context, n int) int {
	t := 0
	for {
		if ctx.Err() != nil {
			return t
		}
		for j := 0; j < n; j++ { // want "unbounded loop in nested"
			t += j
		}
	}
}

// droppy severs cancellation below the API boundary, twice.
func droppy(ctx context.Context, n int) int {
	bg := context.Background() // want "droppy drops its received context with context.Background"
	td := context.TODO()       // want "droppy drops its received context with context.TODO"
	_, _ = bg, td
	_ = ctx
	return n
}

// waived carries an accepted exception with a reason.
func waived(ctx context.Context, n int) int {
	_ = ctx
	t := 0
	//lint:ignore ctxflow probe loop bounded by fabric size at every call site
	for i := 0; i < n; i++ {
		t += i
	}
	return t
}

// orphan is unreachable from any root: its loop is not checked.
func orphan(ctx context.Context, n int) int {
	_ = ctx
	t := 0
	for i := 0; i < n; i++ {
		t++
	}
	return t
}
