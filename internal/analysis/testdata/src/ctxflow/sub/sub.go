// Package sub exercises cross-package summary facts for ctxflow: both
// functions are reached from the parent package's root, and the poll
// proof for Chain crosses the package boundary through done's summary.
package sub

import "context"

// Chain polls through the package-local helper on its spine.
func Chain(ctx context.Context, n int) int {
	i := 0
	for {
		if done(ctx) || i > n {
			return i
		}
		i++
	}
}

func done(ctx context.Context) bool { return ctx.Err() != nil }

// Spin is reached from the root and never polls.
func Spin(ctx context.Context, n int) int {
	total := 0
	for r := 0; r < n; r++ { // want "unbounded loop in Spin"
		total += r
	}
	return total
}
