// Package noalloc is the golden fixture for the noalloc analyzer: inside
// a //himap:noalloc function every allocating construct is flagged, the
// annotation is transitive across calls, and append into persistent
// scratch stays allowed as amortized warm-up growth.
package noalloc

//himap:noalloc
func helper(x int) int { return x + 1 }

func cold() int { return 0 }

//himap:noalloc
func sink(v any) { _ = v }

type heap []int

// push appends through the pointer deref — persistent scratch, allowed.
//
//himap:noalloc
func (h *heap) push(v int) {
	q := append(*h, v)
	*h = q
}

//himap:noalloc
func hot(xs []int, scratch *[]int) int {
	s := 0
	for _, x := range xs {
		s += helper(x)
	}
	*scratch = append(*scratch, s)
	m := make([]int, 4) // want "builtin make allocates in noalloc function hot"
	_ = m
	var local []int
	local = append(local, s) // want "append grows function-local slice local"
	_ = local
	return s
}

//himap:noalloc
func callsCold() int {
	return cold() // want "which is not marked //himap:noalloc"
}

//himap:noalloc
func callsSink(v int) {
	sink(v) // want "boxes int into interface"
}

//himap:noalloc
func badConstructs(n int, f func() int) {
	g := func() int { return n } // want "closure in noalloc function badConstructs"
	_ = g
	_ = f()           // want "indirect call in noalloc function badConstructs"
	xs := []int{1, 2} // want "slice literal allocates"
	_ = xs
	defer helper(n) // want "defer in noalloc"
}

//himap:noalloc
func concat(a, b string) string {
	return a + b // want "string concatenation allocates"
}

// pricer mirrors the route.CostModel seam: an interface method can
// never carry the //himap:noalloc annotation (there is no body to
// annotate), so dispatching through the interface inside a hot path is
// always flagged — annotated implementations notwithstanding. Hot
// paths must materialize the model into flat tables up front (as
// SetCostModel does) instead of pricing per node through the seam.
type pricer interface {
	price(occ int) int
}

type flatPricer struct{ base int }

//himap:noalloc
func (f flatPricer) price(occ int) int { return f.base * occ }

//himap:noalloc
func dispatches(p pricer) int {
	return p.price(1) // want "dispatches calls \(noalloc.pricer\).price, which is not marked //himap:noalloc"
}

// callsImpl invokes the same method on the concrete value: a static,
// annotated callee, so nothing is flagged.
//
//himap:noalloc
func callsImpl(f flatPricer) int {
	return f.price(1)
}

// unannotated may allocate freely: nothing here is flagged.
func unannotated() []int {
	return make([]int, 8)
}
