// Package noalloc is the golden fixture for the escape-based noalloc
// analyzer (v2): inside a //himap:noalloc function, allocations are
// flagged only when they escape — captive composite literals,
// non-escaping closures, and appends into persistent scratch are
// allowed — and unannotated callees are accepted whenever the
// interprocedural summary proves them allocation-free (including across
// packages, see the noalloc/sub import).
package noalloc

import "noalloc/sub"

//himap:noalloc
func helper(x int) int { return x + 1 }

// cold allocates and carries no annotation: the summary layer strikes
// it, so annotated callers are flagged.
func cold() []int { return make([]int, 1) }

// tiny carries no annotation either, but its summary proves it
// allocation-free — annotated callers are accepted.
func tiny(x int) int { return x * 2 }

//himap:noalloc
func sink(v any) { _ = v }

type heap []int

// push appends through the pointer deref — persistent scratch, allowed.
//
//himap:noalloc
func (h *heap) push(v int) {
	q := append(*h, v)
	*h = q
}

//himap:noalloc
func hot(xs []int, scratch *[]int) int {
	s := 0
	for _, x := range xs {
		s += helper(x)
	}
	*scratch = append(*scratch, s)
	m := make([]int, 4) // want "builtin make allocates in noalloc function hot"
	_ = m
	var local []int
	local = append(local, s) // want "append grows function-local slice local"
	_ = local
	return s
}

//himap:noalloc
func callsCold() int {
	return len(cold()) // want "callsCold calls noalloc.cold, which is neither //himap:noalloc nor provably allocation-free"
}

// summarized leans on the interprocedural summary twice: neither tiny
// nor sub.Scale carries an annotation, and nothing is flagged.
//
//himap:noalloc
func summarized(x int) int {
	return sub.Scale(x, 3) + tiny(x)
}

//himap:noalloc
func callsPad(n int) int {
	return len(sub.Pad(n)) // want "callsPad calls noalloc/sub.Pad, which is neither //himap:noalloc nor provably allocation-free"
}

//himap:noalloc
func callsSink(v int) {
	sink(v) // want "boxes int into interface"
}

//himap:noalloc
func badConstructs(n int, f func() int) {
	g := func() int { return n } // want "closure captures enclosing variables and escapes"
	_ = g
	_ = f()           // want "indirect call in noalloc function badConstructs"
	xs := []int{1, 2} // want "slice literal escapes and allocates"
	_ = xs
	defer helper(n) // want "defer in noalloc"
}

// captive keeps its slice literal function-local: the literal is
// assigned to a local that never escapes, so it is provably
// stack-allocatable and nothing is flagged.
//
//himap:noalloc
func captive(xs []int) int {
	tmp := []int{0, 0, 0}
	for i, x := range xs {
		tmp[i%3] += x
	}
	return tmp[0] + tmp[1] + tmp[2]
}

// closureLocal captures s, but the closure itself never escapes, and
// the call through add resolves to the one literal ever bound to it —
// both allowed under v2.
//
//himap:noalloc
func closureLocal(xs []int) int {
	s := 0
	add := func(x int) { s += x }
	for _, x := range xs {
		add(x)
	}
	return s
}

type state struct{ scratch []int }

// gather appends into a local derived from persistent scratch — the
// amortized warm-up growth idiom, allowed.
//
//himap:noalloc
func (st *state) gather(xs []int) int {
	buf := st.scratch[:0]
	for _, x := range xs {
		buf = append(buf, x)
	}
	st.scratch = buf
	return len(buf)
}

//himap:noalloc
func concat(a, b string) string {
	return a + b // want "string concatenation allocates"
}

// waived demonstrates an accepted exception: the directive names the
// analyzer and justifies the allocation, so nothing is reported.
//
//himap:noalloc
func waived() []int {
	//lint:ignore noalloc warm-up allocation measured once at startup
	return make([]int, 8)
}

// pricer mirrors the route.CostModel seam: an interface method call can
// never be verified allocation-free (no body to summarize behind the
// seam), so dispatching through the interface inside a hot path is
// always flagged — annotated implementations notwithstanding. Hot
// paths must materialize the model into flat tables up front (as
// SetCostModel does) instead of pricing per node through the seam.
type pricer interface {
	price(occ int) int
}

type flatPricer struct{ base int }

//himap:noalloc
func (f flatPricer) price(occ int) int { return f.base * occ }

//himap:noalloc
func dispatches(p pricer) int {
	return p.price(1) // want "interface method call in noalloc function dispatches cannot be verified allocation-free"
}

// callsImpl invokes the same method on the concrete value: a static,
// annotated callee, so nothing is flagged.
//
//himap:noalloc
func callsImpl(f flatPricer) int {
	return f.price(1)
}

// unannotated may allocate freely: nothing here is flagged.
func unannotated() []int {
	return make([]int, 8)
}
