// Package sub exercises cross-package summary facts: neither function
// carries a //himap:noalloc annotation, so acceptance or rejection of
// callers in the parent fixture package rests entirely on the
// interprocedural AllocFree summary.
package sub

// Scale is allocation-free by inspection; the summary proves it.
func Scale(x, f int) int { return x * f }

// Pad allocates; the summary strikes it and every annotated caller.
func Pad(n int) []int { return make([]int, n) }
