// Package lockcheck is the golden fixture for the lockcheck analyzer:
// copied sync primitives (receivers, parameters, assignments, range
// values) and goroutine closures capturing loop variables.
package lockcheck

import "sync"

type counter struct {
	mu sync.Mutex
	n  int
}

func (c counter) bump() { // want "value receiver containing a sync primitive"
	c.n++
}

// ok uses a pointer receiver: the mutex is shared, not copied.
func (c *counter) ok() { c.n++ }

func copyParam(c counter) {} // want "parameter c of copyParam copies a sync primitive"

func copyAssign(c *counter) {
	d := *c // want "assignment copies a value containing a sync primitive"
	_ = d.n
}

func rangeCopy(cs []counter) {
	for _, c := range cs { // want "range value copies an element containing a sync primitive"
		_ = c.n
	}
}

func loopCapture(items []int) {
	var wg sync.WaitGroup
	for i := range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = items[i] // want "goroutine captures loop variable i"
		}()
	}
	wg.Wait()
}

// loopParam passes the loop variable as an argument — the repo's worker
// idiom — so nothing is flagged.
func loopParam(items []int) {
	var wg sync.WaitGroup
	for i := range items {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_ = items[i]
		}(i)
	}
	wg.Wait()
}
