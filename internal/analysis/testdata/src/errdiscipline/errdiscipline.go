// Package errdiscipline is the golden fixture for the errdiscipline
// analyzer: untyped error construction inside function bodies is
// flagged; package-level sentinels and %w-wrapped chains are approved.
package errdiscipline

import (
	"errors"
	"fmt"
)

// ErrBad is the approved sentinel pattern: package-level errors.New is
// identity-comparable, so errors.Is reaches it.
var ErrBad = errors.New("bad input")

func untypedNew() error {
	return errors.New("boom") // want "dynamic errors.New"
}

func untypedErrorf(n int) error {
	return fmt.Errorf("n out of range: %d", n) // want "fmt.Errorf without %w"
}

// wrapped ties the failure to the sentinel: errors.Is(err, ErrBad) holds.
func wrapped(n int) error {
	return fmt.Errorf("n out of range: %d: %w", n, ErrBad)
}

// rewrap keeps an upstream typed chain intact.
func rewrap(err error) error {
	return fmt.Errorf("decode: %w", err)
}

// dynamicFormat cannot be judged statically, so it is not flagged.
func dynamicFormat(format string, args ...any) error {
	return fmt.Errorf(format, args...)
}
