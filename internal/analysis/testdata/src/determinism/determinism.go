// Package determinism is the golden fixture for the determinism
// analyzer: wall-clock reads, globally seeded randomness, and map
// iteration order escaping into slices, output, or candidate selection.
package determinism

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

func wallClock() int64 {
	return time.Now().UnixNano() // want "time.Now in the compile path"
}

func globalRand() int {
	return rand.Intn(8) // want "globally seeded rand.Intn"
}

// seededRand is the approved pattern: an explicitly seeded generator is
// reproducible, so nothing is flagged.
func seededRand(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(8)
}

func leakOrder(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "appends to keys in map iteration order without a subsequent sort"
	}
	return keys
}

// sortedKeys re-establishes a canonical order after the loop, so the
// append is allowed.
func sortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func printOrder(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want "map iteration order reaches output"
	}
}

func pickCandidate(m map[string]int) string {
	best := ""
	for k := range m {
		best = k // want "assigns best from map iteration state"
	}
	return best
}

// sumInts is a commutative integer reduction: order-independent, allowed.
func sumInts(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func sumFloats(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v // want "non-commutative reduction into total"
	}
	return total
}

// keyedWrite stores under the iteration key — a keyed write is
// order-independent, so nothing is flagged.
func keyedWrite(m map[string]int, out map[string]int) {
	for k, v := range m {
		out[k] = v + 1
	}
}
