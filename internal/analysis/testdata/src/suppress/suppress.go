// Package suppress is the golden fixture for the //lint:ignore grammar
// (v2): a directive names exactly one real analyzer and carries a
// reason, and silences that analyzer on its own line and the line
// below. The blanket "all" form is rejected, unknown analyzer names are
// rejected, a missing reason is rejected, and a well-formed directive
// that suppresses nothing when its analyzer runs is reported as a dead
// suppression.
package suppress

import "time"

func traced() int64 {
	//lint:ignore determinism fixture-sanctioned wall-clock read
	return time.Now().UnixNano()
}

// otherAnalyzer's directive names an analyzer that does not run over
// this fixture: it neither covers the determinism finding nor counts as
// dead, because deadness is only judged for analyzers that actually ran.
func otherAnalyzer() int64 {
	//lint:ignore noalloc wrong analyzer name does not cover determinism
	return time.Now().UnixNano() // want "time.Now in the compile path"
}

func missingReason() int64 {
	/* want "needs a reason" */  //lint:ignore determinism
	return time.Now().UnixNano() // want "time.Now in the compile path"
}

func unknownName() int64 {
	//lint:ignore determinsim typo in the analyzer name // want "names unknown analyzer \"determinsim\""
	return time.Now().UnixNano() // want "time.Now in the compile path"
}

func blanket() int64 {
	return time.Now().UnixNano() //lint:ignore all blanket waivers are rejected // want "time.Now in the compile path" // want "names no specific analyzer"
}

// dead's directive is well-formed and determinism runs here, but the
// covered lines are clean.
func dead() int64 {
	//lint:ignore determinism nothing here needs waiving // want "suppresses nothing \(dead suppression"
	return 42
}
