// Package suppress is the golden fixture for //lint:ignore handling: a
// directive with a reason silences its own line and the line below for
// the named analyzer (or "all"); a wrong analyzer name or a missing
// reason suppresses nothing.
package suppress

import "time"

func traced() int64 {
	//lint:ignore determinism fixture-sanctioned wall-clock read
	return time.Now().UnixNano()
}

func wrongAnalyzer() int64 {
	//lint:ignore noalloc wrong analyzer name does not cover determinism
	return time.Now().UnixNano() // want "time.Now in the compile path"
}

func missingReason() int64 {
	//lint:ignore determinism
	return time.Now().UnixNano() // want "time.Now in the compile path"
}

func blanket() int64 {
	return time.Now().UnixNano() //lint:ignore all end-of-line blanket waiver with reason
}
