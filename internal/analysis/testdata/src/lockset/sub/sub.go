// Package sub exercises cross-package lockset facts: both methods are
// spawned from the parent package, and the inconsistency on Hits is
// reported at the unlocked write site in this package.
package sub

import "sync"

type Shared struct {
	Mu   sync.Mutex
	Hits int
}

func (s *Shared) Bump() {
	s.Mu.Lock()
	s.Hits++
	s.Mu.Unlock()
}

func (s *Shared) Race() {
	s.Hits++ // want "field Hits written in \(\*lockset/sub.Shared\).Race without holding Mu"
}
