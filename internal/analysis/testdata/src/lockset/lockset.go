// Package lockset is the golden fixture for the interprocedural
// lockset analyzer: fields written from more than one goroutine must be
// written under a consistent lock set. Run's go statements define the
// concurrent region; writes to body-local structs are exempt, fields
// locked consistently everywhere are clean, and an accepted exception
// needs a reasoned //lint:ignore lockset directive.
package lockset

import (
	"sync"

	"lockset/sub"
)

type counter struct {
	mu sync.Mutex
	n  int
	m  int
}

// Run spawns the workers; everything below runs concurrently.
func Run(c *counter, sh *sub.Shared) {
	go c.locked()
	go c.unlocked()
	go c.consistent()
	go c.waived()
	go c.localOnly()
	go sh.Bump()
	go sh.Race()
}

func (c *counter) locked() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *counter) unlocked() {
	c.n++ // want "field n written in \(\*lockset.counter\).unlocked without holding mu"
}

// consistent holds mu at every write to m (defer keeps it held), so m
// never shows an inconsistent lock set.
func (c *counter) consistent() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m++
}

func (c *counter) waived() {
	//lint:ignore lockset stats counter is approximate by design
	c.n++
}

// localOnly writes the same field of a body-local value: never shared,
// never reported.
func (c *counter) localOnly() {
	var tmp counter
	tmp.n++
	_ = tmp
}
