package analysis

import (
	"go/ast"
	"go/types"
)

// LockCheck guards the concurrency substrate: sync primitives must never
// be copied after first use, and worker goroutines must take loop state
// as explicit parameters instead of capturing loop variables. It flags:
//
//   - mutex copies — parameters, results, value receivers, assignments,
//     range values, and call arguments whose type (transitively, by
//     value) contains a sync.Mutex, sync.RWMutex, sync.WaitGroup,
//     sync.Once, or sync.Cond;
//   - goroutine closures referencing an enclosing loop's iteration
//     variable. Go ≥ 1.22 makes the capture per-iteration, but the
//     repo's worker-pool idiom (internal/par) passes loop state as
//     arguments so the data flow is explicit and index-addressed result
//     slots stay obviously race-free.
var LockCheck = &Analyzer{
	Name: "lockcheck",
	Doc:  "flags copied sync primitives and goroutine closures capturing loop variables",
	Run:  runLockCheck,
}

var syncLockTypes = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true, "Once": true, "Cond": true,
}

// containsLock reports whether t holds a sync primitive by value.
func containsLock(t types.Type) bool {
	switch u := t.(type) {
	case *types.Named:
		if obj := u.Obj(); obj.Pkg() != nil && obj.Pkg().Path() == "sync" && syncLockTypes[obj.Name()] {
			return true
		}
		return containsLock(u.Underlying())
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLock(u.Field(i).Type()) {
				return true
			}
		}
	case *types.Array:
		return containsLock(u.Elem())
	}
	return false
}

func runLockCheck(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			checkLockSignature(p, fd)
			if fd.Body != nil {
				checkLockBody(p, fd)
				checkLoopCapture(p, fd)
			}
		}
	}
}

func checkLockSignature(p *Pass, fd *ast.FuncDecl) {
	fn, _ := p.Info.Defs[fd.Name].(*types.Func)
	if fn == nil {
		return
	}
	sig := fn.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil && containsLock(recv.Type()) {
		p.Reportf(fd.Recv.Pos(), "method %s has a value receiver containing a sync primitive: use a pointer receiver", fd.Name.Name)
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if v := sig.Params().At(i); containsLock(v.Type()) {
			p.Reportf(fd.Type.Params.Pos(), "parameter %s of %s copies a sync primitive: pass a pointer", v.Name(), fd.Name.Name)
		}
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if v := sig.Results().At(i); containsLock(v.Type()) {
			p.Reportf(fd.Type.Results.Pos(), "result of %s returns a sync primitive by value", fd.Name.Name)
		}
	}
}

func checkLockBody(p *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				if copiesLockValue(p.Info, rhs) {
					p.Reportf(n.Pos(), "assignment copies a value containing a sync primitive")
				}
			}
		case *ast.RangeStmt:
			if n.Value != nil {
				if t := exprOrDefType(p.Info, n.Value); t != nil && containsLock(t) {
					p.Reportf(n.Value.Pos(), "range value copies an element containing a sync primitive: range over indices or pointers")
				}
			}
		case *ast.CallExpr:
			for _, arg := range n.Args {
				if copiesLockValue(p.Info, arg) {
					p.Reportf(arg.Pos(), "call argument copies a value containing a sync primitive")
				}
			}
		}
		return true
	})
}

// exprOrDefType resolves the type of e, falling back to the defined
// object for idents introduced by := (range clauses record those in
// Defs, not Types).
func exprOrDefType(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok && tv.Type != nil {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := info.Defs[id]; obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// copiesLockValue reports whether evaluating e copies an existing value
// holding a sync primitive. Fresh composite literals and address-taking
// do not copy prior state and pass.
func copiesLockValue(info *types.Info, e ast.Expr) bool {
	switch ast.Unparen(e).(type) {
	case *ast.CompositeLit, *ast.UnaryExpr, *ast.CallExpr, *ast.FuncLit:
		return false
	}
	tv, ok := info.Types[ast.Unparen(e)]
	return ok && tv.Type != nil && containsLock(tv.Type)
}

// checkLoopCapture flags goroutine closures that reference an enclosing
// loop's iteration variables.
func checkLoopCapture(p *Pass, fd *ast.FuncDecl) {
	// Collect every loop variable together with its loop's source range.
	type loopVar struct {
		obj  types.Object
		loop ast.Node
	}
	var vars []loopVar
	addDefs := func(loop ast.Node, exprs ...ast.Expr) {
		for _, e := range exprs {
			id, ok := e.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			if obj := p.Info.Defs[id]; obj != nil {
				vars = append(vars, loopVar{obj, loop})
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			addDefs(n, n.Key, n.Value)
		case *ast.ForStmt:
			if as, ok := n.Init.(*ast.AssignStmt); ok {
				addDefs(n, as.Lhs...)
			}
		}
		return true
	})
	if len(vars) == 0 {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			id, ok := m.(*ast.Ident)
			if !ok {
				return true
			}
			use := p.Info.Uses[id]
			if use == nil {
				return true
			}
			for _, lv := range vars {
				if use == lv.obj && gs.Pos() >= lv.loop.Pos() && gs.End() <= lv.loop.End() {
					p.Reportf(id.Pos(), "goroutine captures loop variable %s: pass it as an argument to the closure", id.Name)
				}
			}
			return true
		})
		return true
	})
}
