package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Lockset is the interprocedural may-happen-in-parallel companion to
// the CI race job: it statically covers paths the tests never execute.
//
// Concurrency roots are goroutine spawn sites (go statements and the
// internal/par fan-out helpers ForEach/Map) plus the serve handlers and
// //himap:ctxroot entry points, which the HTTP server runs on
// concurrent goroutines by construction. The concurrent function set is
// the call-graph closure (static + devirtualized edges) of those roots.
//
// Inside every concurrent body the analyzer tracks a syntactic lockset
// — X.Lock()/X.RLock() adds the mutex variable, X.Unlock()/X.RUnlock()
// removes it, deferred unlocks keep it held, branches fork a copy — and
// records every write to a shared field (struct field whose selector
// base is not a body-local variable). A field written by concurrent
// code under inconsistent locksets — at least one write holds a lock,
// and the intersection across writes is empty — is reported at each
// write site disjoint from the first locked one.
//
// Under-approximations (documented in DESIGN.md): lock/unlock calls
// hidden behind helper functions are not modeled, writes through local
// aliases of shared state are skipped, and inline (non-spawned)
// function literals are not walked.
var Lockset = &Analyzer{
	Name: "lockset",
	Doc:  "reports shared fields written under inconsistent lock sets in may-happen-in-parallel code",
	Run:  runLockset,
}

func runLockset(p *Pass) {
	sum := p.Sum
	if sum == nil {
		return
	}
	sum.buildLocksetTable()
	for _, d := range sum.locksetFindings() {
		if d.pkg.Types == p.Pkg {
			p.Reportf(d.pos, "%s", d.msg)
		}
	}
}

type locksetFinding struct {
	pos token.Pos
	pkg *Package
	msg string
}

// buildLocksetTable computes (once per program) the module-wide table
// of shared-field writes in concurrent code.
func (s *Summaries) buildLocksetTable() {
	if s.locksetOnce {
		return
	}
	s.locksetOnce = true
	s.locksetTab = map[*types.Var][]writeSite{}

	type litRoot struct {
		pkg *Package
		lit *ast.FuncLit
		fn  string
	}
	var lits []litRoot
	concurrent := map[*types.Func]bool{}
	var queue []*types.Func
	addFn := func(fn *types.Func) {
		if fn != nil && !concurrent[fn] {
			if _, ok := s.Funcs[fn]; ok {
				concurrent[fn] = true
				queue = append(queue, fn)
			}
		}
	}

	// Roots: handlers / ctxroot entry points, go statements, par fan-out.
	for _, fn := range s.order {
		sum := s.Funcs[fn]
		if sum.CtxRoot {
			addFn(fn)
		}
		if sum.Decl.Body == nil {
			continue
		}
		info := sum.Pkg.Info
		ast.Inspect(sum.Decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
					lits = append(lits, litRoot{sum.Pkg, lit, sum.Fn.FullName()})
				} else {
					addFn(calleeFunc(info, n.Call))
				}
			case *ast.CallExpr:
				callee := calleeFunc(info, n)
				if callee == nil || !isParFanout(callee) {
					return true
				}
				for _, arg := range n.Args {
					tv, ok := info.Types[arg]
					if !ok || tv.Type == nil {
						continue
					}
					if _, isFunc := tv.Type.Underlying().(*types.Signature); !isFunc {
						continue
					}
					if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
						lits = append(lits, litRoot{sum.Pkg, lit, sum.Fn.FullName()})
					} else if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
						if fn, ok := info.Uses[id].(*types.Func); ok {
							addFn(fn)
						}
					}
				}
			}
			return true
		})
	}

	// Closure over call edges.
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		sum := s.Funcs[fn]
		for _, next := range sum.Callees {
			addFn(next)
		}
		for _, next := range sum.Devirt {
			addFn(next)
		}
	}
	// Spawned literals also pull their static callees into the set.
	for _, lr := range lits {
		ast.Inspect(lr.lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				addFn(calleeFunc(lr.pkg.Info, call))
			}
			return true
		})
		for len(queue) > 0 {
			fn := queue[0]
			queue = queue[1:]
			sum := s.Funcs[fn]
			for _, next := range sum.Callees {
				addFn(next)
			}
			for _, next := range sum.Devirt {
				addFn(next)
			}
		}
	}

	// Walk every concurrent body recording shared-field writes.
	for _, fn := range s.order {
		if !concurrent[fn] {
			continue
		}
		sum := s.Funcs[fn]
		if sum.Decl.Body == nil {
			continue
		}
		w := &locksetWalker{pkg: sum.Pkg, region: sum.Decl.Body, fnName: sum.Fn.FullName(), tab: s.locksetTab}
		w.walkStmts(sum.Decl.Body.List, map[*types.Var]bool{})
	}
	for _, lr := range lits {
		w := &locksetWalker{pkg: lr.pkg, region: lr.lit.Body, fnName: lr.fn, tab: s.locksetTab}
		w.walkStmts(lr.lit.Body.List, map[*types.Var]bool{})
	}
}

// locksetFindings renders the write table into findings: one per write
// site holding no lock in common with the first locked write of the
// same field, for fields whose global lockset intersection is empty.
func (s *Summaries) locksetFindings() []locksetFinding {
	var fields []*types.Var
	for f := range s.locksetTab {
		fields = append(fields, f)
	}
	sort.Slice(fields, func(i, j int) bool { return fields[i].Pos() < fields[j].Pos() })
	var out []locksetFinding
	for _, f := range fields {
		sites := s.locksetTab[f]
		sort.Slice(sites, func(i, j int) bool { return sites[i].pos < sites[j].pos })
		var ref *writeSite
		for i := range sites {
			if len(sites[i].locks) > 0 {
				ref = &sites[i]
				break
			}
		}
		if ref == nil {
			continue // never locked anywhere: consistent (vacuously)
		}
		common := map[*types.Var]bool{}
		for l := range ref.locks {
			common[l] = true
		}
		for _, site := range sites {
			for l := range common {
				if !site.locks[l] {
					delete(common, l)
				}
			}
		}
		if len(common) > 0 {
			continue // some lock is held at every write
		}
		refPos := s.prog.Fset.Position(ref.pos)
		for _, site := range sites {
			if intersects(site.locks, ref.locks) {
				continue
			}
			out = append(out, locksetFinding{
				pos: site.pos,
				pkg: site.pkg,
				msg: fieldWriteMsg(f, site, ref, refPos.String()),
			})
		}
	}
	return out
}

func fieldWriteMsg(f *types.Var, site writeSite, ref *writeSite, refPos string) string {
	locks := lockNames(ref.locks)
	return "field " + f.Name() + " written in " + site.fn + " without holding " + locks +
		" (held at the concurrent write in " + ref.fn + ", " + refPos + ")"
}

func lockNames(locks map[*types.Var]bool) string {
	var names []string
	for l := range locks {
		names = append(names, l.Name())
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

func intersects(a, b map[*types.Var]bool) bool {
	for k := range a {
		if b[k] {
			return true
		}
	}
	return false
}

// isParFanout recognizes the internal/par worker-pool helpers.
func isParFanout(fn *types.Func) bool {
	path := funcPkgPath(fn)
	if !strings.HasSuffix(path, "/par") && path != "par" {
		return false
	}
	return fn.Name() == "ForEach" || fn.Name() == "Map"
}

// locksetWalker tracks the syntactic lockset through one body.
type locksetWalker struct {
	pkg    *Package
	region ast.Node // the body block: selector bases declared inside it are local
	fnName string
	tab    map[*types.Var][]writeSite
}

func (w *locksetWalker) walkStmts(stmts []ast.Stmt, held map[*types.Var]bool) {
	for _, st := range stmts {
		w.walkStmt(st, held)
	}
}

func (w *locksetWalker) walkStmt(st ast.Stmt, held map[*types.Var]bool) {
	switch st := st.(type) {
	case *ast.LabeledStmt:
		w.walkStmt(st.Stmt, held)
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			w.applyLockCall(call, held)
		}
	case *ast.DeferStmt:
		// Deferred unlocks release at return: the lock stays held for
		// the rest of the body. Deferred locks are not modeled.
	case *ast.AssignStmt:
		for _, lhs := range st.Lhs {
			w.recordWrite(lhs, held)
		}
	case *ast.IncDecStmt:
		w.recordWrite(st.X, held)
	case *ast.BlockStmt:
		w.walkStmts(st.List, held)
	case *ast.IfStmt:
		if st.Init != nil {
			w.walkStmt(st.Init, held)
		}
		w.walkStmts(st.Body.List, copyLocks(held))
		if st.Else != nil {
			w.walkStmt(st.Else, copyLocks(held))
		}
	case *ast.ForStmt:
		if st.Init != nil {
			w.walkStmt(st.Init, held)
		}
		w.walkStmts(st.Body.List, copyLocks(held))
	case *ast.RangeStmt:
		if st.Tok == token.ASSIGN {
			w.recordWrite(st.Key, held)
			w.recordWrite(st.Value, held)
		}
		w.walkStmts(st.Body.List, copyLocks(held))
	case *ast.SwitchStmt:
		if st.Init != nil {
			w.walkStmt(st.Init, held)
		}
		w.walkClauses(st.Body, held)
	case *ast.TypeSwitchStmt:
		w.walkClauses(st.Body, held)
	case *ast.SelectStmt:
		for _, cl := range st.Body.List {
			if comm, ok := cl.(*ast.CommClause); ok {
				w.walkStmts(comm.Body, copyLocks(held))
			}
		}
	case *ast.GoStmt:
		// Spawned bodies are separate roots; nothing to do inline.
	}
}

func (w *locksetWalker) walkClauses(body *ast.BlockStmt, held map[*types.Var]bool) {
	for _, cl := range body.List {
		if cc, ok := cl.(*ast.CaseClause); ok {
			w.walkStmts(cc.Body, copyLocks(held))
		}
	}
}

// applyLockCall updates the lockset for X.Lock/RLock/Unlock/RUnlock
// calls on sync.Mutex / sync.RWMutex receivers.
func (w *locksetWalker) applyLockCall(call *ast.CallExpr, held map[*types.Var]bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	name := sel.Sel.Name
	var acquire bool
	switch name {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
		acquire = false
	default:
		return
	}
	key := w.lockVarOf(sel.X)
	if key == nil || !isSyncLockType(key.Type()) {
		return
	}
	if acquire {
		held[key] = true
	} else {
		delete(held, key)
	}
}

func isSyncLockType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// lockVarOf resolves the mutex expression to its identity variable: the
// selected field for s.mu, the variable itself for a bare ident.
func (w *locksetWalker) lockVarOf(e ast.Expr) *types.Var {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if selObj, ok := w.pkg.Info.Selections[e]; ok {
			if v, ok := selObj.Obj().(*types.Var); ok {
				return v
			}
		}
		if v, ok := w.pkg.Info.Uses[e.Sel].(*types.Var); ok {
			return v // package-qualified var
		}
	case *ast.Ident:
		v, _ := w.pkg.Info.Uses[e].(*types.Var)
		return v
	case *ast.StarExpr:
		return w.lockVarOf(e.X)
	}
	return nil
}

// recordWrite records a write to a shared struct field (selector whose
// base is not local to the walked body), with the current lockset.
func (w *locksetWalker) recordWrite(lhs ast.Expr, held map[*types.Var]bool) {
	e := ast.Unparen(lhs)
	// Writes to elements of a shared field (s.flight[k] = v) count as
	// writes to the field.
	if idx, ok := e.(*ast.IndexExpr); ok {
		e = ast.Unparen(idx.X)
	}
	if star, ok := e.(*ast.StarExpr); ok {
		e = ast.Unparen(star.X)
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return
	}
	selObj, ok := w.pkg.Info.Selections[sel]
	if !ok || selObj.Kind() != types.FieldVal {
		return
	}
	field, ok := selObj.Obj().(*types.Var)
	if !ok {
		return
	}
	if w.localBase(sel.X) {
		return // writes through body-local structs are not shared
	}
	w.tab[field] = append(w.tab[field], writeSite{
		pos:   sel.Sel.Pos(),
		pkg:   w.pkg,
		fn:    w.fnName,
		locks: copyLocks(held),
	})
}

// localBase reports whether the selector chain bottoms out in a
// variable declared inside the walked body.
func (w *locksetWalker) localBase(e ast.Expr) bool {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			v, ok := w.pkg.Info.Uses[x].(*types.Var)
			return ok && declaredWithin(v, w.region)
		default:
			return false
		}
	}
}

func copyLocks(held map[*types.Var]bool) map[*types.Var]bool {
	out := make(map[*types.Var]bool, len(held))
	for k, v := range held {
		if v {
			out[k] = true
		}
	}
	return out
}
