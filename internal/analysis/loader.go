package analysis

import (
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// ErrLoad is the sentinel wrapped by every loader failure — missing
// go.mod, unparsable source, type-check errors — so callers (the CLI's
// exit-code 2 path, the fixture harness) can errors.Is their way to
// "the program never loaded" as opposed to "the program has findings".
var ErrLoad = errors.New("analysis: load failed")

// Package is one parsed and type-checked module package.
type Package struct {
	Path  string // import path, e.g. "himap/internal/route"
	Dir   string // absolute directory
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Program is the fully loaded module: every package parsed from source
// and type-checked, plus the module-wide //himap:noalloc fact set and
// the lazily built interprocedural summaries.
type Program struct {
	Fset    *token.FileSet
	Module  string // module path from go.mod
	Root    string // module root directory
	Pkgs    []*Package
	NoAlloc map[*types.Func]bool

	byPath map[string]*Package
	sum    *Summaries
}

// FindModuleRoot walks up from dir to the directory containing go.mod.
func FindModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", fmt.Errorf("%w: %v", ErrLoad, err)
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("%w: no go.mod above %s", ErrLoad, dir)
		}
		abs = parent
	}
}

func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("%w: %v", ErrLoad, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("%w: no module directive in %s/go.mod", ErrLoad, root)
}

// loader resolves imports during type checking: module-internal paths
// are loaded recursively from source, everything else (the standard
// library) is delegated to the stdlib source importer.
type loader struct {
	fset    *token.FileSet
	module  string
	root    string
	std     types.Importer
	pkgs    map[string]*Package // memoized module packages
	loading map[string]bool     // import-cycle guard
}

func newLoader(fset *token.FileSet, module, root string) *loader {
	return &loader{
		fset:    fset,
		module:  module,
		root:    root,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}
}

// Import implements types.Importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == l.module || strings.HasPrefix(path, l.module+"/") {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

func (l *loader) dirFor(path string) string {
	if path == l.module {
		return l.root
	}
	return filepath.Join(l.root, filepath.FromSlash(strings.TrimPrefix(path, l.module+"/")))
}

// load parses and type-checks one module package (memoized). Test files
// are excluded: the analyzers guard the shipped compile path, and test
// packages may import the module under a different package identity.
func (l *loader) load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("%w: import cycle through %s", ErrLoad, path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.dirFor(path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrLoad, err)
	}
	var files []*ast.File
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrLoad, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("%w: no Go files in %s", ErrLoad, dir)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("%w: type-checking %s: %v", ErrLoad, path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// packageDirs enumerates every directory under root holding at least one
// non-test Go file, skipping testdata, hidden directories, and results.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") && !strings.HasSuffix(d.Name(), "_test.go") {
			dirs = append(dirs, filepath.Dir(p))
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrLoad, err)
	}
	sort.Strings(dirs)
	uniq := dirs[:0]
	for i, d := range dirs {
		if i == 0 || dirs[i-1] != d {
			uniq = append(uniq, d)
		}
	}
	return uniq, nil
}

// loadModule parses and type-checks every package under root as module
// `module` and assembles the Program. Shared by Load (the real module)
// and LoadDir (fixture trees, where the directory base name stands in
// for the module path).
func loadModule(module, root string) (*Program, error) {
	fset := token.NewFileSet()
	l := newLoader(fset, module, root)
	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}
	prog := &Program{
		Fset:    fset,
		Module:  module,
		Root:    root,
		NoAlloc: map[*types.Func]bool{},
		byPath:  map[string]*Package{},
	}
	for _, d := range dirs {
		rel, err := filepath.Rel(root, d)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrLoad, err)
		}
		path := module
		if rel != "." {
			path = module + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		prog.Pkgs = append(prog.Pkgs, pkg)
		prog.byPath[path] = pkg
	}
	sort.Slice(prog.Pkgs, func(i, j int) bool { return prog.Pkgs[i].Path < prog.Pkgs[j].Path })
	for _, pkg := range prog.Pkgs {
		collectNoAllocFacts(pkg, prog.NoAlloc)
	}
	return prog, nil
}

// Load parses and type-checks every package of the module rooted at (or
// above) dir and collects the //himap:noalloc annotation facts.
func Load(dir string) (*Program, error) {
	root, err := FindModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	module, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	return loadModule(module, root)
}

// Lookup returns the loaded package with the given import path, if any.
func (p *Program) Lookup(path string) *Package { return p.byPath[path] }

// collectNoAllocFacts records every function whose doc comment carries a
// //himap:noalloc annotation line.
func collectNoAllocFacts(pkg *Package, facts map[*types.Func]bool) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !hasNoAllocAnnotation(fd.Doc) {
				continue
			}
			if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
				facts[fn] = true
			}
		}
	}
}

// hasNoAllocAnnotation reports whether a comment group contains the
// //himap:noalloc directive (exact directive form, no leading space).
func hasNoAllocAnnotation(doc *ast.CommentGroup) bool {
	return hasDirective(doc, "//himap:noalloc")
}
