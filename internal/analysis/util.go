package analysis

import (
	"go/ast"
	"go/types"
)

// calleeFunc resolves the static callee of a call expression, or nil for
// calls through function values, builtins, and type conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// calleeBuiltin returns the builtin name a call invokes ("append",
// "make", "len", ...), or "".
func calleeBuiltin(info *types.Info, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}

// funcPkgPath returns the import path of the package declaring fn ("" for
// universe-scope objects).
func funcPkgPath(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// declaredWithin reports whether obj's declaration lies inside node's
// source range.
func declaredWithin(obj types.Object, node ast.Node) bool {
	return obj != nil && node != nil && obj.Pos() >= node.Pos() && obj.Pos() < node.End()
}

// usesObject reports whether expr mentions any of the given objects.
func usesObject(info *types.Info, expr ast.Node, objs map[types.Object]bool) bool {
	if expr == nil || len(objs) == 0 {
		return false
	}
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && objs[info.Uses[id]] {
			found = true
			return false
		}
		return true
	})
	return found
}

// eachStmtList visits every statement list in the node (block bodies,
// switch cases, select clauses).
func eachStmtList(root ast.Node, fn func([]ast.Stmt)) {
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BlockStmt:
			fn(n.List)
		case *ast.CaseClause:
			fn(n.Body)
		case *ast.CommClause:
			fn(n.Body)
		}
		return true
	})
}

// isIntegerType reports whether t's underlying type is an integer.
func isIntegerType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// isStringType reports whether t's underlying type is a string.
func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
