package analysis

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
)

// LoadDir parses and type-checks a standalone fixture tree as its own
// little module: the directory base name stands in for the module path,
// subdirectories become importable sub-packages (a fixture file in
// testdata/src/ctxflow may import "ctxflow/sub"), and everything else
// resolves against the standard library. This is the loader behind the
// testdata golden tests — cross-package cases exercise the summary
// layer exactly like the real module does.
func LoadDir(dir string) (*Program, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrLoad, err)
	}
	return loadModule(filepath.Base(abs), abs)
}

// Expectation is one `// want "regexp"` annotation in a fixture file.
type Expectation struct {
	File    string
	Line    int
	Pattern *regexp.Regexp
}

var wantRE = regexp.MustCompile(`(?://|/\*) want "((?:[^"\\]|\\.)*)"`)

// Expectations extracts every `// want "..."` (or `/* want "..." */`)
// comment of the program's files. The pattern is a regexp matched
// against diagnostic messages reported on the same line. One comment may
// carry several wants — lines holding a //lint:ignore directive under
// test embed the want inside the directive's reason text, and the
// block-comment form marks lines where a trailing comment would change
// what is being tested (a reasonless directive).
func (p *Program) Expectations() ([]Expectation, error) {
	var out []Expectation
	for _, pkg := range p.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					for _, m := range wantRE.FindAllStringSubmatch(c.Text, -1) {
						pat, err := regexp.Compile(strings.ReplaceAll(m[1], `\"`, `"`))
						if err != nil {
							return nil, fmt.Errorf("analysis: bad want pattern %q: %w", m[1], err)
						}
						pos := p.Fset.Position(c.Pos())
						out = append(out, Expectation{File: pos.Filename, Line: pos.Line, Pattern: pat})
					}
				}
			}
		}
	}
	return out, nil
}

// CheckFixture runs the analyzer over the fixture program and verifies
// the diagnostics against the // want annotations: every want must match
// a diagnostic on its line, and every diagnostic must be wanted. It
// returns a list of mismatch descriptions (empty when the fixture is
// green). Driver-level "suppress" findings participate like any other
// diagnostic, so suppression fixtures can assert them.
func CheckFixture(prog *Program, a *Analyzer) ([]string, error) {
	wants, err := prog.Expectations()
	if err != nil {
		return nil, err
	}
	diags := Run(prog, []*Analyzer{a}, nil)
	var problems []string
	matched := make([]bool, len(diags))
	for _, w := range wants {
		found := false
		for i, d := range diags {
			if matched[i] || d.Pos.Filename != w.File || d.Pos.Line != w.Line {
				continue
			}
			if w.Pattern.MatchString(d.Message) {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			problems = append(problems, fmt.Sprintf("%s:%d: no diagnostic matching %q", filepath.Base(w.File), w.Line, w.Pattern))
		}
	}
	for i, d := range diags {
		if !matched[i] {
			problems = append(problems, fmt.Sprintf("unexpected diagnostic: %s", d))
		}
	}
	return problems, nil
}
