package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// LoadDir parses and type-checks one standalone directory as a single
// package (imports resolve against the standard library only) — the
// fixture loader behind the testdata golden tests. The //himap:noalloc
// fact set is collected from the fixture package itself.
func LoadDir(dir string) (*Program, error) {
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	path := filepath.Base(dir)
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking fixture %s: %w", dir, err)
	}
	pkg := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	prog := &Program{
		Fset:    fset,
		Module:  path,
		Root:    dir,
		Pkgs:    []*Package{pkg},
		NoAlloc: map[*types.Func]bool{},
		byPath:  map[string]*Package{path: pkg},
	}
	collectNoAllocFacts(pkg, prog.NoAlloc)
	return prog, nil
}

// Expectation is one `// want "regexp"` annotation in a fixture file.
type Expectation struct {
	File    string
	Line    int
	Pattern *regexp.Regexp
}

var wantRE = regexp.MustCompile(`// want "((?:[^"\\]|\\.)*)"`)

// Expectations extracts every `// want "..."` comment of the program's
// files. The pattern is a regexp matched against diagnostic messages
// reported on the same line.
func (p *Program) Expectations() ([]Expectation, error) {
	var out []Expectation
	for _, pkg := range p.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pat, err := regexp.Compile(strings.ReplaceAll(m[1], `\"`, `"`))
					if err != nil {
						return nil, fmt.Errorf("analysis: bad want pattern %q: %w", m[1], err)
					}
					pos := p.Fset.Position(c.Pos())
					out = append(out, Expectation{File: pos.Filename, Line: pos.Line, Pattern: pat})
				}
			}
		}
	}
	return out, nil
}

// CheckFixture runs the analyzer over the fixture program and verifies
// the diagnostics against the // want annotations: every want must match
// a diagnostic on its line, and every diagnostic must be wanted. It
// returns a list of mismatch descriptions (empty when the fixture is
// green).
func CheckFixture(prog *Program, a *Analyzer) ([]string, error) {
	wants, err := prog.Expectations()
	if err != nil {
		return nil, err
	}
	diags := Run(prog, []*Analyzer{a}, nil)
	var problems []string
	matched := make([]bool, len(diags))
	for _, w := range wants {
		found := false
		for i, d := range diags {
			if matched[i] || d.Pos.Filename != w.File || d.Pos.Line != w.Line {
				continue
			}
			if w.Pattern.MatchString(d.Message) {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			problems = append(problems, fmt.Sprintf("%s:%d: no diagnostic matching %q", filepath.Base(w.File), w.Line, w.Pattern))
		}
	}
	for i, d := range diags {
		if !matched[i] {
			problems = append(problems, fmt.Sprintf("unexpected diagnostic: %s", d))
		}
	}
	return problems, nil
}
