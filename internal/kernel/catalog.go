package kernel

import "sort"

// Info is a static descriptor of a compute-intensive loop kernel, used to
// regenerate Table I's categorization by loop dimensionality and the
// existence of inter-iteration dependencies.
type Info struct {
	Name     string
	Suite    string // "MachSuite", "MiBench", "PolyBench", "custom"
	Dim      int    // loop nest dimensionality
	InterDep bool   // has inter-iteration dependencies
}

// Catalog returns the loop kernels categorized in Table I of the paper.
// Entries mirror the paper's table; the eight Table-II kernels also have
// full specifications in this package (see Evaluation).
func Catalog() []Info {
	return []Info{
		// No inter-iteration dependency (Dim 1/2/3).
		{"aes_mix_col", "MachSuite", 1, false},
		{"add_row", "MachSuite", 1, false},
		{"bd_softmax", "MachSuite", 1, false},
		{"relu", "MachSuite", 1, false},
		{"add_bias", "MachSuite", 1, false},
		{"take_diff", "MachSuite", 2, false},
		{"get_delta_matrix_weight", "MachSuite", 2, false},
		{"knn_md", "MachSuite", 2, false},
		{"update_weights", "MachSuite", 2, false},
		{"viterbi_comp_prob", "MachSuite", 2, false},
		{"jpeg_fdct_islow", "MiBench", 1, false},
		{"huffman_encode", "PolyBench", 1, false},
		{"correlation", "PolyBench", 2, false},
		{"covariance", "PolyBench", 2, false},
		{"trisolv", "PolyBench", 1, false},
		{"fd2d_nodep", "PolyBench", 2, false},
		// Inter-iteration dependency, Dim = 1.
		{"aes_expand_key", "MachSuite", 1, true},
		{"spmv", "MachSuite", 1, true},
		{"viterbi", "MachSuite", 1, true},
		{"basicmath_usqrt", "MiBench", 1, true},
		{"susan", "MiBench", 1, true},
		{"stencil_jacobi1d", "PolyBench", 1, true},
		{"cholesky", "PolyBench", 1, true},
		{"symm", "PolyBench", 1, true},
		{"gesummv", "PolyBench", 1, true},
		{"durbin", "PolyBench", 1, true},
		{"dynprog", "PolyBench", 1, true},
		{"gramschmidt", "PolyBench", 1, true},
		{"reg_detect", "PolyBench", 1, true},
		// Inter-iteration dependency, Dim = 2.
		{"adi", "PolyBench", 2, true},
		{"atax", "PolyBench", 2, true},
		{"bicg", "PolyBench", 2, true},
		{"mvt", "PolyBench", 2, true},
		{"fd2d", "PolyBench", 2, true},
		{"gemmver", "PolyBench", 2, true},
		{"jacobi_2d", "PolyBench", 2, true},
		{"nw", "MachSuite", 2, true},
		{"stencil_2d", "MachSuite", 2, true},
		{"conv2d", "custom", 2, true},
		// Inter-iteration dependency, Dim = 3.
		{"gemm", "PolyBench", 3, true},
		{"syrk", "PolyBench", 3, true},
		{"mm", "PolyBench", 3, true},
		{"floyd_warshall", "PolyBench", 3, true},
		{"fft", "MachSuite", 3, true},
		{"conv3d", "custom", 3, true},
		// Inter-iteration dependency, Dim = 4.
		{"ttm", "PolyBench", 4, true},
		{"doitgen", "PolyBench", 4, true},
	}
}

// Category identifies a Table-I column.
type Category struct {
	InterDep bool
	Dim      int // 0 means "any" (the no-dependency column)
}

// Categorize groups catalog entries into Table I's five columns:
// no-dependency (any dim), then with-dependency for Dim 1..4.
// The returned map keys are stable label strings.
func Categorize(infos []Info) map[string][]Info {
	out := map[string][]Info{}
	for _, in := range infos {
		var key string
		switch {
		case !in.InterDep:
			key = "no-dep"
		case in.Dim == 1:
			key = "dep-dim1"
		case in.Dim == 2:
			key = "dep-dim2"
		case in.Dim == 3:
			key = "dep-dim3"
		default:
			key = "dep-dim4"
		}
		out[key] = append(out[key], in)
	}
	for _, v := range out {
		sort.Slice(v, func(i, j int) bool { return v[i].Name < v[j].Name })
	}
	return out
}

// MappableBySystolic reports whether a kernel category benefits from
// HiMap's virtual systolic mapping: multi-dimensional (Dim > 1) kernels
// with inter-iteration dependencies (§VI, benchmark selection rationale).
func MappableBySystolic(in Info) bool { return in.InterDep && in.Dim > 1 }
