package kernel

import (
	"fmt"

	"himap/internal/ir"
)

// The eight multi-dimensional evaluation kernels of Table II, expressed as
// uniform-recurrence specifications. Dimension 0 is the outermost loop
// level. Route ops realize the systolic data propagation (operand reuse
// across iterations); they occupy routing resources, not FUs, so the
// per-iteration compute counts match §VI (BiCG 4, ADI 5, GEMM/SYRK/FW 2).

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// GEMM returns the General Matrix Multiply kernel (3 loop levels):
// C[i][j] = sum_k A[i][k]*B[k][j]. A values flow along j,
// B values along i, partial sums along k — the TPU-style systolic dataflow
// the paper cites in §III.
func GEMM() *Kernel {
	k := &Kernel{
		Name:     "GEMM",
		Desc:     "General Matrix Multiply",
		Suite:    "PolyBench",
		Dim:      3,
		MinBlock: 2,
		Tensors: []TensorSpec{
			{Name: "A", Dims: func(b []int) []int { return []int{b[0], b[2]} }},
			{Name: "B", Dims: func(b []int) []int { return []int{b[2], b[1]} }},
			{Name: "C", Out: true, Dims: func(b []int) []int { return []int{b[0], b[1]} }},
		},
	}
	aMap := AM(3, []int{1, 0, 0, 0}, []int{0, 0, 1, 0}) // [i,k]
	bMap := AM(3, []int{0, 0, 1, 0}, []int{0, 1, 0, 0}) // [k,j]
	cMap := AM(3, []int{1, 0, 0, 0}, []int{0, 1, 0, 0}) // [i,j]
	k.Body = []BodyOp{
		{Name: "a", Kind: ir.OpRoute,
			A: In(Case{First(1), Mem("A", aMap)}, Case{Always(), Dep(0, 0, 1, 0)})},
		{Name: "b", Kind: ir.OpRoute,
			A: In(Case{First(0), Mem("B", bMap)}, Case{Always(), Dep(1, 1, 0, 0)})},
		{Name: "mul", Kind: ir.OpMul, A: Fixed(Same(0)), B: Fixed(Same(1))},
		{Name: "acc", Kind: ir.OpAdd, A: Fixed(Same(2)),
			B:      In(Case{First(2), Const(0)}, Case{Always(), Dep(3, 0, 0, 1)}),
			Stores: []StoreRule{{When: Last(2), Tensor: "C", Map: cMap}}},
	}
	return k
}

// SYRK returns the symmetric rank-k update kernel (3 loop levels):
// C[i][j] = sum_k A[i][k]*A[j][k].
func SYRK() *Kernel {
	k := &Kernel{
		Name:     "SYRK",
		Desc:     "Symmetric rank-k operation",
		Suite:    "PolyBench",
		Dim:      3,
		MinBlock: 2,
		Tensors: []TensorSpec{
			{Name: "A", Dims: func(b []int) []int { return []int{maxInt(b[0], b[1]), b[2]} }},
			{Name: "C", Out: true, Dims: func(b []int) []int { return []int{b[0], b[1]} }},
		},
	}
	aiMap := AM(3, []int{1, 0, 0, 0}, []int{0, 0, 1, 0}) // [i,k]
	ajMap := AM(3, []int{0, 1, 0, 0}, []int{0, 0, 1, 0}) // [j,k]
	cMap := AM(3, []int{1, 0, 0, 0}, []int{0, 1, 0, 0})  // [i,j]
	k.Body = []BodyOp{
		{Name: "ai", Kind: ir.OpRoute,
			A: In(Case{First(1), Mem("A", aiMap)}, Case{Always(), Dep(0, 0, 1, 0)})},
		{Name: "aj", Kind: ir.OpRoute,
			A: In(Case{First(0), Mem("A", ajMap)}, Case{Always(), Dep(1, 1, 0, 0)})},
		{Name: "mul", Kind: ir.OpMul, A: Fixed(Same(0)), B: Fixed(Same(1))},
		{Name: "acc", Kind: ir.OpAdd, A: Fixed(Same(2)),
			B:      In(Case{First(2), Const(0)}, Case{Always(), Dep(3, 0, 0, 1)}),
			Stores: []StoreRule{{When: Last(2), Tensor: "C", Map: cMap}}},
	}
	return k
}

// BICG returns the BiCG sub-kernel of the BiCGStab linear solver
// (2 loop levels): s[j] += r[i]*A[i][j]; q[i] += A[i][j]*p[j].
func BICG() *Kernel {
	k := &Kernel{
		Name:     "BICG",
		Desc:     "BiCG Sub Kernel of BiCGStab Linear Solver",
		Suite:    "PolyBench",
		Dim:      2,
		MinBlock: 2,
		Tensors: []TensorSpec{
			{Name: "A", Dims: func(b []int) []int { return []int{b[0], b[1]} }},
			{Name: "R", Dims: func(b []int) []int { return []int{b[0]} }},
			{Name: "P", Dims: func(b []int) []int { return []int{b[1]} }},
			{Name: "S", Out: true, Dims: func(b []int) []int { return []int{b[1]} }},
			{Name: "Q", Out: true, Dims: func(b []int) []int { return []int{b[0]} }},
		},
	}
	aMap := AM(2, []int{1, 0, 0}, []int{0, 1, 0})
	k.Body = []BodyOp{
		{Name: "r", Kind: ir.OpRoute,
			A: In(Case{First(1), Mem("R", AM(2, []int{1, 0, 0}))}, Case{Always(), Dep(0, 0, 1)})},
		{Name: "p", Kind: ir.OpRoute,
			A: In(Case{First(0), Mem("P", AM(2, []int{0, 1, 0}))}, Case{Always(), Dep(1, 1, 0)})},
		{Name: "m1", Kind: ir.OpMul, A: Fixed(Mem("A", aMap)), B: Fixed(Same(0))},
		{Name: "s", Kind: ir.OpAdd, A: Fixed(Same(2)),
			B:      In(Case{First(0), Const(0)}, Case{Always(), Dep(3, 1, 0)}),
			Stores: []StoreRule{{When: Last(0), Tensor: "S", Map: AM(2, []int{0, 1, 0})}}},
		{Name: "m2", Kind: ir.OpMul, A: Fixed(Mem("A", aMap)), B: Fixed(Same(1))},
		{Name: "q", Kind: ir.OpAdd, A: Fixed(Same(4)),
			B:      In(Case{First(1), Const(0)}, Case{Always(), Dep(5, 0, 1)}),
			Stores: []StoreRule{{When: Last(1), Tensor: "Q", Map: AM(2, []int{1, 0, 0})}}},
	}
	return k
}

// ATAX returns the matrix-transpose–vector kernel (2 loop levels). The two
// GEMV passes of ATAX (t = A·x and y = Aᵀ·w) are fused into one loop nest;
// the mapping-relevant structure — four compute ops with dependence
// distances along both dimensions — matches the paper's characterization
// (Table II: Dim 2, 9 unique iterations). See EXPERIMENTS.md for the
// substitution note.
func ATAX() *Kernel {
	k := &Kernel{
		Name:     "ATAX",
		Desc:     "Matrix Transpose and Vector Multiplication",
		Suite:    "PolyBench",
		Dim:      2,
		MinBlock: 2,
		Tensors: []TensorSpec{
			{Name: "A", Dims: func(b []int) []int { return []int{b[0], b[1]} }},
			{Name: "X", Dims: func(b []int) []int { return []int{b[1]} }},
			{Name: "W", Dims: func(b []int) []int { return []int{b[0]} }},
			{Name: "T", Out: true, Dims: func(b []int) []int { return []int{b[0]} }},
			{Name: "Y", Out: true, Dims: func(b []int) []int { return []int{b[1]} }},
		},
	}
	aMap := AM(2, []int{1, 0, 0}, []int{0, 1, 0})
	k.Body = []BodyOp{
		{Name: "x", Kind: ir.OpRoute,
			A: In(Case{First(0), Mem("X", AM(2, []int{0, 1, 0}))}, Case{Always(), Dep(0, 1, 0)})},
		{Name: "w", Kind: ir.OpRoute,
			A: In(Case{First(1), Mem("W", AM(2, []int{1, 0, 0}))}, Case{Always(), Dep(1, 0, 1)})},
		{Name: "m1", Kind: ir.OpMul, A: Fixed(Mem("A", aMap)), B: Fixed(Same(0))},
		{Name: "t", Kind: ir.OpAdd, A: Fixed(Same(2)),
			B:      In(Case{First(1), Const(0)}, Case{Always(), Dep(3, 0, 1)}),
			Stores: []StoreRule{{When: Last(1), Tensor: "T", Map: AM(2, []int{1, 0, 0})}}},
		{Name: "m2", Kind: ir.OpMul, A: Fixed(Mem("A", aMap)), B: Fixed(Same(1))},
		{Name: "y", Kind: ir.OpAdd, A: Fixed(Same(4)),
			B:      In(Case{First(0), Const(0)}, Case{Always(), Dep(5, 1, 0)}),
			Stores: []StoreRule{{When: Last(0), Tensor: "Y", Map: AM(2, []int{0, 1, 0})}}},
	}
	return k
}

// MVT returns the matrix-vector product and transpose kernel
// (2 loop levels): x1[i] += A[i][j]*y1[j]; x2[i] += A[j][i]*y2[j].
func MVT() *Kernel {
	k := &Kernel{
		Name:     "MVT",
		Desc:     "Matrix Vector Product and Transpose",
		Suite:    "PolyBench",
		Dim:      2,
		MinBlock: 2,
		Tensors: []TensorSpec{
			{Name: "A", Dims: func(b []int) []int { m := maxInt(b[0], b[1]); return []int{m, m} }},
			{Name: "Y1", Dims: func(b []int) []int { return []int{b[1]} }},
			{Name: "Y2", Dims: func(b []int) []int { return []int{b[1]} }},
			{Name: "X1", Out: true, Dims: func(b []int) []int { return []int{b[0]} }},
			{Name: "X2", Out: true, Dims: func(b []int) []int { return []int{b[0]} }},
		},
	}
	aMap := AM(2, []int{1, 0, 0}, []int{0, 1, 0})  // [i,j]
	atMap := AM(2, []int{0, 1, 0}, []int{1, 0, 0}) // [j,i]
	k.Body = []BodyOp{
		{Name: "y1", Kind: ir.OpRoute,
			A: In(Case{First(0), Mem("Y1", AM(2, []int{0, 1, 0}))}, Case{Always(), Dep(0, 1, 0)})},
		{Name: "y2", Kind: ir.OpRoute,
			A: In(Case{First(0), Mem("Y2", AM(2, []int{0, 1, 0}))}, Case{Always(), Dep(1, 1, 0)})},
		{Name: "m1", Kind: ir.OpMul, A: Fixed(Mem("A", aMap)), B: Fixed(Same(0))},
		{Name: "x1", Kind: ir.OpAdd, A: Fixed(Same(2)),
			B:      In(Case{First(1), Const(0)}, Case{Always(), Dep(3, 0, 1)}),
			Stores: []StoreRule{{When: Last(1), Tensor: "X1", Map: AM(2, []int{1, 0, 0})}}},
		{Name: "m2", Kind: ir.OpMul, A: Fixed(Mem("A", atMap)), B: Fixed(Same(1))},
		{Name: "x2", Kind: ir.OpAdd, A: Fixed(Same(4)),
			B:      In(Case{First(1), Const(0)}, Case{Always(), Dep(5, 0, 1)}),
			Stores: []StoreRule{{When: Last(1), Tensor: "X2", Map: AM(2, []int{1, 0, 0})}}},
	}
	return k
}

// ADI returns a 2-D alternating-direction-implicit sweep (2 loop levels,
// 5 compute ops per iteration, dependences along the inner dimension only
// — Table II: 3 unique iterations):
//
//	u(i,j) = u(i,j-1)*ca + cb;  v(i,j) = v(i,j-1)*cc + u(i,j);
//	w(i,j) = u(i,j) + v(i,j)   (stored).
func ADI() *Kernel {
	k := &Kernel{
		Name:     "ADI",
		Desc:     "Alternating Direction Implicit solver sweep",
		Suite:    "PolyBench",
		Dim:      2,
		MinBlock: 2,
		Tensors: []TensorSpec{
			{Name: "U0", Dims: func(b []int) []int { return []int{b[0]} }},
			{Name: "V0", Dims: func(b []int) []int { return []int{b[0]} }},
			{Name: "CA", Dims: func(b []int) []int { return []int{b[0], b[1]} }},
			{Name: "CB", Dims: func(b []int) []int { return []int{b[0], b[1]} }},
			{Name: "CC", Dims: func(b []int) []int { return []int{b[0], b[1]} }},
			{Name: "W", Out: true, Dims: func(b []int) []int { return []int{b[0], b[1]} }},
		},
	}
	ij := AM(2, []int{1, 0, 0}, []int{0, 1, 0})
	k.Body = []BodyOp{
		{Name: "m1", Kind: ir.OpMul,
			A: In(Case{First(1), Mem("U0", AM(2, []int{1, 0, 0}))}, Case{Always(), Dep(1, 0, 1)}),
			B: Fixed(Mem("CA", ij))},
		{Name: "u", Kind: ir.OpAdd, A: Fixed(Same(0)), B: Fixed(Mem("CB", ij))},
		{Name: "m2", Kind: ir.OpMul,
			A: In(Case{First(1), Mem("V0", AM(2, []int{1, 0, 0}))}, Case{Always(), Dep(3, 0, 1)}),
			B: Fixed(Mem("CC", ij))},
		{Name: "v", Kind: ir.OpAdd, A: Fixed(Same(2)), B: Fixed(Same(1))},
		{Name: "w", Kind: ir.OpAdd, A: Fixed(Same(1)), B: Fixed(Same(3)),
			Stores: []StoreRule{{When: Always(), Tensor: "W", Map: ij}}},
	}
	return k
}

// FW returns the Floyd-Warshall shortest-path kernel (3 loop levels,
// k outermost): d_k(i,j) = min(d_{k-1}(i,j), d_{k-1}(i,k)+d_{k-1}(k,j)).
// Pivot row values propagate along i through the fabric from the i==k
// diagonal downward; rows above the diagonal (and the i==0 boundary)
// receive the pivot through the per-PE memory feed (tensors PR/PC filled
// by Prepare from the reference computation) — the substitution for the
// bidirectional pivot broadcast discussed in DESIGN.md.
func FW() *Kernel {
	k := &Kernel{
		Name:     "FW",
		Desc:     "Shortest path and transitive closure (Floyd-Warshall)",
		Suite:    "PolyBench",
		Dim:      3,
		MinBlock: 2,
		Tensors: []TensorSpec{
			{Name: "D0", Dims: func(b []int) []int { return []int{b[1], b[2]} }},
			{Name: "PR", Dims: func(b []int) []int { return []int{b[0], b[2]} }},
			{Name: "PC", Dims: func(b []int) []int { return []int{b[0], b[1]} }},
			{Name: "D", Out: true, Dims: func(b []int) []int { return []int{b[1], b[2]} }},
		},
	}
	dMap := AM(3, []int{0, 1, 0, 0}, []int{0, 0, 1, 0})  // [i,j]
	prMap := AM(3, []int{1, 0, 0, 0}, []int{0, 0, 1, 0}) // [k,j]
	pcMap := AM(3, []int{1, 0, 0, 0}, []int{0, 1, 0, 0}) // [k,i]
	k.Body = []BodyOp{
		{Name: "rv", Kind: ir.OpRoute,
			A: In(
				Case{First(1), Mem("PR", prMap)},
				Case{EqDims(1, 0), Dep(3, 1, 0, 0)},
				Case{Always(), Dep(0, 0, 1, 0)})},
		{Name: "cv", Kind: ir.OpRoute,
			A: In(
				Case{First(2), Mem("PC", pcMap)},
				Case{EqDims(2, 0), Dep(3, 1, 0, 0)},
				Case{Always(), Dep(1, 0, 0, 1)})},
		{Name: "sum", Kind: ir.OpAdd, A: Fixed(Same(0)), B: Fixed(Same(1))},
		{Name: "d", Kind: ir.OpMin,
			A:      In(Case{First(0), Mem("D0", dMap)}, Case{Always(), Dep(3, 1, 0, 0)}),
			B:      Fixed(Same(2)),
			Stores: []StoreRule{{When: Last(0), Tensor: "D", Map: dMap}}},
	}
	k.Prepare = prepareFW
	return k
}

// prepareFW fills D0 randomly and derives the pivot feeds PR/PC from the
// reference (Jacobi-style) Floyd-Warshall recurrence so that memory-fed
// boundary iterations observe exactly the values the fabric would carry.
func prepareFW(block []int, seed int64) map[string]*Tensor {
	bk, bi, bj := block[0], block[1], block[2]
	d0 := NewTensor(bi, bj)
	d0.fillLCG(seed ^ hashString("D0"))
	// Keep distances non-negative for a more natural shortest-path input.
	for i := range d0.Data {
		if d0.Data[i] < 0 {
			d0.Data[i] = -d0.Data[i]
		}
	}
	pr := NewTensor(bk, bj)
	pc := NewTensor(bk, bi)
	prev := d0.Clone()
	for kk := 0; kk < bk; kk++ {
		pivot := kk
		if pivot >= bi {
			pivot = bi - 1
		}
		for j := 0; j < bj; j++ {
			pr.Set(ir.IterVec{kk, j}, prev.At(ir.IterVec{pivot, j}))
		}
		pivotJ := kk
		if pivotJ >= bj {
			pivotJ = bj - 1
		}
		for i := 0; i < bi; i++ {
			pc.Set(ir.IterVec{kk, i}, prev.At(ir.IterVec{i, pivotJ}))
		}
		next := NewTensor(bi, bj)
		for i := 0; i < bi; i++ {
			for j := 0; j < bj; j++ {
				via := pr.At(ir.IterVec{kk, j}) + pc.At(ir.IterVec{kk, i})
				cur := prev.At(ir.IterVec{i, j})
				if via < cur {
					cur = via
				}
				next.Set(ir.IterVec{i, j}, cur)
			}
		}
		prev = next
	}
	return map[string]*Tensor{"D0": d0, "PR": pr, "PC": pc}
}

// TTM returns the tensor-times-matrix kernel of Tucker decomposition
// (4 loop levels): Y[i][j][k] = sum_l X[i][j][l]*U[k][l].
// X values are reused along k, U values along i, partial sums along l.
func TTM() *Kernel {
	k := &Kernel{
		Name:     "TTM",
		Desc:     "Tucker Decomposition (tensor-times-matrix)",
		Suite:    "PolyBench",
		Dim:      4,
		MinBlock: 2,
		Tensors: []TensorSpec{
			{Name: "X", Dims: func(b []int) []int { return []int{b[0], b[1], b[3]} }},
			{Name: "U", Dims: func(b []int) []int { return []int{b[2], b[3]} }},
			{Name: "Y", Out: true, Dims: func(b []int) []int { return []int{b[0], b[1], b[2]} }},
		},
	}
	xMap := AM(4, []int{1, 0, 0, 0, 0}, []int{0, 1, 0, 0, 0}, []int{0, 0, 0, 1, 0}) // [i,j,l]
	uMap := AM(4, []int{0, 0, 1, 0, 0}, []int{0, 0, 0, 1, 0})                       // [k,l]
	yMap := AM(4, []int{1, 0, 0, 0, 0}, []int{0, 1, 0, 0, 0}, []int{0, 0, 1, 0, 0}) // [i,j,k]
	k.Body = []BodyOp{
		{Name: "x", Kind: ir.OpRoute,
			A: In(Case{First(2), Mem("X", xMap)}, Case{Always(), Dep(0, 0, 0, 1, 0)})},
		{Name: "u", Kind: ir.OpRoute,
			A: In(Case{First(0), Mem("U", uMap)}, Case{Always(), Dep(1, 1, 0, 0, 0)})},
		{Name: "mul", Kind: ir.OpMul, A: Fixed(Same(0)), B: Fixed(Same(1))},
		{Name: "acc", Kind: ir.OpAdd, A: Fixed(Same(2)),
			B:      In(Case{First(3), Const(0)}, Case{Always(), Dep(3, 0, 0, 0, 1)}),
			Stores: []StoreRule{{When: Last(3), Tensor: "Y", Map: yMap}}},
	}
	return k
}

// Conv2D returns a 2-D convolution with a 3x3 window as a 4-loop-level
// kernel (i, j over the output, r, s over the window) with the partial sum
// carried along the linearized window — an extension kernel exercised by
// the custom-kernel example. Block dims 2 and 3 are fixed at 3 (the
// window).
func Conv2D() *Kernel {
	k := &Kernel{
		Name:     "CONV2D",
		Desc:     "2-D convolution, 3x3 window",
		Suite:    "custom",
		Dim:      4,
		MinBlock: 2,
		Tensors: []TensorSpec{
			{Name: "IMG", Dims: func(b []int) []int { return []int{b[0] + 2, b[1] + 2} }},
			{Name: "KRN", Dims: func(b []int) []int { return []int{3, 3} }},
			{Name: "OUT", Out: true, Dims: func(b []int) []int { return []int{b[0], b[1]} }},
		},
		FixedBlock: []int{0, 0, 3, 3},
	}
	imgMap := AM(4, []int{1, 0, 1, 0, 0}, []int{0, 1, 0, 1, 0}) // [i+r, j+s]
	krnMap := AM(4, []int{0, 0, 1, 0, 0}, []int{0, 0, 0, 1, 0}) // [r, s]
	outMap := AM(4, []int{1, 0, 0, 0, 0}, []int{0, 1, 0, 0, 0}) // [i, j]
	k.Body = []BodyOp{
		{Name: "mul", Kind: ir.OpMul, A: Fixed(Mem("IMG", imgMap)), B: Fixed(Mem("KRN", krnMap))},
		{Name: "acc", Kind: ir.OpAdd, A: Fixed(Same(0)),
			B: In(
				Case{And(First(2), First(3)), Const(0)},
				Case{First(3), Dep(1, 0, 0, 1, -2)}, // carry across window rows
				Case{Always(), Dep(1, 0, 0, 0, 1)}),
			Stores: []StoreRule{{When: And(Last(2), Last(3)), Tensor: "OUT", Map: outMap}}},
	}
	return k
}

// Evaluation returns the eight Table-II kernels in the paper's order.
func Evaluation() []*Kernel {
	return []*Kernel{ADI(), ATAX(), BICG(), MVT(), GEMM(), SYRK(), FW(), TTM()}
}

// ByName returns the named kernel (case-sensitive: the Table-II names
// plus the extension kernels CONV2D, NW, DOITGEN), or an error.
func ByName(name string) (*Kernel, error) {
	for _, k := range append(Evaluation(), Extensions()...) {
		if k.Name == name {
			return k, nil
		}
	}
	return nil, fmt.Errorf("kernel: unknown kernel %q", name)
}
