// Package kernel defines the loop-kernel specification DSL used as HiMap's
// front end, the benchmark kernels of the paper's evaluation (Table II),
// the Table-I categorization catalog, DFG/ISDG construction by full block
// unrolling, and a golden (reference) executor used for functional
// validation of generated CGRA mappings.
//
// The paper's front end analyzes LLVM bitcode of a C kernel; this package
// substitutes a declarative specification carrying exactly the information
// HiMap extracts from the bitcode: the loop-body operations, their operand
// sources (intra-iteration values, inter-iteration dependences with
// distance vectors, memory accesses with affine index maps, constants),
// and the store rules. See DESIGN.md, "Substitutions".
package kernel

import (
	"fmt"

	"himap/internal/diag"
	"himap/internal/ir"
)

// AffineMap maps an iteration vector to a tensor element index. Each row r
// computes index[r] = sum_d Coef[r][d]*iter[d] + Off[r].
type AffineMap struct {
	Coef [][]int
	Off  []int
}

// AM builds an AffineMap from rows; each row is the per-dimension
// coefficients followed by the constant offset (length dim+1).
func AM(dim int, rows ...[]int) AffineMap {
	m := AffineMap{}
	for _, r := range rows {
		if len(r) != dim+1 {
			panic(fmt.Sprintf("kernel: AM row length %d, want dim+1 = %d", len(r), dim+1))
		}
		m.Coef = append(m.Coef, r[:dim])
		m.Off = append(m.Off, r[dim])
	}
	return m
}

// Apply evaluates the map at an iteration point.
func (m AffineMap) Apply(iter ir.IterVec) ir.IterVec {
	out := make(ir.IterVec, len(m.Coef))
	for r := range m.Coef {
		s := m.Off[r]
		for d, c := range m.Coef[r] {
			s += c * iter[d]
		}
		out[r] = s
	}
	return out
}

// Rank returns the number of index dimensions the map produces.
func (m AffineMap) Rank() int { return len(m.Coef) }

// CondKind enumerates the guard conditions of operand selection.
type CondKind uint8

const (
	// CondFirst holds when iter[Dim] == 0.
	CondFirst CondKind = iota
	// CondLast holds when iter[Dim] == block[Dim]-1.
	CondLast
	// CondNotFirst holds when iter[Dim] > 0.
	CondNotFirst
	// CondNotLast holds when iter[Dim] < block[Dim]-1.
	CondNotLast
	// CondEqDims holds when iter[Dim] == iter[Dim2].
	CondEqDims
	// CondNeDims holds when iter[Dim] != iter[Dim2].
	CondNeDims
	// CondIndexEq holds when iter[Dim] == Val.
	CondIndexEq
	// CondIndexLt holds when iter[Dim] < Val.
	CondIndexLt
)

// Cond is a single linear condition on the iteration vector.
type Cond struct {
	Kind CondKind
	Dim  int
	Dim2 int
	Val  int
}

// Pred is a conjunction of conditions; the empty Pred is always true.
type Pred []Cond

// Eval reports whether the predicate holds at iter within the block.
func (p Pred) Eval(iter ir.IterVec, block []int) bool {
	for _, c := range p {
		var ok bool
		switch c.Kind {
		case CondFirst:
			ok = iter[c.Dim] == 0
		case CondLast:
			ok = iter[c.Dim] == block[c.Dim]-1
		case CondNotFirst:
			ok = iter[c.Dim] > 0
		case CondNotLast:
			ok = iter[c.Dim] < block[c.Dim]-1
		case CondEqDims:
			ok = iter[c.Dim] == iter[c.Dim2]
		case CondNeDims:
			ok = iter[c.Dim] != iter[c.Dim2]
		case CondIndexEq:
			ok = iter[c.Dim] == c.Val
		case CondIndexLt:
			ok = iter[c.Dim] < c.Val
		default:
			panic(fmt.Sprintf("kernel: unknown cond kind %d", c.Kind))
		}
		if !ok {
			return false
		}
	}
	return true
}

// Predicate helpers.
func Always() Pred           { return nil }
func First(dim int) Pred     { return Pred{{Kind: CondFirst, Dim: dim}} }
func Last(dim int) Pred      { return Pred{{Kind: CondLast, Dim: dim}} }
func NotFirst(dim int) Pred  { return Pred{{Kind: CondNotFirst, Dim: dim}} }
func EqDims(d1, d2 int) Pred { return Pred{{Kind: CondEqDims, Dim: d1, Dim2: d2}} }
func AtIndex(d, v int) Pred  { return Pred{{Kind: CondIndexEq, Dim: d, Val: v}} }
func Before(d, v int) Pred   { return Pred{{Kind: CondIndexLt, Dim: d, Val: v}} }
func And(ps ...Pred) Pred {
	var out Pred
	for _, p := range ps {
		out = append(out, p...)
	}
	return out
}

// SourceKind enumerates where an operand value comes from.
type SourceKind uint8

const (
	// SrcDep reads the result of body op Op executed at iteration
	// iter - Dist. Dist must be lexicographically non-negative; a zero
	// Dist is an intra-iteration edge and requires Op to precede the
	// consumer in body order.
	SrcDep SourceKind = iota
	// SrcMem loads Tensor[Map(iter)] through the PE data-memory port.
	SrcMem
	// SrcConst is an immediate.
	SrcConst
)

// Source describes one operand origin.
type Source struct {
	Kind   SourceKind
	Op     int
	Dist   ir.IterVec
	Tensor string
	Map    AffineMap
	Value  int64
}

// Source helpers.
func Dep(op int, dist ...int) Source {
	return Source{Kind: SrcDep, Op: op, Dist: ir.IterVec(dist)}
}
func Same(op int) Source { return Source{Kind: SrcDep, Op: op} } // intra-iteration
func Mem(tensor string, m AffineMap) Source {
	return Source{Kind: SrcMem, Tensor: tensor, Map: m}
}
func Const(v int64) Source { return Source{Kind: SrcConst, Value: v} }

// Case pairs a guard with a source; the first matching case of an Input
// is used at each iteration point.
type Case struct {
	When Pred
	Src  Source
}

// Input is a guarded operand selection list.
type Input []Case

// In builds an Input from cases.
func In(cases ...Case) Input { return Input(cases) }

// Fixed builds an unguarded single-source Input.
func Fixed(s Source) Input { return Input{{When: Always(), Src: s}} }

// StoreRule writes the owning op's result to Tensor[Map(iter)] whenever
// the guard holds.
type StoreRule struct {
	When   Pred
	Tensor string
	Map    AffineMap
}

// BodyOp is one operation of the loop body.
type BodyOp struct {
	Name   string
	Kind   ir.OpKind // a compute kind or ir.OpRoute
	A, B   Input     // B empty for arity-1 kinds
	Stores []StoreRule
}

// TensorSpec declares a kernel tensor and how its extents derive from the
// block sizes.
type TensorSpec struct {
	Name string
	Out  bool // true for result tensors, false for inputs
	Dims func(block []int) []int
}

// Kernel is a complete loop-kernel specification.
type Kernel struct {
	Name    string
	Desc    string
	Suite   string // originating benchmark suite, for Table I
	Dim     int    // number of tiled loop levels
	Body    []BodyOp
	Tensors []TensorSpec

	// MinBlock is the smallest per-dimension block size for which the
	// kernel is well formed (most kernels: 2).
	MinBlock int

	// FixedBlock pins individual block dimensions (0 = free). Kernels
	// with an intrinsic extent — e.g. a convolution window — use it.
	FixedBlock []int

	// Prepare optionally overrides random input generation; kernels whose
	// memory feeds depend on the computation itself (Floyd-Warshall's
	// pivot feeds) use it. It must fill every non-Out tensor.
	Prepare func(block []int, seed int64) map[string]*Tensor
}

// NumComputeOps returns the number of FU-occupying body operations — the
// per-iteration compute count quoted in §VI (e.g. 4 for BiCG, 5 for ADI).
func (k *Kernel) NumComputeOps() int {
	n := 0
	for _, op := range k.Body {
		if op.Kind.IsCompute() {
			n++
		}
	}
	return n
}

// DistanceVectors returns the distinct non-zero dependence distance
// vectors appearing in the body's operand sources, in body order. These
// are the inter-iteration dependencies that drive the systolic mapping.
func (k *Kernel) DistanceVectors() []ir.IterVec {
	seen := map[string]bool{}
	var out []ir.IterVec
	add := func(in Input) {
		for _, c := range in {
			if c.Src.Kind == SrcDep && len(c.Src.Dist) > 0 && !c.Src.Dist.IsZero() {
				if !seen[c.Src.Dist.Key()] {
					seen[c.Src.Dist.Key()] = true
					out = append(out, c.Src.Dist.Clone())
				}
			}
		}
	}
	for _, op := range k.Body {
		add(op.A)
		add(op.B)
	}
	return out
}

// HasInterIterationDeps reports whether any operand crosses iterations.
func (k *Kernel) HasInterIterationDeps() bool { return len(k.DistanceVectors()) > 0 }

// UniformBlock returns a block vector with every free dimension set to b
// (dimensions pinned by FixedBlock keep their pinned extent).
func (k *Kernel) UniformBlock(b int) []int {
	blk := make([]int, k.Dim)
	for i := range blk {
		blk[i] = b
		if i < len(k.FixedBlock) && k.FixedBlock[i] > 0 {
			blk[i] = k.FixedBlock[i]
		}
	}
	return blk
}

// Validate performs static checks on the specification: operand arity,
// body-order for intra-iteration sources, lexicographic positivity of
// dependence distances, tensor references, and affine-map ranks.
func (k *Kernel) Validate() error {
	if k.Dim < 1 {
		return fmt.Errorf("kernel %s: Dim = %d", k.Name, k.Dim)
	}
	minBlock := k.MinBlock
	if minBlock == 0 {
		minBlock = 1
	}
	for d, fb := range k.FixedBlock {
		if fb > 0 && fb < minBlock {
			return fmt.Errorf("kernel %s: %w: FixedBlock[%d] = %d below MinBlock %d",
				k.Name, diag.ErrBlockPinConflict, d, fb, minBlock)
		}
	}
	tensors := map[string]TensorSpec{}
	for _, ts := range k.Tensors {
		tensors[ts.Name] = ts
	}
	checkSrc := func(opIdx int, s Source) error {
		switch s.Kind {
		case SrcDep:
			if s.Op < 0 || s.Op >= len(k.Body) {
				return fmt.Errorf("op %d references body op %d out of range", opIdx, s.Op)
			}
			if len(s.Dist) == 0 || s.Dist.IsZero() {
				if s.Op >= opIdx {
					return fmt.Errorf("op %d intra-iteration source %d does not precede it", opIdx, s.Op)
				}
			} else {
				if len(s.Dist) != k.Dim {
					return fmt.Errorf("op %d dep distance %v has wrong dimensionality", opIdx, s.Dist)
				}
				if !s.Dist.LexNonNegative() {
					return fmt.Errorf("op %d dep distance %v is lexicographically negative", opIdx, s.Dist)
				}
			}
		case SrcMem:
			ts, ok := tensors[s.Tensor]
			if !ok {
				return fmt.Errorf("op %d loads undeclared tensor %q", opIdx, s.Tensor)
			}
			if ts.Out {
				return fmt.Errorf("op %d loads output tensor %q", opIdx, s.Tensor)
			}
			for _, row := range s.Map.Coef {
				if len(row) != k.Dim {
					return fmt.Errorf("op %d tensor %q affine row has %d coefs, want %d", opIdx, s.Tensor, len(row), k.Dim)
				}
			}
		case SrcConst:
			// always fine
		default:
			return fmt.Errorf("op %d has unknown source kind %d", opIdx, s.Kind)
		}
		return nil
	}
	for i, op := range k.Body {
		ar := op.Kind.Arity()
		if ar >= 1 && len(op.A) == 0 {
			return fmt.Errorf("kernel %s: op %d (%s) missing input A", k.Name, i, op.Name)
		}
		if ar >= 2 && len(op.B) == 0 {
			return fmt.Errorf("kernel %s: op %d (%s) missing input B", k.Name, i, op.Name)
		}
		if ar < 2 && len(op.B) != 0 {
			return fmt.Errorf("kernel %s: op %d (%s) has input B but arity %d", k.Name, i, op.Name, ar)
		}
		for _, c := range op.A {
			if err := checkSrc(i, c.Src); err != nil {
				return fmt.Errorf("kernel %s: %v", k.Name, err)
			}
		}
		for _, c := range op.B {
			if err := checkSrc(i, c.Src); err != nil {
				return fmt.Errorf("kernel %s: %v", k.Name, err)
			}
		}
		for _, st := range op.Stores {
			ts, ok := tensors[st.Tensor]
			if !ok {
				return fmt.Errorf("kernel %s: op %d stores to undeclared tensor %q", k.Name, i, st.Tensor)
			}
			if !ts.Out {
				return fmt.Errorf("kernel %s: op %d stores to input tensor %q", k.Name, i, st.Tensor)
			}
		}
	}
	return nil
}
