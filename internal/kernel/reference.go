package kernel

import (
	"fmt"

	"himap/internal/ir"
)

// Reference computes the kernel's mathematical definition with plain
// nested loops, independently of the specification machinery, so tests
// can establish that the recurrence specifications implement the intended
// algorithms. Supported for every Evaluation() kernel and CONV2D.
func Reference(name string, block []int, inputs map[string]*Tensor) (map[string]*Tensor, error) {
	at := func(t string, idx ...int) int64 { return inputs[t].At(ir.IterVec(idx)) }
	switch name {
	case "GEMM":
		b1, b2, b3 := block[0], block[1], block[2]
		c := NewTensor(b1, b2)
		for i := 0; i < b1; i++ {
			for j := 0; j < b2; j++ {
				var s int64
				for k := 0; k < b3; k++ {
					s += at("A", i, k) * at("B", k, j)
				}
				c.Set(ir.IterVec{i, j}, s)
			}
		}
		return map[string]*Tensor{"C": c}, nil

	case "SYRK":
		b1, b2, b3 := block[0], block[1], block[2]
		c := NewTensor(b1, b2)
		for i := 0; i < b1; i++ {
			for j := 0; j < b2; j++ {
				var s int64
				for k := 0; k < b3; k++ {
					s += at("A", i, k) * at("A", j, k)
				}
				c.Set(ir.IterVec{i, j}, s)
			}
		}
		return map[string]*Tensor{"C": c}, nil

	case "BICG":
		b1, b2 := block[0], block[1]
		s := NewTensor(b2)
		q := NewTensor(b1)
		for i := 0; i < b1; i++ {
			for j := 0; j < b2; j++ {
				s.Set(ir.IterVec{j}, s.At(ir.IterVec{j})+at("R", i)*at("A", i, j))
				q.Set(ir.IterVec{i}, q.At(ir.IterVec{i})+at("A", i, j)*at("P", j))
			}
		}
		return map[string]*Tensor{"S": s, "Q": q}, nil

	case "ATAX":
		b1, b2 := block[0], block[1]
		tt := NewTensor(b1)
		y := NewTensor(b2)
		for i := 0; i < b1; i++ {
			for j := 0; j < b2; j++ {
				tt.Set(ir.IterVec{i}, tt.At(ir.IterVec{i})+at("A", i, j)*at("X", j))
				y.Set(ir.IterVec{j}, y.At(ir.IterVec{j})+at("A", i, j)*at("W", i))
			}
		}
		return map[string]*Tensor{"T": tt, "Y": y}, nil

	case "MVT":
		b1, b2 := block[0], block[1]
		x1 := NewTensor(b1)
		x2 := NewTensor(b1)
		for i := 0; i < b1; i++ {
			for j := 0; j < b2; j++ {
				x1.Set(ir.IterVec{i}, x1.At(ir.IterVec{i})+at("A", i, j)*at("Y1", j))
				x2.Set(ir.IterVec{i}, x2.At(ir.IterVec{i})+at("A", j, i)*at("Y2", j))
			}
		}
		return map[string]*Tensor{"X1": x1, "X2": x2}, nil

	case "ADI":
		b1, b2 := block[0], block[1]
		w := NewTensor(b1, b2)
		for i := 0; i < b1; i++ {
			u := int64(0)
			v := int64(0)
			for j := 0; j < b2; j++ {
				up := u
				vp := v
				if j == 0 {
					up = at("U0", i)
					vp = at("V0", i)
				}
				u = up*at("CA", i, j) + at("CB", i, j)
				v = vp*at("CC", i, j) + u
				w.Set(ir.IterVec{i, j}, u+v)
			}
		}
		return map[string]*Tensor{"W": w}, nil

	case "FW":
		bk, bi, bj := block[0], block[1], block[2]
		prev := inputs["D0"].Clone()
		for k := 0; k < bk; k++ {
			next := NewTensor(bi, bj)
			for i := 0; i < bi; i++ {
				for j := 0; j < bj; j++ {
					via := at("PR", k, j) + at("PC", k, i)
					cur := prev.At(ir.IterVec{i, j})
					if via < cur {
						cur = via
					}
					next.Set(ir.IterVec{i, j}, cur)
				}
			}
			prev = next
		}
		return map[string]*Tensor{"D": prev}, nil

	case "TTM":
		b1, b2, b3, b4 := block[0], block[1], block[2], block[3]
		y := NewTensor(b1, b2, b3)
		for i := 0; i < b1; i++ {
			for j := 0; j < b2; j++ {
				for k := 0; k < b3; k++ {
					var s int64
					for l := 0; l < b4; l++ {
						s += at("X", i, j, l) * at("U", k, l)
					}
					y.Set(ir.IterVec{i, j, k}, s)
				}
			}
		}
		return map[string]*Tensor{"Y": y}, nil

	case "NW":
		b1, b2 := block[0], block[1]
		const gap = -2
		d := NewTensor(b1, b2)
		get := func(i, j int) int64 {
			switch {
			case i < 0 && j < 0:
				return at("HN", 0) // corner: HN[0] = d(-1,-1)
			case i < 0:
				return at("HN", j+1)
			case j < 0:
				return at("HW", i+1)
			}
			return d.At(ir.IterVec{i, j})
		}
		for i := 0; i < b1; i++ {
			for j := 0; j < b2; j++ {
				diag := get(i-1, j-1) + at("S", i, j)
				up := get(i-1, j) + gap
				left := get(i, j-1) + gap
				m := diag
				if up > m {
					m = up
				}
				if left > m {
					m = left
				}
				d.Set(ir.IterVec{i, j}, m)
			}
		}
		return map[string]*Tensor{"OUT": d}, nil

	case "DOITGEN":
		b1, b2, b3, b4 := block[0], block[1], block[2], block[3]
		sum := NewTensor(b1, b2, b3)
		for r := 0; r < b1; r++ {
			for q := 0; q < b2; q++ {
				for pp := 0; pp < b3; pp++ {
					var acc int64
					for ss := 0; ss < b4; ss++ {
						acc += at("A3", r, q, ss) * at("C4", ss, pp)
					}
					sum.Set(ir.IterVec{r, q, pp}, acc)
				}
			}
		}
		return map[string]*Tensor{"SUM": sum}, nil

	case "DOTPROD":
		var acc int64
		for i := 0; i < block[0]; i++ {
			acc += at("A", i) * at("B", i)
		}
		s0 := NewTensor(1)
		s0.Set(ir.IterVec{0}, acc)
		return map[string]*Tensor{"S": s0}, nil

	case "RELU":
		y := NewTensor(block[0])
		for i := 0; i < block[0]; i++ {
			v := at("X", i)
			if v < 0 {
				v = 0
			}
			y.Set(ir.IterVec{i}, v)
		}
		return map[string]*Tensor{"Y": y}, nil

	case "CONV3D":
		b1, b2, b3 := block[0], block[1], block[2]
		out := NewTensor(b1, b2, b3)
		for i := 0; i < b1; i++ {
			for j := 0; j < b2; j++ {
				for l := 0; l < b3; l++ {
					var s int64
					for r := 0; r < 3; r++ {
						for ss := 0; ss < 3; ss++ {
							for u := 0; u < 3; u++ {
								s += at("VOL", i+r, j+ss, l+u) * at("KRN", r, ss, u)
							}
						}
					}
					out.Set(ir.IterVec{i, j, l}, s)
				}
			}
		}
		return map[string]*Tensor{"OUT": out}, nil

	case "CONV2D":
		b1, b2 := block[0], block[1]
		out := NewTensor(b1, b2)
		for i := 0; i < b1; i++ {
			for j := 0; j < b2; j++ {
				var s int64
				for r := 0; r < 3; r++ {
					for c := 0; c < 3; c++ {
						s += at("IMG", i+r, j+c) * at("KRN", r, c)
					}
				}
				out.Set(ir.IterVec{i, j}, s)
			}
		}
		return map[string]*Tensor{"OUT": out}, nil
	}
	return nil, fmt.Errorf("kernel: no reference implementation for %q", name)
}
