package kernel

import (
	"fmt"

	"himap/internal/ir"
)

// Golden executes the kernel specification directly (without building a
// DFG), iterating the block in lexicographic order, and returns the output
// tensors. It is the reference implementation used to validate both DFG
// construction and cycle-accurate simulation of generated mappings.
func (k *Kernel) Golden(block []int, inputs map[string]*Tensor) (map[string]*Tensor, error) {
	if len(block) != k.Dim {
		return nil, fmt.Errorf("kernel %s: block %v has %d dims, want %d", k.Name, block, len(block), k.Dim)
	}
	outputs := k.NewOutputs(block)
	npts := ir.BoxSize(block)
	vals := make([][]int64, len(k.Body))
	for i := range vals {
		vals[i] = make([]int64, npts)
	}

	var execErr error
	ir.ForEachPoint(block, func(iter ir.IterVec) {
		if execErr != nil {
			return
		}
		pi := ir.PointIndex(iter, block)
		for opIdx, op := range k.Body {
			read := func(in Input) int64 {
				src, err := selectCase(in, iter, block)
				if err != nil {
					execErr = err
					return 0
				}
				switch src.Kind {
				case SrcDep:
					prodIter := iter
					if len(src.Dist) > 0 {
						prodIter = iter.Sub(src.Dist)
					}
					if !prodIter.InBox(block) {
						execErr = fmt.Errorf("kernel %s op %s at %v: golden dependence outside block", k.Name, op.Name, iter)
						return 0
					}
					return vals[src.Op][ir.PointIndex(prodIter, block)]
				case SrcMem:
					t, ok := inputs[src.Tensor]
					if !ok {
						execErr = fmt.Errorf("kernel %s: missing input tensor %q", k.Name, src.Tensor)
						return 0
					}
					return t.At(src.Map.Apply(iter))
				case SrcConst:
					return src.Value
				}
				execErr = fmt.Errorf("kernel %s: bad source kind", k.Name)
				return 0
			}

			var v int64
			switch {
			case op.Kind == ir.OpRoute:
				v = read(op.A)
			case op.Kind.IsCompute():
				a := read(op.A)
				b := read(op.B)
				if execErr != nil {
					return
				}
				v = op.Kind.Eval(a, b)
			default:
				execErr = fmt.Errorf("kernel %s: body op %s has non-body kind %v", k.Name, op.Name, op.Kind)
				return
			}
			if execErr != nil {
				return
			}
			vals[opIdx][pi] = v
			for _, st := range op.Stores {
				if st.When.Eval(iter, block) {
					outputs[st.Tensor].Set(st.Map.Apply(iter), v)
				}
			}
		}
	})
	if execErr != nil {
		return nil, execErr
	}
	return outputs, nil
}

// ExecuteDFG evaluates an unrolled DFG over concrete input tensors and
// returns the output tensors. Used to cross-check DFG construction against
// Golden and as the data source for simulator memory feeds.
func ExecuteDFG(k *Kernel, d *ir.DFG, inputs map[string]*Tensor) (map[string]*Tensor, error) {
	order, err := d.TopoOrder()
	if err != nil {
		return nil, err
	}
	outputs := k.NewOutputs(d.Block)
	vals := make([]int64, len(d.Nodes))
	for _, id := range order {
		n := d.Nodes[id]
		var a, b int64
		gotA, gotB := false, false
		for _, ei := range d.InEdges(id) {
			e := d.Edges[ei]
			switch e.ToPort {
			case 0:
				a, gotA = vals[e.From], true
			case 1:
				b, gotB = vals[e.From], true
			}
		}
		if n.HasConst {
			b, gotB = n.Const, true
		}
		switch {
		case n.Kind == ir.OpLoad:
			t, ok := inputs[n.Tensor]
			if !ok {
				return nil, fmt.Errorf("kernel: ExecuteDFG missing input tensor %q", n.Tensor)
			}
			vals[id] = t.At(n.Index)
		case n.Kind == ir.OpStore:
			if !gotA {
				return nil, fmt.Errorf("kernel: store node %v has no input", n)
			}
			vals[id] = a
			out, ok := outputs[n.Tensor]
			if !ok {
				return nil, fmt.Errorf("kernel: ExecuteDFG missing output tensor %q", n.Tensor)
			}
			out.Set(n.Index, a)
		case n.Kind == ir.OpRoute:
			if !gotA {
				return nil, fmt.Errorf("kernel: route node %v has no input", n)
			}
			vals[id] = a
		case n.Kind.IsCompute():
			if !gotA || (n.Kind.Arity() > 1 && !gotB) {
				return nil, fmt.Errorf("kernel: compute node %v missing inputs (a:%v b:%v)", n, gotA, gotB)
			}
			vals[id] = n.Kind.Eval(a, b)
		default:
			return nil, fmt.Errorf("kernel: ExecuteDFG cannot evaluate %v", n)
		}
	}
	return outputs, nil
}

// CompareOutputs reports the first mismatch between two output tensor
// maps, or nil if they agree exactly.
func CompareOutputs(want, got map[string]*Tensor) error {
	if len(want) != len(got) {
		return fmt.Errorf("kernel: output tensor count mismatch: want %d, got %d", len(want), len(got))
	}
	for name, w := range want {
		g, ok := got[name]
		if !ok {
			return fmt.Errorf("kernel: missing output tensor %q", name)
		}
		if !w.Equal(g) {
			for i := range w.Data {
				if w.Data[i] != g.Data[i] {
					return fmt.Errorf("kernel: tensor %q element %d: want %d, got %d", name, i, w.Data[i], g.Data[i])
				}
			}
			return fmt.Errorf("kernel: tensor %q shape mismatch: %v vs %v", name, w.Dims, g.Dims)
		}
	}
	return nil
}
