package kernel

import (
	"fmt"

	"himap/internal/ir"
)

// Tensor is a dense multi-dimensional int64 array used by the golden
// executor and the simulator's memory feeds.
type Tensor struct {
	Dims []int
	Data []int64
}

// NewTensor allocates a zeroed tensor of the given extents.
func NewTensor(dims ...int) *Tensor {
	n := 1
	for _, d := range dims {
		if d <= 0 {
			panic(fmt.Sprintf("kernel: tensor dimension %d", d))
		}
		n *= d
	}
	dd := make([]int, len(dims))
	copy(dd, dims)
	return &Tensor{Dims: dd, Data: make([]int64, n)}
}

func (t *Tensor) flat(idx ir.IterVec) int {
	if len(idx) != len(t.Dims) {
		panic(fmt.Sprintf("kernel: index rank %d vs tensor rank %d", len(idx), len(t.Dims)))
	}
	f := 0
	for d := range t.Dims {
		if idx[d] < 0 || idx[d] >= t.Dims[d] {
			panic(fmt.Sprintf("kernel: index %v out of tensor dims %v", idx, t.Dims))
		}
		f = f*t.Dims[d] + idx[d]
	}
	return f
}

// At returns the element at idx.
func (t *Tensor) At(idx ir.IterVec) int64 { return t.Data[t.flat(idx)] }

// Set stores v at idx.
func (t *Tensor) Set(idx ir.IterVec, v int64) { t.Data[t.flat(idx)] = v }

// Size returns the number of elements.
func (t *Tensor) Size() int { return len(t.Data) }

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	c := NewTensor(t.Dims...)
	copy(c.Data, t.Data)
	return c
}

// Equal reports whether two tensors have identical shape and contents.
func (t *Tensor) Equal(o *Tensor) bool {
	if len(t.Dims) != len(o.Dims) {
		return false
	}
	for i := range t.Dims {
		if t.Dims[i] != o.Dims[i] {
			return false
		}
	}
	for i := range t.Data {
		if t.Data[i] != o.Data[i] {
			return false
		}
	}
	return true
}

// fillLCG fills the tensor with small deterministic pseudo-random values
// derived from seed. Values are kept small so products and sums stay far
// from int64 overflow even for deep reductions.
func (t *Tensor) fillLCG(seed int64) {
	x := uint64(seed)*6364136223846793005 + 1442695040888963407
	for i := range t.Data {
		x = x*6364136223846793005 + 1442695040888963407
		t.Data[i] = int64((x>>33)%17) - 8
	}
}

// hashString folds a string into an int64 seed component.
func hashString(s string) int64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return int64(h)
}

// DefaultInputs generates deterministic pseudo-random input tensors for
// the kernel at the given block sizes (output tensors are allocated
// zeroed). Kernels with a Prepare hook delegate to it.
func (k *Kernel) DefaultInputs(block []int, seed int64) map[string]*Tensor {
	if k.Prepare != nil {
		m := k.Prepare(block, seed)
		for _, ts := range k.Tensors {
			if _, ok := m[ts.Name]; !ok && !ts.Out {
				panic(fmt.Sprintf("kernel %s: Prepare did not fill tensor %q", k.Name, ts.Name))
			}
		}
		return m
	}
	m := make(map[string]*Tensor, len(k.Tensors))
	for _, ts := range k.Tensors {
		if ts.Out {
			continue
		}
		t := NewTensor(ts.Dims(block)...)
		t.fillLCG(seed ^ hashString(ts.Name))
		m[ts.Name] = t
	}
	return m
}

// NewOutputs allocates zeroed output tensors for the kernel at the given
// block sizes.
func (k *Kernel) NewOutputs(block []int) map[string]*Tensor {
	m := map[string]*Tensor{}
	for _, ts := range k.Tensors {
		if ts.Out {
			m[ts.Name] = NewTensor(ts.Dims(block)...)
		}
	}
	return m
}
