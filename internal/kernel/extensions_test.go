package kernel

import (
	"testing"

	"himap/internal/ir"
)

func TestExtensionsValidateAndMatchReference(t *testing.T) {
	for _, k := range Extensions() {
		if err := k.Validate(); err != nil {
			t.Errorf("%s: %v", k.Name, err)
			continue
		}
		var blocks [][]int
		switch k.Name {
		case "CONV2D":
			blocks = [][]int{{3, 3, 3, 3}, {4, 4, 3, 3}}
		default:
			blocks = [][]int{k.UniformBlock(2), k.UniformBlock(3), k.UniformBlock(4)}
		}
		for _, block := range blocks {
			inputs := k.DefaultInputs(block, 17)
			want, err := Reference(k.Name, block, inputs)
			if err != nil {
				t.Fatalf("%s %v: reference: %v", k.Name, block, err)
			}
			got, err := k.Golden(block, inputs)
			if err != nil {
				t.Fatalf("%s %v: golden: %v", k.Name, block, err)
			}
			if err := CompareOutputs(want, got); err != nil {
				t.Errorf("%s %v: %v", k.Name, block, err)
			}
			d, err := k.BuildDFG(block)
			if err != nil {
				t.Fatalf("%s %v: BuildDFG: %v", k.Name, block, err)
			}
			dfgOut, err := ExecuteDFG(k, d, inputs)
			if err != nil {
				t.Fatalf("%s %v: ExecuteDFG: %v", k.Name, block, err)
			}
			if err := CompareOutputs(want, dfgOut); err != nil {
				t.Errorf("%s %v: DFG execution: %v", k.Name, block, err)
			}
		}
	}
}

func TestNWHasDiagonalDependence(t *testing.T) {
	k := NW()
	dists := k.DistanceVectors()
	found := map[string]bool{}
	for _, d := range dists {
		found[d.Key()] = true
	}
	for _, want := range []string{"1,1", "1,0", "0,1"} {
		if !found[want] {
			t.Errorf("NW missing dependence %s (have %v)", want, dists)
		}
	}
	if k.NumComputeOps() != 5 {
		t.Errorf("NW compute ops = %d, want 5 (3 adds + 2 max)", k.NumComputeOps())
	}
}

func TestNWMatchesPlainDP(t *testing.T) {
	// Cross-check the halo-fed block semantics against a plain DP over an
	// extended matrix: run a block whose halo encodes "all gaps" init.
	k := NW()
	block := []int{4, 4}
	inputs := k.DefaultInputs(block, 3)
	// Overwrite halos with the classic init d(i,-1) = gap*(i+1) etc.
	const gap = -2
	for j := 0; j <= 4; j++ {
		inputs["HN"].Set(ir.IterVec{j}, int64(gap*j)) // HN[j] = d(-1, j-1) = gap*j
	}
	for i := 0; i <= 4; i++ {
		inputs["HW"].Set(ir.IterVec{i}, int64(gap*i))
	}
	got, err := k.Golden(block, inputs)
	if err != nil {
		t.Fatal(err)
	}
	// Plain DP.
	d := make([][]int64, 5)
	for i := range d {
		d[i] = make([]int64, 5)
		d[i][0] = int64(gap * i)
	}
	for j := 0; j < 5; j++ {
		d[0][j] = int64(gap * j)
	}
	for i := 1; i < 5; i++ {
		for j := 1; j < 5; j++ {
			best := d[i-1][j-1] + inputs["S"].At(ir.IterVec{i - 1, j - 1})
			if v := d[i-1][j] + gap; v > best {
				best = v
			}
			if v := d[i][j-1] + gap; v > best {
				best = v
			}
			d[i][j] = best
		}
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if got["OUT"].At(ir.IterVec{i, j}) != d[i+1][j+1] {
				t.Fatalf("NW(%d,%d) = %d, plain DP %d", i, j, got["OUT"].At(ir.IterVec{i, j}), d[i+1][j+1])
			}
		}
	}
}

func TestDOITGENStructureMatchesTTMShape(t *testing.T) {
	k := DOITGEN()
	if k.Dim != 4 || k.NumComputeOps() != 2 {
		t.Errorf("DOITGEN dim %d computes %d", k.Dim, k.NumComputeOps())
	}
	_, g, err := k.BuildISDG(k.UniformBlock(3))
	if err != nil {
		t.Fatal(err)
	}
	if got := ir.CountStructuralClasses(g); got != 27 {
		t.Errorf("DOITGEN structural classes = %d, want 27", got)
	}
}

func TestByNameIncludesExtensions(t *testing.T) {
	for _, name := range []string{"NW", "DOITGEN", "CONV2D"} {
		k, err := ByName(name)
		if err != nil || k.Name != name {
			t.Errorf("ByName(%s) = %v, %v", name, k, err)
		}
	}
}

func TestConv3DGoldenAndDFG(t *testing.T) {
	k := Conv3D()
	if err := k.Validate(); err != nil {
		t.Fatal(err)
	}
	block := []int{2, 3, 2, 3, 3, 3}
	inputs := k.DefaultInputs(block, 5)
	want, err := Reference(k.Name, block, inputs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := k.Golden(block, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if err := CompareOutputs(want, got); err != nil {
		t.Error(err)
	}
	d, err := k.BuildDFG(block)
	if err != nil {
		t.Fatal(err)
	}
	dout, err := ExecuteDFG(k, d, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if err := CompareOutputs(want, dout); err != nil {
		t.Error(err)
	}
}
