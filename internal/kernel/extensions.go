package kernel

import "himap/internal/ir"

// Extension kernels beyond the paper's eight evaluation kernels: the
// remaining multi-dimensional entries of Table I that are expressible as
// uniform recurrences (Needleman-Wunsch, doitgen) plus Conv2D (defined in
// kernels.go). They demonstrate the mapper on dependence shapes the
// evaluation set lacks — most notably NW's diagonal (1,1) wavefront
// dependence, which no 2-D space allocation makes single-hop, forcing the
// scheme search to a linear (1-D space) allocation.

// NW returns the Needleman-Wunsch sequence-alignment kernel (2 loop
// levels): the dynamic-programming wavefront
//
//	d(i,j) = max(d(i-1,j-1) + S[i][j], d(i-1,j) + G, d(i,j-1) + G)
//
// with the block halo (row d(-1,·), column d(·,-1), corner) fed from
// memory. Dependence distance vectors: (1,1), (1,0), (0,1).
func NW() *Kernel {
	const gapPenalty = -2
	k := &Kernel{
		Name:     "NW",
		Desc:     "Needleman-Wunsch sequence alignment (wavefront DP)",
		Suite:    "MachSuite",
		Dim:      2,
		MinBlock: 2,
		Tensors: []TensorSpec{
			{Name: "S", Dims: func(b []int) []int { return []int{b[0], b[1]} }},
			{Name: "HN", Dims: func(b []int) []int { return []int{b[1] + 1} }}, // d(-1, j-1..): HN[j] = d(-1, j-1), HN[b2] unused pad
			{Name: "HW", Dims: func(b []int) []int { return []int{b[0] + 1} }}, // HW[i] = d(i-1, -1)
			{Name: "OUT", Out: true, Dims: func(b []int) []int { return []int{b[0], b[1]} }},
		},
	}
	ij := AM(2, []int{1, 0, 0}, []int{0, 1, 0})
	k.Body = []BodyOp{
		// diag = d(i-1,j-1) + S[i][j]
		{Name: "diag", Kind: ir.OpAdd,
			A: In(
				Case{First(0), Mem("HN", AM(2, []int{0, 1, 0}))}, // d(-1,j-1) = HN[j]
				Case{First(1), Mem("HW", AM(2, []int{1, 0, 0}))}, // d(i-1,-1) = HW[i]
				Case{Always(), Dep(4, 1, 1)}),
			B: Fixed(Mem("S", ij))},
		// up = d(i-1,j) + G
		{Name: "up", Kind: ir.OpAdd,
			A: In(
				Case{First(0), Mem("HN", AM(2, []int{0, 1, 1}))}, // d(-1,j) = HN[j+1]
				Case{Always(), Dep(4, 1, 0)}),
			B: Fixed(Const(gapPenalty))},
		// left = d(i,j-1) + G
		{Name: "left", Kind: ir.OpAdd,
			A: In(
				Case{First(1), Mem("HW", AM(2, []int{1, 0, 1}))}, // d(i,-1) = HW[i+1]
				Case{Always(), Dep(4, 0, 1)}),
			B: Fixed(Const(gapPenalty))},
		{Name: "m1", Kind: ir.OpMax, A: Fixed(Same(0)), B: Fixed(Same(1))},
		{Name: "d", Kind: ir.OpMax, A: Fixed(Same(3)), B: Fixed(Same(2)),
			Stores: []StoreRule{{When: Always(), Tensor: "OUT", Map: ij}}},
	}
	return k
}

// DOITGEN returns PolyBench's doitgen kernel (4 loop levels):
// sum[r][q][p] = sum_s A3[r][q][s] * C4[s][p]. A3 values are reused along
// p, C4 values along q, partial sums carried along s.
func DOITGEN() *Kernel {
	k := &Kernel{
		Name:     "DOITGEN",
		Desc:     "Multi-resolution analysis kernel (doitgen)",
		Suite:    "PolyBench",
		Dim:      4, // (r, q, p, s)
		MinBlock: 2,
		Tensors: []TensorSpec{
			{Name: "A3", Dims: func(b []int) []int { return []int{b[0], b[1], b[3]} }},
			{Name: "C4", Dims: func(b []int) []int { return []int{b[3], b[2]} }},
			{Name: "SUM", Out: true, Dims: func(b []int) []int { return []int{b[0], b[1], b[2]} }},
		},
	}
	a3Map := AM(4, []int{1, 0, 0, 0, 0}, []int{0, 1, 0, 0, 0}, []int{0, 0, 0, 1, 0}) // [r,q,s]
	c4Map := AM(4, []int{0, 0, 0, 1, 0}, []int{0, 0, 1, 0, 0})                       // [s,p]
	outMap := AM(4, []int{1, 0, 0, 0, 0}, []int{0, 1, 0, 0, 0}, []int{0, 0, 1, 0, 0})
	k.Body = []BodyOp{
		{Name: "a", Kind: ir.OpRoute,
			A: In(Case{First(2), Mem("A3", a3Map)}, Case{Always(), Dep(0, 0, 0, 1, 0)})},
		{Name: "c", Kind: ir.OpRoute,
			A: In(Case{First(1), Mem("C4", c4Map)}, Case{Always(), Dep(1, 0, 1, 0, 0)})},
		{Name: "mul", Kind: ir.OpMul, A: Fixed(Same(0)), B: Fixed(Same(1))},
		{Name: "acc", Kind: ir.OpAdd, A: Fixed(Same(2)),
			B:      In(Case{First(3), Const(0)}, Case{Always(), Dep(3, 0, 0, 0, 1)}),
			Stores: []StoreRule{{When: Last(3), Tensor: "SUM", Map: outMap}}},
	}
	return k
}

// Extensions returns the executable kernels beyond the Table-II set.
func Extensions() []*Kernel {
	return []*Kernel{Conv2D(), Conv3D(), NW(), DOITGEN(), DOTPROD(), RELU()}
}

// Conv3D returns a 3-D convolution with a 3x3x3 window as a 6-loop-level
// kernel (i, j, l over the output volume, r, s, u over the window), with
// the partial sum carried along the linearized window — the deepest loop
// nest in the library and Table I's conv3d entry.
func Conv3D() *Kernel {
	k := &Kernel{
		Name:     "CONV3D",
		Desc:     "3-D convolution, 3x3x3 window",
		Suite:    "custom",
		Dim:      6,
		MinBlock: 2,
		Tensors: []TensorSpec{
			{Name: "VOL", Dims: func(b []int) []int { return []int{b[0] + 2, b[1] + 2, b[2] + 2} }},
			{Name: "KRN", Dims: func(b []int) []int { return []int{3, 3, 3} }},
			{Name: "OUT", Out: true, Dims: func(b []int) []int { return []int{b[0], b[1], b[2]} }},
		},
		FixedBlock: []int{0, 0, 0, 3, 3, 3},
	}
	volMap := AM(6,
		[]int{1, 0, 0, 1, 0, 0, 0},
		[]int{0, 1, 0, 0, 1, 0, 0},
		[]int{0, 0, 1, 0, 0, 1, 0}) // [i+r, j+s, l+u]
	krnMap := AM(6,
		[]int{0, 0, 0, 1, 0, 0, 0},
		[]int{0, 0, 0, 0, 1, 0, 0},
		[]int{0, 0, 0, 0, 0, 1, 0}) // [r, s, u]
	outMap := AM(6,
		[]int{1, 0, 0, 0, 0, 0, 0},
		[]int{0, 1, 0, 0, 0, 0, 0},
		[]int{0, 0, 1, 0, 0, 0, 0}) // [i, j, l]
	k.Body = []BodyOp{
		{Name: "mul", Kind: ir.OpMul, A: Fixed(Mem("VOL", volMap)), B: Fixed(Mem("KRN", krnMap))},
		{Name: "acc", Kind: ir.OpAdd, A: Fixed(Same(0)),
			B: In(
				Case{And(First(3), First(4), First(5)), Const(0)},
				Case{And(First(4), First(5)), Dep(1, 0, 0, 0, 1, -2, -2)}, // previous window row-plane
				Case{First(5), Dep(1, 0, 0, 0, 0, 1, -2)},                 // previous window row
				Case{Always(), Dep(1, 0, 0, 0, 0, 0, 1)}),
			Stores: []StoreRule{{When: And(Last(3), Last(4), Last(5)), Tensor: "OUT", Map: outMap}}},
	}
	return k
}
