package kernel

import (
	"math/rand"
	"testing"

	"himap/internal/ir"
)

func TestAllKernelsValidate(t *testing.T) {
	for _, k := range append(Evaluation(), Conv2D()) {
		if err := k.Validate(); err != nil {
			t.Errorf("%s: %v", k.Name, err)
		}
	}
}

func TestComputeOpCountsMatchPaper(t *testing.T) {
	// §VI quotes per-iteration compute op counts: ADI 5, BiCG 4, FW 2;
	// GEMM/SYRK/TTM are mul+acc pipelines (2); ATAX/MVT mirror BiCG (4).
	want := map[string]int{
		"ADI": 5, "ATAX": 4, "BICG": 4, "MVT": 4,
		"GEMM": 2, "SYRK": 2, "FW": 2, "TTM": 2,
	}
	for _, k := range Evaluation() {
		if got := k.NumComputeOps(); got != want[k.Name] {
			t.Errorf("%s: compute ops = %d, want %d", k.Name, got, want[k.Name])
		}
	}
}

func TestKernelDims(t *testing.T) {
	want := map[string]int{
		"ADI": 2, "ATAX": 2, "BICG": 2, "MVT": 2,
		"GEMM": 3, "SYRK": 3, "FW": 3, "TTM": 4,
	}
	for _, k := range Evaluation() {
		if k.Dim != want[k.Name] {
			t.Errorf("%s: Dim = %d, want %d", k.Name, k.Dim, want[k.Name])
		}
		if !k.HasInterIterationDeps() {
			t.Errorf("%s: expected inter-iteration dependencies", k.Name)
		}
	}
}

func TestDistanceVectorsLexPositive(t *testing.T) {
	for _, k := range append(Evaluation(), Conv2D()) {
		for _, d := range k.DistanceVectors() {
			if d.IsZero() || !d.LexNonNegative() {
				t.Errorf("%s: bad distance vector %v", k.Name, d)
			}
			if len(d) != k.Dim {
				t.Errorf("%s: distance vector %v has wrong dimensionality", k.Name, d)
			}
		}
	}
}

func TestGoldenMatchesReference(t *testing.T) {
	for _, k := range Evaluation() {
		for _, b := range []int{2, 3, 4, 5} {
			block := k.UniformBlock(b)
			inputs := k.DefaultInputs(block, 42)
			ref, err := Reference(k.Name, block, inputs)
			if err != nil {
				t.Fatalf("%s b=%d: reference: %v", k.Name, b, err)
			}
			got, err := k.Golden(block, inputs)
			if err != nil {
				t.Fatalf("%s b=%d: golden: %v", k.Name, b, err)
			}
			if err := CompareOutputs(ref, got); err != nil {
				t.Errorf("%s b=%d: %v", k.Name, b, err)
			}
		}
	}
}

func TestConv2DGoldenMatchesReference(t *testing.T) {
	k := Conv2D()
	block := k.UniformBlock(4) // (4,4,3,3)
	inputs := k.DefaultInputs(block, 7)
	ref, err := Reference(k.Name, block, inputs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := k.Golden(block, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if err := CompareOutputs(ref, got); err != nil {
		t.Error(err)
	}
}

func TestExecuteDFGMatchesGolden(t *testing.T) {
	for _, k := range append(Evaluation(), Conv2D()) {
		block := k.UniformBlock(4)
		d, err := k.BuildDFG(block)
		if err != nil {
			t.Fatalf("%s: BuildDFG: %v", k.Name, err)
		}
		inputs := k.DefaultInputs(block, 99)
		want, err := k.Golden(block, inputs)
		if err != nil {
			t.Fatalf("%s: golden: %v", k.Name, err)
		}
		got, err := ExecuteDFG(k, d, inputs)
		if err != nil {
			t.Fatalf("%s: ExecuteDFG: %v", k.Name, err)
		}
		if err := CompareOutputs(want, got); err != nil {
			t.Errorf("%s: %v", k.Name, err)
		}
	}
}

func TestDFGComputeCountScalesWithBlock(t *testing.T) {
	for _, k := range Evaluation() {
		for _, b := range []int{2, 4} {
			block := k.UniformBlock(b)
			d, err := k.BuildDFG(block)
			if err != nil {
				t.Fatalf("%s: %v", k.Name, err)
			}
			want := k.NumComputeOps() * ir.BoxSize(block)
			if got := d.NumCompute(); got != want {
				t.Errorf("%s b=%d: compute nodes = %d, want %d", k.Name, b, got, want)
			}
		}
	}
}

func TestStructuralClassesMatchTableII(t *testing.T) {
	// Structural iteration classes in iteration space (before systolic
	// placement): 2-D kernels with dependencies along both dims have 3x3=9,
	// ADI (inner-dim deps only) has 3, GEMM/SYRK 3^3=27, TTM 27 (its j
	// dimension is structurally uniform). These saturate with block size —
	// the property behind Table II's block-size-independent compilation.
	want := map[string]int{
		"ADI": 3, "ATAX": 9, "BICG": 9, "MVT": 9,
		"GEMM": 27, "SYRK": 27, "TTM": 27,
	}
	for _, k := range Evaluation() {
		if k.Name == "FW" {
			continue // saturation asserted separately (diagonal classes)
		}
		n := 4
		if k.Dim >= 4 {
			n = 3
		}
		_, g, err := k.BuildISDG(k.UniformBlock(n))
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		if got := ir.CountStructuralClasses(g); got != want[k.Name] {
			t.Errorf("%s: structural classes = %d, want %d", k.Name, got, want[k.Name])
		}
	}
}

func TestStructuralClassesSaturate(t *testing.T) {
	// The number of unique iteration classes must become independent of
	// block size (the paper's scalability argument, §II).
	for _, k := range Evaluation() {
		if k.Dim > 3 {
			continue // 4-D blocks get large; covered by the TTM case below
		}
		_, g1, err := k.BuildISDG(k.UniformBlock(6))
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		_, g2, err := k.BuildISDG(k.UniformBlock(7))
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		c1, c2 := ir.CountStructuralClasses(g1), ir.CountStructuralClasses(g2)
		if c1 != c2 {
			t.Errorf("%s: classes not saturated: %d at b=6, %d at b=7", k.Name, c1, c2)
		}
	}
	ttm := TTM()
	_, g1, err := ttm.BuildISDG(ttm.UniformBlock(3))
	if err != nil {
		t.Fatal(err)
	}
	_, g2, err := ttm.BuildISDG(ttm.UniformBlock(4))
	if err != nil {
		t.Fatal(err)
	}
	if c1, c2 := ir.CountStructuralClasses(g1), ir.CountStructuralClasses(g2); c1 != c2 {
		t.Errorf("TTM: classes not saturated: %d at b=3, %d at b=4", c1, c2)
	}
}

func TestGenericIDFGInteriorHasOnlyDepInputs(t *testing.T) {
	for _, k := range Evaluation() {
		f, err := k.GenericIDFG()
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		if f.NumCompute() != k.NumComputeOps() {
			t.Errorf("%s: IDFG compute = %d, want %d", k.Name, f.NumCompute(), k.NumComputeOps())
		}
		for _, p := range f.Inputs {
			if p.Dist.IsZero() {
				t.Errorf("%s: interior IDFG input with zero distance", k.Name)
			}
		}
	}
}

func TestBuildDFGErrorOnMissingGuard(t *testing.T) {
	// A dependence with no boundary guard must be rejected.
	k := &Kernel{
		Name: "bad", Dim: 1, MinBlock: 2,
		Tensors: []TensorSpec{{Name: "O", Out: true, Dims: func(b []int) []int { return []int{b[0]} }}},
		Body: []BodyOp{
			{Name: "acc", Kind: ir.OpAdd,
				A:      Fixed(Dep(0, 1)),
				B:      Fixed(Const(1)),
				Stores: []StoreRule{{When: Always(), Tensor: "O", Map: AM(1, []int{1, 0})}}},
		},
	}
	if _, err := k.BuildDFG([]int{4}); err == nil {
		t.Fatal("expected error for unguarded boundary dependence")
	}
}

func TestFixedBlockEnforced(t *testing.T) {
	k := Conv2D()
	if _, err := k.BuildDFG([]int{4, 4, 2, 3}); err == nil {
		t.Fatal("expected error for violated pinned block dimension")
	}
	if b := k.UniformBlock(5); b[2] != 3 || b[3] != 3 || b[0] != 5 {
		t.Errorf("UniformBlock with FixedBlock = %v", b)
	}
}

func TestDefaultInputsDeterministic(t *testing.T) {
	k := GEMM()
	block := k.UniformBlock(4)
	a := k.DefaultInputs(block, 5)
	b := k.DefaultInputs(block, 5)
	c := k.DefaultInputs(block, 6)
	if !a["A"].Equal(b["A"]) {
		t.Error("same seed must give same inputs")
	}
	if a["A"].Equal(c["A"]) {
		t.Error("different seeds should give different inputs")
	}
}

func TestByName(t *testing.T) {
	k, err := ByName("GEMM")
	if err != nil || k.Name != "GEMM" {
		t.Errorf("ByName(GEMM) = %v, %v", k, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("expected error for unknown kernel")
	}
}

func TestCatalogCategorization(t *testing.T) {
	cat := Categorize(Catalog())
	if len(cat["no-dep"]) == 0 || len(cat["dep-dim1"]) == 0 ||
		len(cat["dep-dim2"]) == 0 || len(cat["dep-dim3"]) == 0 || len(cat["dep-dim4"]) == 0 {
		t.Fatalf("all five Table-I columns must be populated: %v", mapLens(cat))
	}
	// The eight Table-II kernels must all be in multi-dimensional
	// with-dependency categories.
	tableII := map[string]bool{"adi": true, "atax": true, "bicg": true, "mvt": true,
		"gemm": true, "syrk": true, "floyd_warshall": true, "ttm": true}
	found := 0
	for key, infos := range cat {
		for _, in := range infos {
			if tableII[in.Name] {
				found++
				if key == "no-dep" || key == "dep-dim1" {
					t.Errorf("%s categorized as %s", in.Name, key)
				}
				if !MappableBySystolic(in) {
					t.Errorf("%s should be systolic-mappable", in.Name)
				}
			}
		}
	}
	if found != len(tableII) {
		t.Errorf("found %d of %d Table-II kernels in catalog", found, len(tableII))
	}
}

func mapLens(m map[string][]Info) map[string]int {
	out := map[string]int{}
	for k, v := range m {
		out[k] = len(v)
	}
	return out
}

func TestTensorBasics(t *testing.T) {
	tt := NewTensor(2, 3)
	tt.Set(ir.IterVec{1, 2}, 42)
	if got := tt.At(ir.IterVec{1, 2}); got != 42 {
		t.Errorf("At = %d", got)
	}
	if tt.Size() != 6 {
		t.Errorf("Size = %d", tt.Size())
	}
	c := tt.Clone()
	c.Set(ir.IterVec{0, 0}, 1)
	if tt.At(ir.IterVec{0, 0}) == 1 {
		t.Error("Clone must not alias")
	}
	if !tt.Equal(tt.Clone()) {
		t.Error("Equal on clone")
	}
	if tt.Equal(NewTensor(3, 2)) {
		t.Error("Equal across shapes")
	}
}

func TestTensorOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTensor(2, 2).At(ir.IterVec{2, 0})
}

func TestAffineMap(t *testing.T) {
	m := AM(3, []int{1, 0, 0, 0}, []int{0, 0, 1, 5})
	got := m.Apply(ir.IterVec{2, 9, 3})
	if !got.Equal(ir.IterVec{2, 8}) {
		t.Errorf("Apply = %v, want (2,8)", got)
	}
	if m.Rank() != 2 {
		t.Errorf("Rank = %d", m.Rank())
	}
}

func TestPredEval(t *testing.T) {
	block := []int{4, 4}
	cases := []struct {
		p    Pred
		iter ir.IterVec
		want bool
	}{
		{Always(), ir.IterVec{1, 2}, true},
		{First(0), ir.IterVec{0, 3}, true},
		{First(0), ir.IterVec{1, 3}, false},
		{Last(1), ir.IterVec{0, 3}, true},
		{Last(1), ir.IterVec{0, 2}, false},
		{NotFirst(0), ir.IterVec{1, 0}, true},
		{EqDims(0, 1), ir.IterVec{2, 2}, true},
		{EqDims(0, 1), ir.IterVec{2, 1}, false},
		{And(First(0), Last(1)), ir.IterVec{0, 3}, true},
		{And(First(0), Last(1)), ir.IterVec{0, 0}, false},
	}
	for i, c := range cases {
		if got := c.p.Eval(c.iter, block); got != c.want {
			t.Errorf("case %d: Eval(%v) = %v, want %v", i, c.iter, got, c.want)
		}
	}
}

func TestFWPrepareConsistency(t *testing.T) {
	// PR[k][j] must equal the (k-1)-step distance matrix's pivot row, and
	// the spec's golden output must match a plain Floyd-Warshall when the
	// block is square.
	k := FW()
	block := []int{5, 5, 5}
	inputs := k.DefaultInputs(block, 11)
	got, err := k.Golden(block, inputs)
	if err != nil {
		t.Fatal(err)
	}
	// Plain Jacobi Floyd-Warshall on D0.
	d := inputs["D0"].Clone()
	for kk := 0; kk < 5; kk++ {
		next := NewTensor(5, 5)
		for i := 0; i < 5; i++ {
			for j := 0; j < 5; j++ {
				via := d.At(ir.IterVec{i, kk}) + d.At(ir.IterVec{kk, j})
				cur := d.At(ir.IterVec{i, j})
				if via < cur {
					cur = via
				}
				next.Set(ir.IterVec{i, j}, cur)
			}
		}
		d = next
	}
	if !got["D"].Equal(d) {
		t.Error("FW golden does not match plain Floyd-Warshall")
	}
}

// Property: golden, reference, and DFG execution agree on random
// rectangular (non-uniform) blocks for every kernel.
func TestRectangularBlocksProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, k := range Evaluation() {
		for trial := 0; trial < 4; trial++ {
			block := make([]int, k.Dim)
			for d := range block {
				block[d] = 2 + rng.Intn(4)
				if d < len(k.FixedBlock) && k.FixedBlock[d] > 0 {
					block[d] = k.FixedBlock[d]
				}
			}
			inputs := k.DefaultInputs(block, int64(trial))
			want, err := Reference(k.Name, block, inputs)
			if err != nil {
				t.Fatalf("%s %v: %v", k.Name, block, err)
			}
			got, err := k.Golden(block, inputs)
			if err != nil {
				t.Fatalf("%s %v: %v", k.Name, block, err)
			}
			if err := CompareOutputs(want, got); err != nil {
				t.Errorf("%s %v golden: %v", k.Name, block, err)
			}
			d, err := k.BuildDFG(block)
			if err != nil {
				t.Fatalf("%s %v: %v", k.Name, block, err)
			}
			dout, err := ExecuteDFG(k, d, inputs)
			if err != nil {
				t.Fatalf("%s %v: %v", k.Name, block, err)
			}
			if err := CompareOutputs(want, dout); err != nil {
				t.Errorf("%s %v dfg: %v", k.Name, block, err)
			}
		}
	}
}

func TestAtIndexAndBeforePredicates(t *testing.T) {
	block := []int{5, 5}
	if !AtIndex(0, 3).Eval(ir.IterVec{3, 1}, block) {
		t.Error("AtIndex(0,3) at i=3 should hold")
	}
	if AtIndex(0, 3).Eval(ir.IterVec{2, 1}, block) {
		t.Error("AtIndex(0,3) at i=2 should not hold")
	}
	if !Before(1, 2).Eval(ir.IterVec{0, 1}, block) {
		t.Error("Before(1,2) at j=1 should hold")
	}
	if Before(1, 2).Eval(ir.IterVec{0, 2}, block) {
		t.Error("Before(1,2) at j=2 should not hold")
	}
}

// Property: DFG load/store node counts follow the boundary structure —
// for GEMM, loads of A appear only at j==0 (b1×b3 of them), B at i==0,
// and stores at k==last (b1×b2).
func TestGEMMBoundaryAccessCounts(t *testing.T) {
	k := GEMM()
	block := []int{3, 4, 5}
	d, err := k.BuildDFG(block)
	if err != nil {
		t.Fatal(err)
	}
	loadsA, loadsB, stores := 0, 0, 0
	for _, n := range d.Nodes {
		switch {
		case n.Kind == ir.OpLoad && n.Tensor == "A":
			loadsA++
			if n.Iter[1] != 0 {
				t.Errorf("A load at %v, want j==0", n.Iter)
			}
		case n.Kind == ir.OpLoad && n.Tensor == "B":
			loadsB++
			if n.Iter[0] != 0 {
				t.Errorf("B load at %v, want i==0", n.Iter)
			}
		case n.Kind == ir.OpStore:
			stores++
			if n.Iter[2] != block[2]-1 {
				t.Errorf("store at %v, want k==last", n.Iter)
			}
		}
	}
	if loadsA != 3*5 || loadsB != 4*5 || stores != 3*4 {
		t.Errorf("loadsA=%d loadsB=%d stores=%d, want 15/20/12", loadsA, loadsB, stores)
	}
}
