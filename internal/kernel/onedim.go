package kernel

import "himap/internal/ir"

// One-dimensional kernels from Table I's left columns. HiMap's virtual
// systolic mapping brings no benefit here (§VI: "for these two types of
// kernels ... we can apply existing software pipelining techniques");
// they exist so the dispatcher (himap.CompileAuto) can demonstrate the
// paper's kernel-triage guidance end to end, mapped by the conventional
// modulo-scheduling baseline.

// DOTPROD returns a 1-D reduction with a loop-carried dependence:
// s += A[i] * B[i], the shape of Table I's "with dependency, Dim = 1"
// kernels (spmv, gesummv, ...).
func DOTPROD() *Kernel {
	k := &Kernel{
		Name:     "DOTPROD",
		Desc:     "dot product (1-D reduction)",
		Suite:    "custom",
		Dim:      1,
		MinBlock: 2,
		Tensors: []TensorSpec{
			{Name: "A", Dims: func(b []int) []int { return []int{b[0]} }},
			{Name: "B", Dims: func(b []int) []int { return []int{b[0]} }},
			{Name: "S", Out: true, Dims: func(b []int) []int { return []int{1} }},
		},
	}
	i := AM(1, []int{1, 0})
	k.Body = []BodyOp{
		{Name: "mul", Kind: ir.OpMul, A: Fixed(Mem("A", i)), B: Fixed(Mem("B", i))},
		{Name: "acc", Kind: ir.OpAdd, A: Fixed(Same(0)),
			B:      In(Case{First(0), Const(0)}, Case{Always(), Dep(1, 1)}),
			Stores: []StoreRule{{When: Last(0), Tensor: "S", Map: AM(1, []int{0, 0})}}},
	}
	return k
}

// RELU returns a fully parallel element-wise kernel, the shape of
// Table I's "no inter-iteration dependency" column.
func RELU() *Kernel {
	k := &Kernel{
		Name:     "RELU",
		Desc:     "rectified linear unit (element-wise)",
		Suite:    "MachSuite",
		Dim:      1,
		MinBlock: 2,
		Tensors: []TensorSpec{
			{Name: "X", Dims: func(b []int) []int { return []int{b[0]} }},
			{Name: "Y", Out: true, Dims: func(b []int) []int { return []int{b[0]} }},
		},
	}
	i := AM(1, []int{1, 0})
	k.Body = []BodyOp{
		{Name: "relu", Kind: ir.OpMax, A: Fixed(Mem("X", i)), B: Fixed(Const(0)),
			Stores: []StoreRule{{When: Always(), Tensor: "Y", Map: i}}},
	}
	return k
}
