package kernel

import (
	"fmt"

	"himap/internal/ir"
)

// Body-op encodings for synthesized memory nodes. Load nodes feeding body
// op i's port p get BodyOp = -(1 + i*2 + p); store nodes for op i's rule r
// get BodyOp = -(1000 + i*8 + r). Negative BodyOps mark boundary/memory
// nodes and keep unique-iteration signatures deterministic.
func loadBodyOp(op, port int) int  { return -(1 + op*2 + port) }
func storeBodyOp(op, rule int) int { return -(1000 + op*8 + rule) }

// selectCase returns the first source whose guard holds at iter.
func selectCase(in Input, iter ir.IterVec, block []int) (Source, error) {
	for _, c := range in {
		if c.When.Eval(iter, block) {
			return c.Src, nil
		}
	}
	return Source{}, fmt.Errorf("kernel: no case matches at iteration %v", iter)
}

// BuildDFG fully unrolls the kernel over the block and returns the DFG of
// §IV. Every dependence whose producer falls outside the block must be
// covered by a guard selecting a memory or constant source; the builder
// returns an error otherwise (the specification is then ill-formed).
func (k *Kernel) BuildDFG(block []int) (*ir.DFG, error) {
	if err := k.Validate(); err != nil {
		return nil, err
	}
	if len(block) != k.Dim {
		return nil, fmt.Errorf("kernel %s: block %v has %d dims, want %d", k.Name, block, len(block), k.Dim)
	}
	for d, b := range block {
		if d < len(k.FixedBlock) && k.FixedBlock[d] > 0 {
			if b != k.FixedBlock[d] {
				return nil, fmt.Errorf("kernel %s: block dim %d is %d but pinned to %d", k.Name, d, b, k.FixedBlock[d])
			}
			continue
		}
		min := k.MinBlock
		if min == 0 {
			min = 1
		}
		if b < min {
			return nil, fmt.Errorf("kernel %s: block dim %d is %d, min %d", k.Name, d, b, min)
		}
	}
	d := ir.NewDFG(block)
	npts := ir.BoxSize(block)
	nodeOf := make([][]int, len(k.Body)) // body op -> point index -> node ID
	for i := range nodeOf {
		nodeOf[i] = make([]int, npts)
		for j := range nodeOf[i] {
			nodeOf[i][j] = -1
		}
	}

	var buildErr error
	ir.ForEachPoint(block, func(pt ir.IterVec) {
		if buildErr != nil {
			return
		}
		iter := pt.Clone()
		pi := ir.PointIndex(iter, block)
		for opIdx, op := range k.Body {
			n := d.AddNode(ir.Node{
				Kind:   op.Kind,
				Name:   op.Name,
				BodyOp: opIdx,
				Iter:   iter,
			})
			nodeOf[opIdx][pi] = n.ID

			wire := func(in Input, port int) {
				if buildErr != nil {
					return
				}
				src, err := selectCase(in, iter, block)
				if err != nil {
					buildErr = fmt.Errorf("kernel %s op %s port %d: %v", k.Name, op.Name, port, err)
					return
				}
				switch src.Kind {
				case SrcDep:
					prodIter := iter
					if len(src.Dist) > 0 {
						prodIter = iter.Sub(src.Dist)
					}
					if !prodIter.InBox(block) {
						buildErr = fmt.Errorf("kernel %s op %s at %v: dependence source %v outside block %v (missing boundary guard)",
							k.Name, op.Name, iter, prodIter, block)
						return
					}
					pid := nodeOf[src.Op][ir.PointIndex(prodIter, block)]
					if pid < 0 {
						buildErr = fmt.Errorf("kernel %s op %s at %v: producer op %d at %v not yet created (non-causal order)",
							k.Name, op.Name, iter, src.Op, prodIter)
						return
					}
					d.AddEdge(pid, n.ID, port)
				case SrcMem:
					ld := d.AddNode(ir.Node{
						Kind:   ir.OpLoad,
						Name:   "ld." + src.Tensor,
						BodyOp: loadBodyOp(opIdx, port),
						Iter:   iter,
						Tensor: src.Tensor,
						Index:  src.Map.Apply(iter),
					})
					d.AddEdge(ld.ID, n.ID, port)
				case SrcConst:
					if port != 1 {
						buildErr = fmt.Errorf("kernel %s op %s: constant sources are only supported on port 1", k.Name, op.Name)
						return
					}
					n.HasConst = true
					n.Const = src.Value
				}
			}
			ar := op.Kind.Arity()
			if ar >= 1 {
				wire(op.A, 0)
			}
			if ar >= 2 {
				wire(op.B, 1)
			}
			for ri, st := range op.Stores {
				if !st.When.Eval(iter, block) {
					continue
				}
				sn := d.AddNode(ir.Node{
					Kind:   ir.OpStore,
					Name:   "st." + st.Tensor,
					BodyOp: storeBodyOp(opIdx, ri),
					Iter:   iter,
					Tensor: st.Tensor,
					Index:  st.Map.Apply(iter),
				})
				d.AddEdge(n.ID, sn.ID, 0)
			}
		}
	})
	if buildErr != nil {
		return nil, buildErr
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("kernel %s: generated DFG invalid: %v", k.Name, err)
	}
	return d, nil
}

// BuildISDG unrolls the kernel and clusters the DFG by iteration.
func (k *Kernel) BuildISDG(block []int) (*ir.DFG, *ir.ISDG, error) {
	d, err := k.BuildDFG(block)
	if err != nil {
		return nil, nil, err
	}
	g, err := ir.BuildISDG(d)
	if err != nil {
		return nil, nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, nil, err
	}
	return d, g, nil
}

// GenericIDFG returns the IDFG of an interior iteration: the per-iteration
// graph whose inputs all arrive from neighboring iterations. It is the
// D” = getIDFG(K) of Algorithm 1 line 2, used for the IDFG → sub-CGRA
// mapping step. The interior point of a small (3 per dimension, clamped to
// MinBlock) unrolled block is used.
func (k *Kernel) GenericIDFG() (*ir.IDFG, error) {
	b := 3
	if k.MinBlock > b {
		b = k.MinBlock
	}
	block := k.UniformBlock(b)
	_, g, err := k.BuildISDG(block)
	if err != nil {
		return nil, err
	}
	center := make(ir.IterVec, k.Dim)
	for i := range center {
		center[i] = 1
	}
	c := g.ClusterAt(center)
	if c == nil {
		return nil, fmt.Errorf("kernel %s: no interior cluster at %v", k.Name, center)
	}
	return ir.ExtractIDFG(g, c.ID), nil
}
