package serve

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"
)

// Peer-forwarding headers. forwardedHeader marks a relayed request so
// the owner always serves it locally — a request is forwarded at most
// once, no matter how stale a replica's ring is. peerHeader on a
// response names the replica that actually served it.
const (
	forwardedHeader = "X-Himap-Forwarded"
	peerHeader      = "X-Himap-Peer"
)

// vnodesPerPeer spreads each replica over the hash circle so ownership
// stays roughly uniform for small clusters.
const vnodesPerPeer = 64

// ring is a consistent-hash circle over the cluster's peer URLs. Every
// replica builds the identical ring from the identical Peers list, so
// all replicas agree on which one owns a cache key without any
// coordination. Ownership moves only for keys whose arc changes when a
// peer joins or leaves.
type ring struct {
	self   string
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	peer string
}

// newRing validates the cluster shape and builds the circle. Peers must
// be non-empty base URLs without trailing slashes; Self must appear in
// Peers (a replica has to know which entry is itself, or it would
// forward requests to its own listener).
func newRing(peers []string, self string) (*ring, error) {
	if self == "" {
		return nil, fmt.Errorf("shard: Peers set but Self empty")
	}
	seen := map[string]bool{}
	selfFound := false
	r := &ring{self: self}
	for _, p := range peers {
		if p == "" || strings.HasSuffix(p, "/") {
			return nil, fmt.Errorf("shard: peer %q must be a base URL without trailing slash", p)
		}
		if seen[p] {
			return nil, fmt.Errorf("shard: duplicate peer %q", p)
		}
		seen[p] = true
		if p == self {
			selfFound = true
		}
		for v := 0; v < vnodesPerPeer; v++ {
			sum := sha256.Sum256([]byte(fmt.Sprintf("%s#%d", p, v)))
			r.points = append(r.points, ringPoint{
				hash: binary.BigEndian.Uint64(sum[:8]),
				peer: p,
			})
		}
	}
	if !selfFound {
		return nil, fmt.Errorf("shard: Self %q not in Peers %v", self, peers)
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].peer < r.points[j].peer
	})
	return r, nil
}

// owner returns the peer URL owning key: the first ring point at or
// after the key's hash, wrapping at the top of the circle.
func (r *ring) owner(key string) string {
	sum := sha256.Sum256([]byte(key))
	h := binary.BigEndian.Uint64(sum[:8])
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].peer
}

// ownsLocally reports whether this replica should resolve key itself:
// it is the ring owner, or the request was already forwarded once.
func (r *ring) ownsLocally(key string, req *http.Request) bool {
	if req.Header.Get(forwardedHeader) != "" {
		return true
	}
	return r.owner(key) == r.self
}

// Owner exposes the ring's ownership decision (empty when the server
// runs unsharded) so tests and load tools can predict routing.
func (s *Server) Owner(key string) string {
	if s.ring == nil {
		return ""
	}
	return s.ring.owner(key)
}

// forward relays a compile request to its shard owner and streams the
// peer's response through, tagging it with the serving peer's URL. It
// returns false — without writing anything — when the owner cannot
// answer (connection refused, transport error, or a 5xx), so the caller
// falls back to local compute: a dead peer degrades the cluster to
// per-replica caching, it never fails a request.
func (s *Server) forward(w http.ResponseWriter, r *http.Request, wire *CompileRequestWire, key string) bool {
	owner := s.ring.owner(key)
	body, err := json.Marshal(wire)
	if err != nil {
		return false
	}
	// The relay deadline covers the peer's whole compile plus headroom;
	// the request's own context still cancels the relay if the client
	// goes away.
	ctx, cancel := context.WithTimeout(r.Context(), s.timeout(wire.Options)+10*time.Second)
	defer cancel()
	preq, err := http.NewRequestWithContext(ctx, http.MethodPost, owner+"/v1/compile", bytes.NewReader(body))
	if err != nil {
		return false
	}
	preq.Header.Set("Content-Type", "application/json")
	preq.Header.Set(forwardedHeader, s.ring.self)
	resp, err := s.client.Do(preq)
	if err != nil {
		s.metrics.forwardFallbacks.Add(1)
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 500 {
		io.Copy(io.Discard, resp.Body)
		s.metrics.forwardFallbacks.Add(1)
		return false
	}
	s.metrics.forwarded.Add(1)
	w.Header().Set("Content-Type", "application/json")
	if cs := resp.Header.Get("X-Himap-Cache"); cs != "" {
		w.Header().Set("X-Himap-Cache", cs)
	}
	w.Header().Set(peerHeader, owner)
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
	return true
}
