package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"himap"
	"himap/internal/diag"
)

// --- wire schema v2 / v1 compatibility -------------------------------

// TestSchemaVersionWindow mirrors the arch-config version table: the
// server speaks MinSchemaVersion..SchemaVersion, rejects everything
// else, and answers a pinned request in the pinned shape.
func TestSchemaVersionWindow(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name        string
		pin         int // 0 = omitted
		wantStatus  int
		wantVersion int // schema_version stamped on the body
	}{
		{"omitted means current", 0, 200, SchemaVersion},
		{"v1 accepted, answered as v1", 1, 200, 1},
		{"current pin accepted", 2, 200, 2},
		{"future rejected", 3, 400, SchemaVersion},
		{"negative rejected", -1, 400, SchemaVersion},
	}
	for _, tc := range cases {
		body := `{"kernel":"MVT","fabric":{"rows":4,"cols":4},"options":{}}`
		if tc.pin != 0 {
			body = fmt.Sprintf(`{"schema_version":%d,"kernel":"MVT","fabric":{"rows":4,"cols":4},"options":{}}`, tc.pin)
		}
		resp, b := postCompile(t, ts.URL, body)
		if resp.StatusCode != tc.wantStatus {
			t.Errorf("%s: status %d, want %d: %s", tc.name, resp.StatusCode, tc.wantStatus, b)
			continue
		}
		var probe struct {
			SchemaVersion int `json:"schema_version"`
		}
		if err := json.Unmarshal(b, &probe); err != nil {
			t.Errorf("%s: body not JSON: %v", tc.name, err)
			continue
		}
		if probe.SchemaVersion != tc.wantVersion {
			t.Errorf("%s: body schema_version %d, want %d", tc.name, probe.SchemaVersion, tc.wantVersion)
		}
	}
}

// TestV1ResponseShape pins the compatibility contract: a version-1
// request receives the version-1 body — same mapping, no v2-only fields
// (mapper, optimality on success; error_code on failure).
func TestV1ResponseShape(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	_, v2body := postCompile(t, ts.URL, `{"kernel":"MVT","fabric":{"rows":4,"cols":4},"options":{"mapper":"exact","block":[2,2]}}`)
	resp, v1body := postCompile(t, ts.URL, `{"schema_version":1,"kernel":"MVT","fabric":{"rows":4,"cols":4},"options":{"mapper":"exact","block":[2,2]}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("v1 compile status %d: %s", resp.StatusCode, v1body)
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(v1body, &raw); err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"mapper", "optimality"} {
		if _, ok := raw[field]; ok {
			t.Errorf("v1 body carries v2 field %q", field)
		}
	}
	var v1, v2 CompileResponse
	if err := json.Unmarshal(v1body, &v1); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(v2body, &v2); err != nil {
		t.Fatal(err)
	}
	if v2.Mapper != "exact" || v2.Optimality == nil {
		t.Errorf("v2 body lost its v2 fields: mapper=%q optimality=%v", v2.Mapper, v2.Optimality)
	}
	if v1.II != v2.II || !bytes.Equal(v1.Bitstream, v2.Bitstream) || !bytes.Equal(v1.Config, v2.Config) {
		t.Error("v1 and v2 answers carry different mappings — the version changes shape, never content")
	}

	// Error shape: v1 has no error_code, v2 names the diag class.
	_, v1err := postCompile(t, ts.URL, `{"schema_version":1,"kernel":"NOPE","fabric":{"rows":4,"cols":4},"options":{}}`)
	_, v2err := postCompile(t, ts.URL, `{"kernel":"NOPE","fabric":{"rows":4,"cols":4},"options":{}}`)
	var e1, e2 ErrorResponse
	if err := json.Unmarshal(v1err, &e1); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(v2err, &e2); err != nil {
		t.Fatal(err)
	}
	if e1.SchemaVersion != 1 || e1.Error.ErrorCode != "" {
		t.Errorf("v1 error body = %+v, want schema 1 without error_code", e1)
	}
	if e2.Error.ErrorCode != CodeUnknownKernel {
		t.Errorf("v2 error_code = %q, want %q", e2.Error.ErrorCode, CodeUnknownKernel)
	}
}

// TestWireErrorCodeTotal asserts the diag-sentinel → error_code mapping
// is total and injective, so a new failure class cannot ship unmapped.
func TestWireErrorCodeTotal(t *testing.T) {
	seen := map[string]string{}
	for _, class := range diag.Classes() {
		code, ok := diagErrorCodes[class]
		if !ok || code == "" {
			t.Errorf("diag class %q has no wire error_code — add it to diagErrorCodes", class)
			continue
		}
		if prev, dup := seen[code]; dup {
			t.Errorf("error_code %q maps from both %q and %q", code, prev, class)
		}
		seen[code] = class.Error()
		// The rendering path must agree with the table, including for
		// wrapped StageErrors.
		if got := WireErrorCode(diag.Failf(class, "probe")); got != code {
			t.Errorf("WireErrorCode(StageError{%q}) = %q, want %q", class, got, code)
		}
	}
	if len(seen) != len(diagErrorCodes) {
		t.Errorf("diagErrorCodes has %d entries, diag.Classes() %d — the table carries unknown sentinels", len(diagErrorCodes), len(seen))
	}
	// Serve-level sentinels keep their own codes.
	for err, want := range map[error]string{
		ErrOverloaded:            CodeOverloaded,
		ErrUnknownKernel:         CodeUnknownKernel,
		ErrBadRequest:            CodeBadRequest,
		context.DeadlineExceeded: "canceled",
		io.ErrUnexpectedEOF:      CodeInternal,
	} {
		if got := WireErrorCode(err); got != want {
			t.Errorf("WireErrorCode(%v) = %q, want %q", err, got, want)
		}
	}
}

// --- disk store under the LRU ----------------------------------------

// TestStoreRestartReplay is the persistence tentpole's contract test: a
// server restarted over the same store directory replays byte-identical
// responses without recompiling, and a corrupt entry is recompiled, not
// served.
func TestStoreRestartReplay(t *testing.T) {
	dir := t.TempDir()
	req := kernelRequest("MVT", 4, 4)

	s1, ts1 := newTestServer(t, Config{StoreDir: dir})
	resp, body1 := postCompile(t, ts1.URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold compile: %d %s", resp.StatusCode, body1)
	}
	if n := s1.Metrics().Snapshot().Compiles; n != 1 {
		t.Fatalf("cold compiles = %d, want 1", n)
	}
	ts1.Close()

	// "Restart": a fresh server over the same directory. The memory LRU
	// is empty, so the hit must come from the disk store.
	s2, ts2 := newTestServer(t, Config{StoreDir: dir})
	resp, body2 := postCompile(t, ts2.URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replay compile: %d %s", resp.StatusCode, body2)
	}
	if got := resp.Header.Get("X-Himap-Cache"); got != "store" {
		t.Errorf("replay cache header %q, want store", got)
	}
	if !bytes.Equal(body1, body2) {
		t.Error("restarted server served different bytes for the same request")
	}
	if n := s2.Metrics().Snapshot().Compiles; n != 0 {
		t.Errorf("replay ran %d compiles, want 0", n)
	}
	// A store hit promotes into memory: the next request is a plain hit.
	resp, _ = postCompile(t, ts2.URL, req)
	if got := resp.Header.Get("X-Himap-Cache"); got != "hit" {
		t.Errorf("post-promotion cache header %q, want hit", got)
	}

	// Corrupt the stored entry and restart again: the server must detect,
	// evict, and recompile — same bytes, one real compile.
	var wire CompileRequestWire
	if err := json.Unmarshal([]byte(req), &wire); err != nil {
		t.Fatal(err)
	}
	key := CacheKey(&wire)
	if err := s2.Store().CorruptForTest(key); err != nil {
		t.Fatal(err)
	}
	ts2.Close()

	s3, ts3 := newTestServer(t, Config{StoreDir: dir})
	resp, body3 := postCompile(t, ts3.URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-corruption compile: %d %s", resp.StatusCode, body3)
	}
	if got := resp.Header.Get("X-Himap-Cache"); got != "miss" {
		t.Errorf("post-corruption cache header %q, want miss (recompile)", got)
	}
	if !bytes.Equal(body1, body3) {
		t.Error("recompile after corruption produced different bytes")
	}
	if n := s3.Metrics().Snapshot().Compiles; n != 1 {
		t.Errorf("post-corruption compiles = %d, want 1 (recompile)", n)
	}
	if st := s3.Store().Stats(); st.Corrupt != 1 {
		t.Errorf("store corrupt counter = %d, want 1", st.Corrupt)
	}
}

// --- consistent-hash sharding ----------------------------------------

// twoReplicaCluster starts two servers that know each other as peers.
// Compile funcs are stubbed to tag which replica executed, so tests can
// observe routing without parsing mappings.
func twoReplicaCluster(t *testing.T) (a, b *Server, tsA, tsB *httptest.Server) {
	t.Helper()
	tsA = httptest.NewUnstartedServer(nil)
	tsB = httptest.NewUnstartedServer(nil)
	urlA := "http://" + tsA.Listener.Addr().String()
	urlB := "http://" + tsB.Listener.Addr().String()
	peers := []string{urlA, urlB}
	var err error
	if a, err = New(Config{Peers: peers, Self: urlA}); err != nil {
		t.Fatal(err)
	}
	if b, err = New(Config{Peers: peers, Self: urlB}); err != nil {
		t.Fatal(err)
	}
	tag := func(name string) func(context.Context, himap.Request) (*himap.Result, error) {
		return func(ctx context.Context, req himap.Request) (*himap.Result, error) {
			return nil, diag.Failf(diag.ErrRouteCongested, "executed by %s", name)
		}
	}
	a.SetCompileFunc(tag("replica-a"))
	b.SetCompileFunc(tag("replica-b"))
	tsA.Config.Handler = a.Handler()
	tsB.Config.Handler = b.Handler()
	tsA.Start()
	tsB.Start()
	t.Cleanup(tsA.Close)
	t.Cleanup(tsB.Close)
	return a, b, tsA, tsB
}

// keyOwnedBy finds a compile request whose cache key the given peer
// owns, by scanning fabric sizes. Both replicas compute identical rings,
// so ownership is a pure function of the request.
func keyOwnedBy(t *testing.T, s *Server, owner string) string {
	t.Helper()
	for side := 4; side <= 16; side++ {
		req := kernelRequest("GEMM", side, side)
		var wire CompileRequestWire
		if err := json.Unmarshal([]byte(req), &wire); err != nil {
			t.Fatal(err)
		}
		if s.Owner(CacheKey(&wire)) == owner {
			return req
		}
	}
	t.Fatalf("no probe request hashed to %s", owner)
	return ""
}

// TestShardForwarding: a request landing on the non-owner replica is
// relayed to its owner exactly once, and the response names the peer
// that served it.
func TestShardForwarding(t *testing.T) {
	a, b, tsA, tsB := twoReplicaCluster(t)
	req := keyOwnedBy(t, a, "http://"+tsB.Listener.Addr().String())

	// Send to A; B owns the key, so A must relay.
	resp, body := postCompile(t, tsA.URL, req)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422 (stub): %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "executed by replica-b") {
		t.Errorf("body %s, want execution on replica-b", body)
	}
	if got := resp.Header.Get(peerHeader); got != "http://"+tsB.Listener.Addr().String() {
		t.Errorf("peer header %q, want owner URL", got)
	}
	if n := a.Metrics().Snapshot().Forwarded; n != 1 {
		t.Errorf("A forwarded = %d, want 1", n)
	}
	if n := b.Metrics().Snapshot().ForwardedServed; n != 1 {
		t.Errorf("B forwarded_served = %d, want 1", n)
	}
	// Sending the same request straight to its owner B involves no relay.
	resp, body = postCompile(t, tsB.URL, req)
	if resp.Header.Get(peerHeader) != "" || !strings.Contains(string(body), "executed by replica-b") {
		t.Errorf("owner-direct request relayed: peer=%q body=%s", resp.Header.Get(peerHeader), body)
	}
	if n := a.Metrics().Snapshot().Forwarded; n != 1 {
		t.Errorf("A forwarded grew to %d on owner-direct traffic", n)
	}
}

// TestShardPeerDownDegrades: with the owner replica dead, the non-owner
// serves the request locally — degrade, never fail.
func TestShardPeerDownDegrades(t *testing.T) {
	a, _, tsA, tsB := twoReplicaCluster(t)
	req := keyOwnedBy(t, a, "http://"+tsB.Listener.Addr().String())
	tsB.Close() // owner gone

	resp, body := postCompile(t, tsA.URL, req)
	if resp.StatusCode >= 500 {
		t.Fatalf("request failed with %d when the peer died: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "executed by replica-a") {
		t.Errorf("body %s, want local fallback on replica-a", body)
	}
	snap := a.Metrics().Snapshot()
	if snap.ForwardFallbacks != 1 {
		t.Errorf("forward_fallbacks = %d, want 1", snap.ForwardFallbacks)
	}
	if snap.Forwarded != 0 {
		t.Errorf("forwarded = %d, want 0 (the relay never succeeded)", snap.Forwarded)
	}
}

// --- SSE stage-event streaming ---------------------------------------

type sseEvent struct {
	name string
	data string
}

func readSSE(t *testing.T, r io.Reader) []sseEvent {
	t.Helper()
	var events []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case line == "":
			if cur.name != "" {
				events = append(events, cur)
			}
			cur = sseEvent{}
		}
	}
	return events
}

func streamCompileRequest(t *testing.T, url, body string) (*http.Response, []sseEvent) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/compile", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	return resp, readSSE(t, resp.Body)
}

// TestStreamStageEvents pins the stream grammar: stage events in tracer
// order, exactly one terminal result event, and a result datum equal to
// the non-streaming body.
func TestStreamStageEvents(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	req := kernelRequest("MVT", 4, 4)

	resp, events := streamCompileRequest(t, ts.URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content-type %q", ct)
	}
	if len(events) < 2 {
		t.Fatalf("stream carried %d events, want stages + result", len(events))
	}
	for i, ev := range events[:len(events)-1] {
		if ev.name != StreamEventStage {
			t.Errorf("event %d = %q, want %q", i, ev.name, StreamEventStage)
		}
		var sw StageEventWire
		if err := json.Unmarshal([]byte(ev.data), &sw); err != nil || sw.Stage == "" {
			t.Errorf("event %d datum %q: err=%v", i, ev.data, err)
		}
	}
	last := events[len(events)-1]
	if last.name != StreamEventResult {
		t.Fatalf("terminal event = %q, want %q", last.name, StreamEventResult)
	}

	// The result datum must equal the plain-HTTP body of the same request
	// (modulo the trailing newline). Use a fresh server so the cache
	// cannot mask a rendering difference.
	_, ts2 := newTestServer(t, Config{})
	httpResp, plain := postCompile(t, ts2.URL, req)
	if httpResp.StatusCode != http.StatusOK {
		t.Fatalf("plain compile: %d", httpResp.StatusCode)
	}
	if last.data != string(bytes.TrimRight(plain, "\n")) {
		t.Error("streamed result differs from the plain-HTTP body")
	}

	// Warm cache: the stream is a lone result event served from cache.
	resp, events = streamCompileRequest(t, ts.URL, req)
	if got := resp.Header.Get("X-Himap-Cache"); got != "hit" {
		t.Errorf("warm stream cache header %q, want hit", got)
	}
	if len(events) != 1 || events[0].name != StreamEventResult {
		t.Errorf("warm stream = %d events (first %q), want exactly one result", len(events), events[0].name)
	}
	if n := s.Metrics().Snapshot().Streams; n != 2 {
		t.Errorf("streams = %d, want 2", n)
	}
}

// TestStreamErrorEvent: a failing compile ends the stream with one
// error event carrying the same error body the plain request would get.
func TestStreamErrorEvent(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	s.SetCompileFunc(func(ctx context.Context, req himap.Request) (*himap.Result, error) {
		return nil, diag.Failf(diag.ErrRouteCongested, "stubbed congestion")
	})
	resp, events := streamCompileRequest(t, ts.URL, kernelRequest("GEMM", 4, 4))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d (SSE commits 200 before the compile)", resp.StatusCode)
	}
	if len(events) == 0 || events[len(events)-1].name != StreamEventError {
		t.Fatalf("events %+v, want terminal error event", events)
	}
	var er ErrorResponse
	if err := json.Unmarshal([]byte(events[len(events)-1].data), &er); err != nil {
		t.Fatal(err)
	}
	if er.Error.Code != "infeasible" || er.Error.ErrorCode != "route_congested" {
		t.Errorf("error event body %+v, want infeasible/route_congested", er.Error)
	}
}

// TestStreamRequiresV2: the stream is a v2 feature; a v1 pin is refused
// up front as a plain HTTP error.
func TestStreamRequiresV2(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, events := streamCompileRequest(t, ts.URL,
		`{"schema_version":1,"kernel":"MVT","fabric":{"rows":4,"cols":4},"options":{}}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	if len(events) != 0 {
		t.Errorf("v1 stream produced SSE events: %+v", events)
	}
}

// --- batch compile ----------------------------------------------------

// TestBatchCompile: items answer individually (success and typed error),
// the success result equals the standalone body, and duplicates hit the
// cache.
func TestBatchCompile(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	batch := `{"items":[
		{"kernel":"MVT","fabric":{"rows":4,"cols":4},"options":{}},
		{"kernel":"NOPE","fabric":{"rows":4,"cols":4},"options":{}},
		{"kernel":"MVT","fabric":{"rows":4,"cols":4},"options":{}}
	],"options":{}}`
	resp, err := http.Post(ts.URL+"/v1/compile-batch", "application/json", strings.NewReader(batch))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %s", resp.StatusCode, body)
	}
	var br BatchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if br.SchemaVersion != SchemaVersion || len(br.Items) != 3 {
		t.Fatalf("batch = schema %d, %d items", br.SchemaVersion, len(br.Items))
	}
	if !br.Items[0].OK || br.Items[0].Status != 200 {
		t.Errorf("item 0 = %+v, want ok/200", br.Items[0])
	}
	if br.Items[1].OK || br.Items[1].Status != 404 || br.Items[1].Error == nil || br.Items[1].Error.Code != "unknown_kernel" {
		t.Errorf("item 1 = %+v, want 404 unknown_kernel", br.Items[1])
	}
	if !br.Items[2].OK {
		t.Errorf("item 2 = %+v, want ok (duplicate of item 0)", br.Items[2])
	}
	if !bytes.Equal(br.Items[0].Result, br.Items[2].Result) {
		t.Error("duplicate items returned different bytes")
	}

	// Item results are the standalone body minus the trailing newline
	// (decode both: json.Marshal re-compacts RawMessage, so raw bytes of
	// the envelope may differ from the standalone rendering).
	httpResp, standalone := postCompile(t, ts.URL, kernelRequest("MVT", 4, 4))
	if httpResp.StatusCode != http.StatusOK {
		t.Fatal("standalone compile failed")
	}
	if got := httpResp.Header.Get("X-Himap-Cache"); got != "hit" {
		t.Errorf("standalone after batch: cache header %q, want hit (batch populated the cache)", got)
	}
	var fromBatch, fromHTTP CompileResponse
	if err := json.Unmarshal(br.Items[0].Result, &fromBatch); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(standalone, &fromHTTP); err != nil {
		t.Fatal(err)
	}
	if fromBatch.II != fromHTTP.II || !bytes.Equal(fromBatch.Bitstream, fromHTTP.Bitstream) {
		t.Error("batch item result differs from the standalone response")
	}

	if got := resp.Header.Get("X-Himap-Batch-Cache"); !strings.Contains(got, "hits=1") {
		t.Errorf("batch cache header %q, want hits=1 (the duplicate)", got)
	}
	snap := s.Metrics().Snapshot()
	if snap.Batches != 1 || snap.BatchItems != 3 || snap.Compiles != 1 {
		t.Errorf("batches=%d items=%d compiles=%d, want 1/3/1", snap.Batches, snap.BatchItems, snap.Compiles)
	}
}

// TestBatchRejections: the envelope is v2-only and items may not pin
// their own version.
func TestBatchRejections(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBatchItems: 2})
	cases := []struct {
		name string
		body string
	}{
		{"v1 envelope", `{"schema_version":1,"items":[{"kernel":"MVT","fabric":{"rows":4,"cols":4},"options":{}}],"options":{}}`},
		{"empty items", `{"items":[],"options":{}}`},
		{"item pins version", `{"items":[{"schema_version":2,"kernel":"MVT","fabric":{"rows":4,"cols":4},"options":{}}],"options":{}}`},
		{"too many items", `{"items":[
			{"kernel":"MVT","fabric":{"rows":4,"cols":4},"options":{}},
			{"kernel":"MVT","fabric":{"rows":5,"cols":5},"options":{}},
			{"kernel":"MVT","fabric":{"rows":6,"cols":6},"options":{}}
		],"options":{}}`},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/v1/compile-batch", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400: %s", tc.name, resp.StatusCode, b)
		}
	}
}
