package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"himap/internal/diag"
	"himap/internal/store"
)

// stageBucketsMS are the upper bounds (milliseconds, inclusive) of the
// per-stage latency histogram buckets; an implicit +Inf bucket follows.
var stageBucketsMS = []int64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

// stageHist is one per-stage latency histogram: lock-free on the record
// path (every bucket and the count/sum are atomics).
type stageHist struct {
	count   atomic.Int64
	sumNS   atomic.Int64
	errs    atomic.Int64
	buckets []atomic.Int64 // len(stageBucketsMS)+1, last = overflow
}

func (h *stageHist) observe(wall time.Duration, failed bool) {
	h.count.Add(1)
	h.sumNS.Add(int64(wall))
	if failed {
		h.errs.Add(1)
	}
	ms := wall.Milliseconds()
	idx := len(stageBucketsMS)
	for i, le := range stageBucketsMS {
		if ms <= le {
			idx = i
			break
		}
	}
	h.buckets[idx].Add(1)
}

// Metrics is the service's counter registry. All request-path updates
// are atomic increments; the stage map only grows (one entry per
// pipeline stage name) under a mutex taken at most once per new stage.
type Metrics struct {
	start time.Time

	requests    atomic.Int64 // POST /v1/compile + /v1/explore bodies accepted for dispatch
	explores    atomic.Int64 // POST /v1/explore requests
	compiles    atomic.Int64 // compiles actually executed (post-coalescing)
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
	coalesced   atomic.Int64 // requests served by another request's compile
	rejected    atomic.Int64 // 429 admission rejections
	failures    atomic.Int64 // compiles that returned an error
	badRequests atomic.Int64 // 4xx request rejections (not admission)

	forwarded        atomic.Int64 // requests relayed to their shard owner
	forwardFallbacks atomic.Int64 // forwards that degraded to local compute
	forwardedServed  atomic.Int64 // requests served on behalf of a peer
	batches          atomic.Int64 // POST /v1/compile-batch envelopes accepted
	batchItems       atomic.Int64 // batch items processed
	streams          atomic.Int64 // SSE stage-event streams started

	inFlight atomic.Int64 // compiles currently executing
	queued   atomic.Int64 // requests admitted but waiting for a worker slot

	mu     sync.Mutex
	stages map[string]*stageHist
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		start:  time.Now(), //lint:ignore determinism uptime bookkeeping only; never reaches a response body or mapping
		stages: map[string]*stageHist{},
	}
}

func (m *Metrics) stage(name string) *stageHist {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.stages[name]
	if !ok {
		h = &stageHist{buckets: make([]atomic.Int64, len(stageBucketsMS)+1)}
		m.stages[name] = h
	}
	return h
}

// Tracer returns a diag.Tracer feeding every pipeline span's wall time
// into the per-stage histograms. Safe for concurrent emission; attach it
// to compiles with diag.MultiTracer alongside any caller tracer.
func (m *Metrics) Tracer() diag.Tracer {
	return diag.TracerFunc(func(s diag.Span) {
		m.stage(s.Stage).observe(s.Wall, s.Err != "")
	})
}

// StageSnapshot is one stage's histogram in the JSON rendering.
type StageSnapshot struct {
	Count   int64   `json:"count"`
	Errors  int64   `json:"errors,omitempty"`
	TotalMS float64 `json:"total_ms"`
	// Buckets[i] counts spans with wall <= stageBucketsMS[i]; the final
	// entry is the overflow bucket.
	Buckets []int64 `json:"buckets"`
}

// Snapshot is the GET /metrics JSON body.
type Snapshot struct {
	SchemaVersion int     `json:"schema_version"`
	UptimeSeconds float64 `json:"uptime_seconds"`

	Requests    int64 `json:"requests"`
	Explores    int64 `json:"explores"`
	Compiles    int64 `json:"compiles"`
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	Coalesced   int64 `json:"coalesced"`
	Rejected    int64 `json:"rejected"`
	Failures    int64 `json:"failures"`
	BadRequests int64 `json:"bad_requests"`

	Forwarded        int64 `json:"forwarded"`
	ForwardFallbacks int64 `json:"forward_fallbacks"`
	ForwardedServed  int64 `json:"forwarded_served"`
	Batches          int64 `json:"batches"`
	BatchItems       int64 `json:"batch_items"`
	Streams          int64 `json:"streams"`

	InFlight int64 `json:"in_flight"`
	Queued   int64 `json:"queued"`

	CacheEntries int   `json:"cache_entries"`
	CacheBytes   int64 `json:"cache_bytes"`

	// Store is the disk store's counter snapshot; nil when the server
	// runs without one.
	Store *store.Stats `json:"store,omitempty"`

	BucketBoundsMS []int64                  `json:"bucket_bounds_ms"`
	Stages         map[string]StageSnapshot `json:"stages,omitempty"`
}

// Snapshot captures the registry. Cache occupancy is stamped by the
// server (the registry does not know the cache).
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{
		SchemaVersion: SchemaVersion,
		UptimeSeconds: time.Since(m.start).Seconds(),
		Requests:      m.requests.Load(),
		Explores:      m.explores.Load(),
		Compiles:      m.compiles.Load(),
		CacheHits:     m.cacheHits.Load(),
		CacheMisses:   m.cacheMisses.Load(),
		Coalesced:     m.coalesced.Load(),
		Rejected:      m.rejected.Load(),
		Failures:      m.failures.Load(),
		BadRequests:   m.badRequests.Load(),

		Forwarded:        m.forwarded.Load(),
		ForwardFallbacks: m.forwardFallbacks.Load(),
		ForwardedServed:  m.forwardedServed.Load(),
		Batches:          m.batches.Load(),
		BatchItems:       m.batchItems.Load(),
		Streams:          m.streams.Load(),

		InFlight: m.inFlight.Load(),
		Queued:   m.queued.Load(),

		BucketBoundsMS: stageBucketsMS,
		Stages:         map[string]StageSnapshot{},
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for name, h := range m.stages {
		ss := StageSnapshot{
			Count:   h.count.Load(),
			Errors:  h.errs.Load(),
			TotalMS: float64(h.sumNS.Load()) / 1e6,
			Buckets: make([]int64, len(h.buckets)),
		}
		for i := range h.buckets {
			ss.Buckets[i] = h.buckets[i].Load()
		}
		s.Stages[name] = ss
	}
	return s
}

// WriteText renders the snapshot in expvar-style "name value" lines,
// sorted, with per-stage histogram lines in Prometheus label form.
func (s Snapshot) WriteText(w io.Writer) {
	lines := []string{
		fmt.Sprintf("himapd_uptime_seconds %.3f", s.UptimeSeconds),
		fmt.Sprintf("himapd_requests_total %d", s.Requests),
		fmt.Sprintf("himapd_explores_total %d", s.Explores),
		fmt.Sprintf("himapd_compiles_total %d", s.Compiles),
		fmt.Sprintf("himapd_cache_hits_total %d", s.CacheHits),
		fmt.Sprintf("himapd_cache_misses_total %d", s.CacheMisses),
		fmt.Sprintf("himapd_coalesced_total %d", s.Coalesced),
		fmt.Sprintf("himapd_rejected_total %d", s.Rejected),
		fmt.Sprintf("himapd_failures_total %d", s.Failures),
		fmt.Sprintf("himapd_bad_requests_total %d", s.BadRequests),
		fmt.Sprintf("himapd_forwarded_total %d", s.Forwarded),
		fmt.Sprintf("himapd_forward_fallbacks_total %d", s.ForwardFallbacks),
		fmt.Sprintf("himapd_forwarded_served_total %d", s.ForwardedServed),
		fmt.Sprintf("himapd_batches_total %d", s.Batches),
		fmt.Sprintf("himapd_batch_items_total %d", s.BatchItems),
		fmt.Sprintf("himapd_streams_total %d", s.Streams),
		fmt.Sprintf("himapd_in_flight %d", s.InFlight),
		fmt.Sprintf("himapd_queued %d", s.Queued),
		fmt.Sprintf("himapd_cache_entries %d", s.CacheEntries),
		fmt.Sprintf("himapd_cache_bytes %d", s.CacheBytes),
	}
	if s.Store != nil {
		lines = append(lines,
			fmt.Sprintf("himapd_store_entries %d", s.Store.Entries),
			fmt.Sprintf("himapd_store_bytes %d", s.Store.Bytes),
			fmt.Sprintf("himapd_store_hits_total %d", s.Store.Hits),
			fmt.Sprintf("himapd_store_misses_total %d", s.Store.Misses),
			fmt.Sprintf("himapd_store_corrupt_total %d", s.Store.Corrupt),
			fmt.Sprintf("himapd_store_puts_total %d", s.Store.Puts))
	}
	for name, h := range s.Stages {
		lines = append(lines,
			fmt.Sprintf("himapd_stage_count{stage=%q} %d", name, h.Count),
			fmt.Sprintf("himapd_stage_errors{stage=%q} %d", name, h.Errors),
			fmt.Sprintf("himapd_stage_ms_sum{stage=%q} %.3f", name, h.TotalMS))
		for i, n := range h.Buckets {
			le := "+Inf"
			if i < len(s.BucketBoundsMS) {
				le = fmt.Sprintf("%d", s.BucketBoundsMS[i])
			}
			lines = append(lines, fmt.Sprintf("himapd_stage_ms_bucket{stage=%q,le=%q} %d", name, le, n))
		}
	}
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Fprintln(w, l)
	}
}

// MarshalJSONIndent renders the snapshot as indented JSON.
func (s Snapshot) MarshalJSONIndent() []byte {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return []byte("{}")
	}
	return append(b, '\n')
}
