package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"himap"
	"himap/internal/diag"
	"himap/internal/kernel"
	"himap/internal/store"
)

// Config tunes one Server.
type Config struct {
	// Workers is passed to Options.Workers of every HiMap compile — it
	// changes wall-clock only, never the emitted mapping. 0 means
	// runtime.GOMAXPROCS(0).
	Workers int
	// MaxInFlight bounds concurrently executing compiles. Default 2.
	MaxInFlight int
	// MaxQueue bounds requests admitted beyond MaxInFlight and waiting
	// for a worker slot; the excess is rejected with ErrOverloaded (HTTP
	// 429). Negative means no waiting at all (reject when every worker is
	// busy); 0 means the default of 16.
	MaxQueue int
	// CacheBytes is the in-memory result cache's byte budget. 0 means
	// the default 64 MiB; negative disables the memory cache.
	CacheBytes int64
	// StoreDir roots the disk-backed content-addressed result store
	// beneath the memory cache. Entries are hash-verified on read and
	// evicted when corrupt, and survive restarts with byte-identical
	// replay. Empty disables the disk store.
	StoreDir string
	// Peers lists the base URLs of every replica in the cluster
	// (http://host:port, no trailing slash), this server included; Self
	// names this replica's entry. Cache keys are owned by exactly one
	// peer (consistent hashing); /v1/compile requests whose key another
	// peer owns are forwarded once, with local fallback when the owner
	// is unreachable. Empty Peers disables sharding.
	Peers []string
	// Self is this replica's own base URL; required when Peers is set
	// and must appear in Peers.
	Self string
	// DefaultTimeout bounds compiles whose request carries no
	// timeout_ms. Default 2 minutes.
	DefaultTimeout time.Duration
	// MaxTimeout clamps request-supplied timeouts. Default 10 minutes.
	MaxTimeout time.Duration
	// MaxArraySide bounds fabric rows/cols accepted over the wire.
	// Default 64.
	MaxArraySide int
	// MaxBlock bounds each requested block extent. Default 64.
	MaxBlock int
	// MaxExploreFabrics bounds the candidate count of one /v1/explore
	// request. Default 16.
	MaxExploreFabrics int
	// MaxExactCells bounds the unrolled DFG node count the exact mapper
	// accepts over the wire (branch-and-bound is exponential; this guard
	// keeps one request from monopolizing a worker slot). Default 128.
	MaxExactCells int
	// MaxBatchItems bounds the item count of one /v1/compile-batch
	// request. Default 64.
	MaxBatchItems int
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 2
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 16
	}
	if c.MaxQueue < 0 {
		c.MaxQueue = -1 // normalized "no waiting"
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 64 << 20
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 2 * time.Minute
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 10 * time.Minute
	}
	if c.MaxArraySide <= 0 {
		c.MaxArraySide = 64
	}
	if c.MaxBlock <= 0 {
		c.MaxBlock = 64
	}
	if c.MaxExploreFabrics <= 0 {
		c.MaxExploreFabrics = 16
	}
	if c.MaxExactCells <= 0 {
		c.MaxExactCells = 128
	}
	if c.MaxBatchItems <= 0 {
		c.MaxBatchItems = 64
	}
	return c
}

// Server is the himapd service core: decode → shard → cache → coalesce
// → admit → compile → respond, every layer observable through Metrics.
type Server struct {
	cfg     Config
	cache   *cache
	disk    *store.Store // nil when Config.StoreDir is empty
	ring    *ring        // nil when Config.Peers is empty
	client  *http.Client // peer-forwarding transport
	metrics *Metrics
	sem     chan struct{}
	pending atomic.Int64 // admitted requests, waiting or running

	flightMu sync.Mutex
	flight   map[string]*flightCall

	// compile is the execution seam: production servers compile through
	// himap.CompileRequest; tests inject stubs to exercise coalescing,
	// admission, and deadline behavior without real compiles.
	compile func(ctx context.Context, req himap.Request) (*himap.Result, error)
}

// flightCall is one in-flight compile other identical requests wait on.
type flightCall struct {
	done   chan struct{}
	status int
	body   []byte
}

// New returns a Server with the production compile function. It fails
// when the disk store cannot be opened or the shard configuration is
// inconsistent (Self missing from Peers).
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		cache:   newCache(cfg.CacheBytes),
		metrics: NewMetrics(),
		sem:     make(chan struct{}, cfg.MaxInFlight),
		flight:  map[string]*flightCall{},
		client:  &http.Client{},
		compile: himap.CompileRequest,
	}
	if cfg.StoreDir != "" {
		disk, err := store.Open(cfg.StoreDir)
		if err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
		s.disk = disk
	}
	if len(cfg.Peers) > 0 {
		r, err := newRing(cfg.Peers, cfg.Self)
		if err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
		s.ring = r
	}
	return s, nil
}

// MustNew is New for configurations that cannot fail (no store, no
// peers) — the constructor tests and tools use.
func MustNew(cfg Config) *Server {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// SetCompileFunc replaces the compile execution seam (tests only).
func (s *Server) SetCompileFunc(fn func(context.Context, himap.Request) (*himap.Result, error)) {
	s.compile = fn
}

// Metrics exposes the server's registry (the himapd main wires it into
// shutdown logging; tests assert on counters).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Store exposes the disk store (nil when disabled) for tests and the
// metrics endpoint.
func (s *Server) Store() *store.Store { return s.disk }

// Handler returns the service's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/compile", s.handleCompile)
	mux.HandleFunc("POST /v1/compile-batch", s.handleBatch)
	mux.HandleFunc("POST /v1/explore", s.handleExplore)
	mux.HandleFunc("GET /v1/kernels", s.handleKernels)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// BuildRequest converts a wire request into the himap.Request the server
// compiles. It is exported so the smoke harness and tests can run the
// exact same request through himap.CompileRequest directly and compare
// bytes. The conventional mapper's chain count is pinned to 1 worker
// because it changes the emitted mapping; the HiMap Workers knob is
// output-invariant and stays a server setting.
func BuildRequest(w *CompileRequestWire, cfg Config) (himap.Request, error) {
	cfg = cfg.withDefaults()
	var req himap.Request

	switch {
	case w.Kernel != "" && w.Spec != nil:
		return req, fmt.Errorf("%w: kernel and spec are mutually exclusive", ErrBadRequest)
	case w.Kernel != "":
		k, err := kernel.ByName(w.Kernel)
		if err != nil {
			return req, fmt.Errorf("%w: %q", ErrUnknownKernel, w.Kernel)
		}
		req.Kernel = k
	case w.Spec != nil:
		k, err := w.Spec.Build()
		if err != nil {
			return req, err
		}
		if err := k.Validate(); err != nil {
			return req, fmt.Errorf("%w: invalid spec: %v", ErrBadRequest, err)
		}
		req.Kernel = k
	default:
		return req, fmt.Errorf("%w: one of kernel or spec is required", ErrBadRequest)
	}

	fab, err := BuildFabric(w.Fabric, cfg)
	if err != nil {
		return req, err
	}
	req.Fabric = fab

	o := w.Options
	switch o.Mapper {
	case "", string(himap.MapperHiMap):
		req.Mapper = himap.MapperHiMap
		if len(o.Block) != 0 {
			return req, fmt.Errorf("%w: options.block applies to the conventional mapper only (himap derives its block)", ErrBadRequest)
		}
		if o.Seed != 0 {
			return req, fmt.Errorf("%w: options.seed applies to the conventional mapper only", ErrBadRequest)
		}
	case string(himap.MapperConventional):
		req.Mapper = himap.MapperConventional
		if o.InnerBlock != 0 {
			return req, fmt.Errorf("%w: options.inner_block applies to the himap mapper only", ErrBadRequest)
		}
	case string(himap.MapperExact):
		req.Mapper = himap.MapperExact
		if o.InnerBlock != 0 {
			return req, fmt.Errorf("%w: options.inner_block applies to the himap mapper only", ErrBadRequest)
		}
		if o.Seed != 0 {
			return req, fmt.Errorf("%w: options.seed applies to the conventional mapper only", ErrBadRequest)
		}
		// Bound the search: branch-and-bound is exponential, so the wire
		// refuses instances past the configured cell budget (the mapper
		// reports the excess as an infeasible-class error).
		req.Exact.MaxNodes = cfg.MaxExactCells
	default:
		return req, fmt.Errorf("%w: unknown mapper %q (want %s)", ErrBadRequest, o.Mapper, himap.BackendNames())
	}
	if o.InnerBlock < 0 || o.InnerBlock > cfg.MaxBlock {
		return req, fmt.Errorf("%w: inner_block %d outside [0,%d]", ErrBadRequest, o.InnerBlock, cfg.MaxBlock)
	}
	if len(o.Block) != 0 && len(o.Block) != req.Kernel.Dim {
		return req, fmt.Errorf("%w: block has %d dims, kernel %q has %d", ErrBadRequest, len(o.Block), req.Kernel.Name, req.Kernel.Dim)
	}
	for _, b := range o.Block {
		if b < 1 || b > cfg.MaxBlock {
			return req, fmt.Errorf("%w: block extent %d outside [1,%d]", ErrBadRequest, b, cfg.MaxBlock)
		}
	}
	if o.TimeoutMS < 0 {
		return req, fmt.Errorf("%w: timeout_ms must be non-negative", ErrBadRequest)
	}
	req.Options.InnerBlock = o.InnerBlock
	req.Block = append([]int(nil), o.Block...)
	req.Baseline.Seed = o.Seed
	req.Baseline.Workers = 1 // chain count changes the mapping; pin for wire determinism
	return req, nil
}

// timeout resolves a request's compile deadline.
func (s *Server) timeout(o OptionsSpec) time.Duration {
	d := s.cfg.DefaultTimeout
	if o.TimeoutMS > 0 {
		d = time.Duration(o.TimeoutMS) * time.Millisecond
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d
}

// admit reserves a compile slot, waiting in the bounded queue. The
// release function must be called exactly once after the compile.
func (s *Server) admit(ctx context.Context) (release func(), err error) {
	limit := int64(s.cfg.MaxInFlight)
	if s.cfg.MaxQueue > 0 {
		limit += int64(s.cfg.MaxQueue)
	}
	if s.pending.Add(1) > limit {
		s.pending.Add(-1)
		return nil, ErrOverloaded
	}
	s.metrics.queued.Add(1)
	defer s.metrics.queued.Add(-1)
	select {
	case s.sem <- struct{}{}:
		s.metrics.inFlight.Add(1)
		return func() {
			s.metrics.inFlight.Add(-1)
			s.pending.Add(-1)
			<-s.sem
		}, nil
	case <-ctx.Done():
		s.pending.Add(-1)
		return nil, diag.Fail(diag.ErrCanceled, ctx.Err())
	}
}

// cacheGet consults the two cache levels in order: the in-memory LRU,
// then the disk store (hash-verified; a hit is promoted into memory).
// The returned status string is the X-Himap-Cache value ("hit" or
// "store").
func (s *Server) cacheGet(key string) ([]byte, string, bool) {
	if body, ok := s.cache.get(key); ok {
		return body, "hit", true
	}
	if s.disk != nil {
		if body, ok := s.disk.Get(key); ok {
			s.cache.put(key, body)
			return body, "store", true
		}
	}
	return nil, "", false
}

// cachePut stores a success body at both cache levels. Disk write
// failure is tolerated (the memory cache still serves; a restart just
// recompiles).
func (s *Server) cachePut(key string, body []byte) {
	s.cache.put(key, body)
	if s.disk != nil {
		s.disk.Put(key, body)
	}
}

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	s.metrics.requests.Add(1)
	wire, err := DecodeRequest(r.Body)
	if err != nil {
		s.metrics.badRequests.Add(1)
		writeError(w, SchemaVersion, err)
		return
	}
	v := EffectiveVersion(wire.SchemaVersion)
	streaming := wantsStream(r)
	if streaming && v < 2 {
		s.metrics.badRequests.Add(1)
		writeError(w, v, fmt.Errorf("%w: the stage-event stream requires schema_version >= 2", ErrBadRequest))
		return
	}
	hreq, err := BuildRequest(wire, s.cfg)
	if err != nil {
		s.metrics.badRequests.Add(1)
		writeError(w, v, err)
		return
	}
	key := CacheKey(wire)

	if streaming {
		s.streamCompile(w, r, wire, hreq, key, v)
		return
	}

	// Shard ownership: a request whose key another replica owns is
	// forwarded exactly once (forwarded requests are pinned local by the
	// X-Himap-Forwarded header). A hot key already in the local memory
	// cache is served directly — forwarding would only re-fetch bytes we
	// hold. When the owner is unreachable the request degrades to local
	// compute; it never fails on account of a peer.
	if s.ring != nil && !s.ring.ownsLocally(key, r) {
		if body, status, ok := s.cacheGet(key); ok {
			s.metrics.cacheHits.Add(1)
			writeBody(w, http.StatusOK, body, status)
			return
		}
		if s.forward(w, r, wire, key) {
			return
		}
	}
	if r.Header.Get(forwardedHeader) != "" {
		s.metrics.forwardedServed.Add(1)
	}

	status, body, cacheStatus := s.respond(r.Context(), wire, hreq, key, v)
	writeBody(w, status, body, cacheStatus)
}

// respond resolves one compile request locally: cache levels, then
// singleflight coalescing, then an admitted, deadline-bounded compile.
// It returns the HTTP status, body bytes, and X-Himap-Cache value.
func (s *Server) respond(ctx context.Context, wire *CompileRequestWire, hreq himap.Request, key string, v int) (int, []byte, string) {
	if body, status, ok := s.cacheGet(key); ok {
		s.metrics.cacheHits.Add(1)
		return http.StatusOK, body, status
	}

	// Coalesce identical concurrent requests onto one compile: the first
	// becomes the leader; the rest wait for its bytes. The leader's
	// outcome — success or failure — is every follower's outcome.
	s.flightMu.Lock()
	if c, ok := s.flight[key]; ok {
		s.flightMu.Unlock()
		s.metrics.coalesced.Add(1)
		select {
		case <-c.done:
			return c.status, c.body, "coalesced"
		case <-ctx.Done():
			status, body := renderError(v, diag.Fail(diag.ErrCanceled, ctx.Err()))
			return status, body, ""
		}
	}
	c := &flightCall{done: make(chan struct{})}
	s.flight[key] = c
	s.flightMu.Unlock()
	s.metrics.cacheMisses.Add(1)

	c.status, c.body = s.execute(ctx, wire, hreq, v)
	if c.status == http.StatusOK {
		s.cachePut(key, c.body)
	}
	s.flightMu.Lock()
	delete(s.flight, key)
	s.flightMu.Unlock()
	close(c.done)
	return c.status, c.body, "miss"
}

// execute runs one admitted, deadline-bounded compile and renders its
// response bytes (success or error body) in the given wire version.
func (s *Server) execute(ctx context.Context, wire *CompileRequestWire, hreq himap.Request, v int) (int, []byte) {
	ctx, cancel := context.WithTimeout(ctx, s.timeout(wire.Options))
	defer cancel()

	release, err := s.admit(ctx)
	if err != nil {
		if errors.Is(err, ErrOverloaded) {
			s.metrics.rejected.Add(1)
		}
		return renderError(v, err)
	}
	defer release()

	hreq.Options.Workers = s.cfg.Workers
	hreq.Options.Tracer = diag.MultiTracer(hreq.Options.Tracer, s.metrics.Tracer())
	hreq.Baseline.Tracer = diag.MultiTracer(hreq.Baseline.Tracer, s.metrics.Tracer())

	s.metrics.compiles.Add(1)
	res, err := s.compile(ctx, hreq)
	if err != nil {
		s.metrics.failures.Add(1)
		return renderError(v, err)
	}
	body, err := EncodeResponseVersion(res, v)
	if err != nil {
		s.metrics.failures.Add(1)
		return renderError(v, err)
	}
	return http.StatusOK, body
}

// EncodeResponse renders a compile result into the canonical
// current-version response bytes. Exported so the smoke harness can
// render a direct himap.CompileRequest result and byte-compare it with
// the served body.
func EncodeResponse(res *himap.Result) ([]byte, error) {
	return EncodeResponseVersion(res, SchemaVersion)
}

// EncodeResponseVersion renders a compile result in the requested wire
// version: the current shape, or the version-1 shape with the v2-only
// fields (mapper, optimality) omitted.
func EncodeResponseVersion(res *himap.Result, v int) ([]byte, error) {
	var cfgJSON bytes.Buffer
	if err := res.Config.WriteJSON(&cfgJSON); err != nil {
		return nil, fmt.Errorf("encode config: %w", err)
	}
	bs, err := himap.EncodeBitstream(res.Config)
	if err != nil {
		return nil, fmt.Errorf("encode bitstream: %w", err)
	}
	resp := CompileResponse{
		SchemaVersion: v,
		Kernel:        res.Kernel.Name,
		Fabric:        res.Fabric.String(),
		Mapper:        res.Backend,
		Block:         res.Block,
		II:            res.Config.II,
		UniqueIters:   res.UniqueIters,
		Attempts:      res.Stats.Attempts,
		Utilization:   res.Utilization,
		Config:        json.RawMessage(bytes.TrimRight(cfgJSON.Bytes(), "\n")),
		Bitstream:     BitstreamBytes(bs),
	}
	if resp.Mapper == "" {
		// Results built outside the registry dispatcher (tests, direct
		// backend calls) carry no Backend stamp; infer from the payload.
		resp.Mapper = string(himap.MapperHiMap)
		if res.Conventional != nil {
			resp.Mapper = string(himap.MapperConventional)
		}
		if res.Exact != nil {
			resp.Mapper = string(himap.MapperExact)
		}
	}
	if res.Optimality != nil {
		resp.Optimality = &OptimalityWire{
			ProvedMinimal: res.Optimality.ProvedMinimal,
			IILowerBound:  res.Optimality.IILowerBound,
			Certificate:   string(res.Optimality.Certificate),
			Explored:      res.Optimality.Explored,
			Horizon:       res.Optimality.Horizon,
		}
	}
	if v < 2 {
		// The v1 contract predates the backend registry and the exact
		// mapper: no mapper, no optimality.
		resp.Mapper = ""
		resp.Optimality = nil
	}
	body, err := json.Marshal(resp)
	if err != nil {
		return nil, fmt.Errorf("encode response: %w", err)
	}
	return append(body, '\n'), nil
}

// renderError maps a failure to its HTTP status and body bytes in the
// given wire version (v1 bodies omit error_code).
func renderError(v int, err error) (int, []byte) {
	status, eb := classifyError(err)
	if v < 2 {
		eb.ErrorCode = ""
	}
	body, merr := json.Marshal(ErrorResponse{SchemaVersion: v, Error: eb})
	if merr != nil {
		return http.StatusInternalServerError, []byte(fmt.Sprintf(`{"schema_version":%d,"error":{"code":"internal","message":"error encoding failed"}}`+"\n", v))
	}
	return status, append(body, '\n')
}

// classifyError maps the service's failure taxonomy to wire codes: the
// coarse HTTP-dispatch Code plus the stable v2 ErrorCode enum
// (WireErrorCode).
func classifyError(err error) (int, ErrorBody) {
	msg := err.Error()
	code := WireErrorCode(err)
	switch {
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests, ErrorBody{Code: "overloaded", ErrorCode: code, Message: msg}
	case errors.Is(err, ErrUnknownKernel):
		return http.StatusNotFound, ErrorBody{Code: "unknown_kernel", ErrorCode: code, Message: msg}
	case errors.Is(err, ErrBadRequest):
		return http.StatusBadRequest, ErrorBody{Code: "bad_request", ErrorCode: code, Message: msg}
	case errors.Is(err, diag.ErrCanceled),
		errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout, ErrorBody{Code: "deadline", ErrorCode: code, Message: msg, Class: diag.ErrCanceled.Error()}
	case errors.Is(err, diag.ErrInvalidRequest):
		// A malformed himap.Request (nil kernel) that slipped past wire
		// validation is a caller bug, not a mapping infeasibility.
		return http.StatusBadRequest, ErrorBody{Code: "bad_request", ErrorCode: code, Message: msg, Class: diag.ErrInvalidRequest.Error()}
	}
	var se *diag.StageError
	if errors.As(err, &se) {
		return http.StatusUnprocessableEntity, ErrorBody{Code: "infeasible", ErrorCode: code, Message: msg, Class: se.Class.Error()}
	}
	var tooLarge himap.BaselineTooLargeError
	var timedOut himap.BaselineTimeoutError
	var exactTooLarge himap.ExactTooLargeError
	if errors.As(err, &tooLarge) || errors.As(err, &timedOut) || errors.As(err, &exactTooLarge) {
		return http.StatusUnprocessableEntity, ErrorBody{Code: "infeasible", ErrorCode: code, Message: msg}
	}
	return http.StatusInternalServerError, ErrorBody{Code: "internal", ErrorCode: code, Message: msg}
}

func writeError(w http.ResponseWriter, v int, err error) {
	status, body := renderError(v, err)
	writeBody(w, status, body, "")
}

func writeBody(w http.ResponseWriter, status int, body []byte, cacheStatus string) {
	w.Header().Set("Content-Type", "application/json")
	if cacheStatus != "" {
		w.Header().Set("X-Himap-Cache", cacheStatus)
	}
	w.WriteHeader(status)
	w.Write(body)
}

func (s *Server) handleKernels(w http.ResponseWriter, r *http.Request) {
	resp := KernelsResponse{SchemaVersion: SchemaVersion}
	for _, k := range append(kernel.Evaluation(), kernel.Extensions()...) {
		resp.Kernels = append(resp.Kernels, KernelInfo{
			Name: k.Name, Desc: k.Desc, Suite: k.Suite, Dim: k.Dim, Ops: k.NumComputeOps(),
		})
	}
	body, err := json.Marshal(resp)
	if err != nil {
		writeError(w, SchemaVersion, err)
		return
	}
	writeBody(w, http.StatusOK, append(body, '\n'), "")
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.metrics.Snapshot()
	snap.CacheEntries, snap.CacheBytes = s.cache.stats()
	if s.disk != nil {
		st := s.disk.Stats()
		snap.Store = &st
	}
	format := r.URL.Query().Get("format")
	if format == "json" || strings.Contains(r.Header.Get("Accept"), "application/json") {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(snap.MarshalJSONIndent())
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	snap.WriteText(w)
}
