// Package serve is the himapd compilation service: an HTTP/JSON layer
// over the unified himap.CompileRequest API with a two-level
// content-addressed result cache (in-memory LRU over an optional
// disk-backed, integrity-checked store), singleflight coalescing,
// consistent-hash peer sharding with request forwarding, a bounded
// admission queue, and an atomic-counter metrics registry. The wire
// contract is versioned (SchemaVersion) and strict: requests with
// unknown fields are rejected, responses always carry schema_version,
// and a served compile is byte-identical to a direct CompileRequest of
// the same request — cache and coalescing status travel in the
// X-Himap-Cache response header, never in the body.
//
// Version 2 of the contract makes the post-v1 growth first-class:
// the mapper identity and optimality certificate in compile responses,
// the machine-readable error_code enum mirroring the diag failure
// taxonomy, the batch endpoint (POST /v1/compile-batch), and the SSE
// stage-event stream (Accept: text/event-stream on /v1/compile).
// Requests pinned to schema_version 1 keep working and are answered in
// the v1 shape — the v2-only fields are omitted — while versions the
// server does not speak are rejected up front.
package serve

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"himap"
	"himap/internal/diag"
	"himap/internal/ir"
	"himap/internal/kernel"
)

// SchemaVersion is the current wire-contract version, stamped on every
// response body (success and error alike) unless the request pinned an
// older supported version. The server bumps it only on incompatible
// changes; clients reject versions they do not know.
const SchemaVersion = 2

// MinSchemaVersion is the oldest wire version the server still accepts
// and answers in kind. A version-1 request receives a version-1 body:
// no mapper, no optimality, no error_code.
const MinSchemaVersion = 1

// EffectiveVersion resolves a request's schema_version field: omitted
// (0) means the current version; a supported pin is honored; anything
// else is rejected by the decoders before this is called.
func EffectiveVersion(requested int) int {
	if requested == 0 {
		return SchemaVersion
	}
	return requested
}

// checkVersion validates a request's schema_version against the
// supported window.
func checkVersion(requested int) error {
	if requested != 0 && (requested < MinSchemaVersion || requested > SchemaVersion) {
		return fmt.Errorf("%w: unsupported schema_version %d (server speaks %d..%d)",
			ErrBadRequest, requested, MinSchemaVersion, SchemaVersion)
	}
	return nil
}

// Typed request-rejection sentinels. Handlers wrap them with %w, and the
// HTTP layer maps each to its status code (400, 404, 429).
var (
	// ErrBadRequest: the request body failed strict decoding or semantic
	// validation (unknown fields, missing kernel, out-of-range fabric).
	ErrBadRequest = errors.New("bad request")
	// ErrUnknownKernel: the named kernel is not in the registry.
	ErrUnknownKernel = errors.New("unknown kernel")
	// ErrOverloaded: the admission queue is full; retry later.
	ErrOverloaded = errors.New("server overloaded")
)

// diagErrorCodes maps every diag sentinel failure class 1:1 to its
// stable wire error_code (schema v2). The table test in wire_test
// asserts the mapping is total and injective over diag.Classes(), so a
// new sentinel cannot ship unmapped.
var diagErrorCodes = map[error]string{
	diag.ErrNoSubMapping:        "no_sub_mapping",
	diag.ErrSchemeInfeasible:    "scheme_infeasible",
	diag.ErrRouteCongested:      "route_congested",
	diag.ErrBlockPinConflict:    "block_pin_conflict",
	diag.ErrBlockTooSmall:       "block_too_small",
	diag.ErrPlacementInfeasible: "placement_infeasible",
	diag.ErrReplicaConflict:     "replica_conflict",
	diag.ErrConfigInvalid:       "config_invalid",
	diag.ErrMemPortInfeasible:   "mem_port_infeasible",
	diag.ErrBandwidthInfeasible: "bandwidth_infeasible",
	diag.ErrInvalidRequest:      "invalid_request",
	diag.ErrExactTimeout:        "exact_timeout",
	diag.ErrProvedInfeasible:    "proved_infeasible",
	diag.ErrCanceled:            "canceled",
}

// Serve-level error codes (conditions that never reach a compile).
const (
	CodeBadRequest    = "bad_request"
	CodeUnknownKernel = "unknown_kernel"
	CodeOverloaded    = "overloaded"
	CodeInternal      = "internal"
)

// WireErrorCode renders any service failure into its stable v2
// error_code: serve-level sentinels map to their own codes, compile
// failures to the diag class that caused them (checked in taxonomy
// order, so the classification is deterministic even for errors
// wrapping several sentinels), and anything unrecognized to
// CodeInternal.
func WireErrorCode(err error) string {
	switch {
	case errors.Is(err, ErrOverloaded):
		return CodeOverloaded
	case errors.Is(err, ErrUnknownKernel):
		return CodeUnknownKernel
	case errors.Is(err, ErrBadRequest):
		return CodeBadRequest
	}
	for _, class := range diag.Classes() {
		if errors.Is(err, class) {
			return diagErrorCodes[class]
		}
	}
	// Context errors below a compile that did not wrap ErrCanceled.
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return diagErrorCodes[diag.ErrCanceled]
	}
	return CodeInternal
}

// CompileRequestWire is the POST /v1/compile request body. Exactly one
// of Kernel (a registry name, GET /v1/kernels) and Spec (an inline
// kernel specification) must be set. SchemaVersion may be omitted
// (treated as the current version) or set to SchemaVersion; any other
// value is rejected so a client pinned to a future contract fails
// loudly instead of being misinterpreted.
type CompileRequestWire struct {
	SchemaVersion int         `json:"schema_version,omitempty"`
	Kernel        string      `json:"kernel,omitempty"`
	Spec          *KernelSpec `json:"spec,omitempty"`
	Fabric        FabricSpec  `json:"fabric"`
	Options       OptionsSpec `json:"options"`
}

// FabricSpec selects the target architecture.
type FabricSpec struct {
	Rows      int    `json:"rows"`
	Cols      int    `json:"cols"`
	Topology  string `json:"topology,omitempty"`   // mesh (default) | torus | diag
	MemPEs    string `json:"mem_pes,omitempty"`    // all (default) | boundary | none
	Bandwidth string `json:"bandwidth,omitempty"`  // unit (default) | double | bus | narrow-rf
	CostClass string `json:"cost_class,omitempty"` // balanced (default) | low-power | high-perf
}

// OptionsSpec tunes the compile. TimeoutMS bounds the request's wall
// clock and is the only field excluded from the cache key (it cannot
// change the mapping, only whether the compile finishes).
type OptionsSpec struct {
	Mapper     string `json:"mapper,omitempty"` // himap (default) | conventional | exact
	InnerBlock int    `json:"inner_block,omitempty"`
	Block      []int  `json:"block,omitempty"` // conventional and exact mappers only
	Seed       int64  `json:"seed,omitempty"`  // conventional mapper only
	TimeoutMS  int    `json:"timeout_ms,omitempty"`
}

// KernelSpec is the inline kernel-specification wire form, mirroring the
// internal/kernel DSL with strings for enumerations and affine rows for
// tensor extents (tensor dim r = sum coef[d]*block[d] + off).
type KernelSpec struct {
	Name       string       `json:"name"`
	Dim        int          `json:"dim"`
	MinBlock   int          `json:"min_block,omitempty"`
	FixedBlock []int        `json:"fixed_block,omitempty"`
	Tensors    []TensorWire `json:"tensors"`
	Body       []BodyOpWire `json:"body"`
}

// TensorWire declares one tensor; Dims holds one affine row per tensor
// dimension.
type TensorWire struct {
	Name string      `json:"name"`
	Out  bool        `json:"out,omitempty"`
	Dims []AffineRow `json:"dims"`
}

// AffineRow is one affine form over the block/iteration vector:
// value = sum Coef[d]*x[d] + Off.
type AffineRow struct {
	Coef []int `json:"coef"`
	Off  int   `json:"off,omitempty"`
}

// BodyOpWire is one loop-body operation.
type BodyOpWire struct {
	Name   string      `json:"name,omitempty"`
	Op     string      `json:"op"` // add|sub|mul|div|min|max|and|or|xor|shl|shr|sel|route
	A      []CaseWire  `json:"a,omitempty"`
	B      []CaseWire  `json:"b,omitempty"`
	Stores []StoreWire `json:"stores,omitempty"`
}

// CaseWire pairs a guard with an operand source.
type CaseWire struct {
	When []CondWire `json:"when,omitempty"` // empty = always
	Src  SourceWire `json:"src"`
}

// CondWire is one guard condition.
type CondWire struct {
	Kind string `json:"kind"` // first|last|not_first|not_last|eq_dims|ne_dims|index_eq|index_lt
	Dim  int    `json:"dim"`
	Dim2 int    `json:"dim2,omitempty"`
	Val  int    `json:"val,omitempty"`
}

// SourceWire is one operand origin.
type SourceWire struct {
	Kind   string      `json:"kind"` // dep|mem|const
	Op     int         `json:"op,omitempty"`
	Dist   []int       `json:"dist,omitempty"`
	Tensor string      `json:"tensor,omitempty"`
	Map    []AffineRow `json:"map,omitempty"`
	Value  int64       `json:"value,omitempty"`
}

// StoreWire writes the op's result to a tensor under a guard.
type StoreWire struct {
	When   []CondWire  `json:"when,omitempty"`
	Tensor string      `json:"tensor"`
	Map    []AffineRow `json:"map"`
}

// ExploreRequestWire is the POST /v1/explore request body: one kernel
// (name or inline spec, exactly as /v1/compile) swept across a set of
// fabric candidates and ranked by power efficiency. When Fabrics is
// empty the server sweeps the default candidate set of a Rows×Cols
// array (himap.ExploreFabrics); an explicit list overrides it and then
// Rows/Cols must be omitted.
type ExploreRequestWire struct {
	SchemaVersion int                `json:"schema_version,omitempty"`
	Kernel        string             `json:"kernel,omitempty"`
	Spec          *KernelSpec        `json:"spec,omitempty"`
	Rows          int                `json:"rows,omitempty"`
	Cols          int                `json:"cols,omitempty"`
	Fabrics       []FabricSpec       `json:"fabrics,omitempty"`
	Options       ExploreOptionsSpec `json:"options"`
}

// ExploreOptionsSpec tunes the sweep. TimeoutMS bounds the whole
// request (all candidate compiles together), not each candidate.
type ExploreOptionsSpec struct {
	InnerBlock int `json:"inner_block,omitempty"`
	TimeoutMS  int `json:"timeout_ms,omitempty"`
}

// ExploreResponse is the POST /v1/explore success body: every fabric
// candidate with its outcome, ranked by MOPS/mW (successes first, then
// typed failures; full order documented on the handler). The ranking is
// deterministic across identical requests — only StageMS (wall clock)
// may differ between cold entries.
type ExploreResponse struct {
	SchemaVersion int            `json:"schema_version"`
	Kernel        string         `json:"kernel"`
	Entries       []ExploreEntry `json:"entries"`
}

// ExploreEntry is one fabric candidate's outcome. Failed candidates
// carry the compile's wire error body (code/class) instead of metrics,
// so an infeasible bandwidth point reads exactly like the /v1/compile
// rejection it would have been.
type ExploreEntry struct {
	Fabric      string             `json:"fabric"`
	OK          bool               `json:"ok"`
	Error       *ErrorBody         `json:"error,omitempty"`
	II          int                `json:"ii,omitempty"`
	Block       []int              `json:"block,omitempty"`
	Utilization float64            `json:"utilization,omitempty"`
	MOPS        float64            `json:"mops,omitempty"`
	PowerMW     float64            `json:"power_mw,omitempty"`
	Eff         float64            `json:"eff_mops_per_mw,omitempty"`
	StageMS     map[string]float64 `json:"stage_ms,omitempty"`
}

// CompileResponse is the POST /v1/compile success body. Config is the
// canonical configuration JSON (himap.SaveConfig bytes) and Bitstream
// the canonical binary configuration-memory image (BitstreamBytes),
// base64-coded by encoding/json. The body carries no wall-clock or
// cache-status fields, so a cached response is byte-identical to the
// compile that produced it. Mapper and Optimality are schema-v2 fields:
// a version-1 request receives the body without them (both are tagged
// omitempty and cleared by the v1 renderer).
type CompileResponse struct {
	SchemaVersion int             `json:"schema_version"`
	Kernel        string          `json:"kernel"`
	Fabric        string          `json:"fabric"`
	Mapper        string          `json:"mapper,omitempty"`
	Block         []int           `json:"block"`
	II            int             `json:"ii"`
	UniqueIters   int             `json:"unique_iters,omitempty"`
	Attempts      int             `json:"attempts,omitempty"`
	Utilization   float64         `json:"utilization"`
	Optimality    *OptimalityWire `json:"optimality,omitempty"`
	Config        json.RawMessage `json:"config"`
	Bitstream     []byte          `json:"bitstream"`
}

// OptimalityWire is the certificate block of an exact-mapper response:
// whether the returned II was proved minimal, the best lower bound
// established, and the kind of proof ("resmii": II equals the static
// resource/recurrence bound; "exhaustive": every smaller II refuted).
// Only responses from "mapper": "exact" carry it.
type OptimalityWire struct {
	ProvedMinimal bool   `json:"proved_minimal"`
	IILowerBound  int    `json:"ii_lower_bound"`
	Certificate   string `json:"certificate,omitempty"`
	Explored      int64  `json:"explored,omitempty"`
	Horizon       int    `json:"horizon,omitempty"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	SchemaVersion int       `json:"schema_version"`
	Error         ErrorBody `json:"error"`
}

// ErrorBody carries the machine-readable rejection: Code is the coarse
// HTTP-dispatch key (bad_request, unknown_kernel, overloaded, deadline,
// infeasible, internal), ErrorCode the stable schema-v2 enum mapped 1:1
// from the diag failure taxonomy (route_congested, bandwidth_infeasible,
// proved_infeasible, canceled, ...; serve-level rejections reuse their
// Code), and Class the diag failure-class rendering when the compile
// itself failed. Version-1 bodies omit ErrorCode.
type ErrorBody struct {
	Code      string `json:"code"`
	ErrorCode string `json:"error_code,omitempty"`
	Message   string `json:"message"`
	Class     string `json:"class,omitempty"`
}

// BatchRequestWire is the POST /v1/compile-batch request body (schema
// v2 only): a list of compile requests answered per-item under one
// deadline, with shared artifacts (IDFG, sub-mapping lists, unrolled
// DFG/ISDG) deduplicated across the batch through one Memo. Items must
// not pin their own schema_version — the batch envelope's version is
// the contract for every item.
type BatchRequestWire struct {
	SchemaVersion int                  `json:"schema_version,omitempty"`
	Items         []CompileRequestWire `json:"items"`
	Options       BatchOptionsSpec     `json:"options"`
}

// BatchOptionsSpec tunes the batch. TimeoutMS bounds the whole batch
// (all items together), not each item.
type BatchOptionsSpec struct {
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// BatchResponse is the POST /v1/compile-batch success body. The batch
// itself answers 200 whenever the envelope was valid; per-item outcomes
// (success or typed error) live in Items, index-aligned with the
// request. Aggregate cache accounting travels in the
// X-Himap-Batch-Cache response header, never in the body.
type BatchResponse struct {
	SchemaVersion int               `json:"schema_version"`
	Items         []BatchItemResult `json:"items"`
}

// BatchItemResult is one batch item's outcome. Status is the HTTP
// status the item would have answered standalone; Result is the exact
// /v1/compile success object (the standalone body minus its trailing
// newline), so batch and single-compile responses stay byte-comparable.
type BatchItemResult struct {
	OK     bool            `json:"ok"`
	Status int             `json:"status"`
	Error  *ErrorBody      `json:"error,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

// SSE event names of the /v1/compile stream (schema v2 only; selected
// with Accept: text/event-stream). A stream is zero or more stage
// events followed by exactly one terminal event: result on success,
// error on failure. See DESIGN.md, "Serving at scale", for the full
// event grammar.
const (
	// StreamEventStage carries a StageEventWire datum — one executed
	// pipeline stage, in tracer emission order.
	StreamEventStage = "stage"
	// StreamEventResult carries the CompileResponse object (identical to
	// the non-streaming body minus the trailing newline).
	StreamEventResult = "result"
	// StreamEventError carries the ErrorResponse object the request
	// would have answered without streaming.
	StreamEventError = "error"
)

// StageEventWire is the "stage" stream event datum: one diag tracer
// span rendered to the wire. Counters marshal with sorted keys
// (encoding/json map ordering), so a span renders deterministically.
type StageEventWire struct {
	Stage    string           `json:"stage"`
	Attempt  int              `json:"attempt,omitempty"`
	Wave     int              `json:"wave,omitempty"`
	WallUS   int64            `json:"wall_us"`
	Err      string           `json:"err,omitempty"`
	Counters map[string]int64 `json:"counters,omitempty"`
}

// KernelsResponse is the GET /v1/kernels body.
type KernelsResponse struct {
	SchemaVersion int          `json:"schema_version"`
	Kernels       []KernelInfo `json:"kernels"`
}

// KernelInfo is one registry entry.
type KernelInfo struct {
	Name  string `json:"name"`
	Desc  string `json:"desc,omitempty"`
	Suite string `json:"suite,omitempty"`
	Dim   int    `json:"dim"`
	Ops   int    `json:"ops"`
}

// DecodeRequest strictly decodes a compile request: unknown fields and
// trailing garbage are ErrBadRequest, keeping the wire contract honest
// about what the server actually interprets. Supported older schema
// versions (MinSchemaVersion..SchemaVersion) are accepted; the caller
// answers in the pinned shape.
func DecodeRequest(r io.Reader) (*CompileRequestWire, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var req CompileRequestWire
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if dec.More() {
		return nil, fmt.Errorf("%w: trailing data after request object", ErrBadRequest)
	}
	if err := checkVersion(req.SchemaVersion); err != nil {
		return nil, err
	}
	return &req, nil
}

// DecodeExploreRequest strictly decodes an explore request, with the
// same unknown-field and schema-version policy as DecodeRequest.
func DecodeExploreRequest(r io.Reader) (*ExploreRequestWire, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var req ExploreRequestWire
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if dec.More() {
		return nil, fmt.Errorf("%w: trailing data after request object", ErrBadRequest)
	}
	if err := checkVersion(req.SchemaVersion); err != nil {
		return nil, err
	}
	return &req, nil
}

// DecodeBatchRequest strictly decodes a batch request. The batch
// endpoint is schema-v2 only: a version-1 pin is rejected (v1 never had
// batches), and items must not pin their own schema_version.
func DecodeBatchRequest(r io.Reader) (*BatchRequestWire, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var req BatchRequestWire
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if dec.More() {
		return nil, fmt.Errorf("%w: trailing data after request object", ErrBadRequest)
	}
	if err := checkVersion(req.SchemaVersion); err != nil {
		return nil, err
	}
	if v := EffectiveVersion(req.SchemaVersion); v < 2 {
		return nil, fmt.Errorf("%w: compile-batch requires schema_version >= 2 (got %d)", ErrBadRequest, v)
	}
	if len(req.Items) == 0 {
		return nil, fmt.Errorf("%w: batch has no items", ErrBadRequest)
	}
	for i := range req.Items {
		if req.Items[i].SchemaVersion != 0 {
			return nil, fmt.Errorf("%w: items[%d] pins schema_version %d; the batch envelope's version governs every item",
				ErrBadRequest, i, req.Items[i].SchemaVersion)
		}
	}
	return &req, nil
}

// CacheKey is the content address of a request: the SHA-256 of its
// canonical JSON with TimeoutMS zeroed (the timeout bounds the compile,
// it cannot change the mapping) and SchemaVersion normalized to the
// request's effective wire version — response bytes depend on the
// version they were rendered for, so each supported version owns its
// own key space, and an explicit pin of the current version shares keys
// with an omitted one. Two requests with equal keys receive
// byte-identical responses. The key also drives shard ownership: every
// replica of a cluster computes the same key for the same request.
func CacheKey(req *CompileRequestWire) string {
	norm := *req
	norm.Options.TimeoutMS = 0
	norm.SchemaVersion = EffectiveVersion(req.SchemaVersion)
	b, err := json.Marshal(&norm)
	if err != nil {
		// Marshal of this struct cannot fail (no channels/funcs/cycles);
		// keep a deterministic fallback anyway.
		b = []byte(fmt.Sprintf("%+v", norm))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// opKinds maps wire mnemonics to ir kinds (compute kinds plus route).
var opKinds = map[string]ir.OpKind{
	"add": ir.OpAdd, "sub": ir.OpSub, "mul": ir.OpMul, "div": ir.OpDiv,
	"min": ir.OpMin, "max": ir.OpMax, "and": ir.OpAnd, "or": ir.OpOr,
	"xor": ir.OpXor, "shl": ir.OpShl, "shr": ir.OpShr, "sel": ir.OpSel,
	"route": ir.OpRoute,
}

// condKinds maps wire guard names to DSL kinds.
var condKinds = map[string]kernel.CondKind{
	"first": kernel.CondFirst, "last": kernel.CondLast,
	"not_first": kernel.CondNotFirst, "not_last": kernel.CondNotLast,
	"eq_dims": kernel.CondEqDims, "ne_dims": kernel.CondNeDims,
	"index_eq": kernel.CondIndexEq, "index_lt": kernel.CondIndexLt,
}

// Build converts the inline wire specification into a kernel. The result
// still goes through Kernel.Validate inside the compile, so Build only
// checks what the conversion itself needs (enumeration names, affine-row
// arity against Dim).
func (ks *KernelSpec) Build() (*kernel.Kernel, error) {
	if ks.Name == "" {
		return nil, fmt.Errorf("%w: spec.name is required", ErrBadRequest)
	}
	if ks.Dim < 1 || ks.Dim > 8 {
		return nil, fmt.Errorf("%w: spec.dim %d out of range [1,8]", ErrBadRequest, ks.Dim)
	}
	k := &kernel.Kernel{
		Name:       ks.Name,
		Desc:       "inline wire specification",
		Dim:        ks.Dim,
		MinBlock:   ks.MinBlock,
		FixedBlock: append([]int(nil), ks.FixedBlock...),
	}
	for _, tw := range ks.Tensors {
		rows := append([]AffineRow(nil), tw.Dims...)
		for _, row := range rows {
			if len(row.Coef) != ks.Dim {
				return nil, fmt.Errorf("%w: tensor %q dims row has %d coefs, want %d",
					ErrBadRequest, tw.Name, len(row.Coef), ks.Dim)
			}
		}
		k.Tensors = append(k.Tensors, kernel.TensorSpec{
			Name: tw.Name,
			Out:  tw.Out,
			Dims: func(block []int) []int {
				out := make([]int, len(rows))
				for r, row := range rows {
					v := row.Off
					for d, c := range row.Coef {
						v += c * block[d]
					}
					out[r] = v
				}
				return out
			},
		})
	}
	for i, bw := range ks.Body {
		kind, ok := opKinds[bw.Op]
		if !ok {
			return nil, fmt.Errorf("%w: body op %d has unknown op kind %q", ErrBadRequest, i, bw.Op)
		}
		op := kernel.BodyOp{Name: bw.Name, Kind: kind}
		if op.Name == "" {
			op.Name = fmt.Sprintf("op%d", i)
		}
		var err error
		if op.A, err = buildInput(bw.A, ks.Dim); err != nil {
			return nil, fmt.Errorf("body op %d input a: %w", i, err)
		}
		if op.B, err = buildInput(bw.B, ks.Dim); err != nil {
			return nil, fmt.Errorf("body op %d input b: %w", i, err)
		}
		for _, sw := range bw.Stores {
			when, err := buildPred(sw.When)
			if err != nil {
				return nil, fmt.Errorf("body op %d store: %w", i, err)
			}
			op.Stores = append(op.Stores, kernel.StoreRule{
				When: when, Tensor: sw.Tensor, Map: buildAffine(sw.Map),
			})
		}
		k.Body = append(k.Body, op)
	}
	return k, nil
}

func buildInput(cases []CaseWire, dim int) (kernel.Input, error) {
	var in kernel.Input
	for _, cw := range cases {
		when, err := buildPred(cw.When)
		if err != nil {
			return nil, err
		}
		src, err := buildSource(cw.Src, dim)
		if err != nil {
			return nil, err
		}
		in = append(in, kernel.Case{When: when, Src: src})
	}
	return in, nil
}

func buildPred(conds []CondWire) (kernel.Pred, error) {
	var p kernel.Pred
	for _, cw := range conds {
		kind, ok := condKinds[cw.Kind]
		if !ok {
			return nil, fmt.Errorf("%w: unknown condition kind %q", ErrBadRequest, cw.Kind)
		}
		p = append(p, kernel.Cond{Kind: kind, Dim: cw.Dim, Dim2: cw.Dim2, Val: cw.Val})
	}
	return p, nil
}

func buildSource(sw SourceWire, dim int) (kernel.Source, error) {
	switch sw.Kind {
	case "dep":
		return kernel.Source{Kind: kernel.SrcDep, Op: sw.Op, Dist: ir.IterVec(append([]int(nil), sw.Dist...))}, nil
	case "mem":
		return kernel.Source{Kind: kernel.SrcMem, Tensor: sw.Tensor, Map: buildAffine(sw.Map)}, nil
	case "const":
		return kernel.Source{Kind: kernel.SrcConst, Value: sw.Value}, nil
	}
	return kernel.Source{}, fmt.Errorf("%w: unknown source kind %q (want dep|mem|const)", ErrBadRequest, sw.Kind)
}

func buildAffine(rows []AffineRow) kernel.AffineMap {
	var m kernel.AffineMap
	for _, row := range rows {
		m.Coef = append(m.Coef, append([]int(nil), row.Coef...))
		m.Off = append(m.Off, row.Off)
	}
	return m
}

// BitstreamBytes is the canonical binary dump of a configuration-memory
// image: a fixed header (magic, II, NDirs, rows, cols) followed per PE by
// the word count, the words, and the II schedule indices, all
// little-endian uint32 except the raw word bytes. The layout is fully
// determined by the Bitstream content, so equal mappings dump to equal
// bytes.
func BitstreamBytes(bs *himap.Bitstream) []byte {
	var out []byte
	put := func(v int) {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], uint32(v))
		out = append(out, b[:]...)
	}
	out = append(out, 'H', 'M', 'B', 'S')
	put(bs.II)
	put(bs.NDirs)
	put(len(bs.Words))
	cols := 0
	if len(bs.Words) > 0 {
		cols = len(bs.Words[0])
	}
	put(cols)
	for r := range bs.Words {
		for c := range bs.Words[r] {
			put(len(bs.Words[r][c]))
			for _, w := range bs.Words[r][c] {
				out = append(out, w...)
			}
			for _, idx := range bs.Schedule[r][c] {
				put(idx)
			}
		}
	}
	return out
}
