package serve

import (
	"container/list"
	"sync"
)

// cache is the content-addressed result cache: request hash → response
// bytes, evicted least-recently-used under a total byte budget. Recency
// is the list order (front = most recent), so the cache holds no clocks
// and its behavior is a pure function of the access sequence.
type cache struct {
	mu    sync.Mutex
	limit int64 // byte budget; <= 0 disables the cache entirely
	size  int64
	ll    *list.List // of *cacheEntry, front = most recently used
	items map[string]*list.Element
}

type cacheEntry struct {
	key  string
	body []byte
}

func newCache(limit int64) *cache {
	return &cache{limit: limit, ll: list.New(), items: map[string]*list.Element{}}
}

// get returns the cached body for key, promoting it to most recent. The
// returned slice is the stored one; callers must not mutate it.
func (c *cache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// put stores body under key, evicting from the least-recent end until
// the budget holds. A body larger than the whole budget is not cached.
func (c *cache) put(key string, body []byte) {
	if int64(len(body)) > c.limit {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		ent := el.Value.(*cacheEntry)
		c.size += int64(len(body)) - int64(len(ent.body))
		ent.body = body
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&cacheEntry{key: key, body: body})
		c.size += int64(len(body))
	}
	for c.size > c.limit {
		back := c.ll.Back()
		if back == nil {
			break
		}
		ent := back.Value.(*cacheEntry)
		c.ll.Remove(back)
		delete(c.items, ent.key)
		c.size -= int64(len(ent.body))
	}
}

// stats returns the entry count and byte size for /metrics.
func (c *cache) stats() (entries int, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items), c.size
}
