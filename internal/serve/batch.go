package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"himap"
)

// handleBatch answers POST /v1/compile-batch: every item compiled under
// one batch deadline, per-item outcomes index-aligned with the request.
// The envelope answers 200 whenever it decodes; item failures are typed
// per-item errors, exactly the body the item would have answered
// standalone.
//
// All items share one artifact memo, so a batch sweeping one kernel
// across fabrics (or blocks) deduplicates the kernel-level work — IDFG
// construction, sub-mapping enumeration, DFG unrolling — across items
// instead of redoing it per compile. Items run sequentially: intra-item
// parallelism (Options.Workers) already saturates the worker budget,
// and sequential order makes the memo reuse deterministic.
//
// Batches are never forwarded to shard peers — their items generally
// hash to different owners, and the memo sharing that justifies the
// endpoint only exists locally. Item results still populate this
// replica's cache levels.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.metrics.requests.Add(1)
	breq, err := DecodeBatchRequest(r.Body)
	if err != nil {
		s.metrics.badRequests.Add(1)
		writeError(w, SchemaVersion, err)
		return
	}
	if len(breq.Items) > s.cfg.MaxBatchItems {
		s.metrics.badRequests.Add(1)
		writeError(w, SchemaVersion, fmt.Errorf("%w: batch has %d items, limit %d",
			ErrBadRequest, len(breq.Items), s.cfg.MaxBatchItems))
		return
	}
	s.metrics.batches.Add(1)
	v := EffectiveVersion(breq.SchemaVersion)

	// One deadline for the whole batch; items compiled after it expires
	// answer the deadline error individually.
	d := s.cfg.DefaultTimeout
	if breq.Options.TimeoutMS > 0 {
		d = time.Duration(breq.Options.TimeoutMS) * time.Millisecond
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	defer cancel()

	memo := himap.NewMemo()
	resp := BatchResponse{SchemaVersion: v, Items: make([]BatchItemResult, len(breq.Items))}
	var hits, misses int
	for i := range breq.Items {
		item := &breq.Items[i]
		s.metrics.batchItems.Add(1)
		hreq, err := BuildRequest(item, s.cfg)
		if err != nil {
			s.metrics.badRequests.Add(1)
			status, eb := classifyError(err)
			resp.Items[i] = BatchItemResult{Status: status, Error: &eb}
			continue
		}
		hreq.Options.Memo = memo
		key := CacheKey(item)
		status, body, cacheStatus := s.respond(ctx, item, hreq, key, v)
		if cacheStatus == "hit" || cacheStatus == "store" {
			hits++
		} else {
			misses++
		}
		if status == http.StatusOK {
			resp.Items[i] = BatchItemResult{OK: true, Status: status, Result: json.RawMessage(bytes.TrimRight(body, "\n"))}
		} else {
			var ebody ErrorResponse
			if err := json.Unmarshal(body, &ebody); err != nil {
				ebody.Error = ErrorBody{Code: "internal", Message: "batch item error body undecodable"}
			}
			resp.Items[i] = BatchItemResult{Status: status, Error: &ebody.Error}
		}
	}
	out, err := json.Marshal(resp)
	if err != nil {
		writeError(w, v, err)
		return
	}
	// Aggregate cache accounting travels in a header, never the body —
	// same discipline as X-Himap-Cache on single compiles.
	w.Header().Set("X-Himap-Batch-Cache", fmt.Sprintf("hits=%d misses=%d", hits, misses))
	writeBody(w, http.StatusOK, append(out, '\n'), "")
}
