package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"himap"
)

func postExplore(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/explore", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/explore: %v", err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, b
}

// TestExploreEndToEnd sweeps one kernel over the default candidate set
// with real compiles and pins the response contract: every candidate
// accounted for, successes priced and ranked by efficiency, failures
// typed, and a repeated sweep served entirely from the per-fabric cache
// with a byte-identical body.
func TestExploreEndToEnd(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	req := `{"kernel":"MVT","rows":4,"cols":4,"options":{}}`
	resp, body := postExplore(t, ts.URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var er ExploreResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatalf("response not valid JSON: %v", err)
	}
	ncand := len(himap.ExploreFabrics(4, 4))
	if er.SchemaVersion != SchemaVersion || er.Kernel != "MVT" || len(er.Entries) != ncand {
		t.Fatalf("header wrong: version=%d kernel=%q entries=%d (want %d)",
			er.SchemaVersion, er.Kernel, len(er.Entries), ncand)
	}
	if !er.Entries[0].OK {
		t.Fatalf("no fabric candidate succeeded: first entry %+v", er.Entries[0])
	}
	for i, e := range er.Entries {
		if e.OK {
			if e.II < 1 || e.MOPS <= 0 || e.PowerMW <= 0 || e.Eff <= 0 || len(e.Block) == 0 {
				t.Errorf("entry %d (%s): unpriced success %+v", i, e.Fabric, e)
			}
			if len(e.StageMS) == 0 {
				t.Errorf("entry %d (%s): no per-stage wall breakdown", i, e.Fabric)
			}
			if e.Error != nil {
				t.Errorf("entry %d (%s): success with error body", i, e.Fabric)
			}
		} else {
			if e.Error == nil || e.Error.Code == "" {
				t.Errorf("entry %d (%s): failure without typed error body: %+v", i, e.Fabric, e)
			}
		}
		if i == 0 {
			continue
		}
		prev := er.Entries[i-1]
		if !prev.OK && e.OK {
			t.Errorf("entry %d: success ranked after failure", i)
		}
		if prev.OK && e.OK && prev.Eff < e.Eff {
			t.Errorf("entry %d: efficiency ranking inverted (%v after %v)", i, e.Eff, prev.Eff)
		}
	}

	resp2, body2 := postExplore(t, ts.URL, req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("repeat status %d", resp2.StatusCode)
	}
	if !bytes.Equal(body, body2) {
		t.Error("repeated sweep body differs — cache entries not deterministic")
	}
	snap := s.Metrics().Snapshot()
	if snap.Explores != 2 || snap.Requests != 2 {
		t.Errorf("explores=%d requests=%d, want 2/2", snap.Explores, snap.Requests)
	}
	if snap.Compiles != int64(ncand) {
		t.Errorf("compiles=%d, want %d (second sweep must be pure cache hits)", snap.Compiles, ncand)
	}
	if snap.CacheHits != int64(ncand) || snap.CacheMisses != int64(ncand) {
		t.Errorf("hits=%d misses=%d, want %d/%d", snap.CacheHits, snap.CacheMisses, ncand, ncand)
	}

	// The explore counter reaches the text metrics rendering.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	mb, _ := io.ReadAll(mresp.Body)
	if !strings.Contains(string(mb), "himapd_explores_total 2") {
		t.Error("metrics text missing himapd_explores_total 2")
	}
}

// TestExploreValidation is the rejection table of the explore wire
// contract: strict decoding, candidate-set rules, and kernel selection
// errors all answer before any compile runs, with the right status.
func TestExploreValidation(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxExploreFabrics: 2})
	cases := []struct {
		name   string
		body   string
		status int
	}{
		{"unknown field", `{"kernel":"MVT","rows":4,"cols":4,"bogus":1}`, http.StatusBadRequest},
		{"future schema", `{"schema_version":99,"kernel":"MVT","rows":4,"cols":4}`, http.StatusBadRequest},
		{"rows and fabrics", `{"kernel":"MVT","rows":4,"cols":4,"fabrics":[{"rows":4,"cols":4}]}`, http.StatusBadRequest},
		{"neither rows nor fabrics", `{"kernel":"MVT"}`, http.StatusBadRequest},
		{"array too small", `{"kernel":"MVT","rows":1,"cols":1}`, http.StatusBadRequest},
		{"bad bandwidth", `{"kernel":"MVT","fabrics":[{"rows":4,"cols":4,"bandwidth":"quad"}]}`, http.StatusBadRequest},
		{"bad cost class", `{"kernel":"MVT","fabrics":[{"rows":4,"cols":4,"cost_class":"military"}]}`, http.StatusBadRequest},
		{"too many fabrics", `{"kernel":"MVT","fabrics":[{"rows":4,"cols":4},{"rows":4,"cols":5},{"rows":5,"cols":4}]}`, http.StatusBadRequest},
		{"unknown kernel", `{"kernel":"NOPE","rows":4,"cols":4}`, http.StatusNotFound},
		{"kernel and spec", `{"kernel":"MVT","spec":{"name":"x","dim":1,"tensors":[],"body":[]},"rows":4,"cols":4}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, body := postExplore(t, ts.URL, tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d: %s", tc.name, resp.StatusCode, tc.status, body)
			continue
		}
		var er ErrorResponse
		if err := json.Unmarshal(body, &er); err != nil || er.Error.Code == "" {
			t.Errorf("%s: error body not machine-readable: %s", tc.name, body)
		}
	}
	snap := s.Metrics().Snapshot()
	if snap.BadRequests != int64(len(cases)) {
		t.Errorf("bad_requests=%d, want %d", snap.BadRequests, len(cases))
	}
	if snap.Compiles != 0 {
		t.Errorf("compiles=%d, want 0 — rejections must answer before any compile", snap.Compiles)
	}
}

// TestExploreDeadlineNotCached: a candidate that dies on the sweep's
// deadline answers with the deadline code and is NOT cached, so a retry
// after transient pressure re-runs the compile instead of replaying the
// timeout forever.
func TestExploreDeadlineNotCached(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	s.SetCompileFunc(func(ctx context.Context, req himap.Request) (*himap.Result, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	})
	req := `{"kernel":"MVT","fabrics":[{"rows":4,"cols":4}],"options":{"timeout_ms":40}}`
	for i := 0; i < 2; i++ {
		resp, body := postExplore(t, ts.URL, req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("run %d: status %d: %s", i, resp.StatusCode, body)
		}
		var er ExploreResponse
		if err := json.Unmarshal(body, &er); err != nil {
			t.Fatal(err)
		}
		if len(er.Entries) != 1 || er.Entries[0].OK {
			t.Fatalf("run %d: entries %+v", i, er.Entries)
		}
		if got := er.Entries[0].Error.Code; got != "deadline" {
			t.Fatalf("run %d: error code %q, want deadline", i, got)
		}
	}
	if snap := s.Metrics().Snapshot(); snap.CacheHits != 0 {
		t.Errorf("cache hits %d after two deadline sweeps, want 0 (deadlines must not be cached)", snap.CacheHits)
	}
}
