package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"himap"
	"himap/internal/diag"
)

// wantsStream reports whether the request negotiated the SSE stage-event
// stream (Accept: text/event-stream).
func wantsStream(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), "text/event-stream")
}

// sseWriter renders server-sent events and flushes after each one, so a
// client watching a long compile sees stages as the tracer emits them.
type sseWriter struct {
	w http.ResponseWriter
	f http.Flusher
}

// event writes one SSE frame: "event: <name>\ndata: <json>\n\n". data
// must be a single-line JSON document (json.Marshal output never
// contains raw newlines).
func (s *sseWriter) event(name string, data []byte) {
	fmt.Fprintf(s.w, "event: %s\ndata: %s\n\n", name, data)
	if s.f != nil {
		s.f.Flush()
	}
}

// streamCompile answers one /v1/compile request as an SSE stream: zero
// or more "stage" events in tracer emission order, then exactly one
// terminal event — "result" with the compile response object, or
// "error" with the error body the request would have answered plainly.
//
// Streams resolve before any compile work, so cache hits (memory or
// disk) answer with a lone result event. A streamed compile skips
// singleflight coalescing — its stage events belong to this request's
// own execution, not some concurrent leader's — but its success still
// populates both cache levels for everyone else.
func (s *Server) streamCompile(w http.ResponseWriter, r *http.Request, wire *CompileRequestWire, hreq himap.Request, key string, v int) {
	flusher, _ := w.(http.Flusher)
	sse := &sseWriter{w: w, f: flusher}
	start := func(cacheStatus string) {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-store")
		if cacheStatus != "" {
			w.Header().Set("X-Himap-Cache", cacheStatus)
		}
		w.WriteHeader(http.StatusOK)
	}
	s.metrics.streams.Add(1)

	if body, status, ok := s.cacheGet(key); ok {
		s.metrics.cacheHits.Add(1)
		start(status)
		sse.event(StreamEventResult, bytes.TrimRight(body, "\n"))
		return
	}
	s.metrics.cacheMisses.Add(1)

	ctx, cancel := context.WithTimeout(r.Context(), s.timeout(wire.Options))
	defer cancel()

	release, err := s.admit(ctx)
	if err != nil {
		if errors.Is(err, ErrOverloaded) {
			s.metrics.rejected.Add(1)
		}
		// Nothing streamed yet: reject as a plain HTTP error so clients
		// and proxies see the real status code.
		status, body := renderError(v, err)
		writeBody(w, status, body, "")
		return
	}
	defer release()

	start("miss")

	// Fan each tracer span onto the wire as it happens. SerialTracer
	// serializes concurrent emissions (speculative attempts emit from
	// worker goroutines) so event frames never interleave.
	streamTracer := diag.SerialTracer(func(span diag.Span) {
		ev := StageEventWire{
			Stage:    span.Stage,
			Attempt:  span.Attempt,
			Wave:     span.Wave,
			WallUS:   span.Wall.Microseconds(),
			Err:      span.Err,
			Counters: span.Counters,
		}
		data, err := json.Marshal(ev)
		if err != nil {
			return
		}
		sse.event(StreamEventStage, data)
	})
	hreq.Options.Workers = s.cfg.Workers
	hreq.Options.Tracer = diag.MultiTracer(hreq.Options.Tracer, streamTracer, s.metrics.Tracer())
	hreq.Baseline.Tracer = diag.MultiTracer(hreq.Baseline.Tracer, streamTracer, s.metrics.Tracer())

	s.metrics.compiles.Add(1)
	res, err := s.compile(ctx, hreq)
	if err != nil {
		s.metrics.failures.Add(1)
		_, body := renderError(v, err)
		sse.event(StreamEventError, bytes.TrimRight(body, "\n"))
		return
	}
	body, err := EncodeResponseVersion(res, v)
	if err != nil {
		s.metrics.failures.Add(1)
		_, ebody := renderError(v, err)
		sse.event(StreamEventError, bytes.TrimRight(ebody, "\n"))
		return
	}
	s.cachePut(key, body)
	sse.event(StreamEventResult, bytes.TrimRight(body, "\n"))
}
