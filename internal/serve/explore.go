package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"

	"himap"
	"himap/internal/diag"
)

// BuildFabric converts a wire fabric specification into the fabric the
// server compiles, applying the array-size bound and strict enumeration
// parsing. Shared by /v1/compile and every /v1/explore candidate.
func BuildFabric(f FabricSpec, cfg Config) (himap.Fabric, error) {
	cfg = cfg.withDefaults()
	var fab himap.Fabric
	if f.Rows < 2 || f.Cols < 2 || f.Rows > cfg.MaxArraySide || f.Cols > cfg.MaxArraySide {
		return fab, fmt.Errorf("%w: fabric %dx%d outside [2,%d]", ErrBadRequest, f.Rows, f.Cols, cfg.MaxArraySide)
	}
	topo, err := himap.ParseTopology(f.Topology)
	if err != nil {
		return fab, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	mem, err := himap.ParseMemPolicy(f.MemPEs)
	if err != nil {
		return fab, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	bw, err := himap.ParseBandwidth(f.Bandwidth)
	if err != nil {
		return fab, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	cost, err := himap.ParseCostClass(f.CostClass)
	if err != nil {
		return fab, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	fab = himap.DefaultFabric(f.Rows, f.Cols)
	fab.Topology = topo
	fab.Mem = mem
	fab.Bandwidth = bw
	fab.Cost = cost
	return fab, nil
}

// fabricSpecOf renders a fabric back into its canonical wire form —
// default enumerations stay empty so the spec round-trips through
// CacheKey identically to a client writing the minimal JSON.
func fabricSpecOf(fab himap.Fabric) FabricSpec {
	fs := FabricSpec{Rows: fab.Rows, Cols: fab.Cols}
	if fab.Topology != himap.TopoMesh {
		fs.Topology = fab.Topology.String()
	}
	if fab.Mem != himap.MemAll {
		fs.MemPEs = fab.Mem.String()
	}
	if fab.Bandwidth != himap.BWUnit {
		fs.Bandwidth = fab.Bandwidth.String()
	}
	if fab.Cost != himap.CostBalanced {
		fs.CostClass = fab.Cost.String()
	}
	return fs
}

// exploreCandidates resolves the request's fabric set: an explicit list
// (validated up front, so one bad spec rejects the whole request before
// any compile runs) or the default design-space candidates of a
// Rows×Cols array.
func (s *Server) exploreCandidates(wire *ExploreRequestWire) ([]FabricSpec, error) {
	if len(wire.Fabrics) > 0 {
		if wire.Rows != 0 || wire.Cols != 0 {
			return nil, fmt.Errorf("%w: rows/cols and an explicit fabrics list are mutually exclusive", ErrBadRequest)
		}
		if len(wire.Fabrics) > s.cfg.MaxExploreFabrics {
			return nil, fmt.Errorf("%w: %d fabrics exceed the explore limit %d",
				ErrBadRequest, len(wire.Fabrics), s.cfg.MaxExploreFabrics)
		}
		for i, fs := range wire.Fabrics {
			if _, err := BuildFabric(fs, s.cfg); err != nil {
				return nil, fmt.Errorf("fabrics[%d]: %w", i, err)
			}
		}
		return wire.Fabrics, nil
	}
	if wire.Rows < 2 || wire.Cols < 2 || wire.Rows > s.cfg.MaxArraySide || wire.Cols > s.cfg.MaxArraySide {
		return nil, fmt.Errorf("%w: explore array %dx%d outside [2,%d]", ErrBadRequest, wire.Rows, wire.Cols, s.cfg.MaxArraySide)
	}
	fabs := himap.ExploreFabrics(wire.Rows, wire.Cols)
	if len(fabs) > s.cfg.MaxExploreFabrics {
		fabs = fabs[:s.cfg.MaxExploreFabrics]
	}
	specs := make([]FabricSpec, len(fabs))
	for i, fab := range fabs {
		specs[i] = fabricSpecOf(fab)
	}
	return specs, nil
}

// handleExplore sweeps one kernel across the candidate fabrics and
// returns every outcome ranked: successes by efficiency (desc), then II
// (asc), then fabric name; failures after, by fabric name. Each
// candidate is one admitted, cached compile — repeated sweeps over a
// warm cache are pure cache hits, and a sweep sharing fabrics with past
// /v1/explore requests reuses their entries.
func (s *Server) handleExplore(w http.ResponseWriter, r *http.Request) {
	s.metrics.requests.Add(1)
	s.metrics.explores.Add(1)
	wire, err := DecodeExploreRequest(r.Body)
	if err != nil {
		s.metrics.badRequests.Add(1)
		writeError(w, SchemaVersion, err)
		return
	}
	v := EffectiveVersion(wire.SchemaVersion)
	specs, err := s.exploreCandidates(wire)
	if err != nil {
		s.metrics.badRequests.Add(1)
		writeError(w, v, err)
		return
	}
	// Validate the kernel once up front through a probe compile request;
	// candidate loops reuse the same kernel selection.
	probe := &CompileRequestWire{
		Kernel:  wire.Kernel,
		Spec:    wire.Spec,
		Fabric:  specs[0],
		Options: OptionsSpec{InnerBlock: wire.Options.InnerBlock},
	}
	if _, err := BuildRequest(probe, s.cfg); err != nil {
		s.metrics.badRequests.Add(1)
		writeError(w, v, err)
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(),
		s.timeout(OptionsSpec{TimeoutMS: wire.Options.TimeoutMS}))
	defer cancel()

	entries := make([]ExploreEntry, len(specs))
	for i, fs := range specs {
		entries[i] = s.exploreEntry(ctx, wire, fs)
	}
	rankExplore(entries)
	if v < 2 {
		// Entries are cached version-independently; render the v1 shape
		// (no error_code) at response time.
		for i := range entries {
			if entries[i].Error != nil {
				e := *entries[i].Error
				e.ErrorCode = ""
				entries[i].Error = &e
			}
		}
	}

	resp := ExploreResponse{
		SchemaVersion: v,
		Kernel:        probeKernelName(wire),
		Entries:       entries,
	}
	body, err := json.Marshal(resp)
	if err != nil {
		writeError(w, v, err)
		return
	}
	writeBody(w, http.StatusOK, append(body, '\n'), "")
}

func probeKernelName(wire *ExploreRequestWire) string {
	if wire.Kernel != "" {
		return wire.Kernel
	}
	if wire.Spec != nil {
		return wire.Spec.Name
	}
	return ""
}

// exploreEntry resolves one fabric candidate: cache lookup under the
// explore namespace, else one admitted compile priced by the fabric's
// power model, with the per-stage wall-clock broken out from a
// dedicated tracer. Deterministic outcomes (success and compile
// infeasibility alike) are cached; deadline and overload outcomes are
// not, so a retry after transient pressure re-runs the candidate.
func (s *Server) exploreEntry(ctx context.Context, wire *ExploreRequestWire, fs FabricSpec) ExploreEntry {
	creq := &CompileRequestWire{
		Kernel:  wire.Kernel,
		Spec:    wire.Spec,
		Fabric:  fs,
		Options: OptionsSpec{InnerBlock: wire.Options.InnerBlock},
	}
	key := "explore:" + CacheKey(creq)
	if body, ok := s.cache.get(key); ok {
		s.metrics.cacheHits.Add(1)
		var e ExploreEntry
		if json.Unmarshal(body, &e) == nil {
			return e
		}
	}
	s.metrics.cacheMisses.Add(1)

	hreq, err := BuildRequest(creq, s.cfg)
	fab := hreq.Fabric
	e := ExploreEntry{Fabric: fab.String()}
	if err != nil {
		// Candidates were validated up front; reaching this means the
		// compile limits changed between validation and execution.
		_, eb := classifyError(err)
		e.Error = &eb
		return e
	}

	release, err := s.admit(ctx)
	if err != nil {
		if errors.Is(err, ErrOverloaded) {
			s.metrics.rejected.Add(1)
		}
		_, eb := classifyError(err)
		e.Error = &eb
		return e
	}
	defer release()

	col := diag.NewCollector()
	hreq.Options.Workers = s.cfg.Workers
	hreq.Options.Tracer = diag.MultiTracer(col, s.metrics.Tracer())

	s.metrics.compiles.Add(1)
	res, err := s.compile(ctx, hreq)
	stageMS := map[string]float64{}
	for stage, d := range col.StageWall() {
		stageMS[stage] = float64(d.Microseconds()) / 1000
	}
	if err != nil {
		s.metrics.failures.Add(1)
		_, eb := classifyError(err)
		e.Error = &eb
		e.StageMS = stageMS
		if eb.Code != "deadline" && eb.Code != "overloaded" {
			s.cachePutEntry(key, e)
		}
		return e
	}
	model := himap.PowerModelFor(fab)
	e.OK = true
	e.II = res.Config.II
	e.Block = res.Block
	e.Utilization = res.Utilization
	e.MOPS = model.PerformanceMOPS(res.Config)
	e.PowerMW = model.PowerMW(res.Config)
	e.Eff = model.EfficiencyMOPSPerMW(res.Config)
	e.StageMS = stageMS
	s.cachePutEntry(key, e)
	return e
}

func (s *Server) cachePutEntry(key string, e ExploreEntry) {
	if body, err := json.Marshal(e); err == nil {
		s.cache.put(key, body)
	}
}

// rankExplore orders entries deterministically: successes by power
// efficiency (desc), II (asc), fabric name (asc); failures after, by
// fabric name.
func rankExplore(entries []ExploreEntry) {
	sort.SliceStable(entries, func(a, b int) bool {
		x, y := entries[a], entries[b]
		if x.OK != y.OK {
			return x.OK
		}
		if x.OK {
			if x.Eff != y.Eff {
				return x.Eff > y.Eff
			}
			if x.II != y.II {
				return x.II < y.II
			}
		}
		return x.Fabric < y.Fabric
	})
}
