package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"himap"
	"himap/internal/diag"
	"himap/internal/kernel"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := MustNew(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postCompile(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/compile", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/compile: %v", err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, b
}

func kernelRequest(name string, rows, cols int) string {
	return fmt.Sprintf(`{"kernel":%q,"fabric":{"rows":%d,"cols":%d},"options":{}}`, name, rows, cols)
}

// TestServedByteIdenticalToDirect is the serving layer's core contract:
// for every evaluation kernel, the HTTP body equals the bytes a direct
// himap.CompileRequest of the same request renders to.
func TestServedByteIdenticalToDirect(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, k := range kernel.Evaluation() {
		resp, served := postCompile(t, ts.URL, kernelRequest(k.Name, 4, 4))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", k.Name, resp.StatusCode, served)
		}
		var wire CompileRequestWire
		if err := json.Unmarshal([]byte(kernelRequest(k.Name, 4, 4)), &wire); err != nil {
			t.Fatal(err)
		}
		hreq, err := BuildRequest(&wire, Config{})
		if err != nil {
			t.Fatalf("%s: BuildRequest: %v", k.Name, err)
		}
		res, err := himap.CompileRequest(context.Background(), hreq)
		if err != nil {
			t.Fatalf("%s: direct compile: %v", k.Name, err)
		}
		direct, err := EncodeResponse(res)
		if err != nil {
			t.Fatalf("%s: EncodeResponse: %v", k.Name, err)
		}
		if !bytes.Equal(served, direct) {
			t.Errorf("%s: served body differs from direct compile (%d vs %d bytes)",
				k.Name, len(served), len(direct))
		}
		var cr CompileResponse
		if err := json.Unmarshal(served, &cr); err != nil {
			t.Fatalf("%s: response not valid JSON: %v", k.Name, err)
		}
		if cr.SchemaVersion != SchemaVersion {
			t.Errorf("%s: schema_version %d, want %d", k.Name, cr.SchemaVersion, SchemaVersion)
		}
		if cr.II < 1 || len(cr.Bitstream) == 0 || len(cr.Config) == 0 {
			t.Errorf("%s: incomplete response: ii=%d bitstream=%dB config=%dB",
				k.Name, cr.II, len(cr.Bitstream), len(cr.Config))
		}
	}
}

// TestCacheHitIdenticalBytes: a repeated request is served from the
// cache — byte-identical body, hit marker in the header only.
func TestCacheHitIdenticalBytes(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	req := kernelRequest("MVT", 4, 4)
	resp1, body1 := postCompile(t, ts.URL, req)
	resp2, body2 := postCompile(t, ts.URL, req)
	if resp1.StatusCode != http.StatusOK || resp2.StatusCode != http.StatusOK {
		t.Fatalf("status %d / %d", resp1.StatusCode, resp2.StatusCode)
	}
	if got := resp1.Header.Get("X-Himap-Cache"); got != "miss" {
		t.Errorf("first request cache header %q, want miss", got)
	}
	if got := resp2.Header.Get("X-Himap-Cache"); got != "hit" {
		t.Errorf("second request cache header %q, want hit", got)
	}
	if !bytes.Equal(body1, body2) {
		t.Error("cached body differs from compiled body")
	}
	snap := s.Metrics().Snapshot()
	if snap.Compiles != 1 || snap.CacheHits != 1 || snap.CacheMisses != 1 {
		t.Errorf("compiles=%d hits=%d misses=%d, want 1/1/1",
			snap.Compiles, snap.CacheHits, snap.CacheMisses)
	}
}

// TestSingleflightCoalescing: N concurrent identical requests run
// exactly one compile; every response carries the same bytes.
func TestSingleflightCoalescing(t *testing.T) {
	const n = 6
	s, ts := newTestServer(t, Config{MaxInFlight: 4})
	gate := make(chan struct{})
	s.SetCompileFunc(func(ctx context.Context, req himap.Request) (*himap.Result, error) {
		<-gate
		return nil, diag.Failf(diag.ErrRouteCongested, "stubbed congestion")
	})

	var wg sync.WaitGroup
	bodies := make([][]byte, n)
	statuses := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, b := postCompile(t, ts.URL, kernelRequest("GEMM", 4, 4))
			statuses[i], bodies[i] = resp.StatusCode, b
		}(i)
	}
	// Release the leader only once every follower is parked on its call,
	// so the test proves coalescing rather than cache hits.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if s.Metrics().Snapshot().Coalesced == n-1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("followers never coalesced: %+v", s.Metrics().Snapshot())
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()

	for i := 0; i < n; i++ {
		if statuses[i] != http.StatusUnprocessableEntity {
			t.Errorf("request %d: status %d, want 422", i, statuses[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Errorf("request %d: body differs from request 0", i)
		}
	}
	snap := s.Metrics().Snapshot()
	if snap.Compiles != 1 {
		t.Errorf("compiles = %d, want exactly 1", snap.Compiles)
	}
	if snap.Coalesced != n-1 {
		t.Errorf("coalesced = %d, want %d", snap.Coalesced, n-1)
	}
}

// TestOverloadTypedRejection: with one worker and no queue, a second
// distinct request is rejected with the typed 429 body.
func TestOverloadTypedRejection(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInFlight: 1, MaxQueue: -1})
	started := make(chan struct{})
	gate := make(chan struct{})
	s.SetCompileFunc(func(ctx context.Context, req himap.Request) (*himap.Result, error) {
		close(started)
		<-gate
		return nil, diag.Failf(diag.ErrRouteCongested, "stubbed")
	})

	done := make(chan struct{})
	go func() {
		defer close(done)
		postCompile(t, ts.URL, kernelRequest("GEMM", 4, 4))
	}()
	<-started

	resp, body := postCompile(t, ts.URL, kernelRequest("MVT", 4, 4))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", resp.StatusCode, body)
	}
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatalf("429 body not JSON: %v", err)
	}
	if er.SchemaVersion != SchemaVersion || er.Error.Code != "overloaded" {
		t.Errorf("429 body = %+v, want schema %d code overloaded", er, SchemaVersion)
	}
	close(gate)
	<-done
	if got := s.Metrics().Snapshot().Rejected; got != 1 {
		t.Errorf("rejected = %d, want 1", got)
	}
}

// TestDeadlineExpiry: a request-level timeout cancels the compile and
// answers 504 with the deadline code.
func TestDeadlineExpiry(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	s.SetCompileFunc(func(ctx context.Context, req himap.Request) (*himap.Result, error) {
		<-ctx.Done()
		return nil, diag.Fail(diag.ErrCanceled, ctx.Err())
	})
	body := `{"kernel":"GEMM","fabric":{"rows":4,"cols":4},"options":{"timeout_ms":30}}`
	resp, b := postCompile(t, ts.URL, body)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", resp.StatusCode, b)
	}
	var er ErrorResponse
	if err := json.Unmarshal(b, &er); err != nil || er.Error.Code != "deadline" {
		t.Errorf("504 body = %s (err %v), want code deadline", b, err)
	}
}

// TestStrictDecodeAndValidation: malformed requests get typed 4xx
// bodies, never a compile.
func TestStrictDecodeAndValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name   string
		body   string
		status int
		code   string
	}{
		{"unknown field", `{"kernel":"GEMM","fabric":{"rows":4,"cols":4},"optionz":{}}`, 400, "bad_request"},
		{"trailing data", kernelRequest("GEMM", 4, 4) + `{"again":true}`, 400, "bad_request"},
		{"no kernel", `{"fabric":{"rows":4,"cols":4},"options":{}}`, 400, "bad_request"},
		{"unknown kernel", kernelRequest("NOPE", 4, 4), 404, "unknown_kernel"},
		{"fabric too small", kernelRequest("GEMM", 1, 4), 400, "bad_request"},
		{"fabric too large", kernelRequest("GEMM", 4, 4096), 400, "bad_request"},
		{"bad mapper", `{"kernel":"GEMM","fabric":{"rows":4,"cols":4},"options":{"mapper":"magic"}}`, 400, "bad_request"},
		{"block on himap", `{"kernel":"GEMM","fabric":{"rows":4,"cols":4},"options":{"block":[4,4,4]}}`, 400, "bad_request"},
		{"future schema", `{"schema_version":3,"kernel":"GEMM","fabric":{"rows":4,"cols":4}}`, 400, "bad_request"},
	}
	for _, tc := range cases {
		resp, b := postCompile(t, ts.URL, tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d: %s", tc.name, resp.StatusCode, tc.status, b)
			continue
		}
		var er ErrorResponse
		if err := json.Unmarshal(b, &er); err != nil {
			t.Errorf("%s: body not JSON: %v", tc.name, err)
			continue
		}
		if er.SchemaVersion != SchemaVersion || er.Error.Code != tc.code {
			t.Errorf("%s: body %+v, want schema %d code %s", tc.name, er, SchemaVersion, tc.code)
		}
	}
}

// TestInlineSpecConventional compiles an inline wire-specified kernel
// through the conventional mapper.
func TestInlineSpecConventional(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := `{
		"spec": {
			"name": "WIRE1D", "dim": 1, "min_block": 2,
			"tensors": [
				{"name": "A", "dims": [{"coef": [1]}]},
				{"name": "B", "dims": [{"coef": [1]}]},
				{"name": "C", "out": true, "dims": [{"coef": [1]}]}
			],
			"body": [{
				"op": "mul",
				"a": [{"src": {"kind": "mem", "tensor": "A", "map": [{"coef": [1]}]}}],
				"b": [{"src": {"kind": "mem", "tensor": "B", "map": [{"coef": [1]}]}}],
				"stores": [{"tensor": "C", "map": [{"coef": [1]}]}]
			}]
		},
		"fabric": {"rows": 4, "cols": 4},
		"options": {"mapper": "conventional", "block": [4], "seed": 1}
	}`
	resp, b := postCompile(t, ts.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	var cr CompileResponse
	if err := json.Unmarshal(b, &cr); err != nil {
		t.Fatal(err)
	}
	if cr.Mapper != "conventional" || cr.Kernel != "WIRE1D" || cr.II < 1 {
		t.Errorf("response %+v, want conventional WIRE1D with II >= 1", cr)
	}
}

// TestKernelsHealthzMetrics covers the observability endpoints.
func TestKernelsHealthzMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	postCompile(t, ts.URL, kernelRequest("MVT", 4, 4))

	resp, err := http.Get(ts.URL + "/v1/kernels")
	if err != nil {
		t.Fatal(err)
	}
	var kr KernelsResponse
	if err := json.NewDecoder(resp.Body).Decode(&kr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if kr.SchemaVersion != SchemaVersion || len(kr.Kernels) < 8 {
		t.Errorf("kernels response: schema %d, %d kernels", kr.SchemaVersion, len(kr.Kernels))
	}
	found := false
	for _, k := range kr.Kernels {
		if k.Name == "GEMM" {
			found = true
		}
	}
	if !found {
		t.Error("GEMM missing from /v1/kernels")
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(string(hb)) != "ok" {
		t.Errorf("healthz: %d %q", resp.StatusCode, hb)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(mb)
	for _, want := range []string{"himapd_requests_total 1", "himapd_compiles_total 1", "himapd_cache_misses_total 1", "himapd_stage_count"} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics text missing %q:\n%s", want, text)
		}
	}

	resp, err = http.Get(ts.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if snap.SchemaVersion != SchemaVersion || snap.Requests != 1 || snap.Compiles != 1 {
		t.Errorf("metrics JSON %+v, want 1 request / 1 compile", snap)
	}
	if len(snap.Stages) == 0 {
		t.Error("metrics JSON has no stage histograms")
	}
}

// TestCacheEviction: a tiny byte budget evicts the least recently used
// entry; both requests still serve correct bytes.
func TestCacheEviction(t *testing.T) {
	c := newCache(100)
	a := bytes.Repeat([]byte("a"), 60)
	b := bytes.Repeat([]byte("b"), 60)
	c.put("a", a)
	c.put("b", b) // evicts a (60+60 > 100)
	if _, ok := c.get("a"); ok {
		t.Error("entry a should have been evicted")
	}
	if got, ok := c.get("b"); !ok || !bytes.Equal(got, b) {
		t.Error("entry b missing or corrupt")
	}
	if n, size := c.stats(); n != 1 || size != 60 {
		t.Errorf("stats = %d entries / %d bytes, want 1/60", n, size)
	}
	c.put("huge", bytes.Repeat([]byte("h"), 200)) // over budget: not cached
	if _, ok := c.get("huge"); ok {
		t.Error("oversized entry should not be cached")
	}
}

// TestCacheKeyIgnoresTimeout: the timeout cannot change the mapping, so
// it must not split the cache.
func TestCacheKeyIgnoresTimeout(t *testing.T) {
	var a, b CompileRequestWire
	base := kernelRequest("GEMM", 4, 4)
	if err := json.Unmarshal([]byte(base), &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(base), &b); err != nil {
		t.Fatal(err)
	}
	b.Options.TimeoutMS = 5000
	if CacheKey(&a) != CacheKey(&b) {
		t.Error("timeout_ms changed the cache key")
	}
	b.Options.TimeoutMS = 0
	b.SchemaVersion = SchemaVersion
	if CacheKey(&a) != CacheKey(&b) {
		t.Error("explicit schema_version changed the cache key")
	}
	b.SchemaVersion = 1
	if CacheKey(&a) == CacheKey(&b) {
		t.Error("a version-1 pin must own its own key space (v1 bodies differ from v2)")
	}
	b.SchemaVersion = 0
	b.Fabric.Rows = 8
	if CacheKey(&a) == CacheKey(&b) {
		t.Error("different fabrics share a cache key")
	}
}

// TestExactMapperWire drives the exact backend end to end over HTTP:
// "mapper": "exact" compiles, the response stamps the backend identity,
// and the optimality block carries the proved-minimal certificate.
func TestExactMapperWire(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := `{"kernel":"MVT","fabric":{"rows":4,"cols":4},"options":{"mapper":"exact","block":[2,2]}}`
	resp, b := postCompile(t, ts.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	var cr CompileResponse
	if err := json.Unmarshal(b, &cr); err != nil {
		t.Fatal(err)
	}
	if cr.Mapper != string(himap.MapperExact) {
		t.Errorf("mapper %q, want %q", cr.Mapper, himap.MapperExact)
	}
	if cr.Optimality == nil {
		t.Fatal("optimality block missing from exact response")
	}
	if !cr.Optimality.ProvedMinimal || cr.Optimality.Certificate != string(himap.CertResMII) {
		t.Errorf("optimality %+v, want proved minimal with resmii certificate", cr.Optimality)
	}
	if cr.II != cr.Optimality.IILowerBound {
		t.Errorf("proved-minimal ii %d != lower bound %d", cr.II, cr.Optimality.IILowerBound)
	}

	// The himap and conventional paths must not grow an optimality block.
	resp, b = postCompile(t, ts.URL, kernelRequest("MVT", 4, 4))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("himap status %d: %s", resp.StatusCode, b)
	}
	cr = CompileResponse{}
	if err := json.Unmarshal(b, &cr); err != nil {
		t.Fatal(err)
	}
	if cr.Optimality != nil {
		t.Errorf("himap response grew an optimality block: %+v", cr.Optimality)
	}
}

// TestExactCellGuard pins the -max-exact-cells admission wall: an
// instance past the configured cell budget is refused as infeasible
// without searching.
func TestExactCellGuard(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxExactCells: 4})
	body := `{"kernel":"MVT","fabric":{"rows":4,"cols":4},"options":{"mapper":"exact","block":[2,2]}}`
	resp, b := postCompile(t, ts.URL, body)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422: %s", resp.StatusCode, b)
	}
	var er ErrorResponse
	if err := json.Unmarshal(b, &er); err != nil {
		t.Fatal(err)
	}
	if er.Error.Code != "infeasible" || !strings.Contains(er.Error.Message, "exact-search wall") {
		t.Errorf("error %+v, want infeasible citing the exact-search wall", er.Error)
	}
}

// TestExactMapperRejectsForeignOptions: seed and inner_block belong to
// the other backends and are rejected with the usual 400 discipline.
func TestExactMapperRejectsForeignOptions(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, body := range []string{
		`{"kernel":"MVT","fabric":{"rows":4,"cols":4},"options":{"mapper":"exact","seed":7}}`,
		`{"kernel":"MVT","fabric":{"rows":4,"cols":4},"options":{"mapper":"exact","inner_block":2}}`,
	} {
		resp, b := postCompile(t, ts.URL, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("status %d, want 400: %s", resp.StatusCode, b)
		}
	}
}
