package exp

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"himap/internal/arch"
	"himap/internal/diag"
	"himap/internal/himap"
	"himap/internal/kernel"
	"himap/internal/par"
	"himap/internal/power"
)

// ExplorePoint is one cell of the design-space sweep: one kernel
// compiled on one fabric candidate, priced by that fabric's power
// model. Failed candidates stay in the list with their typed failure
// class, so a sweep doubles as a feasibility map of the design space.
type ExplorePoint struct {
	Kernel string `json:"kernel"`
	Fabric string `json:"fabric"`
	OK     bool   `json:"ok"`
	// Fail is the diag failure class of a failed compile ("" when OK) —
	// e.g. "link-bandwidth demand infeasible on fabric".
	Fail        string  `json:"fail,omitempty"`
	IIB         int     `json:"ii_b,omitempty"`
	Utilization float64 `json:"utilization,omitempty"`
	MOPS        float64 `json:"mops,omitempty"`
	PowerMW     float64 `json:"power_mw,omitempty"`
	Eff         float64 `json:"eff_mops_per_mw,omitempty"`
	WallMS      float64 `json:"wall_ms"`
}

// ExploreConfig tunes the sweep.
type ExploreConfig struct {
	Kernels []*kernel.Kernel // default: the eight Table-II kernels
	Fabrics []arch.Fabric    // default: arch.ExploreFabrics(8, 8)
	// Workers bounds concurrent (kernel, fabric) points; each point's
	// compile runs single-threaded. 0 means runtime.GOMAXPROCS(0).
	Workers int
}

func (c ExploreConfig) withDefaults() ExploreConfig {
	if len(c.Kernels) == 0 {
		c.Kernels = kernel.Evaluation()
	}
	if len(c.Fabrics) == 0 {
		c.Fabrics = arch.ExploreFabrics(8, 8)
	}
	return c
}

// Explore compiles every kernel on every fabric candidate and ranks the
// results per kernel by power efficiency. The returned order is fully
// deterministic: kernels keep their input order; within a kernel,
// successful points sort by efficiency (desc), then II (asc), then
// fabric name; failed points follow, by fabric name.
func Explore(cfg ExploreConfig) []ExplorePoint {
	cfg = cfg.withDefaults()
	type job struct {
		k   *kernel.Kernel
		ki  int
		fab arch.Fabric
	}
	var jobs []job
	for ki, k := range cfg.Kernels {
		for _, fab := range cfg.Fabrics {
			jobs = append(jobs, job{k: k, ki: ki, fab: fab})
		}
	}
	type cell struct {
		p  ExplorePoint
		ki int
	}
	cells := par.Map(par.Workers(cfg.Workers), len(jobs), func(i int) cell {
		j := jobs[i]
		p := ExplorePoint{Kernel: j.k.Name, Fabric: j.fab.String()}
		start := time.Now()
		res, err := himap.CompileFabric(j.k, j.fab, himap.Options{Workers: 1})
		p.WallMS = float64(time.Since(start).Microseconds()) / 1000
		if err != nil {
			p.Fail = failClass(err)
			return cell{p: p, ki: j.ki}
		}
		model := power.ModelFor(j.fab)
		p.OK = true
		p.IIB = res.IIB
		p.Utilization = res.Utilization
		p.MOPS = model.PerformanceMOPS(res.Config)
		p.PowerMW = model.PowerMW(res.Config)
		p.Eff = model.EfficiencyMOPSPerMW(res.Config)
		return cell{p: p, ki: j.ki}
	})
	sort.SliceStable(cells, func(a, b int) bool {
		x, y := cells[a], cells[b]
		if x.ki != y.ki {
			return x.ki < y.ki
		}
		if x.p.OK != y.p.OK {
			return x.p.OK
		}
		if x.p.OK {
			if x.p.Eff != y.p.Eff {
				return x.p.Eff > y.p.Eff
			}
			if x.p.IIB != y.p.IIB {
				return x.p.IIB < y.p.IIB
			}
		}
		return x.p.Fabric < y.p.Fabric
	})
	out := make([]ExplorePoint, len(cells))
	for i, c := range cells {
		out[i] = c.p
	}
	return out
}

// failClass names the taxonomy class of a compile failure — the
// stable, message-free identity callers dispatch on with errors.Is.
func failClass(err error) string {
	var se *diag.StageError
	if errors.As(err, &se) && se.Class != nil {
		return se.Class.Error()
	}
	return "failed"
}

// FormatExplore renders the sweep as a per-kernel efficiency ranking.
func FormatExplore(points []ExplorePoint) string {
	var b strings.Builder
	b.WriteString("Design-space exploration: per-kernel fabric ranking by MOPS/mW\n")
	prev := ""
	for _, p := range points {
		if p.Kernel != prev {
			fmt.Fprintf(&b, "\n%s:\n", p.Kernel)
			fmt.Fprintf(&b, "  %-40s %5s %7s %10s %9s %8s\n",
				"fabric", "II_B", "U", "MOPS", "mW", "MOPS/mW")
			prev = p.Kernel
		}
		if p.OK {
			fmt.Fprintf(&b, "  %-40s %5d %6.1f%% %10.0f %9.1f %8.1f\n",
				p.Fabric, p.IIB, p.Utilization*100, p.MOPS, p.PowerMW, p.Eff)
		} else {
			fmt.Fprintf(&b, "  %-40s %s\n", p.Fabric, p.Fail)
		}
	}
	return b.String()
}
