package exp

import (
	"fmt"
	"io"
	"strings"
	"time"

	"himap/internal/arch"
	"himap/internal/baseline"
	"himap/internal/exact"
	"himap/internal/himap"
	"himap/internal/kernel"
)

// ExactGapPoint is one row of the quality-gap study: the same small
// instance (kernel × block × fabric) mapped by the exact
// branch-and-bound solver and by the SA baseline, next to the HiMap
// flow on the same fabric (HiMap derives its own block, so its row
// carries that block and the exact lower bound recomputed for it).
type ExactGapPoint struct {
	Kernel      string  `json:"kernel"`
	Size        int     `json:"size"`
	Block       []int   `json:"block"`
	ExactII     int     `json:"exact_ii"`
	Proved      bool    `json:"proved_minimal"`
	Certificate string  `json:"certificate,omitempty"`
	LowerBound  int     `json:"ii_lower_bound"`
	ExactMS     float64 `json:"exact_ms"`
	SAII        int     `json:"sa_ii"`
	HiMapII     int     `json:"himap_ii"`
	HiMapBlock  []int   `json:"himap_block"`
	HiMapLB     int     `json:"himap_ii_lower_bound"`
}

// ExactGap maps every evaluation kernel at block size blockSize on a
// size×size fabric with the exact solver (bounded by budget per
// kernel) and the SA baseline, and compiles the HiMap flow on the same
// fabric for reference. The exact column is the quality oracle: SAII
// and (when blocks match) HiMapII can never beat a proved-minimal
// ExactII.
func ExactGap(size, blockSize int, budget time.Duration) ([]ExactGapPoint, error) {
	fab := arch.DefaultFabric(size, size)
	var rows []ExactGapPoint
	for _, k := range kernel.Evaluation() {
		block := k.UniformBlock(blockSize)
		eres, err := exact.Compile(k, arch.Default(size, size), block, exact.Options{TimeBudget: budget})
		if err != nil {
			return nil, fmt.Errorf("exp: exact gap %s: %v", k.Name, err)
		}
		bres, err := baseline.Compile(k, arch.Default(size, size), block, baseline.Options{Seed: 1})
		if err != nil {
			return nil, fmt.Errorf("exp: exact gap SA %s: %v", k.Name, err)
		}
		hres, err := himap.Compile(k, arch.Default(size, size), himap.Options{Workers: 1})
		if err != nil {
			return nil, fmt.Errorf("exp: exact gap himap %s: %v", k.Name, err)
		}
		hlb, err := exact.LowerBound(k, fab, hres.Block)
		if err != nil {
			return nil, fmt.Errorf("exp: exact gap lower bound %s: %v", k.Name, err)
		}
		rows = append(rows, ExactGapPoint{
			Kernel:      k.Name,
			Size:        size,
			Block:       block,
			ExactII:     eres.II,
			Proved:      eres.Optimality.ProvedMinimal,
			Certificate: string(eres.Optimality.Certificate),
			LowerBound:  eres.Optimality.IILowerBound,
			ExactMS:     float64(eres.Time.Microseconds()) / 1000,
			SAII:        bres.II,
			HiMapII:     hres.IIB,
			HiMapBlock:  hres.Block,
			HiMapLB:     hlb,
		})
	}
	return rows, nil
}

// WriteGapTable renders the quality-gap rows as the text table behind
// `experiments -gap`.
func WriteGapTable(w io.Writer, rows []ExactGapPoint) {
	fmt.Fprintf(w, "Quality gap vs exact solver (SA and exact share the block; HiMap derives its own)\n")
	fmt.Fprintf(w, "%-8s %-8s %9s %-11s %4s %9s %6s %9s %-8s %8s\n",
		"kernel", "block", "exact II", "cert", "lb", "exact ms", "SA II", "himap II", "block", "himap lb")
	for _, r := range rows {
		cert := r.Certificate
		if !r.Proved {
			cert = "unproven"
		}
		fmt.Fprintf(w, "%-8s %-8s %9d %-11s %4d %9.1f %6d %9d %-8s %8d\n",
			r.Kernel, blockStr(r.Block), r.ExactII, cert, r.LowerBound, r.ExactMS,
			r.SAII, r.HiMapII, blockStr(r.HiMapBlock), r.HiMapLB)
	}
}

func blockStr(b []int) string {
	parts := make([]string, len(b))
	for i, v := range b {
		parts[i] = fmt.Sprint(v)
	}
	return strings.Join(parts, "x")
}
