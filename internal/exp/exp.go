// Package exp regenerates every table and figure of the paper's
// evaluation (§VI): Table I (kernel categorization), Table II (kernel
// characteristics / max unique iterations), Figure 7 (utilization,
// performance, and power efficiency of BHC vs HiMap across CGRA sizes),
// and Figure 8 (compilation time vs block size). It is shared by
// cmd/experiments and the repository's benchmark harness; EXPERIMENTS.md
// records paper-vs-measured values.
package exp

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"himap/internal/arch"
	"himap/internal/baseline"
	"himap/internal/himap"
	"himap/internal/kernel"
	"himap/internal/par"
	"himap/internal/power"
)

// Config tunes the experiment harness.
type Config struct {
	Sizes            []int // CGRA sizes (c for c×c); default 4, 8, 16, 32
	Kernels          []*kernel.Kernel
	BaselineBudget   time.Duration // wall-clock budget per baseline point
	BaselineMaxNodes int           // the baseline's DFG scalability wall
	InnerBlock       int           // HiMap's b3.. extent (0: per-kernel default)
	Seed             int64
	// Workers bounds how many (kernel, size) points are measured
	// concurrently. Results are always collected in the sequential point
	// order regardless of the worker count; each point's compile runs
	// single-threaded so points — not compiles — are the unit of
	// parallelism. 0 means runtime.GOMAXPROCS(0).
	Workers int
	// Progress, when set, receives each Fig-7 point as it is measured.
	// With Workers > 1 points may arrive out of order; calls are
	// serialized.
	Progress func(Fig7Point)
}

func (c Config) withDefaults() Config {
	if len(c.Sizes) == 0 {
		c.Sizes = []int{4, 8, 16, 32}
	}
	if len(c.Kernels) == 0 {
		c.Kernels = kernel.Evaluation()
	}
	if c.BaselineBudget == 0 {
		c.BaselineBudget = 20 * time.Second
	}
	if c.BaselineMaxNodes == 0 {
		c.BaselineMaxNodes = 400
	}
	return c
}

// ---------------------------------------------------------------- Table I

// TableI renders the loop-kernel categorization.
func TableI() string {
	cat := kernel.Categorize(kernel.Catalog())
	var b strings.Builder
	b.WriteString("Table I: loop kernel categorization\n")
	cols := []struct{ key, title string }{
		{"no-dep", "No inter-iteration dependency (Dim 1/2/3)"},
		{"dep-dim1", "With dependency, Dim = 1"},
		{"dep-dim2", "With dependency, Dim = 2"},
		{"dep-dim3", "With dependency, Dim = 3"},
		{"dep-dim4", "With dependency, Dim = 4"},
	}
	for _, col := range cols {
		infos := cat[col.key]
		fmt.Fprintf(&b, "\n%s (%d kernels):\n", col.title, len(infos))
		bySuite := map[string][]string{}
		for _, in := range infos {
			bySuite[in.Suite] = append(bySuite[in.Suite], in.Name)
		}
		suites := make([]string, 0, len(bySuite))
		for s := range bySuite {
			suites = append(suites, s)
		}
		sort.Strings(suites)
		for _, s := range suites {
			fmt.Fprintf(&b, "  %-10s %s\n", s+":", strings.Join(bySuite[s], ", "))
		}
	}
	b.WriteString("\nHiMap targets the multi-dimensional (Dim > 1) kernels with inter-iteration dependencies.\n")
	return b.String()
}

// --------------------------------------------------------------- Table II

// PaperUnique holds Table II's published "max unique iterations".
var PaperUnique = map[string]int{
	"ADI": 3, "ATAX": 9, "BICG": 9, "MVT": 9,
	"GEMM": 27, "SYRK": 27, "FW": 34, "TTM": 45,
}

// TableIIRow is one measured kernel characteristic.
type TableIIRow struct {
	Kernel    string
	Dim       int
	Desc      string
	MaxUnique int // measured on this implementation
	PaperMax  int
}

// TableII compiles every kernel on a c×c array and reports the measured
// unique-iteration counts next to the paper's.
func TableII(size int, cfg Config) ([]TableIIRow, error) {
	cfg = cfg.withDefaults()
	type cell struct {
		row TableIIRow
		err error
	}
	cells := par.Map(par.Workers(cfg.Workers), len(cfg.Kernels), func(i int) cell {
		k := cfg.Kernels[i]
		res, err := himap.Compile(k, arch.Default(size, size), himap.Options{InnerBlock: cfg.InnerBlock, Workers: 1})
		if err != nil {
			return cell{err: fmt.Errorf("exp: TableII %s: %v", k.Name, err)}
		}
		return cell{row: TableIIRow{
			Kernel:    k.Name,
			Dim:       k.Dim,
			Desc:      k.Desc,
			MaxUnique: res.UniqueIters,
			PaperMax:  PaperUnique[k.Name],
		}}
	})
	rows := make([]TableIIRow, 0, len(cells))
	for _, c := range cells {
		if c.err != nil {
			return nil, c.err
		}
		rows = append(rows, c.row)
	}
	return rows, nil
}

// FormatTableII renders the rows.
func FormatTableII(rows []TableIIRow) string {
	var b strings.Builder
	b.WriteString("Table II: characteristics of the multi-dimensional kernels\n")
	fmt.Fprintf(&b, "%-8s %-4s %-48s %10s %10s\n", "Kernel", "Dim", "Description", "unique", "paper")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %-4d %-48s %10d %10d\n", r.Kernel, r.Dim, r.Desc, r.MaxUnique, r.PaperMax)
	}
	return b.String()
}

// ----------------------------------------------------------------- Fig 7

// Fig7Point is one (kernel, CGRA size) comparison of Figure 7's three
// panels: utilization, performance (MOPS), power efficiency (MOPS/mW).
type Fig7Point struct {
	Kernel string
	Size   int

	HiMapU, HiMapMOPS, HiMapEff float64
	HiMapBlock                  []int
	HiMapTime                   time.Duration

	BHCU, BHCMOPS, BHCEff float64
	BHCBlock              []int
	BHCTime               time.Duration
	BHCNote               string // "", "block capped by node wall", "timeout/shrunk", "failed"
}

// Fig7 runs the utilization / performance / power-efficiency comparison.
// Points are measured Workers at a time but reported in sequential
// (kernel-major, size-minor) order.
func Fig7(cfg Config) ([]Fig7Point, error) {
	cfg = cfg.withDefaults()
	model := power.Default40nm()
	type job struct {
		k    *kernel.Kernel
		size int
	}
	var jobs []job
	for _, k := range cfg.Kernels {
		for _, size := range cfg.Sizes {
			jobs = append(jobs, job{k: k, size: size})
		}
	}
	type cell struct {
		p   Fig7Point
		err error
	}
	var progressMu sync.Mutex
	cells := par.Map(par.Workers(cfg.Workers), len(jobs), func(i int) cell {
		k, size := jobs[i].k, jobs[i].size
		p := Fig7Point{Kernel: k.Name, Size: size}
		res, err := himap.Compile(k, arch.Default(size, size), himap.Options{InnerBlock: cfg.InnerBlock, Workers: 1})
		if err != nil {
			return cell{err: fmt.Errorf("exp: Fig7 HiMap %s %dx%d: %v", k.Name, size, size, err)}
		}
		p.HiMapU = res.Utilization
		p.HiMapMOPS = model.PerformanceMOPS(res.Config)
		p.HiMapEff = model.EfficiencyMOPSPerMW(res.Config)
		p.HiMapBlock = res.Block
		p.HiMapTime = res.Stats.Total

		bres, note := runBaselineBestEffort(k, size, cfg)
		p.BHCNote = note
		if bres != nil {
			p.BHCU = bres.Utilization
			p.BHCMOPS = model.PerformanceMOPS(bres.Config)
			p.BHCEff = model.EfficiencyMOPSPerMW(bres.Config)
			p.BHCBlock = bres.Block
			p.BHCTime = bres.Time
		}
		if cfg.Progress != nil {
			progressMu.Lock()
			cfg.Progress(p)
			progressMu.Unlock()
		}
		return cell{p: p}
	})
	out := make([]Fig7Point, 0, len(cells))
	for _, c := range cells {
		if c.err != nil {
			return nil, c.err
		}
		out = append(out, c.p)
	}
	return out, nil
}

// runBaselineBestEffort drives the conventional mapper the way §VI
// describes users driving BHC: the largest block whose DFG fits under the
// node wall, shrinking when the time budget cannot close a mapping.
func runBaselineBestEffort(k *kernel.Kernel, size int, cfg Config) (*baseline.Result, string) {
	b := baseline.LargestFeasibleBlock(k, cfg.BaselineMaxNodes, size)
	note := ""
	if b < size {
		note = "block capped by node wall"
	}
	deadline := time.Now().Add(cfg.BaselineBudget)
	for ; b >= k.MinBlock; b-- {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			break
		}
		res, err := baseline.Compile(k, arch.Default(size, size), k.UniformBlock(b),
			baseline.Options{
				MaxNodes:   cfg.BaselineMaxNodes,
				Seed:       cfg.Seed,
				TimeBudget: remaining,
			})
		if err == nil {
			return res, note
		}
		var tooLarge baseline.ErrTooLarge
		if errors.As(err, &tooLarge) {
			continue
		}
		note = "timeout/shrunk"
	}
	return nil, "failed"
}

// FormatFig7 renders the comparison as the three panels of Figure 7.
func FormatFig7(points []Fig7Point) string {
	var b strings.Builder
	b.WriteString("Figure 7: BHC vs HiMap across CGRA sizes\n")
	fmt.Fprintf(&b, "%-8s %-7s | %7s %7s | %12s %12s | %9s %9s | %s\n",
		"Kernel", "CGRA", "U(BHC)", "U(HiM)", "MOPS(BHC)", "MOPS(HiM)", "Eff(BHC)", "Eff(HiM)", "note")
	for _, p := range points {
		fmt.Fprintf(&b, "%-8s %-7s | %6.1f%% %6.1f%% | %12.0f %12.0f | %9.1f %9.1f | %s\n",
			p.Kernel, fmt.Sprintf("%dx%d", p.Size, p.Size),
			p.BHCU*100, p.HiMapU*100,
			p.BHCMOPS, p.HiMapMOPS,
			p.BHCEff, p.HiMapEff, p.BHCNote)
	}
	// Aggregates quoted in the paper: 2.8x utilization, 17.3x performance,
	// 5x power efficiency.
	var ug, pg, eg float64
	n := 0
	for _, p := range points {
		if p.BHCU > 0 {
			ug += p.HiMapU / p.BHCU
			pg += p.HiMapMOPS / p.BHCMOPS
			eg += p.HiMapEff / p.BHCEff
			n++
		}
	}
	if n > 0 {
		fmt.Fprintf(&b, "\ngeomean-free averages over %d comparable points: utilization %.1fx, performance %.1fx, efficiency %.1fx\n",
			n, ug/float64(n), pg/float64(n), eg/float64(n))
		b.WriteString("paper: 2.8x utilization, 17.3x performance, 5x power efficiency\n")
	}
	return b.String()
}

// ----------------------------------------------------------------- Fig 8

// Fig8Point is one compilation-time measurement at block size B (with the
// CGRA size c = B, as in the paper).
type Fig8Point struct {
	Kernel    string
	B         int
	HiMapTime time.Duration
	HiMapOK   bool
	BHCTime   time.Duration
	BHCOK     bool
	BHCNote   string
}

// Fig8Config tunes the compilation-time sweep.
type Fig8Config struct {
	Kernels []*kernel.Kernel // default MVT, GEMM, TTM
	Bs      []int            // default 2..64 as in the paper
	// Progress, when set, receives each point as soon as it is measured.
	Progress       func(Fig8Point)
	BaselineBudget time.Duration // default 30s (stands in for the 3-day timeout)
	// MaxInner caps the pure-time block dimensions (b3..bl) of 3-D and
	// 4-D kernels in the sweep: II_B — and with it the materialized
	// configuration and the unrolled DFG — grows with their product, and
	// the paper's own 32-entry configuration memory cannot hold IIs beyond
	// 32/t anyway. Defaults: 16 for 3-D kernels, 8 for 4-D. See
	// EXPERIMENTS.md.
	MaxInner3D int
	MaxInner4D int
	Seed       int64
	// Workers bounds how many sweep points run concurrently (results keep
	// the sequential order). 0 means runtime.GOMAXPROCS(0).
	Workers int
}

func (c Fig8Config) withDefaults() Fig8Config {
	if len(c.Kernels) == 0 {
		c.Kernels = []*kernel.Kernel{kernel.MVT(), kernel.GEMM(), kernel.TTM()}
	}
	if len(c.Bs) == 0 {
		c.Bs = []int{2, 3, 4, 5, 6, 8, 10, 12, 16, 20, 32, 64}
	}
	if c.BaselineBudget == 0 {
		c.BaselineBudget = 30 * time.Second
	}
	if c.MaxInner3D == 0 {
		c.MaxInner3D = 16
	}
	if c.MaxInner4D == 0 {
		c.MaxInner4D = 8
	}
	return c
}

// Fig8 measures compilation time vs block size (b = c) for both mappers.
// Points run Workers at a time; the returned slice keeps the sequential
// (kernel-major, block-minor) order.
func Fig8(cfg Fig8Config) ([]Fig8Point, error) {
	cfg = cfg.withDefaults()
	type job struct {
		k *kernel.Kernel
		b int
	}
	var jobs []job
	for _, k := range cfg.Kernels {
		for _, b := range cfg.Bs {
			if b < k.MinBlock {
				continue
			}
			jobs = append(jobs, job{k: k, b: b})
		}
	}
	var progressMu sync.Mutex
	out := par.Map(par.Workers(cfg.Workers), len(jobs), func(i int) Fig8Point {
		k, b := jobs[i].k, jobs[i].b
		p := Fig8Point{Kernel: k.Name, B: b}
		inner := b
		if k.Dim == 3 && inner > cfg.MaxInner3D {
			inner = cfg.MaxInner3D
		}
		if k.Dim >= 4 && inner > cfg.MaxInner4D {
			inner = cfg.MaxInner4D
		}
		res, err := himap.Compile(k, arch.Default(b, b), himap.Options{InnerBlock: inner, Workers: 1})
		if err == nil {
			p.HiMapOK = true
			p.HiMapTime = res.Stats.Total
		}
		bres, err := baseline.Compile(k, arch.Default(b, b), k.UniformBlock(b),
			baseline.Options{Seed: cfg.Seed, TimeBudget: cfg.BaselineBudget})
		switch {
		case err == nil:
			p.BHCOK = true
			p.BHCTime = bres.Time
		default:
			var tooLarge baseline.ErrTooLarge
			var timeout baseline.ErrTimeout
			if errors.As(err, &tooLarge) {
				p.BHCNote = tooLarge.Error()
			} else if errors.As(err, &timeout) {
				p.BHCNote = "timeout"
			} else {
				p.BHCNote = "failed"
			}
		}
		if cfg.Progress != nil {
			progressMu.Lock()
			cfg.Progress(p)
			progressMu.Unlock()
		}
		return p
	})
	return out, nil
}

// FormatFig8 renders the compilation-time sweep.
func FormatFig8(points []Fig8Point) string {
	var b strings.Builder
	b.WriteString("Figure 8: compilation time vs block size (c = b)\n")
	fmt.Fprintf(&b, "%-8s %4s | %12s | %12s %s\n", "Kernel", "b", "HiMap", "BHC", "note")
	for _, p := range points {
		hm := "fail"
		if p.HiMapOK {
			hm = p.HiMapTime.Round(time.Millisecond).String()
		}
		bhc := "fail"
		if p.BHCOK {
			bhc = p.BHCTime.Round(time.Millisecond).String()
		}
		fmt.Fprintf(&b, "%-8s %4d | %12s | %12s %s\n", p.Kernel, p.B, hm, bhc, p.BHCNote)
	}
	return b.String()
}

// ------------------------------------------------------- 64x64 envelope

// EnvelopePoint is one entry of the large-array scalability run — the
// paper's headline claim is near-optimal mappings on a 64x64 CGRA in
// under 15 minutes.
type EnvelopePoint struct {
	Kernel      string
	Size        int
	Utilization float64
	UniqueIters int
	IIB         int
	MOPS        float64
	CompileTime time.Duration
}

// Envelope compiles every kernel on large arrays (default 64x64) with
// HiMap and reports utilization and compile time. Inner (pure-time)
// dimensions use the kernel-appropriate caps of Fig8Config.
func Envelope(sizes []int, cfg Fig8Config) ([]EnvelopePoint, error) {
	cfg = cfg.withDefaults()
	if len(sizes) == 0 {
		sizes = []int{64}
	}
	model := power.Default40nm()
	type job struct {
		k    *kernel.Kernel
		size int
	}
	var jobs []job
	for _, k := range kernel.Evaluation() {
		for _, size := range sizes {
			jobs = append(jobs, job{k: k, size: size})
		}
	}
	type cell struct {
		p   EnvelopePoint
		err error
	}
	cells := par.Map(par.Workers(cfg.Workers), len(jobs), func(i int) cell {
		k, size := jobs[i].k, jobs[i].size
		inner := size
		if k.Dim == 3 && inner > cfg.MaxInner3D {
			inner = cfg.MaxInner3D
		}
		if k.Dim >= 4 && inner > cfg.MaxInner4D {
			inner = cfg.MaxInner4D
		}
		res, err := himap.Compile(k, arch.Default(size, size), himap.Options{InnerBlock: inner, Workers: 1})
		if err != nil {
			return cell{err: fmt.Errorf("exp: envelope %s %dx%d: %v", k.Name, size, size, err)}
		}
		return cell{p: EnvelopePoint{
			Kernel:      k.Name,
			Size:        size,
			Utilization: res.Utilization,
			UniqueIters: res.UniqueIters,
			IIB:         res.IIB,
			MOPS:        model.PerformanceMOPS(res.Config),
			CompileTime: res.Stats.Total,
		}}
	})
	out := make([]EnvelopePoint, 0, len(cells))
	for _, c := range cells {
		if c.err != nil {
			return nil, c.err
		}
		out = append(out, c.p)
	}
	return out, nil
}

// FormatEnvelope renders the large-array run.
func FormatEnvelope(points []EnvelopePoint) string {
	var b strings.Builder
	b.WriteString("Large-array envelope (paper: <15 min for near-optimal 64x64 mappings)\n")
	fmt.Fprintf(&b, "%-8s %-8s %7s %7s %6s %12s %12s\n", "Kernel", "CGRA", "U", "unique", "II_B", "MOPS", "compile")
	for _, p := range points {
		fmt.Fprintf(&b, "%-8s %-8s %6.1f%% %7d %6d %12.0f %12v\n",
			p.Kernel, fmt.Sprintf("%dx%d", p.Size, p.Size),
			p.Utilization*100, p.UniqueIters, p.IIB, p.MOPS,
			p.CompileTime.Round(time.Millisecond))
	}
	return b.String()
}

// ------------------------------------------------------------- CSV export

// Fig7CSV renders the Figure-7 points as CSV for external plotting.
func Fig7CSV(points []Fig7Point) string {
	var b strings.Builder
	b.WriteString("kernel,size,himap_util,himap_mops,himap_eff,bhc_util,bhc_mops,bhc_eff,bhc_note\n")
	for _, p := range points {
		fmt.Fprintf(&b, "%s,%d,%.4f,%.1f,%.2f,%.4f,%.1f,%.2f,%s\n",
			p.Kernel, p.Size, p.HiMapU, p.HiMapMOPS, p.HiMapEff,
			p.BHCU, p.BHCMOPS, p.BHCEff, p.BHCNote)
	}
	return b.String()
}

// Fig8CSV renders the Figure-8 points as CSV.
func Fig8CSV(points []Fig8Point) string {
	var b strings.Builder
	b.WriteString("kernel,b,himap_ok,himap_seconds,bhc_ok,bhc_seconds,bhc_note\n")
	for _, p := range points {
		fmt.Fprintf(&b, "%s,%d,%v,%.3f,%v,%.3f,%q\n",
			p.Kernel, p.B, p.HiMapOK, p.HiMapTime.Seconds(), p.BHCOK, p.BHCTime.Seconds(), p.BHCNote)
	}
	return b.String()
}
