package exp

import (
	"encoding/json"
	"fmt"
	"runtime"
	"time"

	"himap/internal/arch"
	"himap/internal/diag"
	"himap/internal/himap"
	"himap/internal/kernel"
	"himap/internal/par"
)

// BenchKernel is one row of the compile-cost report: a full HiMap
// compilation of a kernel at one CGRA size, with the heap traffic it
// generated.
type BenchKernel struct {
	Kernel      string  `json:"kernel"`
	Size        int     `json:"size"`
	WallMS      float64 `json:"wall_ms"`
	Allocs      uint64  `json:"allocs"`
	AllocBytes  uint64  `json:"alloc_bytes"`
	IIB         int     `json:"peak_ii"`
	Utilization float64 `json:"utilization"`
	Attempts    int     `json:"attempts"`
	RouteRounds int     `json:"route_rounds"`
	// StageMS breaks the compile down by pipeline stage (from the JSON
	// tracer), summed over every attempt the search executed — so failed
	// speculative attempts show up as extra stage cost, and the stage sum
	// can exceed WallMS under Workers > 1.
	StageMS map[string]float64 `json:"stage_ms"`
}

// BenchReport is the machine-readable compile-cost snapshot written by
// `experiments -bench-json` (BENCH_compile.json). Per-kernel rows are
// measured sequentially so the alloc counters are attributable; the sweep
// row exercises the Workers fan-out end to end.
type BenchReport struct {
	GoMaxProcs int           `json:"gomaxprocs"`
	Workers    int           `json:"workers"`
	Kernels    []BenchKernel `json:"kernels"`
	// Sweep is a HiMap-only kernel×size sweep ({MVT, GEMM, TTM} ×
	// {4, 8, 16}) run through the parallel harness; WallMS is its total
	// wall-clock with the configured Workers.
	SweepPoints int     `json:"sweep_points"`
	SweepWallMS float64 `json:"sweep_wall_ms"`
	// FabricSweep scales the array size up to 64×64 for the fast
	// kernels, tracking the route and unique stage costs the router
	// rewrite targets.
	FabricSweep []FabricPoint `json:"fabric_sweep"`
	// ExploreSweep ranks the 8×8 design-space candidates for GEMM —
	// the serving-layer /v1/explore workload, kept in the bench report
	// so cost-model regressions surface as ranking or wall-clock
	// shifts.
	ExploreSweep []ExplorePoint `json:"explore_sweep"`
	// ExactGap pins the heuristic mappers against the exact solver on
	// small instances: per kernel, the exact II (with its certificate and
	// solver runtime) next to the SA II on the same block and the HiMap
	// II on the same fabric.
	ExactGap []ExactGapPoint `json:"exact_gap"`
}

// FabricPoint is one cell of the fabric-size scaling sweep: one kernel
// compiled cold at one array size, with the stage costs that dominate
// large-fabric compiles broken out.
type FabricPoint struct {
	Kernel      string  `json:"kernel"`
	Size        int     `json:"size"`
	WallMS      float64 `json:"wall_ms"`
	RouteMS     float64 `json:"route_ms"`
	UniqueMS    float64 `json:"unique_ms"`
	RouteRounds int     `json:"route_rounds"`
	Nets        int     `json:"nets"`
}

// BenchCompile compiles every evaluation kernel at the given size,
// recording wall-clock and heap-allocation deltas per kernel, then times a
// parallel kernel×size sweep with the given worker count.
func BenchCompile(size, workers int) (*BenchReport, error) {
	rep := &BenchReport{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Workers:    par.Workers(workers),
	}
	var ms0, ms1 runtime.MemStats
	for _, k := range kernel.Evaluation() {
		// A fresh artifact memo keeps every row a cold compile, so the
		// wall-clock and alloc columns stay attributable to the kernel.
		col := diag.NewCollector()
		opts := himap.Options{Workers: 1, Tracer: col, Memo: himap.NewMemo()}
		runtime.GC()
		runtime.ReadMemStats(&ms0)
		start := time.Now()
		res, err := himap.Compile(k, arch.Default(size, size), opts)
		wall := time.Since(start)
		runtime.ReadMemStats(&ms1)
		if err != nil {
			return nil, fmt.Errorf("exp: bench %s %dx%d: %v", k.Name, size, size, err)
		}
		stageMS := map[string]float64{}
		for stage, d := range col.StageWall() {
			stageMS[stage] = float64(d.Microseconds()) / 1000
		}
		rep.Kernels = append(rep.Kernels, BenchKernel{
			Kernel:      k.Name,
			Size:        size,
			WallMS:      float64(wall.Microseconds()) / 1000,
			Allocs:      ms1.Mallocs - ms0.Mallocs,
			AllocBytes:  ms1.TotalAlloc - ms0.TotalAlloc,
			IIB:         res.IIB,
			Utilization: res.Utilization,
			Attempts:    res.Stats.Attempts,
			RouteRounds: res.Stats.RouteRounds,
			StageMS:     stageMS,
		})
	}

	sweepKernels := []*kernel.Kernel{kernel.MVT(), kernel.GEMM(), kernel.TTM()}
	sweepSizes := []int{4, 8, 16}
	type job struct {
		k *kernel.Kernel
		c int
	}
	var jobs []job
	for _, k := range sweepKernels {
		for _, c := range sweepSizes {
			jobs = append(jobs, job{k: k, c: c})
		}
	}
	start := time.Now()
	errs := par.Map(rep.Workers, len(jobs), func(i int) error {
		_, err := himap.Compile(jobs[i].k, arch.Default(jobs[i].c, jobs[i].c), himap.Options{Workers: 1})
		return err
	})
	rep.SweepWallMS = float64(time.Since(start).Microseconds()) / 1000
	rep.SweepPoints = len(jobs)
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("exp: bench sweep %s %dx%d: %v", jobs[i].k.Name, jobs[i].c, jobs[i].c, err)
		}
	}

	// Fabric-size scaling: cold compiles of the fast kernels up to a
	// 64×64 mesh, with the route/unique stage cost per size.
	fabricKernels := []*kernel.Kernel{kernel.ADI(), kernel.ATAX(), kernel.BICG(), kernel.MVT()}
	for _, fsz := range []int{8, 16, 32, 64} {
		for _, k := range fabricKernels {
			col := diag.NewCollector()
			start := time.Now()
			res, err := himap.Compile(k, arch.Default(fsz, fsz),
				himap.Options{Workers: 1, Tracer: col, Memo: himap.NewMemo()})
			wall := time.Since(start)
			if err != nil {
				return nil, fmt.Errorf("exp: fabric sweep %s %dx%d: %v", k.Name, fsz, fsz, err)
			}
			sw := col.StageWall()
			rep.FabricSweep = append(rep.FabricSweep, FabricPoint{
				Kernel:      k.Name,
				Size:        fsz,
				WallMS:      float64(wall.Microseconds()) / 1000,
				RouteMS:     float64(sw[himap.StageRoute].Microseconds()) / 1000,
				UniqueMS:    float64(sw[himap.StageUnique].Microseconds()) / 1000,
				RouteRounds: res.Stats.RouteRounds,
				Nets:        res.Stats.CanonicalNets,
			})
		}
	}

	// Design-space sweep: GEMM across the fabric candidate set, ranked
	// by power efficiency under each fabric's own power model.
	rep.ExploreSweep = Explore(ExploreConfig{
		Kernels: []*kernel.Kernel{kernel.GEMM()},
		Fabrics: arch.ExploreFabrics(8, 8),
		Workers: rep.Workers,
	})

	// Quality gap vs the exact solver on 4×4 block-2 instances. The
	// budget bounds each kernel's search, not the proved-minimal rows
	// (those close in milliseconds).
	gap, err := ExactGap(4, 2, 30*time.Second)
	if err != nil {
		return nil, err
	}
	rep.ExactGap = gap
	return rep, nil
}

// JSON renders the report with stable indentation for committing next to
// the experiment logs.
func (r *BenchReport) JSON() ([]byte, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
