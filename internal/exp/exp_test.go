package exp

import (
	"strings"
	"testing"
	"time"

	"himap/internal/arch"
	"himap/internal/kernel"
)

func TestTableIContainsAllColumnsAndKernels(t *testing.T) {
	s := TableI()
	for _, want := range []string{
		"No inter-iteration dependency",
		"Dim = 1", "Dim = 2", "Dim = 3", "Dim = 4",
		"gemm", "bicg", "floyd_warshall", "ttm", "doitgen",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("Table I missing %q", want)
		}
	}
}

func TestTableIIMeasuredCounts(t *testing.T) {
	rows, err := TableII(4, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("Table II has %d rows, want 8", len(rows))
	}
	measured := map[string]int{}
	for _, r := range rows {
		measured[r.Kernel] = r.MaxUnique
		if r.PaperMax == 0 {
			t.Errorf("%s: missing paper value", r.Kernel)
		}
	}
	// Exact matches for the uniform-boundary kernels.
	for _, k := range []string{"ADI", "ATAX", "BICG", "MVT", "GEMM", "SYRK"} {
		if measured[k] != PaperUnique[k] {
			t.Errorf("%s: measured %d, paper %d", k, measured[k], PaperUnique[k])
		}
	}
	s := FormatTableII(rows)
	if !strings.Contains(s, "GEMM") || !strings.Contains(s, "27") {
		t.Errorf("formatting broken:\n%s", s)
	}
}

func TestFig7SmallSweep(t *testing.T) {
	pts, err := Fig7(Config{
		Sizes:          []int{4},
		Kernels:        []*kernel.Kernel{kernel.GEMM()},
		BaselineBudget: 60 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 {
		t.Fatalf("points = %d", len(pts))
	}
	p := pts[0]
	if p.HiMapU < 0.99 {
		t.Errorf("HiMap GEMM 4x4 U = %v", p.HiMapU)
	}
	if p.BHCU <= 0 {
		t.Fatalf("baseline failed: %+v", p)
	}
	// The headline comparisons of Fig. 7: HiMap wins on all three panels.
	if p.HiMapU <= p.BHCU {
		t.Errorf("utilization: HiMap %v <= BHC %v", p.HiMapU, p.BHCU)
	}
	if p.HiMapMOPS <= p.BHCMOPS {
		t.Errorf("performance: HiMap %v <= BHC %v", p.HiMapMOPS, p.BHCMOPS)
	}
	if p.HiMapEff <= p.BHCEff {
		t.Errorf("efficiency: HiMap %v <= BHC %v", p.HiMapEff, p.BHCEff)
	}
	s := FormatFig7(pts)
	if !strings.Contains(s, "GEMM") || !strings.Contains(s, "paper: 2.8x") {
		t.Errorf("format:\n%s", s)
	}
}

func TestFig8SmallSweep(t *testing.T) {
	pts, err := Fig8(Fig8Config{
		Kernels:        []*kernel.Kernel{kernel.MVT()},
		Bs:             []int{2, 4, 8},
		BaselineBudget: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if !p.HiMapOK {
			t.Errorf("HiMap failed at b=%d", p.B)
		}
	}
	// At b=8 MVT's DFG is 8x8x(6 ops + loads/stores) > 400: the baseline
	// hits its wall exactly as in Fig. 8 ("BHC fails ... beyond the block
	// size of 8" — our spec crosses slightly earlier; the wall behaviour
	// is what matters).
	last := pts[len(pts)-1]
	if last.BHCOK {
		t.Logf("baseline still succeeded at b=8 (U wall not yet hit)")
	} else if last.BHCNote == "" {
		t.Error("baseline failure must carry a note")
	}
	s := FormatFig8(pts)
	if !strings.Contains(s, "MVT") {
		t.Errorf("format:\n%s", s)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if len(c.Sizes) == 0 || len(c.Kernels) != 8 || c.BaselineMaxNodes != 400 {
		t.Errorf("defaults: %+v", c)
	}
	f := Fig8Config{}.withDefaults()
	if len(f.Kernels) != 3 || len(f.Bs) == 0 || f.MaxInner4D != 8 || f.MaxInner3D != 16 {
		t.Errorf("fig8 defaults: %+v", f)
	}
}

func TestCSVExports(t *testing.T) {
	f7 := Fig7CSV([]Fig7Point{{Kernel: "GEMM", Size: 4, HiMapU: 1, HiMapMOPS: 8160, HiMapEff: 123.5}})
	if !strings.Contains(f7, "GEMM,4,1.0000,8160.0,123.50") {
		t.Errorf("fig7 csv:\n%s", f7)
	}
	f8 := Fig8CSV([]Fig8Point{{Kernel: "MVT", B: 8, HiMapOK: true, HiMapTime: 85 * time.Millisecond, BHCNote: "timeout"}})
	if !strings.Contains(f8, "MVT,8,true,0.085,false,0.000,\"timeout\"") {
		t.Errorf("fig8 csv:\n%s", f8)
	}
}

func TestEnvelopeSmall(t *testing.T) {
	pts, err := Envelope([]int{4}, Fig8Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 8 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if p.Utilization < 0.6 {
			t.Errorf("%s: U = %v", p.Kernel, p.Utilization)
		}
	}
	if s := FormatEnvelope(pts); !strings.Contains(s, "GEMM") {
		t.Error("format broken")
	}
}

// TestExploreDeterministicAndTyped pins the sweep contract: two runs of
// the same exploration (at different worker counts, so completion order
// differs) produce identical points in identical order — wall time
// aside — every point is either a priced success or carries a typed
// failure class, and the per-kernel ranking is ordered as documented.
func TestExploreDeterministicAndTyped(t *testing.T) {
	cfg := ExploreConfig{
		Kernels: []*kernel.Kernel{kernel.MVT(), kernel.ATAX()},
		Fabrics: arch.ExploreFabrics(4, 4),
	}
	a := Explore(ExploreConfig{Kernels: cfg.Kernels, Fabrics: cfg.Fabrics, Workers: 1})
	b := Explore(ExploreConfig{Kernels: cfg.Kernels, Fabrics: cfg.Fabrics, Workers: 8})
	if len(a) != len(b) || len(a) != 2*len(cfg.Fabrics) {
		t.Fatalf("point counts: %d vs %d, want %d", len(a), len(b), 2*len(cfg.Fabrics))
	}
	for i := range a {
		x, y := a[i], b[i]
		x.WallMS, y.WallMS = 0, 0
		if x != y {
			t.Errorf("point %d differs across runs:\n%+v\n%+v", i, x, y)
		}
	}
	seenOK := false
	for i, p := range a {
		if p.OK == (p.Fail != "") {
			t.Errorf("point %d: OK=%v with fail class %q", i, p.OK, p.Fail)
		}
		if p.OK {
			seenOK = true
			if p.MOPS <= 0 || p.PowerMW <= 0 || p.Eff <= 0 || p.IIB < 1 {
				t.Errorf("point %d: unpriced success %+v", i, p)
			}
		}
		if i > 0 && a[i-1].Kernel == p.Kernel {
			prev := a[i-1]
			if !prev.OK && p.OK {
				t.Errorf("point %d: success ranked after failure", i)
			}
			if prev.OK && p.OK && prev.Eff < p.Eff {
				t.Errorf("point %d: efficiency ranking inverted (%v after %v)", i, p.Eff, prev.Eff)
			}
		}
	}
	if !seenOK {
		t.Error("no fabric candidate succeeded — sweep degenerate")
	}
	if a[0].Kernel != "MVT" || a[len(a)-1].Kernel != "ATAX" {
		t.Errorf("kernels reordered: first %s last %s", a[0].Kernel, a[len(a)-1].Kernel)
	}
}
