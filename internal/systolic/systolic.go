// Package systolic implements the iteration-space → space-time
// transformation HiMap uses to place the ISDG on the Virtual Systolic
// Array (§V, Eq. 1):
//
//	CP = [H; S] × CI
//
// where H is the 1×l time schedule row and S the 2×l space allocation.
// The paper takes (H,S) as a pre-calculated input found by a heuristic
// search over valid transformations [Lee & Kedem, TPDS'90]; this package
// provides that search: it enumerates block-size-independent *schemes*
// (which loop dimensions become VSA axes, the mixed-radix ordering of the
// remaining dimensions in time, and small time skews of the space
// dimensions), realizes them against a concrete block, and ranks them by
// dependence locality.
package systolic

import (
	"errors"
	"fmt"
	"sort"

	"himap/internal/ir"
	"himap/internal/par"
)

// ErrInfeasible marks a space-time mapping that violates a dependence
// (non-causal or unroutable offset) or the injectivity of the allocation.
// Every Validate/CheckInjective failure wraps it, so callers dispatch
// with errors.Is without parsing messages.
var ErrInfeasible = errors.New("systolic: mapping infeasible")

// CheckTile validates that an s1×s2 sub-CGRA block clusters a rows×cols
// fabric evenly — the precondition for the VSA to cover the physical
// array without out-of-bounds clusters. Violations wrap ErrInfeasible so
// callers dispatch with errors.Is.
func CheckTile(rows, cols, s1, s2 int) error {
	if s1 < 1 || s2 < 1 {
		return fmt.Errorf("%w: bad sub-CGRA block %dx%d", ErrInfeasible, s1, s2)
	}
	if rows%s1 != 0 || cols%s2 != 0 {
		return fmt.Errorf("%w: %dx%d block does not tile the %dx%d fabric", ErrInfeasible, s1, s2, rows, cols)
	}
	return nil
}

// Mapping is a realized space-time transformation for a concrete block.
type Mapping struct {
	Dim   int
	H     []int   // time row (length Dim)
	S     [][]int // up to 2 space rows (each length Dim)
	Block []int   // the block it was realized for
	IIS   int     // iterations per systolic PE per block (II_S of §V)
}

// Place returns the space-time position of an iteration: t = H·i,
// (x, y) = S·i (y is 0 for 1-D space allocations).
func (m *Mapping) Place(iter ir.IterVec) (t, x, y int) {
	t = ir.IterVec(m.H).Dot(iter)
	if len(m.S) > 0 {
		x = ir.IterVec(m.S[0]).Dot(iter)
	}
	if len(m.S) > 1 {
		y = ir.IterVec(m.S[1]).Dot(iter)
	}
	return t, x, y
}

// VSAShape returns the spatial extents the mapping needs: the maximum
// (x+1, y+1) over the block.
func (m *Mapping) VSAShape() (vx, vy int) {
	vx, vy = 1, 1
	ir.ForEachPoint(m.Block, func(iter ir.IterVec) {
		_, x, y := m.Place(iter)
		if x+1 > vx {
			vx = x + 1
		}
		if y+1 > vy {
			vy = y + 1
		}
	})
	return vx, vy
}

// DepOffset returns the space-time offset (tr, xr, yr) of a dependence
// distance vector — the CP difference between consumer and producer.
func (m *Mapping) DepOffset(d ir.IterVec) (tr, xr, yr int) { return m.Place(d) }

// DepClass classifies a dependence offset for the single-cycle single-hop
// requirement of Algorithm 1 (line 16).
type DepClass uint8

const (
	// DepLocal: reaches a neighbor SPE (or stays put) within its time
	// distance without crossing other SPEs — directly routable.
	DepLocal DepClass = iota
	// DepForward: crosses more than one SPE; requires forwarding-path
	// insertion through intermediate iterations.
	DepForward
	// DepInvalid: violates causality or routability (hops > time).
	DepInvalid
)

// Classify returns the class of a dependence under the mapping.
func (m *Mapping) Classify(d ir.IterVec) DepClass {
	tr, xr, yr := m.DepOffset(d)
	hops := abs(xr) + abs(yr)
	switch {
	case tr < 1, hops > tr:
		return DepInvalid
	case hops <= 1:
		return DepLocal
	default:
		return DepForward
	}
}

// ForwardStep decomposes a DepForward distance vector into g equal
// iteration-space steps of one hop each: d = g·e. It returns e and g, or
// an error when d does not decompose (the "impossible to find such
// systolic mapping" case of §V).
func (m *Mapping) ForwardStep(d ir.IterVec) (e ir.IterVec, g int, err error) {
	tr, xr, yr := m.DepOffset(d)
	hops := abs(xr) + abs(yr)
	if hops <= 1 {
		return nil, 0, fmt.Errorf("systolic: %v is not a multi-hop dependence: %w", d, ErrInfeasible)
	}
	g = gcdVec(d)
	if g <= 1 {
		return nil, 0, fmt.Errorf("systolic: multi-hop dependence %v does not decompose into unit steps: %w", d, ErrInfeasible)
	}
	e = make(ir.IterVec, len(d))
	for i := range d {
		e[i] = d[i] / g
	}
	etr, exr, eyr := m.DepOffset(e)
	if etr < 1 || abs(exr)+abs(eyr) > 1 {
		return nil, 0, fmt.Errorf("systolic: step %v of dependence %v is not single-hop (offset %d,%d,%d): %w",
			e, d, etr, exr, eyr, ErrInfeasible)
	}
	_ = tr
	return e, g, nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func gcd(a, b int) int {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func gcdVec(v ir.IterVec) int {
	g := 0
	for _, x := range v {
		g = gcd(g, x)
	}
	return g
}

// CheckInjective verifies that no two iterations of the block share a
// space-time position modulo II_S in time — i.e. each SPE executes at
// most one iteration per schedule slot. This is the resource-validity
// condition of the transformation.
func (m *Mapping) CheckInjective() error {
	type pos struct{ tm, x, y int }
	seen := map[pos]ir.IterVec{}
	var conflict error
	ir.ForEachPoint(m.Block, func(iter ir.IterVec) {
		if conflict != nil {
			return
		}
		t, x, y := m.Place(iter)
		p := pos{((t % m.IIS) + m.IIS) % m.IIS, x, y}
		if prev, ok := seen[p]; ok {
			conflict = fmt.Errorf("%w: iterations %v and %v collide at SPE (%d,%d) slot %d",
				ErrInfeasible, prev, iter, x, y, p.tm)
			return
		}
		seen[p] = iter.Clone()
	})
	return conflict
}

// Validate checks causality and routability of every dependence and the
// injectivity of the allocation.
func (m *Mapping) Validate(deps []ir.IterVec) error {
	for _, d := range deps {
		if m.Classify(d) == DepInvalid {
			tr, xr, yr := m.DepOffset(d)
			return fmt.Errorf("%w: dependence %v has invalid offset (t=%d, x=%d, y=%d)", ErrInfeasible, d, tr, xr, yr)
		}
		if m.Classify(d) == DepForward {
			if _, _, err := m.ForwardStep(d); err != nil {
				return err
			}
		}
	}
	return m.CheckInjective()
}

// String renders the mapping matrices.
func (m *Mapping) String() string {
	return fmt.Sprintf("H=%v S=%v (II_S=%d)", m.H, m.S, m.IIS)
}

// Scheme is a block-size-independent transformation template.
type Scheme struct {
	// SpaceDims lists the loop dimensions mapped to the VSA axes
	// (1 or 2 entries, distinct).
	SpaceDims []int
	// TimePerm orders the remaining dimensions for mixed-radix time
	// weights: TimePerm[0] gets weight 1, TimePerm[1] weight
	// block[TimePerm[0]], and so on — guaranteeing injectivity.
	TimePerm []int
	// Skew holds the H coefficients of the space dimensions (parallel to
	// SpaceDims).
	Skew []int
}

// Realize instantiates the scheme for a block.
func (s Scheme) Realize(block []int) *Mapping {
	dim := len(block)
	m := &Mapping{
		Dim:   dim,
		H:     make([]int, dim),
		Block: append([]int(nil), block...),
		IIS:   1,
	}
	w := 1
	for _, d := range s.TimePerm {
		m.H[d] = w
		w *= block[d]
		m.IIS *= block[d]
	}
	for i, d := range s.SpaceDims {
		m.H[d] = s.Skew[i]
		row := make([]int, dim)
		row[d] = 1
		m.S = append(m.S, row)
	}
	if len(m.S) == 1 {
		m.S = append(m.S, make([]int, dim)) // y ≡ 0
	}
	return m
}

// String renders the scheme.
func (s Scheme) String() string {
	return fmt.Sprintf("space=%v time=%v skew=%v", s.SpaceDims, s.TimePerm, s.Skew)
}

// Candidate is a scored, realized scheme.
type Candidate struct {
	Scheme  Scheme
	Mapping *Mapping
	Score   float64 // lower is better
}

// Search enumerates valid schemes for the dependence set over the given
// block and returns them ranked: fewer forwarded dependencies first, then
// smaller total time distances (register pressure), then smaller skews.
// wantSpaceDims restricts the number of VSA axes (1 for linear arrays,
// 2 for meshes; 0 = either).
func Search(deps []ir.IterVec, block []int, wantSpaceDims int) []Candidate {
	return SearchN(deps, block, wantSpaceDims, 1)
}

// SearchN is Search sharded over up to workers goroutines: each
// space-dimension assignment (the outermost enumeration axis) is scored
// independently, the per-shard candidate lists are concatenated in
// enumeration order, and the final stable sort runs over the merged list
// — so the ranked result is byte-identical for every worker count.
func SearchN(deps []ir.IterVec, block []int, wantSpaceDims, workers int) []Candidate {
	dim := len(block)
	spaceDimSets := [][]int{}
	if wantSpaceDims != 2 {
		for p := 0; p < dim; p++ {
			spaceDimSets = append(spaceDimSets, []int{p})
		}
	}
	if wantSpaceDims != 1 && dim >= 2 {
		for p := 0; p < dim; p++ {
			for q := 0; q < dim; q++ {
				if p != q {
					spaceDimSets = append(spaceDimSets, []int{p, q})
				}
			}
		}
	}

	shards := par.Map(par.Workers(workers), len(spaceDimSets), func(i int) []Candidate {
		sd := spaceDimSets[i]
		var out []Candidate
		try := func(s Scheme) {
			m := s.Realize(block)
			if m.Validate(deps) != nil {
				return
			}
			score := 0.0
			for _, d := range deps {
				tr, xr, yr := m.DepOffset(d)
				hops := abs(xr) + abs(yr)
				if hops > 1 {
					score += 40 + 10*float64(hops)
				}
				score += float64(tr-hops) * 0.5 // holds cost registers
			}
			for _, sk := range s.Skew {
				score += float64(sk) * 0.1
			}
			out = append(out, Candidate{Scheme: s, Mapping: m, Score: score})
		}
		rest := remaining(dim, sd)
		for _, perm := range permutations(rest) {
			forEachSkew(len(sd), 2, func(skew []int) {
				try(Scheme{SpaceDims: sd, TimePerm: perm, Skew: append([]int(nil), skew...)})
			})
		}
		return out
	})
	var out []Candidate
	for _, s := range shards {
		out = append(out, s...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score < out[j].Score
		}
		return out[i].Scheme.String() < out[j].Scheme.String()
	})
	return out
}

func remaining(dim int, used []int) []int {
	inUse := map[int]bool{}
	for _, d := range used {
		inUse[d] = true
	}
	var out []int
	for d := 0; d < dim; d++ {
		if !inUse[d] {
			out = append(out, d)
		}
	}
	return out
}

func permutations(xs []int) [][]int {
	if len(xs) == 0 {
		return [][]int{{}}
	}
	var out [][]int
	for i := range xs {
		rest := make([]int, 0, len(xs)-1)
		rest = append(rest, xs[:i]...)
		rest = append(rest, xs[i+1:]...)
		for _, p := range permutations(rest) {
			out = append(out, append([]int{xs[i]}, p...))
		}
	}
	return out
}

func forEachSkew(n, max int, fn func([]int)) {
	skew := make([]int, n)
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			fn(skew)
			return
		}
		for v := 0; v <= max; v++ {
			skew[i] = v
			rec(i + 1)
		}
	}
	rec(0)
}
