package systolic

import (
	"errors"
	"testing"

	"himap/internal/ir"
	"himap/internal/kernel"
)

func TestGEMMClassicScheme(t *testing.T) {
	// The classic GEMM systolic mapping (§V Fig. 5): space = (i, j),
	// time = i + j + k. All three dependencies single-cycle single-hop.
	s := Scheme{SpaceDims: []int{0, 1}, TimePerm: []int{2}, Skew: []int{1, 1}}
	m := s.Realize([]int{2, 2, 2})
	if m.IIS != 2 {
		t.Errorf("II_S = %d, want 2", m.IIS)
	}
	// Fig. 5: iteration (0,1,1) maps to space-time position (2,0,1).
	tt, x, y := m.Place(ir.IterVec{0, 1, 1})
	if tt != 2 || x != 0 || y != 1 {
		t.Errorf("Place(0,1,1) = (%d,%d,%d), want (2,0,1)", tt, x, y)
	}
	deps := []ir.IterVec{{0, 1, 0}, {1, 0, 0}, {0, 0, 1}}
	for _, d := range deps {
		if got := m.Classify(d); got != DepLocal {
			t.Errorf("dep %v classified %v, want local", d, got)
		}
	}
	if err := m.Validate(deps); err != nil {
		t.Error(err)
	}
}

func TestVSAShape(t *testing.T) {
	s := Scheme{SpaceDims: []int{0, 1}, TimePerm: []int{2}, Skew: []int{1, 1}}
	m := s.Realize([]int{4, 3, 5})
	vx, vy := m.VSAShape()
	if vx != 4 || vy != 3 {
		t.Errorf("VSAShape = (%d,%d), want (4,3)", vx, vy)
	}
}

func TestLinearArrayScheme(t *testing.T) {
	// 2-D kernel on a 1-D (linear) VSA, as in the §II motivating example:
	// one space dimension; the other dimension is sequenced in time.
	deps := []ir.IterVec{{1, 0}, {0, 1}}
	s := Scheme{SpaceDims: []int{0}, TimePerm: []int{1}, Skew: []int{1}}
	m := s.Realize([]int{4, 4})
	if m.IIS != 4 {
		t.Errorf("II_S = %d, want 4", m.IIS)
	}
	if err := m.Validate(deps); err != nil {
		t.Fatal(err)
	}
	vx, vy := m.VSAShape()
	if vx != 4 || vy != 1 {
		t.Errorf("VSAShape = (%d,%d), want (4,1)", vx, vy)
	}
}

func TestCausalityRejected(t *testing.T) {
	// Skew 0 on a dimension that carries a dependence: t distance 0 —
	// invalid.
	s := Scheme{SpaceDims: []int{0, 1}, TimePerm: []int{}, Skew: []int{0, 1}}
	m := s.Realize([]int{3, 3})
	if err := m.Validate([]ir.IterVec{{1, 0}}); err == nil {
		t.Error("zero time distance must be rejected")
	}
}

func TestHopsExceedingTimeRejected(t *testing.T) {
	s := Scheme{SpaceDims: []int{0, 1}, TimePerm: []int{}, Skew: []int{1, 1}}
	m := s.Realize([]int{4, 4})
	// Dependence (1,-1): tr = 0 — invalid (and 2 hops).
	if m.Classify(ir.IterVec{1, -1}) != DepInvalid {
		t.Error("(1,-1) under skew (1,1) must be invalid")
	}
}

func TestForwardingDecomposition(t *testing.T) {
	s := Scheme{SpaceDims: []int{0, 1}, TimePerm: []int{}, Skew: []int{1, 1}}
	m := s.Realize([]int{6, 6})
	d := ir.IterVec{0, 3}
	if m.Classify(d) != DepForward {
		t.Fatalf("(0,3) should need forwarding, got %v", m.Classify(d))
	}
	e, g, err := m.ForwardStep(d)
	if err != nil {
		t.Fatal(err)
	}
	if g != 3 || !e.Equal(ir.IterVec{0, 1}) {
		t.Errorf("ForwardStep = %v × %d", e, g)
	}
	// Non-decomposable multi-hop: (1,2) has gcd 1.
	bad := ir.IterVec{1, 2}
	if m.Classify(bad) == DepForward {
		if _, _, err := m.ForwardStep(bad); err == nil {
			t.Error("(1,2) must not decompose")
		}
	}
}

func TestInjectivity(t *testing.T) {
	s := Scheme{SpaceDims: []int{0, 1}, TimePerm: []int{2}, Skew: []int{1, 1}}
	m := s.Realize([]int{3, 3, 4})
	if err := m.CheckInjective(); err != nil {
		t.Error(err)
	}
	// A broken mapping: two dims in space, third dim ignored in time.
	broken := &Mapping{
		Dim: 3, H: []int{1, 1, 0},
		S:     [][]int{{1, 0, 0}, {0, 1, 0}},
		Block: []int{2, 2, 2}, IIS: 1,
	}
	if err := broken.CheckInjective(); err == nil {
		t.Error("ignoring a dimension must collide")
	}
}

func TestSearchFindsLocalSchemesForAllKernels(t *testing.T) {
	// Every Table-II kernel must admit a fully-local (no forwarding)
	// 2-D-space systolic mapping — the property HiMap relies on for its
	// evaluation (§VI reports all eight mapped).
	for _, k := range kernel.Evaluation() {
		deps := k.DistanceVectors()
		block := k.UniformBlock(4)
		cands := Search(deps, block, 2)
		if len(cands) == 0 {
			t.Errorf("%s: no valid scheme", k.Name)
			continue
		}
		best := cands[0]
		for _, d := range deps {
			if best.Mapping.Classify(d) != DepLocal {
				t.Errorf("%s: best scheme %v leaves dep %v non-local", k.Name, best.Scheme, d)
			}
		}
	}
}

func TestSearchLinearForBiCG(t *testing.T) {
	// The §II example: BiCG on a linear VSA.
	deps := kernel.BICG().DistanceVectors()
	cands := Search(deps, []int{4, 4}, 1)
	if len(cands) == 0 {
		t.Fatal("no linear scheme for BiCG")
	}
	m := cands[0].Mapping
	vx, vy := m.VSAShape()
	if vy != 1 {
		t.Errorf("linear scheme has vy = %d", vy)
	}
	if vx != 4 {
		t.Errorf("linear scheme has vx = %d", vx)
	}
}

func TestSearchRankingPrefersLocal(t *testing.T) {
	// With dep (0,2), schemes mapping dim 1 to space need forwarding;
	// schemes sequencing dim 1 in time are local and must rank first.
	deps := []ir.IterVec{{1, 0}, {0, 2}}
	cands := Search(deps, []int{4, 4}, 0)
	if len(cands) == 0 {
		t.Fatal("no scheme")
	}
	best := cands[0]
	for _, d := range deps {
		if best.Mapping.Classify(d) == DepForward {
			t.Errorf("best scheme %v should avoid forwarding for %v", best.Scheme, d)
		}
	}
}

func TestSearchDeterministic(t *testing.T) {
	deps := kernel.GEMM().DistanceVectors()
	a := Search(deps, []int{4, 4, 4}, 2)
	b := Search(deps, []int{4, 4, 4}, 2)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Scheme.String() != b[i].Scheme.String() || a[i].Score != b[i].Score {
			t.Fatalf("entry %d differs: %v vs %v", i, a[i].Scheme, b[i].Scheme)
		}
	}
}

func TestPlaceLinearityProperty(t *testing.T) {
	// Place is linear: Place(a+b) = Place(a) + Place(b).
	s := Scheme{SpaceDims: []int{0, 2}, TimePerm: []int{1, 3}, Skew: []int{1, 0}}
	m := s.Realize([]int{3, 4, 3, 2})
	pts := []ir.IterVec{{1, 2, 0, 1}, {2, 1, 2, 0}, {0, 3, 1, 1}}
	for _, a := range pts {
		for _, b := range pts {
			ta, xa, ya := m.Place(a)
			tb, xb, yb := m.Place(b)
			ts, xs, ys := m.Place(a.Add(b))
			if ts != ta+tb || xs != xa+xb || ys != ya+yb {
				t.Fatalf("linearity violated at %v + %v", a, b)
			}
		}
	}
}

func TestTTMSchemeAvoidsLongHolds(t *testing.T) {
	// TTM's best scheme should make the accumulation (l) and both reuse
	// dependencies short: the known-good allocation is space=(i,k) with
	// j and l in time (weights chosen mixed-radix).
	k := kernel.TTM()
	deps := k.DistanceVectors()
	cands := Search(deps, []int{3, 3, 3, 3}, 2)
	if len(cands) == 0 {
		t.Fatal("no TTM scheme")
	}
	best := cands[0].Mapping
	maxTR := 0
	for _, d := range deps {
		tr, _, _ := best.DepOffset(d)
		if tr > maxTR {
			maxTR = tr
		}
	}
	if maxTR > 1 {
		t.Errorf("best TTM scheme %v has max time distance %d, want 1", cands[0].Scheme, maxTR)
	}
}

// TestCheckTile pins the clustering legality rule: a sub-CGRA block must
// tile the (possibly non-square) fabric exactly in both dimensions —
// previously the clustering silently assumed square c×c blocks, which
// mis-partitions non-square arrays.
func TestCheckTile(t *testing.T) {
	ok := [][4]int{{8, 8, 2, 4}, {4, 6, 2, 3}, {4, 6, 4, 6}, {8, 8, 1, 8}}
	for _, c := range ok {
		if err := CheckTile(c[0], c[1], c[2], c[3]); err != nil {
			t.Errorf("CheckTile(%v) = %v, want nil", c, err)
		}
	}
	bad := [][4]int{{4, 6, 3, 4}, {4, 6, 2, 4}, {8, 8, 3, 3}, {8, 8, 0, 2}, {8, 8, 2, -1}}
	for _, c := range bad {
		err := CheckTile(c[0], c[1], c[2], c[3])
		if err == nil {
			t.Errorf("CheckTile(%v) = nil, want error", c)
			continue
		}
		if !errors.Is(err, ErrInfeasible) {
			t.Errorf("CheckTile(%v) error %v does not wrap ErrInfeasible", c, err)
		}
	}
}
