// Package power models performance and power of mapped CGRA
// configurations. The paper synthesizes the CGRA in Verilog on a 40 nm
// process (Synopsys toolchain, 510 MHz) and measures power; this package
// substitutes an activity-based analytic model calibrated to that
// operating point (see DESIGN.md, "Substitutions"): per-PE static power
// plus dynamic power proportional to measured FU, crossbar, register-file,
// and data-memory activity extracted from the configuration. The model
// preserves the evaluation's shape: power grows with array size and
// activity, so under-utilized mappings on big arrays lose power
// efficiency while fully-utilized mappings gain it (Fig. 7, bottom).
package power

import (
	"himap/internal/arch"
)

// Model holds the per-PE power coefficients in milliwatts at 510 MHz.
type Model struct {
	ClockMHz float64

	StaticMW float64 // leakage + clock tree, always on
	FUMW     float64 // ALU at 100% activity
	RouteMW  float64 // one output register at 100% switching
	RFMW     float64 // register file at 100% port activity
	MemMW    float64 // data memory at 100% port activity
}

// Default40nm returns coefficients calibrated to the paper's 40 nm,
// 510 MHz design point: a fully active PE dissipates ≈5.5 mW (ideal
// efficiency near 10² MOPS/mW, Fig. 7 bottom), and a statically scheduled
// PE burns ≈2 mW even when idle — configuration-memory fetch, clock tree,
// and leakage run every cycle regardless of useful work. That always-on
// share is what makes under-utilized mappings lose efficiency as the
// array grows, the paper's key power observation.
func Default40nm() Model {
	return Model{
		ClockMHz: 510,
		StaticMW: 2.00,
		FUMW:     1.50,
		RouteMW:  0.20,
		RFMW:     0.40,
		MemMW:    0.80,
	}
}

// ModelFor returns the power model of a fabric: the paper's balanced
// 40 nm point scaled by the fabric's cost class (silicon corner) and
// bandwidth class (interconnect implementation). The default fabric
// maps to Default40nm exactly.
//
// Cost corners: the low-power corner trades 20% clock for markedly
// lower leakage and switching energy (high-Vt cells); the
// high-performance corner buys 25% clock at a superlinear dynamic
// premium and 40% more leakage (low-Vt, stronger drive).
//
// Bandwidth classes price the resource they change: a double-pumped
// register file clocks its port logic twice per cycle; a shared egress
// bus replaces the per-direction link drivers with one; a narrowed
// register file drops port muxing energy.
func ModelFor(f arch.Fabric) Model {
	m := Default40nm()
	switch f.Cost {
	case arch.CostLowPower:
		m.ClockMHz = 408
		m.StaticMW = 1.50
		m.FUMW = 1.05
		m.RouteMW = 0.14
		m.RFMW = 0.28
		m.MemMW = 0.56
	case arch.CostHighPerf:
		m.ClockMHz = 637.5
		m.StaticMW = 2.80
		m.FUMW = 2.40
		m.RouteMW = 0.32
		m.RFMW = 0.64
		m.MemMW = 1.28
	}
	switch f.Bandwidth {
	case arch.BWDouble:
		m.RFMW *= 2
	case arch.BWBus:
		m.RouteMW *= 0.5
	case arch.BWNarrowRF:
		m.RFMW *= 0.6
	}
	return m
}

// Activity summarizes the switching activity of a configuration.
type Activity struct {
	FU    float64 // busy FU slots / total FU slots
	Route float64 // driven output registers / total
	RF    float64 // used RF ports / total port capacity
	Mem   float64 // active memory ports / total
}

// MeasureActivity extracts activity factors from a configuration.
func MeasureActivity(cfg *arch.Config) Activity {
	a := cfg.Fabric
	ndirs := arch.Dir(a.NumLinkDirs())
	var fu, routes, rfports, mem int
	for r := 0; r < a.Rows; r++ {
		for c := 0; c < a.Cols; c++ {
			for t := 0; t < cfg.II; t++ {
				in := &cfg.Slots[r][c][t]
				if in.Op.IsCompute() {
					fu++
				}
				for d := arch.Dir(0); d < ndirs; d++ {
					if in.OutSel[d].Kind != arch.OpdNone {
						routes++
					}
				}
				reads := map[int]bool{}
				note := func(o arch.Operand) {
					if o.Kind == arch.OpdReg {
						reads[o.Reg] = true
					}
				}
				note(in.SrcA)
				note(in.SrcB)
				for d := arch.Dir(0); d < ndirs; d++ {
					note(in.OutSel[d])
				}
				rfports += len(reads) + len(in.RegWr)
				if in.MemRead.Active {
					mem++
				}
				if in.MemWrite.Active {
					mem++
				}
			}
		}
	}
	slots := float64(a.NumPEs() * cfg.II)
	return Activity{
		FU:    float64(fu) / slots,
		Route: float64(routes) / (slots * float64(ndirs)),
		RF:    float64(rfports) / (slots * float64(a.RFReadCap()+a.RFWriteCap())),
		Mem:   float64(mem) / (slots * 2),
	}
}

// PerformanceMOPS returns the throughput of the steady-state schedule in
// millions of operations per second: (busy FUs / II) × clock.
func (m Model) PerformanceMOPS(cfg *arch.Config) float64 {
	opsPerCycle := float64(cfg.BusyFUs()) / float64(cfg.II)
	return opsPerCycle * m.ClockMHz
}

// PowerMW returns the total dissipation of the array running the
// configuration.
func (m Model) PowerMW(cfg *arch.Config) float64 {
	act := MeasureActivity(cfg)
	pes := float64(cfg.Fabric.NumPEs())
	perPE := m.StaticMW +
		act.FU*m.FUMW +
		act.Route*float64(cfg.Fabric.NumLinkDirs())*m.RouteMW +
		act.RF*m.RFMW +
		act.Mem*m.MemMW
	return pes * perPE
}

// EfficiencyMOPSPerMW returns MOPS per milliwatt — the power-efficiency
// metric of Fig. 7 (bottom).
func (m Model) EfficiencyMOPSPerMW(cfg *arch.Config) float64 {
	p := m.PowerMW(cfg)
	if p == 0 {
		return 0
	}
	return m.PerformanceMOPS(cfg) / p
}
