package power

import (
	"testing"

	"himap/internal/arch"
	"himap/internal/himap"
	"himap/internal/ir"
	"himap/internal/kernel"
)

func fullConfig(t *testing.T) *arch.Config {
	t.Helper()
	res, err := himap.Compile(kernel.GEMM(), arch.Default(4, 4), himap.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res.Config
}

func TestPerformanceMOPSFormula(t *testing.T) {
	cfg := fullConfig(t)
	m := Default40nm()
	// GEMM maps at 100% utilization: 16 PEs × 510 MHz.
	want := 16.0 * 510.0
	if got := m.PerformanceMOPS(cfg); got != want {
		t.Errorf("PerformanceMOPS = %v, want %v", got, want)
	}
}

func TestActivityBounds(t *testing.T) {
	cfg := fullConfig(t)
	a := MeasureActivity(cfg)
	for name, v := range map[string]float64{"fu": a.FU, "route": a.Route, "rf": a.RF, "mem": a.Mem} {
		if v < 0 || v > 1 {
			t.Errorf("activity %s = %v out of [0,1]", name, v)
		}
	}
	if a.FU != 1.0 {
		t.Errorf("GEMM FU activity = %v, want 1.0 (100%% utilization)", a.FU)
	}
	if a.Route == 0 {
		t.Error("systolic mapping must exercise the crossbar")
	}
}

func TestIdleArrayBurnsOnlyStatic(t *testing.T) {
	cfg := arch.NewConfig(arch.DefaultFabric(4, 4), 4)
	m := Default40nm()
	want := 16 * m.StaticMW
	if got := m.PowerMW(cfg); got != want {
		t.Errorf("idle power = %v, want %v", got, want)
	}
	if m.PerformanceMOPS(cfg) != 0 {
		t.Error("idle array has zero throughput")
	}
}

func TestEfficiencyFavorsUtilization(t *testing.T) {
	// A half-utilized configuration on the same array must be less power
	// efficient than a fully utilized one — the static share dominates.
	m := Default40nm()
	full := arch.NewConfig(arch.DefaultFabric(2, 2), 2)
	half := arch.NewConfig(arch.DefaultFabric(2, 2), 2)
	mk := func(cfg *arch.Config, every int) {
		i := 0
		for r := 0; r < 2; r++ {
			for c := 0; c < 2; c++ {
				for tt := 0; tt < 2; tt++ {
					if i%every == 0 {
						in := cfg.At(r, c, tt)
						in.Op = ir.OpAdd
						in.SrcA = arch.FromConst(1)
						in.SrcB = arch.FromConst(2)
					}
					i++
				}
			}
		}
	}
	mk(full, 1)
	mk(half, 2)
	ef := m.EfficiencyMOPSPerMW(full)
	eh := m.EfficiencyMOPSPerMW(half)
	if ef <= eh {
		t.Errorf("efficiency full %v <= half %v; static power share broken", ef, eh)
	}
}

func TestPowerMonotoneInActivity(t *testing.T) {
	m := Default40nm()
	idle := arch.NewConfig(arch.DefaultFabric(2, 2), 1)
	busy := arch.NewConfig(arch.DefaultFabric(2, 2), 1)
	for r := 0; r < 2; r++ {
		for c := 0; c < 2; c++ {
			in := busy.At(r, c, 0)
			in.Op = ir.OpMul
			in.SrcA = arch.FromConst(1)
			in.SrcB = arch.FromConst(2)
			in.MemRead = arch.MemOp{Active: true, Tag: "x"}
		}
	}
	if m.PowerMW(busy) <= m.PowerMW(idle) {
		t.Error("busy array must dissipate more than idle")
	}
}

func TestEfficiencyZeroPowerGuard(t *testing.T) {
	m := Model{ClockMHz: 510}
	cfg := arch.NewConfig(arch.DefaultFabric(1, 1), 1)
	if got := m.EfficiencyMOPSPerMW(cfg); got != 0 {
		t.Errorf("zero-power efficiency = %v", got)
	}
}

func TestHiMapBeatsBaselineEfficiencyShape(t *testing.T) {
	// The Fig. 7 bottom-panel shape: at the same array size, a mapping at
	// the performance envelope is more power efficient than a severely
	// under-utilized one.
	res, err := himap.Compile(kernel.MVT(), arch.Default(8, 8), himap.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := Default40nm()
	effHi := m.EfficiencyMOPSPerMW(res.Config)
	// Build an artificial low-utilization config of the same size.
	low := arch.NewConfig(arch.DefaultFabric(8, 8), 8)
	in := low.At(0, 0, 0)
	in.Op = ir.OpAdd
	in.SrcA = arch.FromConst(1)
	in.SrcB = arch.FromConst(2)
	effLow := m.EfficiencyMOPSPerMW(low)
	if effHi <= effLow {
		t.Errorf("efficiency shape inverted: HiMap %v <= low-util %v", effHi, effLow)
	}
	if effHi < 50 || effHi > 200 {
		t.Errorf("efficiency %v MOPS/mW far from the paper's ~10^2 scale", effHi)
	}
}

// TestModelForDefaultIsPaperModel pins the resource/cost seam's zero
// point: the default fabric must price exactly as the paper's 40 nm
// model — any drift would silently move every published number.
func TestModelForDefaultIsPaperModel(t *testing.T) {
	if got, want := ModelFor(arch.DefaultFabric(8, 8)), Default40nm(); got != want {
		t.Fatalf("ModelFor(default) = %+v, want Default40nm %+v", got, want)
	}
}

// TestModelForCornersAndBandwidth checks the direction and composition
// of the cost-corner and bandwidth scalings without restating every
// constant: corners move all terms one way, bandwidth classes touch
// only the resource they change, and the two compose multiplicatively.
func TestModelForCornersAndBandwidth(t *testing.T) {
	base := Default40nm()
	low := ModelFor(arch.Fabric{CGRA: arch.Default(8, 8), Cost: arch.CostLowPower})
	high := ModelFor(arch.Fabric{CGRA: arch.Default(8, 8), Cost: arch.CostHighPerf})
	if !(low.ClockMHz < base.ClockMHz && base.ClockMHz < high.ClockMHz) {
		t.Errorf("clock ordering wrong: %v / %v / %v", low.ClockMHz, base.ClockMHz, high.ClockMHz)
	}
	for _, tc := range []struct {
		name        string
		lo, mid, hi float64
	}{
		{"static", low.StaticMW, base.StaticMW, high.StaticMW},
		{"fu", low.FUMW, base.FUMW, high.FUMW},
		{"route", low.RouteMW, base.RouteMW, high.RouteMW},
		{"rf", low.RFMW, base.RFMW, high.RFMW},
		{"mem", low.MemMW, base.MemMW, high.MemMW},
	} {
		if !(tc.lo < tc.mid && tc.mid < tc.hi) {
			t.Errorf("%s power ordering wrong: %v / %v / %v", tc.name, tc.lo, tc.mid, tc.hi)
		}
	}

	double := ModelFor(arch.Fabric{CGRA: arch.Default(8, 8), Bandwidth: arch.BWDouble})
	if double.RFMW != 2*base.RFMW {
		t.Errorf("double-pumped RF power %v, want %v", double.RFMW, 2*base.RFMW)
	}
	if double.RouteMW != base.RouteMW || double.FUMW != base.FUMW || double.ClockMHz != base.ClockMHz {
		t.Error("BWDouble must scale only the RF term")
	}
	bus := ModelFor(arch.Fabric{CGRA: arch.Default(8, 8), Bandwidth: arch.BWBus})
	if bus.RouteMW != 0.5*base.RouteMW || bus.RFMW != base.RFMW {
		t.Errorf("bus scaling wrong: route %v rf %v", bus.RouteMW, bus.RFMW)
	}
	narrow := ModelFor(arch.Fabric{CGRA: arch.Default(8, 8), Bandwidth: arch.BWNarrowRF})
	if narrow.RFMW != 0.6*base.RFMW || narrow.RouteMW != base.RouteMW {
		t.Errorf("narrow-rf scaling wrong: rf %v route %v", narrow.RFMW, narrow.RouteMW)
	}

	both := ModelFor(arch.Fabric{CGRA: arch.Default(8, 8), Cost: arch.CostHighPerf, Bandwidth: arch.BWDouble})
	if both.RFMW != 2*high.RFMW {
		t.Errorf("corner and bandwidth must compose: RF %v, want %v", both.RFMW, 2*high.RFMW)
	}
}
