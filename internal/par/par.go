// Package par is the pipeline's coarse-grained parallelism substrate: a
// bounded worker pool over index spaces, used to run independent
// simulated-annealing chains (internal/baseline), shard the systolic
// (H,S) scheme search (internal/systolic), race HiMap scheme attempts in
// deterministic waves (internal/himap), and fan out kernel×size
// experiment sweeps (internal/exp).
//
// Determinism contract: ForEach hands out indices but imposes no
// completion order; callers that need deterministic results write into
// the i-th slot of a pre-sized slice and reduce in index order
// afterwards. With w == 1 every call degenerates to a plain sequential
// loop on the calling goroutine — byte-identical behavior to code that
// never heard of goroutines, which is how the Workers=1 reproducibility
// guarantee is kept.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count knob: n > 0 is taken as-is, anything
// else (the zero value of an Options field) means "all available
// parallelism", i.e. runtime.GOMAXPROCS(0).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach runs fn(i) for every i in [0, n) using at most w concurrent
// workers and returns when all calls have finished. Indices are claimed
// in order from a shared counter, so early indices start first, but
// completion order is unspecified for w > 1. With w <= 1 (or n <= 1) the
// loop runs sequentially on the calling goroutine.
//
// fn must be safe to call concurrently with itself for w > 1; panics in
// workers propagate to the caller after all workers stop.
func ForEach(w, n int, fn func(int)) {
	if n <= 0 {
		return
	}
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	var panicOnce sync.Once
	var panicked any
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicked = r })
					next.Store(int64(n)) // drain remaining work
				}
			}()
			for {
				i := int(next.Add(1) - 1)
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

// Map runs fn over [0, n) on w workers and returns the results in index
// order — the deterministic-collection idiom packaged up.
func Map[T any](w, n int, fn func(int) T) []T {
	out := make([]T, n)
	ForEach(w, n, func(i int) { out[i] = fn(i) })
	return out
}
