package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Errorf("Workers(3) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-2); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-2) = %d", got)
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, w := range []int{1, 2, 7, 64} {
		const n = 1000
		var hits [n]atomic.Int32
		ForEach(w, n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("w=%d: index %d hit %d times", w, i, got)
			}
		}
	}
}

func TestForEachSequentialWhenSingleWorker(t *testing.T) {
	var order []int
	ForEach(1, 5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if i != v {
			t.Fatalf("w=1 must run in index order, got %v", order)
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	ForEach(4, 0, func(int) { t.Fatal("must not be called") })
}

func TestMapDeterministicOrder(t *testing.T) {
	got := Map(8, 100, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("Map slot %d = %d", i, v)
		}
	}
}

func TestForEachPanicPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("panic must propagate to the caller")
		}
	}()
	ForEach(4, 100, func(i int) {
		if i == 10 {
			panic("boom")
		}
	})
}
