package ir

import (
	"fmt"
	"sort"
	"strings"
)

// Node is a vertex of the DFG: one operation instance of the fully
// unrolled loop block.
type Node struct {
	ID     int
	Kind   OpKind
	Name   string  // body-op name, e.g. "mul1"; empty for synthesized nodes
	BodyOp int     // index of the originating kernel body op; -1 if synthesized
	Iter   IterVec // block-local iteration vector of the owning cluster
	Tensor string  // OpLoad/OpStore: tensor name
	Index  IterVec // OpLoad/OpStore: tensor element index
	Const  int64   // immediate operand value when HasConst is set
	// HasConst marks nodes whose second input port (port 1) is an
	// immediate rather than a routed value.
	HasConst bool
}

// IsBoundaryIO reports whether the node is a memory access synthesized at
// the block boundary (as opposed to a body-op memory access).
func (n *Node) IsBoundaryIO() bool { return n.Kind.IsMemory() && n.BodyOp < 0 }

func (n *Node) String() string {
	return fmt.Sprintf("n%d[%s %s@%s]", n.ID, n.Kind, n.Name, n.Iter)
}

// Edge is a data dependence between two DFG nodes. ToPort identifies the
// consumer input port (0 or 1 for binary compute ops; 0 for route/store).
type Edge struct {
	From   int
	To     int
	ToPort int
}

// DFG is the Data-Flow Graph of one fully unrolled block of the kernel:
// a directed acyclic graph whose vertices are operations and whose edges
// are data dependencies (paper §IV, D = (V_D, E_D)).
type DFG struct {
	Nodes []*Node
	Edges []Edge

	Block []int // block sizes (b1, ..., bl) the DFG was unrolled for

	outs [][]int // node ID -> indices into Edges
	ins  [][]int
}

// NewDFG returns an empty DFG for the given block sizes.
func NewDFG(block []int) *DFG {
	b := make([]int, len(block))
	copy(b, block)
	return &DFG{Block: b}
}

// AddNode appends a node, assigning its ID, and returns it.
func (d *DFG) AddNode(n Node) *Node {
	n.ID = len(d.Nodes)
	p := &n
	d.Nodes = append(d.Nodes, p)
	d.outs = append(d.outs, nil)
	d.ins = append(d.ins, nil)
	return p
}

// AddEdge appends a dependence edge from -> to at the given consumer port.
func (d *DFG) AddEdge(from, to, port int) {
	if from < 0 || from >= len(d.Nodes) || to < 0 || to >= len(d.Nodes) {
		panic(fmt.Sprintf("ir: AddEdge out of range (%d -> %d, %d nodes)", from, to, len(d.Nodes)))
	}
	idx := len(d.Edges)
	d.Edges = append(d.Edges, Edge{From: from, To: to, ToPort: port})
	d.outs[from] = append(d.outs[from], idx)
	d.ins[to] = append(d.ins[to], idx)
}

// OutEdges returns the indices (into d.Edges) of edges leaving node id.
func (d *DFG) OutEdges(id int) []int { return d.outs[id] }

// InEdges returns the indices (into d.Edges) of edges entering node id.
func (d *DFG) InEdges(id int) []int { return d.ins[id] }

// NumCompute returns |V_D| counted over compute nodes only, the numerator
// of the utilization metric.
func (d *DFG) NumCompute() int {
	n := 0
	for _, v := range d.Nodes {
		if v.Kind.IsCompute() {
			n++
		}
	}
	return n
}

// TopoOrder returns node IDs in a topological order of the dependence
// edges. It returns an error if the graph has a cycle.
func (d *DFG) TopoOrder() ([]int, error) {
	indeg := make([]int, len(d.Nodes))
	for _, e := range d.Edges {
		indeg[e.To]++
	}
	queue := make([]int, 0, len(d.Nodes))
	for id := range d.Nodes {
		if indeg[id] == 0 {
			queue = append(queue, id)
		}
	}
	order := make([]int, 0, len(d.Nodes))
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		order = append(order, id)
		for _, ei := range d.outs[id] {
			t := d.Edges[ei].To
			indeg[t]--
			if indeg[t] == 0 {
				queue = append(queue, t)
			}
		}
	}
	if len(order) != len(d.Nodes) {
		return nil, fmt.Errorf("ir: DFG has a dependence cycle (%d of %d nodes ordered)", len(order), len(d.Nodes))
	}
	return order, nil
}

// Validate checks structural invariants: edge endpoints in range, every
// consumer port within the node's arity, each input port driven at most
// once, non-constant compute ports driven exactly once, and acyclicity.
func (d *DFG) Validate() error {
	seen := make(map[[2]int]bool, len(d.Edges))
	for _, e := range d.Edges {
		if e.From < 0 || e.From >= len(d.Nodes) || e.To < 0 || e.To >= len(d.Nodes) {
			return fmt.Errorf("ir: edge endpoint out of range: %+v", e)
		}
		to := d.Nodes[e.To]
		if e.ToPort < 0 || e.ToPort >= to.Kind.Arity() {
			return fmt.Errorf("ir: edge %v->%v port %d out of arity %d for %v",
				e.From, e.To, e.ToPort, to.Kind.Arity(), to.Kind)
		}
		key := [2]int{e.To, e.ToPort}
		if seen[key] {
			return fmt.Errorf("ir: input port %d of node %v driven twice", e.ToPort, to)
		}
		seen[key] = true
	}
	for _, n := range d.Nodes {
		ar := n.Kind.Arity()
		for p := 0; p < ar; p++ {
			if p == 1 && n.HasConst {
				continue
			}
			if !seen[[2]int{n.ID, p}] {
				return fmt.Errorf("ir: input port %d of node %v undriven", p, n)
			}
		}
	}
	if _, err := d.TopoOrder(); err != nil {
		return err
	}
	return nil
}

// Stats summarizes node counts by kind, for logging and tests.
func (d *DFG) Stats() string {
	counts := map[OpKind]int{}
	for _, n := range d.Nodes {
		counts[n.Kind]++
	}
	kinds := make([]OpKind, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	var b strings.Builder
	fmt.Fprintf(&b, "%d nodes, %d edges (", len(d.Nodes), len(d.Edges))
	for i, k := range kinds {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s:%d", k, counts[k])
	}
	b.WriteString(")")
	return b.String()
}
