package ir

import (
	"strings"
	"testing"
)

// buildChainDFG builds a 2-iteration DFG:
//
//	iter (0): load A -> mul -> add -> (feeds iter 1's add port 1)
//	iter (1): load A -> mul -> add
//
// mirroring a 1-D accumulation kernel.
func buildChainDFG(t *testing.T) *DFG {
	t.Helper()
	d := NewDFG([]int{2})
	var prevAdd int
	for i := 0; i < 2; i++ {
		iter := IterVec{i}
		ld := d.AddNode(Node{Kind: OpLoad, Name: "ldA", BodyOp: 0, Iter: iter, Tensor: "A", Index: IterVec{i}})
		mul := d.AddNode(Node{Kind: OpMul, Name: "mul", BodyOp: 1, Iter: iter, HasConst: true, Const: 3})
		add := d.AddNode(Node{Kind: OpAdd, Name: "add", BodyOp: 2, Iter: iter})
		d.AddEdge(ld.ID, mul.ID, 0)
		d.AddEdge(mul.ID, add.ID, 0)
		if i == 0 {
			st := d.AddNode(Node{Kind: OpLoad, Name: "init", BodyOp: -1, Iter: iter, Tensor: "S0", Index: IterVec{0}})
			d.AddEdge(st.ID, add.ID, 1)
		} else {
			d.AddEdge(prevAdd, add.ID, 1)
		}
		prevAdd = add.ID
	}
	return d
}

func TestDFGValidateOK(t *testing.T) {
	d := buildChainDFG(t)
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := d.NumCompute(); got != 4 {
		t.Errorf("NumCompute = %d, want 4 (2 mul + 2 add)", got)
	}
}

func TestDFGTopoOrderRespectsEdges(t *testing.T) {
	d := buildChainDFG(t)
	order, err := d.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make([]int, len(d.Nodes))
	for i, id := range order {
		pos[id] = i
	}
	for _, e := range d.Edges {
		if pos[e.From] >= pos[e.To] {
			t.Errorf("edge %d->%d violated by topo order", e.From, e.To)
		}
	}
}

func TestDFGValidateDetectsCycle(t *testing.T) {
	d := NewDFG([]int{1})
	a := d.AddNode(Node{Kind: OpAdd, Iter: IterVec{0}})
	b := d.AddNode(Node{Kind: OpAdd, Iter: IterVec{0}})
	d.AddEdge(a.ID, b.ID, 0)
	d.AddEdge(b.ID, a.ID, 0)
	// Fill remaining ports so the port checks pass and the cycle check is hit.
	c1 := d.AddNode(Node{Kind: OpLoad, Iter: IterVec{0}, BodyOp: -1, Tensor: "X", Index: IterVec{0}})
	d.AddEdge(c1.ID, a.ID, 1)
	c2 := d.AddNode(Node{Kind: OpLoad, Iter: IterVec{0}, BodyOp: -1, Tensor: "X", Index: IterVec{1}})
	d.AddEdge(c2.ID, b.ID, 1)
	if err := d.Validate(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("expected cycle error, got %v", err)
	}
}

func TestDFGValidateDetectsDoubleDrive(t *testing.T) {
	d := NewDFG([]int{1})
	l1 := d.AddNode(Node{Kind: OpLoad, Iter: IterVec{0}, Tensor: "A", Index: IterVec{0}})
	l2 := d.AddNode(Node{Kind: OpLoad, Iter: IterVec{0}, Tensor: "A", Index: IterVec{1}})
	r := d.AddNode(Node{Kind: OpRoute, Iter: IterVec{0}})
	d.AddEdge(l1.ID, r.ID, 0)
	d.AddEdge(l2.ID, r.ID, 0)
	if err := d.Validate(); err == nil || !strings.Contains(err.Error(), "driven twice") {
		t.Errorf("expected double-drive error, got %v", err)
	}
}

func TestDFGValidateDetectsUndrivenPort(t *testing.T) {
	d := NewDFG([]int{1})
	d.AddNode(Node{Kind: OpAdd, Iter: IterVec{0}})
	if err := d.Validate(); err == nil || !strings.Contains(err.Error(), "undriven") {
		t.Errorf("expected undriven error, got %v", err)
	}
}

func TestDFGValidateDetectsBadPort(t *testing.T) {
	d := NewDFG([]int{1})
	l := d.AddNode(Node{Kind: OpLoad, Iter: IterVec{0}, Tensor: "A", Index: IterVec{0}})
	r := d.AddNode(Node{Kind: OpRoute, Iter: IterVec{0}})
	d.AddEdge(l.ID, r.ID, 1) // route has arity 1: only port 0 valid
	if err := d.Validate(); err == nil || !strings.Contains(err.Error(), "arity") {
		t.Errorf("expected arity error, got %v", err)
	}
}

func TestOpKindProperties(t *testing.T) {
	if !OpAdd.IsCompute() || !OpMin.IsCompute() {
		t.Error("add/min should be compute")
	}
	if OpLoad.IsCompute() || OpRoute.IsCompute() || OpStore.IsCompute() {
		t.Error("load/route/store must not be compute")
	}
	if !OpLoad.IsMemory() || !OpStore.IsMemory() || OpAdd.IsMemory() {
		t.Error("IsMemory misclassification")
	}
	if OpRoute.Arity() != 1 || OpAdd.Arity() != 2 || OpLoad.Arity() != 0 {
		t.Error("Arity misclassification")
	}
}

func TestOpKindEval(t *testing.T) {
	cases := []struct {
		k    OpKind
		a, b int64
		want int64
	}{
		{OpAdd, 3, 4, 7},
		{OpSub, 3, 4, -1},
		{OpMul, 3, 4, 12},
		{OpDiv, 12, 4, 3},
		{OpDiv, 12, 0, 0},
		{OpMin, 3, 4, 3},
		{OpMax, 3, 4, 4},
		{OpAnd, 6, 3, 2},
		{OpOr, 6, 3, 7},
		{OpXor, 6, 3, 5},
		{OpShl, 3, 2, 12},
		{OpShr, 12, 2, 3},
		{OpSel, 0, 9, 9},
		{OpSel, 5, 9, 5},
	}
	for _, c := range cases {
		if got := c.k.Eval(c.a, c.b); got != c.want {
			t.Errorf("%v.Eval(%d,%d) = %d, want %d", c.k, c.a, c.b, got, c.want)
		}
	}
}

func TestOpKindStringAllNamed(t *testing.T) {
	for k := OpNop; k < opKindCount; k++ {
		if s := k.String(); strings.HasPrefix(s, "op(") {
			t.Errorf("kind %d has no name", k)
		}
	}
}

func TestDFGStats(t *testing.T) {
	d := buildChainDFG(t)
	s := d.Stats()
	for _, want := range []string{"7 nodes", "6 edges", "mul:2", "add:2", "load:3"} {
		if !strings.Contains(s, want) {
			t.Errorf("Stats %q missing %q", s, want)
		}
	}
}
