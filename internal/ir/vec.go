// Package ir defines the graph intermediate representations used by the
// HiMap mapping flow: the Data-Flow Graph (DFG) of a fully unrolled loop
// block, the Iteration Space Dependency Graph (ISDG) obtained by clustering
// the DFG by iteration, and the Intra-iteration Data-Flow Graph (IDFG) that
// captures a single iteration together with its input/output interface.
//
// The definitions follow §IV of the HiMap paper (DATE 2021).
package ir

import (
	"fmt"
	"strconv"
	"strings"
)

// IterVec is an iteration vector: one coordinate per loop level of the
// tiled kernel, ordered outermost first. It is also used for dependence
// distance vectors and tensor element indices.
type IterVec []int

// Clone returns a fresh copy of v.
func (v IterVec) Clone() IterVec {
	w := make(IterVec, len(v))
	copy(w, v)
	return w
}

// Add returns v + d, element-wise. The vectors must have equal length.
func (v IterVec) Add(d IterVec) IterVec {
	if len(v) != len(d) {
		panic(fmt.Sprintf("ir: IterVec.Add length mismatch %d vs %d", len(v), len(d)))
	}
	w := make(IterVec, len(v))
	for i := range v {
		w[i] = v[i] + d[i]
	}
	return w
}

// Sub returns v - d, element-wise. The vectors must have equal length.
func (v IterVec) Sub(d IterVec) IterVec {
	if len(v) != len(d) {
		panic(fmt.Sprintf("ir: IterVec.Sub length mismatch %d vs %d", len(v), len(d)))
	}
	w := make(IterVec, len(v))
	for i := range v {
		w[i] = v[i] - d[i]
	}
	return w
}

// Neg returns -v.
func (v IterVec) Neg() IterVec {
	w := make(IterVec, len(v))
	for i := range v {
		w[i] = -v[i]
	}
	return w
}

// Dot returns the inner product of v and d.
func (v IterVec) Dot(d IterVec) int {
	if len(v) != len(d) {
		panic(fmt.Sprintf("ir: IterVec.Dot length mismatch %d vs %d", len(v), len(d)))
	}
	s := 0
	for i := range v {
		s += v[i] * d[i]
	}
	return s
}

// Equal reports whether v and d have identical length and elements.
func (v IterVec) Equal(d IterVec) bool {
	if len(v) != len(d) {
		return false
	}
	for i := range v {
		if v[i] != d[i] {
			return false
		}
	}
	return true
}

// IsZero reports whether every element of v is zero.
func (v IterVec) IsZero() bool {
	for _, x := range v {
		if x != 0 {
			return false
		}
	}
	return true
}

// LexNonNegative reports whether v is lexicographically non-negative,
// i.e. zero or with a positive leading non-zero element. Dependence
// distance vectors of a valid loop nest are lexicographically positive.
func (v IterVec) LexNonNegative() bool {
	for _, x := range v {
		if x > 0 {
			return true
		}
		if x < 0 {
			return false
		}
	}
	return true
}

// LexLess reports whether v precedes d in lexicographic order.
func (v IterVec) LexLess(d IterVec) bool {
	n := len(v)
	if len(d) < n {
		n = len(d)
	}
	for i := 0; i < n; i++ {
		if v[i] != d[i] {
			return v[i] < d[i]
		}
	}
	return len(v) < len(d)
}

// InBox reports whether 0 <= v[i] < box[i] for every coordinate.
func (v IterVec) InBox(box []int) bool {
	if len(v) != len(box) {
		return false
	}
	for i := range v {
		if v[i] < 0 || v[i] >= box[i] {
			return false
		}
	}
	return true
}

// Key returns a canonical string usable as a map key.
func (v IterVec) Key() string {
	var b strings.Builder
	for i, x := range v {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(x))
	}
	return b.String()
}

// String renders v as "(i0,i1,...)".
func (v IterVec) String() string { return "(" + v.Key() + ")" }

// ManhattanNorm returns the L1 norm of v.
func (v IterVec) ManhattanNorm() int {
	s := 0
	for _, x := range v {
		if x < 0 {
			s -= x
		} else {
			s += x
		}
	}
	return s
}

// BoxSize returns the product of the box extents, i.e. the number of
// iteration points in the block.
func BoxSize(box []int) int {
	n := 1
	for _, b := range box {
		n *= b
	}
	return n
}

// ForEachPoint invokes fn for every point of the box in lexicographic
// order (outermost dimension slowest). The IterVec passed to fn is reused
// between calls; clone it if it must be retained.
func ForEachPoint(box []int, fn func(IterVec)) {
	if len(box) == 0 {
		return
	}
	v := make(IterVec, len(box))
	for {
		fn(v)
		d := len(box) - 1
		for d >= 0 {
			v[d]++
			if v[d] < box[d] {
				break
			}
			v[d] = 0
			d--
		}
		if d < 0 {
			return
		}
	}
}

// PointIndex returns the lexicographic rank of v inside the box.
func PointIndex(v IterVec, box []int) int {
	idx := 0
	for i := range box {
		idx = idx*box[i] + v[i]
	}
	return idx
}
