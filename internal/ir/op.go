package ir

import "fmt"

// OpKind identifies the operation performed by a DFG node.
type OpKind uint8

// Operation kinds. Compute kinds occupy an FU (ALU) slot; OpLoad and
// OpStore occupy the per-PE data-memory read/write port of the cycle they
// are scheduled in; OpRoute is a pure data-movement node realized on
// crossbar output registers or register-file entries, never on an FU.
const (
	OpNop OpKind = iota
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMin
	OpMax
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	OpSel // t = a if a != 0 else b (used by predicated kernels)
	OpLoad
	OpStore
	OpRoute
	opKindCount
)

var opNames = [...]string{
	OpNop:   "nop",
	OpAdd:   "add",
	OpSub:   "sub",
	OpMul:   "mul",
	OpDiv:   "div",
	OpMin:   "min",
	OpMax:   "max",
	OpAnd:   "and",
	OpOr:    "or",
	OpXor:   "xor",
	OpShl:   "shl",
	OpShr:   "shr",
	OpSel:   "sel",
	OpLoad:  "load",
	OpStore: "store",
	OpRoute: "route",
}

// String returns the mnemonic of the operation kind.
func (k OpKind) String() string {
	if int(k) < len(opNames) && opNames[k] != "" {
		return opNames[k]
	}
	return fmt.Sprintf("op(%d)", uint8(k))
}

// IsCompute reports whether the kind occupies an FU slot. Only compute
// nodes count toward the CGRA resource utilization U = |V_D| / |V_H^F|
// of the paper's problem formulation.
func (k OpKind) IsCompute() bool {
	switch k {
	case OpAdd, OpSub, OpMul, OpDiv, OpMin, OpMax, OpAnd, OpOr, OpXor, OpShl, OpShr, OpSel:
		return true
	}
	return false
}

// IsMemory reports whether the kind uses the per-PE data-memory port.
func (k OpKind) IsMemory() bool { return k == OpLoad || k == OpStore }

// Arity returns the number of value inputs the operation consumes.
func (k OpKind) Arity() int {
	switch k {
	case OpNop, OpLoad:
		return 0
	case OpRoute, OpStore:
		return 1
	default:
		return 2
	}
}

// Eval computes the integer result of a binary/unary compute kind.
// It panics for non-compute kinds.
func (k OpKind) Eval(a, b int64) int64 {
	switch k {
	case OpAdd:
		return a + b
	case OpSub:
		return a - b
	case OpMul:
		return a * b
	case OpDiv:
		if b == 0 {
			return 0 // CGRA ALUs saturate rather than trap; golden matches.
		}
		return a / b
	case OpMin:
		if a < b {
			return a
		}
		return b
	case OpMax:
		if a > b {
			return a
		}
		return b
	case OpAnd:
		return a & b
	case OpOr:
		return a | b
	case OpXor:
		return a ^ b
	case OpShl:
		return a << uint64(b&63)
	case OpShr:
		return a >> uint64(b&63)
	case OpSel:
		if a != 0 {
			return a
		}
		return b
	}
	panic(fmt.Sprintf("ir: Eval on non-compute kind %v", k))
}
