package ir

import (
	"fmt"
	"sort"
)

// Cluster is a vertex of the ISDG: the set of DFG nodes belonging to one
// iteration of the block's iteration space.
type Cluster struct {
	ID    int
	Iter  IterVec
	Nodes []int // DFG node IDs, in creation order
}

// ClusterEdge is a dependence between two iteration clusters, annotated
// with its distance vector Dist = To.Iter - From.Iter.
type ClusterEdge struct {
	From, To int
	Dist     IterVec
}

// ISDG is the Iteration Space Dependency Graph D' = (C, E) of §IV: the
// DFG clustered by iteration vector. Two clusters are connected iff a
// node in one feeds a node in the other.
type ISDG struct {
	DFG      *DFG
	Clusters []*Cluster
	Edges    []ClusterEdge

	byIter  map[string]int
	cluster []int // DFG node ID -> cluster ID (-1 for none)
	outs    [][]int
	ins     [][]int
}

// BuildISDG clusters the DFG by iteration vector. Every node must carry a
// non-nil Iter (DFG construction in the kernel package guarantees this).
func BuildISDG(d *DFG) (*ISDG, error) {
	g := &ISDG{
		DFG:     d,
		byIter:  make(map[string]int),
		cluster: make([]int, len(d.Nodes)),
	}
	for _, n := range d.Nodes {
		if n.Iter == nil {
			return nil, fmt.Errorf("ir: node %v has no iteration vector", n)
		}
		key := n.Iter.Key()
		ci, ok := g.byIter[key]
		if !ok {
			ci = len(g.Clusters)
			g.byIter[key] = ci
			g.Clusters = append(g.Clusters, &Cluster{ID: ci, Iter: n.Iter.Clone()})
			g.outs = append(g.outs, nil)
			g.ins = append(g.ins, nil)
		}
		g.Clusters[ci].Nodes = append(g.Clusters[ci].Nodes, n.ID)
		g.cluster[n.ID] = ci
	}
	// Deduplicate cluster edges; record each distinct (from, to) pair once.
	type pair struct{ f, t int }
	seen := make(map[pair]bool)
	for _, e := range d.Edges {
		cf, ct := g.cluster[e.From], g.cluster[e.To]
		if cf == ct {
			continue
		}
		p := pair{cf, ct}
		if seen[p] {
			continue
		}
		seen[p] = true
		dist := g.Clusters[ct].Iter.Sub(g.Clusters[cf].Iter)
		idx := len(g.Edges)
		g.Edges = append(g.Edges, ClusterEdge{From: cf, To: ct, Dist: dist})
		g.outs[cf] = append(g.outs[cf], idx)
		g.ins[ct] = append(g.ins[ct], idx)
	}
	return g, nil
}

// ClusterOf returns the cluster ID owning DFG node id.
func (g *ISDG) ClusterOf(id int) int { return g.cluster[id] }

// ClusterAt returns the cluster for an iteration vector, or nil.
func (g *ISDG) ClusterAt(iter IterVec) *Cluster {
	ci, ok := g.byIter[iter.Key()]
	if !ok {
		return nil
	}
	return g.Clusters[ci]
}

// OutEdges returns indices into g.Edges of edges leaving cluster ci.
func (g *ISDG) OutEdges(ci int) []int { return g.outs[ci] }

// InEdges returns indices into g.Edges of edges entering cluster ci.
func (g *ISDG) InEdges(ci int) []int { return g.ins[ci] }

// DistanceVectors returns the distinct inter-iteration dependence distance
// vectors of the ISDG in a deterministic order. These drive the systolic
// space-time mapping search.
func (g *ISDG) DistanceVectors() []IterVec {
	seen := make(map[string]IterVec)
	for _, e := range g.Edges {
		seen[e.Dist.Key()] = e.Dist
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]IterVec, 0, len(keys))
	for _, k := range keys {
		out = append(out, seen[k])
	}
	return out
}

// Validate checks that all inter-cluster dependence distances are
// lexicographically positive (a well-formed loop nest) and that cluster
// membership covers every DFG node exactly once.
func (g *ISDG) Validate() error {
	covered := 0
	for _, c := range g.Clusters {
		covered += len(c.Nodes)
		for _, id := range c.Nodes {
			if g.cluster[id] != c.ID {
				return fmt.Errorf("ir: node %d claimed by cluster %d but mapped to %d", id, c.ID, g.cluster[id])
			}
		}
	}
	if covered != len(g.DFG.Nodes) {
		return fmt.Errorf("ir: clusters cover %d of %d nodes", covered, len(g.DFG.Nodes))
	}
	for _, e := range g.Edges {
		if e.Dist.IsZero() {
			return fmt.Errorf("ir: zero-distance inter-cluster edge %d->%d", e.From, e.To)
		}
		if !e.Dist.LexNonNegative() {
			return fmt.Errorf("ir: lexicographically negative dependence %v on edge %d->%d", e.Dist, e.From, e.To)
		}
	}
	return nil
}
