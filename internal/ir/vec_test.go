package ir

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestIterVecAddSub(t *testing.T) {
	a := IterVec{1, 2, 3}
	b := IterVec{4, -1, 0}
	if got := a.Add(b); !got.Equal(IterVec{5, 1, 3}) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); !got.Equal(IterVec{-3, 3, 3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := b.Neg(); !got.Equal(IterVec{-4, 1, 0}) {
		t.Errorf("Neg = %v", got)
	}
}

func TestIterVecAddLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	IterVec{1}.Add(IterVec{1, 2})
}

func TestIterVecDot(t *testing.T) {
	if got := (IterVec{1, 2, 3}).Dot(IterVec{4, 5, 6}); got != 32 {
		t.Errorf("Dot = %d, want 32", got)
	}
}

func TestIterVecLex(t *testing.T) {
	cases := []struct {
		v    IterVec
		want bool
	}{
		{IterVec{0, 0}, true},
		{IterVec{1, -5}, true},
		{IterVec{0, 1}, true},
		{IterVec{-1, 9}, false},
		{IterVec{0, -1}, false},
	}
	for _, c := range cases {
		if got := c.v.LexNonNegative(); got != c.want {
			t.Errorf("LexNonNegative(%v) = %v, want %v", c.v, got, c.want)
		}
	}
	if !(IterVec{0, 1}).LexLess(IterVec{1, 0}) {
		t.Error("LexLess(01,10) should be true")
	}
	if (IterVec{1, 0}).LexLess(IterVec{1, 0}) {
		t.Error("LexLess of equal vectors should be false")
	}
}

func TestIterVecInBox(t *testing.T) {
	box := []int{2, 3}
	if !(IterVec{1, 2}).InBox(box) {
		t.Error("(1,2) should be in box 2x3")
	}
	if (IterVec{2, 0}).InBox(box) {
		t.Error("(2,0) should be outside box 2x3")
	}
	if (IterVec{0, -1}).InBox(box) {
		t.Error("(0,-1) should be outside box 2x3")
	}
	if (IterVec{0}).InBox(box) {
		t.Error("dimension mismatch should be outside")
	}
}

func TestIterVecKeyRoundTripUnique(t *testing.T) {
	seen := map[string]bool{}
	ForEachPoint([]int{3, 3, 3}, func(v IterVec) {
		k := v.Key()
		if seen[k] {
			t.Fatalf("duplicate key %q", k)
		}
		seen[k] = true
	})
	if len(seen) != 27 {
		t.Fatalf("expected 27 keys, got %d", len(seen))
	}
}

func TestForEachPointOrderAndCount(t *testing.T) {
	var pts []IterVec
	ForEachPoint([]int{2, 3}, func(v IterVec) { pts = append(pts, v.Clone()) })
	want := []IterVec{{0, 0}, {0, 1}, {0, 2}, {1, 0}, {1, 1}, {1, 2}}
	if !reflect.DeepEqual(pts, want) {
		t.Errorf("ForEachPoint order = %v", pts)
	}
	for i, p := range pts {
		if got := PointIndex(p, []int{2, 3}); got != i {
			t.Errorf("PointIndex(%v) = %d, want %d", p, got, i)
		}
	}
}

func TestBoxSize(t *testing.T) {
	if got := BoxSize([]int{4, 5, 6}); got != 120 {
		t.Errorf("BoxSize = %d", got)
	}
	if got := BoxSize(nil); got != 1 {
		t.Errorf("BoxSize(nil) = %d, want 1", got)
	}
}

// Property: Add and Sub are inverse; Dot is symmetric; ManhattanNorm is
// subadditive under Add.
func TestIterVecProperties(t *testing.T) {
	gen := func(r *rand.Rand) IterVec {
		n := 1 + r.Intn(4)
		v := make(IterVec, n)
		for i := range v {
			v[i] = r.Intn(21) - 10
		}
		return v
	}
	cfg := &quick.Config{
		MaxCount: 300,
		Values: func(args []reflect.Value, r *rand.Rand) {
			a := gen(r)
			b := make(IterVec, len(a))
			for i := range b {
				b[i] = r.Intn(21) - 10
			}
			args[0] = reflect.ValueOf(a)
			args[1] = reflect.ValueOf(b)
		},
	}
	inverse := func(a, b IterVec) bool { return a.Add(b).Sub(b).Equal(a) }
	if err := quick.Check(inverse, cfg); err != nil {
		t.Errorf("Add/Sub inverse: %v", err)
	}
	symmetric := func(a, b IterVec) bool { return a.Dot(b) == b.Dot(a) }
	if err := quick.Check(symmetric, cfg); err != nil {
		t.Errorf("Dot symmetry: %v", err)
	}
	subadd := func(a, b IterVec) bool {
		return a.Add(b).ManhattanNorm() <= a.ManhattanNorm()+b.ManhattanNorm()
	}
	if err := quick.Check(subadd, cfg); err != nil {
		t.Errorf("norm subadditivity: %v", err)
	}
}

func TestLexNonNegativeNegationProperty(t *testing.T) {
	f := func(raw []int8) bool {
		if len(raw) == 0 {
			return true
		}
		v := make(IterVec, len(raw))
		zero := true
		for i, x := range raw {
			v[i] = int(x)
			if x != 0 {
				zero = false
			}
		}
		if zero {
			return v.LexNonNegative() && v.Neg().LexNonNegative()
		}
		// Exactly one of v, -v is lexicographically non-negative.
		return v.LexNonNegative() != v.Neg().LexNonNegative()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
