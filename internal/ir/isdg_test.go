package ir

import (
	"testing"
)

// build2DDFG builds a bx-by-by DFG of a BiCG-like structure: per iteration
// one load, one mul, one add; add accumulates along dimension 0, mul's
// second operand comes from dimension 1's neighbor (route chain).
func build2DDFG(t *testing.T, bx, by int) *DFG {
	t.Helper()
	d := NewDFG([]int{bx, by})
	type key struct{ i, j int }
	adds := map[key]int{}
	routes := map[key]int{}
	ForEachPoint([]int{bx, by}, func(v IterVec) {
		i, j := v[0], v[1]
		iter := v.Clone()
		ld := d.AddNode(Node{Kind: OpLoad, Name: "ldA", BodyOp: 0, Iter: iter, Tensor: "A", Index: iter})
		rt := d.AddNode(Node{Kind: OpRoute, Name: "r", BodyOp: 1, Iter: iter})
		if j == 0 {
			src := d.AddNode(Node{Kind: OpLoad, Name: "ldR", BodyOp: -1, Iter: iter, Tensor: "R", Index: IterVec{i}})
			d.AddEdge(src.ID, rt.ID, 0)
		} else {
			d.AddEdge(routes[key{i, j - 1}], rt.ID, 0)
		}
		routes[key{i, j}] = rt.ID
		mul := d.AddNode(Node{Kind: OpMul, Name: "mul", BodyOp: 2, Iter: iter})
		d.AddEdge(ld.ID, mul.ID, 0)
		d.AddEdge(rt.ID, mul.ID, 1)
		add := d.AddNode(Node{Kind: OpAdd, Name: "add", BodyOp: 3, Iter: iter})
		d.AddEdge(mul.ID, add.ID, 0)
		if i == 0 {
			init := d.AddNode(Node{Kind: OpLoad, Name: "init", BodyOp: -1, Iter: iter, Tensor: "S0", Index: IterVec{j}})
			d.AddEdge(init.ID, add.ID, 1)
		} else {
			d.AddEdge(adds[key{i - 1, j}], add.ID, 1)
		}
		adds[key{i, j}] = add.ID
	})
	if err := d.Validate(); err != nil {
		t.Fatalf("test DFG invalid: %v", err)
	}
	return d
}

func TestBuildISDGClusters(t *testing.T) {
	d := build2DDFG(t, 4, 4)
	g, err := BuildISDG(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(g.Clusters) != 16 {
		t.Fatalf("clusters = %d, want 16", len(g.Clusters))
	}
	c := g.ClusterAt(IterVec{1, 1})
	if c == nil {
		t.Fatal("no cluster at (1,1)")
	}
	// Interior cluster: load, route, mul, add.
	if len(c.Nodes) != 4 {
		t.Errorf("interior cluster has %d nodes, want 4", len(c.Nodes))
	}
	for _, id := range c.Nodes {
		if g.ClusterOf(id) != c.ID {
			t.Errorf("ClusterOf(%d) = %d, want %d", id, g.ClusterOf(id), c.ID)
		}
	}
}

func TestISDGDistanceVectors(t *testing.T) {
	d := build2DDFG(t, 4, 4)
	g, err := BuildISDG(d)
	if err != nil {
		t.Fatal(err)
	}
	dists := g.DistanceVectors()
	if len(dists) != 2 {
		t.Fatalf("distance vectors = %v, want 2 of them", dists)
	}
	want := map[string]bool{"1,0": true, "0,1": true}
	for _, dv := range dists {
		if !want[dv.Key()] {
			t.Errorf("unexpected distance vector %v", dv)
		}
	}
}

func TestISDGEdgesDeduplicated(t *testing.T) {
	d := build2DDFG(t, 3, 3)
	g, err := BuildISDG(d)
	if err != nil {
		t.Fatal(err)
	}
	type pair struct{ f, to int }
	seen := map[pair]bool{}
	for _, e := range g.Edges {
		p := pair{e.From, e.To}
		if seen[p] {
			t.Errorf("duplicate cluster edge %d->%d", e.From, e.To)
		}
		seen[p] = true
	}
	// 3x3 grid with unit deps in both dims: 2*3*2 = 12 edges.
	if len(g.Edges) != 12 {
		t.Errorf("cluster edges = %d, want 12", len(g.Edges))
	}
}

func TestExtractIDFGInterior(t *testing.T) {
	d := build2DDFG(t, 4, 4)
	g, err := BuildISDG(d)
	if err != nil {
		t.Fatal(err)
	}
	f := ExtractIDFG(g, g.ClusterAt(IterVec{1, 1}).ID)
	if f.NumCompute() != 2 {
		t.Errorf("interior NumCompute = %d, want 2", f.NumCompute())
	}
	if len(f.Inputs) != 2 {
		t.Errorf("interior inputs = %d, want 2 (route-in, acc-in)", len(f.Inputs))
	}
	if len(f.Outputs) != 2 {
		t.Errorf("interior outputs = %d, want 2 (route-out, acc-out)", len(f.Outputs))
	}
	for _, p := range f.Inputs {
		if p.Dist.ManhattanNorm() != 1 {
			t.Errorf("input dist %v not unit", p.Dist)
		}
		if !p.Dist.Neg().LexNonNegative() {
			t.Errorf("input dist %v should point to an earlier iteration", p.Dist)
		}
	}
}

func TestStructuralClasses2D(t *testing.T) {
	// A 2-D kernel with dependencies in both dimensions has 3x3 = 9
	// boundary classes once the block is at least 3 wide in each dim
	// (first / middle / last per dimension) — Table II's BiCG/ATAX/MVT value.
	for _, b := range []int{3, 4, 6, 8} {
		d := build2DDFG(t, b, b)
		g, err := BuildISDG(d)
		if err != nil {
			t.Fatal(err)
		}
		if got := CountStructuralClasses(g); got != 9 {
			t.Errorf("b=%d: structural classes = %d, want 9", b, got)
		}
	}
	// At b=2 every iteration touches a boundary: 4 distinct classes.
	d := build2DDFG(t, 2, 2)
	g, err := BuildISDG(d)
	if err != nil {
		t.Fatal(err)
	}
	if got := CountStructuralClasses(g); got != 4 {
		t.Errorf("b=2: structural classes = %d, want 4", got)
	}
}

func TestStructuralSignatureDistinguishesBoundary(t *testing.T) {
	d := build2DDFG(t, 4, 4)
	g, err := BuildISDG(d)
	if err != nil {
		t.Fatal(err)
	}
	sig := func(iv IterVec) string {
		return ExtractIDFG(g, g.ClusterAt(iv).ID).StructuralSignature()
	}
	if sig(IterVec{1, 1}) != sig(IterVec{2, 2}) {
		t.Error("two interior iterations should share a signature")
	}
	if sig(IterVec{0, 0}) == sig(IterVec{1, 1}) {
		t.Error("corner and interior must differ")
	}
	if sig(IterVec{0, 1}) == sig(IterVec{1, 0}) {
		t.Error("top edge and left edge must differ")
	}
}
