package ir

import (
	"fmt"
	"sort"
	"strings"
)

// IOPort describes one input or output node of an IDFG: a DFG node outside
// the iteration cluster that directly connects to a node inside it
// (V^I of §IV), annotated with the iteration-distance of the connection.
type IOPort struct {
	Inside  int     // DFG node ID inside the cluster
	Outside int     // DFG node ID outside the cluster
	Port    int     // consumer input port (for inputs: port on Inside; for outputs: port on Outside)
	Dist    IterVec // Outside.Iter - Inside.Iter (inputs: negative of the dependence distance)
}

// IDFG is the Intra-iteration Data-Flow Graph D”_i of a cluster: the
// cluster's own nodes (computation nodes V^F) plus its interface to the
// rest of the DFG (input/output nodes V^I).
type IDFG struct {
	Cluster *Cluster
	DFG     *DFG
	Comp    []int  // node IDs inside the cluster
	Inner   []Edge // edges with both endpoints inside
	Inputs  []IOPort
	Outputs []IOPort
}

// ExtractIDFG builds the IDFG of cluster ci of the ISDG.
func ExtractIDFG(g *ISDG, ci int) *IDFG {
	c := g.Clusters[ci]
	f := &IDFG{Cluster: c, DFG: g.DFG}
	f.Comp = append(f.Comp, c.Nodes...)
	inside := make(map[int]bool, len(c.Nodes))
	for _, id := range c.Nodes {
		inside[id] = true
	}
	for _, id := range c.Nodes {
		for _, ei := range g.DFG.InEdges(id) {
			e := g.DFG.Edges[ei]
			if inside[e.From] {
				f.Inner = append(f.Inner, e)
				continue
			}
			from := g.DFG.Nodes[e.From]
			f.Inputs = append(f.Inputs, IOPort{
				Inside:  id,
				Outside: e.From,
				Port:    e.ToPort,
				Dist:    from.Iter.Sub(c.Iter),
			})
		}
		for _, ei := range g.DFG.OutEdges(id) {
			e := g.DFG.Edges[ei]
			if inside[e.To] {
				continue // recorded once as Inner on the consumer side
			}
			to := g.DFG.Nodes[e.To]
			f.Outputs = append(f.Outputs, IOPort{
				Inside:  id,
				Outside: e.To,
				Port:    e.ToPort,
				Dist:    to.Iter.Sub(c.Iter),
			})
		}
	}
	return f
}

// NumCompute returns the number of FU-occupying nodes of the IDFG.
func (f *IDFG) NumCompute() int {
	n := 0
	for _, id := range f.Comp {
		if f.DFG.Nodes[id].Kind.IsCompute() {
			n++
		}
	}
	return n
}

// StructuralSignature is a canonical string identifying the *shape* of the
// IDFG independent of absolute iteration position: per inside node its
// body-op and kind, per inner edge the body-op endpoints, and per I/O port
// the (body-op, port, iteration distance) triple. Two clusters with equal
// structural signatures perform the same computation with the same
// dependence geometry in iteration space. (The space-time uniqueness test
// of Algorithm 1, which additionally folds in the systolic placement, is
// implemented in the himap package.)
func (f *IDFG) StructuralSignature() string {
	var parts []string
	for _, id := range f.Comp {
		n := f.DFG.Nodes[id]
		tag := fmt.Sprintf("N:%d:%s", n.BodyOp, n.Kind)
		if n.IsBoundaryIO() {
			tag += ":" + n.Tensor
		}
		parts = append(parts, tag)
	}
	for _, e := range f.Inner {
		fn, tn := f.DFG.Nodes[e.From], f.DFG.Nodes[e.To]
		parts = append(parts, fmt.Sprintf("E:%d>%d.%d", fn.BodyOp, tn.BodyOp, e.ToPort))
	}
	for _, p := range f.Inputs {
		in, out := f.DFG.Nodes[p.Inside], f.DFG.Nodes[p.Outside]
		parts = append(parts, fmt.Sprintf("I:%d.%d<%d@%s", in.BodyOp, p.Port, out.BodyOp, p.Dist.Key()))
	}
	for _, p := range f.Outputs {
		in, out := f.DFG.Nodes[p.Inside], f.DFG.Nodes[p.Outside]
		parts = append(parts, fmt.Sprintf("O:%d>%d.%d@%s", in.BodyOp, out.BodyOp, p.Port, p.Dist.Key()))
	}
	sort.Strings(parts)
	return strings.Join(parts, ";")
}

// CountStructuralClasses groups all clusters of the ISDG by structural
// signature and returns the number of distinct classes. This is the
// iteration-space analogue of Table II's "max unique iterations" before
// the systolic placement refinement.
func CountStructuralClasses(g *ISDG) int {
	seen := make(map[string]bool)
	for _, c := range g.Clusters {
		seen[ExtractIDFG(g, c.ID).StructuralSignature()] = true
	}
	return len(seen)
}
