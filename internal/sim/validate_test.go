package sim

import (
	"bytes"
	"strings"
	"testing"

	"himap/internal/arch"
	"himap/internal/baseline"
	"himap/internal/himap"
	"himap/internal/kernel"
	"himap/internal/systolic"
)

// TestValidateAllKernels is the paper's functional-validation experiment
// (§VI): every Table-II kernel's HiMap mapping executes cycle-accurately
// and matches the golden executor over three pipelined block instances.
func TestValidateAllKernels(t *testing.T) {
	for _, k := range kernel.Evaluation() {
		res, err := himap.Compile(k, arch.Default(4, 4), himap.Options{})
		if err != nil {
			t.Errorf("%s: compile: %v", k.Name, err)
			continue
		}
		if err := Validate(res.Config, k, res.Block, 3, 1234); err != nil {
			t.Errorf("%s: %v", k.Name, err)
		}
	}
}

// TestValidateAllKernels8x8 exercises the bigger array (more boundary
// classes, longer routes).
func TestValidateAllKernels8x8(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, k := range kernel.Evaluation() {
		res, err := himap.Compile(k, arch.Default(8, 8), himap.Options{})
		if err != nil {
			t.Errorf("%s: compile: %v", k.Name, err)
			continue
		}
		if err := Validate(res.Config, k, res.Block, 2, 99); err != nil {
			t.Errorf("%s: %v", k.Name, err)
		}
	}
}

// TestValidateLinearArray validates the §II configuration end to end.
func TestValidateLinearArray(t *testing.T) {
	k := kernel.BICG()
	res, err := himap.Compile(k, arch.Default(8, 1), himap.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(res.Config, k, res.Block, 3, 5); err != nil {
		t.Error(err)
	}
}

// TestValidateConv2D validates the extension kernel.
func TestValidateConv2D(t *testing.T) {
	k := kernel.Conv2D()
	res, err := himap.Compile(k, arch.Default(4, 4), himap.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(res.Config, k, res.Block, 2, 6); err != nil {
		t.Error(err)
	}
}

// TestValidateBaselineMapping validates a conventional mapping too: the
// simulator is mapper-agnostic.
func TestValidateBaselineMapping(t *testing.T) {
	k := kernel.GEMM()
	block := []int{2, 2, 2}
	res, err := baseline.Compile(k, arch.Default(2, 2), block, baseline.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(res.Config, k, block, 2, 77); err != nil {
		t.Error(err)
	}
}

// TestValidateManyBlocks runs a deeper pipeline to catch inter-block
// interference.
func TestValidateManyBlocks(t *testing.T) {
	k := kernel.MVT()
	res, err := himap.Compile(k, arch.Default(4, 4), himap.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(res.Config, k, res.Block, 6, 31); err != nil {
		t.Error(err)
	}
}

// TestValidateDetectsCorruption: flipping one instruction must break
// validation — the oracle is not vacuous.
func TestValidateDetectsCorruption(t *testing.T) {
	k := kernel.GEMM()
	res, err := himap.Compile(k, arch.Default(4, 4), himap.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt: change the first compute op found into a subtraction.
	cfg := res.Config
outer:
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			for tt := 0; tt < cfg.II; tt++ {
				in := cfg.At(r, c, tt)
				if in.Op.IsCompute() && in.Op.String() == "add" {
					in.Op = kernel.GEMM().Body[2].Kind // mul instead of add
					break outer
				}
			}
		}
	}
	err = Validate(cfg, k, res.Block, 2, 1234)
	if err == nil {
		t.Fatal("corrupted mapping passed validation")
	}
	if !strings.Contains(err.Error(), "block") {
		t.Errorf("unexpected error form: %v", err)
	}
}

// TestValidateRejectsBadArgs.
func TestValidateRejectsBadArgs(t *testing.T) {
	k := kernel.GEMM()
	res, err := himap.Compile(k, arch.Default(4, 4), himap.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(res.Config, k, res.Block, 0, 1); err == nil {
		t.Error("nblocks 0 should fail")
	}
}

// TestValidateExtensionKernels maps and validates the extension kernels:
// NW's diagonal wavefront dependence forces a linear space allocation;
// DOITGEN mirrors TTM's 4-D reuse structure on different tensors.
func TestValidateExtensionKernels(t *testing.T) {
	for _, k := range []*kernel.Kernel{kernel.NW(), kernel.DOITGEN()} {
		res, err := himap.Compile(k, arch.Default(4, 4), himap.Options{})
		if err != nil {
			t.Errorf("%s: compile: %v", k.Name, err)
			continue
		}
		if err := Validate(res.Config, k, res.Block, 2, 404); err != nil {
			t.Errorf("%s: %v", k.Name, err)
			continue
		}
		t.Logf("%s: %s", k.Name, res.Summary())
	}
}

// TestBitstreamRoundTripExecutes encodes a mapping to its binary
// configuration image, decodes it back, re-attaches the simulation-only
// memory correlation tags, and validates the decoded configuration
// cycle-accurately — the bitstream carries everything the hardware needs.
func TestBitstreamRoundTripExecutes(t *testing.T) {
	k := kernel.GEMM()
	res, err := himap.Compile(k, arch.Default(4, 4), himap.Options{})
	if err != nil {
		t.Fatal(err)
	}
	bs, err := arch.Encode(res.Config)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("bitstream: %d bytes total, max %d words/PE", bs.TotalBytes(), bs.MaxWordsPerPE())
	dec, err := bs.Decode(res.Config.Fabric)
	if err != nil {
		t.Fatal(err)
	}
	// Memory tags and I/O correlation are metadata outside the bitstream.
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			for tt := 0; tt < dec.II; tt++ {
				dec.At(r, c, tt).MemRead.Tag = res.Config.At(r, c, tt).MemRead.Tag
				dec.At(r, c, tt).MemWrite.Tag = res.Config.At(r, c, tt).MemWrite.Tag
			}
		}
	}
	dec.Loads = res.Config.Loads
	dec.Stores = res.Config.Stores
	if err := Validate(dec, k, res.Block, 2, 808); err != nil {
		t.Fatal(err)
	}
}

// TestValidateConv3D: the deepest loop nest in the library (6 levels)
// compiles and executes correctly.
func TestValidateConv3D(t *testing.T) {
	k := kernel.Conv3D()
	res, err := himap.Compile(k, arch.Default(4, 4), himap.Options{InnerBlock: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(res.Config, k, res.Block, 2, 606); err != nil {
		t.Error(err)
	}
}

// TestValidateForwardingKernel drives AddForwardingPath through the FULL
// pipeline: a kernel with a distance-2 dependence is forced onto a scheme
// that maps that dimension spatially, so relay pseudo-ops are inserted
// into intermediate iterations, replicated, and must still compute
// correctly cycle-accurately.
func TestValidateForwardingKernel(t *testing.T) {
	ij := kernel.AM(2, []int{1, 0, 0}, []int{0, 1, 0})
	k := &kernel.Kernel{
		Name: "HOP2", Desc: "distance-2 dependence (forwarding)", Suite: "custom",
		Dim: 2, MinBlock: 4,
		Tensors: []kernel.TensorSpec{
			{Name: "A", Dims: func(b []int) []int { return []int{b[0], b[1]} }},
			{Name: "O", Out: true, Dims: func(b []int) []int { return []int{b[0], b[1]} }},
		},
		Body: []kernel.BodyOp{
			{Name: "acc", Kind: kernel.GEMM().Body[3].Kind, // add
				A: kernel.Fixed(kernel.Mem("A", ij)),
				B: kernel.In(
					kernel.Case{When: kernel.Before(1, 2), Src: kernel.Const(0)},
					kernel.Case{When: kernel.Always(), Src: kernel.Dep(0, 0, 2)}),
				Stores: []kernel.StoreRule{{When: kernel.Always(), Tensor: "O", Map: ij}}},
		},
	}
	if err := k.Validate(); err != nil {
		t.Fatal(err)
	}
	// Force both dimensions spatial: the (0,2) dependence becomes a 2-hop
	// offset and must be broken by forwarding relays.
	sch := systolic.Scheme{SpaceDims: []int{0, 1}, TimePerm: nil, Skew: []int{0, 1}}
	res, err := himap.Compile(k, arch.Default(4, 4), himap.Options{ForceScheme: &sch})
	if err != nil {
		t.Fatalf("forwarding compile: %v", err)
	}
	relays := 0
	for _, n := range res.DFG.Nodes {
		if n.Kind.String() == "route" {
			relays++
		}
	}
	if relays == 0 {
		t.Fatal("no forwarding relays inserted; the scheme should force them")
	}
	if err := Validate(res.Config, k, res.Block, 3, 55); err != nil {
		t.Fatalf("forwarded mapping fails validation: %v", err)
	}
	t.Logf("forwarding: %d relays, %s", relays, res.Summary())
}

// TestJSONRoundTripExecutes: a mapping saved to JSON and loaded back
// executes identically — the serialized form is complete.
func TestJSONRoundTripExecutes(t *testing.T) {
	k := kernel.BICG()
	res, err := himap.Compile(k, arch.Default(4, 4), himap.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Config.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := arch.ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(loaded, k, res.Block, 2, 333); err != nil {
		t.Fatal(err)
	}
}
