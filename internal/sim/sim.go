// Package sim is a cycle-accurate software simulator of the CGRA of
// internal/arch, used for functional validation of generated mappings
// (§VI: "We perform functional validation of the resultant mappings
// through cycle-accurate software simulation of the executions on CGRA
// architecture").
//
// Each cycle, every PE executes the configuration word of the current
// schedule slot (cycle mod II): the crossbar resolves ALU and output-
// register sources from the input latches (neighbor output registers of
// the previous cycle), the register file, immediates, and the data-memory
// read port; the ALU computes; output registers, register writes, and
// memory writes commit at the end of the cycle.
package sim

import (
	"fmt"
	"himap/internal/diag"

	"himap/internal/arch"
	"himap/internal/ir"
)

type portKey struct{ r, c, slot int }

// Machine is a simulated CGRA executing one configuration.
type Machine struct {
	Cfg *arch.Config

	regs    [][][]int64
	outRegs [][][]int64 // committed at end of cycle
	inLatch [][][]int64 // previous cycle's neighbor out registers

	feeds    map[portKey][]int64
	feedPos  map[portKey]int
	storeLog map[portKey][]int64

	cycle int
}

// New builds a machine with zeroed state.
func New(cfg *arch.Config) *Machine {
	m := &Machine{
		Cfg:      cfg,
		feeds:    map[portKey][]int64{},
		feedPos:  map[portKey]int{},
		storeLog: map[portKey][]int64{},
	}
	a := cfg.Fabric
	alloc := func(depth int) [][][]int64 {
		out := make([][][]int64, a.Rows)
		for r := range out {
			out[r] = make([][]int64, a.Cols)
			for c := range out[r] {
				out[r][c] = make([]int64, depth)
			}
		}
		return out
	}
	m.regs = alloc(a.NumRegs)
	m.outRegs = alloc(int(arch.MaxDirs))
	m.inLatch = alloc(int(arch.MaxDirs))
	return m
}

// SetFeed installs the value stream of the memory read port at (r, c),
// schedule slot slot: the e-th execution of the slot pops values[e]
// (exhausted streams read zero).
func (m *Machine) SetFeed(r, c, slot int, values []int64) {
	m.feeds[portKey{r, c, slot}] = values
}

// StoreLog returns the values written by the memory write port at (r, c),
// slot slot, in execution order.
func (m *Machine) StoreLog(r, c, slot int) []int64 {
	return m.storeLog[portKey{r, c, slot}]
}

// Cycle returns the number of executed cycles.
func (m *Machine) Cycle() int { return m.cycle }

// Step executes one cycle.
func (m *Machine) Step() error {
	a := m.Cfg.Fabric
	slot := m.cycle % m.Cfg.II

	// Latch neighbor outputs from the end of the previous cycle; links
	// follow the fabric topology (wrap-around on a torus, diagonals on
	// mesh+diag), so a missing link latches zero.
	for r := 0; r < a.Rows; r++ {
		for c := 0; c < a.Cols; c++ {
			for d := arch.Dir(0); d < arch.MaxDirs; d++ {
				nr, nc, ok := a.LinkNeighbor(r, c, d)
				if !ok {
					m.inLatch[r][c][d] = 0
					continue
				}
				// The neighbor in direction d sends through its output
				// register pointing back at us.
				m.inLatch[r][c][d] = m.outRegs[nr][nc][d.Opposite()]
			}
		}
	}

	type commit struct {
		r, c    int
		outs    [arch.MaxDirs]int64
		outOK   [arch.MaxDirs]bool
		regWr   []arch.RegWrite
		regVals []int64
	}
	var commits []commit

	for r := 0; r < a.Rows; r++ {
		for c := 0; c < a.Cols; c++ {
			in := &m.Cfg.Slots[r][c][slot]
			var memVal int64
			if (in.MemRead.Active || in.MemWrite.Active) && !a.MemCapable(r, c) {
				return fmt.Errorf("sim: PE(%d,%d) slot %d: memory access on compute-only PE: %w", r, c, slot, diag.ErrConfigInvalid)
			}
			if in.MemRead.Active {
				k := portKey{r, c, slot}
				pos := m.feedPos[k]
				if vals, ok := m.feeds[k]; ok && pos < len(vals) {
					memVal = vals[pos]
				}
				m.feedPos[k] = pos + 1
			}
			resolve := func(o arch.Operand, aluOut int64, haveALU bool) (int64, error) {
				switch o.Kind {
				case arch.OpdIn:
					return m.inLatch[r][c][o.Dir], nil
				case arch.OpdReg:
					return m.regs[r][c][o.Reg], nil
				case arch.OpdConst:
					return o.Const, nil
				case arch.OpdMem:
					if !in.MemRead.Active {
						return 0, fmt.Errorf("sim: PE(%d,%d) slot %d: mem operand without read: %w", r, c, slot, diag.ErrConfigInvalid)
					}
					return memVal, nil
				case arch.OpdALU:
					if !haveALU {
						return 0, fmt.Errorf("sim: PE(%d,%d) slot %d: ALU operand before compute: %w", r, c, slot, diag.ErrConfigInvalid)
					}
					return aluOut, nil
				}
				return 0, fmt.Errorf("sim: PE(%d,%d) slot %d: unresolvable operand %v: %w", r, c, slot, o, diag.ErrConfigInvalid)
			}

			var aluOut int64
			haveALU := false
			if in.Op.IsCompute() {
				av, err := resolve(in.SrcA, 0, false)
				if err != nil {
					return err
				}
				var bv int64
				if in.Op.Arity() > 1 {
					bv, err = resolve(in.SrcB, 0, false)
					if err != nil {
						return err
					}
				}
				aluOut = in.Op.Eval(av, bv)
				haveALU = true
			} else if in.Op != ir.OpNop {
				return fmt.Errorf("sim: PE(%d,%d) slot %d: unexpected op %v: %w", r, c, slot, in.Op, diag.ErrConfigInvalid)
			}

			cm := commit{r: r, c: c}
			for d := arch.Dir(0); d < arch.MaxDirs; d++ {
				sel := in.OutSel[d]
				switch sel.Kind {
				case arch.OpdNone, arch.OpdHold:
					// register keeps its value
				default:
					v, err := resolve(sel, aluOut, haveALU)
					if err != nil {
						return err
					}
					cm.outs[d] = v
					cm.outOK[d] = true
				}
			}
			for _, w := range in.RegWr {
				v, err := resolve(w.Src, aluOut, haveALU)
				if err != nil {
					return err
				}
				cm.regWr = append(cm.regWr, w)
				cm.regVals = append(cm.regVals, v)
			}
			if in.MemWrite.Active {
				v, err := resolve(in.MemWrite.Src, aluOut, haveALU)
				if err != nil {
					return err
				}
				k := portKey{r, c, slot}
				m.storeLog[k] = append(m.storeLog[k], v)
			}
			commits = append(commits, cm)
		}
	}

	// End-of-cycle commit.
	for _, cm := range commits {
		for d := 0; d < int(arch.MaxDirs); d++ {
			if cm.outOK[d] {
				m.outRegs[cm.r][cm.c][d] = cm.outs[d]
			}
		}
		for i, w := range cm.regWr {
			m.regs[cm.r][cm.c][w.Reg] = cm.regVals[i]
		}
	}
	m.cycle++
	return nil
}

// Run executes n cycles.
func (m *Machine) Run(n int) error {
	for i := 0; i < n; i++ {
		if err := m.Step(); err != nil {
			return err
		}
	}
	return nil
}
