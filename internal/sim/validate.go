package sim

import (
	"fmt"
	"himap/internal/diag"

	"himap/internal/arch"
	"himap/internal/ir"
	"himap/internal/kernel"
)

// Validate runs nblocks back-to-back block instances of the kernel through
// the configuration — the steady-state software-pipelined execution, one
// block initiation every II cycles — feeding each block independent
// pseudo-random inputs, and compares every block's drained outputs against
// the golden executor. This is the functional-validation step of §VI.
func Validate(cfg *arch.Config, k *kernel.Kernel, block []int, nblocks int, seed int64) error {
	if nblocks < 1 {
		return fmt.Errorf("sim: nblocks = %d: %w", nblocks, diag.ErrConfigInvalid)
	}
	// Per-block inputs and golden outputs.
	inputs := make([]map[string]*kernel.Tensor, nblocks)
	golden := make([]map[string]*kernel.Tensor, nblocks)
	for b := 0; b < nblocks; b++ {
		inputs[b] = k.DefaultInputs(block, seed+int64(b))
		g, err := k.Golden(block, inputs[b])
		if err != nil {
			return err
		}
		golden[b] = g
	}

	// Align phases: execution e of a port serves block e - Phase - shift.
	minPhase, maxPhase := 0, 0
	for _, s := range append(append([]arch.IOSpec{}, cfg.Loads...), cfg.Stores...) {
		if s.Phase < minPhase {
			minPhase = s.Phase
		}
		if s.Phase > maxPhase {
			maxPhase = s.Phase
		}
	}
	shift := -minPhase
	execs := shift + nblocks + maxPhase + 2

	m := New(cfg)
	type pk struct{ r, c, slot int }
	feedVals := map[pk][]int64{}
	for _, s := range cfg.Loads {
		key := pk{s.R, s.C, s.Slot}
		vals, ok := feedVals[key]
		if !ok {
			vals = make([]int64, execs)
		}
		for e := 0; e < execs; e++ {
			b := e - s.Phase - shift
			if b < 0 || b >= nblocks {
				continue
			}
			t, okT := inputs[b][s.Tensor]
			if !okT {
				return fmt.Errorf("sim: load references unknown tensor %q: %w", s.Tensor, diag.ErrConfigInvalid)
			}
			vals[e] = t.At(ir.IterVec(s.Index))
		}
		feedVals[key] = vals
	}
	for key, vals := range feedVals {
		m.SetFeed(key.r, key.c, key.slot, vals)
	}

	if err := m.Run(execs * cfg.II); err != nil {
		return err
	}

	// Drain stores into per-block output tensors.
	outs := make([]map[string]*kernel.Tensor, nblocks)
	for b := 0; b < nblocks; b++ {
		outs[b] = k.NewOutputs(block)
	}
	for _, s := range cfg.Stores {
		log := m.StoreLog(s.R, s.C, s.Slot)
		for e, v := range log {
			b := e - s.Phase - shift
			if b < 0 || b >= nblocks {
				continue
			}
			t, ok := outs[b][s.Tensor]
			if !ok {
				return fmt.Errorf("sim: store references unknown tensor %q: %w", s.Tensor, diag.ErrConfigInvalid)
			}
			t.Set(ir.IterVec(s.Index), v)
		}
	}
	for b := 0; b < nblocks; b++ {
		if err := kernel.CompareOutputs(golden[b], outs[b]); err != nil {
			return fmt.Errorf("sim: block %d: %v: %w", b, err, diag.ErrConfigInvalid)
		}
	}
	return nil
}
