package sim

import (
	"fmt"
	"math/rand"
	"testing"

	"himap/internal/arch"
	"himap/internal/himap"
	"himap/internal/ir"
	"himap/internal/kernel"
)

// randomKernel generates a random well-formed uniform-recurrence kernel:
// a chain of compute ops whose operands are drawn from earlier ops
// (intra-iteration), unit-distance dependencies (guarded at the block
// boundary by memory or constant sources), memory loads, and constants,
// with a store on the final op. By construction every specification is
// valid; compiling and cycle-accurately validating it probes the whole
// pipeline the way a fuzzer would.
func randomKernel(rng *rand.Rand, idx int) *kernel.Kernel {
	dim := 2 + rng.Intn(2) // 2 or 3 loop levels
	nops := 1 + rng.Intn(4)
	k := &kernel.Kernel{
		Name: fmt.Sprintf("FUZZ%d", idx),
		Desc: "randomized uniform recurrence",
		Dim:  dim, MinBlock: 2, Suite: "fuzz",
	}
	fullMap := func() kernel.AffineMap {
		rows := make([][]int, dim)
		for d := 0; d < dim; d++ {
			row := make([]int, dim+1)
			row[d] = 1
			rows[d] = row
		}
		return kernel.AM(dim, rows...)
	}
	k.Tensors = []kernel.TensorSpec{
		{Name: "IN", Dims: func(b []int) []int { return append([]int{}, b...) }},
		{Name: "OUT", Out: true, Dims: func(b []int) []int { return append([]int{}, b...) }},
	}
	kinds := []ir.OpKind{ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpMin, ir.OpMax, ir.OpXor}

	operand := func(op int) kernel.Input {
		switch choice := rng.Intn(4); {
		case choice == 0 && op > 0:
			// Intra-iteration value from an earlier op.
			return kernel.Fixed(kernel.Same(rng.Intn(op)))
		case choice == 1:
			// Unit-distance dependence on a random earlier-or-same op along
			// a random dimension, memory-guarded at the boundary.
			d := rng.Intn(dim)
			dist := make([]int, dim)
			dist[d] = 1
			src := rng.Intn(nops) // may reference a later op across iterations
			return kernel.In(
				kernel.Case{When: kernel.First(d), Src: kernel.Mem("IN", fullMap())},
				kernel.Case{When: kernel.Always(), Src: kernel.Source{Kind: kernel.SrcDep, Op: src, Dist: dist}},
			)
		case choice == 2:
			return kernel.Fixed(kernel.Mem("IN", fullMap()))
		default:
			return kernel.Fixed(kernel.Const(int64(rng.Intn(7) - 3)))
		}
	}

	for op := 0; op < nops; op++ {
		body := kernel.BodyOp{
			Name: fmt.Sprintf("op%d", op),
			Kind: kinds[rng.Intn(len(kinds))],
			A:    operand(op),
		}
		// Port B: constants only via port 1; avoid double-const (A const and
		// B const is fine — still a valid op).
		if rng.Intn(3) == 0 {
			body.B = kernel.Fixed(kernel.Const(int64(rng.Intn(9) - 4)))
		} else {
			body.B = operand(op)
		}
		if op == nops-1 {
			body.Stores = []kernel.StoreRule{{When: kernel.Always(), Tensor: "OUT", Map: fullMap()}}
		}
		k.Body = append(k.Body, body)
	}
	// Port-0 constants are rejected by the builder; rewrite any A-side
	// constants into loads (cheap normalization instead of re-rolling).
	for i := range k.Body {
		for ci := range k.Body[i].A {
			if k.Body[i].A[ci].Src.Kind == kernel.SrcConst {
				k.Body[i].A[ci].Src = kernel.Mem("IN", fullMap())
			}
		}
	}
	return k
}

// TestFuzzRandomKernels compiles and cycle-accurately validates a
// population of randomized kernels. Kernels whose dependence structure
// admits no systolic mapping are allowed to fail compilation (that is a
// legitimate, reported outcome); any kernel that compiles must validate.
func TestFuzzRandomKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(20260704))
	compiled, failed := 0, 0
	n := 25
	if testing.Short() {
		n = 8
	}
	for i := 0; i < n; i++ {
		k := randomKernel(rng, i)
		if err := k.Validate(); err != nil {
			t.Fatalf("%s: generator produced invalid spec: %v", k.Name, err)
		}
		// The spec must at least execute under the golden semantics.
		block := k.UniformBlock(3)
		inputs := k.DefaultInputs(block, int64(i))
		if _, err := k.Golden(block, inputs); err != nil {
			t.Fatalf("%s: golden: %v", k.Name, err)
		}
		res, err := himap.Compile(k, arch.Default(4, 4), himap.Options{})
		if err != nil {
			failed++
			continue
		}
		compiled++
		if err := Validate(res.Config, k, res.Block, 2, int64(1000+i)); err != nil {
			t.Errorf("%s: compiled but failed validation: %v\n  %s", k.Name, err, res.Summary())
		}
	}
	t.Logf("fuzz: %d compiled+validated, %d had no valid mapping", compiled, failed)
	if compiled == 0 {
		t.Error("no random kernel compiled; generator or mapper too restrictive")
	}
}

// TestFuzzRandomKernelsFabrics re-runs the randomized-kernel pipeline
// probe on the non-default fabrics: the torus link provider and the
// boundary-column memory layout. As with the mesh fuzz, kernels whose
// structure admits no mapping may fail compilation, but everything that
// compiles must pass cycle-accurate validation — loads and stores
// included, which on the boundary fabric exercises the memory-capability
// constraint through placement, routing, replication, and the simulator.
func TestFuzzRandomKernelsFabrics(t *testing.T) {
	fabrics := []arch.Fabric{
		{CGRA: arch.Default(4, 4), Topology: arch.TopoTorus},
		{CGRA: arch.Default(4, 4), Topology: arch.TopoTorus, Mem: arch.MemBoundary},
	}
	for _, fab := range fabrics {
		fab := fab
		t.Run(fab.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(20260806))
			compiled, failed := 0, 0
			n := 12
			if testing.Short() {
				n = 5
			}
			for i := 0; i < n; i++ {
				k := randomKernel(rng, i)
				if err := k.Validate(); err != nil {
					t.Fatalf("%s: generator produced invalid spec: %v", k.Name, err)
				}
				res, err := himap.CompileFabric(k, fab, himap.Options{})
				if err != nil {
					failed++
					continue
				}
				compiled++
				if err := Validate(res.Config, k, res.Block, 2, int64(2000+i)); err != nil {
					t.Errorf("%s: compiled but failed validation on %s: %v\n  %s", k.Name, fab, err, res.Summary())
				}
			}
			t.Logf("fuzz on %s: %d compiled+validated, %d had no valid mapping", fab, compiled, failed)
			if compiled == 0 {
				t.Errorf("no random kernel compiled on %s; fabric constraints too restrictive", fab)
			}
		})
	}
}
