package sim

import (
	"testing"

	"himap/internal/arch"
	"himap/internal/ir"
)

// TestMachineNeighborLatency: a value sent through an output register at
// cycle t is visible on the neighbor's input latch at t+1.
func TestMachineNeighborLatency(t *testing.T) {
	cfg := arch.NewConfig(arch.DefaultFabric(1, 2), 2)
	// PE(0,0) slot 0: load a value from memory, send east.
	in := cfg.At(0, 0, 0)
	in.MemRead = arch.MemOp{Active: true, Tag: "A@0"}
	in.OutSel[arch.East] = arch.FromMem()
	// PE(0,1) slot 1: add the arriving value to a constant, store it.
	in = cfg.At(0, 1, 1)
	in.Op = ir.OpAdd
	in.SrcA = arch.FromIn(arch.West)
	in.SrcB = arch.FromConst(100)
	in.MemWrite = arch.MemOp{Active: true, Src: arch.FromALU(), Tag: "O@0"}

	m := New(cfg)
	m.SetFeed(0, 0, 0, []int64{7, 9})
	if err := m.Run(4); err != nil {
		t.Fatal(err)
	}
	log := m.StoreLog(0, 1, 1)
	if len(log) != 2 || log[0] != 107 || log[1] != 109 {
		t.Fatalf("store log = %v, want [107 109]", log)
	}
}

// TestMachineRegisterFile: a value written to a register at cycle t is
// readable from t+1 and holds until overwritten.
func TestMachineRegisterFile(t *testing.T) {
	cfg := arch.NewConfig(arch.DefaultFabric(1, 1), 4)
	in := cfg.At(0, 0, 0)
	in.MemRead = arch.MemOp{Active: true, Tag: "A@0"}
	in.RegWr = []arch.RegWrite{{Reg: 2, Src: arch.FromMem()}}
	// Read it two cycles later.
	in = cfg.At(0, 0, 2)
	in.Op = ir.OpMul
	in.SrcA = arch.FromReg(2)
	in.SrcB = arch.FromConst(3)
	in.MemWrite = arch.MemOp{Active: true, Src: arch.FromALU(), Tag: "O@0"}

	m := New(cfg)
	m.SetFeed(0, 0, 0, []int64{5})
	if err := m.Run(4); err != nil {
		t.Fatal(err)
	}
	if log := m.StoreLog(0, 0, 2); len(log) != 1 || log[0] != 15 {
		t.Fatalf("store log = %v, want [15]", log)
	}
}

// TestMachineSameCycleRegReadGetsOldValue: a register read in the same
// cycle as a write observes the pre-write value (write commits at end of
// cycle).
func TestMachineSameCycleRegReadGetsOldValue(t *testing.T) {
	cfg := arch.NewConfig(arch.DefaultFabric(1, 1), 2)
	in := cfg.At(0, 0, 0)
	in.MemRead = arch.MemOp{Active: true, Tag: "A@0"}
	in.Op = ir.OpAdd
	in.SrcA = arch.FromReg(0) // old r0
	in.SrcB = arch.FromMem()
	in.RegWr = []arch.RegWrite{{Reg: 0, Src: arch.FromALU()}} // r0 = old r0 + mem
	in.MemWrite = arch.MemOp{Active: true, Src: arch.FromALU(), Tag: "O@0"}

	m := New(cfg)
	m.SetFeed(0, 0, 0, []int64{1, 10, 100})
	if err := m.Run(6); err != nil {
		t.Fatal(err)
	}
	// Accumulates across periods: 1, 11, 111.
	if log := m.StoreLog(0, 0, 0); len(log) != 3 || log[0] != 1 || log[1] != 11 || log[2] != 111 {
		t.Fatalf("store log = %v, want [1 11 111]", log)
	}
}

// TestMachineOutputRegisterHold: an undriven output register keeps its
// value; Hold() is explicit retention.
func TestMachineOutputRegisterHold(t *testing.T) {
	cfg := arch.NewConfig(arch.DefaultFabric(1, 2), 3)
	in := cfg.At(0, 0, 0)
	in.MemRead = arch.MemOp{Active: true, Tag: "A@0"}
	in.OutSel[arch.East] = arch.FromMem()
	cfg.At(0, 0, 1).OutSel[arch.East] = arch.Hold()
	// Consumer reads the held value one cycle later than the send.
	in = cfg.At(0, 1, 2)
	in.Op = ir.OpAdd
	in.SrcA = arch.FromIn(arch.West)
	in.SrcB = arch.FromConst(0)
	in.MemWrite = arch.MemOp{Active: true, Src: arch.FromALU(), Tag: "O@0"}

	m := New(cfg)
	m.SetFeed(0, 0, 0, []int64{42})
	if err := m.Run(3); err != nil {
		t.Fatal(err)
	}
	if log := m.StoreLog(0, 1, 2); len(log) != 1 || log[0] != 42 {
		t.Fatalf("store log = %v, want [42]", log)
	}
}

// TestMachineALUOperandErrors: tapping the ALU without a compute op is a
// simulation error (and is also rejected by config validation).
func TestMachineALUOperandErrors(t *testing.T) {
	cfg := arch.NewConfig(arch.DefaultFabric(1, 1), 1)
	in := cfg.At(0, 0, 0)
	in.MemWrite = arch.MemOp{Active: true, Src: arch.FromALU(), Tag: "O@0"}
	m := New(cfg)
	if err := m.Step(); err == nil {
		t.Error("expected error for ALU tap without compute")
	}
}

// TestMachineMemOperandWithoutRead errors.
func TestMachineMemOperandWithoutRead(t *testing.T) {
	cfg := arch.NewConfig(arch.DefaultFabric(1, 1), 1)
	in := cfg.At(0, 0, 0)
	in.Op = ir.OpAdd
	in.SrcA = arch.FromMem()
	in.SrcB = arch.FromConst(0)
	m := New(cfg)
	if err := m.Step(); err == nil {
		t.Error("expected error for mem operand without configured read")
	}
}

// TestMachineExhaustedFeedReadsZero: pops beyond the stream read zero.
func TestMachineExhaustedFeedReadsZero(t *testing.T) {
	cfg := arch.NewConfig(arch.DefaultFabric(1, 1), 1)
	in := cfg.At(0, 0, 0)
	in.MemRead = arch.MemOp{Active: true, Tag: "A@0"}
	in.MemWrite = arch.MemOp{Active: true, Src: arch.FromMem(), Tag: "O@0"}
	m := New(cfg)
	m.SetFeed(0, 0, 0, []int64{4})
	if err := m.Run(3); err != nil {
		t.Fatal(err)
	}
	if log := m.StoreLog(0, 0, 0); len(log) != 3 || log[0] != 4 || log[1] != 0 || log[2] != 0 {
		t.Fatalf("store log = %v, want [4 0 0]", log)
	}
}

// TestMachineCycleCount.
func TestMachineCycleCount(t *testing.T) {
	cfg := arch.NewConfig(arch.DefaultFabric(2, 2), 3)
	m := New(cfg)
	if err := m.Run(7); err != nil {
		t.Fatal(err)
	}
	if m.Cycle() != 7 {
		t.Errorf("Cycle = %d", m.Cycle())
	}
}

// TestMachineBorderInputsAreZero: input latches on the array border read
// zero rather than garbage.
func TestMachineBorderInputsAreZero(t *testing.T) {
	cfg := arch.NewConfig(arch.DefaultFabric(1, 1), 1)
	in := cfg.At(0, 0, 0)
	in.Op = ir.OpAdd
	in.SrcA = arch.FromIn(arch.North)
	in.SrcB = arch.FromConst(9)
	in.MemWrite = arch.MemOp{Active: true, Src: arch.FromALU(), Tag: "O@0"}
	m := New(cfg)
	if err := m.Run(2); err != nil {
		t.Fatal(err)
	}
	if log := m.StoreLog(0, 0, 0); len(log) != 2 || log[0] != 9 {
		t.Fatalf("store log = %v", log)
	}
}
