// Package mrrg implements the Modulo Routing Resource Graph of the
// mapping problem (§IV): the CGRA's resources time-extended to II cycles,
// with cycle II-1 wrapping back to cycle 0. The graph is *implicit* —
// adjacency is computed on demand from (cycle, row, col, resource) — so
// 64×64 arrays with large IIs never materialize millions of nodes; the
// router only touches what Dijkstra visits.
//
// Time convention: traversal (Succ, node times in paths) uses *real*
// (unwrapped) cycle numbers, so a route's length always equals the true
// latency between producer and consumer — a value can never be confused
// with its counterpart from a different block initiation. The modulo wrap
// appears only in Key(), which folds real time into [0, II) for resource
// occupancy accounting, and when configurations are stamped (the schedule
// repeats every II cycles).
//
// Resources per PE per cycle:
//   - one FU (the ALU slot operations are placed on),
//   - four directional output registers (a value written at t is visible
//     to the neighbor at t+1; output registers may also hold),
//   - NumRegs register-file entries with per-cycle hold chains, guarded by
//     RF read/write port capacity nodes (2r/2w),
//   - one data-memory read and one write port (loads/stores).
package mrrg

import (
	"fmt"

	"himap/internal/arch"
)

// Class enumerates resource node classes.
type Class uint8

const (
	ClassFU Class = iota
	ClassOut
	ClassReg
	ClassRFRead
	ClassRFWrite
	ClassMemRead
	ClassMemWrite
	numClasses
)

// NumClasses is the number of resource node classes — exported so cost
// models can size per-class tables without hardcoding the count.
const NumClasses = int(numClasses)

var classNames = [...]string{"FU", "OUT", "REG", "RFR", "RFW", "MRD", "MWR"}

// String returns the class mnemonic.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// Node identifies one resource at one (real) cycle.
type Node struct {
	T     int
	R, C  int
	Class Class
	Idx   uint8 // direction for ClassOut, register index for ClassReg
}

// String renders the node, e.g. "OUT.E@(1,2)t3".
func (n Node) String() string {
	switch n.Class {
	case ClassOut:
		return fmt.Sprintf("OUT.%s@(%d,%d)t%d", arch.Dir(n.Idx), n.R, n.C, n.T)
	case ClassReg:
		return fmt.Sprintf("REG%d@(%d,%d)t%d", n.Idx, n.R, n.C, n.T)
	default:
		return fmt.Sprintf("%s@(%d,%d)t%d", n.Class, n.R, n.C, n.T)
	}
}

// Shifted returns the node displaced by (dt, dr, dc) — used when
// replicating canonical routes across iteration clusters.
func (n Node) Shifted(dt, dr, dc int) Node {
	return Node{T: n.T + dt, R: n.R + dr, C: n.C + dc, Class: n.Class, Idx: n.Idx}
}

// Graph is an implicit time-extended routing resource graph. Routing
// nodes are derived from the fabric's enumerated links: the per-PE
// output-register set matches the fabric's link directions, neighbor
// adjacency follows Fabric.LinkNeighbor (wrapping on a torus), and
// memory-port nodes exist only on memory-capable PEs.
type Graph struct {
	Fab arch.Fabric
	// II is the wrap period when Wrap is set; otherwise the time depth of
	// a non-modular time extension (used for sub-CGRA feasibility checks).
	II   int
	Wrap bool

	// links is the flattened per-PE interconnect table: links[pe*nd+d] is
	// the destination PE index of direction d's link out of pe, or -1
	// when the fabric has no such link (array edge on a mesh, suppressed
	// size-1 self-link on a torus). Precomputed by the constructors so
	// the successor enumeration on the router's hot path is table lookups
	// instead of repeated topology math.
	links []int32

	// sharedOut folds every ClassOut direction of a PE onto one
	// occupancy slot (BWBus fabrics): all egress directions then charge
	// a single capacity-1 resource per cycle, modelling the shared
	// single-driver bus. Dense slot *indices* keep the per-direction
	// layout (with holes) so search scratch arrays are unaffected.
	sharedOut bool
}

// New returns the MRRG of the fabric, time-extended to ii cycles with
// modulo wrap-around for resource accounting (H_II of §IV).
func New(f arch.Fabric, ii int) *Graph {
	return &Graph{Fab: f, II: ii, Wrap: true, links: buildLinks(f), sharedOut: f.SharedOutBus()}
}

// NewAcyclic returns a non-wrapping time extension of depth cycles (used
// for IDFG → sub-CGRA mapping, H” of §IV).
func NewAcyclic(f arch.Fabric, depth int) *Graph {
	return &Graph{Fab: f, II: depth, Wrap: false, links: buildLinks(f), sharedOut: f.SharedOutBus()}
}

func buildLinks(f arch.Fabric) []int32 {
	nd := f.NumLinkDirs()
	links := make([]int32, f.NumPEs()*nd)
	for r := 0; r < f.Rows; r++ {
		for c := 0; c < f.Cols; c++ {
			for d := 0; d < nd; d++ {
				i := (r*f.Cols+c)*nd + d
				if nr, nc, ok := f.LinkNeighbor(r, c, arch.Dir(d)); ok {
					links[i] = int32(nr*f.Cols + nc)
				} else {
					links[i] = -1
				}
			}
		}
	}
	return links
}

// NumDirs returns the per-PE link-direction (output register) count.
//
//himap:noalloc
func (g *Graph) NumDirs() int { return g.Fab.NumLinkDirs() }

// WrapTime folds a real cycle into the occupancy period [0, II).
//
//himap:noalloc
func (g *Graph) WrapTime(t int) int {
	return ((t % g.II) + g.II) % g.II
}

// ValidTime reports whether a real cycle exists in the extension: always
// true for modular graphs (t >= 0), bounded for acyclic graphs.
func (g *Graph) ValidTime(t int) bool {
	if g.Wrap {
		return true
	}
	return t >= 0 && t < g.II
}

// Key packs the node into an occupancy key; real time is folded modulo
// II and, on wrap-around topologies, space is folded into the array.
func (g *Graph) Key(n Node) uint64 {
	r, c := g.Fab.WrapCoord(n.R, n.C)
	return ((uint64(g.WrapTime(n.T))*uint64(g.Fab.Rows)+uint64(r))*uint64(g.Fab.Cols)+uint64(c))*64 +
		uint64(n.Class)*8 + uint64(n.Idx)
}

// RealKey packs the node with its real (unwrapped) time — unique per real
// node, used for per-net reuse bookkeeping.
//
//himap:noalloc
func RealKey(n Node) uint64 {
	return ((uint64(n.T+1024)*256+uint64(n.R))*256+uint64(n.C))*64 +
		uint64(n.Class)*8 + uint64(n.Idx)
}

// SlotsPerPE returns the number of distinct resource slots one PE holds
// per cycle: the FU, the fabric's directional output registers, the RF
// read/write ports, the two memory ports, and NumRegs register-file
// entries. It is the stride of the dense key space (9 + NumRegs on
// 4-direction fabrics, matching the pre-Fabric layout exactly).
//
//himap:noalloc
func (g *Graph) SlotsPerPE() int { return 5 + g.NumDirs() + g.Fab.NumRegs }

// SlotIndex packs a (class, idx) resource into a dense per-PE slot in
// [0, SlotsPerPE()) — unlike the sparse class*8+idx packing of Key and
// RealKey, the dense slot space has no holes, so occupancy and search
// scratch state can live in flat arrays instead of maps.
//
//himap:noalloc
func (g *Graph) SlotIndex(c Class, idx uint8) int {
	nd := g.NumDirs()
	switch c {
	case ClassFU:
		return 0
	case ClassOut:
		return 1 + int(idx) // one slot per fabric link direction
	case ClassRFWrite:
		return 1 + nd
	case ClassRFRead:
		return 2 + nd
	case ClassMemRead:
		return 3 + nd
	case ClassMemWrite:
		return 4 + nd
	default: // ClassReg
		return 5 + nd + int(idx)
	}
}

// SlotResource inverts SlotIndex.
//
//himap:noalloc
func (g *Graph) SlotResource(slot int) (Class, uint8) {
	nd := g.NumDirs()
	switch {
	case slot == 0:
		return ClassFU, 0
	case slot < 1+nd:
		return ClassOut, uint8(slot - 1)
	case slot == 1+nd:
		return ClassRFWrite, 0
	case slot == 2+nd:
		return ClassRFRead, 0
	case slot == 3+nd:
		return ClassMemRead, 0
	case slot == 4+nd:
		return ClassMemWrite, 0
	default:
		return ClassReg, uint8(slot - 5 - nd)
	}
}

// DenseKey packs the node into a dense occupancy index in
// [0, NumDenseKeys()); real time is folded modulo II exactly as in Key,
// and space wraps on wrap-around topologies (a translated route charges
// the folded resource — translation is a graph automorphism there).
//
//himap:noalloc
func (g *Graph) DenseKey(n Node) int {
	r, c := g.Fab.WrapCoord(n.R, n.C)
	idx := n.Idx
	if g.sharedOut && n.Class == ClassOut {
		idx = 0 // all egress directions share one bus slot
	}
	return (g.WrapTime(n.T)*g.Fab.NumPEs()+r*g.Fab.Cols+c)*g.SlotsPerPE() +
		g.SlotIndex(n.Class, idx)
}

// SharedOut reports whether DenseKey collapses the output-register
// directions of a PE onto one occupancy slot (BWBus fabrics). When true
// the dense key of a node is no longer a pure linear function of its
// per-direction slot index, so search cores must not derive occupancy
// keys by offsetting dense search indices.
//
//himap:noalloc
func (g *Graph) SharedOut() bool { return g.sharedOut }

// NumDenseKeys returns the size of the dense occupancy key space.
//
//himap:noalloc
func (g *Graph) NumDenseKeys() int { return g.II * g.Fab.NumPEs() * g.SlotsPerPE() }

// TimeBase returns the dense-key offset of one wrapped cycle: every node
// at real cycle t has DenseKey in [TimeBase(t), TimeBase(t)+NumPEs()*
// SlotsPerPE()). The router precomputes one TimeBase per real cycle of a
// search so the occupancy key of a relaxed node is a single add off its
// dense search index instead of a full DenseKey (mod + wrap + switch)
// evaluation.
//
//himap:noalloc
func (g *Graph) TimeBase(t int) int {
	return g.WrapTime(t) * g.Fab.NumPEs() * g.SlotsPerPE()
}

// Capacity returns the occupancy capacity of a node class under the
// fabric's bandwidth class: RF ports come from the (possibly narrowed)
// port counts, output registers from the link capacity (1 for the
// collapsed shared-bus slot), everything else is single-occupancy.
//
//himap:noalloc
func (g *Graph) Capacity(c Class) int {
	switch c {
	case ClassRFRead:
		return g.Fab.RFReadCap()
	case ClassRFWrite:
		return g.Fab.RFWriteCap()
	case ClassOut:
		return g.Fab.LinkCapacity()
	default:
		return 1
	}
}

// Succ invokes fn for every successor of n along the value-flow edges
// described in the package comment. Times are real (monotone); space is
// bounds-checked; acyclic graphs stop at their depth. Link existence
// comes from the constructor-built per-PE table, so enumeration is a
// table scan rather than per-edge topology math.
func (g *Graph) Succ(n Node, fn func(Node)) {
	emit := func(t, r, c int, cl Class, idx uint8) {
		if !g.ValidTime(t) {
			return
		}
		fn(Node{T: t, R: r, C: c, Class: cl, Idx: idx})
	}
	nd := g.NumDirs()
	pe := n.R*g.Fab.Cols + n.C
	switch n.Class {
	case ClassFU, ClassMemRead:
		// Freshly produced (computed or loaded) value: fan out through the
		// crossbar to output registers, the RF write port, or the store port.
		for d := 0; d < nd; d++ {
			if g.links[pe*nd+d] >= 0 {
				emit(n.T, n.R, n.C, ClassOut, uint8(d))
			}
		}
		emit(n.T, n.R, n.C, ClassRFWrite, 0)
		if g.Fab.MemCapable(n.R, n.C) {
			emit(n.T, n.R, n.C, ClassMemWrite, 0)
		}
	case ClassOut:
		if np := g.links[pe*nd+int(n.Idx)]; np >= 0 {
			// Arrives at the neighbor next cycle: may be re-routed onward,
			// written to its RF, or stored.
			nr, nc := int(np)/g.Fab.Cols, int(np)%g.Fab.Cols
			for d2 := 0; d2 < nd; d2++ {
				if g.links[int(np)*nd+d2] >= 0 {
					emit(n.T+1, nr, nc, ClassOut, uint8(d2))
				}
			}
			emit(n.T+1, nr, nc, ClassRFWrite, 0)
			if g.Fab.MemCapable(nr, nc) {
				emit(n.T+1, nr, nc, ClassMemWrite, 0)
			}
		}
		// The output register may hold its value another cycle.
		emit(n.T+1, n.R, n.C, ClassOut, n.Idx)
	case ClassRFWrite:
		for k := 0; k < g.Fab.NumRegs; k++ {
			emit(n.T+1, n.R, n.C, ClassReg, uint8(k))
		}
	case ClassReg:
		emit(n.T+1, n.R, n.C, ClassReg, n.Idx) // hold
		emit(n.T, n.R, n.C, ClassRFRead, 0)    // read this cycle
	case ClassRFRead:
		for d := 0; d < nd; d++ {
			if g.links[pe*nd+d] >= 0 {
				emit(n.T, n.R, n.C, ClassOut, uint8(d))
			}
		}
		if g.Fab.MemCapable(n.R, n.C) {
			emit(n.T, n.R, n.C, ClassMemWrite, 0)
		}
	case ClassMemWrite:
		// Pure sink.
	}
}

// FUNode returns the FU node at real cycle t.
func (g *Graph) FUNode(t, r, c int) Node { return Node{T: t, R: r, C: c, Class: ClassFU} }

// MemReadNode returns the data-memory read-port node at real cycle t.
func (g *Graph) MemReadNode(t, r, c int) Node {
	return Node{T: t, R: r, C: c, Class: ClassMemRead}
}

// MemWriteNode returns the data-memory write-port node at real cycle t.
func (g *Graph) MemWriteNode(t, r, c int) Node {
	return Node{T: t, R: r, C: c, Class: ClassMemWrite}
}

// OperandTargets returns the set of acceptable final routing nodes for
// delivering a value to the FU at real cycle t of PE (r, c) as an ALU
// operand: an output register of a neighbor at t-1 (arriving on an input
// latch), this PE's RF read port at t (register operand), or this PE's
// memory read port at t (the producer is a load scheduled right here).
func (g *Graph) OperandTargets(t, r, c int) []Node {
	return g.AppendOperandTargets(nil, t, r, c)
}

// AppendOperandTargets is OperandTargets appending into dst, so callers
// routing many nets can reuse one arena instead of allocating a target
// slice per sink.
func (g *Graph) AppendOperandTargets(dst []Node, t, r, c int) []Node {
	out := dst
	for d := arch.Dir(0); d < arch.Dir(g.NumDirs()); d++ {
		nr, nc, ok := g.Fab.LinkNeighbor(r, c, d)
		if !ok {
			continue
		}
		if g.ValidTime(t - 1) {
			out = append(out, Node{T: t - 1, R: nr, C: nc, Class: ClassOut, Idx: uint8(d.Opposite())})
		}
	}
	if g.ValidTime(t) {
		out = append(out, Node{T: t, R: r, C: c, Class: ClassRFRead})
		if g.Fab.MemCapable(r, c) {
			out = append(out, Node{T: t, R: r, C: c, Class: ClassMemRead})
		}
	}
	return out
}

// RelayTargets returns acceptable nodes for a value that must be present
// and relayable at PE (r, c) around real cycle t — the anchors of route
// pseudo-nodes: a neighbor output register pointing here at t-1, or a
// register of this PE at t.
func (g *Graph) RelayTargets(t, r, c int) []Node {
	var out []Node
	for d := arch.Dir(0); d < arch.Dir(g.NumDirs()); d++ {
		nr, nc, ok := g.Fab.LinkNeighbor(r, c, d)
		if !ok {
			continue
		}
		if g.ValidTime(t - 1) {
			out = append(out, Node{T: t - 1, R: nr, C: nc, Class: ClassOut, Idx: uint8(d.Opposite())})
		}
	}
	if g.ValidTime(t) {
		for k := 0; k < g.Fab.NumRegs; k++ {
			out = append(out, Node{T: t, R: r, C: c, Class: ClassReg, Idx: uint8(k)})
		}
	}
	return out
}

// NumVirtualNodes returns the total node count of the time extension —
// reported for scalability statistics, never allocated.
func (g *Graph) NumVirtualNodes() int64 {
	perPE := int64(1 /*FU*/ + g.NumDirs() /*Out*/ + g.Fab.NumRegs + 2 /*RF ports*/)
	n := int64(g.Fab.NumPEs())*perPE + 2*int64(g.Fab.NumMemPEs()) /*mem ports*/
	return int64(g.II) * n
}
