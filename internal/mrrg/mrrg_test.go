package mrrg

import (
	"testing"

	"himap/internal/arch"
)

func collectSucc(g *Graph, n Node) []Node {
	var out []Node
	g.Succ(n, func(m Node) { out = append(out, m) })
	return out
}

func TestWrapAndValidTime(t *testing.T) {
	g := New(arch.DefaultFabric(4, 4), 5)
	if got := g.WrapTime(7); got != 2 {
		t.Errorf("WrapTime(7) = %d", got)
	}
	if got := g.WrapTime(-1); got != 4 {
		t.Errorf("WrapTime(-1) = %d", got)
	}
	if !g.ValidTime(1000) {
		t.Error("modular graph accepts any non-negative real time")
	}
	ga := NewAcyclic(arch.DefaultFabric(4, 4), 5)
	if ga.ValidTime(5) {
		t.Error("acyclic graph must reject t beyond depth")
	}
	if !ga.ValidTime(4) {
		t.Error("acyclic graph must accept t = depth-1")
	}
}

func TestKeyFoldsModulo(t *testing.T) {
	g := New(arch.DefaultFabric(2, 2), 3)
	a := Node{T: 1, R: 0, C: 1, Class: ClassOut, Idx: 2}
	b := Node{T: 4, R: 0, C: 1, Class: ClassOut, Idx: 2}
	if g.Key(a) != g.Key(b) {
		t.Error("occupancy keys of t and t+II must coincide")
	}
	if RealKey(a) == RealKey(b) {
		t.Error("real keys of t and t+II must differ")
	}
}

func TestShifted(t *testing.T) {
	n := Node{T: 2, R: 1, C: 1, Class: ClassReg, Idx: 3}
	s := n.Shifted(4, -1, 1)
	if s.T != 6 || s.R != 0 || s.C != 2 || s.Class != ClassReg || s.Idx != 3 {
		t.Errorf("Shifted = %v", s)
	}
}

func TestKeyUniqueness(t *testing.T) {
	g := New(arch.DefaultFabric(3, 3), 4)
	seen := map[uint64]Node{}
	for tt := 0; tt < 4; tt++ {
		for r := 0; r < 3; r++ {
			for c := 0; c < 3; c++ {
				nodes := []Node{
					{T: tt, R: r, C: c, Class: ClassFU},
					{T: tt, R: r, C: c, Class: ClassMemRead},
					{T: tt, R: r, C: c, Class: ClassMemWrite},
					{T: tt, R: r, C: c, Class: ClassRFRead},
					{T: tt, R: r, C: c, Class: ClassRFWrite},
				}
				for d := uint8(0); d < 4; d++ {
					nodes = append(nodes, Node{T: tt, R: r, C: c, Class: ClassOut, Idx: d})
				}
				for k := uint8(0); k < 4; k++ {
					nodes = append(nodes, Node{T: tt, R: r, C: c, Class: ClassReg, Idx: k})
				}
				for _, n := range nodes {
					k := g.Key(n)
					if prev, dup := seen[k]; dup {
						t.Fatalf("key collision: %v vs %v", prev, n)
					}
					seen[k] = n
				}
			}
		}
	}
}

func TestFUSuccessors(t *testing.T) {
	g := New(arch.DefaultFabric(3, 3), 4)
	succ := collectSucc(g, Node{T: 1, R: 1, C: 1, Class: ClassFU})
	// Interior PE: 4 out regs + RF write + mem write.
	if len(succ) != 6 {
		t.Fatalf("interior FU successors = %d (%v), want 6", len(succ), succ)
	}
	// Corner PE: 2 out regs + RF write + mem write.
	succ = collectSucc(g, Node{T: 1, R: 0, C: 0, Class: ClassFU})
	if len(succ) != 4 {
		t.Fatalf("corner FU successors = %d (%v), want 4", len(succ), succ)
	}
}

func TestOutSuccessorsCrossPEAndWrap(t *testing.T) {
	g := New(arch.DefaultFabric(2, 2), 3)
	// Out East of (0,0) at the last cycle of the period: arrives at (0,1)
	// at real cycle 3, whose occupancy key folds onto cycle 0.
	succ := collectSucc(g, Node{T: 2, R: 0, C: 0, Class: ClassOut, Idx: uint8(arch.East)})
	foundNext := false
	foundHold := false
	for _, m := range succ {
		if m.T == 3 && m.R == 0 && m.C == 1 && m.Class == ClassRFWrite {
			foundNext = true
			if g.Key(m) != g.Key(Node{T: 0, R: 0, C: 1, Class: ClassRFWrite}) {
				t.Error("real cycle 3 must share its occupancy key with cycle 0")
			}
		}
		if m.T == 3 && m.R == 0 && m.C == 0 && m.Class == ClassOut && arch.Dir(m.Idx) == arch.East {
			foundHold = true
		}
	}
	if !foundNext {
		t.Errorf("out register must deliver at the next real cycle: %v", succ)
	}
	if !foundHold {
		t.Errorf("out register must be able to hold: %v", succ)
	}
}

func TestRegisterHoldChain(t *testing.T) {
	g := New(arch.DefaultFabric(2, 2), 4)
	succ := collectSucc(g, Node{T: 1, R: 0, C: 0, Class: ClassReg, Idx: 2})
	var hold, read bool
	for _, m := range succ {
		if m.Class == ClassReg && m.Idx == 2 && m.T == 2 {
			hold = true
		}
		if m.Class == ClassRFRead && m.T == 1 {
			read = true
		}
	}
	if !hold || !read {
		t.Errorf("register successors missing hold/read: %v", succ)
	}
}

func TestRFWriteFansOutToRegisters(t *testing.T) {
	g := New(arch.DefaultFabric(2, 2), 4)
	succ := collectSucc(g, Node{T: 0, R: 1, C: 1, Class: ClassRFWrite})
	if len(succ) != 4 {
		t.Fatalf("RF write successors = %d, want 4 registers", len(succ))
	}
	for _, m := range succ {
		if m.Class != ClassReg || m.T != 1 {
			t.Errorf("unexpected RF write successor %v", m)
		}
	}
}

func TestMemWriteIsSink(t *testing.T) {
	g := New(arch.DefaultFabric(2, 2), 4)
	if succ := collectSucc(g, Node{T: 0, R: 0, C: 0, Class: ClassMemWrite}); len(succ) != 0 {
		t.Errorf("mem write must be a sink, got %v", succ)
	}
}

func TestAcyclicGraphStopsAtDepth(t *testing.T) {
	g := NewAcyclic(arch.DefaultFabric(2, 2), 2)
	// Out at the last cycle has nowhere to go (no wrap).
	succ := collectSucc(g, Node{T: 1, R: 0, C: 0, Class: ClassOut, Idx: uint8(arch.East)})
	if len(succ) != 0 {
		t.Errorf("acyclic out at final cycle should have no successors, got %v", succ)
	}
}

func TestRelayTargets(t *testing.T) {
	g := New(arch.DefaultFabric(3, 3), 4)
	targets := g.RelayTargets(2, 1, 1)
	// Interior PE: 4 neighbor out regs + 4 registers.
	if len(targets) != 8 {
		t.Fatalf("relay targets = %d (%v), want 8", len(targets), targets)
	}
	regs := 0
	for _, m := range targets {
		if m.Class == ClassReg {
			regs++
			if m.T != 2 || m.R != 1 || m.C != 1 {
				t.Errorf("register relay target %v misplaced", m)
			}
		}
	}
	if regs != 4 {
		t.Errorf("register relay targets = %d, want 4", regs)
	}
}

func TestOperandTargets(t *testing.T) {
	g := New(arch.DefaultFabric(3, 3), 4)
	targets := g.OperandTargets(2, 1, 1)
	// Interior consumer: 4 neighbor out regs + RF read + mem read.
	if len(targets) != 6 {
		t.Fatalf("operand targets = %d (%v), want 6", len(targets), targets)
	}
	for _, m := range targets {
		switch m.Class {
		case ClassOut:
			if m.T != 1 {
				t.Errorf("out target at t=%d, want 1", m.T)
			}
			// The out register must point back at (1,1).
			nr, nc, ok := g.Fab.LinkNeighbor(m.R, m.C, arch.Dir(m.Idx))
			if !ok || nr != 1 || nc != 1 {
				t.Errorf("out target %v does not deliver to (1,1)", m)
			}
		case ClassRFRead, ClassMemRead:
			if m.T != 2 || m.R != 1 || m.C != 1 {
				t.Errorf("local target %v misplaced", m)
			}
		default:
			t.Errorf("unexpected target class %v", m.Class)
		}
	}
}

func TestCapacity(t *testing.T) {
	g := New(arch.DefaultFabric(2, 2), 2)
	if g.Capacity(ClassFU) != 1 || g.Capacity(ClassOut) != 1 || g.Capacity(ClassReg) != 1 {
		t.Error("unit capacities wrong")
	}
	if g.Capacity(ClassRFRead) != 2 || g.Capacity(ClassRFWrite) != 2 {
		t.Error("RF port capacities wrong")
	}
}

// TestCapacityPerBandwidthClass pins how each bandwidth class
// materializes as occupancy capacities: the RF axes move, link and
// single-occupancy resources never do (the configuration word encodes
// one value per link per cycle in every class).
func TestCapacityPerBandwidthClass(t *testing.T) {
	cases := []struct {
		bw              arch.BandwidthClass
		rfRead, rfWrite int
	}{
		{arch.BWUnit, 2, 2},
		{arch.BWDouble, 4, 4},
		{arch.BWBus, 2, 2},
		{arch.BWNarrowRF, 1, 1},
	}
	for _, tc := range cases {
		g := New(arch.Fabric{CGRA: arch.Default(2, 2), Bandwidth: tc.bw}, 2)
		if got := g.Capacity(ClassRFRead); got != tc.rfRead {
			t.Errorf("%s: RF read capacity %d, want %d", tc.bw, got, tc.rfRead)
		}
		if got := g.Capacity(ClassRFWrite); got != tc.rfWrite {
			t.Errorf("%s: RF write capacity %d, want %d", tc.bw, got, tc.rfWrite)
		}
		for _, c := range []Class{ClassFU, ClassOut, ClassReg, ClassMemRead, ClassMemWrite} {
			if got := g.Capacity(c); got != 1 {
				t.Errorf("%s: Capacity(%s) = %d, want 1", tc.bw, c, got)
			}
		}
	}
}

// TestDenseKeyBusCollapse pins the shared-bus occupancy semantics: on a
// BWBus fabric every egress direction of a PE folds onto one dense
// occupancy slot (so the router charges them as a single lane), other
// classes keep distinct keys, and the SharedOut flag — which disables
// the router's linear-key fast path — is set exactly there.
func TestDenseKeyBusCollapse(t *testing.T) {
	bus := New(arch.Fabric{CGRA: arch.Default(3, 3), Bandwidth: arch.BWBus}, 4)
	mesh := New(arch.DefaultFabric(3, 3), 4)
	if !bus.SharedOut() || mesh.SharedOut() {
		t.Fatalf("SharedOut: bus %v, mesh %v", bus.SharedOut(), mesh.SharedOut())
	}
	nd := bus.NumDirs()
	base := Node{T: 1, R: 1, C: 1, Class: ClassOut, Idx: 0}
	for d := 1; d < nd; d++ {
		n := base
		n.Idx = uint8(d)
		if bus.DenseKey(n) != bus.DenseKey(base) {
			t.Errorf("bus: direction %d has its own occupancy slot", d)
		}
		if mesh.DenseKey(n) == mesh.DenseKey(base) {
			t.Errorf("mesh: directions 0 and %d collide", d)
		}
	}
	// The collapse is confined to ClassOut: registers keep one key per
	// index on the bus fabric too.
	r0 := Node{T: 1, R: 1, C: 1, Class: ClassReg, Idx: 0}
	r1 := Node{T: 1, R: 1, C: 1, Class: ClassReg, Idx: 1}
	if bus.DenseKey(r0) == bus.DenseKey(r1) {
		t.Error("bus: register indices collapsed")
	}
	// Dense keys must stay injective over distinct (wrapped) resources,
	// with exactly the Out directions identified.
	seen := map[int]Node{}
	for _, n := range []Node{
		{T: 0, R: 0, C: 0, Class: ClassFU},
		{T: 0, R: 0, C: 0, Class: ClassOut, Idx: 0},
		{T: 0, R: 0, C: 1, Class: ClassOut, Idx: 0},
		{T: 1, R: 0, C: 0, Class: ClassOut, Idx: 0},
		{T: 0, R: 0, C: 0, Class: ClassRFRead},
		{T: 0, R: 0, C: 0, Class: ClassRFWrite},
		{T: 0, R: 0, C: 0, Class: ClassMemRead},
		{T: 0, R: 0, C: 0, Class: ClassMemWrite},
		{T: 0, R: 0, C: 0, Class: ClassReg, Idx: 3},
	} {
		k := bus.DenseKey(n)
		if prev, dup := seen[k]; dup {
			t.Errorf("dense key collision between %v and %v", prev, n)
		}
		seen[k] = n
	}
}

func TestNumVirtualNodes(t *testing.T) {
	g := New(arch.DefaultFabric(64, 64), 128)
	// 64*64 PEs * 128 cycles * 13 resources/PE — millions of nodes, never allocated.
	if got := g.NumVirtualNodes(); got != int64(64*64*128*13) {
		t.Errorf("NumVirtualNodes = %d", got)
	}
}

func TestSuccessorsStayInBoundsAndMonotone(t *testing.T) {
	g := New(arch.DefaultFabric(2, 2), 3)
	check := func(n Node) {
		g.Succ(n, func(m Node) {
			if m.T < n.T || m.T > n.T+1 {
				t.Errorf("non-monotone successor %v of %v", m, n)
			}
			if !g.Fab.InBounds(m.R, m.C) {
				t.Errorf("out-of-bounds successor %v of %v", m, n)
			}
		})
	}
	for tt := 0; tt < 3; tt++ {
		for r := 0; r < 2; r++ {
			for c := 0; c < 2; c++ {
				check(Node{T: tt, R: r, C: c, Class: ClassFU})
				check(Node{T: tt, R: r, C: c, Class: ClassMemRead})
				check(Node{T: tt, R: r, C: c, Class: ClassRFWrite})
				for d := uint8(0); d < 4; d++ {
					check(Node{T: tt, R: r, C: c, Class: ClassOut, Idx: d})
				}
				for k := uint8(0); k < 4; k++ {
					check(Node{T: tt, R: r, C: c, Class: ClassReg, Idx: k})
				}
			}
		}
	}
}
