// Command himapd_smoke is the end-to-end health check of the compile
// service, run by scripts/check.sh: it builds cmd/himapd, starts it on
// an ephemeral port, compiles MVT over HTTP, byte-compares the served
// body against a direct in-process himap.CompileRequest of the same
// request, verifies the cache hit and the metrics counters, and then
// shuts the daemon down gracefully with SIGTERM.
package main

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"himap"
	"himap/internal/serve"
)

// The same request pinned to wire schema v1 and at the current version:
// each owns its own cache key space and must byte-match its own direct
// in-process rendering (the v1 body omits the v2-only fields).
const (
	compileBodyV1 = `{"schema_version":1,"kernel":"MVT","fabric":{"rows":4,"cols":4},"options":{}}`
	compileBodyV2 = `{"kernel":"MVT","fabric":{"rows":4,"cols":4},"options":{}}`
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "himapd_smoke: FAIL: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("himapd_smoke: ok")
}

func run() error {
	dir, err := os.MkdirTemp("", "himapd-smoke-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	bin := filepath.Join(dir, "himapd")
	build := exec.Command("go", "build", "-o", bin, "./cmd/himapd")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("build himapd: %w", err)
	}

	daemon := exec.Command(bin, "-addr", "127.0.0.1:0")
	daemon.Stderr = os.Stderr
	stdout, err := daemon.StdoutPipe()
	if err != nil {
		return err
	}
	if err := daemon.Start(); err != nil {
		return fmt.Errorf("start himapd: %w", err)
	}
	defer daemon.Process.Kill()

	// Collect stdout; the first line announces the bound address and the
	// last line confirms the graceful shutdown.
	var mu sync.Mutex
	var lines []string
	listening := make(chan string, 1)
	scanned := make(chan struct{})
	go func() {
		defer close(scanned)
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			mu.Lock()
			lines = append(lines, line)
			mu.Unlock()
			if rest, ok := strings.CutPrefix(line, "himapd: listening on "); ok {
				listening <- strings.TrimSpace(rest)
			}
		}
	}()

	var base string
	select {
	case base = <-listening:
	case <-time.After(15 * time.Second):
		return fmt.Errorf("himapd never announced its address")
	}

	if err := waitHealthy(base, 10*time.Second); err != nil {
		return err
	}

	// Serve MVT pinned to wire v1 and byte-compare with the direct API
	// rendered at v1.
	status, hdr, served, err := post(base+"/v1/compile", compileBodyV1)
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("v1 compile status %d: %s", status, served)
	}
	if hdr != "miss" {
		return fmt.Errorf("first compile X-Himap-Cache = %q, want miss", hdr)
	}
	direct, err := directBytes(compileBodyV1, 1)
	if err != nil {
		return err
	}
	if !bytes.Equal(served, direct) {
		return fmt.Errorf("served v1 body (%d bytes) differs from direct CompileRequest (%d bytes)",
			len(served), len(direct))
	}
	if bytes.Contains(served, []byte(`"mapper"`)) {
		return fmt.Errorf("v1 body carries the v2 mapper field: %s", served)
	}

	// The identical request must come back from the cache, byte-identical.
	status, hdr, cached, err := post(base+"/v1/compile", compileBodyV1)
	if err != nil {
		return err
	}
	if status != http.StatusOK || hdr != "hit" {
		return fmt.Errorf("second compile: status %d cache %q, want 200 hit", status, hdr)
	}
	if !bytes.Equal(cached, served) {
		return fmt.Errorf("cached body differs from compiled body")
	}

	// The same request at the current version is a separate cache entry
	// with the v2 shape, again byte-identical to the direct rendering.
	status, hdr, servedV2, err := post(base+"/v1/compile", compileBodyV2)
	if err != nil {
		return err
	}
	if status != http.StatusOK || hdr != "miss" {
		return fmt.Errorf("v2 compile: status %d cache %q, want 200 miss (own key space)", status, hdr)
	}
	directV2, err := directBytes(compileBodyV2, serve.SchemaVersion)
	if err != nil {
		return err
	}
	if !bytes.Equal(servedV2, directV2) {
		return fmt.Errorf("served v2 body (%d bytes) differs from direct CompileRequest (%d bytes)",
			len(servedV2), len(directV2))
	}
	if !bytes.Contains(servedV2, []byte(`"mapper"`)) {
		return fmt.Errorf("v2 body lost the mapper field: %s", servedV2)
	}

	metrics, err := get(base + "/metrics")
	if err != nil {
		return err
	}
	for _, want := range []string{"himapd_compiles_total 2", "himapd_cache_hits_total 1", "himapd_requests_total 3"} {
		if !strings.Contains(metrics, want) {
			return fmt.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}

	// Graceful shutdown: SIGTERM, clean exit, confirmation line.
	if err := daemon.Process.Signal(syscall.SIGTERM); err != nil {
		return fmt.Errorf("signal: %w", err)
	}
	// Drain stdout fully before Wait (Wait closes the pipe), so the
	// shutdown confirmation line cannot be lost to a read race.
	select {
	case <-scanned:
	case <-time.After(30 * time.Second):
		return fmt.Errorf("himapd did not exit within 30s of SIGTERM")
	}
	done := make(chan error, 1)
	go func() { done <- daemon.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			return fmt.Errorf("himapd exited uncleanly after SIGTERM: %w", err)
		}
	case <-time.After(30 * time.Second):
		return fmt.Errorf("himapd did not exit within 30s of SIGTERM")
	}
	mu.Lock()
	defer mu.Unlock()
	for _, l := range lines {
		if l == "himapd: shutdown complete" {
			return nil
		}
	}
	return fmt.Errorf("shutdown confirmation missing from output: %q", lines)
}

// directBytes compiles the smoke request in-process through the same
// wire conversion the server uses and renders the canonical bytes at
// the given wire version.
func directBytes(body string, version int) ([]byte, error) {
	wire, err := serve.DecodeRequest(strings.NewReader(body))
	if err != nil {
		return nil, err
	}
	req, err := serve.BuildRequest(wire, serve.Config{})
	if err != nil {
		return nil, err
	}
	res, err := himap.CompileRequest(context.Background(), req)
	if err != nil {
		return nil, err
	}
	return serve.EncodeResponseVersion(res, version)
}

func waitHealthy(base string, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("healthz never turned healthy: %v", err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func post(url, body string) (int, string, []byte, error) {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return 0, "", nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, "", nil, err
	}
	return resp.StatusCode, resp.Header.Get("X-Himap-Cache"), b, nil
}

func get(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}
