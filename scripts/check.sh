#!/bin/sh
# Repository health gate: formatting, vet, the project analyzer suite
# (cmd/himaplint), build, and the full test suite under the race
# detector. Run before sending changes; cmd/experiments and the
# benchmarks (go test -bench . -benchmem) cover the perf side.
set -eux
cd "$(dirname "$0")/.."
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt: the following files need formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi
go vet ./...
go build ./...
# Analyzer suite under the debt ratchet: fails on findings not recorded
# in the baseline AND on stale baseline entries or stale //lint:ignore
# directives (dead suppressions are findings of the pseudo-analyzer
# "suppress"), so fixed debt cannot linger as silent waivers.
go run ./cmd/himaplint -baseline himaplint.baseline.json ./...
# Self-host: the analyzer package must satisfy its own suite.
go run ./cmd/himaplint ./internal/analysis
go test -race ./...
# himapd end-to-end smoke: ephemeral port, served-vs-direct byte diff
# at wire v1 and v2, cache hit, metrics, graceful SIGTERM shutdown.
go run ./scripts/himapd_smoke
# Serving soak smoke: a short seeded load run against a self-hosted
# 2-replica sharded cluster must finish with zero 5xx responses and a
# nonzero cache hit count (-require-hits); the report goes to a temp
# file, not the committed BENCH_serve.json.
go run ./cmd/himapload -cluster 2 -duration 3s -concurrency 4 -require-hits -out "$(mktemp)"
# Exact-backend smoke: a tiny instance must close with a proved-minimal
# certificate within a short budget.
exact_out=$(go run ./cmd/himap -mapper exact -kernel MVT -rows 4 -cols 4 -block 2 -exact-budget 30s)
echo "$exact_out" | grep -q "proved minimal"
# Route-stage alloc smoke: BenchmarkRouteSinkHotPath self-enforces the
# 29 allocs/op floor (testing.AllocsPerRun in bench_test.go) and fails
# the run if the router's steady-state search starts allocating.
go test -run '^$' -bench BenchmarkRouteSinkHotPath -benchtime 10x .
