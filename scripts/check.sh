#!/bin/sh
# Repository health gate: formatting, vet, the project analyzer suite
# (cmd/himaplint), build, and the full test suite under the race
# detector. Run before sending changes; cmd/experiments and the
# benchmarks (go test -bench . -benchmem) cover the perf side.
set -eux
cd "$(dirname "$0")/.."
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt: the following files need formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi
go vet ./...
go build ./...
go run ./cmd/himaplint ./...
go test -race ./...
# himapd end-to-end smoke: ephemeral port, served-vs-direct byte diff,
# cache hit, metrics, graceful SIGTERM shutdown.
go run ./scripts/himapd_smoke
# Exact-backend smoke: a tiny instance must close with a proved-minimal
# certificate within a short budget.
exact_out=$(go run ./cmd/himap -mapper exact -kernel MVT -rows 4 -cols 4 -block 2 -exact-budget 30s)
echo "$exact_out" | grep -q "proved minimal"
# Route-stage alloc smoke: BenchmarkRouteSinkHotPath self-enforces the
# 29 allocs/op floor (testing.AllocsPerRun in bench_test.go) and fails
# the run if the router's steady-state search starts allocating.
go test -run '^$' -bench BenchmarkRouteSinkHotPath -benchtime 10x .
