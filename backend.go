package himap

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"himap/internal/baseline"
	"himap/internal/exact"
	core "himap/internal/himap"
)

// BackendCaps advertises what a backend consumes and guarantees, so
// callers (the himapd service, harnesses) can validate requests and
// surface capabilities without hard-coding per-backend knowledge.
type BackendCaps struct {
	// UsesBlock: the backend consumes Request.Block (the HiMap flow
	// derives its own block from the systolic scheme and ignores it).
	UsesBlock bool
	// UsesOptions / UsesBaseline / UsesExact: which option struct of the
	// Request the backend reads.
	UsesOptions  bool
	UsesBaseline bool
	UsesExact    bool
	// Proves: results may carry an Optimality certificate.
	Proves bool
	// Description is a one-line human-readable summary.
	Description string
}

// Backend is one registered compilation flow. Implementations must be
// safe for concurrent use and deterministic: Compile must be a pure
// function of (Request, fabric) up to wall-clock-dependent budget and
// tracing fields.
type Backend interface {
	// Name is the registry key, matched against Request.Mapper.
	Name() Mapper
	// Capabilities describes which Request fields the backend consumes.
	Capabilities() BackendCaps
	// Compile runs the flow. The dispatcher has already rejected nil
	// kernels and unknown mappers; Compile stamps neither Result.Backend
	// nor tracing context (the dispatcher does).
	Compile(ctx context.Context, req Request) (*Result, error)
}

var (
	backendMu sync.RWMutex
	backendBy = map[Mapper]Backend{}
)

// RegisterBackend adds a backend to the registry. It fails (rather than
// panics) on an empty name or a duplicate registration, so tests can
// assert the contract; the built-in backends register during package
// initialization.
func RegisterBackend(b Backend) error {
	if b == nil {
		return fmt.Errorf("himap: RegisterBackend(nil)")
	}
	name := b.Name()
	if name == "" {
		return fmt.Errorf("himap: backend with empty name")
	}
	backendMu.Lock()
	defer backendMu.Unlock()
	if _, dup := backendBy[name]; dup {
		return fmt.Errorf("himap: backend %q already registered", name)
	}
	backendBy[name] = b
	return nil
}

// Backends returns the registered backend names in sorted order — the
// deterministic iteration order of the registry.
func Backends() []Mapper {
	backendMu.RLock()
	defer backendMu.RUnlock()
	names := make([]Mapper, 0, len(backendBy))
	for name := range backendBy {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool { return names[i] < names[j] })
	return names
}

// BackendNames renders the sorted registry as "a|b|c" for error messages
// and flag help.
func BackendNames() string {
	names := Backends()
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = string(n)
	}
	return strings.Join(parts, "|")
}

// BackendFor resolves a mapper name to its backend. The empty name means
// MapperHiMap (the zero Request compiles hierarchically).
func BackendFor(m Mapper) (Backend, bool) {
	if m == "" {
		m = MapperHiMap
	}
	backendMu.RLock()
	defer backendMu.RUnlock()
	b, ok := backendBy[m]
	return b, ok
}

func init() {
	for _, b := range []Backend{himapBackend{}, conventionalBackend{}, exactBackend{}} {
		if err := RegisterBackend(b); err != nil {
			panic(err)
		}
	}
}

// himapBackend wraps the hierarchical flow (internal/himap).
type himapBackend struct{}

func (himapBackend) Name() Mapper { return MapperHiMap }

func (himapBackend) Capabilities() BackendCaps {
	return BackendCaps{
		UsesOptions: true,
		Description: "hierarchical HiMap flow: IDFG → sub-CGRA, systolic scheme, place, route, replicate",
	}
}

func (himapBackend) Compile(ctx context.Context, req Request) (*Result, error) {
	return core.CompileRequest(ctx, req.Kernel, req.Fabric, req.Options)
}

// conventionalBackend wraps the flat SA + PathFinder baseline
// (internal/baseline).
type conventionalBackend struct{}

func (conventionalBackend) Name() Mapper { return MapperConventional }

func (conventionalBackend) Capabilities() BackendCaps {
	return BackendCaps{
		UsesBlock:    true,
		UsesBaseline: true,
		Description:  "conventional flat DFG mapper: simulated-annealing placement + negotiated routing (BHC stand-in)",
	}
}

func (conventionalBackend) Compile(ctx context.Context, req Request) (*Result, error) {
	block := req.Block
	if block == nil {
		block = req.Kernel.UniformBlock(4)
	}
	res, err := baseline.CompileRequest(ctx, req.Kernel, req.Fabric, block, req.Baseline)
	if err != nil {
		return nil, err
	}
	return &Result{
		Kernel:       res.Kernel,
		Fabric:       req.Fabric,
		CGRA:         req.Fabric.CGRA,
		Block:        res.Block,
		Config:       res.Config,
		Utilization:  res.Utilization,
		Conventional: res,
	}, nil
}

// exactBackend wraps the branch-and-bound mapper with optimality
// certificates (internal/exact).
type exactBackend struct{}

func (exactBackend) Name() Mapper { return MapperExact }

func (exactBackend) Capabilities() BackendCaps {
	return BackendCaps{
		UsesBlock:   true,
		UsesExact:   true,
		Proves:      true,
		Description: "exact branch-and-bound mapper: iterative deepening on II with optimality certificates",
	}
}

func (exactBackend) Compile(ctx context.Context, req Request) (*Result, error) {
	block := req.Block
	if block == nil {
		// Exact search targets small instances; default to the smallest
		// well-formed block rather than the conventional mapper's 4.
		block = req.Kernel.UniformBlock(2)
	}
	res, err := exact.CompileRequest(ctx, req.Kernel, req.Fabric, block, req.Exact)
	if err != nil {
		return nil, err
	}
	return &Result{
		Kernel:      res.Kernel,
		Fabric:      req.Fabric,
		CGRA:        req.Fabric.CGRA,
		Block:       res.Block,
		Config:      res.Config,
		Utilization: res.Utilization,
		Optimality:  &res.Optimality,
		Exact:       res,
	}, nil
}
