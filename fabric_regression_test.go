package himap_test

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"

	"himap"
)

// defaultFabricFingerprints pins the exact mappings the default fabric
// (mesh topology, every PE memory-capable) produces for the eight
// evaluation kernels on an 8x8 array. The hashes were captured before the
// Fabric refactor; the refactor (and any future change) must reproduce
// them bit-identically. The fingerprint is built from the canonical
// instruction rendering (Instr.String), the II, and the load/store I/O
// specs — deliberately not the raw JSON bytes, so representation-only
// changes (e.g. widening OutSel for diagonal links) don't disturb it as
// long as the mapping itself is unchanged.
var defaultFabricFingerprints = map[string]string{
	"ADI":  "4be75e3ecacdf7c9bd77223743241a082b8469bde26367d7cf2ded54b323a0cc",
	"ATAX": "10c91fa59bf58021cd04346eb043291218cae9805275e1b04c163c79aafdd0b7",
	"BICG": "f989d64f152302206e1678d3e39301462654623fd4e270dd05722cf30c277452",
	"MVT":  "1b33b8638fc10c73bcc85ce86f4fa9b1416aff0f028ca85fef27014a1407253d",
	"GEMM": "e92f7854f63143875896692d070a6f34663eb9d2fff92dd61e79e827939b9eb1",
	"SYRK": "8d59d8f6d4454f1438d5e78570271cda6aab8333059082d344a7d94530102b8b",
	"FW":   "bb5b461d9ff1f8380f1ec0f63fcef4afb26a75cc2b32e9dd1ce076905967ac8a",
	"TTM":  "1bbfb68601054333cc6bb7c68a035f6c171aa1422678e47dacf1b4b3bc99dc88",
}

func mappingFingerprint(cfg *himap.Config, rows, cols int) string {
	h := sha256.New()
	fmt.Fprintf(h, "ii=%d\n", cfg.II)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			for t := 0; t < cfg.II; t++ {
				in := *cfg.At(r, c, t)
				in.Comment = ""
				fmt.Fprintf(h, "r%d c%d t%d %s\n", r, c, t, in.String())
			}
		}
	}
	for _, l := range cfg.Loads {
		fmt.Fprintf(h, "load %+v\n", l)
	}
	for _, s := range cfg.Stores {
		fmt.Fprintf(h, "store %+v\n", s)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TestDefaultFabricBitIdentical is the regression anchor for the Fabric
// refactor: the default fabric must keep producing exactly the mappings
// the homogeneous-mesh model produced.
func TestDefaultFabricBitIdentical(t *testing.T) {
	for _, k := range himap.EvaluationKernels() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			r, err := compile(k, himap.DefaultCGRA(8, 8), himap.Options{})
			if err != nil {
				t.Fatalf("Compile(%s): %v", k.Name, err)
			}
			got := mappingFingerprint(r.Config, 8, 8)
			want := defaultFabricFingerprints[k.Name]
			if want == "" {
				t.Fatalf("no golden fingerprint for %s; capture: %q", k.Name, got)
			}
			if got != want {
				t.Errorf("%s: mapping fingerprint drifted\n got %s\nwant %s", k.Name, got, want)
			}
		})
	}
}
