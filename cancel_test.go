package himap_test

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"

	"himap"
)

// cancelTracer cancels a context the first time any pipeline stage
// completes — aborting the compile mid-pipeline, after work has started
// but before any mapping can have been committed.
type cancelTracer struct {
	once   sync.Once
	cancel context.CancelFunc
}

func (t *cancelTracer) Emit(himap.TraceSpan) { t.once.Do(t.cancel) }

func TestCompileRequestCancellationMidPipeline(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	tr := &cancelTracer{cancel: cancel}
	res, err := himap.CompileRequest(ctx, himap.Request{
		Kernel: himap.KernelGEMM(),
		Fabric: himap.DefaultFabric(4, 4),
		Options: himap.Options{
			Workers: 4,
			Tracer:  tr,
			Memo:    himap.NewMemo(), // cold cache: the canceled stages really run
		},
	})
	if err == nil {
		t.Fatalf("compile committed a mapping despite cancellation: %v", res.Summary())
	}
	if !errors.Is(err, himap.ErrCanceled) {
		t.Fatalf("errors.Is(err, ErrCanceled) = false: %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("original context error lost from the cause chain: %v", err)
	}
	var ce *himap.CompileError
	if !errors.As(err, &ce) {
		t.Fatalf("cancellation not wrapped in *CompileError: %T %v", err, err)
	}
	var se *himap.StageError
	if !errors.As(err, &se) {
		t.Fatalf("no StageError in the chain: %v", err)
	}
	if !errors.Is(se.Class, himap.ErrCanceled) {
		t.Errorf("stage error class = %v, want ErrCanceled", se.Class)
	}
}

func TestCompileRequestPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, tc := range []struct {
		name string
		req  himap.Request
	}{
		{"himap", himap.Request{Kernel: himap.KernelGEMM(), Fabric: himap.DefaultFabric(4, 4)}},
		{"conventional", himap.Request{
			Kernel: himap.KernelMVT(), Fabric: himap.DefaultFabric(4, 4),
			Mapper: himap.MapperConventional, Block: []int{3, 3},
			Baseline: himap.BaselineOptions{Seed: 2},
		}},
	} {
		_, err := himap.CompileRequest(ctx, tc.req)
		if err == nil {
			t.Errorf("%s: pre-canceled context compiled anyway", tc.name)
			continue
		}
		if !errors.Is(err, himap.ErrCanceled) {
			t.Errorf("%s: errors.Is(err, ErrCanceled) = false: %v", tc.name, err)
		}
	}
}

func TestCompileRequestUnknownMapper(t *testing.T) {
	_, err := himap.CompileRequest(context.Background(), himap.Request{
		Kernel: himap.KernelGEMM(), Fabric: himap.DefaultFabric(4, 4), Mapper: "magic",
	})
	if err == nil {
		t.Fatal("unknown mapper accepted")
	}
}

// TestLegacyWrappersDelegate: the deprecated entry points are thin
// wrappers over CompileRequest and must emit identical mappings.
func TestLegacyWrappersDelegate(t *testing.T) {
	cg := himap.DefaultCGRA(4, 4)

	old, err := compile(himap.KernelGEMM(), cg, himap.Options{})
	if err != nil {
		t.Fatal(err)
	}
	neu, err := himap.CompileRequest(context.Background(), himap.Request{
		Kernel: himap.KernelGEMM(), Fabric: himap.Fabric{CGRA: cg},
	})
	if err != nil {
		t.Fatal(err)
	}
	var oldJSON, newJSON bytes.Buffer
	if err := himap.SaveConfig(old.Config, &oldJSON); err != nil {
		t.Fatal(err)
	}
	if err := himap.SaveConfig(neu.Config, &newJSON); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(oldJSON.Bytes(), newJSON.Bytes()) {
		t.Error("Compile and CompileRequest emit different configurations")
	}

	oldB, err := compileBaseline(himap.KernelMVT(), cg, []int{3, 3}, himap.BaselineOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	neuB, err := himap.CompileRequest(context.Background(), himap.Request{
		Kernel: himap.KernelMVT(), Fabric: himap.Fabric{CGRA: cg},
		Mapper: himap.MapperConventional, Block: []int{3, 3},
		Baseline: himap.BaselineOptions{Seed: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if neuB.Conventional == nil {
		t.Fatal("conventional result missing from Result.Conventional")
	}
	if oldB.Summary() != neuB.Summary() {
		t.Errorf("baseline wrapper summary %q != unified summary %q", oldB.Summary(), neuB.Summary())
	}
	var oldBJ, newBJ bytes.Buffer
	if err := himap.SaveConfig(oldB.Config, &oldBJ); err != nil {
		t.Fatal(err)
	}
	if err := himap.SaveConfig(neuB.Config, &newBJ); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(oldBJ.Bytes(), newBJ.Bytes()) {
		t.Error("CompileBaseline and unified CompileRequest emit different configurations")
	}
}
